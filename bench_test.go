package dbrewllvm

// The benchmarks in this file regenerate every figure of the paper's
// evaluation (Section VI). Each benchmark reports the paper's metric as
// custom units next to Go's timing output:
//
//	cyc/elem        modelled Haswell cycles per stencil element
//	proj-seconds    projected run time of the full workload
//	                (50,000 Jacobi iterations, 649x649 matrix, 3.5 GHz)
//	compile-ms      transformation time (Figure 10)
//
// Run all of them with:
//
//	go test -bench=. -benchmem
//
// The default matrix uses the paper's 649x649 configuration; set
// -short to use a smaller matrix for quick runs.

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/bench"
)

var (
	wlOnce sync.Once
	wl     *bench.Workload
	wlErr  error
)

func workload(b *testing.B) *bench.Workload {
	wlOnce.Do(func() {
		size := 649
		if testing.Short() {
			size = 99
		}
		wl, wlErr = bench.NewWorkload(size)
	})
	if wlErr != nil {
		b.Fatal(wlErr)
	}
	return wl
}

// benchVariant measures one (kind, structure, mode) bar.
func benchVariant(b *testing.B, kind bench.Kind, s bench.Structure, m bench.Mode, o bench.Options) {
	w := workload(b)
	v, err := w.Prepare(kind, s, m, o)
	if err != nil {
		b.Fatal(err)
	}
	var last bench.Measurement
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		last, err = w.MeasureRows(v, 1)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(last.CyclesPerElem, "cyc/elem")
	b.ReportMetric(last.Seconds, "proj-seconds")
}

// BenchmarkFig9aElement regenerates Figure 9a: the element kernel across
// the three structures and five modes.
func BenchmarkFig9aElement(b *testing.B) {
	for _, s := range bench.AllStructures {
		for _, m := range bench.AllModes {
			b.Run(fmt.Sprintf("%s/%s", s, m), func(b *testing.B) {
				benchVariant(b, bench.Element, s, m, bench.Options{})
			})
		}
	}
}

// BenchmarkFig9bLine regenerates Figure 9b: the line kernel.
func BenchmarkFig9bLine(b *testing.B) {
	for _, s := range bench.AllStructures {
		for _, m := range bench.AllModes {
			b.Run(fmt.Sprintf("%s/%s", s, m), func(b *testing.B) {
				benchVariant(b, bench.Line, s, m, bench.Options{})
			})
		}
	}
}

// BenchmarkFig10CompileTime regenerates Figure 10: the transformation time
// of each mode on the line kernels (the paper averages 1000 compiles; the
// benchmark framework picks N).
func BenchmarkFig10CompileTime(b *testing.B) {
	for _, s := range bench.AllStructures {
		for _, m := range []bench.Mode{bench.LLVM, bench.LLVMFix, bench.DBrew, bench.DBrewLLVM} {
			b.Run(fmt.Sprintf("%s/%s", s, m), func(b *testing.B) {
				w := workload(b)
				var totalMS float64
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					v, err := w.Prepare(bench.Line, s, m, bench.Options{})
					if err != nil {
						b.Fatal(err)
					}
					totalMS += float64(v.CompileTime.Microseconds()) / 1000.0
				}
				b.StopTimer()
				b.ReportMetric(totalMS/float64(b.N), "compile-ms")
			})
		}
	}
}

// BenchmarkFig6FlagCache measures the flag-cache effect (Figure 6) on the
// max kernel: identity-transformed code with and without the cache.
func BenchmarkFig6FlagCache(b *testing.B) {
	for _, cached := range []bool{true, false} {
		name := "with-cache"
		if !cached {
			name = "without-cache"
		}
		b.Run(name, func(b *testing.B) {
			w := workload(b)
			lo := liftDefaultsWithFlagCache(cached)
			v, err := w.Prepare(bench.Element, bench.Flat, bench.LLVM, bench.Options{LiftOpts: &lo})
			if err != nil {
				b.Fatal(err)
			}
			var last bench.Measurement
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				last, err = w.MeasureRows(v, 1)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(last.CyclesPerElem, "cyc/elem")
		})
	}
}

// BenchmarkForcedVectorization regenerates the Section VI-B experiment.
func BenchmarkForcedVectorization(b *testing.B) {
	cases := []struct {
		name string
		run  func(w *bench.Workload) (bench.Measurement, error)
	}{
		{"gcc-aligned", func(w *bench.Workload) (bench.Measurement, error) {
			v, err := w.Prepare(bench.Line, bench.Direct, bench.Native, bench.Options{})
			if err != nil {
				return bench.Measurement{}, err
			}
			return w.MeasureRows(v, 1)
		}},
		{"forced-width-2", func(w *bench.Workload) (bench.Measurement, error) {
			v, err := w.Prepare(bench.Line, bench.Flat, bench.LLVMFix, bench.Options{ForceVectorWidth: 2})
			if err != nil {
				return bench.Measurement{}, err
			}
			return w.MeasureRows(v, 1)
		}},
		{"unforced-scalar", func(w *bench.Workload) (bench.Measurement, error) {
			v, err := w.Prepare(bench.Line, bench.Flat, bench.LLVMFix, bench.Options{})
			if err != nil {
				return bench.Measurement{}, err
			}
			return w.MeasureRows(v, 1)
		}},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			w := workload(b)
			var last bench.Measurement
			var err error
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				last, err = c.run(w)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(last.CyclesPerElem, "cyc/elem")
		})
	}
}

// BenchmarkAblations measures the lifter design choices of Section III
// (flag cache, facet cache, GEP addressing) — the ablation study DESIGN.md
// calls out.
func BenchmarkAblations(b *testing.B) {
	type cfg struct {
		name       string
		flagCache  bool
		facetCache bool
		useGEP     bool
	}
	cfgs := []cfg{
		{"baseline", true, true, true},
		{"no-flag-cache", false, true, true},
		{"no-facet-cache", true, false, true},
		{"no-gep", true, true, false},
	}
	for _, c := range cfgs {
		b.Run(c.name, func(b *testing.B) {
			w := workload(b)
			lo := liftDefaultsWithFlagCache(c.flagCache)
			lo.FacetCache = c.facetCache
			lo.UseGEP = c.useGEP
			v, err := w.Prepare(bench.Element, bench.Flat, bench.LLVM, bench.Options{LiftOpts: &lo})
			if err != nil {
				b.Fatal(err)
			}
			var last bench.Measurement
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				last, err = w.MeasureRows(v, 1)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(last.CyclesPerElem, "cyc/elem")
		})
	}
}
