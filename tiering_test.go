package dbrewllvm

import (
	"testing"

	"repro/internal/x86"
	"repro/internal/x86/asm"
)

// buildAddC places f(p, x) = *(int64*)p + x: a load from the first
// (pointer) parameter plus the second parameter. With SetParPtr fixing p to
// a constant buffer, tier 2 folds the load into an immediate.
func buildAddC(t testing.TB, e *Engine) uint64 {
	t.Helper()
	b := asm.NewBuilder()
	b.I(x86.MOV, x86.R64(x86.RAX), x86.MemBD(8, x86.RDI, 0))
	b.I(x86.ADD, x86.R64(x86.RAX), x86.R64(x86.RSI))
	b.Ret()
	code, _, err := b.Assemble(0x400000)
	if err != nil {
		t.Fatal(err)
	}
	return e.PlaceCode(code, "addc")
}

func tieringSetup(t *testing.T, cfg TierConfig) (e *Engine, h *TieredFunc, buf uint64) {
	t.Helper()
	e = NewEngine()
	e.EnableTiering(cfg)
	buf = e.Alloc(8, "coeff")
	if err := e.Mem.WriteU(buf, 8, 1000); err != nil {
		t.Fatal(err)
	}
	fn := buildAddC(t, e)
	r := NewRewriter(e, fn, Sig(Int, Ptr, Int))
	r.SetParPtr(0, buf, 8)
	h, err := r.Tiered("addc")
	if err != nil {
		t.Fatal(err)
	}
	return e, h, buf
}

// TestTieredPromotionSemantics drives a handle through all three tiers and
// checks every call returns the specialized result, regardless of which
// tier executed it and regardless of the caller's value for the fixed
// pointer argument.
func TestTieredPromotionSemantics(t *testing.T) {
	_, h, _ := tieringSetup(t, TierConfig{Tier1Calls: 2, Tier2Calls: 4, Synchronous: true})
	for i := uint64(1); i <= 8; i++ {
		// Arg 0 is garbage on purpose: the dispatcher must pin it to buf.
		got, err := h.Call([]uint64{0xDEADBEEF, i}, nil)
		if err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
		if got != 1000+i {
			t.Fatalf("call %d (at %v): got %d, want %d", i, h.Level(), got, 1000+i)
		}
	}
	if h.Level() != Tier2 {
		t.Fatalf("final level = %v, want tier2", h.Level())
	}
	st := h.Stats()
	if st.Promotions[Tier1] != 1 || st.Promotions[Tier2] != 1 {
		t.Fatalf("promotions = %v, want exactly one per tier", st.Promotions)
	}
	if st.CodeSize == 0 {
		t.Fatal("installed tier2 code has zero size")
	}
}

// TestTieredDeoptOnInvalidate mutates the fixed region, invalidates, and
// checks the handle deoptimizes to tier 0 (new contents visible
// immediately) and then re-promotes to code specialized on the new value.
func TestTieredDeoptOnInvalidate(t *testing.T) {
	e, h, buf := tieringSetup(t, TierConfig{Tier1Calls: 2, Tier2Calls: 4, Synchronous: true})
	for i := uint64(1); i <= 6; i++ {
		if _, err := h.Call([]uint64{0, i}, nil); err != nil {
			t.Fatal(err)
		}
	}
	if h.Level() != Tier2 {
		t.Fatalf("level = %v, want tier2 before invalidation", h.Level())
	}

	if err := e.Mem.WriteU(buf, 8, 7777); err != nil {
		t.Fatal(err)
	}
	if n := e.InvalidateRange(buf, buf+8); n != 1 {
		t.Fatalf("InvalidateRange deoptimized %d functions, want 1", n)
	}
	if h.Level() != Tier0 {
		t.Fatalf("level = %v after invalidation, want tier0", h.Level())
	}

	for i := uint64(1); i <= 8; i++ {
		got, err := h.Call([]uint64{0, i}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if got != 7777+i {
			t.Fatalf("call %d (at %v) after deopt: got %d, want %d", i, h.Level(), got, 7777+i)
		}
	}
	if h.Level() != Tier2 {
		t.Fatalf("no re-promotion after deopt: level = %v", h.Level())
	}
	st := h.Stats()
	if st.Deopts != 1 {
		t.Fatalf("deopts = %d, want 1", st.Deopts)
	}
	if st.Promotions[Tier2] != 2 {
		t.Fatalf("tier2 promotions = %d, want 2 (one per generation)", st.Promotions[Tier2])
	}
}

// TestTieredBackgroundPromotion exercises the default asynchronous mode:
// promotions land eventually (DrainTiering) and never break results.
func TestTieredBackgroundPromotion(t *testing.T) {
	e, h, _ := tieringSetup(t, TierConfig{Tier1Calls: 2, Tier2Calls: 4})
	for i := uint64(1); i <= 64; i++ {
		got, err := h.Call([]uint64{0, i}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if got != 1000+i {
			t.Fatalf("call %d: got %d, want %d", i, got, 1000+i)
		}
	}
	e.DrainTiering()
	if h.Level() != Tier2 {
		t.Fatalf("level after drain = %v, want tier2", h.Level())
	}
	got, err := h.Call([]uint64{0, 5}, nil)
	if err != nil || got != 1005 {
		t.Fatalf("tier2 call: got %d, err %v", got, err)
	}
}

// TestTierStatsSentinel mirrors the CacheStats contract: zero Stats and
// ok == false while tiering is disabled.
func TestTierStatsSentinel(t *testing.T) {
	e := NewEngine()
	if st, ok := e.TierStats(); ok || len(st.Funcs) != 0 {
		t.Fatalf("TierStats on disabled tiering = (%v, %v), want zero/false", st, ok)
	}
	if e.TieringEnabled() {
		t.Fatal("TieringEnabled true before EnableTiering")
	}
	if n := e.InvalidateRange(0, 1<<40); n != 0 {
		t.Fatalf("InvalidateRange without tiering deopted %d", n)
	}
	fn := buildAddC(t, e)
	r := NewRewriter(e, fn, Sig(Int, Ptr, Int))
	if _, err := r.Tiered("addc"); err != ErrTieringDisabled {
		t.Fatalf("Tiered without EnableTiering: err = %v, want ErrTieringDisabled", err)
	}

	e.EnableTiering(TierConfig{})
	if _, err := r.Tiered("addc"); err != nil {
		t.Fatal(err)
	}
	st, ok := e.TierStats()
	if !ok || len(st.Funcs) != 1 || st.Funcs[0].Level != Tier0 {
		t.Fatalf("TierStats after register = (%+v, %v)", st, ok)
	}
	if st.String() == "" {
		t.Fatal("empty stats rendering")
	}
}

// TestTieredFastpathMatchesLegacyTier1 A/Bs the two tier-1 backends: the
// default fastpath baseline and the legacy lift+O1 pipeline must agree on
// every call while parked at tier 1.
func TestTieredFastpathMatchesLegacyTier1(t *testing.T) {
	run := func(legacy bool) []uint64 {
		// Tier2Calls is out of reach, so calls 2..9 all execute tier-1 code.
		_, h, _ := tieringSetup(t, TierConfig{
			Tier1Calls: 2, Tier2Calls: 1 << 62, Synchronous: true, LegacyTier1: legacy,
		})
		var out []uint64
		for i := uint64(1); i <= 9; i++ {
			got, err := h.Call([]uint64{0xDEADBEEF, i}, nil)
			if err != nil {
				t.Fatalf("legacy=%v call %d: %v", legacy, i, err)
			}
			out = append(out, got)
		}
		if h.Level() != Tier1 {
			t.Fatalf("legacy=%v: level = %v, want tier1", legacy, h.Level())
		}
		return out
	}
	fast, old := run(false), run(true)
	for i := range fast {
		if fast[i] != old[i] {
			t.Errorf("call %d: fastpath = %d, legacy = %d", i+1, fast[i], old[i])
		}
	}
}
