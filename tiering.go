package dbrewllvm

// Tiered execution (profile-guided promotion). The one-shot Rewrite API
// forces callers to pick, up front, between the slow emulator and the
// expensive optimizing rewrite; the paper's compile-time/run-time tradeoff
// (Section V, Figure 10) says that choice should depend on how hot the
// function turns out to be. EnableTiering turns the engine into an adaptive
// runtime: functions registered through Rewriter.Tiered start interpreted,
// get cheap single-pass baseline code (internal/fastpath) once warm, and
// receive the full DBrew+O3 specialization once hot — with deoptimization
// back to the interpreter when a fixed memory region is invalidated.
// TierConfig.LegacyTier1 restores the previous lift+O1 tier-1 pipeline for
// A/B comparison.

import (
	"errors"
	"fmt"

	"repro/internal/dbrew"
	"repro/internal/fastpath"
	"repro/internal/jit"
	"repro/internal/lift"
	"repro/internal/opt"
	"repro/internal/tier"
	"repro/internal/trace"
)

// TierConfig tunes the promotion policy; the zero value selects the
// defaults (promote to tier 1 after 10 calls, tier 2 after 100, background
// compilation).
type TierConfig = tier.Config

// TierLevel identifies an execution tier.
type TierLevel = tier.Level

// The engine's execution tiers.
const (
	// Tier0 interprets the original machine code (internal/emu).
	Tier0 = tier.Tier0
	// Tier1 runs the fastpath single-pass baseline backend's code (or the
	// legacy lift+O1 JIT under TierConfig.LegacyTier1).
	Tier1 = tier.Tier1
	// Tier2 runs the fully specialized and optimized (DBrew + opt.O3) code.
	Tier2 = tier.Tier2
)

// TieredFunc is the stable dispatch handle of a registered function: call
// it and the engine runs whatever tier is currently installed.
type TieredFunc = tier.Func

// TierFuncStats is the per-function tiering snapshot.
type TierFuncStats = tier.FuncStats

// ErrTieringDisabled is returned by Rewriter.Tiered when
// Engine.EnableTiering has not been called.
var ErrTieringDisabled = errors.New("dbrewllvm: tiering is not enabled (call Engine.EnableTiering first)")

// EnableTiering switches the engine into tiered-execution mode with the
// given promotion policy. Functions are registered with Rewriter.Tiered and
// then called through their handles; the engine promotes them along
// tier 0 → tier 1 → tier 2 as they cross the configured hotness thresholds,
// compiling in the background and installing each result with an atomic
// code-pointer swap. Enable tiering before registering functions; calling
// it again replaces the manager and orphans existing handles.
func (e *Engine) EnableTiering(cfg TierConfig) {
	e.tiering = tier.NewManager(e.Mem, cfg)
	// Deoptimizations drop their promotion-cache keys; route those removals
	// to the disk level and the fleet eviction broadcast (persist.go).
	e.wireRemoveHook()
}

// TieringEnabled reports whether EnableTiering has been called.
func (e *Engine) TieringEnabled() bool { return e.tiering != nil }

// TierStats returns a snapshot of the tiering state — per-function tier,
// promotion and deopt counts, time-in-tier, and the compile latency
// histogram — plus the promotion compile-cache counters. Like CacheStats,
// it returns the zero tier.Stats as a sentinel with ok == false when
// tiering is disabled.
func (e *Engine) TierStats() (st tier.Stats, ok bool) {
	if e.tiering == nil {
		return tier.Stats{}, false
	}
	return e.tiering.Stats(), true
}

// DrainTiering blocks until all in-flight background promotions have
// settled. Useful before reading TierStats in tests and benchmarks; a
// no-op when tiering is disabled.
func (e *Engine) DrainTiering() {
	if e.tiering != nil {
		e.tiering.Drain()
	}
}

// InvalidateRange declares that bytes in [start, end) were (or are about to
// be) mutated. Every tiered function whose SetMem-declared fixed regions
// overlap the range is deoptimized back to tier 0 — its specialized code
// was compiled against the old contents — and will re-promote over the new
// contents as it becomes hot again. Returns the number of functions
// deoptimized (0 when tiering is disabled).
//
// The one-shot Rewrite cache needs no invalidation call: its keys hash the
// fixed-range contents, so mutated regions miss naturally.
func (e *Engine) InvalidateRange(start, end uint64) int {
	if e.tiering == nil {
		return 0
	}
	return e.tiering.Invalidate(start, end)
}

// Tiered registers the rewriter's function with the engine's tiering
// manager and returns its dispatch handle. The rewriter's configuration —
// fixed parameters, fixed memory regions, FastMath, ForceVectorWidth,
// resource limits — is snapshotted at this point and defines the
// specialization every tier computes:
//
//	tier 0  interprets the original code with fixed parameters pinned at
//	        dispatch, so results match the specialization from call one
//	tier 1  compiles with the fastpath single-pass baseline backend
//	        (straight-line code is byte-copied; everything else is lifted
//	        once and emitted in one fused isel+regalloc walk)
//	tier 2  runs the full DBrew rewrite + lift + opt.O3 + JIT pipeline
//
// The rewriter itself is not retained; it can be reconfigured or discarded
// afterwards. The backend selection is ignored (tiering always uses the
// LLVM-style pipeline for its top tier).
func (r *Rewriter) Tiered(name string) (*TieredFunc, error) {
	mgr := r.eng.tiering
	if mgr == nil {
		return nil, ErrTieringDisabled
	}
	eng := r.eng
	entry, sig := r.entry, r.sig
	fastMath, fvw := r.FastMath, r.ForceVectorWidth
	legacy := mgr.Config().LegacyTier1
	dcfg := r.rw.Config()
	params := r.rw.KnownParams()
	ranges := r.rw.Ranges()

	fixed := make([]tier.FixedArg, len(params))
	for i, p := range params {
		fixed[i] = tier.FixedArg{Idx: p.Idx, Val: p.Value}
	}
	tranges := make([]tier.Range, len(ranges))
	for i, rg := range ranges {
		tranges[i] = tier.Range{Start: rg.Start, End: rg.End}
	}

	compile := func(target TierLevel) (tier.CompileResult, error) {
		// Compilations mutate the shared address space (they allocate code
		// pages); serialize them against one another and against cached
		// Rewrite compiles, exactly like the one-shot path.
		eng.compileMu.Lock()
		defer eng.compileMu.Unlock()
		var tr *trace.Trace
		if eng.traceOn.Load() {
			tr = trace.New(fmt.Sprintf("tier%d.promote", int(target)))
			defer func() {
				tr.Finish()
				eng.lastTrace.Store(tr)
			}()
		}
		switch target {
		case Tier1:
			if legacy {
				return compileTier1(eng, entry, name, sig, fastMath, tr)
			}
			return compileTier1Fastpath(eng, entry, name, sig, fastMath, tr)
		case Tier2:
			return compileTier2(eng, entry, name, sig, dcfg, params, ranges, fastMath, fvw, tr)
		}
		return tier.CompileResult{}, fmt.Errorf("dbrewllvm: no compiler for %v", target)
	}

	return mgr.Register(tier.FuncSpec{
		Name:    name,
		Entry:   entry,
		Fixed:   fixed,
		Ranges:  tranges,
		Compile: compile,
	})
}

// compileTier1Fastpath is the default baseline tier: the single-pass
// fastpath backend either byte-copies straight-line original code or lifts
// once and runs the fused isel+regalloc walk — an order of magnitude
// cheaper than even the legacy lift+O1 pipeline. A fastpath failure falls
// back to the legacy tier-1 compile so promotion never regresses on inputs
// only the full lifter configuration handles.
func compileTier1Fastpath(e *Engine, entry uint64, name string, sig Signature, fastMath bool, tr *trace.Trace) (tier.CompileResult, error) {
	res, err := fastpath.Compile(e.Mem, entry, name+".t1", sig, fastpath.Options{
		NamePrefix: "t1.",
		Trace:      tr,
	})
	if err != nil {
		return compileTier1(e, entry, name, sig, fastMath, tr)
	}
	return tier.CompileResult{Entry: res.Entry, CodeSize: res.CodeSize}, nil
}

// compileTier1 is the legacy baseline tier (TierConfig.LegacyTier1, kept
// for A/B comparison): lift the original code and clean it up with the
// cheap O1 pipeline — no specialization, no structural passes.
func compileTier1(e *Engine, entry uint64, name string, sig Signature, fastMath bool, tr *trace.Trace) (tier.CompileResult, error) {
	lo := lift.DefaultOptions()
	lo.Trace = tr
	l := lift.New(e.Mem, lo)
	f, err := l.LiftFunc(entry, name+".t1", sig)
	if err != nil {
		return tier.CompileResult{}, fmt.Errorf("tier1 lift: %w", err)
	}
	cfg := opt.O1()
	cfg.FastMath = fastMath
	cfg.Trace = tr
	opt.Optimize(f, cfg)
	comp := jit.NewCompiler(e.Mem)
	comp.NamePrefix = "t1."
	comp.Trace = tr
	addr, err := comp.CompileModule(l.Module, f.Nam)
	if err != nil {
		return tier.CompileResult{}, fmt.Errorf("tier1 jit: %w", err)
	}
	return tier.CompileResult{Entry: addr, CodeSize: comp.Sizes[addr]}, nil
}

// compileTier2 is the optimizing tier: the paper's full pipeline — DBrew
// rewrite with the fixed parameters and memory regions, lift, O3, JIT. A
// failed DBrew specialization falls back to lifting the original code, so
// the tier still delivers an O3-optimized (if unspecialized) function.
func compileTier2(e *Engine, entry uint64, name string, sig Signature, dcfg dbrew.Config,
	params []dbrew.ParamFix, ranges []dbrew.Range, fastMath bool, fvw int, tr *trace.Trace) (tier.CompileResult, error) {
	rw := dbrew.NewRewriter(e.Mem, entry, sig)
	rw.SetConfig(dcfg)
	rw.Trace = tr
	for _, p := range params {
		rw.SetPar(p.Idx, p.Value)
	}
	for _, rg := range ranges {
		rw.SetMem(rg.Start, rg.End)
	}
	addr, err := rw.Rewrite()
	if err != nil || rw.Stats.Failed {
		addr = entry // fall back to optimizing the original code
	}
	lo := lift.DefaultOptions()
	lo.Trace = tr
	l := lift.New(e.Mem, lo)
	f, err := l.LiftFunc(addr, name+".t2", sig)
	if err != nil {
		return tier.CompileResult{}, fmt.Errorf("tier2 lift: %w", err)
	}
	cfg := opt.O3()
	cfg.FastMath = fastMath
	cfg.ForceVectorWidth = fvw
	cfg.Trace = tr
	opt.Optimize(f, cfg)
	comp := jit.NewCompiler(e.Mem)
	comp.NamePrefix = "t2."
	comp.Trace = tr
	jaddr, err := comp.CompileModule(l.Module, f.Nam)
	if err != nil {
		return tier.CompileResult{}, fmt.Errorf("tier2 jit: %w", err)
	}
	return tier.CompileResult{Entry: jaddr, CodeSize: comp.Sizes[jaddr]}, nil
}
