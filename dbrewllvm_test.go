package dbrewllvm

import (
	"strings"
	"testing"

	"repro/internal/x86"
	"repro/internal/x86/asm"
)

// buildMax assembles the Figure 6 max(a, b) function.
func buildMax(t *testing.T, e *Engine) uint64 {
	t.Helper()
	b := asm.NewBuilder()
	b.I(x86.MOV, x86.R64(x86.RAX), x86.R64(x86.RDI))
	b.I(x86.CMP, x86.R64(x86.RDI), x86.R64(x86.RSI))
	b.Emit(x86.Inst{Op: x86.CMOVCC, Cond: x86.CondL, Dst: x86.R64(x86.RAX), Src: x86.R64(x86.RSI)})
	b.Ret()
	code, _, err := b.Assemble(0x400000)
	if err != nil {
		t.Fatal(err)
	}
	return e.PlaceCode(code, "max")
}

// buildMulAdd assembles f(a, b) = a*3 + b.
func buildMulAdd(t *testing.T, e *Engine) uint64 {
	t.Helper()
	b := asm.NewBuilder()
	b.I(x86.IMUL3, x86.R64(x86.RAX), x86.R64(x86.RDI), x86.Imm(3, 8))
	b.I(x86.ADD, x86.R64(x86.RAX), x86.R64(x86.RSI))
	b.Ret()
	code, _, err := b.Assemble(0x400000)
	if err != nil {
		t.Fatal(err)
	}
	return e.PlaceCode(code, "muladd")
}

func TestEngineCall(t *testing.T) {
	e := NewEngine()
	fn := buildMax(t, e)
	got, err := e.Call(fn, []uint64{3, 9}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got != 9 {
		t.Errorf("max(3,9) = %d", got)
	}
}

func TestRewriterBothBackends(t *testing.T) {
	for _, backend := range []Backend{BackendDBrew, BackendLLVM} {
		e := NewEngine()
		fn := buildMulAdd(t, e)
		r := NewRewriter(e, fn, Sig(Int, Int, Int))
		r.SetPar(0, 42) // Figure 3: parameter fixed to 42
		r.SetBackend(backend)
		newFn, err := r.Rewrite()
		if err != nil {
			t.Fatalf("backend %d: %v", backend, err)
		}
		if r.Stats.Failed {
			t.Fatalf("backend %d: rewriting failed: %v", backend, r.Stats.Err)
		}
		got, err := e.Call(newFn, []uint64{1, 2}, nil) // par 0 ignored: uses 42
		if err != nil {
			t.Fatal(err)
		}
		if got != 42*3+2 {
			t.Errorf("backend %d: specialized f(1,2) = %d, want 128", backend, got)
		}
	}
}

func TestLiftOptimizeCompile(t *testing.T) {
	e := NewEngine()
	fn := buildMax(t, e)
	lr, err := e.Lift(fn, "max", Sig(Int, Int, Int))
	if err != nil {
		t.Fatal(err)
	}
	if err := lr.Verify(); err != nil {
		t.Fatal(err)
	}
	lr.Optimize()
	if !strings.Contains(lr.IR(), "icmp slt") {
		t.Errorf("flag cache should yield a direct comparison:\n%s", lr.IR())
	}
	jfn, err := lr.Compile(e)
	if err != nil {
		t.Fatal(err)
	}
	got, err := e.Call(jfn, []uint64{^uint64(4), 2}, nil) // max(-5, 2)
	if err != nil {
		t.Fatal(err)
	}
	if int64(got) != 2 {
		t.Errorf("compiled max(-5,2) = %d", int64(got))
	}
}

func TestDisassemble(t *testing.T) {
	e := NewEngine()
	fn := buildMax(t, e)
	lst, err := e.Disassemble(fn, 11) // mov(3) + cmp(3) + cmovl(4) + ret(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(lst) != 4 || !strings.Contains(lst[2], "cmovl") {
		t.Errorf("unexpected listing: %v", lst)
	}
}

func TestMeasure(t *testing.T) {
	e := NewEngine()
	fn := buildMax(t, e)
	_, cycles, insts, err := e.Measure(fn, []uint64{1, 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if insts != 4 || cycles <= 0 {
		t.Errorf("measured %d insts, %.2f cycles", insts, cycles)
	}
}
