package dbrewllvm

import "fmt"

// CacheStats distinguishes "cache disabled" (zero Stats sentinel, ok ==
// false) from "cache enabled but idle" (zero Stats, ok == true). Branch on
// ok — never on the zero counters alone.
func ExampleEngine_CacheStats() {
	eng := NewEngine()

	// Disabled: the zero codecache.Stats is returned as a sentinel.
	if st, ok := eng.CacheStats(); !ok {
		fmt.Printf("disabled: ok=%v (sentinel stats: %v)\n", ok, st)
	}

	// Enabled but idle: also all-zero counters, but ok == true.
	eng.EnableCache(16)
	st, ok := eng.CacheStats()
	fmt.Printf("enabled:  ok=%v hits=%d misses=%d\n", ok, st.Hits, st.Misses)
	// Output:
	// disabled: ok=false (sentinel stats: hits 0, misses 0, inflight-waits 0, evictions 0, entries 0)
	// enabled:  ok=true hits=0 misses=0
}
