package dbrewllvm

import "fmt"

// StatsJSON marshals the cache and tiering counters in one call — the
// payload served by dbrewd's /metrics endpoint. Disabled subsystems are
// omitted from the JSON, so "never enabled" and "enabled but idle" stay
// distinguishable, mirroring the (Stats, ok) accessors.
func ExampleEngine_StatsJSON() {
	eng := NewEngine()

	// Nothing enabled: both sections are omitted.
	b, _ := eng.StatsJSON()
	fmt.Println(string(b))

	// With the specialization cache on, its zero counters appear.
	eng.EnableCache(16)
	b, _ = eng.StatsJSON()
	fmt.Println(string(b))
	// Output:
	// {}
	// {"cache":{"Hits":0,"Misses":0,"Waits":0,"Evictions":0,"Entries":0}}
}

// CacheStats distinguishes "cache disabled" (zero Stats sentinel, ok ==
// false) from "cache enabled but idle" (zero Stats, ok == true). Branch on
// ok — never on the zero counters alone.
func ExampleEngine_CacheStats() {
	eng := NewEngine()

	// Disabled: the zero codecache.Stats is returned as a sentinel.
	if st, ok := eng.CacheStats(); !ok {
		fmt.Printf("disabled: ok=%v (sentinel stats: %v)\n", ok, st)
	}

	// Enabled but idle: also all-zero counters, but ok == true.
	eng.EnableCache(16)
	st, ok := eng.CacheStats()
	fmt.Printf("enabled:  ok=%v hits=%d misses=%d\n", ok, st.Hits, st.Misses)
	// Output:
	// disabled: ok=false (sentinel stats: hits 0, misses 0, inflight-waits 0, evictions 0, entries 0)
	// enabled:  ok=true hits=0 misses=0
}
