package dbrewllvm

import (
	"fmt"
	"os"
)

// StatsJSON marshals the compile counter plus the cache, disk, and tiering
// counters in one call — the payload served by dbrewd's /metrics endpoint.
// Disabled subsystems are omitted from the JSON, so "never enabled" and
// "enabled but idle" stay distinguishable, mirroring the (Stats, ok)
// accessors; the derived cache_hit_ratio appears only once the cache has
// seen at least one lookup (0/0 is omitted, not reported as zero).
func ExampleEngine_StatsJSON() {
	eng := NewEngine()

	// Nothing enabled: only the always-present compile counter.
	b, _ := eng.StatsJSON()
	fmt.Println(string(b))

	// With the specialization cache on, its zero counters appear — but no
	// hit ratio yet, since there have been no lookups.
	eng.EnableCache(16)
	b, _ = eng.StatsJSON()
	fmt.Println(string(b))
	// Output:
	// {"compiles":0,"fastpath_compiles":0}
	// {"compiles":0,"fastpath_compiles":0,"cache":{"Hits":0,"Misses":0,"Waits":0,"Evictions":0,"Entries":0}}
}

// CacheStats distinguishes "cache disabled" (zero Stats sentinel, ok ==
// false) from "cache enabled but idle" (zero Stats, ok == true). Branch on
// ok — never on the zero counters alone.
func ExampleEngine_CacheStats() {
	eng := NewEngine()

	// Disabled: the zero codecache.Stats is returned as a sentinel.
	if st, ok := eng.CacheStats(); !ok {
		fmt.Printf("disabled: ok=%v (sentinel stats: %v)\n", ok, st)
	}

	// Enabled but idle: also all-zero counters, but ok == true.
	eng.EnableCache(16)
	st, ok := eng.CacheStats()
	fmt.Printf("enabled:  ok=%v hits=%d misses=%d\n", ok, st.Hits, st.Misses)
	// Output:
	// disabled: ok=false (sentinel stats: hits 0, misses 0, inflight-waits 0, evictions 0, entries 0)
	// enabled:  ok=true hits=0 misses=0
}

// DiskStats follows the same sentinel contract as CacheStats: with the disk
// cache disabled it returns the zero diskcache.Stats and ok == false; after
// EnableDiskCache the same zero counters mean "enabled but idle". Branch on
// ok — never on the zero counters alone.
func ExampleEngine_DiskStats() {
	eng := NewEngine()

	// Disabled: the zero diskcache.Stats is returned as a sentinel.
	if st, ok := eng.DiskStats(); !ok {
		fmt.Printf("disabled: ok=%v (sentinel stats: %v)\n", ok, st)
	}

	// Enabled but idle: also all-zero counters, but ok == true.
	dir, err := os.MkdirTemp("", "dbrew-example-diskcache")
	if err != nil {
		fmt.Println("tempdir:", err)
		return
	}
	defer os.RemoveAll(dir)
	if err := eng.EnableDiskCache(dir, 1<<20); err != nil {
		fmt.Println("enable:", err)
		return
	}
	st, ok := eng.DiskStats()
	fmt.Printf("enabled:  ok=%v hits=%d misses=%d writes=%d\n", ok, st.Hits, st.Misses, st.Writes)
	// Output:
	// disabled: ok=false (sentinel stats: disk hits 0, misses 0, writes 0, evictions 0, corruptions 0, entries 0 (0 bytes))
	// enabled:  ok=true hits=0 misses=0 writes=0
}
