// Package dbrewllvm is a from-scratch Go reproduction of
//
//	A. Engelke, J. Weidendorfer: "Using LLVM for Optimized Lightweight
//	Binary Re-Writing at Runtime", HIPS workshop at IPDPS, 2017.
//
// It provides the paper's full stack as a library: DBrew-style dynamic
// binary rewriting of x86-64 machine code (parameter fixation, fixed memory
// regions, inlining, binary-level constant propagation and unrolling), an
// x86-64 → SSA-IR lifter with the paper's register-facet and flag-cache
// design, an -O3-like optimization pipeline, and a JIT backend that compiles
// the IR back to x86-64 — all running against a built-in machine emulator
// with a Haswell-like timing model, which substitutes for the paper's
// hardware testbed (see DESIGN.md).
//
// The basic usage mirrors Figure 2/3 of the paper:
//
//	eng := dbrewllvm.NewEngine()
//	// ... place machine code and data into eng.Mem ...
//	r := dbrewllvm.NewRewriter(eng, funcAddr, dbrewllvm.Sig(dbrewllvm.Int, dbrewllvm.Int, dbrewllvm.Int))
//	r.SetPar(1, 42)                      // parameter 1 fixed to 42
//	r.SetBackend(dbrewllvm.BackendLLVM)  // lift + optimize + JIT (this paper)
//	newFn, err := r.Rewrite()
//	res, err := eng.Call(newFn, []uint64{1, 2}, nil)
package dbrewllvm

import (
	"fmt"

	"repro/internal/abi"
	"repro/internal/dbrew"
	"repro/internal/emu"
	"repro/internal/ir"
	"repro/internal/jit"
	"repro/internal/lift"
	"repro/internal/opt"
)

// Class re-exports the ABI parameter classes.
type Class = abi.Class

// Parameter classes for Sig.
const (
	Int   = abi.ClassInt
	Ptr   = abi.ClassPtr
	F64   = abi.ClassF64
	NoRet = abi.ClassNone
)

// Signature describes a function boundary per the SysV AMD64 ABI.
type Signature = abi.Signature

// Sig builds a signature: return class first, then parameters.
func Sig(ret Class, params ...Class) Signature { return abi.Sig(ret, params...) }

// Engine owns an emulated address space and executes code in it. It stands
// in for the host process of the original DBrew: functions live at
// addresses, get rewritten into new addresses, and are called through the
// SysV calling convention.
type Engine struct {
	Mem *emu.Memory
}

// NewEngine creates an empty engine.
func NewEngine() *Engine {
	return &Engine{Mem: emu.NewMemory(0x10000000)}
}

// Alloc reserves zeroed memory and returns its address.
func (e *Engine) Alloc(size int, name string) uint64 {
	return e.Mem.Alloc(size, 16, name).Start
}

// PlaceCode maps machine code at a fresh address and returns it.
func (e *Engine) PlaceCode(code []byte, name string) uint64 {
	r := e.Mem.Alloc(len(code), 16, name)
	copy(r.Data, code)
	return r.Start
}

// Call invokes the function at entry with the given integer/pointer and
// float arguments, returning RAX. Use CallF for a floating-point result.
func (e *Engine) Call(entry uint64, ints []uint64, floats []float64) (uint64, error) {
	m := emu.NewMachine(e.Mem)
	return m.Call(entry, emu.CallArgs{Ints: ints, Floats: floats}, 0)
}

// CallF invokes the function at entry and returns XMM0 as a float64.
func (e *Engine) CallF(entry uint64, ints []uint64, floats []float64) (float64, error) {
	m := emu.NewMachine(e.Mem)
	if _, err := m.Call(entry, emu.CallArgs{Ints: ints, Floats: floats}, 0); err != nil {
		return 0, err
	}
	return ir.RV{Lo: m.XMM[0].Lo}.F64(), nil
}

// Measure runs the function and reports modelled cycles and retired
// instructions alongside the result.
func (e *Engine) Measure(entry uint64, ints []uint64, floats []float64) (rax uint64, cycles float64, insts uint64, err error) {
	m := emu.NewMachine(e.Mem)
	rax, err = m.Call(entry, emu.CallArgs{Ints: ints, Floats: floats}, 0)
	return rax, m.Cycles, m.InstCount, err
}

// Backend selects the code generator of a Rewriter, the configuration this
// paper adds to DBrew (Section II): the classic binary encoder, or the
// lift → optimize → JIT pipeline.
type Backend int

// Backends.
const (
	BackendDBrew Backend = iota
	BackendLLVM
)

// Rewriter mirrors the dbrew_rewriter object: configure known values, pick
// a backend, call Rewrite to obtain a drop-in replacement function.
type Rewriter struct {
	eng     *Engine
	entry   uint64
	sig     Signature
	backend Backend
	rw      *dbrew.Rewriter

	// FastMath enables floating-point optimizations (-ffast-math analog)
	// in the LLVM backend. Default true, as in the paper's evaluation.
	FastMath bool
	// ForceVectorWidth forces loop vectorization at the given width (only
	// 2 is supported), Section VI-B's experiment.
	ForceVectorWidth int

	// Stats of the last Rewrite (valid for both backends).
	Stats dbrew.Stats
	// CodeSize is the size in bytes of the finally generated code.
	CodeSize int
}

// NewRewriter creates a rewriter for the function at entry.
func NewRewriter(e *Engine, entry uint64, sig Signature) *Rewriter {
	return &Rewriter{
		eng:      e,
		entry:    entry,
		sig:      sig,
		rw:       dbrew.NewRewriter(e.Mem, entry, sig),
		FastMath: true,
	}
}

// SetPar fixes parameter idx to a known integer value (dbrew_setpar).
func (r *Rewriter) SetPar(idx int, v uint64) { r.rw.SetPar(idx, v) }

// SetParPtr fixes parameter idx to a pointer whose target region holds
// fixed values.
func (r *Rewriter) SetParPtr(idx int, addr uint64, size int) { r.rw.SetParPtr(idx, addr, size) }

// SetMem declares [start, end) as fixed memory (dbrew_setmem).
func (r *Rewriter) SetMem(start, end uint64) { r.rw.SetMem(start, end) }

// SetBackend selects the code generation backend.
func (r *Rewriter) SetBackend(b Backend) { r.backend = b }

// SetConfig forwards DBrew resource limits.
func (r *Rewriter) SetConfig(c dbrew.Config) { r.rw.SetConfig(c) }

// Rewrite produces the specialized function. With BackendDBrew the binary
// encoder emits the result directly; with BackendLLVM the DBrew output is
// lifted to IR, optimized at -O3, and JIT-compiled (Figure 1's full path).
// On unrecoverable failure the original entry is returned, preserving
// correctness as DBrew's default error handler does.
func (r *Rewriter) Rewrite() (uint64, error) {
	addr, err := r.rw.Rewrite()
	r.Stats = r.rw.Stats
	r.CodeSize = r.Stats.CodeSize
	if err != nil {
		return 0, err
	}
	if r.backend == BackendDBrew || r.Stats.Failed {
		return addr, nil
	}
	l := lift.New(r.eng.Mem, lift.DefaultOptions())
	f, err := l.LiftFunc(addr, "rewritten", r.sig)
	if err != nil {
		// Lifting failure falls back to the DBrew output.
		return addr, nil
	}
	cfg := opt.O3()
	cfg.FastMath = r.FastMath
	cfg.ForceVectorWidth = r.ForceVectorWidth
	opt.Optimize(f, cfg)
	comp := jit.NewCompiler(r.eng.Mem)
	jaddr, err := comp.CompileModule(l.Module, f.Nam)
	if err != nil {
		return addr, nil
	}
	r.CodeSize = comp.Sizes[jaddr]
	return jaddr, nil
}

// LiftResult carries a lifted function and its module for inspection or
// further transformation.
type LiftResult struct {
	Func   *ir.Func
	Module *ir.Module
	lifter *lift.Lifter
}

// Lift converts the function at entry into SSA IR (Section III) without
// specializing it.
func (e *Engine) Lift(entry uint64, name string, sig Signature) (*LiftResult, error) {
	l := lift.New(e.Mem, lift.DefaultOptions())
	f, err := l.LiftFunc(entry, name, sig)
	if err != nil {
		return nil, err
	}
	return &LiftResult{Func: f, Module: l.Module, lifter: l}, nil
}

// LiftWith converts with explicit lifter options (flag cache, facet cache,
// GEP addressing — the paper's design switches).
func (e *Engine) LiftWith(entry uint64, name string, sig Signature, o lift.Options) (*LiftResult, error) {
	l := lift.New(e.Mem, o)
	f, err := l.LiftFunc(entry, name, sig)
	if err != nil {
		return nil, err
	}
	return &LiftResult{Func: f, Module: l.Module, lifter: l}, nil
}

// Optimize runs the -O3-like pipeline on the lifted function.
func (lr *LiftResult) Optimize() opt.Stats { return opt.Optimize(lr.Func, opt.O3()) }

// Compile JIT-compiles the (optimized) function back into the engine's
// address space and returns its entry.
func (lr *LiftResult) Compile(e *Engine) (uint64, error) {
	comp := jit.NewCompiler(e.Mem)
	return comp.CompileModule(lr.Module, lr.Func.Nam)
}

// IR returns the function's textual IR (LLVM-like syntax).
func (lr *LiftResult) IR() string { return ir.FormatFunc(lr.Func) }

// Disassemble renders size bytes of machine code at addr, one instruction
// per line.
func (e *Engine) Disassemble(addr uint64, size int) ([]string, error) {
	return dbrew.Listing(e.Mem, addr, size)
}

// Verify re-checks the structural invariants of a lifted function.
func (lr *LiftResult) Verify() error { return ir.Verify(lr.Func) }

// String summarizes rewriting statistics.
func StatsString(s dbrew.Stats) string {
	return fmt.Sprintf("decoded %d, emitted %d, eliminated %d, inlined %d, code %d bytes",
		s.Decoded, s.Emitted, s.Eliminated, s.Inlined, s.CodeSize)
}

// liftDefaultsWithFlagCache returns the default lifter options with the
// flag cache toggled — a convenience for the Figure 6 benchmarks.
func liftDefaultsWithFlagCache(on bool) lift.Options {
	o := lift.DefaultOptions()
	o.FlagCache = on
	return o
}
