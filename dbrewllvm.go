// Package dbrewllvm is a from-scratch Go reproduction of
//
//	A. Engelke, J. Weidendorfer: "Using LLVM for Optimized Lightweight
//	Binary Re-Writing at Runtime", HIPS workshop at IPDPS, 2017.
//
// It provides the paper's full stack as a library: DBrew-style dynamic
// binary rewriting of x86-64 machine code (parameter fixation, fixed memory
// regions, inlining, binary-level constant propagation and unrolling), an
// x86-64 → SSA-IR lifter with the paper's register-facet and flag-cache
// design, an -O3-like optimization pipeline, and a JIT backend that compiles
// the IR back to x86-64 — all running against a built-in machine emulator
// with a Haswell-like timing model, which substitutes for the paper's
// hardware testbed (see DESIGN.md).
//
// The basic usage mirrors Figure 2/3 of the paper:
//
//	eng := dbrewllvm.NewEngine()
//	// ... place machine code and data into eng.Mem ...
//	r := dbrewllvm.NewRewriter(eng, funcAddr, dbrewllvm.Sig(dbrewllvm.Int, dbrewllvm.Int, dbrewllvm.Int))
//	r.SetPar(1, 42)                      // parameter 1 fixed to 42
//	r.SetBackend(dbrewllvm.BackendLLVM)  // lift + optimize + JIT (this paper)
//	newFn, err := r.Rewrite()
//	res, err := eng.Call(newFn, []uint64{1, 2}, nil)
package dbrewllvm

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/abi"
	"repro/internal/codecache"
	"repro/internal/dbrew"
	"repro/internal/diskcache"
	"repro/internal/emu"
	"repro/internal/ir"
	"repro/internal/jit"
	"repro/internal/lift"
	"repro/internal/opt"
	"repro/internal/tier"
	"repro/internal/trace"
)

// Class re-exports the ABI parameter classes.
type Class = abi.Class

// Parameter classes for Sig.
const (
	Int   = abi.ClassInt
	Ptr   = abi.ClassPtr
	F64   = abi.ClassF64
	NoRet = abi.ClassNone
)

// Signature describes a function boundary per the SysV AMD64 ABI.
type Signature = abi.Signature

// Sig builds a signature: return class first, then parameters.
func Sig(ret Class, params ...Class) Signature { return abi.Sig(ret, params...) }

// Engine owns an emulated address space and executes code in it. It stands
// in for the host process of the original DBrew: functions live at
// addresses, get rewritten into new addresses, and are called through the
// SysV calling convention.
type Engine struct {
	Mem *emu.Memory

	// cache, when non-nil, memoizes Rewrite results by specialization key
	// (see EnableCache). Reads are lock-free on the Rewrite hot path; the
	// pointer itself is only mutated by EnableCache/DisableCache, which must
	// not race with in-flight Rewrite calls.
	cache *codecache.Cache[cachedCode]

	// compileMu serializes actual compilations. The emulated address space
	// (Mem) is not safe for concurrent mutation — Alloc appends regions —
	// so concurrent Rewrite calls may only run one compile at a time. Cache
	// hits bypass this lock entirely, which is what makes the warm path
	// scale across goroutines.
	compileMu sync.Mutex

	// disk, when non-nil, is the persistent second cache level installed by
	// EnableDiskCache (see persist.go). It sits behind the in-memory cache:
	// misses consult it before compiling, compiles write through to it.
	disk *diskcache.Store

	// evictNotify, when non-nil, observes every explicit specialization
	// removal after memory and disk both dropped the key (see persist.go);
	// the dbrewd fleet layer hooks eviction broadcasts here.
	evictNotify func(codecache.Key)

	// compiles counts actual pipeline executions (DBrew rewrite, and for the
	// LLVM backend lift+opt+JIT) — NOT lookups served from the in-memory
	// cache, the disk store, or a peer. It is the counter warm-restart and
	// fleet exactly-once tests assert on.
	compiles atomic.Int64

	// fastpathCompiles counts the subset of compiles that took the fastpath
	// strategy (Rewriter.Fastpath): specialized by DBrew but emitted by the
	// single-pass baseline backend instead of the O3+linear-scan pipeline.
	fastpathCompiles atomic.Int64

	// tiering, when non-nil, is the tiered-execution manager installed by
	// EnableTiering (see tiering.go).
	tiering *tier.Manager

	// traceOn gates pipeline tracing. When false (the default) Rewrite runs
	// with a nil *trace.Trace, which every stage treats as "record nothing"
	// at the cost of one atomic load — the hot path stays allocation-free.
	traceOn atomic.Bool
	// lastTrace holds the most recently finished pipeline trace.
	lastTrace atomic.Pointer[trace.Trace]
}

// cachedCode is the per-specialization payload kept in the code cache:
// enough to restore a Rewriter's outputs without recompiling.
type cachedCode struct {
	addr     uint64
	codeSize int
	stats    dbrew.Stats
	// ir is the formatted IR of the compiled function, captured only while
	// the disk cache is enabled (it is part of the persisted artifact).
	// Empty for the DBrew backend and for adopted artifacts without IR.
	ir string
}

// NewEngine creates an empty engine.
func NewEngine() *Engine {
	return &Engine{Mem: emu.NewMemory(0x10000000)}
}

// EnableCache turns on the specialization code cache: subsequent Rewrite
// calls whose configuration hashes to the same key return the previously
// generated code instead of recompiling, and concurrent Rewrite calls for
// the same key compile exactly once (the rest block on the in-flight
// result). capacity bounds the number of cached specializations; evicted
// entries only forget the mapping — placed code pages stay valid. capacity
// <= 0 selects a default of 1024.
//
// Enable or disable the cache only while no Rewrite calls are in flight.
func (e *Engine) EnableCache(capacity int) {
	e.cache = codecache.New[cachedCode](capacity)
	e.wireRemoveHook()
}

// DisableCache turns the specialization cache off (existing generated code
// remains valid and callable).
func (e *Engine) DisableCache() { e.cache = nil }

// CacheStats returns a snapshot of the specialization-cache counters.
//
// When caching is disabled — EnableCache was never called, or DisableCache
// ran — it returns the zero codecache.Stats as a documented sentinel
// together with ok == false. Callers must branch on ok: a zero Stats with
// ok == true means an enabled cache that has simply seen no traffic yet,
// which is a different situation from "no cache at all". See the
// ExampleEngine_CacheStats godoc example.
func (e *Engine) CacheStats() (st codecache.Stats, ok bool) {
	if e.cache == nil {
		return codecache.Stats{}, false
	}
	return e.cache.Stats(), true
}

// EngineStats aggregates every observable engine counter — the
// specialization-cache counters, the disk artifact store, the derived cache
// hit ratio, the compile counter, and the tiered-execution snapshot — into
// one JSON-marshalable value. Disabled subsystems are nil, so consumers can
// tell "disabled" from "enabled but idle" exactly like the (Stats, ok)
// accessor pairs do.
type EngineStats struct {
	// Compiles counts actual pipeline executions: every Rewrite that ran the
	// compiler rather than being served from memory, disk, or a peer. Always
	// present (a fresh engine reports 0).
	Compiles int64 `json:"compiles"`
	// FastpathCompiles counts the subset of Compiles that used the fastpath
	// strategy (specialize, then single-pass baseline emit with no optimizer
	// rounds) — the deadline-pressured requests in dbrewd.
	FastpathCompiles int64 `json:"fastpath_compiles"`
	// Cache is CacheStats, nil when the specialization cache is disabled.
	Cache *codecache.Stats `json:"cache,omitempty"`
	// CacheHitRatio is the derived warm fraction Hits/(Hits+Misses) of the
	// in-memory cache, nil when the cache is disabled or has seen no
	// lookups (0/0 is unrepresentable, not zero).
	CacheHitRatio *float64 `json:"cache_hit_ratio,omitempty"`
	// Disk is DiskStats, nil when the disk cache is disabled.
	Disk *diskcache.Stats `json:"disk,omitempty"`
	// Tiering is TierStats, nil when tiering is disabled.
	Tiering *tier.Stats `json:"tiering,omitempty"`
}

// Stats snapshots CacheStats, DiskStats, and TierStats in one call.
func (e *Engine) Stats() EngineStats {
	s := EngineStats{
		Compiles:         e.compiles.Load(),
		FastpathCompiles: e.fastpathCompiles.Load(),
	}
	if st, ok := e.CacheStats(); ok {
		s.Cache = &st
		if lookups := st.Hits + st.Misses; lookups > 0 {
			ratio := float64(st.Hits) / float64(lookups)
			s.CacheHitRatio = &ratio
		}
	}
	if st, ok := e.DiskStats(); ok {
		s.Disk = &st
	}
	if st, ok := e.TierStats(); ok {
		s.Tiering = &st
	}
	return s
}

// StatsJSON marshals the EngineStats snapshot — compile counter, cache
// counters with derived hit ratio, disk-store counters, tiering — to JSON
// in one call; this is the payload dbrewd's /metrics endpoint embeds. See
// the ExampleEngine_StatsJSON godoc example.
func (e *Engine) StatsJSON() ([]byte, error) {
	return json.Marshal(e.Stats())
}

// CompileCount returns the number of actual pipeline executions this engine
// has run — Rewrite calls (or tier promotions) that compiled, as opposed to
// being served from the in-memory cache, the disk store, or a peer. The
// warm-restart acceptance test asserts this stays zero when every request
// hits disk.
func (e *Engine) CompileCount() int64 { return e.compiles.Load() }

// EnableTracing turns on pipeline tracing: every subsequent Rewrite (and
// tier promotion) records one span per executed stage — cache lookup, dbrew
// rewrite, decode, lift, each optimizer round, JIT emit — with durations and
// input/output sizes. The most recent trace is retrievable via LastTrace or
// TraceJSON. Tracing is engine-global and safe to toggle at runtime; while
// off, the only cost on the Rewrite path is a single atomic load.
func (e *Engine) EnableTracing() { e.traceOn.Store(true) }

// DisableTracing turns pipeline tracing off. Already-captured traces remain
// retrievable.
func (e *Engine) DisableTracing() { e.traceOn.Store(false) }

// TracingEnabled reports whether pipeline tracing is on.
func (e *Engine) TracingEnabled() bool { return e.traceOn.Load() }

// LastTrace returns the most recently completed pipeline trace, or nil when
// tracing never captured one. The returned trace is finished and safe to
// read concurrently.
func (e *Engine) LastTrace() *trace.Trace { return e.lastTrace.Load() }

// TraceJSON marshals the most recent pipeline trace to JSON. It returns nil
// when no trace has been captured yet.
func (e *Engine) TraceJSON() []byte {
	return e.lastTrace.Load().JSON()
}

// RegisterMetrics exports every engine counter — specialization-cache
// hits/misses/waits/evictions, tier promotions/deopts, per-tier function
// gauges, and the compile-latency histogram — into reg under the "dbrew_"
// namespace. Disabled subsystems export nothing (their snapshot functions
// report ok == false), so the output only ever shows live series.
func (e *Engine) RegisterMetrics(reg *trace.Registry) {
	codecache.RegisterMetrics(reg, "dbrew_codecache", e.CacheStats)
	diskcache.RegisterMetrics(reg, "dbrew_diskcache", e.DiskStats)
	tier.RegisterMetrics(reg, "dbrew_tier", e.TierStats)
	reg.Counter("dbrew_engine_compiles_total",
		"Actual pipeline executions (not served from memory, disk, or a peer).",
		func() float64 { return float64(e.compiles.Load()) })
	reg.Counter("dbrew_engine_fastpath_compiles_total",
		"Pipeline executions that used the fastpath strategy (baseline backend, no optimizer).",
		func() float64 { return float64(e.fastpathCompiles.Load()) })
}

// CachePeek reports whether the specialization key k is already cached and
// whether a compilation for it is currently in flight; ok is false when the
// cache is disabled. Together with Rewriter.CacheKey it forms the
// coalescing hook of the dbrewd service: requests whose key is cached or in
// flight are routed straight to RewriteCtx (which joins the existing flight
// instead of compiling) without consuming a compile-concurrency slot.
func (e *Engine) CachePeek(k codecache.Key) (cached, inflight, ok bool) {
	if e.cache == nil {
		return false, false, false
	}
	cached, inflight = e.cache.Peek(k)
	return cached, inflight, true
}

// Alloc reserves zeroed memory and returns its address.
func (e *Engine) Alloc(size int, name string) uint64 {
	return e.Mem.Alloc(size, 16, name).Start
}

// PlaceCode maps machine code at a fresh address and returns it.
func (e *Engine) PlaceCode(code []byte, name string) uint64 {
	r := e.Mem.Alloc(len(code), 16, name)
	copy(r.Data, code)
	return r.Start
}

// Call invokes the function at entry with the given integer/pointer and
// float arguments, returning RAX. Use CallF for a floating-point result.
func (e *Engine) Call(entry uint64, ints []uint64, floats []float64) (uint64, error) {
	m := emu.NewMachine(e.Mem)
	return m.Call(entry, emu.CallArgs{Ints: ints, Floats: floats}, 0)
}

// CallF invokes the function at entry and returns XMM0 as a float64.
func (e *Engine) CallF(entry uint64, ints []uint64, floats []float64) (float64, error) {
	m := emu.NewMachine(e.Mem)
	if _, err := m.Call(entry, emu.CallArgs{Ints: ints, Floats: floats}, 0); err != nil {
		return 0, err
	}
	return ir.RV{Lo: m.XMM[0].Lo}.F64(), nil
}

// Measure runs the function and reports modelled cycles and retired
// instructions alongside the result.
func (e *Engine) Measure(entry uint64, ints []uint64, floats []float64) (rax uint64, cycles float64, insts uint64, err error) {
	m := emu.NewMachine(e.Mem)
	rax, err = m.Call(entry, emu.CallArgs{Ints: ints, Floats: floats}, 0)
	return rax, m.Cycles, m.InstCount, err
}

// Backend selects the code generator of a Rewriter, the configuration this
// paper adds to DBrew (Section II): the classic binary encoder, or the
// lift → optimize → JIT pipeline.
type Backend int

// Backends.
const (
	BackendDBrew Backend = iota
	BackendLLVM
)

// Stage identifies the pipeline stage a Rewrite failure originated in, so
// callers (e.g. the dbrewd service) can map failures to distinct responses.
type Stage int

// The pipeline stages of Figure 1, in execution order.
const (
	// StageRewrite is the DBrew binary-rewriting pass.
	StageRewrite Stage = iota
	// StageLift is the x86-64 → IR lifter.
	StageLift
	// StageOptimize is the IR optimization pipeline (including the
	// post-optimization verifier that guards Strict mode).
	StageOptimize
	// StageJIT is the IR → x86-64 code generator.
	StageJIT
)

// String names the stage.
func (s Stage) String() string {
	switch s {
	case StageRewrite:
		return "rewrite"
	case StageLift:
		return "lift"
	case StageOptimize:
		return "optimize"
	case StageJIT:
		return "jit"
	}
	return fmt.Sprintf("stage(%d)", int(s))
}

// Per-stage sentinels for errors.Is. A *StageError matches exactly the
// sentinel of its stage:
//
//	if errors.Is(err, dbrewllvm.ErrStageLift) { ... }
var (
	ErrStageRewrite  = errors.New("dbrewllvm: rewrite stage failed")
	ErrStageLift     = errors.New("dbrewllvm: lift stage failed")
	ErrStageOptimize = errors.New("dbrewllvm: optimize stage failed")
	ErrStageJIT      = errors.New("dbrewllvm: jit stage failed")
)

func stageSentinel(s Stage) error {
	switch s {
	case StageRewrite:
		return ErrStageRewrite
	case StageLift:
		return ErrStageLift
	case StageOptimize:
		return ErrStageOptimize
	case StageJIT:
		return ErrStageJIT
	}
	return nil
}

// StageError wraps a Rewrite failure with the pipeline stage it came from.
// Unwrap exposes the cause; Is matches the per-stage sentinel.
type StageError struct {
	Stage Stage
	Err   error
}

// Error formats as "dbrewllvm: <stage> stage: <cause>".
func (e *StageError) Error() string {
	return fmt.Sprintf("dbrewllvm: %s stage: %v", e.Stage, e.Err)
}

// Unwrap returns the underlying cause.
func (e *StageError) Unwrap() error { return e.Err }

// Is reports whether target is the sentinel of this error's stage.
func (e *StageError) Is(target error) bool { return target == stageSentinel(e.Stage) }

// Rewriter mirrors the dbrew_rewriter object: configure known values, pick
// a backend, call Rewrite to obtain a drop-in replacement function.
type Rewriter struct {
	eng     *Engine
	entry   uint64
	sig     Signature
	backend Backend
	rw      *dbrew.Rewriter

	// FastMath enables floating-point optimizations (-ffast-math analog)
	// in the LLVM backend. Default true, as in the paper's evaluation.
	FastMath bool
	// ForceVectorWidth forces loop vectorization at the given width (only
	// 2 is supported), Section VI-B's experiment.
	ForceVectorWidth int

	// NoCache bypasses the engine's specialization cache for this rewriter
	// even when Engine.EnableCache is active (e.g. for one-off rewrites that
	// would only pollute the cache).
	NoCache bool

	// Fastpath trades steady-state code quality for compile latency in the
	// LLVM backend: the DBrew rewrite still runs (the specialization is
	// preserved), but the lifted IR skips the optimizer entirely and is
	// emitted by the JIT's single-pass baseline mode. dbrewd selects this
	// strategy automatically when a request's remaining deadline budget is
	// below its configured threshold. The specialization cache key includes
	// this flag, so fastpath and full builds of one configuration never
	// alias.
	Fastpath bool

	// Trace, when non-nil, receives the pipeline spans of the next Rewrite
	// call (cache lookup, rewrite, decode, lift, optimize rounds, jit) —
	// callers that own a larger trace (e.g. dbrewd's per-request traces) set
	// it to embed the pipeline inside their own span tree. When nil and the
	// engine has tracing enabled, Rewrite creates a trace per call and
	// publishes it through Engine.LastTrace.
	Trace *trace.Trace

	// Strict turns silent fallbacks into errors: instead of returning the
	// DBrew output (or the original entry) when a pipeline stage fails,
	// Rewrite returns a *StageError identifying the failing stage — the
	// contract a service needs to map failures to distinct status codes.
	// Strict also runs the IR verifier after optimization, surfacing
	// pipeline bugs as StageOptimize errors instead of miscompiled code.
	// The default (false) keeps DBrew's "always return runnable code"
	// behavior.
	Strict bool

	// Stats of the last Rewrite (valid for both backends).
	Stats dbrew.Stats
	// CodeSize is the size in bytes of the finally generated code.
	CodeSize int
	// CacheHit reports whether the last Rewrite was served from the engine's
	// specialization cache (including waiting on another goroutine's
	// in-flight compilation) instead of compiling.
	CacheHit bool
	// Source names the level that produced the last Rewrite's code:
	// "memory" (in-memory cache hit, or joined another goroutine's in-flight
	// compile), "disk" (persisted artifact restored without compiling), or
	// "compile" (the pipeline actually ran).
	Source string

	// lastIR holds the formatted IR captured by the last compile while the
	// disk cache is enabled; it rides into the persisted artifact.
	lastIR string
	// diskHit records that the last miss closure was satisfied from disk.
	diskHit bool
}

// NewRewriter creates a rewriter for the function at entry.
func NewRewriter(e *Engine, entry uint64, sig Signature) *Rewriter {
	return &Rewriter{
		eng:      e,
		entry:    entry,
		sig:      sig,
		rw:       dbrew.NewRewriter(e.Mem, entry, sig),
		FastMath: true,
	}
}

// SetPar fixes parameter idx to a known integer value (dbrew_setpar).
func (r *Rewriter) SetPar(idx int, v uint64) { r.rw.SetPar(idx, v) }

// SetParPtr fixes parameter idx to a pointer whose target region holds
// fixed values.
func (r *Rewriter) SetParPtr(idx int, addr uint64, size int) { r.rw.SetParPtr(idx, addr, size) }

// SetMem declares [start, end) as fixed memory (dbrew_setmem).
func (r *Rewriter) SetMem(start, end uint64) { r.rw.SetMem(start, end) }

// SetBackend selects the code generation backend.
func (r *Rewriter) SetBackend(b Backend) { r.backend = b }

// SetConfig forwards DBrew resource limits.
func (r *Rewriter) SetConfig(c dbrew.Config) { r.rw.SetConfig(c) }

// Rewrite produces the specialized function. With BackendDBrew the binary
// encoder emits the result directly; with BackendLLVM the DBrew output is
// lifted to IR, optimized at -O3, and JIT-compiled (Figure 1's full path).
// On unrecoverable failure the original entry is returned, preserving
// correctness as DBrew's default error handler does.
//
// When the engine's specialization cache is enabled (Engine.EnableCache)
// and NoCache is false, the result is memoized under a canonical key of the
// entry address, signature, backend, optimization switches, fixed
// parameters, and the current contents of all fixed memory ranges. Mutating
// bytes inside a SetMem range therefore changes the key and forces a fresh
// compile — cached code can never go stale. Concurrent Rewrite calls are
// safe as long as each goroutine uses its own Rewriter; same-key calls
// compile exactly once.
func (r *Rewriter) Rewrite() (uint64, error) {
	return r.RewriteCtx(context.Background())
}

// RewriteCtx is Rewrite with a deadline: a call that would block — waiting
// on another goroutine's in-flight compilation of the same key, or queued
// behind the engine's compile lock — gives up when ctx is done and returns
// ctx.Err(). A compilation that has already started is never aborted
// mid-way (partial code generation would corrupt nothing, but the work is
// not abandonable); the in-flight result still lands in the cache for the
// next caller. This is the entry point dbrewd's per-request deadlines use.
func (r *Rewriter) RewriteCtx(ctx context.Context) (uint64, error) {
	r.CacheHit = false
	r.Source = "compile"
	r.diskHit = false
	tr := r.Trace
	if tr == nil && r.eng.traceOn.Load() {
		// Engine-owned trace: finish and publish it whatever the outcome.
		tr = trace.New("rewrite")
		defer func() {
			tr.Finish()
			r.eng.lastTrace.Store(tr)
		}()
	}
	cache := r.eng.cache
	if cache == nil || r.NoCache {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		return r.compile(tr)
	}
	key, ok := r.cacheKey()
	if !ok {
		// A fixed range points at unmapped memory; let the uncached path
		// surface whatever the rewriter does with it.
		return r.compile(tr)
	}
	csp := tr.Start("cache")
	v, hit, err := cache.DoCtx(ctx, key, func() (cachedCode, error) {
		r.eng.compileMu.Lock()
		defer r.eng.compileMu.Unlock()
		if err := ctx.Err(); err != nil {
			// The deadline passed while queued behind another compile;
			// don't start work nobody is waiting for.
			return cachedCode{}, err
		}
		// Second level: a persisted artifact for this key skips the
		// pipeline entirely (the warm-restart path).
		if cc, ok := r.eng.diskLookup(key, tr); ok {
			r.diskHit = true
			return cc, nil
		}
		addr, err := r.compile(tr)
		if err != nil {
			return cachedCode{}, err
		}
		cc := cachedCode{addr: addr, codeSize: r.CodeSize, stats: r.Stats, ir: r.lastIR}
		r.eng.diskWrite(key, cc, tr)
		return cc, nil
	})
	if err != nil {
		csp.EndErr(err)
		return 0, err
	}
	outcome := "miss"
	if hit {
		outcome = "hit"
	}
	csp.Int("code_bytes", int64(v.codeSize)).Outcome(outcome).End()
	r.CacheHit = hit
	switch {
	case hit:
		r.Source = "memory"
	case r.diskHit:
		r.Source = "disk"
	}
	r.Stats = v.stats
	r.CodeSize = v.codeSize
	return v.addr, nil
}

// CacheKey exposes the canonical specialization key of the current
// configuration — the same key Rewrite memoizes and coalesces under. ok is
// false when the configuration is not hashable (a fixed range points at
// unmapped memory) or caching is disabled. Use with Engine.CachePeek to
// dispatch requests without starting duplicate compilations.
func (r *Rewriter) CacheKey() (codecache.Key, bool) {
	if r.eng.cache == nil || r.NoCache {
		return codecache.Key{}, false
	}
	return r.cacheKey()
}

// cacheKey canonicalizes the rewriter configuration into a specialization
// cache key. Fixed memory ranges contribute their current byte contents, so
// two rewrites over different data never collide. ok is false when a fixed
// range cannot be read (unmapped memory).
func (r *Rewriter) cacheKey() (codecache.Key, bool) {
	h := codecache.NewHasher()
	h.U64(r.entry)
	h.I64(int64(r.backend))
	h.Bool(r.FastMath)
	h.Bool(r.Fastpath)
	h.I64(int64(r.ForceVectorWidth))

	h.I64(int64(r.sig.Ret))
	h.U64(uint64(len(r.sig.Params)))
	for _, p := range r.sig.Params {
		h.I64(int64(p))
	}

	cfg := r.rw.Config()
	h.I64(int64(cfg.BufferSize))
	h.I64(int64(cfg.MaxInsts))
	h.I64(int64(cfg.InlineDepth))

	params := r.rw.KnownParams()
	h.U64(uint64(len(params)))
	for _, p := range params {
		h.I64(int64(p.Idx))
		h.U64(p.Value)
	}

	ranges := append([]dbrew.Range(nil), r.rw.Ranges()...)
	sort.Slice(ranges, func(i, j int) bool {
		if ranges[i].Start != ranges[j].Start {
			return ranges[i].Start < ranges[j].Start
		}
		return ranges[i].End < ranges[j].End
	})
	h.U64(uint64(len(ranges)))
	for _, rg := range ranges {
		h.U64(rg.Start)
		h.U64(rg.End)
		data, err := r.eng.Mem.Read(rg.Start, int(rg.End-rg.Start))
		if err != nil {
			return codecache.Key{}, false
		}
		h.Bytes(data)
	}
	return h.Sum(), true
}

// compile is the uncached Rewrite path: DBrew pass, then (for BackendLLVM)
// lift → optimize → JIT. Stage failures fall back to the best earlier
// result (DBrew's default error handling) unless Strict is set, in which
// case they surface as *StageError. tr (which may be nil) receives one span
// per executed stage.
func (r *Rewriter) compile(tr *trace.Trace) (uint64, error) {
	r.eng.compiles.Add(1)
	r.lastIR = ""
	r.rw.Trace = tr
	addr, err := r.rw.Rewrite()
	r.Stats = r.rw.Stats
	r.CodeSize = r.Stats.CodeSize
	if err != nil {
		return 0, &StageError{Stage: StageRewrite, Err: err}
	}
	if r.Stats.Failed && r.Strict {
		cause := r.Stats.Err
		if cause == nil {
			cause = errors.New("dbrew fell back to the original function")
		}
		return 0, &StageError{Stage: StageRewrite, Err: cause}
	}
	if r.backend == BackendDBrew || r.Stats.Failed {
		return addr, nil
	}
	lo := lift.DefaultOptions()
	lo.Trace = tr
	l := lift.New(r.eng.Mem, lo)
	f, err := l.LiftFunc(addr, "rewritten", r.sig)
	if err != nil {
		if r.Strict {
			return 0, &StageError{Stage: StageLift, Err: err}
		}
		// Lifting failure falls back to the DBrew output.
		return addr, nil
	}
	if r.Fastpath {
		r.eng.fastpathCompiles.Add(1)
	} else {
		cfg := opt.O3()
		cfg.FastMath = r.FastMath
		cfg.ForceVectorWidth = r.ForceVectorWidth
		cfg.Trace = tr
		opt.Optimize(f, cfg)
	}
	if r.eng.disk != nil {
		// The persisted artifact carries the optimized IR for debuggability;
		// only pay the formatting cost when something will store it.
		r.lastIR = ir.FormatFunc(f)
	}
	if r.Strict {
		if err := ir.Verify(f); err != nil {
			return 0, &StageError{Stage: StageOptimize, Err: err}
		}
	}
	comp := jit.NewCompiler(r.eng.Mem)
	comp.Baseline = r.Fastpath
	comp.Trace = tr
	jaddr, err := comp.CompileModule(l.Module, f.Nam)
	if err != nil {
		if r.Strict {
			return 0, &StageError{Stage: StageJIT, Err: err}
		}
		return addr, nil
	}
	r.CodeSize = comp.Sizes[jaddr]
	return jaddr, nil
}

// LiftResult carries a lifted function and its module for inspection or
// further transformation.
type LiftResult struct {
	Func   *ir.Func
	Module *ir.Module
	lifter *lift.Lifter
}

// Lift converts the function at entry into SSA IR (Section III) without
// specializing it.
func (e *Engine) Lift(entry uint64, name string, sig Signature) (*LiftResult, error) {
	l := lift.New(e.Mem, lift.DefaultOptions())
	f, err := l.LiftFunc(entry, name, sig)
	if err != nil {
		return nil, err
	}
	return &LiftResult{Func: f, Module: l.Module, lifter: l}, nil
}

// LiftWith converts with explicit lifter options (flag cache, facet cache,
// GEP addressing — the paper's design switches).
func (e *Engine) LiftWith(entry uint64, name string, sig Signature, o lift.Options) (*LiftResult, error) {
	l := lift.New(e.Mem, o)
	f, err := l.LiftFunc(entry, name, sig)
	if err != nil {
		return nil, err
	}
	return &LiftResult{Func: f, Module: l.Module, lifter: l}, nil
}

// Optimize runs the -O3-like pipeline on the lifted function.
func (lr *LiftResult) Optimize() opt.Stats { return opt.Optimize(lr.Func, opt.O3()) }

// Compile JIT-compiles the (optimized) function back into the engine's
// address space and returns its entry.
func (lr *LiftResult) Compile(e *Engine) (uint64, error) {
	comp := jit.NewCompiler(e.Mem)
	return comp.CompileModule(lr.Module, lr.Func.Nam)
}

// IR returns the function's textual IR (LLVM-like syntax).
func (lr *LiftResult) IR() string { return ir.FormatFunc(lr.Func) }

// Disassemble renders size bytes of machine code at addr, one instruction
// per line.
func (e *Engine) Disassemble(addr uint64, size int) ([]string, error) {
	return dbrew.Listing(e.Mem, addr, size)
}

// Verify re-checks the structural invariants of a lifted function.
func (lr *LiftResult) Verify() error { return ir.Verify(lr.Func) }

// String summarizes rewriting statistics.
func StatsString(s dbrew.Stats) string {
	return fmt.Sprintf("decoded %d, emitted %d, eliminated %d, inlined %d, code %d bytes",
		s.Decoded, s.Emitted, s.Eliminated, s.Inlined, s.CodeSize)
}

// liftDefaultsWithFlagCache returns the default lifter options with the
// flag cache toggled — a convenience for the Figure 6 benchmarks.
func liftDefaultsWithFlagCache(on bool) lift.Options {
	o := lift.DefaultOptions()
	o.FlagCache = on
	return o
}
