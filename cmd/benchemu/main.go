// Command benchemu runs the emulator dispatch benchmark and records a
// machine-readable summary in BENCH_emu.json: ns/op and instructions/second
// for both execution engines, the block-engine speedup over the
// per-instruction interpreter, and the speedup against the recorded seed
// baseline (the first committed run's interpreter numbers, kept sticky so
// later runs keep comparing against the same reference).
//
// The benchmark itself is BenchmarkEmuDispatch in internal/emu, invoked
// through `go test -bench` so the numbers in the JSON are exactly the
// numbers a developer sees running the benchmark by hand.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"sort"
	"strconv"
	"strings"
)

// EngineResult summarizes one engine's samples.
type EngineResult struct {
	NsPerOp    float64   `json:"ns_per_op"`    // median over samples
	InstPerS   float64   `json:"inst_per_sec"` // median over samples
	Samples    int       `json:"samples"`
	RawNsPerOp []float64 `json:"raw_ns_per_op"`
}

// Baseline is the sticky seed reference: the interpreter numbers from the
// first recorded run. It survives re-runs so speedups stay comparable.
type Baseline struct {
	NsPerOp  float64 `json:"ns_per_op"`
	InstPerS float64 `json:"inst_per_sec"`
	Source   string  `json:"source"`
}

// Report is the BENCH_emu.json schema.
type Report struct {
	Benchmark     string                  `json:"benchmark"`
	Count         int                     `json:"count"`
	Engines       map[string]EngineResult `json:"engines"`
	Speedup       float64                 `json:"speedup"`         // interp/blocks, this run
	SeedBaseline  Baseline                `json:"seed_baseline"`   // sticky first-run interpreter
	SpeedupVsSeed float64                 `json:"speedup_vs_seed"` // seed ns/op over blocks ns/op
}

func main() {
	out := flag.String("out", "BENCH_emu.json", "output file")
	count := flag.Int("count", 5, "benchmark repetitions (go test -count)")
	flag.Parse()

	samples, err := runBench(*count)
	if err != nil {
		fatal(err)
	}
	rep := &Report{
		Benchmark: "BenchmarkEmuDispatch",
		Count:     *count,
		Engines:   map[string]EngineResult{},
	}
	for name, ss := range samples {
		var ns, ips []float64
		for _, s := range ss {
			ns = append(ns, s.nsPerOp)
			ips = append(ips, s.instPerS)
		}
		rep.Engines[name] = EngineResult{
			NsPerOp:    median(ns),
			InstPerS:   median(ips),
			Samples:    len(ss),
			RawNsPerOp: ns,
		}
	}
	interp, okI := rep.Engines["interp"]
	blocks, okB := rep.Engines["blocks"]
	if !okI || !okB || blocks.NsPerOp <= 0 {
		fatal(fmt.Errorf("missing engine samples: interp=%v blocks=%v", okI, okB))
	}
	rep.Speedup = interp.NsPerOp / blocks.NsPerOp

	// Keep the first recorded interpreter run as the seed baseline.
	rep.SeedBaseline = Baseline{
		NsPerOp:  interp.NsPerOp,
		InstPerS: interp.InstPerS,
		Source:   "per-instruction interpreter (pre-translation step loop)",
	}
	if prev, err := os.ReadFile(*out); err == nil {
		var old Report
		if json.Unmarshal(prev, &old) == nil && old.SeedBaseline.NsPerOp > 0 {
			rep.SeedBaseline = old.SeedBaseline
		}
	}
	rep.SpeedupVsSeed = rep.SeedBaseline.NsPerOp / blocks.NsPerOp

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("%s: interp %.0f ns/op (%.3g inst/s), blocks %.0f ns/op (%.3g inst/s)\n",
		*out, interp.NsPerOp, interp.InstPerS, blocks.NsPerOp, blocks.InstPerS)
	fmt.Printf("speedup %.2fx this run, %.2fx vs recorded seed baseline\n",
		rep.Speedup, rep.SpeedupVsSeed)
}

type sample struct {
	nsPerOp  float64
	instPerS float64
}

// runBench invokes the benchmark and parses the standard `go test -bench`
// output lines: "BenchmarkEmuDispatch/<engine>-N  iters  X ns/op  Y inst/s".
func runBench(count int) (map[string][]sample, error) {
	cmd := exec.Command("go", "test", "-run", "^$",
		"-bench", "^BenchmarkEmuDispatch$", "-count", strconv.Itoa(count),
		"./internal/emu")
	cmd.Stderr = os.Stderr
	outBytes, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go test -bench: %w", err)
	}
	samples := map[string][]sample{}
	for _, line := range strings.Split(string(outBytes), "\n") {
		if !strings.HasPrefix(line, "BenchmarkEmuDispatch/") {
			continue
		}
		f := strings.Fields(line)
		name := strings.TrimPrefix(f[0], "BenchmarkEmuDispatch/")
		if i := strings.LastIndexByte(name, '-'); i > 0 {
			name = name[:i] // strip the -GOMAXPROCS suffix
		}
		var s sample
		for i := 2; i+1 < len(f); i += 2 {
			v, err := strconv.ParseFloat(f[i], 64)
			if err != nil {
				continue
			}
			switch f[i+1] {
			case "ns/op":
				s.nsPerOp = v
			case "inst/s":
				s.instPerS = v
			}
		}
		if s.nsPerOp > 0 {
			samples[name] = append(samples[name], s)
		}
	}
	if len(samples) == 0 {
		return nil, fmt.Errorf("no benchmark lines in output:\n%s", outBytes)
	}
	return samples, nil
}

func median(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	s := append([]float64(nil), v...)
	sort.Float64s(s)
	if n := len(s); n%2 == 1 {
		return s[n/2]
	} else {
		return (s[n/2-1] + s[n/2]) / 2
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchemu:", err)
	os.Exit(1)
}
