// Command benchemu runs the emulator engine benchmarks and records a
// machine-readable summary in BENCH_emu.json:
//
//   - BenchmarkEmuDispatch (internal/emu): the straight-line stencil kernel
//     on the per-instruction interpreter and the block engine. The emu test
//     binary links no trace compiler, so these rows are the pure two-tier
//     baseline.
//   - BenchmarkEmuEngines (internal/jit): a loop-dominated ALU kernel on all
//     four tiers — interp, blocks, the tracing JIT pinned to its bytecode VM
//     (tracevm), and the full trace tier with native x86-64 emission (traces).
//   - BenchmarkEmuLinked (internal/jit): adjacent counted loops whose traces
//     hand off through the trace-to-trace link cache; the traces row also
//     reports how many links the run performed.
//
// For each engine the JSON records median ns/op and instructions/second, the
// block-engine speedup over the interpreter, the trace-tier speedup over the
// block engine on the loop kernel, the native-over-VM speedup, the linked
// kernel's rows and link count, and the speedup against the recorded seed
// baseline (the first committed run's interpreter numbers, kept sticky so
// later runs keep comparing against the same reference). A non-gating drift
// report compares this run's medians against the previously committed file:
// drift is printed and recorded, never an error — a slow machine must not
// fail the gate. Two results do gate: native emission must hold a 2x floor
// over the trace VM on the loop kernel, and the linked kernel must actually
// link (both are machine-independent ratios/counts, unlike raw ns/op).
//
// The benchmarks are invoked through `go test -bench` so the numbers in the
// JSON are exactly the numbers a developer sees running them by hand.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"sort"
	"strconv"
	"strings"
)

// EngineResult summarizes one engine's samples.
type EngineResult struct {
	NsPerOp    float64   `json:"ns_per_op"`    // median over samples
	InstPerS   float64   `json:"inst_per_sec"` // median over samples
	Links      float64   `json:"links,omitempty"`
	Samples    int       `json:"samples"`
	RawNsPerOp []float64 `json:"raw_ns_per_op"`
}

// Baseline is the sticky seed reference: the interpreter numbers from the
// first recorded run. It survives re-runs so speedups stay comparable.
type Baseline struct {
	NsPerOp  float64 `json:"ns_per_op"`
	InstPerS float64 `json:"inst_per_sec"`
	Source   string  `json:"source"`
}

// Drift is one engine's median movement against the previously committed
// report. Informational only: recorded and printed, never gating.
type Drift struct {
	Benchmark   string  `json:"benchmark"`
	Engine      string  `json:"engine"`
	PrevNsPerOp float64 `json:"prev_ns_per_op"`
	NsPerOp     float64 `json:"ns_per_op"`
	Percent     float64 `json:"percent"` // + is slower than before
}

// Report is the BENCH_emu.json schema.
type Report struct {
	Benchmark     string                  `json:"benchmark"`
	Count         int                     `json:"count"`
	Engines       map[string]EngineResult `json:"engines"`
	Speedup       float64                 `json:"speedup"`         // interp/blocks, this run
	SeedBaseline  Baseline                `json:"seed_baseline"`   // sticky first-run interpreter
	SpeedupVsSeed float64                 `json:"speedup_vs_seed"` // seed ns/op over blocks ns/op

	// The loop-dominated kernel, run on all four tiers (internal/jit's
	// BenchmarkEmuEngines — importing jit is what arms the trace tier).
	LoopBenchmark string                  `json:"loop_benchmark"`
	LoopEngines   map[string]EngineResult `json:"loop_engines"`
	TraceSpeedup  float64                 `json:"trace_speedup"`  // loop blocks/traces ns per op
	NativeSpeedup float64                 `json:"native_speedup"` // loop tracevm/traces ns per op

	// The linked kernel: adjacent loops whose traces chain through the
	// trace-to-trace link cache (internal/jit's BenchmarkEmuLinked).
	LinkedBenchmark    string                  `json:"linked_benchmark"`
	LinkedEngines      map[string]EngineResult `json:"linked_engines"`
	LinkedTraceSpeedup float64                 `json:"linked_trace_speedup"` // linked blocks/traces
	LinkedLinks        float64                 `json:"linked_links"`         // links recorded by the traces row

	Drift []Drift `json:"drift,omitempty"` // vs previously committed file; non-gating
}

func main() {
	out := flag.String("out", "BENCH_emu.json", "output file")
	count := flag.Int("count", 5, "benchmark repetitions (go test -count)")
	flag.Parse()

	dispatch, err := runBench("BenchmarkEmuDispatch", "./internal/emu", *count)
	if err != nil {
		fatal(err)
	}
	loop, err := runBench("BenchmarkEmuEngines", "./internal/jit", *count)
	if err != nil {
		fatal(err)
	}
	linked, err := runBench("BenchmarkEmuLinked", "./internal/jit", *count)
	if err != nil {
		fatal(err)
	}
	rep := &Report{
		Benchmark:       "BenchmarkEmuDispatch",
		Count:           *count,
		Engines:         summarize(dispatch),
		LoopBenchmark:   "BenchmarkEmuEngines",
		LoopEngines:     summarize(loop),
		LinkedBenchmark: "BenchmarkEmuLinked",
		LinkedEngines:   summarize(linked),
	}
	interp, okI := rep.Engines["interp"]
	blocks, okB := rep.Engines["blocks"]
	if !okI || !okB || blocks.NsPerOp <= 0 {
		fatal(fmt.Errorf("missing engine samples: interp=%v blocks=%v", okI, okB))
	}
	rep.Speedup = interp.NsPerOp / blocks.NsPerOp

	lblocks, okLB := rep.LoopEngines["blocks"]
	ltraces, okLT := rep.LoopEngines["traces"]
	lvm, okLV := rep.LoopEngines["tracevm"]
	if !okLB || !okLT || !okLV || ltraces.NsPerOp <= 0 {
		fatal(fmt.Errorf("missing loop-kernel samples: blocks=%v tracevm=%v traces=%v", okLB, okLV, okLT))
	}
	rep.TraceSpeedup = lblocks.NsPerOp / ltraces.NsPerOp
	rep.NativeSpeedup = lvm.NsPerOp / ltraces.NsPerOp

	kblocks, okKB := rep.LinkedEngines["blocks"]
	ktraces, okKT := rep.LinkedEngines["traces"]
	if !okKB || !okKT || ktraces.NsPerOp <= 0 {
		fatal(fmt.Errorf("missing linked-kernel samples: blocks=%v traces=%v", okKB, okKT))
	}
	rep.LinkedTraceSpeedup = kblocks.NsPerOp / ktraces.NsPerOp
	rep.LinkedLinks = ktraces.Links

	// Gating floors: unlike raw ns/op these are machine-independent, so a
	// slow runner cannot trip them while a regression in the native backend
	// or the link cache must.
	if rep.NativeSpeedup < 2.0 {
		fatal(fmt.Errorf("native traces %.2fx over the trace VM, below the 2x floor", rep.NativeSpeedup))
	}
	if rep.LinkedLinks <= 0 {
		fatal(fmt.Errorf("linked kernel recorded no trace-to-trace links"))
	}

	// Keep the first recorded interpreter run as the seed baseline, and
	// diff this run's medians against the previously committed file.
	rep.SeedBaseline = Baseline{
		NsPerOp:  interp.NsPerOp,
		InstPerS: interp.InstPerS,
		Source:   "per-instruction interpreter (pre-translation step loop)",
	}
	if prev, err := os.ReadFile(*out); err == nil {
		var old Report
		if json.Unmarshal(prev, &old) == nil {
			if old.SeedBaseline.NsPerOp > 0 {
				rep.SeedBaseline = old.SeedBaseline
			}
			rep.Drift = append(rep.Drift, driftOf(rep.Benchmark, old.Engines, rep.Engines)...)
			rep.Drift = append(rep.Drift, driftOf(rep.LoopBenchmark, old.LoopEngines, rep.LoopEngines)...)
			rep.Drift = append(rep.Drift, driftOf(rep.LinkedBenchmark, old.LinkedEngines, rep.LinkedEngines)...)
		}
	}
	rep.SpeedupVsSeed = rep.SeedBaseline.NsPerOp / blocks.NsPerOp

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("%s: interp %.0f ns/op (%.3g inst/s), blocks %.0f ns/op (%.3g inst/s)\n",
		*out, interp.NsPerOp, interp.InstPerS, blocks.NsPerOp, blocks.InstPerS)
	fmt.Printf("speedup %.2fx this run, %.2fx vs recorded seed baseline\n",
		rep.Speedup, rep.SpeedupVsSeed)
	fmt.Printf("loop kernel: blocks %.0f ns/op (%.3g inst/s), tracevm %.0f ns/op (%.3g inst/s), traces %.0f ns/op (%.3g inst/s)\n",
		lblocks.NsPerOp, lblocks.InstPerS, lvm.NsPerOp, lvm.InstPerS, ltraces.NsPerOp, ltraces.InstPerS)
	fmt.Printf("trace tier %.2fx over blocks, native %.2fx over trace VM\n",
		rep.TraceSpeedup, rep.NativeSpeedup)
	fmt.Printf("linked kernel: blocks %.0f ns/op, traces %.0f ns/op (%.2fx, %.0f links)\n",
		kblocks.NsPerOp, ktraces.NsPerOp, rep.LinkedTraceSpeedup, rep.LinkedLinks)
	for _, d := range rep.Drift {
		fmt.Printf("drift (non-gating): %s/%s %+.1f%% vs committed (%.0f -> %.0f ns/op)\n",
			d.Benchmark, d.Engine, d.Percent, d.PrevNsPerOp, d.NsPerOp)
	}
}

// driftOf compares this run's medians against a previous report's.
func driftOf(bench string, old, cur map[string]EngineResult) []Drift {
	var out []Drift
	names := make([]string, 0, len(cur))
	for name := range cur {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		prev, ok := old[name]
		if !ok || prev.NsPerOp <= 0 {
			continue
		}
		now := cur[name]
		out = append(out, Drift{
			Benchmark:   bench,
			Engine:      name,
			PrevNsPerOp: prev.NsPerOp,
			NsPerOp:     now.NsPerOp,
			Percent:     (now.NsPerOp/prev.NsPerOp - 1) * 100,
		})
	}
	return out
}

func summarize(samples map[string][]sample) map[string]EngineResult {
	out := map[string]EngineResult{}
	for name, ss := range samples {
		var ns, ips, lk []float64
		for _, s := range ss {
			ns = append(ns, s.nsPerOp)
			ips = append(ips, s.instPerS)
			lk = append(lk, s.links)
		}
		out[name] = EngineResult{
			NsPerOp:    median(ns),
			InstPerS:   median(ips),
			Links:      median(lk),
			Samples:    len(ss),
			RawNsPerOp: ns,
		}
	}
	return out
}

type sample struct {
	nsPerOp  float64
	instPerS float64
	links    float64
}

// runBench invokes one benchmark and parses the standard `go test -bench`
// output lines: "Benchmark<name>/<engine>-N  iters  X ns/op  Y inst/s".
func runBench(name, pkg string, count int) (map[string][]sample, error) {
	cmd := exec.Command("go", "test", "-run", "^$",
		"-bench", "^"+name+"$", "-count", strconv.Itoa(count), pkg)
	cmd.Stderr = os.Stderr
	outBytes, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go test -bench %s: %w", name, err)
	}
	samples := map[string][]sample{}
	for _, line := range strings.Split(string(outBytes), "\n") {
		if !strings.HasPrefix(line, name+"/") {
			continue
		}
		f := strings.Fields(line)
		engine := strings.TrimPrefix(f[0], name+"/")
		if i := strings.LastIndexByte(engine, '-'); i > 0 {
			engine = engine[:i] // strip the -GOMAXPROCS suffix
		}
		var s sample
		for i := 2; i+1 < len(f); i += 2 {
			v, err := strconv.ParseFloat(f[i], 64)
			if err != nil {
				continue
			}
			switch f[i+1] {
			case "ns/op":
				s.nsPerOp = v
			case "inst/s":
				s.instPerS = v
			case "links":
				s.links = v
			}
		}
		if s.nsPerOp > 0 {
			samples[engine] = append(samples[engine], s)
		}
	}
	if len(samples) == 0 {
		return nil, fmt.Errorf("no %s lines in output:\n%s", name, outBytes)
	}
	return samples, nil
}

func median(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	s := append([]float64(nil), v...)
	sort.Float64s(s)
	if n := len(s); n%2 == 1 {
		return s[n/2]
	} else {
		return (s[n/2-1] + s[n/2]) / 2
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchemu:", err)
	os.Exit(1)
}
