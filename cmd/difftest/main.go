// Command difftest runs the differential validator from the command line:
// randomly generated x86-64 programs are executed along every path of the
// reproduction (native emulation, lift+interpret, lift+O3+interpret,
// lift+O3+JIT, DBrew identity rewrite) and all results — including the
// scratch memory window — are compared bit-for-bit.
//
// Usage:
//
//	difftest -start 1 -seeds 500        # seeds 1..500
//	difftest -seeds 100 -v              # print each program description
//	difftest -cachecheck                # cached vs fresh code bytes, all modes
//
// A non-zero exit status means at least one divergence was found; the
// offending seed, path, and inputs are printed so the failure can be
// replayed with `go test -run TestDifferential ./internal/crosstest` after
// adding the seed there.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
	"repro/internal/crosstest"
	"repro/internal/dbrew"
	"repro/internal/emu"
	"repro/internal/ir"
	"repro/internal/jit"
	"repro/internal/lift"
	"repro/internal/opt"
)

var inputs = [][2]uint64{
	{0, 0},
	{1, 2},
	{0xFFFFFFFFFFFFFFFF, 1},
	{0x8000000000000000, 0x7FFFFFFFFFFFFFFF},
	{12345, 678910},
	{0xDEADBEEF, 0xCAFEBABE12345678},
}

func main() {
	start := flag.Int64("start", 1, "first seed")
	seeds := flag.Int64("seeds", 100, "number of seeds to run")
	verbose := flag.Bool("v", false, "print each program description")
	cachecheck := flag.Bool("cachecheck", false,
		"compare specialization-cache hits against fresh compiles byte for byte")
	flag.Parse()

	if *cachecheck {
		if err := runCacheCheck(); err != nil {
			fmt.Fprintln(os.Stderr, "difftest:", err)
			os.Exit(1)
		}
		return
	}

	failures := 0
	for seed := *start; seed < *start+*seeds; seed++ {
		p, err := crosstest.Generate(seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "seed %d: generate: %v\n", seed, err)
			failures++
			continue
		}
		if *verbose {
			fmt.Printf("seed %-6d %s\n", seed, p.Desc)
		}
		if err := runSeed(p); err != nil {
			fmt.Fprintf(os.Stderr, "seed %d: %v\n", seed, err)
			failures++
		}
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "%d of %d seeds diverged\n", failures, *seeds)
		os.Exit(1)
	}
	fmt.Printf("all %d seeds agree across all five paths\n", *seeds)
}

// runCacheCheck validates the specialization cache differentially: for each
// of the five Section VI modes over the three stencil structures, the code a
// cache hit returns must be byte-identical to a freshly compiled variant of
// the same request. Element kernels are leaf functions, so the generated
// bytes are position-independent and comparable across placements.
func runCacheCheck() error {
	w, err := bench.NewWorkload(33)
	if err != nil {
		return err
	}
	w.EnableCache(256)
	checked := 0
	for _, mode := range bench.AllModes {
		for _, s := range bench.AllStructures {
			if _, _, err := w.PrepareCached(bench.Element, s, mode, bench.Options{}); err != nil {
				return fmt.Errorf("%v/%v: populate: %w", s, mode, err)
			}
			cached, hit, err := w.PrepareCached(bench.Element, s, mode, bench.Options{})
			if err != nil {
				return fmt.Errorf("%v/%v: cached: %w", s, mode, err)
			}
			if !hit {
				return fmt.Errorf("%v/%v: expected a cache hit", s, mode)
			}
			fresh, err := w.Prepare(bench.Element, s, mode, bench.Options{})
			if err != nil {
				return fmt.Errorf("%v/%v: fresh: %w", s, mode, err)
			}
			if cached.CodeSize != fresh.CodeSize {
				return fmt.Errorf("%v/%v: code size diverges: cached %d, fresh %d",
					s, mode, cached.CodeSize, fresh.CodeSize)
			}
			if cached.CodeSize > 0 {
				cb, err := w.Mem.Read(cached.Entry, cached.CodeSize)
				if err != nil {
					return err
				}
				fb, err := w.Mem.Read(fresh.Entry, fresh.CodeSize)
				if err != nil {
					return err
				}
				if !bytes.Equal(cb, fb) {
					return fmt.Errorf("%v/%v: cached and fresh code bytes diverge", s, mode)
				}
			}
			fmt.Printf("cachecheck %-12s %-12s %5d bytes identical\n", s, mode, cached.CodeSize)
			checked++
		}
	}
	fmt.Printf("cachecheck: cached == fresh for all %d mode/structure combinations\n", checked)
	return nil
}

// runSeed builds every variant of one program and compares all paths on the
// fixed input set.
func runSeed(p *crosstest.Program) error {
	sig := p.Sig()
	mem, entry, scratch, err := p.Place()
	if err != nil {
		return fmt.Errorf("place: %w", err)
	}

	lRaw := lift.New(mem, lift.DefaultOptions())
	fRaw, err := lRaw.LiftFunc(entry, "raw", sig)
	if err != nil {
		return fmt.Errorf("lift: %w", err)
	}
	lOpt := lift.New(mem, lift.DefaultOptions())
	fOpt, err := lOpt.LiftFunc(entry, "opt", sig)
	if err != nil {
		return fmt.Errorf("lift2: %w", err)
	}
	// Strict FP: fast-math legitimately changes signed zeros/association.
	cfg := opt.O3()
	cfg.FastMath = false
	opt.Optimize(fOpt, cfg)
	if err := ir.Verify(fOpt); err != nil {
		return fmt.Errorf("post-O3 verify: %w", err)
	}
	comp := jit.NewCompiler(mem)
	jitEntry, err := comp.CompileModule(lOpt.Module, "opt")
	if err != nil {
		return fmt.Errorf("jit: %w", err)
	}
	rw := dbrew.NewRewriter(mem, entry, sig)
	dbrewEntry, err := rw.Rewrite()
	if err != nil {
		return fmt.Errorf("dbrew: %w", err)
	}
	if rw.Stats.Failed {
		return fmt.Errorf("dbrew fell back: %v", rw.Stats.Err)
	}

	for _, in := range inputs {
		if err := crosstest.ResetScratch(mem, scratch); err != nil {
			return err
		}
		want, wantBuf, err := crosstest.RunNative(mem, entry, scratch, p, in[0], in[1])
		if err != nil {
			return fmt.Errorf("in=%v: native: %w", in, err)
		}

		crosstest.ResetScratch(mem, scratch)
		got, buf, err := interp(mem, fRaw, scratch, in)
		if err != nil {
			return fmt.Errorf("in=%v: interp: %w", in, err)
		}
		if err := compare("lift+interp", in, want, got, wantBuf, buf); err != nil {
			return err
		}

		crosstest.ResetScratch(mem, scratch)
		got, buf, err = interp(mem, fOpt, scratch, in)
		if err != nil {
			return fmt.Errorf("in=%v: O3 interp: %w", in, err)
		}
		if err := compare("lift+O3+interp", in, want, got, wantBuf, buf); err != nil {
			return err
		}

		crosstest.ResetScratch(mem, scratch)
		got, buf, err = crosstest.RunNative(mem, jitEntry, scratch, p, in[0], in[1])
		if err != nil {
			return fmt.Errorf("in=%v: jit run: %w", in, err)
		}
		if err := compare("lift+O3+jit", in, want, got, wantBuf, buf); err != nil {
			return err
		}

		crosstest.ResetScratch(mem, scratch)
		got, buf, err = crosstest.RunNative(mem, dbrewEntry, scratch, p, in[0], in[1])
		if err != nil {
			return fmt.Errorf("in=%v: dbrew run: %w", in, err)
		}
		if err := compare("dbrew", in, want, got, wantBuf, buf); err != nil {
			return err
		}
	}
	return nil
}

func interp(mem *emu.Memory, f *ir.Func, scratch uint64, in [2]uint64) (uint64, []byte, error) {
	ip := ir.NewInterp(mem)
	ip.MaxSteps = 5_000_000
	res, err := ip.CallFunc(f, []ir.RV{{Lo: in[0]}, {Lo: in[1]}, {Lo: scratch}})
	if err != nil {
		return 0, nil, err
	}
	buf, err := mem.Read(scratch, crosstest.ScratchSize)
	return res.Lo, buf, err
}

func compare(path string, in [2]uint64, want, got uint64, wantBuf, buf []byte) error {
	if got != want {
		return fmt.Errorf("%s in=%v: result %#x, native %#x", path, in, got, want)
	}
	if !bytes.Equal(wantBuf, buf) {
		return fmt.Errorf("%s in=%v: scratch memory diverges", path, in)
	}
	return nil
}
