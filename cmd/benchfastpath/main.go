// Command benchfastpath runs the tier-1 backend benchmarks and records a
// machine-readable summary in BENCH_fastpath.json:
//
//   - BenchmarkTier1Compile (internal/bench): tier-1 compile latency for the
//     legacy lift+O1 pipeline, the fastpath backend's real decision path, and
//     fastpath with the copy shortcut disabled — over both the branchy flat
//     element kernel (lowering route) and a straight-line kernel (copy route).
//
// The JSON records median ns/op per backend/subject, the fastpath speedup on
// each subject, whether the >=5x compile-latency target holds on the
// copy-eligible subject (recorded, not gating — a slow machine must not fail
// the build), and the speedup against the sticky seed baseline (the first
// committed run's legacy numbers). A non-gating drift report compares this
// run's medians against the previously committed file.
//
// The benchmarks are invoked through `go test -bench` so the numbers in the
// JSON are exactly the numbers a developer sees running them by hand.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"sort"
	"strconv"
	"strings"
)

// Result summarizes one backend/subject's samples.
type Result struct {
	NsPerOp    float64   `json:"ns_per_op"` // median over samples
	Samples    int       `json:"samples"`
	RawNsPerOp []float64 `json:"raw_ns_per_op"`
}

// Baseline is the sticky seed reference: the legacy backend's numbers from
// the first recorded run. It survives re-runs so speedups stay comparable.
type Baseline struct {
	NsPerOp float64 `json:"ns_per_op"`
	Source  string  `json:"source"`
}

// Drift is one backend's median movement against the previously committed
// report. Informational only: recorded and printed, never gating.
type Drift struct {
	Backend     string  `json:"backend"`
	PrevNsPerOp float64 `json:"prev_ns_per_op"`
	NsPerOp     float64 `json:"ns_per_op"`
	Percent     float64 `json:"percent"` // + is slower than before
}

// Report is the BENCH_fastpath.json schema.
type Report struct {
	Benchmark string            `json:"benchmark"`
	Count     int               `json:"count"`
	Backends  map[string]Result `json:"backends"`

	// CopySpeedup is legacy over fastpath on the straight-line subject,
	// where the byte-copy shortcut applies — the headline tier-1
	// compile-latency improvement. LowerSpeedup is the same ratio on the
	// branchy element kernel (lowering route, lift-dominated on both
	// sides). ShortcutGain isolates the copy shortcut: lowering the
	// straight-line subject over copying it.
	CopySpeedup  float64 `json:"copy_speedup"`
	LowerSpeedup float64 `json:"lower_speedup"`
	ShortcutGain float64 `json:"shortcut_gain"`
	// Gate5xMet records whether CopySpeedup cleared the >=5x target on
	// this machine. Recorded, never gating.
	Gate5xMet bool `json:"gate_5x_met"`

	SeedBaseline  Baseline `json:"seed_baseline"`   // sticky first-run legacy/straight
	SpeedupVsSeed float64  `json:"speedup_vs_seed"` // seed ns/op over fastpath/straight ns/op

	Drift []Drift `json:"drift,omitempty"` // vs previously committed file; non-gating
}

func main() {
	out := flag.String("out", "BENCH_fastpath.json", "output file")
	count := flag.Int("count", 5, "benchmark repetitions (go test -count)")
	flag.Parse()

	samples, err := runBench("BenchmarkTier1Compile", "./internal/bench", *count)
	if err != nil {
		fatal(err)
	}
	rep := &Report{
		Benchmark: "BenchmarkTier1Compile",
		Count:     *count,
		Backends:  summarize(samples),
	}
	need := func(name string) Result {
		r, ok := rep.Backends[name]
		if !ok || r.NsPerOp <= 0 {
			fatal(fmt.Errorf("missing %s samples in benchmark output", name))
		}
		return r
	}
	legacyStraight := need("legacy/straight")
	fastStraight := need("fastpath/straight")
	lowerStraight := need("lower/straight")
	legacyElement := need("legacy/element")
	fastElement := need("fastpath/element")

	rep.CopySpeedup = legacyStraight.NsPerOp / fastStraight.NsPerOp
	rep.LowerSpeedup = legacyElement.NsPerOp / fastElement.NsPerOp
	rep.ShortcutGain = lowerStraight.NsPerOp / fastStraight.NsPerOp
	rep.Gate5xMet = rep.CopySpeedup >= 5

	// Keep the first recorded legacy run as the seed baseline, and diff
	// this run's medians against the previously committed file.
	rep.SeedBaseline = Baseline{
		NsPerOp: legacyStraight.NsPerOp,
		Source:  "legacy lift+O1 tier-1 pipeline, straight-line subject",
	}
	if prev, err := os.ReadFile(*out); err == nil {
		var old Report
		if json.Unmarshal(prev, &old) == nil {
			if old.SeedBaseline.NsPerOp > 0 {
				rep.SeedBaseline = old.SeedBaseline
			}
			rep.Drift = driftOf(old.Backends, rep.Backends)
		}
	}
	rep.SpeedupVsSeed = rep.SeedBaseline.NsPerOp / fastStraight.NsPerOp

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("%s: straight-line subject: legacy %.0f ns/op, fastpath %.0f ns/op (copy %.1fx, vs seed %.1fx)\n",
		*out, legacyStraight.NsPerOp, fastStraight.NsPerOp, rep.CopySpeedup, rep.SpeedupVsSeed)
	fmt.Printf("element kernel (lowering route): legacy %.0f ns/op, fastpath %.0f ns/op (%.2fx)\n",
		legacyElement.NsPerOp, fastElement.NsPerOp, rep.LowerSpeedup)
	fmt.Printf("copy shortcut alone: %.1fx over lowering the same subject; >=5x target met: %v\n",
		rep.ShortcutGain, rep.Gate5xMet)
	for _, d := range rep.Drift {
		fmt.Printf("drift (non-gating): %s %+.1f%% vs committed (%.0f -> %.0f ns/op)\n",
			d.Backend, d.Percent, d.PrevNsPerOp, d.NsPerOp)
	}
}

// driftOf compares this run's medians against a previous report's.
func driftOf(old, cur map[string]Result) []Drift {
	var out []Drift
	names := make([]string, 0, len(cur))
	for name := range cur {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		prev, ok := old[name]
		if !ok || prev.NsPerOp <= 0 {
			continue
		}
		now := cur[name]
		out = append(out, Drift{
			Backend:     name,
			PrevNsPerOp: prev.NsPerOp,
			NsPerOp:     now.NsPerOp,
			Percent:     (now.NsPerOp/prev.NsPerOp - 1) * 100,
		})
	}
	return out
}

func summarize(samples map[string][]float64) map[string]Result {
	out := map[string]Result{}
	for name, ns := range samples {
		out[name] = Result{
			NsPerOp:    median(ns),
			Samples:    len(ns),
			RawNsPerOp: ns,
		}
	}
	return out
}

// runBench invokes the benchmark and parses the standard `go test -bench`
// output lines: "Benchmark<name>/<backend>/<subject>-N  iters  X ns/op".
func runBench(name, pkg string, count int) (map[string][]float64, error) {
	cmd := exec.Command("go", "test", "-run", "^$",
		"-bench", "^"+name+"$", "-count", strconv.Itoa(count), pkg)
	cmd.Stderr = os.Stderr
	outBytes, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go test -bench %s: %w", name, err)
	}
	samples := map[string][]float64{}
	for _, line := range strings.Split(string(outBytes), "\n") {
		if !strings.HasPrefix(line, name+"/") {
			continue
		}
		f := strings.Fields(line)
		if len(f) < 4 || f[3] != "ns/op" {
			continue
		}
		backend := strings.TrimPrefix(f[0], name+"/")
		if i := strings.LastIndexByte(backend, '-'); i > 0 {
			backend = backend[:i] // strip the -GOMAXPROCS suffix
		}
		v, err := strconv.ParseFloat(f[2], 64)
		if err != nil || v <= 0 {
			continue
		}
		samples[backend] = append(samples[backend], v)
	}
	if len(samples) == 0 {
		return nil, fmt.Errorf("no %s lines in output:\n%s", name, outBytes)
	}
	return samples, nil
}

func median(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	s := append([]float64(nil), v...)
	sort.Float64s(s)
	if n := len(s); n%2 == 1 {
		return s[n/2]
	} else {
		return (s[n/2-1] + s[n/2]) / 2
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchfastpath:", err)
	os.Exit(1)
}
