// Command lift demonstrates the x86-64 → IR transformation of Section III
// on the compiled-kernel corpus: it disassembles a kernel, lifts it (with
// configurable flag-cache / facet-cache / GEP options), optionally runs the
// -O3 pipeline, and prints the IR.
//
// Usage:
//
//	lift -kernel flat_elem                 # lift + optimize
//	lift -kernel max -no-flag-cache -O0    # raw lifted IR, no flag cache
//	lift -kernel direct_line -disasm       # show input machine code too
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/abi"
	"repro/internal/bench"
	"repro/internal/dbrew"
	"repro/internal/ir"
	"repro/internal/lift"
	"repro/internal/opt"
)

func main() {
	kernel := flag.String("kernel", "flat_elem", "kernel: direct_elem, flat_elem, sorted_elem, direct_line, flat_line, sorted_line, max")
	noFlagCache := flag.Bool("no-flag-cache", false, "disable the cmp flag cache (Figure 6 comparison)")
	noFacetCache := flag.Bool("no-facet-cache", false, "disable facet caching")
	noGEP := flag.Bool("no-gep", false, "use inttoptr addressing instead of getelementptr")
	noOpt := flag.Bool("O0", false, "skip the optimization pipeline")
	disasm := flag.Bool("disasm", false, "also print the input machine code")
	size := flag.Int("size", 649, "matrix side length baked into the kernels")
	flag.Parse()

	w, err := bench.NewWorkload(*size)
	if err != nil {
		fatal(err)
	}
	c := w.Corpus

	var entry uint64
	var sig abi.Signature
	switch *kernel {
	case "direct_elem":
		entry, sig = c.DirectElem, elemSig()
	case "flat_elem":
		entry, sig = c.FlatElem, elemSig()
	case "sorted_elem":
		entry, sig = c.SortedElem, elemSig()
	case "direct_line":
		entry, sig = c.DirectLine, lineSig()
	case "flat_line":
		entry, sig = c.FlatLine, lineSig()
	case "sorted_line":
		entry, sig = c.SortedLine, lineSig()
	case "max":
		entry, sig = c.MaxFunc, abi.Sig(abi.ClassInt, abi.ClassInt, abi.ClassInt)
	default:
		fatal(fmt.Errorf("unknown kernel %q", *kernel))
	}

	if *disasm {
		lst, err := dbrew.Listing(w.Mem, entry, c.Sizes[entry])
		if err != nil {
			fatal(err)
		}
		fmt.Printf("; input machine code (%d bytes)\n", c.Sizes[entry])
		for _, line := range lst {
			fmt.Println("    " + line)
		}
		fmt.Println()
	}

	lo := lift.DefaultOptions()
	lo.FlagCache = !*noFlagCache
	lo.FacetCache = !*noFacetCache
	lo.UseGEP = !*noGEP
	l := lift.New(w.Mem, lo)
	l.Declare(c.DirectElem, "direct_elem", elemSig())
	l.Declare(c.FlatElem, "flat_elem", elemSig())
	l.Declare(c.SortedElem, "sorted_elem", elemSig())
	f, err := l.LiftFunc(entry, *kernel, sig)
	if err != nil {
		fatal(err)
	}
	if !*noOpt {
		st := opt.Optimize(f, opt.O3())
		fmt.Printf("; optimized at -O3: %d -> %d instructions (inlined %d, unrolled %d)\n",
			st.InstsBefore, st.InstsAfter, st.Inlined, st.Unrolled)
	} else {
		fmt.Printf("; raw lifted IR: %d instructions\n", f.NumInsts())
	}
	fmt.Print(ir.FormatModule(l.Module))
}

func elemSig() abi.Signature {
	return abi.Signature{Params: []abi.Class{abi.ClassPtr, abi.ClassPtr, abi.ClassPtr, abi.ClassInt}}
}

func lineSig() abi.Signature {
	return abi.Signature{Params: []abi.Class{abi.ClassPtr, abi.ClassPtr, abi.ClassPtr, abi.ClassInt, abi.ClassInt}}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lift:", err)
	os.Exit(1)
}
