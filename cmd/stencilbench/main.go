// Command stencilbench regenerates the paper's evaluation artifacts
// (Section VI): Figures 9a, 9b, and 10, the Figure 6 and Figure 8 code
// listings, the Section VI-B forced-vectorization experiment, and the
// design-choice ablations DESIGN.md calls out.
//
// Usage:
//
//	stencilbench -fig 9a            # element-kernel running times
//	stencilbench -fig 9b            # line-kernel running times
//	stencilbench -fig 10            # transformation times (cold and cached-warm)
//	stencilbench -fig throughput    # concurrent specialization throughput
//	stencilbench -fig tiering       # one-shot O3 vs tiered execution
//	stencilbench -fig service       # in-process vs dbrewd round-trip latency
//	stencilbench -fig cache         # latency by serving level: compile/memory/disk/peer
//	stencilbench -fig 6             # flag-cache IR comparison
//	stencilbench -fig 8             # DBrew vs DBrew+LLVM listings
//	stencilbench -fig trace         # per-stage pipeline trace, cold vs. warm
//	stencilbench -fig vec           # forced vectorization
//	stencilbench -fig emu           # emulator interpreter vs block engine
//	stencilbench -fig ablation      # lifter/pipeline ablations
//	stencilbench -fig coverage      # rewriter-evaluation corpus scorecard
//	stencilbench -fig futamura      # interpreter-specialization benchmark row
//	stencilbench -fig all           # everything
//
// With -fig coverage, -coverage-out FILE additionally writes the scorecard
// as deterministic JSON (the committed BENCH_coverage.json artifact).
//
// Flags -size and -rows trade fidelity for speed: the paper's matrix is
// 649×649 (9×9 base grid with 80 interlines); the emulated sample is
// extrapolated to 50,000 Jacobi iterations.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
	"repro/internal/corpus"
	"repro/internal/service"
)

func main() {
	fig := flag.String("fig", "all", "figure to regenerate: 7, 9a, 9b, 10, 6, 8, trace, vec, emu, ablation, throughput, tiering, service, cache, coverage, futamura, all")
	covOut := flag.String("coverage-out", "", "with -fig coverage: also write the scorecard JSON to this file")
	size := flag.Int("size", 649, "matrix side length (paper: 649)")
	rows := flag.Int("rows", 2, "interior rows to emulate per variant")
	repeats := flag.Int("repeats", 10, "compile repetitions for figure 10 (paper: 1000)")
	threads := flag.Int("threads", 8, "goroutines for the throughput experiment")
	flag.Parse()

	w, err := bench.NewWorkload(*size)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("workload: %dx%d matrix (paper: 9x9 base grid, 80 interlines -> 649), 4-point stencil\n\n", *size, *size)

	run := func(name string, f func() error) {
		if *fig != "all" && *fig != name {
			return
		}
		if err := f(); err != nil {
			fatal(fmt.Errorf("%s: %w", name, err))
		}
	}

	run("7", func() error {
		out, err := w.Figure7Layouts()
		if err != nil {
			return err
		}
		fmt.Println("Figure 7 — the two generic stencil data structures as serialized:")
		fmt.Println(out)
		return nil
	})
	run("9a", func() error {
		r, err := w.RunFigure9(bench.Element, *rows)
		if err != nil {
			return err
		}
		fmt.Println(r.Format())
		return nil
	})
	run("9b", func() error {
		r, err := w.RunFigure9(bench.Line, *rows)
		if err != nil {
			return err
		}
		fmt.Println(r.Format())
		return nil
	})
	run("10", func() error {
		rows10, err := w.RunFigure10(*repeats)
		if err != nil {
			return err
		}
		fmt.Println(bench.FormatFigure10(rows10))
		return nil
	})
	run("6", func() error {
		with, without, err := w.Figure6IR()
		if err != nil {
			return err
		}
		fmt.Println("Figure 6 — optimized IR of max(a, b) with the flag cache:")
		fmt.Println(indent(with))
		fmt.Println("and without it (the SF/OF reconstruction survives -O3):")
		fmt.Println(indent(without))
		return nil
	})
	run("8", func() error {
		d, l, err := w.Figure8Listings()
		if err != nil {
			return err
		}
		fmt.Println("Figure 8 — specialized stencil, plain DBrew backend:")
		for _, s := range d {
			fmt.Println("    " + s)
		}
		fmt.Println("\nafter LLVM post-processing:")
		for _, s := range l {
			fmt.Println("    " + s)
		}
		fmt.Println()
		return nil
	})
	run("throughput", func() error {
		r, err := w.RunConcurrentThroughput(*threads, *repeats)
		if err != nil {
			return err
		}
		fmt.Println(r.Format())
		return nil
	})
	run("tiering", func() error {
		r, err := w.RunTiering(nil)
		if err != nil {
			return err
		}
		fmt.Println(r.Format())
		return nil
	})
	run("service", func() error {
		// A fresh, smaller workload: the service experiment ships the whole
		// snapshot per request, and protocol overhead, not matrix size, is
		// what it isolates.
		rows, err := service.RunBenchmark(65, *repeats)
		if err != nil {
			return err
		}
		fmt.Println(service.FormatBenchmark(rows))
		return nil
	})
	run("cache", func() error {
		// Latency by serving level: compile vs memory hit vs warm-restart
		// disk hit vs fleet peer hit, one table per stencil structure.
		rows, err := service.RunCacheBenchmark(65, *repeats)
		if err != nil {
			return err
		}
		fmt.Println(service.FormatCacheBenchmark(rows))
		return nil
	})
	run("trace", func() error {
		out, err := runTraceDemo(w)
		if err != nil {
			return err
		}
		fmt.Println("Pipeline trace — one span per stage, cold vs. warm:")
		fmt.Println(out)
		return nil
	})
	run("vec", func() error {
		r, err := w.RunVectorization(*rows)
		if err != nil {
			return err
		}
		fmt.Println(r.Format())
		return nil
	})
	run("emu", func() error {
		r, err := w.RunEmuSpeed(*repeats)
		if err != nil {
			return err
		}
		fmt.Println(r.Format())
		return nil
	})
	run("ablation", func() error {
		a, err := w.RunAblations(*rows)
		if err != nil {
			return err
		}
		fmt.Println(bench.FormatAblations(a))
		for _, mode := range []bench.Mode{bench.DBrewLLVM, bench.LLVMFix} {
			p, err := w.RunPassAblation(*rows, mode)
			if err != nil {
				return err
			}
			fmt.Println(bench.FormatPassAblation(p, mode))
		}
		return nil
	})
	run("coverage", func() error {
		sc, err := corpus.BuildScorecard()
		if err != nil {
			return err
		}
		fmt.Println("Coverage scorecard — hard-idiom corpus across every execution path:")
		fmt.Println(corpus.FormatScorecard(sc))
		if bad := sc.Gate(); len(bad) != 0 {
			for _, msg := range bad {
				fmt.Fprintln(os.Stderr, "stencilbench: coverage gate:", msg)
			}
			return fmt.Errorf("coverage gate failed (%d violations)", len(bad))
		}
		if *covOut != "" {
			data, err := sc.Encode()
			if err != nil {
				return err
			}
			if err := os.WriteFile(*covOut, data, 0o644); err != nil {
				return err
			}
			fmt.Printf("scorecard written to %s\n", *covOut)
		}
		return nil
	})
	run("futamura", func() error {
		rep, err := corpus.RunFutamura()
		if err != nil {
			return err
		}
		fmt.Println("Futamura projection — bytecode interpreter specialized against its program:")
		fmt.Printf("    inputs checked      %d (randomized, fixed seed)\n", rep.Inputs)
		fmt.Printf("    interpreted         %.0f cycles/call\n", rep.InterpCycles)
		fmt.Printf("    specialized         %.0f cycles/call (%.2fx)\n", rep.SpecCycles, rep.Speedup)
		if rep.SpecO3Cycles != 0 {
			fmt.Printf("    specialized + O3    %.0f cycles/call (%.2fx)\n", rep.SpecO3Cycles, rep.SpeedupO3)
		}
		return nil
	})
}

func indent(s string) string {
	out := ""
	for _, line := range splitLines(s) {
		out += "    " + line + "\n"
	}
	return out
}

func splitLines(s string) []string {
	var lines []string
	cur := ""
	for _, r := range s {
		if r == '\n' {
			lines = append(lines, cur)
			cur = ""
			continue
		}
		cur += string(r)
	}
	if cur != "" {
		lines = append(lines, cur)
	}
	return lines
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "stencilbench:", err)
	os.Exit(1)
}
