package main

import (
	"fmt"
	"strings"

	dbrewllvm "repro"
	"repro/internal/bench"
)

// runTraceDemo demonstrates pipeline tracing (stencilbench -fig trace): it
// compiles the flat line-kernel specialization once cold and once warm with
// engine tracing enabled and returns the two rendered span trees — the cold
// one showing every stage (cache miss, rewrite, decode, lift, optimizer
// rounds, jit), the warm one collapsing to a single cache hit.
func runTraceDemo(w *bench.Workload) (string, error) {
	eng := dbrewllvm.NewEngine()
	eng.Mem = w.Mem // compile against the workload's placed image
	eng.EnableCache(16)
	eng.EnableTracing()

	in := w.SpecInput(bench.Line, bench.Flat, bench.DBrewLLVM)
	rewrite := func() error {
		rw := dbrewllvm.NewRewriter(eng, in.Entry, in.Sig)
		rw.SetBackend(dbrewllvm.BackendLLVM)
		rw.SetParPtr(0, in.StencilAddr, in.StencilSize)
		_, err := rw.Rewrite()
		return err
	}

	var b strings.Builder
	if err := rewrite(); err != nil {
		return "", fmt.Errorf("cold rewrite: %w", err)
	}
	b.WriteString("cold compile (cache miss, full pipeline):\n")
	b.WriteString(indent(eng.LastTrace().String()))
	if err := rewrite(); err != nil {
		return "", fmt.Errorf("warm rewrite: %w", err)
	}
	b.WriteString("\nwarm compile (cache hit):\n")
	b.WriteString(indent(eng.LastTrace().String()))
	return b.String(), nil
}
