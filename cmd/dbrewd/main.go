// Command dbrewd serves specialization-as-a-service: POST /specialize
// accepts an address-space snapshot (raw x86-64 code plus fixed data),
// a signature, and a specialization configuration, and returns the
// optimized machine code with compile statistics. GET /healthz and
// GET /metrics expose liveness and the daemon's counters.
//
// Usage:
//
//	dbrewd                             # serve on 127.0.0.1:7411
//	dbrewd -addr :8080 -workers 8      # bigger pool, all interfaces
//	dbrewd -cachedir /var/cache/dbrewd # persistent artifacts: warm restarts
//	dbrewd -peers h2:7411,h3:7411      # fleet mode: share artifacts by key owner
//	dbrewd -smoke                      # self-test against an ephemeral server
//
// The daemon never runs more than -workers compilations at once; beyond
// that, up to -queue requests wait for a slot and the rest are rejected
// with 429. Identical in-flight requests are coalesced into a single
// compilation. SIGINT/SIGTERM drain in-flight requests before exit.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/bench"
	"repro/internal/service"
	"repro/internal/trace"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7411", "listen address")
	workers := flag.Int("workers", 4, "maximum concurrent compilations")
	queue := flag.Int("queue", 64, "admission queue depth beyond the worker slots")
	deadline := flag.Duration("deadline", 30*time.Second, "default per-request deadline")
	cacheCap := flag.Int("cache", 1024, "specialization cache capacity (entries)")
	cacheDir := flag.String("cachedir", "", "persistent artifact store directory (empty disables persistence); /healthz answers 503 \"warming\" until its index loads")
	cacheBytes := flag.Int64("cachebytes", 0, "disk artifact store byte budget (0 selects the diskcache default)")
	fastpath := flag.Duration("fastpath-deadline", 250*time.Millisecond, "switch to the single-pass fastpath backend when a request's remaining deadline budget is below this (0 disables)")
	self := flag.String("self", "", "this node's advertised host:port for fleet mode (defaults to -addr when -peers is set)")
	peers := flag.String("peers", "", "comma-separated host:port fleet peer list; enables peer artifact sharing")
	smoke := flag.Bool("smoke", false, "run the self-test against an ephemeral server and exit")
	flag.Parse()

	cfg := service.Config{
		Workers:          *workers,
		QueueDepth:       *queue,
		DefaultDeadline:  *deadline,
		CacheCapacity:    *cacheCap,
		CacheDir:         *cacheDir,
		CacheBytes:       *cacheBytes,
		FastpathDeadline: *fastpath,
	}
	if *peers != "" {
		cfg.Self = *self
		if cfg.Self == "" {
			cfg.Self = *addr
		}
		for _, p := range strings.Split(*peers, ",") {
			if p = strings.TrimSpace(p); p != "" {
				cfg.Peers = append(cfg.Peers, p)
			}
		}
	}

	if *smoke {
		if err := runSmoke(cfg); err != nil {
			fmt.Fprintln(os.Stderr, "dbrewd: smoke:", err)
			os.Exit(1)
		}
		return
	}
	if err := serve(*addr, cfg); err != nil {
		fmt.Fprintln(os.Stderr, "dbrewd:", err)
		os.Exit(1)
	}
}

func serve(addr string, cfg service.Config) error {
	svc := service.New(cfg)
	srv := &http.Server{Addr: addr, Handler: svc}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		fmt.Printf("dbrewd: listening on %s (workers %d, queue %d)\n", addr, cfg.Workers, cfg.QueueDepth)
		if cfg.CacheDir != "" {
			fmt.Printf("dbrewd: warming artifact store at %s\n", cfg.CacheDir)
		}
		if len(cfg.Peers) > 0 {
			fmt.Printf("dbrewd: fleet mode as %s with peers %v\n", cfg.Self, cfg.Peers)
		}
		errc <- srv.ListenAndServe()
	}()

	if cfg.CacheDir != "" {
		go func() {
			<-svc.Ready()
			if err := svc.WarmError(); err != nil {
				fmt.Fprintln(os.Stderr, "dbrewd:", err)
			} else {
				fmt.Println("dbrewd: artifact store warm, /healthz ready")
			}
		}()
	}

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}

	fmt.Println("dbrewd: draining")
	drainCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	// Stop accepting connections first, then wait out the compiles the
	// daemon already admitted.
	if err := srv.Shutdown(drainCtx); err != nil {
		return fmt.Errorf("http shutdown: %w", err)
	}
	if err := svc.Shutdown(drainCtx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	fmt.Println("dbrewd: drained, bye")
	return nil
}

func listenLoopback() (net.Listener, error) {
	return net.Listen("tcp", "127.0.0.1:0")
}

// runSmoke exercises the full client-to-daemon path on an ephemeral
// listener: upload the paper's stencil workload, specialize the line
// kernel cold and warm, and print the resulting stats and metrics.
func runSmoke(cfg service.Config) error {
	svc := service.New(cfg)
	srv := &http.Server{Handler: svc}
	ln, err := listenLoopback()
	if err != nil {
		return err
	}
	go srv.Serve(ln)
	defer srv.Close()

	client := service.NewClient("http://" + ln.Addr().String())
	client.EnableDeltaSnapshots()
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := client.Health(ctx); err != nil {
		return fmt.Errorf("healthz: %w", err)
	}

	w, err := bench.NewWorkload(65)
	if err != nil {
		return err
	}
	in := w.SpecInput(bench.Line, bench.Flat, bench.DBrewLLVM)
	req := &service.Request{
		Regions: service.SnapshotRegions(w.Mem),
		Entry:   in.Entry,
		Sig:     service.SigFromABI(in.Sig),
		FixedParams: []service.ParamFix{
			{Idx: 0, Value: in.StencilAddr, Ptr: true, Size: in.StencilSize},
		},
		IncludeIR: true,
	}

	cold, err := client.SpecializeTraced(ctx, req)
	if err != nil {
		return fmt.Errorf("cold specialize: %w", err)
	}
	warm, err := client.Specialize(ctx, req)
	if err != nil {
		return fmt.Errorf("warm specialize: %w", err)
	}
	switch {
	case cold.CacheHit:
		return errors.New("cold request reported a cache hit")
	case !warm.CacheHit:
		return errors.New("warm request missed the cache")
	case len(warm.Code) != len(cold.Code):
		return errors.New("warm code differs from cold code")
	case len(cold.Trace) == 0:
		return errors.New("?trace=1 request carried no trace")
	}

	// Deadline pressure: a budget below -fastpath-deadline must flip the
	// server to the single-pass baseline backend, compiled fresh (the
	// strategy is part of the cache key, so the warm full artifact must
	// not be served).
	var fast *service.Response
	if cfg.FastpathDeadline > 0 {
		fastReq := *req
		fastReq.DeadlineMS = cfg.FastpathDeadline.Milliseconds() * 4 / 5
		fast, err = client.Specialize(ctx, &fastReq)
		if err != nil {
			return fmt.Errorf("fastpath specialize: %w", err)
		}
		switch {
		case fast.Strategy != "fastpath":
			return fmt.Errorf("tight-deadline strategy = %q, want fastpath", fast.Strategy)
		case fast.CacheHit:
			return errors.New("fastpath request hit the full-strategy cache entry")
		case len(fast.Code) == 0:
			return errors.New("fastpath request returned no code")
		}
	}

	m, err := client.Metrics(ctx)
	if err != nil {
		return fmt.Errorf("metrics: %w", err)
	}
	prom, err := http.Get(client.BaseURL + "/metrics")
	if err != nil {
		return fmt.Errorf("prometheus metrics: %w", err)
	}
	promBody, err := io.ReadAll(prom.Body)
	prom.Body.Close()
	if err != nil {
		return fmt.Errorf("prometheus metrics: %w", err)
	}
	if err := trace.Lint(promBody); err != nil {
		return fmt.Errorf("prometheus /metrics output fails lint: %w", err)
	}
	fmt.Printf("smoke: specialized flat line kernel via %s\n", client.BaseURL)
	fmt.Printf("  cold: %5d us, %d bytes at %#x (decoded %d, emitted %d, eliminated %d)\n",
		cold.ElapsedUS, len(cold.Code), cold.Addr,
		cold.Stats.Decoded, cold.Stats.Emitted, cold.Stats.Eliminated)
	fmt.Printf("  warm: %5d us, cache hit\n", warm.ElapsedUS)
	if fast != nil {
		fmt.Printf("  fastpath: %5d us, %d bytes under a %dms budget (strategy %q, %d served)\n",
			fast.ElapsedUS, len(fast.Code), cfg.FastpathDeadline.Milliseconds()*4/5,
			fast.Strategy, m.FastpathServed)
	}
	fmt.Printf("  metrics: %d requests, %d ok, %d cache hits; engine cache %d miss / %d hit\n",
		m.Requests, m.OK, m.CacheHits, m.Engine.Cache.Misses, m.Engine.Cache.Hits)
	fmt.Printf("  delta: %d chunked uploads, %d region bytes reconstructed server-side\n",
		m.DeltaRequests, m.DeltaBytesSaved)
	fmt.Printf("  IR: %d bytes lifted back from the returned code\n", len(cold.IR))
	fmt.Printf("  trace: %d bytes of per-request spans; /metrics lints as Prometheus text (%d bytes)\n",
		len(cold.Trace), len(promBody))
	return nil
}
