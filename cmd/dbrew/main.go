// Command dbrew demonstrates binary rewriting (Section II) on the
// compiled-kernel corpus: it specializes a kernel for the 4-point stencil,
// prints rewriting statistics and the generated code, and verifies the
// result against the original.
//
// Usage:
//
//	dbrew -kernel flat_elem               # specialize + listing
//	dbrew -kernel sorted_elem -llvm       # with the LLVM backend (Figure 1)
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/abi"
	"repro/internal/bench"
	"repro/internal/dbrew"
	"repro/internal/emu"
	"repro/internal/jit"
	"repro/internal/lift"
	"repro/internal/opt"
)

func main() {
	kernel := flag.String("kernel", "flat_elem", "kernel: flat_elem, sorted_elem, flat_line, sorted_line, direct_line")
	llvm := flag.Bool("llvm", false, "post-process the DBrew output with the LLVM backend")
	size := flag.Int("size", 649, "matrix side length")
	flag.Parse()

	w, err := bench.NewWorkload(*size)
	if err != nil {
		fatal(err)
	}
	c := w.Corpus

	elemSig := abi.Signature{Params: []abi.Class{abi.ClassPtr, abi.ClassPtr, abi.ClassPtr, abi.ClassInt}}
	lineSig := abi.Signature{Params: []abi.Class{abi.ClassPtr, abi.ClassPtr, abi.ClassPtr, abi.ClassInt, abi.ClassInt}}

	var entry, sAddr uint64
	var sSize int
	var sig abi.Signature
	switch *kernel {
	case "flat_elem":
		entry, sAddr, sSize, sig = c.FlatElem, w.FlatAddr, w.FlatSize, elemSig
	case "sorted_elem":
		entry, sAddr, sSize, sig = c.SortedElem, w.SortedAddr, w.SortedSize, elemSig
	case "flat_line":
		entry, sAddr, sSize, sig = c.FlatLineCall, w.FlatAddr, w.FlatSize, lineSig
	case "sorted_line":
		entry, sAddr, sSize, sig = c.SortedLineCall, w.SortedAddr, w.SortedSize, lineSig
	case "direct_line":
		entry, sAddr, sSize, sig = c.DirectLineCall, w.FlatAddr, w.FlatSize, lineSig
	default:
		fatal(fmt.Errorf("unknown kernel %q", *kernel))
	}

	r := dbrew.NewRewriter(w.Mem, entry, sig)
	r.SetParPtr(0, sAddr, sSize)
	newFn, err := r.Rewrite()
	if err != nil {
		fatal(err)
	}
	if r.Stats.Failed {
		fatal(fmt.Errorf("rewriting failed, fell back to the original: %v", r.Stats.Err))
	}
	fmt.Printf("rewrote %s: decoded %d, emitted %d, eliminated %d, inlined %d calls, %d bytes\n\n",
		*kernel, r.Stats.Decoded, r.Stats.Emitted, r.Stats.Eliminated, r.Stats.Inlined, r.Stats.CodeSize)

	codeSize := r.Stats.CodeSize
	if *llvm {
		l := lift.New(w.Mem, lift.DefaultOptions())
		f, err := l.LiftFunc(newFn, "rewritten", sig)
		if err != nil {
			fatal(err)
		}
		st := opt.Optimize(f, opt.O3())
		comp := jit.NewCompiler(w.Mem)
		newFn, err = comp.CompileModule(l.Module, f.Nam)
		if err != nil {
			fatal(err)
		}
		codeSize = comp.Sizes[newFn]
		fmt.Printf("LLVM backend: %d -> %d IR instructions, %d bytes of code\n\n",
			st.InstsBefore, st.InstsAfter, codeSize)
	}

	lst, err := dbrew.Listing(w.Mem, newFn, codeSize)
	if err != nil {
		fatal(err)
	}
	fmt.Println("generated code:")
	for _, line := range lst {
		fmt.Println("    " + line)
	}

	// Verify one element against the original.
	m := emu.NewMachine(w.Mem)
	idx := uint64(5*w.SZ + 7)
	args := []uint64{sAddr, w.M1.Region.Start, w.M2.Region.Start, idx}
	if len(sig.Params) == 5 {
		args = append(args, 4)
	}
	if _, err := m.Call(entry, emu.CallArgs{Ints: args}, 0); err != nil {
		fatal(err)
	}
	want := w.M2.Get(5, 7)
	if _, err := m.Call(newFn, emu.CallArgs{Ints: args}, 0); err != nil {
		fatal(err)
	}
	got := w.M2.Get(5, 7)
	if got != want {
		fatal(fmt.Errorf("verification failed: %g != %g", got, want))
	}
	fmt.Printf("\nverified: rewritten code matches the original (m2[5][7] = %g)\n", got)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dbrew:", err)
	os.Exit(1)
}
