package dbrewllvm

// Persistent specialization cache (the disk second level). The in-memory
// codecache makes one process's repeated specializations cheap; this file
// makes them survive the process. Because cache keys content-hash the
// entry, signature, optimization switches, and the bytes of every fixed
// memory range, an artifact on disk is valid forever under its key: a
// restarted dbrewd that receives the same snapshot computes the same key
// and restores the same code bytes without compiling. The same
// content-addressing is what makes artifacts safely shippable between
// fleet peers (internal/cluster + internal/service wire that up).

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"

	"repro/internal/codecache"
	"repro/internal/dbrew"
	"repro/internal/diskcache"
	"repro/internal/trace"
)

// ErrArtifactNotFound reports that ArtifactFor found no artifact for the
// key in memory, on disk, or (when waiting was requested) from an in-flight
// compilation.
var ErrArtifactNotFound = errors.New("dbrewllvm: no artifact for key")

// artifactMeta is the JSON metadata section of a persisted artifact:
// dbrew.Stats flattened into marshalable fields.
type artifactMeta struct {
	Decoded    int    `json:"decoded"`
	Emitted    int    `json:"emitted"`
	Eliminated int    `json:"eliminated"`
	Inlined    int    `json:"inlined"`
	CodeSize   int    `json:"code_size"`
	Failed     bool   `json:"failed,omitempty"`
	ErrText    string `json:"err,omitempty"`
}

func metaFromStats(st dbrew.Stats, codeSize int) []byte {
	m := artifactMeta{
		Decoded:    st.Decoded,
		Emitted:    st.Emitted,
		Eliminated: st.Eliminated,
		Inlined:    st.Inlined,
		CodeSize:   codeSize,
		Failed:     st.Failed,
	}
	if st.Err != nil {
		m.ErrText = st.Err.Error()
	}
	b, _ := json.Marshal(m)
	return b
}

func statsFromMeta(meta []byte) (dbrew.Stats, error) {
	var m artifactMeta
	if err := json.Unmarshal(meta, &m); err != nil {
		return dbrew.Stats{}, fmt.Errorf("dbrewllvm: artifact meta: %w", err)
	}
	st := dbrew.Stats{
		Decoded:    m.Decoded,
		Emitted:    m.Emitted,
		Eliminated: m.Eliminated,
		Inlined:    m.Inlined,
		CodeSize:   m.CodeSize,
		Failed:     m.Failed,
	}
	if m.ErrText != "" {
		st.Err = errors.New(m.ErrText)
	}
	return st, nil
}

// EnableDiskCache attaches a persistent artifact store at dir as the second
// cache level: Rewrite misses consult it before compiling (a disk hit
// places the stored code bytes and skips the pipeline entirely), and fresh
// compiles write through to it — so a process restarted over the same
// directory serves previously compiled specializations without recompiling.
// maxBytes bounds the total stored payload with LRU eviction (<= 0 selects
// diskcache.DefaultMaxBytes). Corrupt files are checksum-rejected, deleted,
// and recompiled; they can never surface as wrong code.
//
// The disk level requires the in-memory cache; if EnableCache has not been
// called yet, it is enabled with its default capacity. Like EnableCache,
// call only while no Rewrite is in flight.
func (e *Engine) EnableDiskCache(dir string, maxBytes int64) error {
	store, err := diskcache.Open(dir, maxBytes)
	if err != nil {
		return err
	}
	if e.cache == nil {
		e.cache = codecache.New[cachedCode](0)
	}
	e.disk = store
	e.wireRemoveHook()
	return nil
}

// DisableDiskCache detaches the disk store; files already written remain on
// disk for a later EnableDiskCache over the same directory.
func (e *Engine) DisableDiskCache() {
	e.disk = nil
	e.wireRemoveHook()
}

// DiskStats returns a snapshot of the disk artifact-store counters.
//
// When the disk cache is disabled — EnableDiskCache was never called, or
// DisableDiskCache ran — it returns the zero diskcache.Stats as a
// documented sentinel together with ok == false, exactly mirroring the
// CacheStats and TierStats contracts. Callers must branch on ok: a zero
// Stats with ok == true is an enabled store that has simply seen no
// traffic, which is a different situation from "no disk cache at all". See
// the ExampleEngine_DiskStats godoc example.
func (e *Engine) DiskStats() (st diskcache.Stats, ok bool) {
	if e.disk == nil {
		return diskcache.Stats{}, false
	}
	return e.disk.Stats(), true
}

// DiskHas reports whether an artifact for k is currently indexed on disk
// (advisory, like CachePeek: a later read may still checksum-reject it).
// ok is false when the disk cache is disabled.
func (e *Engine) DiskHas(k codecache.Key) (has, ok bool) {
	if e.disk == nil {
		return false, false
	}
	return e.disk.Contains(k), true
}

// wireRemoveHook keeps the explicit-Remove hooks of the in-memory caches —
// the Rewrite specialization cache and, when tiering is enabled, the
// promotion cache (whose deoptimizations Remove their keys) — pointed at
// the lower levels: removing a specialization key drops the disk artifact
// and then notifies the eviction observer (the fleet layer's broadcast).
// Hook firing order is memory → disk → notifier, so by the time a peer
// hears about the eviction the local levels are already clean.
func (e *Engine) wireRemoveHook() {
	hook := func(k codecache.Key) {
		if d := e.disk; d != nil {
			d.Remove(k)
		}
		if fn := e.evictNotify; fn != nil {
			fn(k)
		}
	}
	if e.cache != nil {
		e.cache.SetRemoveHook(hook)
	}
	if e.tiering != nil {
		e.tiering.SetCacheRemoveHook(hook)
	}
}

// SetEvictNotifier installs fn to observe every explicit specialization
// removal (RemoveSpecialization, tier deoptimization) after the in-memory
// and disk levels dropped the key. The dbrewd fleet layer registers the
// peer eviction broadcast here. Install before serving traffic; fn must not
// call back into Remove for the same key.
func (e *Engine) SetEvictNotifier(fn func(codecache.Key)) {
	e.evictNotify = fn
	e.wireRemoveHook()
}

// RemoveSpecialization declares the specialization k stale and drops it
// from every cache level — the in-memory entry, the disk artifact, and (via
// the eviction notifier) the owning peer — so it cannot be resurrected from
// a lower level. It reports whether the in-memory level held the key.
// Generated code already placed stays valid and callable; the next Rewrite
// for the key recompiles. An in-flight compilation is unaffected and will
// re-insert its (by construction equivalent) result.
func (e *Engine) RemoveSpecialization(k codecache.Key) bool {
	if e.cache == nil {
		// No memory level: still scrub disk and notify, honoring the
		// "cannot be resurrected" contract.
		if d := e.disk; d != nil {
			d.Remove(k)
		}
		if fn := e.evictNotify; fn != nil {
			fn(k)
		}
		return false
	}
	return e.cache.Remove(k)
}

// diskLookup consults the disk store for key inside the compile path
// (caller holds compileMu): a valid artifact is placed into the address
// space and returned as restored cachedCode. tr may be nil.
func (e *Engine) diskLookup(key codecache.Key, tr *trace.Trace) (cachedCode, bool) {
	d := e.disk
	if d == nil {
		return cachedCode{}, false
	}
	sp := tr.Start("disk")
	a, ok := d.Get(key)
	if !ok {
		sp.Outcome("miss").End()
		return cachedCode{}, false
	}
	stats, err := statsFromMeta(a.Meta)
	if err != nil {
		// Structurally valid artifact with unusable metadata: drop it and
		// recompile rather than serving half-restored state.
		d.Remove(key)
		sp.EndErr(err)
		return cachedCode{}, false
	}
	addr := e.PlaceCode(a.Code, "diskcache.artifact")
	sp.Int("code_bytes", int64(len(a.Code))).Outcome("hit").End()
	return cachedCode{addr: addr, codeSize: len(a.Code), stats: stats, ir: a.IR}, true
}

// diskWrite persists a freshly compiled specialization (write-through).
// Failures are recorded in the trace but otherwise ignored: the disk level
// is an optimization, never a correctness dependency.
func (e *Engine) diskWrite(key codecache.Key, cc cachedCode, tr *trace.Trace) {
	d := e.disk
	if d == nil {
		return
	}
	code, err := e.Mem.Read(cc.addr, cc.codeSize)
	if err != nil {
		return
	}
	a := &diskcache.Artifact{Code: code, IR: cc.ir, Meta: metaFromStats(cc.stats, cc.codeSize)}
	sp := tr.Start("disk_write").Int("code_bytes", int64(len(code)))
	if err := d.Put(key, a); err != nil {
		sp.EndErr(err)
		return
	}
	sp.End()
}

// ArtifactFor assembles the persisted-artifact form of the specialization k
// from the warmest level that has it: the in-memory cache (code bytes read
// back from the address space), then the disk store. When wait is true and
// a compilation for k is in flight, it blocks (bounded by ctx) and returns
// that compilation's result. It reports ErrArtifactNotFound when no level
// has the key — it never starts a compilation. This is the read side of
// the fleet protocol: GET /artifact/{key} serves exactly this.
func (e *Engine) ArtifactFor(ctx context.Context, k codecache.Key, wait bool) (*diskcache.Artifact, error) {
	if c := e.cache; c != nil {
		if cc, ok := c.Get(k); ok {
			return e.artifactFromCached(cc)
		}
	}
	if d := e.disk; d != nil {
		if a, ok := d.Get(k); ok {
			return a, nil
		}
	}
	if wait && e.cache != nil {
		cc, ok, err := e.cache.Wait(ctx, k)
		if err != nil {
			return nil, err
		}
		if ok {
			return e.artifactFromCached(cc)
		}
	}
	return nil, ErrArtifactNotFound
}

func (e *Engine) artifactFromCached(cc cachedCode) (*diskcache.Artifact, error) {
	code, err := e.Mem.Read(cc.addr, cc.codeSize)
	if err != nil {
		return nil, fmt.Errorf("dbrewllvm: reading cached code: %w", err)
	}
	return &diskcache.Artifact{Code: code, IR: cc.ir, Meta: metaFromStats(cc.stats, cc.codeSize)}, nil
}

// AdoptArtifact installs an externally produced artifact (a peer fetch, or
// a forwarded compile's response) under key k: the code bytes are placed
// into the address space, the in-memory cache entry is inserted, and the
// artifact is written through to the disk store. It returns the address the
// code was placed at. Adoption is exactly as trustworthy as the artifact's
// key derivation — callers must only adopt artifacts for keys they computed
// themselves from content they verified (the service layer does: the key
// hashes the snapshot it placed).
func (e *Engine) AdoptArtifact(k codecache.Key, a *diskcache.Artifact) (uint64, error) {
	stats, err := statsFromMeta(a.Meta)
	if err != nil {
		return 0, err
	}
	// Placement appends to the shared address space; serialize with
	// compiles exactly like the Rewrite paths.
	e.compileMu.Lock()
	addr := e.PlaceCode(a.Code, "cluster.artifact")
	e.compileMu.Unlock()
	cc := cachedCode{addr: addr, codeSize: len(a.Code), stats: stats, ir: a.IR}
	if c := e.cache; c != nil {
		c.Add(k, cc)
	}
	if d := e.disk; d != nil {
		d.Put(k, a) // best-effort write-through
	}
	return addr, nil
}
