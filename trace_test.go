package dbrewllvm

// Pipeline-tracing acceptance tests: a tracing-enabled Rewrite yields one
// span per executed stage with monotonic, parent-contained timing and
// nonzero size attributes; tracing disabled costs nothing measurable (the
// ≤5% overhead bound is pinned by BenchmarkRewriteTraceOff against
// BenchmarkRewriteWarm in cache_test.go).

import (
	"testing"

	"repro/internal/trace"
)

// requireSpan finds the named span or fails the test.
func requireSpan(t *testing.T, tr *trace.Trace, name string) *trace.Span {
	t.Helper()
	sp := tr.Find(name)
	if sp == nil {
		t.Fatalf("trace has no %q span:\n%s", name, tr.String())
	}
	return sp
}

// requireAttr asserts the span carries a positive value for key.
func requireAttr(t *testing.T, sp *trace.Span, key string) {
	t.Helper()
	v, ok := sp.Attr(key)
	if !ok {
		t.Errorf("span %q has no attribute %q", sp.Name, key)
		return
	}
	if v <= 0 {
		t.Errorf("span %q attribute %q = %d, want > 0", sp.Name, key, v)
	}
}

func TestRewriteTraceCompleteness(t *testing.T) {
	e, fn, buf := cacheSetup(t)
	e.EnableTracing()
	if !e.TracingEnabled() {
		t.Fatal("EnableTracing did not stick")
	}
	if e.LastTrace() != nil {
		t.Fatal("LastTrace non-nil before any Rewrite")
	}

	if _, err := newDotRewriter(e, fn, buf).Rewrite(); err != nil {
		t.Fatal(err)
	}
	tr := e.LastTrace()
	if tr == nil {
		t.Fatal("tracing-enabled Rewrite published no trace")
	}

	// One span per executed stage, with nonzero size attributes.
	cache := requireSpan(t, tr, "cache")
	if cache.Outcome != "miss" {
		t.Errorf("cold cache span outcome %q, want miss", cache.Outcome)
	}
	requireAttr(t, cache, "code_bytes")
	rw := requireSpan(t, tr, "rewrite")
	requireAttr(t, rw, "insts_in")
	requireAttr(t, rw, "insts_out")
	requireAttr(t, rw, "code_bytes")
	dec := requireSpan(t, tr, "decode")
	requireAttr(t, dec, "insts_out")
	lf := requireSpan(t, tr, "lift")
	requireAttr(t, lf, "insts_in")
	requireAttr(t, lf, "ir_values_out")
	op := requireSpan(t, tr, "optimize")
	requireAttr(t, op, "insts_in")
	requireAttr(t, op, "insts_out")
	requireAttr(t, op, "rounds")
	jt := requireSpan(t, tr, "jit")
	requireAttr(t, jt, "code_bytes")
	if tr.Find("optimize.round") == nil {
		t.Error("optimize span has no optimize.round children")
	}

	// Timing: spans are ordered by start, every span's interval nests
	// within its parent's (the nearest preceding span of smaller depth),
	// and durations were recorded.
	spans := tr.Spans()
	for i, sp := range spans {
		if sp.DurNS <= 0 {
			t.Errorf("span %q has no duration", sp.Name)
		}
		if i > 0 && sp.StartNS < spans[i-1].StartNS {
			t.Errorf("span %q starts before its predecessor %q", sp.Name, spans[i-1].Name)
		}
		if sp.Depth == 0 {
			continue
		}
		parent := -1
		for j := i - 1; j >= 0; j-- {
			if spans[j].Depth < sp.Depth {
				parent = j
				break
			}
		}
		if parent < 0 {
			t.Errorf("span %q at depth %d has no parent", sp.Name, sp.Depth)
			continue
		}
		p := spans[parent]
		if sp.StartNS < p.StartNS || sp.StartNS+sp.DurNS > p.StartNS+p.DurNS {
			t.Errorf("span %q [%d, %d] escapes parent %q [%d, %d]",
				sp.Name, sp.StartNS, sp.StartNS+sp.DurNS,
				p.Name, p.StartNS, p.StartNS+p.DurNS)
		}
	}
	if tr.TotalNS() <= 0 {
		t.Error("finished trace has no total duration")
	}
	if js := e.TraceJSON(); len(js) == 0 {
		t.Error("TraceJSON returned nothing for a captured trace")
	}

	// The warm rewrite's trace is a lone cache hit: no compile stages.
	if _, err := newDotRewriter(e, fn, buf).Rewrite(); err != nil {
		t.Fatal(err)
	}
	warm := e.LastTrace()
	if warm == tr {
		t.Fatal("warm Rewrite did not publish a fresh trace")
	}
	if sp := requireSpan(t, warm, "cache"); sp.Outcome != "hit" {
		t.Errorf("warm cache span outcome %q, want hit", sp.Outcome)
	}
	if warm.Find("jit") != nil {
		t.Error("warm trace contains a jit span; the hit should skip compilation")
	}

	// DisableTracing stops publication.
	e.DisableTracing()
	if _, err := newDotRewriter(e, fn, buf).Rewrite(); err != nil {
		t.Fatal(err)
	}
	if e.LastTrace() != warm {
		t.Error("Rewrite with tracing disabled replaced the last trace")
	}
}

// TestEngineMetricsRegistry: Engine.RegisterMetrics exports the cache
// counters in valid Prometheus text format, tracking live engine state.
func TestEngineMetricsRegistry(t *testing.T) {
	e, fn, buf := cacheSetup(t)
	reg := trace.NewRegistry()
	e.RegisterMetrics(reg)

	if err := trace.Lint([]byte(reg.Text())); err != nil {
		t.Fatalf("idle registry output fails lint: %v", err)
	}

	if _, err := newDotRewriter(e, fn, buf).Rewrite(); err != nil {
		t.Fatal(err)
	}
	if _, err := newDotRewriter(e, fn, buf).Rewrite(); err != nil {
		t.Fatal(err)
	}
	out := reg.Text()
	if err := trace.Lint([]byte(out)); err != nil {
		t.Fatalf("registry output fails lint: %v\n%s", err, out)
	}
	for _, want := range []string{
		"dbrew_codecache_hits_total 1",
		"dbrew_codecache_misses_total 1",
		"dbrew_codecache_entries 1",
	} {
		if !containsLine(out, want) {
			t.Errorf("registry output missing %q:\n%s", want, out)
		}
	}
}

func containsLine(out, want string) bool {
	for len(out) > 0 {
		i := 0
		for i < len(out) && out[i] != '\n' {
			i++
		}
		if out[:i] == want {
			return true
		}
		if i == len(out) {
			break
		}
		out = out[i+1:]
	}
	return false
}

// BenchmarkRewriteTraceOff is the warm Rewrite path with tracing compiled in
// but disabled — the acceptance bound is ≤5% over BenchmarkRewriteWarm,
// i.e. the disabled-tracing fast path adds only an atomic load.
func BenchmarkRewriteTraceOff(b *testing.B) {
	e := NewEngine()
	e.EnableCache(64)
	e.DisableTracing()
	buf := e.Alloc(16, "coeffs")
	e.Mem.WriteFloat64(buf, 2.0)
	e.Mem.WriteFloat64(buf+8, 0.5)
	fn := buildDot(b, e)
	if _, err := newDotRewriter(e, fn, buf).Rewrite(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := newDotRewriter(e, fn, buf)
		if _, err := r.Rewrite(); err != nil {
			b.Fatal(err)
		}
		if !r.CacheHit {
			b.Fatal("warm benchmark missed the cache")
		}
	}
}

// BenchmarkRewriteTraceOn quantifies the cost of capturing a full trace on
// the warm path (span appends + the publish store) for comparison.
func BenchmarkRewriteTraceOn(b *testing.B) {
	e := NewEngine()
	e.EnableCache(64)
	e.EnableTracing()
	buf := e.Alloc(16, "coeffs")
	e.Mem.WriteFloat64(buf, 2.0)
	e.Mem.WriteFloat64(buf+8, 0.5)
	fn := buildDot(b, e)
	if _, err := newDotRewriter(e, fn, buf).Rewrite(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := newDotRewriter(e, fn, buf)
		if _, err := r.Rewrite(); err != nil {
			b.Fatal(err)
		}
	}
}
