package dbrewllvm

import (
	"errors"
	"strings"
	"testing"
)

// TestStageErrorIdentity: every stage's error matches exactly its own
// sentinel under errors.Is, unwraps to its cause, and names the stage in
// the message — the contract the dbrewd service maps onto HTTP statuses.
func TestStageErrorIdentity(t *testing.T) {
	sentinels := map[Stage]error{
		StageRewrite:  ErrStageRewrite,
		StageLift:     ErrStageLift,
		StageOptimize: ErrStageOptimize,
		StageJIT:      ErrStageJIT,
	}
	names := map[Stage]string{
		StageRewrite: "rewrite", StageLift: "lift",
		StageOptimize: "optimize", StageJIT: "jit",
	}
	cause := errors.New("the underlying cause")
	for stage, sentinel := range sentinels {
		err := error(&StageError{Stage: stage, Err: cause})
		if !errors.Is(err, sentinel) {
			t.Errorf("%v: errors.Is against own sentinel is false", stage)
		}
		for other, otherSentinel := range sentinels {
			if other != stage && errors.Is(err, otherSentinel) {
				t.Errorf("%v: errors.Is matches %v's sentinel", stage, other)
			}
		}
		if !errors.Is(err, cause) {
			t.Errorf("%v: cause lost from the errors.Is chain", stage)
		}
		msg := err.Error()
		if !strings.Contains(msg, names[stage]+" stage") {
			t.Errorf("%v: message %q does not identify the stage", stage, msg)
		}
		if !strings.Contains(msg, cause.Error()) {
			t.Errorf("%v: message %q does not carry the cause", stage, msg)
		}
	}
}

// TestStrictRewriteSurfacesStage: in Strict mode a failing DBrew pass
// returns a *StageError for the rewrite stage instead of silently handing
// back the original function.
func TestStrictRewriteSurfacesStage(t *testing.T) {
	e := NewEngine()
	// 0x06 is invalid in 64-bit mode; the DBrew pass cannot decode it.
	fn := e.PlaceCode([]byte{0x06, 0xc3}, "garbage")

	r := NewRewriter(e, fn, Sig(Int))
	r.SetBackend(BackendLLVM)
	r.Strict = true
	if _, err := r.Rewrite(); err == nil {
		t.Fatal("strict Rewrite of undecodable code returned nil error")
	} else {
		if !errors.Is(err, ErrStageRewrite) {
			t.Fatalf("err = %v, want errors.Is(err, ErrStageRewrite)", err)
		}
		var se *StageError
		if !errors.As(err, &se) || se.Stage != StageRewrite {
			t.Fatalf("err = %#v, want *StageError{Stage: StageRewrite}", err)
		}
		if !strings.Contains(err.Error(), "rewrite stage") {
			t.Fatalf("message %q does not name the rewrite stage", err.Error())
		}
	}
}

// TestNonStrictKeepsFallback: without Strict the default DBrew contract is
// preserved — the original entry comes back runnable with Stats.Failed set.
func TestNonStrictKeepsFallback(t *testing.T) {
	e := NewEngine()
	fn := e.PlaceCode([]byte{0x06, 0xc3}, "garbage")

	r := NewRewriter(e, fn, Sig(Int))
	r.SetBackend(BackendLLVM)
	addr, err := r.Rewrite()
	if err != nil {
		t.Fatalf("non-strict Rewrite must not error: %v", err)
	}
	if addr != fn {
		t.Fatalf("fallback addr = %#x, want original %#x", addr, fn)
	}
	if !r.Stats.Failed {
		t.Fatal("Stats.Failed not set on fallback")
	}
}
