package dbrewllvm

import (
	"strings"
	"testing"

	"repro/internal/dbrew"
	"repro/internal/lift"
	"repro/internal/x86"
	"repro/internal/x86/asm"
)

// buildDot assembles f(p, n_unused) = p[0]*2.0 + p[1], reading two doubles
// through the pointer parameter.
func buildDot(t testing.TB, e *Engine) uint64 {
	t.Helper()
	b := asm.NewBuilder()
	b.I(x86.MOVSD_X, x86.X(x86.XMM0), x86.MemBD(8, x86.RDI, 0))
	b.I(x86.ADDSD, x86.X(x86.XMM0), x86.X(x86.XMM0))
	b.I(x86.ADDSD, x86.X(x86.XMM0), x86.MemBD(8, x86.RDI, 8))
	b.Ret()
	code, _, err := b.Assemble(0x400000)
	if err != nil {
		t.Fatal(err)
	}
	return e.PlaceCode(code, "dot")
}

func TestAllocAndCallF(t *testing.T) {
	e := NewEngine()
	buf := e.Alloc(16, "coeffs")
	if buf == 0 {
		t.Fatal("Alloc returned null address")
	}
	if err := e.Mem.WriteFloat64(buf, 1.5); err != nil {
		t.Fatal(err)
	}
	if err := e.Mem.WriteFloat64(buf+8, 0.25); err != nil {
		t.Fatal(err)
	}
	fn := buildDot(t, e)
	got, err := e.CallF(fn, []uint64{buf}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got != 3.25 {
		t.Errorf("dot = %g, want 3.25", got)
	}
}

// TestSetParPtrSpecializesLoads: fixing a pointer parameter whose target is
// declared constant folds the loads into immediates (Figure 3's
// dbrew_setpar + dbrew_setmem combination).
func TestSetParPtrSpecializesLoads(t *testing.T) {
	for _, backend := range []Backend{BackendDBrew, BackendLLVM} {
		e := NewEngine()
		buf := e.Alloc(16, "coeffs")
		if err := e.Mem.WriteFloat64(buf, 2.0); err != nil {
			t.Fatal(err)
		}
		if err := e.Mem.WriteFloat64(buf+8, 0.5); err != nil {
			t.Fatal(err)
		}
		fn := buildDot(t, e)

		r := NewRewriter(e, fn, Sig(F64, Ptr))
		r.SetParPtr(0, buf, 16)
		r.SetBackend(backend)
		newFn, err := r.Rewrite()
		if err != nil {
			t.Fatalf("backend %v: %v", backend, err)
		}
		if newFn == fn {
			t.Fatalf("backend %v: rewrite fell back to the original", backend)
		}
		got, err := e.CallF(newFn, []uint64{buf}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if got != 4.5 {
			t.Errorf("backend %v: specialized dot = %g, want 4.5", backend, got)
		}
	}
}

// TestSetMemEquivalent: SetMem on the region (instead of SetParPtr's
// implied range) yields the same specialization when the parameter value
// is fixed separately.
func TestSetMemEquivalent(t *testing.T) {
	e := NewEngine()
	buf := e.Alloc(16, "coeffs")
	if err := e.Mem.WriteFloat64(buf, 2.0); err != nil {
		t.Fatal(err)
	}
	if err := e.Mem.WriteFloat64(buf+8, 0.5); err != nil {
		t.Fatal(err)
	}
	fn := buildDot(t, e)
	r := NewRewriter(e, fn, Sig(F64, Ptr))
	r.SetPar(0, buf)
	r.SetMem(buf, buf+16)
	newFn, err := r.Rewrite()
	if err != nil {
		t.Fatal(err)
	}
	got, err := e.CallF(newFn, []uint64{0 /* pointer now baked in */}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got != 4.5 {
		t.Errorf("specialized dot = %g, want 4.5", got)
	}
}

// TestSetConfigBufferLimit: an absurdly small buffer forces the error
// handler path; the default handler returns the original function.
func TestSetConfigBufferLimit(t *testing.T) {
	e := NewEngine()
	fn := buildDot(t, e)
	r := NewRewriter(e, fn, Sig(F64, Ptr))
	r.SetConfig(dbrew.Config{BufferSize: 1})
	newFn, err := r.Rewrite()
	if err != nil {
		t.Fatal(err)
	}
	if newFn != fn {
		t.Errorf("tiny buffer must fall back to the original entry")
	}
	if !r.Stats.Failed {
		t.Error("Stats.Failed must be set after fallback")
	}
}

func TestLiftWithOptionSwitches(t *testing.T) {
	e := NewEngine()
	fn := buildMax(t, e)
	withCache, err := e.LiftWith(fn, "m1", Sig(Int, Int, Int), lift.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	o := lift.DefaultOptions()
	o.FlagCache = false
	without, err := e.LiftWith(fn, "m2", Sig(Int, Int, Int), o)
	if err != nil {
		t.Fatal(err)
	}
	withCache.Optimize()
	without.Optimize()
	if err := withCache.Verify(); err != nil {
		t.Fatal(err)
	}
	if err := without.Verify(); err != nil {
		t.Fatal(err)
	}
	// Figure 6: the flag cache collapses cmp+cmov into icmp+select; without
	// it the sign/overflow flags are computed explicitly, leaving more
	// instructions behind.
	if nc, nw := withCache.Func.NumInsts(), without.Func.NumInsts(); nc >= nw {
		t.Errorf("flag cache must shrink the optimized IR: %d vs %d", nc, nw)
	}
}

func TestStatsString(t *testing.T) {
	s := StatsString(dbrew.Stats{Decoded: 4, Emitted: 3, Eliminated: 1, CodeSize: 17})
	for _, want := range []string{"decoded 4", "emitted 3", "eliminated 1", "17 bytes"} {
		if !strings.Contains(s, want) {
			t.Errorf("StatsString missing %q in %q", want, s)
		}
	}
}
