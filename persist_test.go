package dbrewllvm

// Engine-level tests for the persistent cache level: warm restart over the
// same cache directory, multi-level eviction via RemoveSpecialization, and
// corruption recovery — always gated on byte identity with the in-process
// compile.

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"repro/internal/codecache"
	"repro/internal/diskcache"
	"sync"
	"testing"
)

// diskSetup is cacheSetup plus a disk level over dir. The allocation order
// is deterministic, so two engines built by this helper place the kernel and
// the coefficient buffer at identical addresses — the precondition for their
// specialization keys to match across a "restart".
func diskSetup(t *testing.T, dir string) (e *Engine, fn, buf uint64) {
	t.Helper()
	e = NewEngine()
	e.EnableCache(64)
	if err := e.EnableDiskCache(dir, 1<<20); err != nil {
		t.Fatal(err)
	}
	buf = e.Alloc(16, "coeffs")
	if err := e.Mem.WriteFloat64(buf, 2.0); err != nil {
		t.Fatal(err)
	}
	if err := e.Mem.WriteFloat64(buf+8, 0.5); err != nil {
		t.Fatal(err)
	}
	fn = buildDot(t, e)
	return e, fn, buf
}

func codeBytes(t *testing.T, e *Engine, addr uint64, size int) []byte {
	t.Helper()
	b, err := e.Mem.Read(addr, size)
	if err != nil {
		t.Fatal(err)
	}
	return append([]byte(nil), b...)
}

// TestDiskCacheWarmRestart is the PR's headline acceptance path: a fresh
// engine over the same cache directory serves the specialization from disk
// — byte-identical code, zero compiles.
func TestDiskCacheWarmRestart(t *testing.T) {
	dir := t.TempDir()

	// Cold process: compiles once, writes through to disk.
	e1, fn, buf := diskSetup(t, dir)
	r1 := newDotRewriter(e1, fn, buf)
	a1, err := r1.Rewrite()
	if err != nil {
		t.Fatal(err)
	}
	if r1.Source != "compile" {
		t.Fatalf("cold Rewrite Source = %q, want compile", r1.Source)
	}
	if got := e1.CompileCount(); got != 1 {
		t.Fatalf("cold CompileCount = %d, want 1", got)
	}
	if st, ok := e1.DiskStats(); !ok || st.Writes != 1 {
		t.Fatalf("disk stats after cold compile: ok=%v %v", ok, st)
	}
	want := codeBytes(t, e1, a1, r1.CodeSize)

	// Restarted process: same directory, same (deterministic) layout. The
	// rewrite must restore from disk without running the pipeline.
	e2, fn2, buf2 := diskSetup(t, dir)
	r2 := newDotRewriter(e2, fn2, buf2)
	a2, err := r2.Rewrite()
	if err != nil {
		t.Fatal(err)
	}
	if r2.Source != "disk" {
		t.Fatalf("warm-restart Rewrite Source = %q, want disk", r2.Source)
	}
	if r2.CacheHit {
		t.Fatal("disk restore must not report an in-memory cache hit")
	}
	if got := e2.CompileCount(); got != 0 {
		t.Fatalf("warm-restart CompileCount = %d, want 0", got)
	}
	if got := codeBytes(t, e2, a2, r2.CodeSize); !bytes.Equal(got, want) {
		t.Fatal("disk-restored code differs from the in-process compile")
	}
	if r2.Stats.Decoded != r1.Stats.Decoded || r2.Stats.Emitted != r1.Stats.Emitted {
		t.Fatalf("restored stats %+v differ from compiled stats %+v", r2.Stats, r1.Stats)
	}
	got, err := e2.CallF(a2, []uint64{buf2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got != 4.5 {
		t.Errorf("disk-restored specialization = %g, want 4.5", got)
	}

	// Third rewrite in the restarted process hits memory, not disk.
	r3 := newDotRewriter(e2, fn2, buf2)
	if _, err := r3.Rewrite(); err != nil {
		t.Fatal(err)
	}
	if r3.Source != "memory" || !r3.CacheHit {
		t.Errorf("repeat Rewrite Source = %q hit=%v, want memory hit", r3.Source, r3.CacheHit)
	}
}

// TestRemoveSpecializationEvictsAllLevels: satellite 6's engine half —
// removing a key must drop the in-memory entry, delete the disk artifact,
// and fire the eviction notifier (where the fleet broadcast hangs), and the
// next Rewrite must recompile rather than resurrect from a lower level.
func TestRemoveSpecializationEvictsAllLevels(t *testing.T) {
	dir := t.TempDir()
	e, fn, buf := diskSetup(t, dir)

	var notified []string
	e.SetEvictNotifier(func(k codecache.Key) { notified = append(notified, k.String()) })

	r := newDotRewriter(e, fn, buf)
	if _, err := r.Rewrite(); err != nil {
		t.Fatal(err)
	}
	key, ok := r.CacheKey()
	if !ok {
		t.Fatal("CacheKey not computable")
	}
	if has, ok := e.DiskHas(key); !ok || !has {
		t.Fatalf("artifact not on disk after compile: has=%v ok=%v", has, ok)
	}

	if !e.RemoveSpecialization(key) {
		t.Fatal("RemoveSpecialization of a cached key reported false")
	}
	if cached, _, _ := e.CachePeek(key); cached {
		t.Fatal("memory level still holds the removed key")
	}
	if has, _ := e.DiskHas(key); has {
		t.Fatal("disk level still holds the removed key")
	}
	if _, err := os.Stat(filepath.Join(dir, key.String()+".art")); !os.IsNotExist(err) {
		t.Fatal("removed artifact file still on disk")
	}
	if len(notified) != 1 || notified[0] != key.String() {
		t.Fatalf("eviction notifier saw %v, want exactly [%s]", notified, key)
	}

	// No resurrection: the next rewrite compiles.
	before := e.CompileCount()
	r2 := newDotRewriter(e, fn, buf)
	if _, err := r2.Rewrite(); err != nil {
		t.Fatal(err)
	}
	if r2.Source != "compile" {
		t.Fatalf("Rewrite after removal Source = %q, want compile", r2.Source)
	}
	if e.CompileCount() != before+1 {
		t.Fatal("Rewrite after removal did not recompile")
	}
}

// TestDiskCorruptionRecompilesIdentical: a corrupt artifact must read as a
// miss and the recompile must reproduce byte-identical code.
func TestDiskCorruptionRecompilesIdentical(t *testing.T) {
	dir := t.TempDir()
	e1, fn, buf := diskSetup(t, dir)
	r1 := newDotRewriter(e1, fn, buf)
	a1, err := r1.Rewrite()
	if err != nil {
		t.Fatal(err)
	}
	want := codeBytes(t, e1, a1, r1.CodeSize)
	key, _ := r1.CacheKey()

	// Flip one bit in the persisted payload.
	path := filepath.Join(dir, key.String()+".art")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0x40
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	// The restarted process rejects the artifact and recompiles.
	e2, fn2, buf2 := diskSetup(t, dir)
	r2 := newDotRewriter(e2, fn2, buf2)
	a2, err := r2.Rewrite()
	if err != nil {
		t.Fatal(err)
	}
	if r2.Source != "compile" {
		t.Fatalf("Rewrite over corrupt artifact Source = %q, want compile", r2.Source)
	}
	if st, _ := e2.DiskStats(); st.Corruptions != 1 {
		t.Fatalf("Corruptions = %d, want 1", st.Corruptions)
	}
	if got := codeBytes(t, e2, a2, r2.CodeSize); !bytes.Equal(got, want) {
		t.Fatal("recompile after corruption produced different code")
	}
	// And the recompile healed the disk slot.
	if has, _ := e2.DiskHas(key); !has {
		t.Fatal("recompile did not write the artifact back")
	}
}

// TestInvalidateRangeEvictsDiskAndBroadcasts: satellite 6's tiering half —
// a deoptimization drops its promotion-cache keys, and those removals must
// propagate to the disk level and the eviction notifier, so a deoptimized
// specialization cannot be resurrected stale from disk.
func TestInvalidateRangeEvictsDiskAndBroadcasts(t *testing.T) {
	e := NewEngine()
	e.EnableTiering(TierConfig{Tier1Calls: 2, Tier2Calls: 4, Synchronous: true})
	if err := e.EnableDiskCache(t.TempDir(), 1<<20); err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var notified []codecache.Key
	e.SetEvictNotifier(func(k codecache.Key) {
		mu.Lock()
		notified = append(notified, k)
		mu.Unlock()
	})

	buf := e.Alloc(8, "coeff")
	if err := e.Mem.WriteU(buf, 8, 1000); err != nil {
		t.Fatal(err)
	}
	fn := buildAddC(t, e)
	r := NewRewriter(e, fn, Sig(Int, Ptr, Int))
	r.SetParPtr(0, buf, 8)
	h, err := r.Tiered("addc")
	if err != nil {
		t.Fatal(err)
	}
	promote := func() {
		t.Helper()
		for i := uint64(1); i <= 6; i++ {
			if _, err := h.Call([]uint64{0, i}, nil); err != nil {
				t.Fatal(err)
			}
		}
		if h.Level() != Tier2 {
			t.Fatalf("level = %v, want tier2", h.Level())
		}
	}
	promote()

	// First deoptimization: capture the promotion-cache keys it dropped.
	if n := e.InvalidateRange(buf, buf+8); n != 1 {
		t.Fatalf("InvalidateRange deoptimized %d, want 1", n)
	}
	mu.Lock()
	keys := append([]codecache.Key(nil), notified...)
	notified = nil
	mu.Unlock()
	if len(keys) == 0 {
		t.Fatal("deoptimization fired no eviction notifications")
	}

	// Plant artifacts on disk under the dropped keys (the stale state a
	// restart could otherwise resurrect), re-promote over the unchanged
	// contents — same keys — and deoptimize again.
	for _, k := range keys {
		if _, err := e.AdoptArtifact(k, &diskcache.Artifact{Code: []byte{0xc3}, Meta: []byte("{}")}); err != nil {
			t.Fatal(err)
		}
		if has, _ := e.DiskHas(k); !has {
			t.Fatal("planted artifact not on disk")
		}
	}
	promote()
	if n := e.InvalidateRange(buf, buf+8); n != 1 {
		t.Fatal("second InvalidateRange did not deoptimize")
	}
	for _, k := range keys {
		if has, _ := e.DiskHas(k); has {
			t.Fatalf("deoptimized key %s still on disk", k)
		}
	}
	mu.Lock()
	gotNotify := len(notified)
	mu.Unlock()
	if gotNotify == 0 {
		t.Fatal("second deoptimization fired no eviction notifications")
	}
}

// TestArtifactForAndAdopt: the fleet primitives — exporting an artifact
// from one engine and adopting it into another must be byte-identical and
// compile-free on the adopting side.
func TestArtifactForAndAdopt(t *testing.T) {
	dir1 := t.TempDir()
	e1, fn, buf := diskSetup(t, dir1)
	r1 := newDotRewriter(e1, fn, buf)
	a1, err := r1.Rewrite()
	if err != nil {
		t.Fatal(err)
	}
	want := codeBytes(t, e1, a1, r1.CodeSize)
	key, _ := r1.CacheKey()

	art, err := e1.ArtifactFor(context.Background(), key, false)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(art.Code, want) {
		t.Fatal("ArtifactFor returned different code bytes")
	}
	if art.IR == "" {
		t.Fatal("artifact missing captured IR")
	}

	// Unknown key: the not-found sentinel, never a compile.
	if _, err := e1.ArtifactFor(context.Background(), codecache.Key{}, false); err != ErrArtifactNotFound {
		t.Fatalf("ArtifactFor(unknown) = %v, want ErrArtifactNotFound", err)
	}

	// The "peer": same layout, separate cache dir, never compiles.
	e2, fn2, buf2 := diskSetup(t, t.TempDir())
	addr, err := e2.AdoptArtifact(key, art)
	if err != nil {
		t.Fatal(err)
	}
	if got := codeBytes(t, e2, addr, len(art.Code)); !bytes.Equal(got, want) {
		t.Fatal("adopted code differs")
	}
	r2 := newDotRewriter(e2, fn2, buf2)
	a2, err := r2.Rewrite()
	if err != nil {
		t.Fatal(err)
	}
	if r2.Source != "memory" || a2 != addr {
		t.Fatalf("Rewrite after adoption Source=%q addr=%#x, want memory hit at %#x", r2.Source, a2, addr)
	}
	if e2.CompileCount() != 0 {
		t.Fatal("adopting engine compiled")
	}
	if got, err := e2.CallF(a2, []uint64{buf2}, nil); err != nil || got != 4.5 {
		t.Fatalf("adopted specialization = %g (%v), want 4.5", got, err)
	}
	// Write-through: the adopted artifact is on the peer's disk too.
	if has, _ := e2.DiskHas(key); !has {
		t.Fatal("adopted artifact not written through to disk")
	}
}
