# Developer entry points. `make check` is the full gate CI runs.

GO ?= go

.PHONY: check fmt vet build test race race-tiering bench bench-tiering fig10 throughput cachecheck

check: fmt vet build race-tiering race

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Tiered-execution promotion/deopt suite under the race detector, run with
# -count=1 so the concurrency-sensitive package is re-exercised every gate.
race-tiering:
	$(GO) test -race -count=1 ./internal/tier/...

bench:
	$(GO) test -bench=. -benchmem ./...

# One-shot O3 vs tiered execution totals across call counts.
bench-tiering:
	$(GO) run ./cmd/stencilbench -fig tiering

# Figure 10 with cold and cached-warm transformation times.
fig10:
	$(GO) run ./cmd/stencilbench -fig 10

# Concurrent specialization throughput (goroutines × distinct keys).
throughput:
	$(GO) run ./cmd/stencilbench -fig throughput

# Differential check: cached code bytes == freshly compiled code bytes.
cachecheck:
	$(GO) run ./cmd/difftest -cachecheck
