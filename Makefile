# Developer entry points. `make check` is the full gate CI runs.

GO ?= go

.PHONY: check fmt vet build test race race-tiering race-service race-trace race-trace-native race-cluster race-fastpath bench bench-emu bench-emu-nogate bench-fastpath bench-fastpath-nogate bench-tiering bench-service bench-cache bench-futamura corpus fig10 throughput cachecheck serve smoke cover fuzz-smoke

check: fmt vet build race-tiering race-service race-trace race-trace-native race-cluster race-fastpath race corpus cover fuzz-smoke bench-emu-nogate bench-fastpath-nogate

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Tiered-execution promotion/deopt suite under the race detector, run with
# -count=1 so the concurrency-sensitive package is re-exercised every gate.
race-tiering:
	$(GO) test -race -count=1 ./internal/tier/...

# dbrewd end-to-end suite (coalescing, admission control, shutdown drain)
# plus the cache singleflight races, re-run fresh under the race detector.
race-service:
	$(GO) test -race -count=1 ./internal/service/... ./internal/codecache/...

# Fastpath baseline backend: the package suite plus the concurrency- and
# strategy-sensitive call sites — the deopt-during-in-flight-compile tier
# test, the dbrewd strategy selection, and the pinned copy-shortcut seeds —
# fresh under the race detector.
race-fastpath:
	$(GO) test -race -count=1 ./internal/fastpath/...
	$(GO) test -race -count=1 -run 'Fastpath' ./internal/tier ./internal/service ./internal/crosstest ./internal/bench .

# Trace-tier suite (differential engines, deopt kernels, concurrent
# invalidation against a running trace) fresh under the race detector.
race-trace:
	$(GO) test -race -count=1 -run 'TestTrace' ./internal/jit

# Native trace backend suite fresh under the race detector: the
# native-vs-VM differential, the exit-stub deopt battery, trace-to-trace
# linking and its epoch invalidation, polymorphic trace selection, and
# concurrent invalidation against both a native and a VM machine. The
# native code itself is invisible to the detector; what this proves is
# that the Go side of the protocol (miss refills, link cache, counters)
# adds no unsynchronized state.
race-trace-native:
	$(GO) test -race -count=1 -run 'TestTraceNative|TestTraceLink|TestTracePoly' ./internal/jit

# Persistence + fleet suite fresh under the race detector: two in-process
# nodes, 32 concurrent identical requests, the exactly-one-compile
# assertion, warm restarts, eviction broadcasts, and peer degradation —
# plus the disk store's crash/corruption battery.
race-cluster:
	$(GO) test -race -count=1 -run 'TwoNode|FleetEviction|KilledPeer|WarmRestart|Warming|WarmFailure|Artifact|Delta' ./internal/service
	$(GO) test -race -count=1 ./internal/diskcache/... ./internal/cluster/...

bench:
	$(GO) test -bench=. -benchmem ./...

# Emulator dispatch benchmark (interp vs translated blocks), 5 repetitions,
# medians and speedups recorded machine-readably in BENCH_emu.json.
bench-emu:
	$(GO) run ./cmd/benchemu -count=5 -out=BENCH_emu.json

# Non-gating wrapper for `make check`: the numbers are recorded and printed,
# but a slow machine never fails the gate.
bench-emu-nogate:
	-@$(MAKE) --no-print-directory bench-emu

# Tier-1 backend compile-latency benchmark (legacy lift+O1 vs the fastpath
# single-pass baseline), 5 repetitions, medians, speedups, and the >=5x
# copy-route target recorded machine-readably in BENCH_fastpath.json.
bench-fastpath:
	$(GO) run ./cmd/benchfastpath -count=5 -out=BENCH_fastpath.json

# Non-gating wrapper for `make check`: the numbers are recorded and printed,
# but a slow machine never fails the gate.
bench-fastpath-nogate:
	-@$(MAKE) --no-print-directory bench-fastpath

# One-shot O3 vs tiered execution totals across call counts.
bench-tiering:
	$(GO) run ./cmd/stencilbench -fig tiering

# Figure 10 with cold and cached-warm transformation times.
fig10:
	$(GO) run ./cmd/stencilbench -fig 10

# Concurrent specialization throughput (goroutines × distinct keys).
throughput:
	$(GO) run ./cmd/stencilbench -fig throughput

# Differential check: cached code bytes == freshly compiled code bytes.
cachecheck:
	$(GO) run ./cmd/difftest -cachecheck

# In-process vs dbrewd round-trip specialization latency.
bench-service:
	$(GO) run ./cmd/stencilbench -fig service

# Specialization latency by serving level: fresh compile vs memory hit vs
# warm-restart disk hit vs fleet peer hit.
bench-cache:
	$(GO) run ./cmd/stencilbench -fig cache

# Rewriter-evaluation corpus gate: every hard-idiom subject through every
# execution path. Fails on any wrong-code verdict, on a pass -> fallback
# regression against the committed BENCH_coverage.json, or if the Futamura
# speedup row drops below 2x. Regenerate the artifact with:
#   go run ./cmd/stencilbench -fig coverage -coverage-out BENCH_coverage.json
corpus:
	$(GO) test -count=1 ./internal/corpus/

# Interpreter-specialization benchmark row (first Futamura projection).
bench-futamura:
	$(GO) run ./cmd/stencilbench -fig futamura

# Run the specialization daemon on 127.0.0.1:7411.
serve:
	$(GO) run ./cmd/dbrewd

# dbrewd self-test against an ephemeral server.
smoke:
	$(GO) run ./cmd/dbrewd -smoke

# Coverage gate: the observability and differential-testing packages must
# each stay at >= 70% statement coverage.
COVER_PKGS = ./internal/trace ./internal/crosstest ./internal/opt
cover:
	@for pkg in $(COVER_PKGS); do \
		out=$$($(GO) test -cover $$pkg | tail -1); echo "$$out"; \
		pct=$$(echo "$$out" | sed -n 's/.*coverage: \([0-9.]*\)%.*/\1/p'); \
		if [ -z "$$pct" ]; then echo "no coverage reported for $$pkg"; exit 1; fi; \
		ok=$$(awk -v p="$$pct" 'BEGIN { print (p >= 70.0) ? 1 : 0 }'); \
		if [ "$$ok" != 1 ]; then \
			echo "coverage for $$pkg is $$pct%, below the 70% gate"; exit 1; fi; \
	done

# Short live fuzz of the differential harness on top of the pinned corpus.
fuzz-smoke:
	$(GO) test -run='^$$' -fuzz=FuzzDifferential -fuzztime=30s ./internal/crosstest
