package jit

import (
	"fmt"
	"runtime"
	"unsafe"

	"repro/internal/emu"
	"repro/internal/ir"
	"repro/internal/lift"
	"repro/internal/x86"
	"repro/internal/x86/asm"
)

// This file compiles trace-VM bytecode (tracevm.go) to host x86-64, so hot
// superblock traces run as real machine code instead of a Go dispatch loop.
// Compiling from the vmProg — not from the IR — is deliberate: the native
// code inherits the VM's slot assignment, interned constants, exit tables
// and memory sites verbatim, and every exit funnels back through the same
// vmProg.takeExit, so flag materialization, register write-back and the
// (iters, steps, rip) contract are bit-identical to the VM by construction.
//
// Execution model. The state buffer (one uint64 per slot, extended with a
// few control words and a 4-word descriptor per memory site) is pinned in
// R15; a tiny assembly trampoline (traceEnter) calls into the generated
// code, which computes through RAX/RCX/RDX scratch on [R15+8*slot] and
// returns via RET with an exit token stored in the buffer. Baseline
// compiles (first heat) use this pure slot model — a fused single pass over
// the bytecode, TPDE-style. O3 recompiles additionally pin the hottest
// slots in callee-saved-by-the-trampoline registers (RBX, RBP, RSI, RDI,
// R8–R14); exit and miss stubs flush the pinned set back to the buffer so
// takeExit always reads authoritative memory, and per-site resume entries
// reload it.
//
// Memory accesses check their cached region bounds (and the line-split
// penalty and, for stores, the region watch flag) inline against the site
// descriptor; any failure jumps to a per-site miss stub that records the
// faulting address and returns to the Go wrapper, which re-runs the VM's
// exact region/watch/penalty logic — refilling the site and resuming at the
// site's recheck label, or deoptimizing through takeExit. The backedge SMC
// check dereferences the Memory code-generation word directly.

// nativeChunkInsts bounds the instructions retired per traceEnter call so
// the goroutine re-enters Go regularly (async preemption cannot interrupt
// non-Go code). A chunk-capped run is indistinguishable from an iteration
// cap exit and the dispatcher simply re-enters the trace.
const nativeChunkInsts = 4 << 20

// natMissBase offsets the per-site miss tokens above any real exit index in
// the exit-token word.
const natMissBase = 1 << 20

// natPinnable is the register pool for O3 slot pinning: everything the
// trampoline preserves except R15 (state base) and the RAX/RCX/RDX scratch.
var natPinnable = []x86.Reg{
	x86.RBX, x86.RSI, x86.RDI, x86.R8, x86.R9, x86.R10,
	x86.R11, x86.R12, x86.R13, x86.R14, x86.RBP,
}

type natSite struct {
	size  uint64
	write bool
	exit  int32 // vm exit index to deopt through on fault/watch/penalty
}

// nativeProg is a trace compiled to host code. Like the vmProg it wraps, it
// belongs to one machine's trace entry and runs serially.
type nativeProg struct {
	vm       *vmProg
	codeBuf  []byte // RWX mapping; munmapped by finalizer
	entry    uintptr
	resume   []uintptr // per site: reload pinned regs, re-run the site check
	sites    []natSite
	template []uint64
	scratch  []uint64
	chunk    uint64 // per-entry iteration cap (preemption bound)

	// Word indices into the state buffer.
	exitTokOff  int32
	missAddrOff int32
	startGenOff int32
	genPtrOff   int32
	siteBase    int32 // 4 words per site: start, limit, delta, watchPtr
	capExit     int32 // exit index of the iteration-cap exit (not a deopt)
}

// run implements emu.TraceRunFunc natively. See vmProg.run for the
// interpreted reference semantics.
func (p *nativeProg) run(m *emu.Machine, iterCap uint64) (iters, steps, rip uint64) {
	slots := p.scratch
	copy(slots, p.template)
	copy(slots[:16], m.GPR[:])
	f := &m.Flags
	slots[lift.TraceParamFlags+0] = b2u(f.CF)
	slots[lift.TraceParamFlags+1] = b2u(f.PF)
	slots[lift.TraceParamFlags+2] = b2u(f.AF)
	slots[lift.TraceParamFlags+3] = b2u(f.ZF)
	slots[lift.TraceParamFlags+4] = b2u(f.SF)
	slots[lift.TraceParamFlags+5] = b2u(f.OF)
	if iterCap > p.chunk {
		iterCap = p.chunk
	}
	slots[lift.TraceParamCap] = iterCap
	slots[p.startGenOff] = p.vm.mem.CodeGen()

	entry := p.entry
	for {
		traceEnter(entry, &slots[0])
		tok := slots[p.exitTokOff]
		if tok < natMissBase {
			if int32(tok) != p.capExit {
				emu.CountTraceNativeDeopt()
			}
			i, s, r := p.vm.takeExit(m, int32(tok), slots)
			runtime.KeepAlive(p)
			return i, s, r
		}
		// Site miss: the inline check failed. Re-run the VM's exact
		// region/watch/penalty decision and either refill the site
		// descriptor and resume, or deoptimize pre-instruction.
		k := tok - natMissBase
		ms := &p.sites[k]
		addr := slots[p.missAddrOff]
		r := p.vm.mem.FindRegion(addr, int(ms.size))
		if r == nil || (ms.write && r.Watched()) || p.vm.penalized(addr, ms.size, ms.write) {
			emu.CountTraceNativeDeopt()
			i, s, rp := p.vm.takeExit(m, ms.exit, slots)
			runtime.KeepAlive(p)
			return i, s, rp
		}
		base := p.siteBase + 4*int32(k)
		slots[base+0] = r.Start
		slots[base+1] = r.End() - ms.size
		slots[base+2] = uint64(uintptr(unsafe.Pointer(&r.Data[0]))) - r.Start
		slots[base+3] = uint64(uintptr(unsafe.Pointer(r.WatchWord())))
		entry = p.resume[k]
	}
}

// natBuilder emits a vmProg as host code.
type natBuilder struct {
	p    *nativeProg
	vm   *vmProg
	b    *asm.Builder
	pin  map[int32]x86.Reg
	pins []int32 // pinned slots in flush/reload order

	opLabel     []asm.Label // per vm pc
	exitLabel   []asm.Label // per vm exit (cold stub)
	missLabel   []asm.Label // per site (cold stub)
	recheckLbl  []asm.Label // per site (hot re-entry point)
	resumeLabel []asm.Label // per site (reload pinned, jmp recheck)

	constVal map[int32]uint64 // slots never written at run time
	bufBase  int32            // scratch words for cyclic phi moves
}

// buildNative compiles vm to host code. An error means the trace stays on
// the bytecode VM; nothing observable has happened.
func buildNative(vm *vmProg, prog *lift.TraceProgram, head uint64, o3 bool) (*nativeProg, error) {
	if !nativeTraceOK {
		return nil, fmt.Errorf("jit: native traces unsupported on this platform")
	}
	if vm.penCall {
		return nil, fmt.Errorf("jit: native traces require an inline penalty model")
	}
	if vm.lineMask > 0x7FFFFFFF {
		return nil, fmt.Errorf("jit: cache line too large for inline checks")
	}
	p := &nativeProg{vm: vm}
	nb := &natBuilder{p: p, vm: vm, b: asm.NewBuilder(), pin: map[int32]x86.Reg{}}

	// Extend the VM template with control words, the cyclic-move buffer and
	// the site descriptors.
	tmpl := append([]uint64(nil), vm.template...)
	word := func(v uint64) int32 {
		tmpl = append(tmpl, v)
		return int32(len(tmpl) - 1)
	}
	p.exitTokOff = word(0)
	p.missAddrOff = word(0)
	p.startGenOff = word(0)
	p.genPtrOff = word(uint64(uintptr(unsafe.Pointer(vm.mem.CodeGenWord()))))
	nb.bufBase = int32(len(tmpl))
	for range vm.buf {
		word(0)
	}
	p.siteBase = int32(len(tmpl))
	for range vm.sites {
		word(1) // start: [1, 0] is an empty range, every access misses
		word(0) // limit
		word(0) // delta
		word(0) // watch pointer
	}
	p.template = tmpl
	p.scratch = make([]uint64, len(tmpl))

	// Per-site metadata and the cap-exit index (for deopt accounting: the
	// iteration-cap exit is the one normal way out of the loop).
	p.sites = make([]natSite, len(vm.sites))
	for _, op := range vm.code {
		switch op.code {
		case vLoad:
			p.sites[op.b] = natSite{size: uint64(op.aux), exit: op.t0}
		case vStore:
			p.sites[op.dst] = natSite{size: uint64(op.aux), write: true, exit: op.t0}
		}
	}
	p.capExit = -1
	genSt := prog.Exits[prog.GenExit]
	for i := range vm.exits {
		st := vm.exits[i].st
		if st.Steps == 0 && st.RIP == head && st != genSt {
			p.capExit = int32(i)
			break
		}
	}
	if t := prog.NumSteps; t > 0 {
		p.chunk = uint64(nativeChunkInsts / t)
	}
	if p.chunk == 0 {
		p.chunk = 1
	}

	if o3 {
		nb.pickPins()
	}
	nb.findConsts()
	if err := nb.emit(); err != nil {
		return nil, err
	}
	code, labels, err := nb.b.Assemble(0)
	if err != nil {
		return nil, err
	}
	buf, err := allocExec(code)
	if err != nil {
		return nil, err
	}
	p.codeBuf = buf
	base := uintptr(unsafe.Pointer(&buf[0]))
	p.entry = base
	p.resume = make([]uintptr, len(vm.sites))
	for k := range vm.sites {
		p.resume[k] = base + uintptr(labels[nb.resumeLabel[k]])
	}
	runtime.SetFinalizer(p, func(fp *nativeProg) { freeExec(fp.codeBuf) })
	return p, nil
}

// slotUses tallies how often each slot is read or written, for pinning.
func (nb *natBuilder) slotUses() map[int32]int {
	use := map[int32]int{}
	add := func(s int32) { use[s]++ }
	for i := range nb.vm.code {
		op := &nb.vm.code[i]
		switch op.code {
		case vAdd, vSub, vMul, vAnd, vOr, vXor, vShl, vLShr, vAShr, vICmp, vBrICmp:
			add(op.dst)
			add(op.a)
			add(op.b)
		case vSelect:
			add(op.dst)
			add(op.a)
			add(op.b)
			add(op.t0)
		case vCtpop, vCopy, vTrunc, vSExt:
			add(op.dst)
			add(op.a)
		case vCondBr:
			add(op.a)
		case vLoad:
			add(op.dst)
			add(op.a)
		case vStore:
			add(op.a)
			add(op.b)
		}
	}
	for i := range nb.vm.moves {
		mv := &nb.vm.moves[i]
		for _, s := range mv.ord {
			add(s)
		}
		for _, s := range mv.cdst {
			add(s)
		}
		for _, s := range mv.csrc {
			add(s)
		}
	}
	return use
}

// pickPins assigns the hottest slots to registers (O3 mode).
func (nb *natBuilder) pickPins() {
	use := nb.slotUses()
	order := make([]int32, 0, len(use))
	for s := range use {
		order = append(order, s)
	}
	// Deterministic: by use count desc, slot index asc.
	for i := 1; i < len(order); i++ {
		for j := i; j > 0; j-- {
			a, bs := order[j-1], order[j]
			if use[bs] > use[a] || (use[bs] == use[a] && bs < a) {
				order[j-1], order[j] = bs, a
			} else {
				break
			}
		}
	}
	for i, s := range order {
		if i >= len(natPinnable) {
			break
		}
		nb.pin[s] = natPinnable[i]
		nb.pins = append(nb.pins, s)
	}
}

// findConsts identifies slots whose value never changes at run time: interned
// constants past the parameter area that no op or move writes. Their template
// value can fold into immediates.
func (nb *natBuilder) findConsts() {
	written := map[int32]bool{}
	for i := range nb.vm.code {
		op := &nb.vm.code[i]
		switch op.code {
		case vAdd, vSub, vMul, vAnd, vOr, vXor, vShl, vLShr, vAShr,
			vICmp, vBrICmp, vSelect, vCtpop, vCopy, vTrunc, vSExt, vLoad:
			written[op.dst] = true
		}
	}
	for i := range nb.vm.moves {
		mv := &nb.vm.moves[i]
		for j := 0; j < len(mv.ord); j += 2 {
			written[mv.ord[j]] = true
		}
		for _, d := range mv.cdst {
			written[d] = true
		}
	}
	nb.constVal = map[int32]uint64{}
	for s := int32(lift.TraceNumParams); s < int32(len(nb.vm.template)); s++ {
		if !written[s] {
			nb.constVal[s] = nb.vm.template[s]
		}
	}
}

func fitsImm32(v uint64) bool {
	return int64(v) >= -(1<<31) && int64(v) <= (1<<31)-1
}

// imm32Of returns the value of slot s as a sign-extendable 32-bit immediate.
func (nb *natBuilder) imm32Of(s int32) (int64, bool) {
	v, ok := nb.constVal[s]
	if !ok || !fitsImm32(v) {
		return 0, false
	}
	return int64(v), true
}

func (nb *natBuilder) slotMem(s int32) x86.Operand { return x86.MemBD(8, x86.R15, 8*s) }

// load brings slot s into scratch register r.
func (nb *natBuilder) load(r x86.Reg, s int32) {
	if pr, ok := nb.pin[s]; ok {
		nb.b.I(x86.MOV, x86.R64(r), x86.R64(pr))
		return
	}
	nb.b.I(x86.MOV, x86.R64(r), nb.slotMem(s))
}

// store writes scratch register r to slot s.
func (nb *natBuilder) store(s int32, r x86.Reg) {
	if pr, ok := nb.pin[s]; ok {
		nb.b.I(x86.MOV, x86.R64(pr), x86.R64(r))
		return
	}
	nb.b.I(x86.MOV, nb.slotMem(s), x86.R64(r))
}

// srcOp is slot s as a right-hand operand: its pinned register or its
// buffer word.
func (nb *natBuilder) srcOp(s int32) x86.Operand {
	if pr, ok := nb.pin[s]; ok {
		return x86.R64(pr)
	}
	return nb.slotMem(s)
}

// flushPins / reloadPins synchronize pinned registers with the buffer at
// stub boundaries. Cold code: runs once per exit or site miss.
func (nb *natBuilder) flushPins() {
	for _, s := range nb.pins {
		nb.b.I(x86.MOV, nb.slotMem(s), x86.R64(nb.pin[s]))
	}
}

func (nb *natBuilder) reloadPins() {
	for _, s := range nb.pins {
		nb.b.I(x86.MOV, x86.R64(nb.pin[s]), nb.slotMem(s))
	}
}

// jmp emits a jump to vm pc target unless it is the fallthrough.
func (nb *natBuilder) jmp(target, next int32) {
	if target != next {
		nb.b.Jmp(nb.opLabel[target])
	}
}

var natALU = map[vmCode]x86.Op{
	vAdd: x86.ADD, vSub: x86.SUB, vAnd: x86.AND, vOr: x86.OR, vXor: x86.XOR,
}

var natShift = map[vmCode]x86.Op{vShl: x86.SHL, vLShr: x86.SHR, vAShr: x86.SAR}

// emit lowers the whole bytecode program plus its stubs.
func (nb *natBuilder) emit() error {
	vm, b := nb.vm, nb.b
	nb.opLabel = make([]asm.Label, len(vm.code))
	for i := range nb.opLabel {
		nb.opLabel[i] = b.NewLabel()
	}
	nb.exitLabel = make([]asm.Label, len(vm.exits))
	for i := range nb.exitLabel {
		nb.exitLabel[i] = b.NewLabel()
	}
	nb.missLabel = make([]asm.Label, len(vm.sites))
	nb.recheckLbl = make([]asm.Label, len(vm.sites))
	nb.resumeLabel = make([]asm.Label, len(vm.sites))
	for i := range vm.sites {
		nb.missLabel[i] = b.NewLabel()
		nb.recheckLbl[i] = b.NewLabel()
		nb.resumeLabel[i] = b.NewLabel()
	}

	// Entry: the trampoline has R15 = &slots[0]; populate pinned registers
	// and fall through into pc 0.
	nb.reloadPins()

	for pc := int32(0); pc < int32(len(vm.code)); pc++ {
		b.Bind(nb.opLabel[pc])
		if err := nb.emitOp(pc); err != nil {
			return err
		}
	}

	// Cold stubs out of line: exits, then per-site miss and resume.
	for i := range vm.exits {
		b.Bind(nb.exitLabel[i])
		nb.flushPins()
		b.I(x86.MOV, x86.R32(x86.RCX), x86.Imm(int64(i), 4))
		b.I(x86.MOV, nb.slotMem(nb.p.exitTokOff), x86.R64(x86.RCX))
		b.Ret()
	}
	for k := range vm.sites {
		b.Bind(nb.missLabel[k])
		// RAX still holds the guest address (misses branch before the
		// delta is applied).
		nb.flushPins()
		b.I(x86.MOV, nb.slotMem(nb.p.missAddrOff), x86.R64(x86.RAX))
		b.I(x86.MOV, x86.R32(x86.RCX), x86.Imm(int64(natMissBase+k), 4))
		b.I(x86.MOV, nb.slotMem(nb.p.exitTokOff), x86.R64(x86.RCX))
		b.Ret()

		b.Bind(nb.resumeLabel[k])
		nb.reloadPins()
		b.Jmp(nb.recheckLbl[k])
	}
	return nil
}

func (nb *natBuilder) emitOp(pc int32) error {
	vm, b := nb.vm, nb.b
	op := &vm.code[pc]
	switch op.code {
	case vAdd, vSub, vAnd, vOr, vXor:
		nb.load(x86.RAX, op.a)
		if imm, ok := nb.imm32Of(op.b); ok {
			b.I(natALU[op.code], x86.R64(x86.RAX), x86.Imm(imm, 8))
		} else {
			b.I(natALU[op.code], x86.R64(x86.RAX), nb.srcOp(op.b))
		}
		nb.store(op.dst, x86.RAX)

	case vMul:
		if imm, ok := nb.imm32Of(op.b); ok {
			b.I(x86.IMUL3, x86.R64(x86.RAX), nb.srcOp(op.a), x86.Imm(imm, 8))
		} else {
			nb.load(x86.RAX, op.a)
			b.I(x86.IMUL, x86.R64(x86.RAX), nb.srcOp(op.b))
		}
		nb.store(op.dst, x86.RAX)

	case vShl, vLShr, vAShr:
		if cnt, ok := nb.constVal[op.b]; ok {
			nb.load(x86.RAX, op.a)
			if c := cnt & 63; c != 0 {
				b.I(natShift[op.code], x86.R64(x86.RAX), x86.Imm(int64(c), 1))
			}
		} else {
			nb.load(x86.RCX, op.b)
			nb.load(x86.RAX, op.a)
			// Hardware masks the count to 6 bits, same as the VM's &63.
			b.I(natShift[op.code], x86.R64(x86.RAX), x86.R8L(x86.RCX))
		}
		nb.store(op.dst, x86.RAX)

	case vICmp:
		cond, err := nb.emitCmp(op)
		if err != nil {
			return err
		}
		b.Emit(x86.Inst{Op: x86.SETCC, Cond: cond, Dst: x86.R8L(x86.RAX)})
		b.I(x86.MOVZX, x86.R64(x86.RAX), x86.R8L(x86.RAX))
		nb.store(op.dst, x86.RAX)

	case vBrICmp:
		cond, err := nb.emitCmp(op)
		if err != nil {
			return err
		}
		b.Emit(x86.Inst{Op: x86.SETCC, Cond: cond, Dst: x86.R8L(x86.RAX)})
		b.I(x86.MOVZX, x86.R64(x86.RAX), x86.R8L(x86.RAX))
		nb.store(op.dst, x86.RAX) // MOVs preserve flags; Jcc still sees the CMP
		b.Jcc(cond, nb.opLabel[op.t0])
		nb.jmp(op.t1, pc+1)

	case vSelect:
		nb.load(x86.RAX, op.a)
		nb.load(x86.RCX, op.b)
		nb.load(x86.RDX, op.t0)
		b.I(x86.TEST, x86.R64(x86.RDX), x86.R64(x86.RDX))
		b.Emit(x86.Inst{Op: x86.CMOVCC, Cond: x86.CondE, Dst: x86.R64(x86.RAX), Src: x86.R64(x86.RCX)})
		nb.store(op.dst, x86.RAX)

	case vCtpop:
		b.I(x86.POPCNT, x86.R64(x86.RAX), nb.srcOp(op.a))
		nb.store(op.dst, x86.RAX)

	case vCopy:
		nb.load(x86.RAX, op.a)
		nb.store(op.dst, x86.RAX)

	case vTrunc:
		nb.load(x86.RAX, op.a)
		switch bits := op.aux; {
		case bits >= 64:
		case bits == 32:
			b.I(x86.MOV, x86.R32(x86.RAX), x86.R32(x86.RAX))
		case bits < 32:
			b.I(x86.AND, x86.R64(x86.RAX), x86.Imm(int64(vmask(bits)), 8))
		default:
			return fmt.Errorf("jit: native trace: %d-bit trunc", op.aux)
		}
		nb.store(op.dst, x86.RAX)

	case vSExt:
		nb.load(x86.RAX, op.a)
		switch op.aux {
		case 8:
			b.I(x86.MOVSX, x86.R64(x86.RAX), x86.R8L(x86.RAX))
		case 16:
			b.I(x86.MOVSX, x86.R64(x86.RAX), x86.R16(x86.RAX))
		case 32:
			b.I(x86.MOVSXD, x86.R64(x86.RAX), x86.R32(x86.RAX))
		default:
			if op.aux < 64 {
				sh := int64(64 - op.aux)
				b.I(x86.SHL, x86.R64(x86.RAX), x86.Imm(sh, 1))
				b.I(x86.SAR, x86.R64(x86.RAX), x86.Imm(sh, 1))
			}
		}
		nb.store(op.dst, x86.RAX)

	case vBr:
		if op.a >= 0 {
			nb.emitMoves(op.a)
		}
		nb.jmp(op.t0, pc+1)

	case vCondBr:
		nb.load(x86.RAX, op.a)
		b.I(x86.TEST, x86.R64(x86.RAX), x86.R64(x86.RAX))
		b.Jcc(x86.CondNE, nb.opLabel[op.t0])
		nb.jmp(op.t1, pc+1)

	case vLoad:
		nb.emitSiteCheck(op.b, op.a, uint64(op.aux), false)
		// RAX = host address.
		switch op.aux {
		case 1:
			b.I(x86.MOVZX, x86.R64(x86.RDX), x86.MemBD(1, x86.RAX, 0))
		case 2:
			b.I(x86.MOVZX, x86.R64(x86.RDX), x86.MemBD(2, x86.RAX, 0))
		case 4:
			b.I(x86.MOV, x86.R32(x86.RDX), x86.MemBD(4, x86.RAX, 0))
		default:
			b.I(x86.MOV, x86.R64(x86.RDX), x86.MemBD(8, x86.RAX, 0))
		}
		nb.store(op.dst, x86.RDX)

	case vStore:
		nb.emitSiteCheck(op.dst, op.a, uint64(op.aux), true)
		nb.load(x86.RDX, op.b)
		switch op.aux {
		case 1:
			b.I(x86.MOV, x86.MemBD(1, x86.RAX, 0), x86.R8L(x86.RDX))
		case 2:
			b.I(x86.MOV, x86.MemBD(2, x86.RAX, 0), x86.R16(x86.RDX))
		case 4:
			b.I(x86.MOV, x86.MemBD(4, x86.RAX, 0), x86.R32(x86.RDX))
		default:
			b.I(x86.MOV, x86.MemBD(8, x86.RAX, 0), x86.R64(x86.RDX))
		}

	case vGenCheck:
		b.I(x86.MOV, x86.R64(x86.RAX), nb.slotMem(nb.p.genPtrOff))
		b.I(x86.MOV, x86.R64(x86.RAX), x86.MemBD(8, x86.RAX, 0))
		b.I(x86.CMP, x86.R64(x86.RAX), nb.slotMem(nb.p.startGenOff))
		b.Jcc(x86.CondNE, nb.exitLabel[op.t0])

	case vExit:
		b.Jmp(nb.exitLabel[op.a])

	default:
		return fmt.Errorf("jit: native trace: unsupported vm op %d", op.code)
	}
	return nil
}

// emitCmp emits the compare for vICmp/vBrICmp and returns the condition.
func (nb *natBuilder) emitCmp(op *vmOp) (x86.Cond, error) {
	cond, ok := predCond[ir.Pred(op.aux)]
	if !ok {
		return 0, fmt.Errorf("jit: native trace: unsupported predicate %d", op.aux)
	}
	nb.load(x86.RAX, op.a)
	if imm, ok := nb.imm32Of(op.b); ok {
		nb.b.I(x86.CMP, x86.R64(x86.RAX), x86.Imm(imm, 8))
	} else {
		nb.b.I(x86.CMP, x86.R64(x86.RAX), nb.srcOp(op.b))
	}
	return cond, nil
}

// emitMoves realizes one phi move set: the pre-sequenced in-order pairs,
// then the cyclic remainder through the buffer words.
func (nb *natBuilder) emitMoves(idx int32) {
	mv := &nb.vm.moves[idx]
	for i := 0; i < len(mv.ord); i += 2 {
		d, s := mv.ord[i], mv.ord[i+1]
		if pd, okd := nb.pin[d]; okd {
			if ps, oks := nb.pin[s]; oks {
				nb.b.I(x86.MOV, x86.R64(pd), x86.R64(ps))
				continue
			}
		}
		nb.load(x86.RAX, s)
		nb.store(d, x86.RAX)
	}
	for i, s := range mv.csrc {
		nb.load(x86.RAX, s)
		nb.b.I(x86.MOV, nb.slotMem(nb.bufBase+int32(i)), x86.R64(x86.RAX))
	}
	for i, d := range mv.cdst {
		nb.b.I(x86.MOV, x86.R64(x86.RAX), nb.slotMem(nb.bufBase+int32(i)))
		nb.store(d, x86.RAX)
	}
}

// emitSiteCheck emits the inline region check for memory site k: bounds
// against the site descriptor, the store watch flag, and the line-split
// penalty. On success RAX holds the host address; any failure jumps to the
// site's miss stub with the guest address still in RAX.
func (nb *natBuilder) emitSiteCheck(k, addrSlot int32, size uint64, write bool) {
	b := nb.b
	b.Bind(nb.recheckLbl[k])
	base := nb.p.siteBase + 4*k
	nb.load(x86.RAX, addrSlot)
	b.I(x86.CMP, x86.R64(x86.RAX), nb.slotMem(base+0))
	b.Jcc(x86.CondB, nb.missLabel[k])
	b.I(x86.CMP, x86.R64(x86.RAX), nb.slotMem(base+1))
	b.Jcc(x86.CondA, nb.missLabel[k])
	if write {
		b.I(x86.MOV, x86.R64(x86.RCX), nb.slotMem(base+3))
		b.I(x86.MOV, x86.R32(x86.RCX), x86.MemBD(4, x86.RCX, 0))
		b.I(x86.TEST, x86.R32(x86.RCX), x86.R32(x86.RCX))
		b.Jcc(x86.CondNE, nb.missLabel[k])
	}
	if mask := nb.vm.lineMask; mask != 0 && size > 1 {
		// (addr & mask) + size > mask+1  ⇔  addr & mask > mask+1-size
		b.I(x86.MOV, x86.R64(x86.RCX), x86.R64(x86.RAX))
		b.I(x86.AND, x86.R64(x86.RCX), x86.Imm(int64(mask), 8))
		b.I(x86.CMP, x86.R64(x86.RCX), x86.Imm(int64(mask+1-size), 8))
		b.Jcc(x86.CondA, nb.missLabel[k])
	}
	b.I(x86.ADD, x86.R64(x86.RAX), nb.slotMem(base+2))
}
