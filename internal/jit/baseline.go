package jit

// Baseline allocation: the single-pass backend's replacement for the
// liveness + linear-scan pipeline. Every live value gets a fixed stack slot
// in one walk over the function — no intervals, no fixpoint, no spilling
// decisions — and the existing emitter stages slot-homed values through its
// scratch registers exactly as it stages spilled values today. The only
// analysis performed is a cheap mark-live sweep: unoptimized lifted IR
// carries large amounts of dead flag materialization (the lifter computes
// every x86 status flag; the optimizer normally deletes the unconsumed
// ones), and emitting those would bloat the output several-fold.

import "repro/internal/ir"

// baselineRoot reports whether an instruction must execute regardless of
// whether its result is consumed.
func baselineRoot(in *ir.Inst) bool {
	if in.IsTerminator() {
		return true
	}
	switch in.Op {
	case ir.OpStore, ir.OpCall:
		return true
	case ir.OpLoad:
		return in.Volatile
	case ir.OpUDiv, ir.OpSDiv, ir.OpURem, ir.OpSRem:
		// Division can trap; without value-range facts its execution is an
		// observable effect, so it is never treated as dead.
		return true
	}
	return false
}

// baselineAllocate assigns every live value a stack slot and marks
// everything else dead. It produces an allocation the emitter consumes
// unchanged: empty fusion map, no callee-saved registers, all homes spilled.
func baselineAllocate(f *ir.Func) *allocation {
	// Mark-live: roots are effectful instructions; liveness propagates
	// through operands (including phi incoming values, which are the phi's
	// Args). The worklist converges even through phi cycles — an
	// unreferenced phi loop simply never gets marked.
	live := make(map[*ir.Inst]bool)
	var work []*ir.Inst
	mark := func(v ir.Value) {
		if in, ok := v.(*ir.Inst); ok && !live[in] {
			live[in] = true
			work = append(work, in)
		}
	}
	for _, b := range f.Blocks {
		for _, in := range b.Insts {
			if baselineRoot(in) {
				mark(in)
			}
		}
	}
	for len(work) > 0 {
		in := work[len(work)-1]
		work = work[:len(work)-1]
		for _, a := range in.Args {
			mark(a)
		}
	}

	// Used values: operands of live instructions. A live instruction whose
	// result is never consumed (an effectful call, a kept division) gets no
	// home; writeBackGP/XMM skip it.
	used := make(map[ir.Value]bool)
	for _, b := range f.Blocks {
		for _, in := range b.Insts {
			if !live[in] {
				continue
			}
			for _, a := range in.Args {
				switch a.(type) {
				case *ir.Inst, *ir.Param:
					used[a] = true
				}
			}
		}
	}

	a := &allocation{
		locs:  make(map[ir.Value]loc),
		fused: make(map[*ir.Inst]bool),
		dead:  make(map[*ir.Inst]bool),
	}
	var frame int32
	slotOf := func(cl regClass) int32 {
		if cl == classXMM {
			frame += 16
			if frame%16 != 0 {
				frame += 16 - frame%16
			}
		} else {
			frame += 8
		}
		return -frame
	}
	for _, p := range f.Params {
		if used[p] {
			a.locs[p] = loc{off: slotOf(classOf(p.Ty))}
		}
	}
	for _, b := range f.Blocks {
		for _, in := range b.Insts {
			if !live[in] {
				a.dead[in] = true
				continue
			}
			// Allocas own frame space via the emitter's allocaOff pass and
			// are rematerialized with LEA wherever used; a slot would never
			// be read.
			if in.Ty != ir.Void && in.Op != ir.OpAlloca && used[in] {
				a.locs[in] = loc{off: slotOf(classOf(in.Ty))}
			}
		}
	}
	if frame%16 != 0 {
		frame += 16 - frame%16
	}
	a.frameSize = frame
	return a
}
