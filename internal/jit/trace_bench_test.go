package jit

import (
	"testing"

	"repro/internal/emu"
	"repro/internal/x86"
	"repro/internal/x86/asm"
)

// alukernCode is the BenchmarkEmuEngines kernel: a loop-dominated integer
// mix (ALU chain, address arithmetic, a memory round-trip, a compare-driven
// cmov) of 18 instructions per iteration — the shape the trace tier is
// built for. rdi = scratch buffer, rsi = iteration count.
func alukernCode(t testing.TB) []byte {
	return assembleAt(t, 0x5000, func(b *asm.Builder) {
		b.I(x86.MOV, x86.R64(x86.RAX), x86.Imm(0, 8))
		b.I(x86.MOV, x86.R64(x86.RDX), x86.Imm(0x9E3779B9, 8))
		b.I(x86.MOV, x86.R64(x86.RCX), x86.R64(x86.RSI))
		loop := b.NewLabel()
		b.Bind(loop)
		b.I(x86.ADD, x86.R64(x86.RAX), x86.R64(x86.RDX))
		b.I(x86.XOR, x86.R64(x86.RDX), x86.R64(x86.RAX))
		b.I(x86.SHR, x86.R64(x86.RDX), x86.Imm(7, 1))
		b.I(x86.LEA, x86.R64(x86.R8), x86.MemBIS(8, x86.RAX, x86.RDX, 4, 13))
		b.I(x86.IMUL3, x86.R64(x86.R8), x86.R64(x86.R8), x86.Imm(0x85EB, 4))
		b.I(x86.AND, x86.R64(x86.R8), x86.Imm(0xFF8, 8))
		b.I(x86.MOV, x86.R64(x86.R9), x86.MemBIS(8, x86.RDI, x86.R8, 1, 0))
		b.I(x86.ADD, x86.R64(x86.R9), x86.R64(x86.RAX))
		b.I(x86.MOV, x86.MemBIS(8, x86.RDI, x86.R8, 1, 0), x86.R64(x86.R9))
		b.I(x86.MOV, x86.R64(x86.R10), x86.R64(x86.RDX))
		b.I(x86.SHL, x86.R64(x86.R10), x86.Imm(3, 1))
		b.I(x86.XOR, x86.R64(x86.RAX), x86.R64(x86.R10))
		b.I(x86.CMP, x86.R64(x86.RAX), x86.R64(x86.RDX))
		b.Emit(x86.Inst{Op: x86.CMOVCC, Cond: x86.CondB, Dst: x86.R64(x86.RAX), Src: x86.R64(x86.RDX)})
		b.I(x86.MOVZX, x86.R64(x86.R11), x86.R8L(x86.RDX))
		b.I(x86.ADD, x86.R64(x86.RAX), x86.R64(x86.R11))
		b.I(x86.SUB, x86.R64(x86.RCX), x86.Imm(1, 8))
		b.Jcc(x86.CondNE, loop)
		b.Ret()
	})
}

// BenchmarkEmuEngines measures the execution tiers on the same
// loop-dominated kernel: "interp" dispatches per instruction, "blocks"
// runs pre-bound translated blocks, "tracevm" compiles the hot loop
// through lift -> opt -> the trace VM, and "traces" carries it the rest of
// the way to native x86-64.
func BenchmarkEmuEngines(b *testing.B) {
	const iters = 4096
	code := alukernCode(b)
	bench := func(b *testing.B, mode engineMode, noNative bool) {
		mem := emu.NewMemory(0x1000000)
		if _, err := mem.MapBytes(0x5000, code, "code"); err != nil {
			b.Fatal(err)
		}
		buf := mem.Alloc(4096, 64, "buf")
		m := emu.NewMachine(mem)
		configure(m, mode)
		m.TraceOpts = emu.TraceOptions{NoNativeTraces: noNative} // defaults: realistic thresholds
		var insts uint64
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m.Reset()
			args := emu.CallArgs{Ints: []uint64{buf.Start, iters}}
			if _, err := m.Call(0x5000, args, 0); err != nil {
				b.Fatal(err)
			}
			insts += m.InstCount
		}
		b.StopTimer()
		if s := b.Elapsed().Seconds(); s > 0 {
			b.ReportMetric(float64(insts)/s, "inst/s")
		}
	}
	b.Run("interp", func(b *testing.B) { bench(b, modeInterp, false) })
	b.Run("blocks", func(b *testing.B) { bench(b, modeBlocks, false) })
	b.Run("tracevm", func(b *testing.B) { bench(b, modeTraces, true) })
	b.Run("traces", func(b *testing.B) { bench(b, modeTraces, false) })
}

// BenchmarkEmuLinked measures the linked-kernel shape: two adjacent
// do-while loops whose traces hand off to each other through the
// trace-to-trace link cache, re-entered by an outer loop too large to
// trace. "blocks" is the no-trace baseline; "tracevm" and "traces" split
// the win between trace compilation and native emission + linking.
func BenchmarkEmuLinked(b *testing.B) {
	code := assembleAt(b, 0x5000, linkedLoops(64, 40, 40))
	bench := func(b *testing.B, mode engineMode, noNative bool) {
		mem := emu.NewMemory(0x1000000)
		if _, err := mem.MapBytes(0x5000, code, "code"); err != nil {
			b.Fatal(err)
		}
		m := emu.NewMachine(mem)
		configure(m, mode)
		m.TraceOpts = emu.TraceOptions{NoNativeTraces: noNative}
		var insts uint64
		before := emu.ReadTraceStats()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m.Reset()
			if _, err := m.Call(0x5000, emu.CallArgs{}, 0); err != nil {
				b.Fatal(err)
			}
			insts += m.InstCount
		}
		b.StopTimer()
		after := emu.ReadTraceStats()
		if s := b.Elapsed().Seconds(); s > 0 {
			b.ReportMetric(float64(insts)/s, "inst/s")
		}
		// benchemu gates on the traces row having linked at least once.
		b.ReportMetric(float64(after.Links-before.Links), "links")
	}
	b.Run("blocks", func(b *testing.B) { bench(b, modeBlocks, false) })
	b.Run("tracevm", func(b *testing.B) { bench(b, modeTraces, true) })
	b.Run("traces", func(b *testing.B) { bench(b, modeTraces, false) })
}
