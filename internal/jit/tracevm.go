package jit

import (
	"encoding/binary"
	"fmt"
	"math/bits"

	"repro/internal/emu"
	"repro/internal/ir"
	"repro/internal/lift"
	"repro/internal/x86"
)

// This file executes optimized trace IR (lift.TraceProgram) through a
// compact register-machine bytecode. The native stencil backend (isel.go)
// targets straight-line kernels; trace loops instead run on a slot-based VM
// whose per-op cost is one switch dispatch over a flat array — an order of
// magnitude cheaper than the block engine's per-instruction closure calls
// with eager flag computation, which is where the trace tier's speedup
// comes from. Every SSA value owns a slot (uint64, i1 held as 0/1);
// constants are pre-staged in a template image and phis become buffered
// parallel moves on the incoming edges.

type vmCode uint8

const (
	vAdd vmCode = iota
	vSub
	vMul
	vAnd
	vOr
	vXor
	vShl
	vLShr
	vAShr
	vICmp   // aux = pred
	vSelect // t0 = cond slot
	vCtpop
	vCopy
	vTrunc // aux = dest bits
	vSExt  // aux = source bits
	vBr    // a = move set (-1 none), t0 = target pc
	vCondBr
	vBrICmp // fused compare+branch; aux = pred, also writes dst
	vLoad   // aux = size, b = region site, t0 = deopt exit
	vStore  // aux = size, dst = region site, t0 = deopt exit
	vGenCheck
	vExit // a = exit index
)

// vmOp is one VM instruction. Field roles vary by opcode; slots and branch
// targets are indices, aux is an opcode-specific immediate.
type vmOp struct {
	code   vmCode
	aux    uint8
	dst    int32
	a, b   int32
	t0, t1 int32
}

// vmMoves is the phi assignment of one CFG edge. ord holds moves already
// sequenced at build time so plain in-order copies realize the parallel
// semantics; cdst/csrc hold any cyclic remainder, applied through a buffer.
type vmMoves struct {
	ord        []int32 // dst, src interleaved
	cdst, csrc []int32
}

type vmExit struct {
	st        *lift.TraceExit
	regSlots  []int32
	flagSlots []int32
	ctrSlot   int32
}

// vmProg is a compiled trace. It belongs to one machine's trace entry and is
// executed serially, so the slot scratch and per-site region caches need no
// synchronization.
type vmProg struct {
	code     []vmOp
	template []uint64
	scratch  []uint64
	buf      []uint64
	moves    []vmMoves
	exits    []vmExit
	sites    []*emu.Region
	regIdx   []int
	mem      *emu.Memory
	cost     *emu.CostModel
	// lineMask enables the inlined penalty test (cache line size - 1) for
	// power-of-two lines with a nonzero split penalty; penCall falls back
	// to CostModel.MemPenalty for exotic models; both zero/false means
	// accesses can never be penalized (sizes in traces are at most 8).
	lineMask uint64
	penCall  bool
}

// penalized reports whether a size-byte access at addr would carry a memory
// penalty, in which case it must deoptimize (in-trace accesses are charged
// zero extra cycles).
func (p *vmProg) penalized(addr, size uint64, write bool) bool {
	if p.lineMask != 0 {
		return (addr&p.lineMask)+size > p.lineMask+1
	}
	if p.penCall {
		return p.cost.MemPenalty(addr, int(size), write) != 0
	}
	return false
}

func vmask(bits uint8) uint64 {
	if bits >= 64 {
		return ^uint64(0)
	}
	return uint64(1)<<bits - 1
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

func vtrunc(v uint64, size uint8) uint64 { return v & vmask(size*8) }

func vsignBit(v uint64, size uint8) bool { return v>>(uint(size)*8-1)&1 != 0 }

func vsext(v uint64, size uint8) int64 {
	sh := 64 - uint(size)*8
	return int64(v<<sh) >> sh
}

// run executes the trace. See emu.TraceRunFunc for the contract; the caller
// guarantees iterCap >= 1, so the first header cap-check never fires before
// an iteration has completed and the loop-carried phis hold real values.
func (p *vmProg) run(m *emu.Machine, iterCap uint64) (iters, steps, rip uint64) {
	slots := p.scratch
	copy(slots, p.template)
	copy(slots[:16], m.GPR[:])
	f := &m.Flags
	slots[lift.TraceParamFlags+0] = b2u(f.CF)
	slots[lift.TraceParamFlags+1] = b2u(f.PF)
	slots[lift.TraceParamFlags+2] = b2u(f.AF)
	slots[lift.TraceParamFlags+3] = b2u(f.ZF)
	slots[lift.TraceParamFlags+4] = b2u(f.SF)
	slots[lift.TraceParamFlags+5] = b2u(f.OF)
	slots[lift.TraceParamCap] = iterCap
	startGen := p.mem.CodeGen()

	code := p.code
	pc := int32(0)
	for {
		op := &code[pc]
		switch op.code {
		case vAdd:
			slots[op.dst] = slots[op.a] + slots[op.b]
		case vSub:
			slots[op.dst] = slots[op.a] - slots[op.b]
		case vMul:
			slots[op.dst] = slots[op.a] * slots[op.b]
		case vAnd:
			slots[op.dst] = slots[op.a] & slots[op.b]
		case vOr:
			slots[op.dst] = slots[op.a] | slots[op.b]
		case vXor:
			slots[op.dst] = slots[op.a] ^ slots[op.b]
		case vShl:
			slots[op.dst] = slots[op.a] << (slots[op.b] & 63)
		case vLShr:
			slots[op.dst] = slots[op.a] >> (slots[op.b] & 63)
		case vAShr:
			slots[op.dst] = uint64(int64(slots[op.a]) >> (slots[op.b] & 63))
		case vICmp:
			slots[op.dst] = b2u(vcmp(ir.Pred(op.aux), slots[op.a], slots[op.b]))
		case vSelect:
			if slots[op.t0] != 0 {
				slots[op.dst] = slots[op.a]
			} else {
				slots[op.dst] = slots[op.b]
			}
		case vCtpop:
			slots[op.dst] = uint64(bits.OnesCount64(slots[op.a]))
		case vCopy:
			slots[op.dst] = slots[op.a]
		case vTrunc:
			slots[op.dst] = slots[op.a] & vmask(op.aux)
		case vSExt:
			sh := 64 - uint(op.aux)
			slots[op.dst] = uint64(int64(slots[op.a]<<sh) >> sh)
		case vBr:
			if op.a >= 0 {
				p.applyMoves(op.a, slots)
			}
			pc = op.t0
			continue
		case vCondBr:
			if slots[op.a] != 0 {
				pc = op.t0
			} else {
				pc = op.t1
			}
			continue
		case vBrICmp:
			c := vcmp(ir.Pred(op.aux), slots[op.a], slots[op.b])
			slots[op.dst] = b2u(c)
			if c {
				pc = op.t0
			} else {
				pc = op.t1
			}
			continue
		case vLoad:
			addr, size := slots[op.a], uint64(op.aux)
			r := p.sites[op.b]
			if r == nil || addr < r.Start || addr+size > r.End() {
				r = p.mem.FindRegion(addr, int(size))
				if r == nil {
					return p.takeExit(m, op.t0, slots) // fault: re-execute in the block engine
				}
				p.sites[op.b] = r
			}
			if p.penalized(addr, size, false) {
				return p.takeExit(m, op.t0, slots) // penalized access: exact cycle accounting needs the block engine
			}
			d := r.Data[addr-r.Start:]
			switch size {
			case 1:
				slots[op.dst] = uint64(d[0])
			case 2:
				slots[op.dst] = uint64(binary.LittleEndian.Uint16(d))
			case 4:
				slots[op.dst] = uint64(binary.LittleEndian.Uint32(d))
			default:
				slots[op.dst] = binary.LittleEndian.Uint64(d)
			}
		case vStore:
			addr, size := slots[op.a], uint64(op.aux)
			r := p.sites[op.dst]
			if r == nil || addr < r.Start || addr+size > r.End() {
				r = p.mem.FindRegion(addr, int(size))
				if r == nil {
					return p.takeExit(m, op.t0, slots)
				}
				p.sites[op.dst] = r
			}
			if r.Watched() || p.penalized(addr, size, true) {
				// Stores into code-bearing regions must go through the
				// tracked write path (they bump the code generation).
				return p.takeExit(m, op.t0, slots)
			}
			d := r.Data[addr-r.Start:]
			v := slots[op.b]
			switch size {
			case 1:
				d[0] = byte(v)
			case 2:
				binary.LittleEndian.PutUint16(d, uint16(v))
			case 4:
				binary.LittleEndian.PutUint32(d, uint32(v))
			default:
				binary.LittleEndian.PutUint64(d, v)
			}
		case vGenCheck:
			if p.mem.CodeGen() != startGen {
				return p.takeExit(m, op.t0, slots)
			}
		case vExit:
			return p.takeExit(m, op.a, slots)
		}
		pc++
	}
}

func vcmp(pred ir.Pred, a, b uint64) bool {
	switch pred {
	case ir.PredEQ:
		return a == b
	case ir.PredNE:
		return a != b
	case ir.PredULT:
		return a < b
	case ir.PredULE:
		return a <= b
	case ir.PredUGT:
		return a > b
	case ir.PredUGE:
		return a >= b
	case ir.PredSLT:
		return int64(a) < int64(b)
	case ir.PredSLE:
		return int64(a) <= int64(b)
	case ir.PredSGT:
		return int64(a) > int64(b)
	case ir.PredSGE:
		return int64(a) >= int64(b)
	}
	return false
}

func (p *vmProg) applyMoves(idx int32, slots []uint64) {
	mv := &p.moves[idx]
	for i := 0; i < len(mv.ord); i += 2 {
		slots[mv.ord[i]] = slots[mv.ord[i+1]]
	}
	if len(mv.cdst) > 0 {
		buf := p.buf
		for i, s := range mv.csrc {
			buf[i] = slots[s]
		}
		for i, d := range mv.cdst {
			slots[d] = buf[i]
		}
	}
}

// takeExit materializes the architectural state of exit idx onto the
// machine: written-back registers, the six flags recomputed from the exit's
// symbolic recipe, and the (iters, steps, rip) triple for the dispatcher.
func (p *vmProg) takeExit(m *emu.Machine, idx int32, slots []uint64) (uint64, uint64, uint64) {
	e := &p.exits[idx]
	for i, ri := range p.regIdx {
		m.GPR[ri] = slots[e.regSlots[i]]
	}
	fs := e.flagSlots
	st := e.st
	switch st.Kind {
	case lift.TFExplicit:
		m.Flags = emu.Flags{
			CF: slots[fs[0]] != 0, PF: slots[fs[1]] != 0, AF: slots[fs[2]] != 0,
			ZF: slots[fs[3]] != 0, SF: slots[fs[4]] != 0, OF: slots[fs[5]] != 0,
		}
	case lift.TFAdd:
		m.Flags = emu.FlagsOfAdd(slots[fs[0]], slots[fs[1]], st.W)
	case lift.TFSub:
		m.Flags = emu.FlagsOfSub(slots[fs[0]], slots[fs[1]], st.W)
	case lift.TFAddCF:
		f := emu.FlagsOfAdd(slots[fs[0]], slots[fs[1]], st.W)
		f.CF = slots[fs[2]] != 0
		m.Flags = f
	case lift.TFSubCF:
		f := emu.FlagsOfSub(slots[fs[0]], slots[fs[1]], st.W)
		f.CF = slots[fs[2]] != 0
		m.Flags = f
	case lift.TFLogic:
		m.Flags = emu.FlagsOfLogic(slots[fs[0]], st.W)
	case lift.TFShift:
		v, res := slots[fs[0]], slots[fs[1]]
		f := emu.FlagsOfLogic(res, st.W)
		f.AF = slots[fs[2]] != 0
		width := uint64(st.W) * 8
		cnt := uint64(st.ShiftCnt)
		if st.ShiftOp == x86.SHL {
			f.CF = cnt <= width && v>>(width-cnt)&1 != 0
		} else {
			f.CF = v>>(cnt-1)&1 != 0
		}
		if cnt == 1 {
			f.OF = vsignBit(res, st.W) != vsignBit(v, st.W)
		} else {
			f.OF = slots[fs[3]] != 0
		}
		m.Flags = f
	case lift.TFMul:
		full := slots[fs[0]]
		f := emu.FlagsOfLogic(full, st.W)
		f.CF = vsext(vtrunc(full, st.W), st.W) != int64(full)
		f.OF = f.CF
		f.AF = slots[fs[1]] != 0
		m.Flags = f
	}
	return slots[e.ctrSlot], st.Steps, st.RIP
}

// --- bytecode compilation ---------------------------------------------------

type vmBuilder struct {
	p       *vmProg
	prog    *lift.TraceProgram
	slot    map[*ir.Inst]int32
	cslot   map[ir.Value]int32 // constants and undefs, by pointer
	blockPC map[*ir.Block]int32
	exitIdx map[*ir.Inst]int32
	fixups  []vmFixup
	maxMove int
}

type vmFixup struct {
	op     int32
	field  int8 // 0 = t0, 1 = t1
	target *ir.Block
}

// buildVM compiles optimized trace IR into a vmProg.
func buildVM(prog *lift.TraceProgram, mem *emu.Memory, cost *emu.CostModel) (*vmProg, error) {
	if cost == nil {
		cost = emu.HaswellModel()
	}
	pv := &vmProg{mem: mem, cost: cost, regIdx: prog.RegIdx}
	switch l := cost.LineSize; {
	case l != 0 && l&(l-1) == 0:
		if cost.SplitPenalty != 0 {
			pv.lineMask = l - 1
		}
	default:
		pv.penCall = true
	}
	b := &vmBuilder{
		p:       pv,
		prog:    prog,
		slot:    make(map[*ir.Inst]int32),
		cslot:   make(map[ir.Value]int32),
		blockPC: make(map[*ir.Block]int32),
		exitIdx: make(map[*ir.Inst]int32),
	}
	f := prog.F
	// Parameters own the first slots, at their parameter index.
	b.p.template = make([]uint64, lift.TraceNumParams)
	for _, blk := range f.Blocks {
		for _, in := range blk.Insts {
			if in.Ty != nil && in.Ty != ir.Void {
				b.slot[in] = int32(len(b.p.template))
				b.p.template = append(b.p.template, 0)
			}
		}
	}
	for _, blk := range f.Blocks {
		if err := b.emitBlock(blk); err != nil {
			return nil, err
		}
	}
	for _, fx := range b.fixups {
		pc, ok := b.blockPC[fx.target]
		if !ok {
			return nil, fmt.Errorf("jit: trace VM: branch to unemitted block %s", fx.target.Nam)
		}
		if fx.field == 0 {
			b.p.code[fx.op].t0 = pc
		} else {
			b.p.code[fx.op].t1 = pc
		}
	}
	b.p.scratch = make([]uint64, len(b.p.template))
	b.p.buf = make([]uint64, b.maxMove)
	return b.p, nil
}

func (b *vmBuilder) slotOf(v ir.Value) (int32, error) {
	switch t := v.(type) {
	case *ir.Inst:
		s, ok := b.slot[t]
		if !ok {
			return 0, fmt.Errorf("jit: trace VM: use of unslotted %s", t.Nam)
		}
		return s, nil
	case *ir.Param:
		return int32(t.Idx), nil
	case *ir.ConstInt:
		if s, ok := b.cslot[v]; ok {
			return s, nil
		}
		s := int32(len(b.p.template))
		b.p.template = append(b.p.template, t.V)
		b.cslot[v] = s
		return s, nil
	case *ir.Undef:
		if s, ok := b.cslot[v]; ok {
			return s, nil
		}
		s := int32(len(b.p.template))
		b.p.template = append(b.p.template, 0)
		b.cslot[v] = s
		return s, nil
	}
	return 0, fmt.Errorf("jit: trace VM: unsupported value %s", v.Ident())
}

func (b *vmBuilder) emit(op vmOp) int32 {
	b.p.code = append(b.p.code, op)
	return int32(len(b.p.code) - 1)
}

// branchTo records a branch-target fixup on the just-emitted op.
func (b *vmBuilder) branchTo(op int32, field int8, target *ir.Block) {
	b.fixups = append(b.fixups, vmFixup{op: op, field: field, target: target})
}

// movesFor builds the phi move set for the pred -> succ edge, or -1.
func (b *vmBuilder) movesFor(pred, succ *ir.Block) (int32, error) {
	var dst, src []int32
	for _, in := range succ.Insts {
		if in.Op != ir.OpPhi {
			break
		}
		found := false
		for i, inc := range in.Incoming {
			if inc == pred {
				s, err := b.slotOf(in.Args[i])
				if err != nil {
					return 0, err
				}
				if d := b.slot[in]; d != s { // self-moves vanish
					dst = append(dst, d)
					src = append(src, s)
				}
				found = true
				break
			}
		}
		if !found {
			return 0, fmt.Errorf("jit: trace VM: phi in %s missing incoming from %s", succ.Nam, pred.Nam)
		}
	}
	if len(dst) == 0 {
		return -1, nil
	}
	mv := sequenceMoves(dst, src)
	if n := len(mv.cdst); n > b.maxMove {
		b.maxMove = n
	}
	b.p.moves = append(b.p.moves, mv)
	return int32(len(b.p.moves) - 1), nil
}

// sequenceMoves orders a parallel assignment so in-order copies preserve
// its semantics: a move may run once no remaining move still reads its
// destination. The (rare) cyclic remainder is carried separately and
// realized through a scratch buffer at run time.
func sequenceMoves(dst, src []int32) vmMoves {
	var mv vmMoves
	pending := make([]bool, len(dst))
	for i := range pending {
		pending[i] = true
	}
	remaining := len(dst)
	for remaining > 0 {
		progress := false
		for i := range dst {
			if !pending[i] {
				continue
			}
			blocked := false
			for j := range src {
				if pending[j] && j != i && src[j] == dst[i] {
					blocked = true
					break
				}
			}
			if blocked {
				continue
			}
			mv.ord = append(mv.ord, dst[i], src[i])
			pending[i] = false
			remaining--
			progress = true
		}
		if !progress {
			break // only cycles remain
		}
	}
	for i := range dst {
		if pending[i] {
			mv.cdst = append(mv.cdst, dst[i])
			mv.csrc = append(mv.csrc, src[i])
		}
	}
	return mv
}

// exitFor interns the vmExit for an exit call.
func (b *vmBuilder) exitFor(call *ir.Inst) (int32, error) {
	if idx, ok := b.exitIdx[call]; ok {
		return idx, nil
	}
	st := b.prog.Exits[call]
	if st == nil {
		return 0, fmt.Errorf("jit: trace VM: call %s is not a registered exit", call.Callee.Nam)
	}
	nreg := len(b.prog.RegIdx)
	if len(call.Args) != nreg+st.NArgs+1 {
		return 0, fmt.Errorf("jit: trace VM: exit %s has %d args, want %d", call.Callee.Nam, len(call.Args), nreg+st.NArgs+1)
	}
	e := vmExit{st: st}
	for i, a := range call.Args {
		s, err := b.slotOf(a)
		if err != nil {
			return 0, err
		}
		switch {
		case i < nreg:
			e.regSlots = append(e.regSlots, s)
		case i < nreg+st.NArgs:
			e.flagSlots = append(e.flagSlots, s)
		default:
			e.ctrSlot = s
		}
	}
	idx := int32(len(b.p.exits))
	b.p.exits = append(b.p.exits, e)
	b.exitIdx[call] = idx
	return idx, nil
}

func (b *vmBuilder) emitBlock(blk *ir.Block) error {
	b.blockPC[blk] = int32(len(b.p.code))
	var lastICmp *ir.Inst
	var lastICmpOp int32
	for _, in := range blk.Insts {
		switch in.Op {
		case ir.OpPhi:
			continue // realized by edge moves

		case ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpAnd, ir.OpOr, ir.OpXor,
			ir.OpShl, ir.OpLShr, ir.OpAShr:
			a, err := b.slotOf(in.Args[0])
			if err != nil {
				return err
			}
			c, err := b.slotOf(in.Args[1])
			if err != nil {
				return err
			}
			var code vmCode
			switch in.Op {
			case ir.OpAdd:
				code = vAdd
			case ir.OpSub:
				code = vSub
			case ir.OpMul:
				code = vMul
			case ir.OpAnd:
				code = vAnd
			case ir.OpOr:
				code = vOr
			case ir.OpXor:
				code = vXor
			case ir.OpShl:
				code = vShl
			case ir.OpLShr:
				code = vLShr
			case ir.OpAShr:
				code = vAShr
			}
			b.emit(vmOp{code: code, dst: b.slot[in], a: a, b: c})

		case ir.OpICmp:
			a, err := b.slotOf(in.Args[0])
			if err != nil {
				return err
			}
			c, err := b.slotOf(in.Args[1])
			if err != nil {
				return err
			}
			lastICmp = in
			lastICmpOp = b.emit(vmOp{code: vICmp, aux: uint8(in.Pred), dst: b.slot[in], a: a, b: c})

		case ir.OpSelect:
			cond, err := b.slotOf(in.Args[0])
			if err != nil {
				return err
			}
			x, err := b.slotOf(in.Args[1])
			if err != nil {
				return err
			}
			y, err := b.slotOf(in.Args[2])
			if err != nil {
				return err
			}
			b.emit(vmOp{code: vSelect, dst: b.slot[in], a: x, b: y, t0: cond})

		case ir.OpCtpop:
			a, err := b.slotOf(in.Args[0])
			if err != nil {
				return err
			}
			b.emit(vmOp{code: vCtpop, dst: b.slot[in], a: a})

		case ir.OpTrunc:
			a, err := b.slotOf(in.Args[0])
			if err != nil {
				return err
			}
			b.emit(vmOp{code: vTrunc, aux: uint8(in.Ty.Bits), dst: b.slot[in], a: a})
		case ir.OpZExt:
			a, err := b.slotOf(in.Args[0])
			if err != nil {
				return err
			}
			b.emit(vmOp{code: vCopy, dst: b.slot[in], a: a}) // slots are zero-extended already
		case ir.OpSExt:
			a, err := b.slotOf(in.Args[0])
			if err != nil {
				return err
			}
			b.emit(vmOp{code: vSExt, aux: uint8(in.Args[0].Type().Bits), dst: b.slot[in], a: a})

		case ir.OpCall:
			if b.prog.Exits[in] != nil {
				idx, err := b.exitFor(in)
				if err != nil {
					return err
				}
				b.emit(vmOp{code: vExit, a: idx})
				return nil // the rest of the block is unreachable
			}
			mm := b.prog.Mems[in]
			if mm == nil {
				return fmt.Errorf("jit: trace VM: unexpected call to %s", in.Callee.Nam)
			}
			exit, err := b.exitFor(mm.Exit)
			if err != nil {
				return err
			}
			site := int32(len(b.p.sites))
			b.p.sites = append(b.p.sites, nil)
			addr, err := b.slotOf(in.Args[0])
			if err != nil {
				return err
			}
			if mm.Write {
				val, err := b.slotOf(in.Args[1])
				if err != nil {
					return err
				}
				b.emit(vmOp{code: vStore, aux: uint8(mm.Size), dst: site, a: addr, b: val, t0: exit})
			} else {
				b.emit(vmOp{code: vLoad, aux: uint8(mm.Size), dst: b.slot[in], a: addr, b: site, t0: exit})
			}

		case ir.OpBr:
			if blk == b.prog.Backedge {
				genExit, err := b.exitFor(b.prog.GenExit)
				if err != nil {
					return err
				}
				b.emit(vmOp{code: vGenCheck, t0: genExit})
			}
			mv, err := b.movesFor(blk, in.Blocks[0])
			if err != nil {
				return err
			}
			op := b.emit(vmOp{code: vBr, a: mv})
			b.branchTo(op, 0, in.Blocks[0])

		case ir.OpCondBr:
			cond, err := b.slotOf(in.Args[0])
			if err != nil {
				return err
			}
			// Both targets are move-free in trace IR (only the header has
			// phis and it is only entered through br edges); reject the
			// unexpected rather than emitting a wrong branch.
			for _, t := range in.Blocks {
				if mv, err := b.movesFor(blk, t); err != nil {
					return err
				} else if mv >= 0 {
					return fmt.Errorf("jit: trace VM: conditional edge %s -> %s carries phi moves", blk.Nam, t.Nam)
				}
			}
			if lastICmp != nil && ir.Value(lastICmp) == in.Args[0] && lastICmpOp == int32(len(b.p.code)-1) {
				// Fuse the just-emitted compare into the branch (the slot
				// is still written for any later consumer).
				o := &b.p.code[lastICmpOp]
				o.code = vBrICmp
				b.branchTo(lastICmpOp, 0, in.Blocks[0])
				b.branchTo(lastICmpOp, 1, in.Blocks[1])
				return nil
			}
			op := b.emit(vmOp{code: vCondBr, a: cond})
			b.branchTo(op, 0, in.Blocks[0])
			b.branchTo(op, 1, in.Blocks[1])

		case ir.OpUnreachable:
			return fmt.Errorf("jit: trace VM: reachable unreachable in %s", blk.Nam)

		default:
			return fmt.Errorf("jit: trace VM: unsupported op %s in %s", in.Op, blk.Nam)
		}
	}
	return nil
}
