package jit

import (
	"testing"

	"repro/internal/emu"
	"repro/internal/ir"
)

// buildBaselineCases returns fresh IR functions covering the shapes the
// baseline backend must lower: control flow with phis, FP arithmetic,
// memory traffic, selects, and narrow-width extensions. Functions are
// rebuilt per call because compilation mutates the IR (edge splitting).
func buildBaselineCases() map[string]func() (*ir.Func, []uint64, []float64) {
	return map[string]func() (*ir.Func, []uint64, []float64){
		"max": func() (*ir.Func, []uint64, []float64) {
			f := ir.NewFunc("max", ir.I64, ir.I64, ir.I64)
			b := ir.NewBuilder(f)
			lt := b.ICmp(ir.PredSLT, f.Params[0], f.Params[1])
			b.Ret(b.Select(lt, f.Params[1], f.Params[0]))
			return f, []uint64{9, 3}, nil
		},
		"loopsum": func() (*ir.Func, []uint64, []float64) {
			f := ir.NewFunc("sum", ir.I64, ir.I64)
			b := ir.NewBuilder(f)
			entry := b.Cur
			loop := f.NewBlock("loop")
			body := f.NewBlock("body")
			exit := f.NewBlock("exit")
			b.Br(loop)
			b.SetBlock(loop)
			i := b.Phi(ir.I64)
			s := b.Phi(ir.I64)
			b.CondBr(b.ICmp(ir.PredSLT, i, f.Params[0]), body, exit)
			b.SetBlock(body)
			s2 := b.Add(s, i)
			i2 := b.Add(i, ir.Int(ir.I64, 1))
			b.Br(loop)
			ir.AddIncoming(i, ir.Int(ir.I64, 0), entry)
			ir.AddIncoming(i, i2, body)
			ir.AddIncoming(s, ir.Int(ir.I64, 0), entry)
			ir.AddIncoming(s, s2, body)
			b.SetBlock(exit)
			b.Ret(s)
			return f, []uint64{100}, nil
		},
		"axpy": func() (*ir.Func, []uint64, []float64) {
			f := ir.NewFunc("axpy", ir.Double, ir.Double, ir.Double, ir.Double)
			b := ir.NewBuilder(f)
			b.Ret(b.FAdd(b.FMul(f.Params[0], f.Params[1]), f.Params[2]))
			return f, nil, []float64{3, 4, 5}
		},
		"narrow": func() (*ir.Func, []uint64, []float64) {
			f := ir.NewFunc("narrow", ir.I64, ir.I64, ir.I64)
			b := ir.NewBuilder(f)
			t8 := b.Trunc(f.Params[0], ir.I8)
			z := b.ZExt(t8, ir.I64)
			sx := b.SExt(b.Trunc(f.Params[1], ir.I32), ir.I64)
			b.Ret(b.Xor(z, sx))
			return f, []uint64{0x1FF, 0xFFFFFFFF80000001}, nil
		},
	}
}

// TestBaselineMatchesLinearScan compiles each case with both backends and
// requires identical results (RAX or XMM0) on the emulator.
func TestBaselineMatchesLinearScan(t *testing.T) {
	for name, build := range buildBaselineCases() {
		t.Run(name, func(t *testing.T) {
			f1, ints, fps := build()
			want, m1 := compileAndRun(t, emu.NewMemory(0x1000000), f1, ints, fps)

			f2, _, _ := build()
			mem := emu.NewMemory(0x1000000)
			c := NewCompiler(mem)
			c.Baseline = true
			entry, err := c.Compile(f2)
			if err != nil {
				t.Fatalf("baseline compile: %v\n%s", err, ir.FormatFunc(f2))
			}
			m := emu.NewMachine(mem)
			got, err := m.Call(entry, emu.CallArgs{Ints: ints, Floats: fps}, 1_000_000)
			if err != nil {
				t.Fatalf("baseline run: %v\n%s", err, ir.FormatFunc(f2))
			}
			if got != want {
				t.Errorf("baseline = %#x, linear-scan = %#x", got, want)
			}
			if m.XMM[0].Lo != m1.XMM[0].Lo {
				t.Errorf("baseline xmm0 = %#x, linear-scan = %#x", m.XMM[0].Lo, m1.XMM[0].Lo)
			}
		})
	}
}

// TestBaselineMemoryOps checks loads/stores through an unfused GEP chain and
// that stored side effects land (stores are roots, never dead).
func TestBaselineMemoryOps(t *testing.T) {
	f := ir.NewFunc("pair", ir.Double, ir.PtrTo(ir.I8), ir.I64)
	b := ir.NewBuilder(f)
	dp := b.Bitcast(f.Params[0], ir.PtrTo(ir.Double))
	l0 := b.Load(ir.Double, b.GEP(ir.Double, dp, f.Params[1]))
	l1 := b.Load(ir.Double, b.GEP(ir.Double, dp, b.Add(f.Params[1], ir.Int(ir.I64, 1))))
	sum := b.FAdd(l0, l1)
	b.Store(sum, b.GEP(ir.Double, dp, ir.Int(ir.I64, 0)))
	b.Ret(sum)

	mem := emu.NewMemory(0x1000000)
	buf := mem.Alloc(64, 16, "buf")
	mem.WriteFloat64(buf.Start+16, 1.5)
	mem.WriteFloat64(buf.Start+24, 2.25)
	c := NewCompiler(mem)
	c.Baseline = true
	entry, err := c.Compile(f)
	if err != nil {
		t.Fatal(err)
	}
	m := emu.NewMachine(mem)
	if _, err := m.Call(entry, emu.CallArgs{Ints: []uint64{buf.Start, 2}}, 10_000); err != nil {
		t.Fatal(err)
	}
	if got := m.XMM[0].Lo; got != f64b(3.75) {
		t.Errorf("pair = %#x, want %#x", got, f64b(3.75))
	}
	if got, _ := mem.ReadFloat64(buf.Start); got != 3.75 {
		t.Errorf("store missed: buf[0] = %g, want 3.75", got)
	}
}

// TestBaselineDCE verifies the mark-live sweep: dead pure chains produce no
// code, but kept roots (division) survive even when unused.
func TestBaselineDCE(t *testing.T) {
	f := ir.NewFunc("dead", ir.I64, ir.I64)
	b := ir.NewBuilder(f)
	// Dead chain: never consumed.
	d := b.Add(f.Params[0], ir.Int(ir.I64, 1))
	b.Mul(d, d)
	b.Ret(f.Params[0])

	al := baselineAllocate(f)
	deadCount := 0
	for _, blk := range f.Blocks {
		for _, in := range blk.Insts {
			if al.dead[in] {
				deadCount++
			}
		}
	}
	if deadCount != 2 {
		t.Errorf("dead instructions = %d, want 2\n%s", deadCount, ir.FormatFunc(f))
	}

	g := ir.NewFunc("divkeep", ir.I64, ir.I64, ir.I64)
	b2 := ir.NewBuilder(g)
	b2.SDiv(g.Params[0], g.Params[1]) // unused, but may trap: must stay
	b2.Ret(g.Params[0])
	al2 := baselineAllocate(g)
	for _, blk := range g.Blocks {
		for _, in := range blk.Insts {
			if in.Op == ir.OpSDiv && al2.dead[in] {
				t.Error("unused sdiv was marked dead; division is an effect")
			}
		}
	}
}
