package jit

import (
	"fmt"

	"repro/internal/emu"
	"repro/internal/ir"
	"repro/internal/lift"
	"repro/internal/opt"
)

// CompileTrace is the trace compiler the emulator's trace tier dispatches
// to: lift the recorded superblock to IR, optimize it, and compile the
// result to trace-VM bytecode. Importing this package is what turns the
// tier on — init registers the compiler with internal/emu.
//
// The optimization config is deliberately restricted: inlining and
// unrolling would clone the exit and memory-intrinsic calls that anchor the
// side tables, and CFG simplification would delete the not-taken exit
// blocks. InstCombine, DCE and CSE — the passes that actually pay here, by
// deleting the dead flag machinery and folding the lifter's facet masks —
// run at both levels; level 3 additionally iterates them to a fixpoint.
func CompileTrace(req *emu.TraceRequest) (emu.TraceRunFunc, error) {
	prog, err := lift.Trace(req)
	if err != nil {
		return nil, err
	}
	if err := ir.Verify(prog.F); err != nil {
		return nil, fmt.Errorf("jit: trace IR: %w", err)
	}
	cfg := opt.Config{Level: 1, NoInline: true, NoUnroll: true, NoSimplify: true}
	if req.O3 {
		cfg.Level = 3
	}
	opt.Optimize(prog.F, cfg)
	vm, err := buildVM(prog, req.Mem, req.Cost)
	if err != nil {
		return nil, err
	}
	if !req.NoNative {
		// Native emission rejecting a trace (unsupported op shape, exotic
		// cost model, non-amd64 host) is not an error: the bytecode VM is
		// the always-correct fallback.
		if np, nerr := buildNative(vm, prog, req.Head, req.O3); nerr == nil {
			emu.CountTraceNativeCompile()
			return np.run, nil
		}
	}
	return vm.run, nil
}

func init() {
	emu.RegisterTraceCompiler(CompileTrace)
}
