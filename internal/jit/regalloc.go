// Package jit compiles IR functions back to x86-64 machine code placed in
// the emulated address space — the paper's "JIT compiler" stage in Figure 1.
// It performs instruction selection with compare/branch and address-mode
// fusion plus a linear-scan register allocator, producing code whose quality
// is close enough to the compiler-generated input that the identity
// transformation (lift, optimize, compile) has little overhead, as reported
// in Section VI.
package jit

import (
	"sort"

	"repro/internal/ir"
	"repro/internal/x86"
)

// regClass separates general purpose and vector values.
type regClass uint8

const (
	classGP regClass = iota
	classXMM
)

func classOf(t *ir.Type) regClass {
	if t.IsFP() || t.IsVec() || (t.IsInt() && t.Bits > 64) {
		return classXMM
	}
	return classGP
}

// loc is a value's assigned home.
type loc struct {
	inReg bool
	reg   x86.Reg
	// off is the rbp-relative offset of the spill slot when !inReg.
	off int32
}

// Register pools. R10/R11 and XMM14/XMM15 are reserved as scratch; RSP/RBP
// frame registers.
var gpPool = []x86.Reg{
	x86.RAX, x86.RCX, x86.RDX, x86.RSI, x86.RDI, x86.R8, x86.R9,
	x86.RBX, x86.R12, x86.R13, x86.R14, x86.R15,
}
var gpCalleeSaved = map[x86.Reg]bool{
	x86.RBX: true, x86.R12: true, x86.R13: true, x86.R14: true, x86.R15: true,
}
var xmmPool = []x86.Reg{
	x86.XMM0, x86.XMM1, x86.XMM2, x86.XMM3, x86.XMM4, x86.XMM5, x86.XMM6,
	x86.XMM7, x86.XMM8, x86.XMM9, x86.XMM10, x86.XMM11, x86.XMM12, x86.XMM13,
}

const (
	scratchGP   = x86.R10
	scratchGP2  = x86.R11
	scratchXMM  = x86.XMM14
	scratchXMM2 = x86.XMM15
)

// interval is a live range in instruction numbering space.
type interval struct {
	v          ir.Value
	class      regClass
	start, end int
	spansCall  bool
	// prefFrom is an interval whose register this one would like to reuse
	// (its last use coincides with this definition).
	prefFrom *interval
	// prefReg is a fixed register preference (parameter arrival register);
	// hasPref distinguishes it from the zero value.
	prefReg x86.Reg
	hasPref bool
	// assigned register (NoReg when spilled), for coalescing lookups.
	assigned x86.Reg
}

// allocation is the result of register allocation.
type allocation struct {
	locs      map[ir.Value]loc
	frameSize int32
	usedSaved []x86.Reg // callee-saved registers to preserve
	// fused instructions produce no home and are re-materialized at their
	// single consumer.
	fused map[*ir.Inst]bool
	// dead instructions are skipped entirely during emission (baseline mode
	// only; nil under the linear-scan allocator, whose input is already
	// DCE-cleaned by the optimizer).
	dead map[*ir.Inst]bool
}

// analyzeFusion finds instructions folded into their consumer: icmps feeding
// a same-block terminator or select, and the address chains feeding a
// same-block load/store — pointer bitcasts, a single GEP, and a constant
// index adjustment (add idx, c), which all become one addressing mode.
func analyzeFusion(f *ir.Func) map[*ir.Inst]bool {
	uses := make(map[*ir.Inst]int)
	consumer := make(map[*ir.Inst]*ir.Inst)
	for _, b := range f.Blocks {
		for _, in := range b.Insts {
			for _, a := range in.Args {
				if ai, ok := a.(*ir.Inst); ok {
					uses[ai]++
					consumer[ai] = in
				}
			}
		}
	}
	fused := make(map[*ir.Inst]bool)
	// fuseAddr marks the single-use address chain of a load/store rooted at
	// ptr; every fused node must live in block b.
	var fuseAddr func(ptr ir.Value, b *ir.Block)
	fuseAddr = func(ptr ir.Value, b *ir.Block) {
		in, ok := ptr.(*ir.Inst)
		if !ok || uses[in] != 1 || in.Parent != b {
			return
		}
		switch in.Op {
		case ir.OpBitcast:
			if in.Args[0].Type().IsPtr() {
				fused[in] = true
				fuseAddr(in.Args[0], b)
			}
		case ir.OpGEP:
			sz := in.ElemTy.Size()
			if sz != 1 && sz != 2 && sz != 4 && sz != 8 {
				return
			}
			fused[in] = true
			// A constant index adjustment folds into the displacement.
			if ai, ok := in.Args[1].(*ir.Inst); ok && ai.Op == ir.OpAdd &&
				uses[ai] == 1 && ai.Parent == b {
				if _, isC := ai.Args[1].(*ir.ConstInt); isC {
					fused[ai] = true
				}
			}
			// The base may be a dedicated bitcast.
			if bc, ok := in.Args[0].(*ir.Inst); ok && bc.Op == ir.OpBitcast &&
				uses[bc] == 1 && bc.Parent == b && bc.Args[0].Type().IsPtr() {
				fused[bc] = true
			}
		}
	}
	for _, b := range f.Blocks {
		for _, in := range b.Insts {
			switch in.Op {
			case ir.OpLoad:
				fuseAddr(in.Args[0], b)
			case ir.OpStore:
				fuseAddr(in.Args[1], b)
			}
			if uses[in] != 1 {
				continue
			}
			cons := consumer[in]
			if cons == nil || cons.Parent != b {
				continue
			}
			if in.Op == ir.OpICmp {
				if cons.Op == ir.OpCondBr || cons.Op == ir.OpSelect && cons.Args[0] == ir.Value(in) {
					fused[in] = true
				}
			}
		}
	}
	// Cast transparency: a single-use pointer cast (inttoptr, ptrtoint,
	// pointer bitcast) feeding a GEP is a pure register alias and folds
	// into the GEP's addressing (lea is three-operand, so no copy is
	// needed).
	for _, b := range f.Blocks {
		for _, in := range b.Insts {
			if in.Op != ir.OpGEP {
				continue
			}
			for _, a := range in.Args {
				ai, ok := a.(*ir.Inst)
				if !ok || uses[ai] != 1 || ai.Parent != b || fused[ai] {
					continue
				}
				switch ai.Op {
				case ir.OpIntToPtr, ir.OpPtrToInt:
					fused[ai] = true
				case ir.OpBitcast:
					if ai.Args[0].Type().IsPtr() && ai.Ty.IsPtr() {
						fused[ai] = true
					}
				}
			}
		}
	}

	// Memory-operand folding: a single-use scalar load feeding a binary
	// operation in the same block becomes the operation's memory operand
	// (addsd xmm, [mem] style). Commutative operations swap a left-hand
	// load into position.
	loadFusable := func(v ir.Value, cons *ir.Inst, b *ir.Block, scalarFP bool) *ir.Inst {
		ld, ok := v.(*ir.Inst)
		if !ok || ld.Op != ir.OpLoad || uses[ld] != 1 || ld.Parent != b || fused[ld] {
			return nil
		}
		if scalarFP {
			if !ld.Ty.IsFP() {
				return nil
			}
		} else if !ld.Ty.IsInt() || ld.Ty.Bits > 64 {
			return nil
		}
		// Fusing moves the load's execution to the consumer: no store or
		// call may intervene, or an aliasing write would be observed.
		between := false
		for _, in := range b.Insts {
			if in == ld {
				between = true
				continue
			}
			if in == cons {
				break
			}
			if between && (in.Op == ir.OpStore || in.Op == ir.OpCall) {
				return nil
			}
		}
		return ld
	}
	for _, b := range f.Blocks {
		for _, in := range b.Insts {
			var commutative, isFP bool
			switch in.Op {
			case ir.OpFAdd, ir.OpFMul:
				commutative, isFP = true, true
			case ir.OpFSub, ir.OpFDiv:
				isFP = true
			case ir.OpAdd, ir.OpMul, ir.OpAnd, ir.OpOr, ir.OpXor:
				commutative = true
			case ir.OpSub, ir.OpICmp:
			case ir.OpSExt, ir.OpZExt:
				// movsx/movzx with a memory operand.
				if ld := loadFusable(in.Args[0], in, b, false); ld != nil && ld.Ty.Bits <= 32 {
					fused[ld] = true
					fuseAddr(ld.Args[0], b)
				}
				continue
			default:
				continue
			}
			if in.Ty.IsVec() || (in.Op != ir.OpICmp && isFP && in.Ty.IsVec()) {
				continue
			}
			if isFP && in.Ty.IsVec() {
				continue
			}
			if ld := loadFusable(in.Args[1], in, b, isFP); ld != nil {
				fused[ld] = true
				fuseAddr(ld.Args[0], b)
				continue
			}
			if commutative {
				if ld := loadFusable(in.Args[0], in, b, isFP); ld != nil {
					in.Args[0], in.Args[1] = in.Args[1], in.Args[0]
					fused[ld] = true
					fuseAddr(ld.Args[0], b)
				}
			}
		}
	}
	return fused
}

// numbering assigns positions to instructions; block boundaries get their
// own positions for liveness endpoints.
type numbering struct {
	pos        map[*ir.Inst]int
	blockStart map[*ir.Block]int
	blockEnd   map[*ir.Block]int
	callPos    []int
	max        int
}

func number(f *ir.Func) *numbering {
	n := &numbering{
		pos:        make(map[*ir.Inst]int),
		blockStart: make(map[*ir.Block]int),
		blockEnd:   make(map[*ir.Block]int),
	}
	p := 1
	for _, b := range f.Blocks {
		n.blockStart[b] = p
		p++
		for _, in := range b.Insts {
			n.pos[in] = p
			if in.Op == ir.OpCall {
				n.callPos = append(n.callPos, p)
			}
			p += 2 // leave room for edge copies
		}
		n.blockEnd[b] = p
		p++
	}
	n.max = p
	return n
}

// liveness computes per-block live-out sets of instruction values and params.
func liveness(f *ir.Func) map[*ir.Block]map[ir.Value]bool {
	gen := make(map[*ir.Block]map[ir.Value]bool)
	kill := make(map[*ir.Block]map[ir.Value]bool)
	trackable := func(v ir.Value) bool {
		switch v.(type) {
		case *ir.Inst, *ir.Param:
			return true
		}
		return false
	}
	for _, b := range f.Blocks {
		g := make(map[ir.Value]bool)
		k := make(map[ir.Value]bool)
		for _, in := range b.Insts {
			if in.Op == ir.OpPhi {
				// Phi args are uses at the end of predecessors.
				k[in] = true
				continue
			}
			for _, a := range in.Args {
				if trackable(a) && !k[a] {
					g[a] = true
				}
			}
			if in.Ty != ir.Void {
				k[in] = true
			}
		}
		gen[b], kill[b] = g, k
	}
	liveIn := make(map[*ir.Block]map[ir.Value]bool)
	liveOut := make(map[*ir.Block]map[ir.Value]bool)
	for _, b := range f.Blocks {
		liveIn[b] = make(map[ir.Value]bool)
		liveOut[b] = make(map[ir.Value]bool)
	}
	for changed := true; changed; {
		changed = false
		for i := len(f.Blocks) - 1; i >= 0; i-- {
			b := f.Blocks[i]
			out := liveOut[b]
			for _, s := range b.Succs() {
				for v := range liveIn[s] {
					if !out[v] {
						out[v] = true
						changed = true
					}
				}
				// Phi args in s flowing from b are live-out of b.
				for _, in := range s.Insts {
					if in.Op != ir.OpPhi {
						break
					}
					for k2, inc := range in.Incoming {
						if inc == b && trackable(in.Args[k2]) && !out[in.Args[k2]] {
							out[in.Args[k2]] = true
							changed = true
						}
					}
				}
			}
			in := liveIn[b]
			for v := range gen[b] {
				if !in[v] {
					in[v] = true
					changed = true
				}
			}
			for v := range out {
				if !kill[b][v] && !in[v] {
					in[v] = true
					changed = true
				}
			}
		}
	}
	return liveOut
}

// allocate runs liveness + linear scan and returns value homes.
func allocate(f *ir.Func, fused map[*ir.Inst]bool) *allocation {
	num := number(f)
	liveOut := liveness(f)

	ivals := make(map[ir.Value]*interval)
	touch := func(v ir.Value, pos int, def bool, class regClass) {
		iv, ok := ivals[v]
		if !ok {
			iv = &interval{v: v, class: class, start: pos, end: pos}
			ivals[v] = iv
		}
		if pos < iv.start && def {
			iv.start = pos
		}
		if pos < iv.start && !def {
			iv.start = pos // use before recorded def (params)
		}
		if pos > iv.end {
			iv.end = pos
		}
	}

	// Parameters are defined at position 0, arriving in ABI registers.
	// Unused parameters get no interval (and no register).
	paramUsed := make(map[*ir.Param]bool)
	for _, b := range f.Blocks {
		for _, in := range b.Insts {
			for _, a := range in.Args {
				if p, ok := a.(*ir.Param); ok {
					paramUsed[p] = true
				}
			}
		}
	}
	nInt, nFP := 0, 0
	for _, p := range f.Params {
		cl := classOf(p.Ty)
		var arrival x86.Reg = x86.NoReg
		if cl == classXMM {
			arrival = x86.XMM0 + x86.Reg(nFP)
			nFP++
		} else if nInt < len(intArgRegs) {
			arrival = intArgRegs[nInt]
			nInt++
		}
		if !paramUsed[p] {
			continue
		}
		touch(p, 0, true, cl)
		if arrival != x86.NoReg {
			ivals[ir.Value(p)].prefReg = arrival
			ivals[ir.Value(p)].hasPref = true
		}
	}
	for _, b := range f.Blocks {
		for _, in := range b.Insts {
			pos := num.pos[in]
			// Fused instructions defer their operand uses to the (possibly
			// transitively fused) consumer that finally materializes them.
			usePos := pos
			if fused[in] {
				usePos = finalConsumerPos(num, f, in, fused)
			}
			if in.Op == ir.OpPhi {
				// Defined at block start; args used at pred block ends.
				touch(in, num.blockStart[in.Parent], true, classOf(in.Ty))
				for k, a := range in.Args {
					if trackableValue(a) {
						touch(a, num.blockEnd[in.Incoming[k]], false, classOf(a.Type()))
					}
				}
				continue
			}
			for _, a := range in.Args {
				// Fused operands are re-materialized at their consumer and
				// never own a register.
				if ai, ok := a.(*ir.Inst); ok && fused[ai] {
					continue
				}
				if trackableValue(a) {
					touch(a, usePos, false, classOf(a.Type()))
				}
			}
			if in.Ty != ir.Void && !fused[in] {
				touch(in, pos, true, classOf(in.Ty))
			}
		}
	}

	// Extend intervals across back edges: anything live out of a block must
	// survive to that block's end position.
	for _, b := range f.Blocks {
		for v := range liveOut[b] {
			if iv, ok := ivals[v]; ok && num.blockEnd[b] > iv.end {
				iv.end = num.blockEnd[b]
			}
		}
	}

	// Values live across calls.
	for _, iv := range ivals {
		for _, cp := range num.callPos {
			if iv.start < cp && iv.end > cp {
				iv.spansCall = true
				break
			}
		}
	}

	// Coalescing preference: a value whose first operand dies exactly where
	// this value is defined would like to reuse that operand's register
	// (two-address style), eliminating a move.
	for v, iv := range ivals {
		in, ok := v.(*ir.Inst)
		if !ok || len(in.Args) == 0 {
			continue
		}
		if src := ivals[in.Args[0]]; src != nil && src.class == iv.class && src.end == iv.start {
			iv.prefFrom = src
		}
	}

	list := make([]*interval, 0, len(ivals))
	for _, iv := range ivals {
		list = append(list, iv)
	}
	sort.Slice(list, func(i, j int) bool {
		if list[i].start != list[j].start {
			return list[i].start < list[j].start
		}
		return nameOf(list[i].v) < nameOf(list[j].v)
	})

	a := &allocation{locs: make(map[ir.Value]loc), fused: fused}
	var frame int32
	slotOf := func(cl regClass) int32 {
		if cl == classXMM {
			frame += 16
			if frame%16 != 0 {
				frame += 16 - frame%16
			}
		} else {
			frame += 8
		}
		return -frame
	}

	type activeEnt struct {
		iv  *interval
		reg x86.Reg
	}
	var active []activeEnt
	inUse := make(map[x86.Reg]bool)
	usedSavedSet := make(map[x86.Reg]bool)

	expire := func(pos int) {
		out := active[:0]
		for _, ae := range active {
			if ae.iv.end >= pos {
				out = append(out, ae)
			} else {
				delete(inUse, ae.reg)
			}
		}
		active = out
	}

	for _, iv := range list {
		expire(iv.start)
		pool := gpPool
		if iv.class == classXMM {
			pool = xmmPool
		}
		// XMM registers are all caller-saved: values live across calls go
		// to the stack. GP values prefer callee-saved registers.
		if iv.spansCall && iv.class == classXMM {
			a.locs[iv.v] = loc{off: slotOf(iv.class)}
			continue
		}
		var chosen x86.Reg = x86.NoReg
		// Fixed preference (parameter arrival register).
		if iv.hasPref && !inUse[iv.prefReg] &&
			(!iv.spansCall || gpCalleeSaved[iv.prefReg]) {
			inPool := false
			for _, r := range pool {
				if r == iv.prefReg {
					inPool = true
					break
				}
			}
			if inPool {
				chosen = iv.prefReg
			}
		}
		// Two-address coalescing: reuse the register of the first operand
		// when its live range ends exactly at this definition. The holder
		// is removed from the active list so its later expiry does not free
		// a register that is still in use.
		if chosen == x86.NoReg {
			if p := iv.prefFrom; p != nil && p.assigned != x86.NoReg &&
				(!iv.spansCall || gpCalleeSaved[p.assigned]) {
				if !inUse[p.assigned] {
					chosen = p.assigned
				} else if p.end == iv.start {
					for i, ae := range active {
						if ae.iv == p {
							active = append(active[:i], active[i+1:]...)
							chosen = p.assigned
							break
						}
					}
				}
			}
		}
		if chosen == x86.NoReg && iv.spansCall {
			for _, r := range pool {
				if gpCalleeSaved[r] && !inUse[r] {
					chosen = r
					break
				}
			}
		} else if chosen == x86.NoReg {
			for _, r := range pool {
				if !inUse[r] && !(gpCalleeSaved[r] && iv.end-iv.start < 8) {
					chosen = r
					break
				}
			}
			if chosen == x86.NoReg {
				for _, r := range pool {
					if !inUse[r] {
						chosen = r
						break
					}
				}
			}
		}
		iv.assigned = x86.NoReg
		if chosen == x86.NoReg {
			// Spill the active interval with the furthest end if it ends
			// later than this one.
			worstIdx := -1
			for i, ae := range active {
				if ae.iv.class != iv.class || (iv.spansCall && !gpCalleeSaved[ae.reg]) {
					continue
				}
				if worstIdx < 0 || ae.iv.end > active[worstIdx].iv.end {
					worstIdx = i
				}
			}
			if worstIdx >= 0 && active[worstIdx].iv.end > iv.end {
				victim := active[worstIdx]
				a.locs[victim.iv.v] = loc{off: slotOf(victim.iv.class)}
				chosen = victim.reg
				active = append(active[:worstIdx], active[worstIdx+1:]...)
			} else {
				a.locs[iv.v] = loc{off: slotOf(iv.class)}
				continue
			}
		}
		inUse[chosen] = true
		if gpCalleeSaved[chosen] {
			usedSavedSet[chosen] = true
		}
		iv.assigned = chosen
		a.locs[iv.v] = loc{inReg: true, reg: chosen}
		active = append(active, activeEnt{iv, chosen})
	}

	if frame%16 != 0 {
		frame += 16 - frame%16
	}
	a.frameSize = frame
	for _, r := range gpPool {
		if usedSavedSet[r] {
			a.usedSaved = append(a.usedSaved, r)
		}
	}
	return a
}

func trackableValue(v ir.Value) bool {
	switch v.(type) {
	case *ir.Inst, *ir.Param:
		return true
	}
	return false
}

// finalConsumerPos returns the position of the instruction that actually
// materializes in's value: fusion chains (bitcast -> gep -> load -> binop)
// are followed until a non-fused consumer is reached.
func finalConsumerPos(num *numbering, f *ir.Func, in *ir.Inst, fused map[*ir.Inst]bool) int {
	cur := in
	for depth := 0; depth < 8; depth++ {
		cons := directConsumer(cur)
		if cons == nil {
			return num.pos[cur]
		}
		if !fused[cons] {
			return num.pos[cons]
		}
		cur = cons
	}
	return num.pos[cur]
}

// directConsumer finds the first instruction after in (same block) that uses
// its value.
func directConsumer(in *ir.Inst) *ir.Inst {
	b := in.Parent
	found := false
	for _, other := range b.Insts {
		if other == in {
			found = true
			continue
		}
		if !found {
			continue
		}
		for _, a := range other.Args {
			if a == ir.Value(in) {
				return other
			}
		}
	}
	return nil
}

func nameOf(v ir.Value) string {
	return v.Ident()
}
