package jit

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/crosstest"
	"repro/internal/emu"
	"repro/internal/x86"
	"repro/internal/x86/asm"
)

// Tests for the native trace backend, trace-to-trace linking, and
// polymorphic trace selection. The bytecode VM (NoNativeTraces) is the A/B
// reference throughout: the native code must be bit-identical to it, and it
// in turn is differentially pinned against the interpreter.

// vmOpts pins traces to the bytecode VM for A/B runs.
var vmOpts = emu.TraceOptions{HotThreshold: 1, O3Threshold: 4, NoNativeTraces: true}

func runSnippetVM(t *testing.T, code []byte, budget uint64, setup func(m *emu.Machine, mem *emu.Memory)) traceState {
	t.Helper()
	mem := emu.NewMemory(0x1000000)
	if _, err := mem.MapBytes(0x5000, code, "code"); err != nil {
		t.Fatal(err)
	}
	m := emu.NewMachine(mem)
	m.Traces = true
	m.TraceOpts = vmOpts
	if setup != nil {
		setup(m, mem)
	}
	_, err := m.Call(0x5000, emu.CallArgs{}, budget)
	return snapshot(m, err)
}

// TestTraceNativeEngages proves the loop kernel actually runs as host code:
// the native-compile counter moves, the final guard exit is counted as a
// native deopt, and the state matches the interpreter bit for bit.
func TestTraceNativeEngages(t *testing.T) {
	if !nativeTraceOK {
		t.Skip("no native trace backend on this platform")
	}
	before := emu.ReadTraceStats()
	code := assembleAt(t, 0x5000, traceLoop(10_000))
	ref := runSnippet(t, code, modeInterp, 0, nil)
	got := runSnippet(t, code, modeTraces, 0, nil)
	diffStates(t, "native loop", ref, got, modeInterp, modeTraces)
	after := emu.ReadTraceStats()
	if after.NativeCompiled == before.NativeCompiled {
		t.Fatalf("loop kernel did not compile natively: %+v", after)
	}
	if after.NativeDeopts == before.NativeDeopts {
		t.Fatalf("final guard exit was not counted as a native deopt: %+v", after)
	}
}

// TestTraceNativeVsVMDifferential runs the generated corpus with traces
// pinned to the bytecode VM and with the native backend, and demands
// bit-identical state — the direct A/B for the native tier.
func TestTraceNativeVsVMDifferential(t *testing.T) {
	if !nativeTraceOK {
		t.Skip("no native trace backend on this platform")
	}
	for seed := int64(0); seed < 120; seed++ {
		p, err := crosstest.Generate(seed)
		if err != nil {
			t.Fatalf("seed %d: generate: %v", seed, err)
		}
		run := func(noNative bool) traceState {
			mem, entry, scratch, err := p.Place()
			if err != nil {
				t.Fatal(err)
			}
			m := emu.NewMachine(mem)
			m.Traces = true
			m.TraceOpts = hotOpts
			m.TraceOpts.NoNativeTraces = noNative
			_, cerr := m.Call(entry, emu.CallArgs{Ints: []uint64{3, 5, scratch}}, 2_000_000)
			st := snapshot(m, cerr)
			if buf, rerr := mem.Read(scratch, crosstest.ScratchSize); rerr == nil {
				st.scratch = string(buf)
			}
			return st
		}
		diffStates(t, p.Desc, run(true), run(false), modeTraces, modeTraces)
	}
}

// TestTraceNativeDeoptBattery drives every native deopt shape — SMC store,
// memory fault, line-split penalty, budget cutoff mid-trace — through the
// interpreter, the bytecode VM, and the native backend, demanding identical
// state including Cycles and error text.
func TestTraceNativeDeoptBattery(t *testing.T) {
	if !nativeTraceOK {
		t.Skip("no native trace backend on this platform")
	}
	t.Run("SMCStore", func(t *testing.T) {
		code := assembleAt(t, 0x5000, func(b *asm.Builder) {
			b.I(x86.MOV, x86.R64(x86.RAX), x86.Imm(0, 8))
			b.I(x86.MOV, x86.R64(x86.RCX), x86.Imm(6, 8))
			loop := b.NewLabel()
			b.Bind(loop)
			b.I(x86.MOV, x86.MemBD(8, x86.RDX, 0), x86.R64(x86.RBX))
			b.I(x86.ADD, x86.R64(x86.RAX), x86.Imm(1, 8))
			b.I(x86.SUB, x86.R64(x86.RCX), x86.Imm(1, 8))
			b.Jcc(x86.CondNE, loop)
			b.Ret()
		})
		code = append(code, make([]byte, 16)...)
		patch := 0x5000 + uint64(len(code)) - 8
		setup := func(m *emu.Machine, mem *emu.Memory) {
			m.GPR[x86.RDX] = patch
			m.GPR[x86.RBX] = 0
		}
		ref := runSnippet(t, code, modeInterp, 0, setup)
		vm := runSnippetVM(t, code, 0, setup)
		nat := runSnippet(t, code, modeTraces, 0, setup)
		diffStates(t, "smc store", ref, vm, modeInterp, modeTraces)
		diffStates(t, "smc store", ref, nat, modeInterp, modeTraces)
	})
	t.Run("MemFault", func(t *testing.T) {
		code := assembleAt(t, 0x5000, func(b *asm.Builder) {
			b.I(x86.MOV, x86.R64(x86.RAX), x86.Imm(0, 8))
			b.I(x86.MOV, x86.R64(x86.RCX), x86.Imm(1000, 8))
			loop := b.NewLabel()
			b.Bind(loop)
			b.I(x86.MOV, x86.R64(x86.RBX), x86.MemBD(8, x86.RDX, 0))
			b.I(x86.ADD, x86.R64(x86.RAX), x86.R64(x86.RBX))
			b.I(x86.ADD, x86.R64(x86.RDX), x86.Imm(8, 8))
			b.I(x86.SUB, x86.R64(x86.RCX), x86.Imm(1, 8))
			b.Jcc(x86.CondNE, loop)
			b.Ret()
		})
		setup := func(m *emu.Machine, mem *emu.Memory) {
			r := mem.Alloc(64*8, 64, "data")
			m.GPR[x86.RDX] = r.Start
		}
		ref := runSnippet(t, code, modeInterp, 0, setup)
		if ref.errMsg == "" {
			t.Fatal("expected a fault from the reference run")
		}
		vm := runSnippetVM(t, code, 0, setup)
		nat := runSnippet(t, code, modeTraces, 0, setup)
		diffStates(t, "mem fault", ref, vm, modeInterp, modeTraces)
		diffStates(t, "mem fault", ref, nat, modeInterp, modeTraces)
	})
	t.Run("LineSplitPenalty", func(t *testing.T) {
		code := assembleAt(t, 0x5000, func(b *asm.Builder) {
			b.I(x86.MOV, x86.R64(x86.RAX), x86.Imm(0, 8))
			b.I(x86.MOV, x86.R64(x86.RCX), x86.Imm(100, 8))
			loop := b.NewLabel()
			b.Bind(loop)
			b.I(x86.MOV, x86.R64(x86.RBX), x86.MemBD(8, x86.RDX, 0))
			b.I(x86.ADD, x86.R64(x86.RAX), x86.R64(x86.RBX))
			b.I(x86.SUB, x86.R64(x86.RCX), x86.Imm(1, 8))
			b.Jcc(x86.CondNE, loop)
			b.Ret()
		})
		setup := func(m *emu.Machine, mem *emu.Memory) {
			r := mem.Alloc(128, 64, "data")
			if err := mem.WriteU(r.Start+60, 8, 0x42); err != nil {
				t.Fatal(err)
			}
			m.GPR[x86.RDX] = r.Start + 60
		}
		ref := runSnippet(t, code, modeInterp, 0, setup)
		vm := runSnippetVM(t, code, 0, setup)
		nat := runSnippet(t, code, modeTraces, 0, setup)
		diffStates(t, "penalty", ref, vm, modeInterp, modeTraces)
		diffStates(t, "penalty", ref, nat, modeInterp, modeTraces)
	})
	t.Run("BudgetCutoff", func(t *testing.T) {
		code := assembleAt(t, 0x5000, traceLoop(50))
		full := runSnippet(t, code, modeInterp, 0, nil)
		for budget := uint64(1); budget <= full.instCount+1; budget++ {
			ref := runSnippet(t, code, modeInterp, budget, nil)
			vm := runSnippetVM(t, code, budget, nil)
			nat := runSnippet(t, code, modeTraces, budget, nil)
			diffStates(t, "budget", ref, vm, modeInterp, modeTraces)
			diffStates(t, "budget", ref, nat, modeInterp, modeTraces)
		}
		if !strings.Contains(runSnippet(t, code, modeTraces, 7, nil).errMsg, "instruction budget") {
			t.Fatal("budget error not surfaced through the native trace engine")
		}
	})
}

// TestTraceNativeConcurrentInvalidate runs a native-traced machine and a
// VM-traced machine against a shared Memory while a goroutine hammers
// InvalidateRange. Under -race this proves the native tier (including its
// raw reads of the generation and watch words) adds no unsynchronized Go
// state, and both machines must still compute the reference result.
func TestTraceNativeConcurrentInvalidate(t *testing.T) {
	if !nativeTraceOK {
		t.Skip("no native trace backend on this platform")
	}
	code := assembleAt(t, 0x5000, traceLoop(200_000))
	mem := emu.NewMemory(0x1000000)
	if _, err := mem.MapBytes(0x5000, code, "code"); err != nil {
		t.Fatal(err)
	}
	ref := runSnippet(t, code, modeInterp, 0, nil)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				mem.InvalidateRange(0x9000, 0x9001)
			}
		}
	}()
	var machines sync.WaitGroup
	for i := 0; i < 2; i++ {
		machines.Add(1)
		noNative := i == 1
		go func() {
			defer machines.Done()
			stack := mem.Alloc(1<<16, 4096, "stk")
			m := emu.NewMachine(mem)
			m.Traces = true
			m.TraceOpts = hotOpts
			m.TraceOpts.NoNativeTraces = noNative
			m.GPR[x86.RSP] = stack.End() - 64
			got, err := m.Call(0x5000, emu.CallArgs{}, 0)
			if err != nil {
				t.Errorf("call: %v", err)
			}
			if got != ref.gpr[x86.RAX] {
				t.Errorf("rax = %#x, want %#x", got, ref.gpr[x86.RAX])
			}
		}()
	}
	machines.Wait()
	close(stop)
	wg.Wait()
}

// linkedLoops builds the adjacent do-while pair the linking tier exists
// for: l1's not-taken backedge falls through onto l2's head, so once both
// inner traces are compiled, l1's guard exit hands off to l2 without block
// dispatch. The outer loop re-enters the pair enough times to heat both
// heads; its own recording aborts on the block cap (inner1+inner2 blocks >
// MaxBlocks), so no mega-trace swallows the pair.
func linkedLoops(outer, inner1, inner2 int64) func(b *asm.Builder) {
	return func(b *asm.Builder) {
		b.I(x86.MOV, x86.R64(x86.RAX), x86.Imm(0, 8))
		b.I(x86.MOV, x86.R64(x86.RBX), x86.Imm(outer, 8))
		top := b.NewLabel()
		b.Bind(top)
		b.I(x86.MOV, x86.R64(x86.RCX), x86.Imm(inner1, 8))
		b.I(x86.MOV, x86.R64(x86.RDX), x86.Imm(inner2, 8))
		l1 := b.NewLabel()
		b.Bind(l1)
		b.I(x86.ADD, x86.R64(x86.RAX), x86.R64(x86.RCX))
		b.I(x86.XOR, x86.R64(x86.RAX), x86.Imm(0x3F, 8))
		b.I(x86.SUB, x86.R64(x86.RCX), x86.Imm(1, 8))
		b.Jcc(x86.CondNE, l1) // fallthrough == l2 head
		l2 := b.NewLabel()
		b.Bind(l2)
		b.I(x86.ADD, x86.R64(x86.RAX), x86.R64(x86.RDX))
		b.I(x86.SHR, x86.R64(x86.RAX), x86.Imm(1, 1))
		b.I(x86.SUB, x86.R64(x86.RDX), x86.Imm(1, 8))
		b.Jcc(x86.CondNE, l2)
		b.I(x86.SUB, x86.R64(x86.RBX), x86.Imm(1, 8))
		b.Jcc(x86.CondNE, top)
		b.Ret()
	}
}

// TestTraceLinkAdjacentLoops pins the linking behavior: the adjacent-loop
// kernel must count trace-to-trace links, stay bit-identical to the
// interpreter, and agree between the native backend and the bytecode VM.
func TestTraceLinkAdjacentLoops(t *testing.T) {
	// 40+40 inner blocks per outer iteration overflow MaxBlocks (64), so
	// the outer head's recording aborts and the inner traces link.
	code := assembleAt(t, 0x5000, linkedLoops(50, 40, 40))
	before := emu.ReadTraceStats()
	ref := runSnippet(t, code, modeInterp, 0, nil)
	nat := runSnippet(t, code, modeTraces, 0, nil)
	vm := runSnippetVM(t, code, 0, nil)
	diffStates(t, "linked loops", ref, nat, modeInterp, modeTraces)
	diffStates(t, "linked loops", ref, vm, modeInterp, modeTraces)
	after := emu.ReadTraceStats()
	if after.Links == before.Links {
		t.Fatalf("adjacent loops produced no trace links: %+v", after)
	}
}

// TestTraceLinkBudgetCutoff sweeps the instruction budget across the linked
// kernel, so cutoffs land inside the first trace, inside a linked trace,
// and on link boundaries — all must match the interpreter exactly.
func TestTraceLinkBudgetCutoff(t *testing.T) {
	code := assembleAt(t, 0x5000, linkedLoops(4, 40, 40))
	full := runSnippet(t, code, modeInterp, 0, nil)
	for budget := uint64(1); budget <= full.instCount+1; budget++ {
		ref := runSnippet(t, code, modeInterp, budget, nil)
		nat := runSnippet(t, code, modeTraces, budget, nil)
		diffStates(t, "linked budget", ref, nat, modeInterp, modeTraces)
	}
}

// TestTraceLinkInvalidation bumps the chain epoch (via a machine-level
// InvalidateRange of unrelated bytes) between runs of the linked kernel:
// cached links must be rejected, counted, and re-resolved, and the result
// must stay correct.
func TestTraceLinkInvalidation(t *testing.T) {
	code := assembleAt(t, 0x5000, linkedLoops(50, 40, 40))
	mem := emu.NewMemory(0x1000000)
	if _, err := mem.MapBytes(0x5000, code, "code"); err != nil {
		t.Fatal(err)
	}
	ref := runSnippet(t, code, modeInterp, 0, nil)
	m := emu.NewMachine(mem)
	configure(m, modeTraces)
	if _, err := m.Call(0x5000, emu.CallArgs{}, 0); err != nil {
		t.Fatal(err)
	}
	before := emu.ReadTraceStats()
	// Unrelated range: traces survive, the chain epoch moves.
	m.InvalidateRange(0x900000, 0x900010)
	m.Reset()
	if _, err := m.Call(0x5000, emu.CallArgs{}, 0); err != nil {
		t.Fatal(err)
	}
	if m.GPR[x86.RAX] != ref.gpr[x86.RAX] {
		t.Fatalf("rax = %#x, want %#x", m.GPR[x86.RAX], ref.gpr[x86.RAX])
	}
	after := emu.ReadTraceStats()
	if after.LinkInvalidations == before.LinkInvalidations {
		t.Fatalf("epoch bump did not invalidate any cached link: %+v", after)
	}
	if after.Links == before.Links {
		t.Fatalf("links were not re-resolved after invalidation: %+v", after)
	}
}

// phasedLoop alternates its loop body path in phases of 32 iterations (bit
// 5 of the counter), the shape monomorphic tracing thrashes on.
func phasedLoop(iters int64) func(b *asm.Builder) {
	return func(b *asm.Builder) {
		b.I(x86.MOV, x86.R64(x86.RAX), x86.Imm(0, 8))
		b.I(x86.MOV, x86.R64(x86.RCX), x86.Imm(iters, 8))
		loop := b.NewLabel()
		even := b.NewLabel()
		tail := b.NewLabel()
		b.Bind(loop)
		b.I(x86.MOV, x86.R64(x86.RDX), x86.R64(x86.RCX))
		b.I(x86.AND, x86.R64(x86.RDX), x86.Imm(32, 8))
		b.Jcc(x86.CondE, even)
		b.I(x86.ADD, x86.R64(x86.RAX), x86.Imm(3, 8))
		b.Jmp(tail)
		b.Bind(even)
		b.I(x86.ADD, x86.R64(x86.RAX), x86.Imm(5, 8))
		b.I(x86.XOR, x86.R64(x86.RAX), x86.R64(x86.RDX))
		b.Bind(tail)
		b.I(x86.SUB, x86.R64(x86.RCX), x86.Imm(1, 8))
		b.Jcc(x86.CondNE, loop)
		b.Ret()
	}
}

// TestTracePolymorphicSelection runs the phased loop: the head must hold
// two traces (one per path, the second keyed by the thrash context), both
// must execute, and the state must stay bit-identical to the interpreter.
func TestTracePolymorphicSelection(t *testing.T) {
	code := assembleAt(t, 0x5000, phasedLoop(4096))
	before := emu.ReadTraceStats()
	ref := runSnippet(t, code, modeInterp, 0, nil)
	got := runSnippet(t, code, modeTraces, 0, nil)
	diffStates(t, "phased loop", ref, got, modeInterp, modeTraces)
	after := emu.ReadTraceStats()
	if n := after.Compiled - before.Compiled; n < 2 {
		t.Fatalf("phased loop compiled %d traces, want 2 (one per path): %+v", n, after)
	}
	// Both paths stay hot for whole phases, so iterations must dwarf the
	// side-exit count — the polymorphic head no longer thrashes.
	if it, se := after.Iters-before.Iters, after.SideExits-before.SideExits; it < 8*se {
		t.Fatalf("polymorphic head still thrashing: %d iters vs %d side exits", it, se)
	}
}

// TestTracePolymorphicBounded pins the slot bound: a head alternating over
// three paths gets exactly maxTracesPerHead traces, never more.
func TestTracePolymorphicBounded(t *testing.T) {
	code := assembleAt(t, 0x5000, func(b *asm.Builder) {
		// Three-way phased body on bits 5-6 of the counter.
		b.I(x86.MOV, x86.R64(x86.RAX), x86.Imm(0, 8))
		b.I(x86.MOV, x86.R64(x86.RCX), x86.Imm(4096, 8))
		loop := b.NewLabel()
		p1 := b.NewLabel()
		p2 := b.NewLabel()
		tail := b.NewLabel()
		b.Bind(loop)
		b.I(x86.MOV, x86.R64(x86.RDX), x86.R64(x86.RCX))
		b.I(x86.AND, x86.R64(x86.RDX), x86.Imm(96, 8))
		b.Jcc(x86.CondE, p1)
		b.I(x86.CMP, x86.R64(x86.RDX), x86.Imm(32, 8))
		b.Jcc(x86.CondE, p2)
		b.I(x86.ADD, x86.R64(x86.RAX), x86.Imm(7, 8))
		b.Jmp(tail)
		b.Bind(p1)
		b.I(x86.ADD, x86.R64(x86.RAX), x86.Imm(3, 8))
		b.Jmp(tail)
		b.Bind(p2)
		b.I(x86.XOR, x86.R64(x86.RAX), x86.R64(x86.RCX))
		b.Bind(tail)
		b.I(x86.SUB, x86.R64(x86.RCX), x86.Imm(1, 8))
		b.Jcc(x86.CondNE, loop)
		b.Ret()
	})
	before := emu.ReadTraceStats()
	ref := runSnippet(t, code, modeInterp, 0, nil)
	got := runSnippet(t, code, modeTraces, 0, nil)
	diffStates(t, "three-way phased loop", ref, got, modeInterp, modeTraces)
	after := emu.ReadTraceStats()
	if n := after.Compiled - before.Compiled; n > 2 {
		t.Fatalf("three-way head compiled %d traces, want at most %d", n, 2)
	}
}
