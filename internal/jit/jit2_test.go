package jit

import (
	"testing"

	"repro/internal/emu"
	"repro/internal/ir"
)

// TestLoadNotFusedAcrossStore is the regression test for the differential
// bug where a memory-operand-fused load was reordered past an aliasing
// store.
func TestLoadNotFusedAcrossStore(t *testing.T) {
	f := ir.NewFunc("f", ir.I64, ir.PtrTo(ir.I8), ir.I64)
	b := ir.NewBuilder(f)
	p := b.Bitcast(f.Params[0], ir.PtrTo(ir.I64))
	old := b.Load(ir.I64, p)       // reads the OLD value
	b.Store(f.Params[1], p)        // overwrites it
	sum := b.Add(old, f.Params[1]) // must use the old value
	b.Ret(sum)

	mem := emu.NewMemory(0x1000000)
	buf := mem.Alloc(16, 16, "buf")
	mem.WriteU(buf.Start, 8, 100)
	c := NewCompiler(mem)
	entry, err := c.Compile(f)
	if err != nil {
		t.Fatal(err)
	}
	m := emu.NewMachine(mem)
	got, err := m.Call(entry, emu.CallArgs{Ints: []uint64{buf.Start, 5}}, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if got != 105 {
		t.Errorf("got %d, want 105 (load hoisted past store?)", got)
	}
}

// TestVariableShiftWithRCXDst: shifting a value whose home is RCX.
func TestVariableShiftWithRCXDst(t *testing.T) {
	f := ir.NewFunc("f", ir.I64, ir.I64, ir.I64)
	b := ir.NewBuilder(f)
	s := b.Shl(f.Params[0], f.Params[1])
	// Keep both params live so the allocator spreads registers.
	r := b.Add(s, f.Params[1])
	b.Ret(b.Add(r, f.Params[0]))
	for _, c := range [][3]uint64{{1, 4, 21}, {3, 2, 17}} {
		mem := emu.NewMemory(0x1000000)
		comp := NewCompiler(mem)
		entry, err := comp.Compile(f)
		if err != nil {
			t.Fatal(err)
		}
		m := emu.NewMachine(mem)
		got, err := m.Call(entry, emu.CallArgs{Ints: []uint64{c[0], c[1]}}, 1000)
		if err != nil {
			t.Fatal(err)
		}
		if got != c[2] {
			t.Errorf("shl(%d,%d)+...: got %d, want %d", c[0], c[1], got, c[2])
		}
	}
}

// TestFPSelectDiamond exercises the branch-based FP select.
func TestFPSelectDiamond(t *testing.T) {
	f := ir.NewFunc("fmax", ir.Double, ir.Double, ir.Double)
	b := ir.NewBuilder(f)
	c := b.FCmp(ir.PredOGT, f.Params[0], f.Params[1])
	b.Ret(b.Select(c, f.Params[0], f.Params[1]))
	mem := emu.NewMemory(0x1000000)
	comp := NewCompiler(mem)
	entry, err := comp.Compile(f)
	if err != nil {
		t.Fatal(err)
	}
	for _, cse := range [][3]float64{{1, 2, 2}, {5, 3, 5}, {2, 2, 2}} {
		m := emu.NewMachine(mem)
		if _, err := m.Call(entry, emu.CallArgs{Floats: []float64{cse[0], cse[1]}}, 1000); err != nil {
			t.Fatal(err)
		}
		if got := (ir.RV{Lo: m.XMM[0].Lo}).F64(); got != cse[2] {
			t.Errorf("fmax(%g,%g) = %g", cse[0], cse[1], got)
		}
	}
}

// TestShuffleVariants covers the two-lane shuffle selector space.
func TestShuffleVariants(t *testing.T) {
	v2 := ir.VecOf(ir.Double, 2)
	masks := [][]int{{0, 2}, {1, 3}, {1, 0}, {0, 0}, {1, 1}, {2, 3}, {3, 2}, {2, 0}, {3, 1}}
	for _, mask := range masks {
		f := ir.NewFunc("sh", ir.Double, ir.PtrTo(ir.I8), ir.PtrTo(ir.I8), ir.I64)
		b := ir.NewBuilder(f)
		va := b.Load(v2, b.Bitcast(f.Params[0], ir.PtrTo(v2)))
		vb := b.Load(v2, b.Bitcast(f.Params[1], ir.PtrTo(v2)))
		sh := b.ShuffleVector(va, vb, mask)
		lane0 := b.ExtractElement(sh, 0)
		lane1 := b.ExtractElement(sh, 1)
		b.Ret(b.FAdd(b.FMul(lane0, ir.Flt(100)), lane1))

		mem := emu.NewMemory(0x1000000)
		a := mem.Alloc(16, 16, "a")
		bb := mem.Alloc(16, 16, "b")
		mem.WriteFloat64(a.Start, 1)
		mem.WriteFloat64(a.Start+8, 2)
		mem.WriteFloat64(bb.Start, 3)
		mem.WriteFloat64(bb.Start+8, 4)
		lanes := []float64{1, 2, 3, 4}

		comp := NewCompiler(mem)
		entry, err := comp.Compile(f)
		if err != nil {
			t.Fatalf("mask %v: %v", mask, err)
		}
		m := emu.NewMachine(mem)
		if _, err := m.Call(entry, emu.CallArgs{Ints: []uint64{a.Start, bb.Start}}, 1000); err != nil {
			t.Fatalf("mask %v: %v", mask, err)
		}
		want := lanes[mask[0]]*100 + lanes[mask[1]]
		if got := (ir.RV{Lo: m.XMM[0].Lo}).F64(); got != want {
			t.Errorf("mask %v: got %g, want %g", mask, got, want)
		}
	}
}

// TestExtract4Lanes covers v4f32 extracts through pshufd.
func TestExtract4Lanes(t *testing.T) {
	v4 := ir.VecOf(ir.Float, 4)
	for lane := 0; lane < 4; lane++ {
		f := ir.NewFunc("ex", ir.Double, ir.PtrTo(ir.I8))
		b := ir.NewBuilder(f)
		v := b.Load(v4, b.Bitcast(f.Params[0], ir.PtrTo(v4)))
		e := b.ExtractElement(v, lane)
		b.Ret(b.FPExt(e, ir.Double))
		mem := emu.NewMemory(0x1000000)
		buf := mem.Alloc(16, 16, "buf")
		for i := 0; i < 4; i++ {
			bts, _ := mem.Bytes(buf.Start+uint64(4*i), 4)
			u := uint32(0x3F800000 + i*0x800000) // 1, 2, 4, 8 as float32
			bts[0], bts[1], bts[2], bts[3] = byte(u), byte(u>>8), byte(u>>16), byte(u>>24)
		}
		comp := NewCompiler(mem)
		entry, err := comp.Compile(f)
		if err != nil {
			t.Fatalf("lane %d: %v", lane, err)
		}
		m := emu.NewMachine(mem)
		if _, err := m.Call(entry, emu.CallArgs{Ints: []uint64{buf.Start}}, 1000); err != nil {
			t.Fatal(err)
		}
		want := []float64{1, 2, 4, 8}[lane]
		if got := (ir.RV{Lo: m.XMM[0].Lo}).F64(); got != want {
			t.Errorf("lane %d: got %g, want %g", lane, got, want)
		}
	}
}

// TestCtpopI8 covers the narrow-popcnt path.
func TestCtpopI8(t *testing.T) {
	f := ir.NewFunc("pc", ir.I64, ir.I64)
	b := ir.NewBuilder(f)
	t8 := b.Trunc(f.Params[0], ir.I8)
	p := b.Ctpop(t8)
	b.Ret(b.ZExt(p, ir.I64))
	mem := emu.NewMemory(0x1000000)
	comp := NewCompiler(mem)
	entry, err := comp.Compile(f)
	if err != nil {
		t.Fatal(err)
	}
	m := emu.NewMachine(mem)
	got, err := m.Call(entry, emu.CallArgs{Ints: []uint64{0xFFFF00F1}}, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if got != 5 { // popcount of 0xF1
		t.Errorf("ctpop.i8 = %d, want 5", got)
	}
}

// TestGEPLargeElemSize uses a non-power-of-two element size (imul path).
func TestGEPLargeElemSize(t *testing.T) {
	elem := ir.IntType(24 * 8) // 24-byte records
	f := ir.NewFunc("rec", ir.I64, ir.PtrTo(ir.I8), ir.I64)
	b := ir.NewBuilder(f)
	base := b.Bitcast(f.Params[0], ir.PtrTo(elem))
	g := b.GEP(elem, base, f.Params[1])
	p := b.Bitcast(g, ir.PtrTo(ir.I64))
	b.Ret(b.Load(ir.I64, p))
	mem := emu.NewMemory(0x1000000)
	buf := mem.Alloc(24*4, 16, "buf")
	mem.WriteU(buf.Start+48, 8, 4242) // record 2
	comp := NewCompiler(mem)
	entry, err := comp.Compile(f)
	if err != nil {
		t.Fatal(err)
	}
	m := emu.NewMachine(mem)
	got, err := m.Call(entry, emu.CallArgs{Ints: []uint64{buf.Start, 2}}, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if got != 4242 {
		t.Errorf("24-byte gep = %d", got)
	}
}

// TestSplitCriticalEdgesPreservesSemantics: a diamond with phis whose preds
// branch conditionally (critical edges on both arms).
func TestSplitCriticalEdgesPreservesSemantics(t *testing.T) {
	f := ir.NewFunc("d", ir.I64, ir.I64, ir.I64)
	b := ir.NewBuilder(f)
	mid := f.NewBlock("mid")
	join := f.NewBlock("join")
	// entry: if a < b goto join (critical: entry has 2 succs, join has 2 preds)
	c1 := b.ICmp(ir.PredSLT, f.Params[0], f.Params[1])
	b.CondBr(c1, join, mid)
	entryBlk := f.Blocks[0]
	b.SetBlock(mid)
	v2 := b.Mul(f.Params[0], ir.Int(ir.I64, 3))
	b.Br(join)
	b.SetBlock(join)
	phi := b.Phi(ir.I64)
	ir.AddIncoming(phi, ir.Int(ir.I64, 111), entryBlk)
	ir.AddIncoming(phi, v2, mid)
	b.Ret(phi)

	mem := emu.NewMemory(0x1000000)
	comp := NewCompiler(mem)
	entry, err := comp.Compile(f)
	if err != nil {
		t.Fatal(err)
	}
	m := emu.NewMachine(mem)
	got, _ := m.Call(entry, emu.CallArgs{Ints: []uint64{1, 5}}, 1000)
	if got != 111 {
		t.Errorf("taken arm: %d", got)
	}
	got, _ = m.Call(entry, emu.CallArgs{Ints: []uint64{5, 1}}, 1000)
	if got != 15 {
		t.Errorf("fall arm: %d", got)
	}
}
