package jit

import (
	"fmt"

	"repro/internal/ir"
	"repro/internal/x86"
)

// emitInst lowers one non-terminator, non-phi instruction.
func (e *emitter) emitInst(in *ir.Inst) error {
	switch in.Op {
	case ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpAnd, ir.OpOr, ir.OpXor:
		if classOf(in.Ty) == classXMM {
			return e.emitVecIntBin(in)
		}
		return e.emitBinGP(in)
	case ir.OpShl, ir.OpLShr, ir.OpAShr:
		return e.emitShift(in)
	case ir.OpUDiv, ir.OpSDiv, ir.OpURem, ir.OpSRem:
		return e.emitDiv(in)

	case ir.OpFAdd, ir.OpFSub, ir.OpFMul, ir.OpFDiv:
		return e.emitFBin(in)
	case ir.OpSqrt:
		r, err := e.valueXMM(in.Args[0], scratchXMM)
		if err != nil {
			return err
		}
		d := e.dstXMM(in)
		e.b.I(x86.SQRTSD, x86.X(d), x86.X(r))
		e.writeBackXMM(in, d)
		return nil
	case ir.OpFMulAdd:
		// a*b + c without FMA (AVX disabled): mulsd + addsd via scratch.
		if err := e.moveIntoXMM(scratchXMM, in.Args[0]); err != nil {
			return err
		}
		rb, err := e.valueXMM(in.Args[1], scratchXMM2)
		if err != nil {
			return err
		}
		e.b.I(x86.MULSD, x86.X(scratchXMM), x86.X(rb))
		rc, err := e.valueXMM(in.Args[2], scratchXMM2)
		if err != nil {
			return err
		}
		e.b.I(x86.ADDSD, x86.X(scratchXMM), x86.X(rc))
		e.writeBackXMM(in, scratchXMM)
		return nil
	case ir.OpCtpop:
		src, err := e.valueGP(in.Args[0], scratchGP)
		if err != nil {
			return err
		}
		d := e.dstGP(in)
		if widthOf(in.Ty) < 4 {
			e.b.I(x86.MOVZX, x86.R32(scratchGP2), x86.R8L(src))
			e.b.I(x86.POPCNT, x86.R32(d), x86.R32(scratchGP2))
		} else {
			e.b.I(x86.POPCNT, x86.RegOp(d, widthOf(in.Ty)), x86.RegOp(src, widthOf(in.Ty)))
		}
		e.writeBackGP(in, d)
		return nil

	case ir.OpICmp:
		cond, err := e.emitCmp(in)
		if err != nil {
			return err
		}
		d := e.dstGP(in)
		e.b.Emit(x86.Inst{Op: x86.SETCC, Cond: cond, Dst: x86.R8L(d)})
		e.b.I(x86.MOVZX, x86.R32(d), x86.R8L(d))
		e.writeBackGP(in, d)
		return nil
	case ir.OpFCmp:
		return e.emitFCmp(in)

	case ir.OpSelect:
		return e.emitSelect(in)

	case ir.OpTrunc:
		// Narrowing is a register copy: consumers use the narrow width.
		return e.emitGPCopy(in, in.Args[0])
	case ir.OpZExt:
		src := in.Args[0]
		sw := widthOf(src.Type())
		d := e.dstGP(in)
		// zext of a fused load: movzx/mov32 with a memory operand.
		if ld := e.fusedLoad(src); ld != nil {
			op, err := e.memOperand(ld.Args[0], sw)
			if err != nil {
				return err
			}
			if sw <= 2 {
				e.b.I(x86.MOVZX, x86.R32(d), op)
			} else {
				e.b.I(x86.MOV, x86.R32(d), op)
			}
			e.writeBackGP(in, d)
			return nil
		}
		r, err := e.valueGP(src, scratchGP)
		if err != nil {
			return err
		}
		switch sw {
		case 1, 2:
			e.b.I(x86.MOVZX, x86.R32(d), x86.RegOp(r, sw))
		default: // 4 -> zero upper via 32-bit move
			e.b.I(x86.MOV, x86.R32(d), x86.R32(r))
		}
		// i1 sources are stored as 0/1 bytes already; mask to be safe.
		if src.Type().Equal(ir.I1) {
			e.b.I(x86.AND, x86.R32(d), x86.Imm(1, 4))
		}
		e.writeBackGP(in, d)
		return nil
	case ir.OpSExt:
		src := in.Args[0]
		sw := widthOf(src.Type())
		d := e.dstGP(in)
		dw := widthOf(in.Ty)
		// sext of a fused load: movsx/movsxd with a memory operand.
		if ld := e.fusedLoad(src); ld != nil {
			op, err := e.memOperand(ld.Args[0], sw)
			if err != nil {
				return err
			}
			if sw <= 2 {
				e.b.I(x86.MOVSX, x86.RegOp(d, dw), op)
			} else {
				e.b.I(x86.MOVSXD, x86.R64(d), op)
			}
			e.writeBackGP(in, d)
			return nil
		}
		r, err := e.valueGP(src, scratchGP)
		if err != nil {
			return err
		}
		switch {
		case sw <= 2:
			e.b.I(x86.MOVSX, x86.RegOp(d, dw), x86.RegOp(r, sw))
		case sw == 4 && dw == 8:
			e.b.I(x86.MOVSXD, x86.R64(d), x86.R32(r))
		default:
			e.b.I(x86.MOV, x86.R64(d), x86.R64(r))
		}
		e.writeBackGP(in, d)
		return nil

	case ir.OpPtrToInt, ir.OpIntToPtr:
		return e.emitGPCopy(in, in.Args[0])
	case ir.OpBitcast:
		return e.emitBitcast(in)
	case ir.OpSIToFP:
		r, err := e.valueGP(in.Args[0], scratchGP)
		if err != nil {
			return err
		}
		d := e.dstXMM(in)
		sw := widthOf(in.Args[0].Type())
		if sw < 4 {
			e.b.I(x86.MOVSX, x86.R32(scratchGP2), x86.RegOp(r, sw))
			r, sw = scratchGP2, 4
		}
		cvt := x86.CVTSI2SD
		if in.Ty.Kind == ir.KFloat {
			cvt = x86.CVTSI2SS
		}
		e.b.I(cvt, x86.X(d), x86.RegOp(r, sw))
		e.writeBackXMM(in, d)
		return nil
	case ir.OpFPToSI:
		r, err := e.valueXMM(in.Args[0], scratchXMM)
		if err != nil {
			return err
		}
		d := e.dstGP(in)
		w := widthOf(in.Ty)
		if w < 4 {
			w = 4
		}
		e.b.I(x86.CVTTSD2SI, x86.RegOp(d, w), x86.X(r))
		e.writeBackGP(in, d)
		return nil
	case ir.OpFPExt:
		r, err := e.valueXMM(in.Args[0], scratchXMM)
		if err != nil {
			return err
		}
		d := e.dstXMM(in)
		e.b.I(x86.CVTSS2SD, x86.X(d), x86.X(r))
		e.writeBackXMM(in, d)
		return nil
	case ir.OpFPTrunc:
		r, err := e.valueXMM(in.Args[0], scratchXMM)
		if err != nil {
			return err
		}
		d := e.dstXMM(in)
		e.b.I(x86.CVTSD2SS, x86.X(d), x86.X(r))
		e.writeBackXMM(in, d)
		return nil

	case ir.OpGEP:
		return e.emitGEP(in)
	case ir.OpLoad:
		return e.emitLoad(in)
	case ir.OpStore:
		return e.emitStore(in)
	case ir.OpAlloca:
		// Frame space was reserved; materialize the address into the home.
		if l, ok := e.homeOf(in); ok {
			if l.inReg {
				e.b.I(x86.LEA, x86.R64(l.reg), stackOp(8, e.allocaOff[in]))
			} else {
				e.b.I(x86.LEA, x86.R64(scratchGP), stackOp(8, e.allocaOff[in]))
				e.b.I(x86.MOV, stackOp(8, l.off), x86.R64(scratchGP))
			}
		}
		return nil

	case ir.OpExtractElement:
		return e.emitExtractElement(in)
	case ir.OpInsertElement:
		return e.emitInsertElement(in)
	case ir.OpShuffleVector:
		return e.emitShuffle(in)

	case ir.OpCall:
		return e.emitCall(in)
	}
	return fmt.Errorf("unsupported op %s", in.Op)
}

var gpALUOp = map[ir.Op]x86.Op{
	ir.OpAdd: x86.ADD, ir.OpSub: x86.SUB, ir.OpAnd: x86.AND,
	ir.OpOr: x86.OR, ir.OpXor: x86.XOR,
}

func (e *emitter) emitBinGP(in *ir.Inst) error {
	size := widthOf(in.Ty)
	d := e.dstGP(in)
	a, bb := in.Args[0], in.Args[1]

	if in.Op == ir.OpMul {
		if size < 4 {
			size = 4 // imul has no 8-bit form; upper bits are unobserved
		}
		if ld := e.fusedLoad(bb); ld != nil {
			bOp, err := e.fusedLoadOperand(ld, size, scratchGP2, scratchXMM2)
			if err != nil {
				return err
			}
			if err := e.moveIntoGP(d, a); err != nil {
				return err
			}
			e.b.I(x86.IMUL, x86.RegOp(d, size), bOp)
			e.writeBackGP(in, d)
			return nil
		}
		if err := e.stageAccum(d, a, bb, true); err != nil {
			return err
		}
		bOp, err := e.gpSrcOperand(bb, size, scratchGP2)
		if err != nil {
			return err
		}
		if bOp.Kind == x86.KImm {
			e.b.I(x86.IMUL3, x86.RegOp(d, size), x86.RegOp(d, size), bOp)
		} else {
			if bOp.Kind == x86.KReg && bOp.Reg == d {
				// d holds b already (staged by commutativity).
				aOp, err := e.gpSrcOperand(a, size, scratchGP2)
				if err != nil {
					return err
				}
				if aOp.Kind == x86.KImm {
					e.b.I(x86.IMUL3, x86.RegOp(d, size), x86.RegOp(d, size), aOp)
				} else {
					e.b.I(x86.IMUL, x86.RegOp(d, size), aOp)
				}
			} else {
				e.b.I(x86.IMUL, x86.RegOp(d, size), bOp)
			}
		}
		e.writeBackGP(in, d)
		return nil
	}

	op := gpALUOp[in.Op]
	commutative := in.Op != ir.OpSub
	if ld := e.fusedLoad(bb); ld != nil {
		bOp, err := e.fusedLoadOperand(ld, size, scratchGP2, scratchXMM2)
		if err != nil {
			return err
		}
		if err := e.moveIntoGP(d, a); err != nil {
			return err
		}
		e.b.I(op, x86.RegOp(d, size), bOp)
		e.writeBackGP(in, d)
		return nil
	}
	bHome, bInReg := e.homeOf(bb)
	bIsD := bInReg && bHome.inReg && bHome.reg == d

	if bIsD && !commutative {
		// d currently holds b; park it.
		e.b.I(x86.MOV, x86.R64(scratchGP2), x86.R64(d))
		if err := e.moveIntoGP(d, a); err != nil {
			return err
		}
		e.b.I(op, x86.RegOp(d, size), x86.RegOp(scratchGP2, size))
		e.writeBackGP(in, d)
		return nil
	}
	if bIsD && commutative {
		aOp, err := e.gpSrcOperand(a, size, scratchGP2)
		if err != nil {
			return err
		}
		e.b.I(op, x86.RegOp(d, size), aOp)
		e.writeBackGP(in, d)
		return nil
	}
	if err := e.moveIntoGP(d, a); err != nil {
		return err
	}
	bOp, err := e.gpSrcOperand(bb, size, scratchGP2)
	if err != nil {
		return err
	}
	e.b.I(op, x86.RegOp(d, size), bOp)
	e.writeBackGP(in, d)
	return nil
}

// stageAccum places a (or b when commutative and b already lives in d) into
// the accumulator d.
func (e *emitter) stageAccum(d x86.Reg, a, b ir.Value, commutative bool) error {
	if commutative {
		if bh, ok := e.homeOf(b); ok && bh.inReg && bh.reg == d {
			return nil // use b as the accumulator
		}
	}
	return e.moveIntoGP(d, a)
}

func (e *emitter) emitShift(in *ir.Inst) error {
	size := widthOf(in.Ty)
	var op x86.Op
	switch in.Op {
	case ir.OpShl:
		op = x86.SHL
	case ir.OpLShr:
		op = x86.SHR
	case ir.OpAShr:
		op = x86.SAR
	}
	d := e.dstGP(in)
	if c, ok := in.Args[1].(*ir.ConstInt); ok {
		if err := e.moveIntoGP(d, in.Args[0]); err != nil {
			return err
		}
		e.b.I(op, x86.RegOp(d, size), x86.Imm(int64(c.V), 1))
		e.writeBackGP(in, d)
		return nil
	}
	// Variable count: stage through CL, preserving RCX.
	target := d
	if d == x86.RCX {
		target = scratchGP
	}
	if err := e.moveIntoGP(target, in.Args[0]); err != nil {
		return err
	}
	cnt, err := e.valueGP(in.Args[1], scratchGP2)
	if err != nil {
		return err
	}
	if cnt != x86.RCX {
		e.b.I(x86.MOV, x86.R64(scratchGP2), x86.R64(x86.RCX)) // save rcx
		e.b.I(x86.MOV, x86.R8L(x86.RCX), x86.R8L(cnt))
		e.b.I(op, x86.RegOp(target, size), x86.RegOp(x86.RCX, 1))
		e.b.I(x86.MOV, x86.R64(x86.RCX), x86.R64(scratchGP2)) // restore
	} else {
		e.b.I(op, x86.RegOp(target, size), x86.RegOp(x86.RCX, 1))
	}
	if target != d {
		e.b.I(x86.MOV, x86.R64(d), x86.R64(target))
	}
	e.writeBackGP(in, d)
	return nil
}

func (e *emitter) emitDiv(in *ir.Inst) error {
	size := widthOf(in.Ty)
	if size < 4 {
		return fmt.Errorf("narrow division is not supported")
	}
	signed := in.Op == ir.OpSDiv || in.Op == ir.OpSRem
	wantRem := in.Op == ir.OpURem || in.Op == ir.OpSRem

	e.b.I(x86.PUSH, x86.R64(x86.RAX))
	e.b.I(x86.PUSH, x86.R64(x86.RDX))
	den, err := e.valueGP(in.Args[1], scratchGP)
	if err != nil {
		return err
	}
	if den != scratchGP {
		e.b.I(x86.MOV, x86.R64(scratchGP), x86.R64(den))
	}
	num, err := e.valueGP(in.Args[0], scratchGP2)
	if err != nil {
		return err
	}
	if num != x86.RAX {
		e.b.I(x86.MOV, x86.R64(x86.RAX), x86.R64(num))
	}
	if signed {
		if size == 8 {
			e.b.I(x86.CQO)
		} else {
			e.b.I(x86.CDQ)
		}
		e.b.I(x86.IDIV, x86.RegOp(scratchGP, size))
	} else {
		e.b.I(x86.XOR, x86.R32(x86.RDX), x86.R32(x86.RDX))
		e.b.I(x86.DIV, x86.RegOp(scratchGP, size))
	}
	res := x86.RAX
	if wantRem {
		res = x86.RDX
	}
	e.b.I(x86.MOV, x86.R64(scratchGP), x86.R64(res))
	e.b.I(x86.POP, x86.R64(x86.RDX))
	e.b.I(x86.POP, x86.R64(x86.RAX))
	e.writeBackGP(in, scratchGP)
	return nil
}

var fpScalarOp = map[ir.Op]x86.Op{
	ir.OpFAdd: x86.ADDSD, ir.OpFSub: x86.SUBSD, ir.OpFMul: x86.MULSD, ir.OpFDiv: x86.DIVSD,
}
var fpScalar32Op = map[ir.Op]x86.Op{
	ir.OpFAdd: x86.ADDSS, ir.OpFSub: x86.SUBSS, ir.OpFMul: x86.MULSS, ir.OpFDiv: x86.DIVSS,
}
var fpVec64Op = map[ir.Op]x86.Op{
	ir.OpFAdd: x86.ADDPD, ir.OpFSub: x86.SUBPD, ir.OpFMul: x86.MULPD, ir.OpFDiv: x86.DIVPD,
}
var fpVec32Op = map[ir.Op]x86.Op{
	ir.OpFAdd: x86.ADDPS, ir.OpFSub: x86.SUBPS, ir.OpFMul: x86.MULPS, ir.OpFDiv: x86.DIVPS,
}

func (e *emitter) emitFBin(in *ir.Inst) error {
	var op x86.Op
	switch {
	case in.Ty.Kind == ir.KDouble:
		op = fpScalarOp[in.Op]
	case in.Ty.Kind == ir.KFloat:
		op = fpScalar32Op[in.Op]
	case in.Ty.IsVec() && in.Ty.Elem.Kind == ir.KDouble:
		op = fpVec64Op[in.Op]
	case in.Ty.IsVec() && in.Ty.Elem.Kind == ir.KFloat:
		op = fpVec32Op[in.Op]
	default:
		return fmt.Errorf("unsupported FP type %s", in.Ty)
	}
	d := e.dstXMM(in)
	a, bb := in.Args[0], in.Args[1]
	commutative := in.Op == ir.OpFAdd || in.Op == ir.OpFMul
	if ld := e.fusedLoad(bb); ld != nil {
		bOp, err := e.fusedLoadOperand(ld, widthOf(ld.Ty), scratchGP2, scratchXMM2)
		if err != nil {
			return err
		}
		if err := e.moveIntoXMM(d, a); err != nil {
			return err
		}
		e.b.I(op, x86.X(d), bOp)
		e.writeBackXMM(in, d)
		return nil
	}
	if bh, ok := e.homeOf(bb); ok && bh.inReg && bh.reg == d {
		if commutative {
			ra, err := e.valueXMM(a, scratchXMM2)
			if err != nil {
				return err
			}
			e.b.I(op, x86.X(d), x86.X(ra))
			e.writeBackXMM(in, d)
			return nil
		}
		e.b.I(x86.MOVAPS, x86.X(scratchXMM2), x86.X(d))
		if err := e.moveIntoXMM(d, a); err != nil {
			return err
		}
		e.b.I(op, x86.X(d), x86.X(scratchXMM2))
		e.writeBackXMM(in, d)
		return nil
	}
	if err := e.moveIntoXMM(d, a); err != nil {
		return err
	}
	rb, err := e.valueXMM(bb, scratchXMM2)
	if err != nil {
		return err
	}
	e.b.I(op, x86.X(d), x86.X(rb))
	e.writeBackXMM(in, d)
	return nil
}

var vecIntOp = map[ir.Op]x86.Op{
	ir.OpAdd: x86.PADDQ, ir.OpSub: x86.PSUBQ,
	ir.OpAnd: x86.PAND, ir.OpOr: x86.POR, ir.OpXor: x86.PXOR,
}
var vecIntOp32 = map[ir.Op]x86.Op{
	ir.OpAdd: x86.PADDD, ir.OpSub: x86.PSUBD,
	ir.OpAnd: x86.PAND, ir.OpOr: x86.POR, ir.OpXor: x86.PXOR,
}

// emitVecIntBin handles i128 and integer-vector bitwise/arithmetic ops.
func (e *emitter) emitVecIntBin(in *ir.Inst) error {
	table := vecIntOp
	if in.Ty.IsVec() && in.Ty.Elem.Bits == 32 {
		table = vecIntOp32
	}
	op, ok := table[in.Op]
	if !ok {
		return fmt.Errorf("unsupported vector op %s on %s", in.Op, in.Ty)
	}
	if in.Ty.IsInt() && in.Ty.Bits == 128 && (in.Op == ir.OpAdd || in.Op == ir.OpSub) {
		return fmt.Errorf("i128 add/sub is not supported by the backend")
	}
	d := e.dstXMM(in)
	a, bb := in.Args[0], in.Args[1]
	commutative := in.Op != ir.OpSub
	if bh, ok := e.homeOf(bb); ok && bh.inReg && bh.reg == d {
		if commutative {
			ra, err := e.valueXMM(a, scratchXMM2)
			if err != nil {
				return err
			}
			e.b.I(op, x86.X(d), x86.X(ra))
			e.writeBackXMM(in, d)
			return nil
		}
		e.b.I(x86.MOVAPS, x86.X(scratchXMM2), x86.X(d))
		if err := e.moveIntoXMM(d, a); err != nil {
			return err
		}
		e.b.I(op, x86.X(d), x86.X(scratchXMM2))
		e.writeBackXMM(in, d)
		return nil
	}
	if err := e.moveIntoXMM(d, a); err != nil {
		return err
	}
	rb, err := e.valueXMM(bb, scratchXMM2)
	if err != nil {
		return err
	}
	e.b.I(op, x86.X(d), x86.X(rb))
	e.writeBackXMM(in, d)
	return nil
}

// emitGPCopy implements value-preserving moves (trunc, ptr casts).
func (e *emitter) emitGPCopy(in *ir.Inst, src ir.Value) error {
	d := e.dstGP(in)
	if err := e.moveIntoGP(d, src); err != nil {
		return err
	}
	e.writeBackGP(in, d)
	return nil
}

func (e *emitter) emitBitcast(in *ir.Inst) error {
	from := classOf(in.Args[0].Type())
	to := classOf(in.Ty)
	switch {
	case from == classGP && to == classGP:
		return e.emitGPCopy(in, in.Args[0])
	case from == classXMM && to == classXMM:
		d := e.dstXMM(in)
		if err := e.moveIntoXMM(d, in.Args[0]); err != nil {
			return err
		}
		e.writeBackXMM(in, d)
		return nil
	case from == classGP && to == classXMM:
		r, err := e.valueGP(in.Args[0], scratchGP)
		if err != nil {
			return err
		}
		d := e.dstXMM(in)
		e.b.I(x86.MOVQGP, x86.X(d), x86.R64(r))
		e.writeBackXMM(in, d)
		return nil
	default: // XMM -> GP
		r, err := e.valueXMM(in.Args[0], scratchXMM)
		if err != nil {
			return err
		}
		d := e.dstGP(in)
		e.b.I(x86.MOVQGP, x86.R64(d), x86.X(r))
		e.writeBackGP(in, d)
		return nil
	}
}

func (e *emitter) emitGEP(in *ir.Inst) error {
	d := e.dstGP(in)
	baseV := e.stripFusedCasts(in.Args[0])
	idxV := e.stripFusedCasts(in.Args[1])
	base, err := e.valueGP(baseV, d)
	if err != nil {
		return err
	}
	elem := int64(in.ElemTy.Size())
	if c, ok := idxV.(*ir.ConstInt); ok {
		disp := int64(c.V) * elem
		if disp == 0 {
			if base != d {
				e.b.I(x86.MOV, x86.R64(d), x86.R64(base))
			}
		} else if disp >= -(1<<31) && disp < 1<<31 {
			e.b.I(x86.LEA, x86.R64(d), x86.MemBD(8, base, int32(disp)))
		} else {
			e.b.I(x86.MOV, x86.R64(scratchGP2), x86.Imm(disp, 8))
			if base != d {
				e.b.I(x86.MOV, x86.R64(d), x86.R64(base))
			}
			e.b.I(x86.ADD, x86.R64(d), x86.R64(scratchGP2))
		}
		e.writeBackGP(in, d)
		return nil
	}
	idx, err := e.valueGP(idxV, scratchGP2)
	if err != nil {
		return err
	}
	switch elem {
	case 1, 2, 4, 8:
		e.b.I(x86.LEA, x86.R64(d), x86.MemBIS(8, base, idx, uint8(elem), 0))
	default:
		// d = idx*elem + base.
		e.b.I(x86.IMUL3, x86.R64(scratchGP2), x86.R64(idx), x86.Imm(elem, 8))
		if base != d {
			e.b.I(x86.MOV, x86.R64(d), x86.R64(base))
		}
		e.b.I(x86.ADD, x86.R64(d), x86.R64(scratchGP2))
	}
	e.writeBackGP(in, d)
	return nil
}

func (e *emitter) emitLoad(in *ir.Inst) error {
	if classOf(in.Ty) == classXMM {
		d := e.dstXMM(in)
		switch {
		case in.Ty.Kind == ir.KDouble:
			op, err := e.memOperand(in.Args[0], 8)
			if err != nil {
				return err
			}
			e.b.I(x86.MOVSD_X, x86.X(d), op)
		case in.Ty.Kind == ir.KFloat:
			op, err := e.memOperand(in.Args[0], 4)
			if err != nil {
				return err
			}
			e.b.I(x86.MOVSS_X, x86.X(d), op)
		default: // 16-byte vector or i128
			op, err := e.memOperand(in.Args[0], 16)
			if err != nil {
				return err
			}
			mov := x86.MOVUPD
			if in.Align >= 16 {
				mov = x86.MOVAPD
			}
			e.b.I(mov, x86.X(d), op)
		}
		e.writeBackXMM(in, d)
		return nil
	}
	d := e.dstGP(in)
	w := widthOf(in.Ty)
	op, err := e.memOperand(in.Args[0], w)
	if err != nil {
		return err
	}
	e.b.I(x86.MOV, x86.RegOp(d, w), op)
	e.writeBackGP(in, d)
	return nil
}

func (e *emitter) emitStore(in *ir.Inst) error {
	v, ptr := in.Args[0], in.Args[1]
	if classOf(v.Type()) == classXMM {
		// XMM values never collide with the GP scratches used by the
		// address computation, so the fused addressing mode applies.
		r, err := e.valueXMM(v, scratchXMM)
		if err != nil {
			return err
		}
		var mov x86.Op
		var size uint8
		switch {
		case v.Type().Kind == ir.KDouble:
			mov, size = x86.MOVSD_X, 8
		case v.Type().Kind == ir.KFloat:
			mov, size = x86.MOVSS_X, 4
		default:
			mov, size = x86.MOVUPD, 16
			if in.Align >= 16 {
				mov = x86.MOVAPD
			}
		}
		op, err := e.memOperand(ptr, size)
		if err != nil {
			return err
		}
		e.b.I(mov, op, x86.X(r))
		return nil
	}
	w := widthOf(v.Type())
	// In-register values and small constants can use the fused addressing
	// mode directly; anything needing value staging collapses the address
	// into one scratch register first to avoid scratch collisions.
	if c, ok := v.(*ir.ConstInt); ok {
		iv := int64(c.V)
		if w < 8 || (iv >= -(1<<31) && iv < 1<<31) {
			op, err := e.memOperand(ptr, w)
			if err != nil {
				return err
			}
			if w < 8 {
				iv = int64(int32(uint32(c.V)))
			}
			e.b.I(x86.MOV, op, x86.Imm(iv, w))
			return nil
		}
	}
	if l, ok := e.homeOf(v); ok && l.inReg {
		op, err := e.memOperand(ptr, w)
		if err != nil {
			return err
		}
		e.b.I(x86.MOV, op, x86.RegOp(l.reg, w))
		return nil
	}
	if err := e.memAddrInto(ptr, scratchGP); err != nil {
		return err
	}
	r, err := e.valueGP(v, scratchGP2)
	if err != nil {
		return err
	}
	e.b.I(x86.MOV, x86.MemBD(w, scratchGP, 0), x86.RegOp(r, w))
	return nil
}

func (e *emitter) emitSelect(in *ir.Inst) error {
	// Obtain the branch condition: fused icmp or an i1 value test.
	var cond x86.Cond
	if ic, ok := in.Args[0].(*ir.Inst); ok && e.alloc.fused[ic] {
		c, err := e.emitCmp(ic)
		if err != nil {
			return err
		}
		cond = c
	} else {
		r, err := e.valueGP(in.Args[0], scratchGP)
		if err != nil {
			return err
		}
		e.b.I(x86.TEST, x86.R8L(r), x86.R8L(r))
		cond = x86.CondNE
	}
	tv, fv := in.Args[1], in.Args[2]
	if classOf(in.Ty) == classGP {
		d := e.dstGP(in)
		// mov does not affect flags, so staging is safe after the cmp.
		if err := e.moveIntoGP(d, fv); err != nil {
			return err
		}
		rt, err := e.valueGP(tv, scratchGP2)
		if err != nil {
			return err
		}
		w := widthOf(in.Ty)
		if w < 4 {
			w = 4
		}
		e.b.Emit(x86.Inst{Op: x86.CMOVCC, Cond: cond,
			Dst: x86.RegOp(d, w), Src: x86.RegOp(rt, w)})
		e.writeBackGP(in, d)
		return nil
	}
	// FP select: short branch diamond (no cmov for XMM without AVX).
	d := e.dstXMM(in)
	if err := e.moveIntoXMM(d, fv); err != nil {
		return err
	}
	skip := e.b.NewLabel()
	e.b.Jcc(cond.Negate(), skip)
	if err := e.moveIntoXMM(d, tv); err != nil {
		return err
	}
	e.b.Bind(skip)
	e.writeBackXMM(in, d)
	return nil
}

func (e *emitter) emitCall(in *ir.Inst) error {
	target, ok := e.c.entries[in.Callee]
	if !ok {
		if in.Callee == e.f {
			target = e.selfAddr
		} else if in.Callee.Addr != 0 && len(in.Callee.Blocks) == 0 {
			target = in.Callee.Addr
		} else {
			return fmt.Errorf("call target %s unresolved", in.Callee.Nam)
		}
	}
	var moves []pmove
	nInt, nFP := 0, 0
	for _, a := range in.Args {
		if classOf(a.Type()) == classXMM {
			dst := loc{inReg: true, reg: x86.XMM0 + x86.Reg(nFP)}
			nFP++
			m := pmove{dst: dst, cls: classXMM, srcVal: a}
			if sl, ok := e.homeOf(a); ok {
				m.srcLoc = &sl
			}
			moves = append(moves, m)
		} else {
			if nInt >= len(intArgRegs) {
				return fmt.Errorf("too many call arguments")
			}
			dst := loc{inReg: true, reg: intArgRegs[nInt]}
			nInt++
			m := pmove{dst: dst, cls: classGP, srcVal: a}
			if sl, ok := e.homeOf(a); ok {
				if _, isA := allocaInst(a); !isA {
					m.srcLoc = &sl
				}
			}
			moves = append(moves, m)
		}
	}
	if err := e.parallelMoves(moves); err != nil {
		return err
	}
	e.b.Call(target)
	if in.Ty != ir.Void {
		if classOf(in.Ty) == classXMM {
			e.writeBackXMM(in, x86.XMM0)
		} else {
			e.writeBackGP(in, x86.RAX)
		}
	}
	return nil
}

func (e *emitter) emitExtractElement(in *ir.Inst) error {
	idx := int64(0)
	if c, ok := in.Args[1].(*ir.ConstInt); ok {
		idx = int64(c.V)
	} else {
		return fmt.Errorf("variable extractelement index")
	}
	src, err := e.valueXMM(in.Args[0], scratchXMM)
	if err != nil {
		return err
	}
	lanes := in.Args[0].Type().Len
	elemSize := in.Args[0].Type().Elem.Size()
	if classOf(in.Ty) == classXMM {
		d := e.dstXMM(in)
		switch {
		case idx == 0:
			if src != d {
				e.b.I(x86.MOVAPS, x86.X(d), x86.X(src))
			}
		case elemSize == 8 && idx == 1:
			if src != d {
				e.b.I(x86.MOVAPS, x86.X(d), x86.X(src))
			}
			e.b.I(x86.UNPCKHPD, x86.X(d), x86.X(d))
		case elemSize == 4:
			if src != d {
				e.b.I(x86.MOVAPS, x86.X(d), x86.X(src))
			}
			sel := byte(idx) & 3
			e.b.I(x86.PSHUFD, x86.X(d), x86.X(d), x86.Imm(int64(sel), 1))
		default:
			return fmt.Errorf("unsupported extract lane %d of %d", idx, lanes)
		}
		e.writeBackXMM(in, d)
		return nil
	}
	// Vector lane to GP.
	d := e.dstGP(in)
	work := src
	if idx != 0 {
		if src != scratchXMM {
			e.b.I(x86.MOVAPS, x86.X(scratchXMM), x86.X(src))
		}
		work = scratchXMM
		if elemSize == 8 {
			e.b.I(x86.UNPCKHPD, x86.X(work), x86.X(work))
		} else {
			e.b.I(x86.PSHUFD, x86.X(work), x86.X(work), x86.Imm(idx&3, 1))
		}
	}
	if elemSize == 8 {
		e.b.I(x86.MOVQGP, x86.R64(d), x86.X(work))
	} else {
		e.b.I(x86.MOVD, x86.R32(d), x86.X(work))
	}
	e.writeBackGP(in, d)
	return nil
}

func (e *emitter) emitInsertElement(in *ir.Inst) error {
	idxC, ok := in.Args[2].(*ir.ConstInt)
	if !ok {
		return fmt.Errorf("variable insertelement index")
	}
	idx := int64(idxC.V)
	elemTy := in.Ty.Elem
	if elemTy.Size() != 8 && elemTy.Size() != 4 {
		return fmt.Errorf("insertelement of %s lanes is not supported", elemTy)
	}

	// Scalar into scratchXMM2 first (handles GP-class scalars).
	var sreg x86.Reg
	if classOf(in.Args[1].Type()) == classGP {
		r, err := e.valueGP(in.Args[1], scratchGP)
		if err != nil {
			return err
		}
		e.b.I(x86.MOVQGP, x86.X(scratchXMM2), x86.R64(r))
		sreg = scratchXMM2
	} else {
		r, err := e.valueXMM(in.Args[1], scratchXMM2)
		if err != nil {
			return err
		}
		sreg = r
	}

	d := e.dstXMM(in)
	base := in.Args[0]
	if elemTy.Size() == 4 {
		// 32-bit lane: rotate the target lane to position 0 with pshufd
		// (an involution), merge with movss, rotate back.
		if bh, ok := e.homeOf(base); ok && bh.inReg && bh.reg == sreg {
			return fmt.Errorf("insertelement aliasing not supported")
		}
		if err := e.moveIntoXMM(d, base); err != nil {
			return err
		}
		if d == sreg {
			return fmt.Errorf("insertelement scratch conflict")
		}
		swap := [4]int64{0, 0xE1, 0xC6, 0x27} // identity with lane 0<->idx swapped
		if idx != 0 {
			e.b.I(x86.PSHUFD, x86.X(d), x86.X(d), x86.Imm(swap[idx], 1))
		}
		e.b.I(x86.MOVSS_X, x86.X(d), x86.X(sreg))
		if idx != 0 {
			e.b.I(x86.PSHUFD, x86.X(d), x86.X(d), x86.Imm(swap[idx], 1))
		}
		e.writeBackXMM(in, d)
		return nil
	}
	if _, isZero := base.(*ir.Zero); isZero && idx == 0 {
		// insert into zero vector at lane 0: movq zeroes the upper lane.
		e.b.I(x86.MOVQ, x86.X(d), x86.X(sreg))
		e.writeBackXMM(in, d)
		return nil
	}
	if _, isUndef := base.(*ir.Undef); isUndef {
		if idx == 0 {
			if sreg != d {
				e.b.I(x86.MOVAPS, x86.X(d), x86.X(sreg))
			}
		} else {
			if sreg != d {
				e.b.I(x86.MOVAPS, x86.X(d), x86.X(sreg))
			}
			e.b.I(x86.UNPCKLPD, x86.X(d), x86.X(d)) // [s, s]
		}
		e.writeBackXMM(in, d)
		return nil
	}
	// General: base vector into d, then merge the lane.
	if bh, ok := e.homeOf(base); ok && bh.inReg && bh.reg == sreg {
		// aliasing: move scalar away first (it is already scratchXMM2
		// unless the value lives there, which scratch never does).
		return fmt.Errorf("insertelement aliasing not supported")
	}
	if err := e.moveIntoXMM(d, base); err != nil {
		return err
	}
	if d == sreg {
		return fmt.Errorf("insertelement scratch conflict")
	}
	if idx == 0 {
		e.b.I(x86.MOVSD_X, x86.X(d), x86.X(sreg)) // low lane, upper preserved
	} else {
		e.b.I(x86.UNPCKLPD, x86.X(d), x86.X(sreg)) // [d0, s]
	}
	e.writeBackXMM(in, d)
	return nil
}

func (e *emitter) emitShuffle(in *ir.Inst) error {
	srcTy := in.Args[0].Type()
	if srcTy.Elem.Size() == 8 && len(in.Mask) == 2 {
		return e.emitShuffle2(in)
	}
	if srcTy.Elem.Size() == 4 && len(in.Mask) == 4 {
		return e.emitShuffle4(in)
	}
	return fmt.Errorf("unsupported shuffle %v on %s", in.Mask, srcTy)
}

// emitShuffle2 handles all two-lane (double/i64) shuffles via shufpd.
func (e *emitter) emitShuffle2(in *ir.Inst) error {
	m0, m1 := in.Mask[0], in.Mask[1]
	if m0 < 0 {
		m0 = 0
	}
	if m1 < 0 {
		m1 = m0
	}
	d := e.dstXMM(in)
	pick := func(sel int) (ir.Value, int) {
		if sel < 2 {
			return in.Args[0], sel
		}
		return in.Args[1], sel - 2
	}
	av, ai := pick(m0)
	bv, bi := pick(m1)
	ra, err := e.valueXMM(av, scratchXMM)
	if err != nil {
		return err
	}
	var rb x86.Reg
	if bv == av {
		rb = ra
	} else {
		rb, err = e.valueXMM(bv, scratchXMM2)
		if err != nil {
			return err
		}
	}
	// d = [ra[ai], rb[bi]] via movaps + shufpd.
	if rb == d && ra != d {
		// shufpd reads d as first source; park rb.
		e.b.I(x86.MOVAPS, x86.X(scratchXMM2), x86.X(rb))
		rb = scratchXMM2
	}
	if ra != d {
		e.b.I(x86.MOVAPS, x86.X(d), x86.X(ra))
	}
	imm := int64(ai | bi<<1)
	e.b.I(x86.SHUFPD, x86.X(d), x86.X(rb), x86.Imm(imm, 1))
	e.writeBackXMM(in, d)
	return nil
}

// emitShuffle4 handles four-lane shuffles where the first two result lanes
// come from one vector and the last two from one vector (shufps shape), or
// the interleave shape (unpcklps).
func (e *emitter) emitShuffle4(in *ir.Inst) error {
	m := in.Mask
	d := e.dstXMM(in)
	// unpcklps: [0,4,1,5]
	if m[0] == 0 && m[1] == 4 && m[2] == 1 && m[3] == 5 {
		ra, err := e.valueXMM(in.Args[0], scratchXMM)
		if err != nil {
			return err
		}
		rb, err := e.valueXMM(in.Args[1], scratchXMM2)
		if err != nil {
			return err
		}
		if rb == d && ra != d {
			e.b.I(x86.MOVAPS, x86.X(scratchXMM2), x86.X(rb))
			rb = scratchXMM2
		}
		if ra != d {
			e.b.I(x86.MOVAPS, x86.X(d), x86.X(ra))
		}
		e.b.I(x86.UNPCKLPS, x86.X(d), x86.X(rb))
		e.writeBackXMM(in, d)
		return nil
	}
	// All lanes from args[0]: pshufd.
	all0 := true
	for _, v := range m {
		if v >= 4 {
			all0 = false
		}
	}
	if all0 {
		ra, err := e.valueXMM(in.Args[0], scratchXMM)
		if err != nil {
			return err
		}
		sel := int64(0)
		for i, v := range m {
			if v < 0 {
				v = 0
			}
			sel |= int64(v&3) << (2 * i)
		}
		e.b.I(x86.PSHUFD, x86.X(d), x86.X(ra), x86.Imm(sel, 1))
		e.writeBackXMM(in, d)
		return nil
	}
	// shufps shape: lanes 0,1 from a; 2,3 from b.
	if m[0] < 4 && m[1] < 4 && m[2] >= 4 && m[3] >= 4 {
		ra, err := e.valueXMM(in.Args[0], scratchXMM)
		if err != nil {
			return err
		}
		rb, err := e.valueXMM(in.Args[1], scratchXMM2)
		if err != nil {
			return err
		}
		if rb == d && ra != d {
			e.b.I(x86.MOVAPS, x86.X(scratchXMM2), x86.X(rb))
			rb = scratchXMM2
		}
		if ra != d {
			e.b.I(x86.MOVAPS, x86.X(d), x86.X(ra))
		}
		sel := int64(m[0]&3) | int64(m[1]&3)<<2 | int64(m[2]&3)<<4 | int64(m[3]&3)<<6
		e.b.I(x86.SHUFPS, x86.X(d), x86.X(rb), x86.Imm(sel, 1))
		e.writeBackXMM(in, d)
		return nil
	}
	return fmt.Errorf("unsupported 4-lane shuffle %v", m)
}
