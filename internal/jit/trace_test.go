package jit

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/crosstest"
	"repro/internal/emu"
	"repro/internal/x86"
	"repro/internal/x86/asm"
)

// The tests in this file exercise the trace tier end to end: this package's
// init registers the trace compiler with internal/emu, so machines built
// here really record, compile, and execute superblock traces. (The pure
// interpreter-vs-blocks differential tests live in internal/emu, whose test
// binary does not import jit and therefore runs with the tier disabled.)

// engineMode selects which execution tier a differential run uses.
type engineMode int

const (
	modeInterp engineMode = iota
	modeBlocks
	modeTraces
)

func (em engineMode) String() string {
	return [...]string{"interp", "blocks", "traces"}[em]
}

// hotOpts makes every loop trace-eligible immediately and recompiles at O3
// after a few runs, so short differential programs still cover both pipelines.
var hotOpts = emu.TraceOptions{HotThreshold: 1, O3Threshold: 4}

func configure(m *emu.Machine, mode engineMode) {
	m.Interp = mode == modeInterp
	m.Traces = mode == modeTraces
	m.TraceOpts = hotOpts
}

// traceState is everything the three engines must agree on bit-for-bit.
type traceState struct {
	gpr       [16]uint64
	xmm       [16]emu.XMMReg
	flags     emu.Flags
	instCount uint64
	cycles    float64
	rip       uint64
	errMsg    string
	scratch   string
}

func snapshot(m *emu.Machine, err error) traceState {
	st := traceState{
		gpr:       m.GPR,
		xmm:       m.XMM,
		flags:     m.Flags,
		instCount: m.InstCount,
		cycles:    m.Cycles,
		rip:       m.RIP,
	}
	if err != nil {
		st.errMsg = err.Error()
	}
	return st
}

func runCrosstest(t *testing.T, p *crosstest.Program, a, b uint64, mode engineMode) traceState {
	t.Helper()
	mem, entry, scratch, err := p.Place()
	if err != nil {
		t.Fatalf("place: %v", err)
	}
	m := emu.NewMachine(mem)
	configure(m, mode)
	_, cerr := m.Call(entry, emu.CallArgs{Ints: []uint64{a, b, scratch}}, 2_000_000)
	st := snapshot(m, cerr)
	if buf, rerr := mem.Read(scratch, crosstest.ScratchSize); rerr == nil {
		st.scratch = string(buf)
	}
	return st
}

func diffStates(t *testing.T, desc string, want, got traceState, wantMode, gotMode engineMode) {
	t.Helper()
	if want.errMsg != got.errMsg {
		t.Fatalf("%s: error mismatch:\n %v: %q\n %v: %q", desc, wantMode, want.errMsg, gotMode, got.errMsg)
	}
	if want.gpr != got.gpr {
		t.Fatalf("%s: GPR mismatch:\n %v: %x\n %v: %x", desc, wantMode, want.gpr, gotMode, got.gpr)
	}
	if want.xmm != got.xmm {
		t.Fatalf("%s: XMM mismatch", desc)
	}
	if want.flags != got.flags {
		t.Fatalf("%s: Flags mismatch:\n %v: %+v\n %v: %+v", desc, wantMode, want.flags, gotMode, got.flags)
	}
	if want.instCount != got.instCount {
		t.Fatalf("%s: InstCount mismatch: %v %d, %v %d", desc, wantMode, want.instCount, gotMode, got.instCount)
	}
	if want.cycles != got.cycles {
		t.Fatalf("%s: Cycles mismatch: %v %v, %v %v", desc, wantMode, want.cycles, gotMode, got.cycles)
	}
	if want.rip != got.rip {
		t.Fatalf("%s: RIP mismatch: %v %#x, %v %#x", desc, wantMode, want.rip, gotMode, got.rip)
	}
	if want.scratch != got.scratch {
		t.Fatalf("%s: scratch memory mismatch", desc)
	}
}

// TestTraceEngineDifferential runs the full generated corpus through all
// three engines and demands bit-identical architectural state. Programs
// whose loop bodies the trace lifter rejects (FP, ADC/SBB) still run — the
// head is blacklisted and execution stays on the block engine — so this
// also covers the abort-and-fall-back path.
func TestTraceEngineDifferential(t *testing.T) {
	inputs := [][2]uint64{{3, 5}, {0xFFFF_FFFF_FFFF_FFF0, 2}}
	for seed := int64(0); seed < 120; seed++ {
		p, err := crosstest.Generate(seed)
		if err != nil {
			t.Fatalf("seed %d: generate: %v", seed, err)
		}
		for _, in := range inputs {
			ref := runCrosstest(t, p, in[0], in[1], modeInterp)
			blocks := runCrosstest(t, p, in[0], in[1], modeBlocks)
			traces := runCrosstest(t, p, in[0], in[1], modeTraces)
			diffStates(t, p.Desc, ref, blocks, modeInterp, modeBlocks)
			diffStates(t, p.Desc, ref, traces, modeInterp, modeTraces)
		}
	}
	st := emu.ReadTraceStats()
	if st.Compiled == 0 {
		t.Fatalf("trace differential ran without compiling a single trace: %+v", st)
	}
}

// assembleAt builds a snippet at base.
func assembleAt(t testing.TB, base uint64, build func(b *asm.Builder)) []byte {
	t.Helper()
	b := asm.NewBuilder()
	build(b)
	code, _, err := b.Assemble(base)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	return code
}

// traceLoop is a trace-friendly counted loop: rax accumulates a mixed ALU
// chain over `iters` iterations.
func traceLoop(iters int64) func(b *asm.Builder) {
	return func(b *asm.Builder) {
		b.I(x86.MOV, x86.R64(x86.RAX), x86.Imm(0, 8))
		b.I(x86.MOV, x86.R64(x86.RCX), x86.Imm(iters, 8))
		b.I(x86.MOV, x86.R64(x86.RDX), x86.Imm(0x1234567, 8))
		loop := b.NewLabel()
		b.Bind(loop)
		b.I(x86.ADD, x86.R64(x86.RAX), x86.R64(x86.RDX))
		b.I(x86.XOR, x86.R64(x86.RDX), x86.R64(x86.RAX))
		b.I(x86.SHR, x86.R64(x86.RDX), x86.Imm(3, 1))
		b.I(x86.LEA, x86.R64(x86.RAX), x86.MemBIS(8, x86.RAX, x86.RDX, 2, 17))
		b.I(x86.SUB, x86.R64(x86.RCX), x86.Imm(1, 8))
		b.Jcc(x86.CondNE, loop)
		b.Ret()
	}
}

func runSnippet(t *testing.T, code []byte, mode engineMode, budget uint64, setup func(m *emu.Machine, mem *emu.Memory)) traceState {
	t.Helper()
	mem := emu.NewMemory(0x1000000)
	if _, err := mem.MapBytes(0x5000, code, "code"); err != nil {
		t.Fatal(err)
	}
	m := emu.NewMachine(mem)
	configure(m, mode)
	if setup != nil {
		setup(m, mem)
	}
	_, err := m.Call(0x5000, emu.CallArgs{}, budget)
	return snapshot(m, err)
}

// TestTraceGuardExit runs a counted loop long enough to be dominated by
// compiled trace iterations; the loop's final not-taken branch leaves
// through a guard side exit and must land in exactly the interpreter state.
func TestTraceGuardExit(t *testing.T) {
	code := assembleAt(t, 0x5000, traceLoop(10_000))
	ref := runSnippet(t, code, modeInterp, 0, nil)
	got := runSnippet(t, code, modeTraces, 0, nil)
	diffStates(t, "guard exit", ref, got, modeInterp, modeTraces)
	st := emu.ReadTraceStats()
	if st.Iters == 0 {
		t.Fatalf("no trace iterations recorded: %+v", st)
	}
}

// TestTraceBudgetCutoff sweeps the instruction budget across every possible
// cutoff of a traced loop, including cutoffs that land mid-iteration, and
// demands the interpreter's exact partial state and error text.
func TestTraceBudgetCutoff(t *testing.T) {
	code := assembleAt(t, 0x5000, traceLoop(50))
	full := runSnippet(t, code, modeInterp, 0, nil)
	for budget := uint64(1); budget <= full.instCount+1; budget++ {
		ref := runSnippet(t, code, modeInterp, budget, nil)
		got := runSnippet(t, code, modeTraces, budget, nil)
		diffStates(t, "budget cutoff", ref, got, modeInterp, modeTraces)
	}
	if !strings.Contains(runSnippet(t, code, modeTraces, 7, nil).errMsg, "instruction budget") {
		t.Fatal("budget error not surfaced through the trace engine")
	}
}

// TestTraceBudgetCutoffGenerated repeats the sweep on a generated program
// (seed 7, the one the block-engine budget test uses).
func TestTraceBudgetCutoffGenerated(t *testing.T) {
	p, err := crosstest.Generate(7)
	if err != nil {
		t.Fatal(err)
	}
	full := runCrosstest(t, p, 3, 5, modeInterp)
	run := func(mode engineMode, budget uint64) traceState {
		mem, entry, scratch, err := p.Place()
		if err != nil {
			t.Fatal(err)
		}
		m := emu.NewMachine(mem)
		configure(m, mode)
		_, cerr := m.Call(entry, emu.CallArgs{Ints: []uint64{3, 5, scratch}}, budget)
		return snapshot(m, cerr)
	}
	for budget := uint64(1); budget <= full.instCount+1; budget++ {
		diffStates(t, "generated budget", run(modeInterp, budget), run(modeTraces, budget), modeInterp, modeTraces)
	}
}

// TestTraceMemFaultDeopt drives a pointer-walking loop off the end of its
// region mid-trace: the faulting load must deoptimize before executing so
// the block engine reports the interpreter's exact fault.
func TestTraceMemFaultDeopt(t *testing.T) {
	code := assembleAt(t, 0x5000, func(b *asm.Builder) {
		b.I(x86.MOV, x86.R64(x86.RAX), x86.Imm(0, 8))
		b.I(x86.MOV, x86.R64(x86.RCX), x86.Imm(1000, 8))
		loop := b.NewLabel()
		b.Bind(loop)
		b.I(x86.MOV, x86.R64(x86.RBX), x86.MemBD(8, x86.RDX, 0))
		b.I(x86.ADD, x86.R64(x86.RAX), x86.R64(x86.RBX))
		b.I(x86.ADD, x86.R64(x86.RDX), x86.Imm(8, 8))
		b.I(x86.SUB, x86.R64(x86.RCX), x86.Imm(1, 8))
		b.Jcc(x86.CondNE, loop)
		b.Ret()
	})
	setup := func(m *emu.Machine, mem *emu.Memory) {
		r := mem.Alloc(64*8, 64, "data") // 64 slots; the loop wants 1000
		for i := 0; i < 64; i++ {
			if err := mem.WriteU(r.Start+uint64(8*i), 8, uint64(i)); err != nil {
				t.Fatal(err)
			}
		}
		m.GPR[x86.RDX] = r.Start
	}
	ref := runSnippet(t, code, modeInterp, 0, setup)
	if ref.errMsg == "" {
		t.Fatal("expected a fault from the reference run")
	}
	got := runSnippet(t, code, modeTraces, 0, setup)
	diffStates(t, "mem fault deopt", ref, got, modeInterp, modeTraces)
}

// TestTraceSMCStoreDeopt stores into the (watched) code region from inside
// a traced loop. The store must deoptimize so the tracked write path bumps
// the code generation, and the machine must keep making progress even when
// the deopt lands on the first trace instruction (the zero-progress guard).
func TestTraceSMCStoreDeopt(t *testing.T) {
	var patch uint64
	code := assembleAt(t, 0x5000, func(b *asm.Builder) {
		b.I(x86.MOV, x86.R64(x86.RAX), x86.Imm(0, 8))
		b.I(x86.MOV, x86.R64(x86.RCX), x86.Imm(6, 8))
		loop := b.NewLabel()
		b.Bind(loop)
		b.I(x86.MOV, x86.MemBD(8, x86.RDX, 0), x86.R64(x86.RBX)) // store to code page
		b.I(x86.ADD, x86.R64(x86.RAX), x86.Imm(1, 8))
		b.I(x86.SUB, x86.R64(x86.RCX), x86.Imm(1, 8))
		b.Jcc(x86.CondNE, loop)
		b.Ret()
	})
	code = append(code, make([]byte, 16)...) // writable padding after RET
	patch = 0x5000 + uint64(len(code)) - 8
	setup := func(m *emu.Machine, mem *emu.Memory) {
		m.GPR[x86.RDX] = patch
		m.GPR[x86.RBX] = 0 // stores the bytes already there
	}
	ref := runSnippet(t, code, modeInterp, 0, setup)
	got := runSnippet(t, code, modeTraces, 0, setup)
	diffStates(t, "smc store deopt", ref, got, modeInterp, modeTraces)
	if got.gpr[x86.RAX] != 6 {
		t.Fatalf("loop did not complete: rax=%d", got.gpr[x86.RAX])
	}
}

// TestTracePenaltyDeopt puts a cache-line-splitting load in a traced loop:
// every iteration must deoptimize (penalized accesses cannot be accounted
// in-trace) yet cycles still match the interpreter exactly.
func TestTracePenaltyDeopt(t *testing.T) {
	code := assembleAt(t, 0x5000, func(b *asm.Builder) {
		b.I(x86.MOV, x86.R64(x86.RAX), x86.Imm(0, 8))
		b.I(x86.MOV, x86.R64(x86.RCX), x86.Imm(100, 8))
		loop := b.NewLabel()
		b.Bind(loop)
		b.I(x86.MOV, x86.R64(x86.RBX), x86.MemBD(8, x86.RDX, 0)) // split load
		b.I(x86.ADD, x86.R64(x86.RAX), x86.R64(x86.RBX))
		b.I(x86.SUB, x86.R64(x86.RCX), x86.Imm(1, 8))
		b.Jcc(x86.CondNE, loop)
		b.Ret()
	})
	setup := func(m *emu.Machine, mem *emu.Memory) {
		r := mem.Alloc(128, 64, "data")
		if err := mem.WriteU(r.Start+60, 8, 0x42); err != nil { // straddles the line
			t.Fatal(err)
		}
		m.GPR[x86.RDX] = r.Start + 60
	}
	ref := runSnippet(t, code, modeInterp, 0, setup)
	got := runSnippet(t, code, modeTraces, 0, setup)
	diffStates(t, "penalty deopt", ref, got, modeInterp, modeTraces)
}

// TestTraceConcurrentInvalidate runs traced loops on two machines sharing a
// Memory while a third goroutine hammers Memory.InvalidateRange. The
// backedge generation check must exit cleanly and the machines retranslate;
// run under -race this also proves the tier adds no unsynchronized state.
func TestTraceConcurrentInvalidate(t *testing.T) {
	code := assembleAt(t, 0x5000, traceLoop(200_000))
	mem := emu.NewMemory(0x1000000)
	if _, err := mem.MapBytes(0x5000, code, "code"); err != nil {
		t.Fatal(err)
	}
	ref := runSnippet(t, code, modeInterp, 0, nil)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				mem.InvalidateRange(0x9000, 0x9001) // bumps the generation only
			}
		}
	}()
	var machines sync.WaitGroup
	for i := 0; i < 2; i++ {
		machines.Add(1)
		go func() {
			defer machines.Done()
			stack := mem.Alloc(1<<16, 4096, "stk")
			m := emu.NewMachine(mem)
			configure(m, modeTraces)
			m.GPR[x86.RSP] = stack.End() - 64
			got, err := m.Call(0x5000, emu.CallArgs{}, 0)
			if err != nil {
				t.Errorf("call: %v", err)
			}
			if got != ref.gpr[x86.RAX] {
				t.Errorf("rax = %#x, want %#x", got, ref.gpr[x86.RAX])
			}
		}()
	}
	machines.Wait()
	close(stop)
	wg.Wait()
}

// TestTraceO3Recompile pushes a trace past the O3 threshold and checks the
// recompiled trace still agrees with the interpreter and was counted.
func TestTraceO3Recompile(t *testing.T) {
	before := emu.ReadTraceStats().CompiledO3
	code := assembleAt(t, 0x5000, traceLoop(400))
	mem := emu.NewMemory(0x1000000)
	if _, err := mem.MapBytes(0x5000, code, "code"); err != nil {
		t.Fatal(err)
	}
	ref := runSnippet(t, code, modeInterp, 0, nil)
	m := emu.NewMachine(mem)
	configure(m, modeTraces)
	// Re-enter the loop many times with a small budget so the same compiled
	// trace accumulates runs and crosses the O3 threshold.
	for i := 0; i < 16; i++ {
		m.Reset()
		_, _ = m.Call(0x5000, emu.CallArgs{}, 0)
	}
	if m.GPR[x86.RAX] != ref.gpr[x86.RAX] {
		t.Fatalf("rax = %#x, want %#x", m.GPR[x86.RAX], ref.gpr[x86.RAX])
	}
	if after := emu.ReadTraceStats().CompiledO3; after == before {
		t.Fatal("trace was never recompiled at O3")
	}
}

// TestTraceIndirectJumpAborts pins the trace tier's contract for indirect
// control flow (the jump-table idiom): a hot loop whose back edge is an
// indirect jmp through an in-memory table cannot be traced. Recording must
// abort exactly once at the indirect jmp and blacklist the loop head — a
// second abort would mean the head was re-recorded every iteration — while
// execution stays on the block engine with bit-identical interpreter state.
// Compiling through the indirect branch (guessing the target) would be a
// silent miscompile once the table is rewritten, so "no trace at all" is
// the asserted behavior.
func TestTraceIndirectJumpAborts(t *testing.T) {
	code := assembleAt(t, 0x5000, func(b *asm.Builder) {
		loop := b.NewLabel()
		done := b.NewLabel()
		b.I(x86.MOV, x86.R64(x86.RAX), x86.Imm(0, 8))
		b.I(x86.MOV, x86.R64(x86.RCX), x86.Imm(200, 8))
		// Build the one-entry jump table: [rdx] = &loop.
		b.MovLabel(x86.RBX, loop)
		b.I(x86.MOV, x86.MemBD(8, x86.RDX, 0), x86.R64(x86.RBX))
		b.Bind(loop)
		b.I(x86.ADD, x86.R64(x86.RAX), x86.R64(x86.RCX))
		b.I(x86.XOR, x86.R64(x86.RAX), x86.Imm(0x5A, 8))
		b.I(x86.SUB, x86.R64(x86.RCX), x86.Imm(1, 8))
		b.Jcc(x86.CondE, done)
		b.I(x86.JMPIndirect, x86.MemBD(8, x86.RDX, 0))
		b.Bind(done)
		b.Ret()
	})
	table := func(m *emu.Machine, mem *emu.Memory) {
		r := mem.Alloc(8, 8, "table")
		m.GPR[x86.RDX] = r.Start
	}
	before := emu.ReadTraceStats()
	ref := runSnippet(t, code, modeInterp, 0, table)
	got := runSnippet(t, code, modeTraces, 0, table)
	diffStates(t, "indirect back edge", ref, got, modeInterp, modeTraces)
	after := emu.ReadTraceStats()
	if after.Compiled != before.Compiled {
		t.Errorf("compiled %d traces across an indirect back edge, want 0",
			after.Compiled-before.Compiled)
	}
	if aborts := after.Aborted - before.Aborted; aborts != 1 {
		t.Errorf("recording aborted %d times, want exactly 1: head was not blacklisted", aborts)
	}
}
