//go:build amd64 && linux

#include "textflag.h"

// func traceEnter(code uintptr, state *uint64)
//
// Bridges Go into generated trace code. The generated code's ABI: R15 holds
// the state-buffer base for its whole run, RAX/RCX/RDX are scratch, O3
// compiles additionally use RBX/RBP/RSI/RDI/R8-R14 for pinned slots, and it
// returns with RET after storing an exit token into the buffer. Everything
// the Go ABI requires preserved is saved here; the generated code itself
// touches no stack beyond the CALL's return address, so NOSPLIT headroom is
// ample.
TEXT ·traceEnter(SB), NOSPLIT, $0-16
	PUSHQ BX
	PUSHQ BP
	PUSHQ R12
	PUSHQ R13
	PUSHQ R14
	PUSHQ R15
	MOVQ  code+0(FP), AX
	MOVQ  state+8(FP), R15
	CALL  AX
	POPQ  R15
	POPQ  R14
	POPQ  R13
	POPQ  R12
	POPQ  BP
	POPQ  BX
	RET
