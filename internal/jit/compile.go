package jit

import (
	"fmt"

	"repro/internal/emu"
	"repro/internal/ir"
	"repro/internal/trace"
	"repro/internal/x86/asm"
)

// Compiler links IR functions into the emulated address space.
type Compiler struct {
	Mem *emu.Memory
	// NamePrefix, when set, prefixes the names of placed code regions
	// ("jitcode.<prefix><func>"), so memory maps distinguish multiple
	// generations of one function (e.g. tiered execution's "t1."/"t2.").
	NamePrefix string
	// Trace, when non-nil, receives one "jit" span per CompileModule call
	// with the compiled function count and emitted code size. A nil Trace
	// records nothing.
	Trace *trace.Trace
	// Baseline selects the single-pass fused backend: instruction selection
	// and a fixed all-in-slots allocation happen in one walk over the lifted
	// IR, with no fusion analysis, no liveness fixpoint, no linear scan, and
	// no pre-compile verification. Compile latency drops by an order of
	// magnitude; code quality is comparable to an -O0 build. Used by
	// internal/fastpath for tier-1 promotions and deadline-bounded requests.
	Baseline bool
	// entries records where each compiled function was placed.
	entries map[*ir.Func]uint64
	// Sizes records the code size of each compiled function by entry.
	Sizes map[uint64]int
	// globals already materialized.
	globalsDone map[*ir.Global]bool
}

// NewCompiler returns a compiler emitting into mem.
func NewCompiler(mem *emu.Memory) *Compiler {
	return &Compiler{
		Mem:         mem,
		entries:     make(map[*ir.Func]uint64),
		Sizes:       make(map[uint64]int),
		globalsDone: make(map[*ir.Global]bool),
	}
}

// CompileModule compiles all defined functions (callees before callers when
// possible) and returns the entry address of the named function.
func (c *Compiler) CompileModule(m *ir.Module, name string) (uint64, error) {
	sp := c.Trace.Start("jit")
	entry, compiled, err := c.compileModule(m, name)
	if err != nil {
		sp.EndErr(err)
		return 0, err
	}
	sp.Int("funcs_in", int64(compiled)).Int("code_bytes", int64(c.Sizes[entry])).End()
	return entry, nil
}

func (c *Compiler) compileModule(m *ir.Module, name string) (entry uint64, compiled int, err error) {
	for _, g := range m.Globals {
		if err := c.linkGlobal(g); err != nil {
			return 0, 0, err
		}
	}
	// Compile callees first so direct call targets resolve. A simple
	// iteration suffices: compile functions whose callees are all resolved.
	remaining := make([]*ir.Func, 0, len(m.Funcs))
	for _, f := range m.Funcs {
		if len(f.Blocks) > 0 {
			remaining = append(remaining, f)
		}
	}
	for len(remaining) > 0 {
		progress := false
		var next []*ir.Func
		for _, f := range remaining {
			if c.calleesResolved(f) {
				if _, err := c.Compile(f); err != nil {
					return 0, 0, err
				}
				compiled++
				progress = true
			} else {
				next = append(next, f)
			}
		}
		if !progress {
			return 0, 0, fmt.Errorf("jit: circular or unresolved call dependencies")
		}
		remaining = next
	}
	target := m.FindFunc(name)
	if target == nil {
		return 0, 0, fmt.Errorf("jit: function %s not found", name)
	}
	entry, ok := c.entries[target]
	if !ok {
		return 0, 0, fmt.Errorf("jit: function %s was not compiled", name)
	}
	return entry, compiled, nil
}

func (c *Compiler) calleesResolved(f *ir.Func) bool {
	for _, b := range f.Blocks {
		for _, in := range b.Insts {
			if in.Op != ir.OpCall {
				continue
			}
			if _, ok := c.entries[in.Callee]; ok {
				continue
			}
			if in.Callee.Addr != 0 && len(in.Callee.Blocks) == 0 {
				continue // declaration backed by original machine code
			}
			if in.Callee == f {
				continue // recursion: resolved to own entry at link time
			}
			return false
		}
	}
	return true
}

// linkGlobal ensures the global has an address in the emulated memory.
func (c *Compiler) linkGlobal(g *ir.Global) error {
	if c.globalsDone[g] {
		return nil
	}
	if g.Addr != 0 {
		// Points into existing memory (e.g. the paper's global-base
		// heuristic or a constant region that is already mapped).
		c.globalsDone[g] = true
		return nil
	}
	size := len(g.Init)
	if size == 0 {
		size = g.Ty.Size()
	}
	if size == 0 {
		size = 8
	}
	r := c.Mem.Alloc(size, 16, "jitdata."+g.Nam)
	copy(r.Data, g.Init)
	g.Addr = r.Start
	c.globalsDone[g] = true
	return nil
}

// Compile lowers one function and places its code in memory, returning the
// entry address.
func (c *Compiler) Compile(f *ir.Func) (uint64, error) {
	if addr, ok := c.entries[f]; ok {
		return addr, nil
	}
	if len(f.Blocks) == 0 {
		return 0, fmt.Errorf("jit: cannot compile declaration %s", f.Nam)
	}
	splitCriticalEdges(f)
	foldTrivialPhis(f)
	if !c.Baseline {
		if err := ir.Verify(f); err != nil {
			return 0, fmt.Errorf("jit: pre-compile verify of %s: %w", f.Nam, err)
		}
	}

	// Two-pass assembly: measure at a provisional base, then place.
	const provisional = 0x10000000
	e, err := c.emitFunc(f, provisional, 0)
	if err != nil {
		return 0, err
	}
	region := c.Mem.Alloc(len(e), 16, "jitcode."+c.NamePrefix+f.Nam)
	final, err := c.emitFunc(f, region.Start, region.Start)
	if err != nil {
		return 0, err
	}
	if len(final) > len(region.Data) {
		return 0, fmt.Errorf("jit: code size changed between passes (%d -> %d)", len(e), len(final))
	}
	copy(region.Data, final)
	c.entries[f] = region.Start
	c.Sizes[region.Start] = len(final)
	return region.Start, nil
}

// Entry returns the compiled address of f, if any.
func (c *Compiler) Entry(f *ir.Func) (uint64, bool) {
	a, ok := c.entries[f]
	return a, ok
}

// emitFunc assembles the whole function at the given base. selfAddr is the
// final address used for recursive calls (0 during the sizing pass).
func (c *Compiler) emitFunc(f *ir.Func, base, selfAddr uint64) ([]byte, error) {
	var al *allocation
	if c.Baseline {
		al = baselineAllocate(f)
	} else {
		fused := analyzeFusion(f)
		al = allocate(f, fused)
	}
	em := &emitter{
		c:        c,
		f:        f,
		alloc:    al,
		b:        asm.NewBuilder(),
		labels:   make(map[*ir.Block]asm.Label),
		selfAddr: selfAddr,
	}
	for _, blk := range f.Blocks {
		em.labels[blk] = em.b.NewLabel()
	}
	if err := em.run(); err != nil {
		return nil, fmt.Errorf("jit: %s: %w", f.Nam, err)
	}
	code, _, err := em.b.Assemble(base)
	if err != nil {
		return nil, fmt.Errorf("jit: %s: %w", f.Nam, err)
	}
	return code, nil
}

// splitCriticalEdges inserts forwarding blocks so that every block with
// phis has predecessors whose only successor is that block — a precondition
// for placing phi-edge copies.
func splitCriticalEdges(f *ir.Func) {
	for {
		preds := f.Preds()
		split := false
		for _, b := range f.Blocks {
			if len(b.Insts) == 0 || b.Insts[0].Op != ir.OpPhi {
				continue
			}
			if len(preds[b]) < 2 {
				continue
			}
			for _, p := range preds[b] {
				if len(p.Succs()) < 2 {
					continue
				}
				// Critical edge p -> b: split.
				mid := f.NewBlock(p.Nam + ".crit." + b.Nam)
				mid.Insts = append(mid.Insts, &ir.Inst{Op: ir.OpBr, Ty: ir.Void,
					Blocks: []*ir.Block{b}, Parent: mid})
				pt := p.Term()
				for i, s := range pt.Blocks {
					if s == b {
						pt.Blocks[i] = mid
					}
				}
				for _, in := range b.Insts {
					if in.Op != ir.OpPhi {
						break
					}
					for i, inc := range in.Incoming {
						if inc == p {
							in.Incoming[i] = mid
						}
					}
				}
				split = true
				break
			}
			if split {
				break
			}
		}
		if !split {
			return
		}
	}
}

// foldTrivialPhis removes single-incoming phis.
func foldTrivialPhis(f *ir.Func) {
	repl := make(map[ir.Value]ir.Value)
	for _, b := range f.Blocks {
		out := b.Insts[:0]
		for _, in := range b.Insts {
			if in.Op == ir.OpPhi && len(in.Args) == 1 {
				repl[in] = in.Args[0]
				continue
			}
			out = append(out, in)
		}
		b.Insts = out
	}
	if len(repl) == 0 {
		return
	}
	resolve := func(v ir.Value) ir.Value {
		for {
			n, ok := repl[v]
			if !ok {
				return v
			}
			v = n
		}
	}
	for _, b := range f.Blocks {
		for _, in := range b.Insts {
			for i, a := range in.Args {
				in.Args[i] = resolve(a)
			}
		}
	}
}
