//go:build amd64 && linux

package jit

import "syscall"

// nativeTraceOK gates the native trace backend: the generated code is
// x86-64 and the allocator uses mmap, so traces fall back to the bytecode
// VM everywhere else.
const nativeTraceOK = true

// traceEnter calls generated trace code with R15 = state. Implemented in
// tracerun_amd64.s; the generated code clobbers every GP register (the
// trampoline saves the callee-saved set), uses no stack beyond the return
// address, and returns via RET after storing an exit token into the state
// buffer.
//
//go:noescape
func traceEnter(code uintptr, state *uint64)

// allocExec maps an RWX buffer holding the generated code. W^X is not a
// concern here: the emulated program never sees this mapping (it lives in
// host memory, outside the emulated address space), and the process is a
// JIT by design.
func allocExec(code []byte) ([]byte, error) {
	buf, err := syscall.Mmap(-1, 0, len(code),
		syscall.PROT_READ|syscall.PROT_WRITE|syscall.PROT_EXEC,
		syscall.MAP_ANON|syscall.MAP_PRIVATE)
	if err != nil {
		return nil, err
	}
	copy(buf, code)
	return buf, nil
}

// freeExec releases a buffer from allocExec. Called from the nativeProg
// finalizer, so the code is guaranteed unreachable (no frame can be
// executing it).
func freeExec(buf []byte) {
	if buf != nil {
		_ = syscall.Munmap(buf)
	}
}
