package jit

import (
	"fmt"

	"repro/internal/ir"
	"repro/internal/x86"
	"repro/internal/x86/asm"
)

// emitter lowers one function to machine code.
type emitter struct {
	c        *Compiler
	f        *ir.Func
	alloc    *allocation
	b        *asm.Builder
	labels   map[*ir.Block]asm.Label
	selfAddr uint64

	frame     int32
	frameless bool
	allocaOff map[*ir.Inst]int32
}

func widthOf(t *ir.Type) uint8 {
	switch {
	case t.IsPtr():
		return 8
	case t.IsInt():
		switch {
		case t.Bits <= 8:
			return 1
		case t.Bits <= 16:
			return 2
		case t.Bits <= 32:
			return 4
		default:
			return 8
		}
	case t.Kind == ir.KFloat:
		return 4
	}
	return 8
}

func (e *emitter) run() error {
	// The frame sits below the pushed callee-saved registers: bias every
	// rbp-relative slot so spills do not collide with the save area.
	bias := int32(8 * len(e.alloc.usedSaved))
	for v, l := range e.alloc.locs {
		if !l.inReg {
			l.off -= bias
			e.alloc.locs[v] = l
		}
	}

	// Assign alloca frame space.
	e.allocaOff = make(map[*ir.Inst]int32)
	e.frame = e.alloc.frameSize
	for _, blk := range e.f.Blocks {
		for _, in := range blk.Insts {
			if in.Op == ir.OpAlloca {
				size := int32(in.ElemTy.Size() * in.NElem)
				size = (size + 15) &^ 15
				e.frame += size
				e.allocaOff[in] = -(e.frame + bias)
			}
		}
	}
	if e.frame%16 != 0 {
		e.frame += 16 - e.frame%16
	}

	// Prologue. Frameless leaf functions skip it entirely.
	e.frameless = e.frame == 0 && len(e.alloc.usedSaved) == 0
	if !e.frameless {
		e.b.I(x86.PUSH, x86.R64(x86.RBP))
		e.b.I(x86.MOV, x86.R64(x86.RBP), x86.R64(x86.RSP))
		for _, r := range e.alloc.usedSaved {
			e.b.I(x86.PUSH, x86.R64(r))
		}
		if e.frame > 0 {
			e.b.I(x86.SUB, x86.R64(x86.RSP), x86.Imm(int64(e.frame), 8))
		}
	}

	// Parameter arrival moves.
	var moves []pmove
	nInt, nFP := 0, 0
	for _, p := range e.f.Params {
		home, ok := e.alloc.locs[p]
		if !ok {
			// Unused parameter.
			if classOf(p.Ty) == classXMM {
				nFP++
			} else {
				nInt++
			}
			continue
		}
		if classOf(p.Ty) == classXMM {
			src := loc{inReg: true, reg: x86.XMM0 + x86.Reg(nFP)}
			nFP++
			moves = append(moves, pmove{dst: home, cls: classXMM, srcLoc: &src})
		} else {
			if nInt >= len(intArgRegs) {
				return fmt.Errorf("too many integer parameters")
			}
			src := loc{inReg: true, reg: intArgRegs[nInt]}
			nInt++
			moves = append(moves, pmove{dst: home, cls: classGP, srcLoc: &src})
		}
	}
	if err := e.parallelMoves(moves); err != nil {
		return err
	}

	for bi, blk := range e.f.Blocks {
		e.b.Bind(e.labels[blk])
		var next *ir.Block
		if bi+1 < len(e.f.Blocks) {
			next = e.f.Blocks[bi+1]
		}
		for _, in := range blk.Insts {
			if in.Op == ir.OpPhi || e.alloc.fused[in] || e.alloc.dead[in] {
				continue
			}
			if in.IsTerminator() {
				if err := e.emitTerminator(blk, in, next); err != nil {
					return fmt.Errorf("%s: %w", ir.FormatInst(in), err)
				}
				continue
			}
			if err := e.emitInst(in); err != nil {
				return fmt.Errorf("%s: %w", ir.FormatInst(in), err)
			}
		}
	}
	return nil
}

var intArgRegs = []x86.Reg{x86.RDI, x86.RSI, x86.RDX, x86.RCX, x86.R8, x86.R9}

// ---- value staging ----

func (e *emitter) homeOf(v ir.Value) (loc, bool) {
	l, ok := e.alloc.locs[v]
	return l, ok
}

func stackOp(size uint8, off int32) x86.Operand {
	return x86.MemBD(size, x86.RBP, off)
}

// valueGP places an integer/pointer value in a register, using scratch when
// it has no register home.
func (e *emitter) valueGP(v ir.Value, scratch x86.Reg) (x86.Reg, error) {
	switch x := v.(type) {
	case *ir.Inst, *ir.Param:
		if in, ok := v.(*ir.Inst); ok && in.Op == ir.OpAlloca {
			e.b.I(x86.LEA, x86.R64(scratch), stackOp(8, e.allocaOff[in]))
			return scratch, nil
		}
		l, ok := e.homeOf(v)
		if !ok {
			return 0, fmt.Errorf("value %s has no home", v.Ident())
		}
		if l.inReg {
			return l.reg, nil
		}
		e.b.I(x86.MOV, x86.R64(scratch), stackOp(8, l.off))
		return scratch, nil
	case *ir.ConstInt:
		e.b.I(x86.MOV, x86.R64(scratch), x86.Imm(int64(x.V), 8))
		return scratch, nil
	case *ir.Global:
		e.b.I(x86.MOV, x86.R64(scratch), x86.Imm(int64(x.Addr), 8))
		return scratch, nil
	case *ir.Undef, *ir.Zero:
		e.b.I(x86.XOR, x86.R32(scratch), x86.R32(scratch))
		return scratch, nil
	case *ir.ConstFloat:
		e.b.I(x86.MOV, x86.R64(scratch), x86.Imm(int64(x.Bits()), 8))
		return scratch, nil
	}
	return 0, fmt.Errorf("cannot stage %T", v)
}

// fusedLoad returns the load instruction when v is a memory-operand-fused
// load.
func (e *emitter) fusedLoad(v ir.Value) *ir.Inst {
	if ld, ok := v.(*ir.Inst); ok && ld.Op == ir.OpLoad && e.alloc.fused[ld] {
		return ld
	}
	return nil
}

// operandTouchesScratch reports whether a memory operand references the
// emitter's scratch registers (it then cannot stay live across staging).
func operandTouchesScratch(op x86.Operand) bool {
	if op.Kind != x86.KMem {
		return false
	}
	m := op.Mem
	return m.Base == scratchGP || m.Base == scratchGP2 ||
		m.Index == scratchGP || m.Index == scratchGP2
}

// fusedLoadOperand resolves a fused load into a memory operand, or
// materializes it into the given register when the addressing mode would
// collide with later scratch use.
func (e *emitter) fusedLoadOperand(ld *ir.Inst, size uint8, gpMat, xmmMat x86.Reg) (x86.Operand, error) {
	op, err := e.memOperand(ld.Args[0], size)
	if err != nil {
		return x86.Operand{}, err
	}
	if !operandTouchesScratch(op) {
		return op, nil
	}
	if classOf(ld.Ty) == classXMM {
		mov := x86.MOVSD_X
		if ld.Ty.Kind == ir.KFloat {
			mov = x86.MOVSS_X
		}
		e.b.I(mov, x86.X(xmmMat), op)
		return x86.RegOp(xmmMat, 16), nil
	}
	e.b.I(x86.MOV, x86.RegOp(gpMat, size), op)
	return x86.RegOp(gpMat, size), nil
}

// gpSrcOperand returns an ALU source operand for v: an immediate when it is
// a small constant, the home register, the spill slot, or a staged scratch.
func (e *emitter) gpSrcOperand(v ir.Value, size uint8, scratch x86.Reg) (x86.Operand, error) {
	if c, ok := v.(*ir.ConstInt); ok {
		sv := int64(c.V)
		if size == 8 {
			sv = int64(c.V)
		} else {
			sv = int64(int32(uint32(c.V)))
		}
		if sv >= -(1<<31) && sv < 1<<31 {
			return x86.Imm(sv, size), nil
		}
	}
	switch v.(type) {
	case *ir.Inst, *ir.Param:
		if in, ok := v.(*ir.Inst); !ok || in.Op != ir.OpAlloca {
			l, ok := e.homeOf(v)
			if !ok {
				return x86.Operand{}, fmt.Errorf("value %s has no home", v.Ident())
			}
			if l.inReg {
				return x86.RegOp(l.reg, size), nil
			}
			return stackOp(size, l.off), nil
		}
	}
	r, err := e.valueGP(v, scratch)
	if err != nil {
		return x86.Operand{}, err
	}
	return x86.RegOp(r, size), nil
}

// dstGP returns the accumulator register for in's result.
func (e *emitter) dstGP(in *ir.Inst) x86.Reg {
	if l, ok := e.homeOf(in); ok && l.inReg {
		return l.reg
	}
	return scratchGP
}

// writeBackGP stores the accumulator to in's home if it is spilled.
func (e *emitter) writeBackGP(in *ir.Inst, r x86.Reg) {
	l, ok := e.homeOf(in)
	if !ok {
		return // result unused
	}
	if l.inReg {
		if l.reg != r {
			e.b.I(x86.MOV, x86.R64(l.reg), x86.R64(r))
		}
		return
	}
	e.b.I(x86.MOV, stackOp(8, l.off), x86.R64(r))
}

// moveIntoGP loads v into the specific register d.
func (e *emitter) moveIntoGP(d x86.Reg, v ir.Value) error {
	if l, ok := e.homeOf(v); ok && l.inReg && l.reg == d {
		if in, isA := v.(*ir.Inst); !isA || in.Op != ir.OpAlloca {
			return nil
		}
	}
	r, err := e.valueGP(v, d)
	if err != nil {
		return err
	}
	if r != d {
		e.b.I(x86.MOV, x86.R64(d), x86.R64(r))
	}
	return nil
}

// valueXMM places an FP/vector value in an XMM register.
func (e *emitter) valueXMM(v ir.Value, scratch x86.Reg) (x86.Reg, error) {
	switch x := v.(type) {
	case *ir.Inst, *ir.Param:
		l, ok := e.homeOf(v)
		if !ok {
			return 0, fmt.Errorf("value %s has no home", v.Ident())
		}
		if l.inReg {
			return l.reg, nil
		}
		e.b.I(x86.MOVUPS, x86.X(scratch), stackOp(16, l.off))
		return scratch, nil
	case *ir.ConstFloat:
		if x.V == 0 {
			e.b.I(x86.PXOR, x86.X(scratch), x86.X(scratch))
			return scratch, nil
		}
		e.b.I(x86.MOV, x86.R64(scratchGP2), x86.Imm(int64(x.Bits()), 8))
		if x.Ty.Kind == ir.KFloat {
			e.b.I(x86.MOVD, x86.X(scratch), x86.R32(scratchGP2))
		} else {
			e.b.I(x86.MOVQGP, x86.X(scratch), x86.R64(scratchGP2))
		}
		return scratch, nil
	case *ir.ConstInt:
		if x.V == 0 && x.Hi == 0 {
			e.b.I(x86.PXOR, x86.X(scratch), x86.X(scratch))
			return scratch, nil
		}
		e.b.I(x86.MOV, x86.R64(scratchGP2), x86.Imm(int64(x.V), 8))
		e.b.I(x86.MOVQGP, x86.X(scratch), x86.R64(scratchGP2))
		if x.Hi != 0 {
			e.b.I(x86.MOV, x86.R64(scratchGP2), x86.Imm(int64(x.Hi), 8))
			e.b.I(x86.MOVQGP, x86.X(scratchXMM2), x86.R64(scratchGP2))
			e.b.I(x86.PUNPCKLQDQ, x86.X(scratch), x86.X(scratchXMM2))
		}
		return scratch, nil
	case *ir.Undef, *ir.Zero:
		e.b.I(x86.PXOR, x86.X(scratch), x86.X(scratch))
		return scratch, nil
	}
	return 0, fmt.Errorf("cannot stage %T in xmm", v)
}

// dstXMM returns the accumulator XMM register for in.
func (e *emitter) dstXMM(in *ir.Inst) x86.Reg {
	if l, ok := e.homeOf(in); ok && l.inReg {
		return l.reg
	}
	return scratchXMM
}

func (e *emitter) writeBackXMM(in *ir.Inst, r x86.Reg) {
	l, ok := e.homeOf(in)
	if !ok {
		return
	}
	if l.inReg {
		if l.reg != r {
			e.b.I(x86.MOVAPS, x86.X(l.reg), x86.X(r))
		}
		return
	}
	e.b.I(x86.MOVUPS, stackOp(16, l.off), x86.X(r))
}

// moveIntoXMM loads v into the specific XMM register d.
func (e *emitter) moveIntoXMM(d x86.Reg, v ir.Value) error {
	if l, ok := e.homeOf(v); ok && l.inReg && l.reg == d {
		return nil
	}
	r, err := e.valueXMM(v, d)
	if err != nil {
		return err
	}
	if r != d {
		e.b.I(x86.MOVAPS, x86.X(d), x86.X(r))
	}
	return nil
}

// ---- address handling ----

// stripFusedCasts looks through fused register-aliasing casts (pointer
// bitcasts, inttoptr, ptrtoint).
func (e *emitter) stripFusedCasts(v ir.Value) ir.Value {
	for {
		in, ok := v.(*ir.Inst)
		if !ok || !e.alloc.fused[in] {
			return v
		}
		switch in.Op {
		case ir.OpBitcast, ir.OpIntToPtr, ir.OpPtrToInt:
			v = in.Args[0]
		default:
			return v
		}
	}
}

// memOperand builds an addressing-mode operand for a load at ptr, resolving
// the fused address chain (bitcasts, one GEP, a constant index adjustment)
// into a single [base + index*scale + disp] form.
func (e *emitter) memOperand(ptr ir.Value, size uint8) (x86.Operand, error) {
	ptr = e.stripFusedCasts(ptr)
	if g, ok := ptr.(*ir.Inst); ok && g.Op == ir.OpGEP && e.alloc.fused[g] {
		baseV := e.stripFusedCasts(g.Args[0])
		elem := int64(g.ElemTy.Size())
		// Constant displacement folded from the index expression.
		idxV := e.stripFusedCasts(g.Args[1])
		disp := int64(0)
		if ai, ok := idxV.(*ir.Inst); ok && ai.Op == ir.OpAdd && e.alloc.fused[ai] {
			if c, isC := ai.Args[1].(*ir.ConstInt); isC {
				disp = int64(c.V) * elem
				idxV = ai.Args[0]
			}
		}
		// Absolute addressing for global bases with constant indices.
		if gl, ok := baseV.(*ir.Global); ok && gl.Addr != 0 {
			if c, isC := idxV.(*ir.ConstInt); isC {
				abs := int64(gl.Addr) + int64(c.V)*elem + disp
				if abs >= 0 && abs < 1<<31 {
					return x86.MemAbs(size, int32(abs)), nil
				}
			}
		}
		base, err := e.valueGP(baseV, scratchGP)
		if err != nil {
			return x86.Operand{}, err
		}
		if c, isC := idxV.(*ir.ConstInt); isC {
			d := int64(c.V)*elem + disp
			if d >= -(1<<31) && d < 1<<31 {
				return x86.MemBD(size, base, int32(d)), nil
			}
		} else if disp >= -(1<<31) && disp < 1<<31 {
			idx, err := e.valueGP(idxV, scratchGP2)
			if err != nil {
				return x86.Operand{}, err
			}
			return x86.MemBIS(size, base, idx, uint8(elem), int32(disp)), nil
		}
	}
	if g, ok := ptr.(*ir.Global); ok {
		if g.Addr != 0 && g.Addr < 1<<31 {
			return x86.MemAbs(size, int32(g.Addr)), nil
		}
	}
	r, err := e.valueGP(ptr, scratchGP)
	if err != nil {
		return x86.Operand{}, err
	}
	return x86.MemBD(size, r, 0), nil
}

// memAddrInto collapses the full address into the given register, freeing
// the other scratch for value staging (used by stores).
func (e *emitter) memAddrInto(ptr ir.Value, d x86.Reg) error {
	op, err := e.memOperand(ptr, 8)
	if err != nil {
		return err
	}
	if op.Kind == x86.KMem && op.Mem.Index == x86.NoReg && op.Mem.Disp == 0 && op.Mem.Base != x86.NoReg {
		if op.Mem.Base != d {
			e.b.I(x86.MOV, x86.R64(d), x86.R64(op.Mem.Base))
		}
		return nil
	}
	e.b.I(x86.LEA, x86.R64(d), op)
	return nil
}

// ---- condition handling ----

var predCond = map[ir.Pred]x86.Cond{
	ir.PredEQ: x86.CondE, ir.PredNE: x86.CondNE,
	ir.PredSLT: x86.CondL, ir.PredSLE: x86.CondLE,
	ir.PredSGT: x86.CondG, ir.PredSGE: x86.CondGE,
	ir.PredULT: x86.CondB, ir.PredULE: x86.CondBE,
	ir.PredUGT: x86.CondA, ir.PredUGE: x86.CondAE,
}

// emitCmp emits the flag-setting comparison for an icmp and returns the
// condition code to test.
func (e *emitter) emitCmp(ic *ir.Inst) (x86.Cond, error) {
	size := widthOf(ic.Args[0].Type())
	// The fused-load operand must be resolved before staging a, so that a
	// scratch-register materialization cannot clobber it.
	var bOp x86.Operand
	var err error
	if ld := e.fusedLoad(ic.Args[1]); ld != nil {
		bOp, err = e.fusedLoadOperand(ld, size, scratchGP2, scratchXMM2)
	} else {
		bOp, err = e.gpSrcOperand(ic.Args[1], size, scratchGP2)
	}
	if err != nil {
		return 0, err
	}
	a, err := e.valueGP(ic.Args[0], scratchGP)
	if err != nil {
		return 0, err
	}
	e.b.I(x86.CMP, x86.RegOp(a, size), bOp)
	cond, ok := predCond[ic.Pred]
	if !ok {
		return 0, fmt.Errorf("unsupported icmp predicate %s", ic.Pred)
	}
	return cond, nil
}

// emitFCmp emits a ucomisd/ucomiss and materializes the i1 result in dst.
func (e *emitter) emitFCmp(in *ir.Inst) error {
	isF32 := in.Args[0].Type().Kind == ir.KFloat
	comi := x86.UCOMISD
	if isF32 {
		comi = x86.UCOMISS
	}
	a, b := in.Args[0], in.Args[1]
	swap := false
	var cond x86.Cond
	switch in.Pred {
	case ir.PredOLT:
		swap, cond = true, x86.CondA
	case ir.PredOLE:
		swap, cond = true, x86.CondAE
	case ir.PredOGT:
		cond = x86.CondA
	case ir.PredOGE:
		cond = x86.CondAE
	case ir.PredUNO:
		cond = x86.CondP
	case ir.PredOEQ, ir.PredONE:
		// handled below
	default:
		return fmt.Errorf("unsupported fcmp predicate %s", in.Pred)
	}
	if swap {
		a, b = b, a
	}
	ra, err := e.valueXMM(a, scratchXMM)
	if err != nil {
		return err
	}
	rb, err := e.valueXMM(b, scratchXMM2)
	if err != nil {
		return err
	}
	e.b.I(comi, x86.X(ra), x86.X(rb))
	d := e.dstGP(in)
	switch in.Pred {
	case ir.PredOEQ:
		// ZF=1 and PF=0.
		e.b.Emit(x86.Inst{Op: x86.SETCC, Cond: x86.CondE, Dst: x86.R8L(d)})
		e.b.Emit(x86.Inst{Op: x86.SETCC, Cond: x86.CondNP, Dst: x86.R8L(scratchGP2)})
		e.b.I(x86.AND, x86.R8L(d), x86.R8L(scratchGP2))
	case ir.PredONE:
		// ZF=0 and PF=0.
		e.b.Emit(x86.Inst{Op: x86.SETCC, Cond: x86.CondNE, Dst: x86.R8L(d)})
		e.b.Emit(x86.Inst{Op: x86.SETCC, Cond: x86.CondNP, Dst: x86.R8L(scratchGP2)})
		e.b.I(x86.AND, x86.R8L(d), x86.R8L(scratchGP2))
	default:
		e.b.Emit(x86.Inst{Op: x86.SETCC, Cond: cond, Dst: x86.R8L(d)})
	}
	e.b.I(x86.MOVZX, x86.R32(d), x86.R8L(d))
	e.writeBackGP(in, d)
	return nil
}

// ---- terminators ----

func (e *emitter) emitTerminator(blk *ir.Block, in *ir.Inst, next *ir.Block) error {
	switch in.Op {
	case ir.OpRet:
		if len(in.Args) > 0 {
			v := in.Args[0]
			if classOf(v.Type()) == classXMM {
				if err := e.moveIntoXMM(x86.XMM0, v); err != nil {
					return err
				}
			} else {
				if err := e.moveIntoGP(x86.RAX, v); err != nil {
					return err
				}
			}
		}
		e.emitEpilogue()
		return nil

	case ir.OpBr:
		dst := in.Blocks[0]
		if err := e.emitEdgeMoves(blk, dst); err != nil {
			return err
		}
		if dst != next {
			e.b.Jmp(e.labels[dst])
		}
		return nil

	case ir.OpCondBr:
		taken, other := in.Blocks[0], in.Blocks[1]
		var cond x86.Cond
		if ic, ok := in.Args[0].(*ir.Inst); ok && e.alloc.fused[ic] {
			c, err := e.emitCmp(ic)
			if err != nil {
				return err
			}
			cond = c
		} else {
			r, err := e.valueGP(in.Args[0], scratchGP)
			if err != nil {
				return err
			}
			e.b.I(x86.TEST, x86.R8L(r), x86.R8L(r))
			cond = x86.CondNE
		}
		// Phi-bearing successors have this block as their only pred and we
		// ended with an unconditional br after edge splitting, so no moves
		// are needed here.
		if other == next {
			e.b.Jcc(cond, e.labels[taken])
			return nil
		}
		if taken == next {
			e.b.Jcc(cond.Negate(), e.labels[other])
			return nil
		}
		e.b.Jcc(cond, e.labels[taken])
		e.b.Jmp(e.labels[other])
		return nil

	case ir.OpUnreachable:
		e.b.I(x86.UD2)
		return nil
	}
	return fmt.Errorf("unsupported terminator")
}

func (e *emitter) emitEpilogue() {
	if !e.frameless {
		if e.frame > 0 {
			e.b.I(x86.ADD, x86.R64(x86.RSP), x86.Imm(int64(e.frame), 8))
		}
		for i := len(e.alloc.usedSaved) - 1; i >= 0; i-- {
			e.b.I(x86.POP, x86.R64(e.alloc.usedSaved[i]))
		}
		e.b.I(x86.POP, x86.R64(x86.RBP))
	}
	e.b.Ret()
}

// emitEdgeMoves performs the parallel phi copies for the edge blk -> dst.
func (e *emitter) emitEdgeMoves(blk, dst *ir.Block) error {
	var moves []pmove
	for _, in := range dst.Insts {
		if in.Op != ir.OpPhi {
			break
		}
		home, ok := e.homeOf(in)
		if !ok {
			continue // dead phi
		}
		var src ir.Value
		for k, inc := range in.Incoming {
			if inc == blk {
				src = in.Args[k]
				break
			}
		}
		if src == nil {
			return fmt.Errorf("phi %s has no incoming for %s", in.Ident(), blk.Nam)
		}
		m := pmove{dst: home, cls: classOf(in.Ty), srcVal: src}
		if sl, ok := e.homeOf(src); ok {
			if _, isAlloca := allocaInst(src); !isAlloca {
				m.srcLoc = &sl
				m.srcVal = src
			}
		}
		moves = append(moves, m)
	}
	return e.parallelMoves(moves)
}

func allocaInst(v ir.Value) (*ir.Inst, bool) {
	in, ok := v.(*ir.Inst)
	if ok && in.Op == ir.OpAlloca {
		return in, true
	}
	return nil, false
}
