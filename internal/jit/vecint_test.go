package jit

import (
	"encoding/binary"
	"testing"

	"repro/internal/emu"
	"repro/internal/ir"
)

// writeLanes32 stores four uint32 lanes at addr.
func writeLanes32(t *testing.T, mem *emu.Memory, addr uint64, lanes [4]uint32) {
	t.Helper()
	bts, err := mem.Bytes(addr, 16)
	if err != nil {
		t.Fatal(err)
	}
	for i, u := range lanes {
		binary.LittleEndian.PutUint32(bts[4*i:], u)
	}
}

// readLanes32 loads four uint32 lanes from addr.
func readLanes32(t *testing.T, mem *emu.Memory, addr uint64) [4]uint32 {
	t.Helper()
	bts, err := mem.Bytes(addr, 16)
	if err != nil {
		t.Fatal(err)
	}
	var out [4]uint32
	for i := range out {
		out[i] = binary.LittleEndian.Uint32(bts[4*i:])
	}
	return out
}

// TestVectorIntBin4x32 exercises the packed-integer ALU table (paddd/psubd
// and friends) on <4 x i32> values: load two vectors, combine, store.
func TestVectorIntBin4x32(t *testing.T) {
	a := [4]uint32{10, 20, 0xFFFFFFFF, 7}
	bv := [4]uint32{1, 25, 1, 0x80000000}
	cases := []struct {
		op   ir.Op
		want [4]uint32
	}{
		{ir.OpAdd, [4]uint32{11, 45, 0, 0x80000007}},
		{ir.OpSub, [4]uint32{9, 0xFFFFFFFB, 0xFFFFFFFE, 0x80000007}},
		{ir.OpAnd, [4]uint32{0, 16, 1, 0}},
		{ir.OpOr, [4]uint32{11, 29, 0xFFFFFFFF, 0x80000007}},
		{ir.OpXor, [4]uint32{11, 13, 0xFFFFFFFE, 0x80000007}},
	}
	v4 := ir.VecOf(ir.I32, 4)
	for _, c := range cases {
		f := ir.NewFunc("vi", ir.Void, ir.PtrTo(ir.I8), ir.PtrTo(ir.I8), ir.PtrTo(ir.I8))
		b := ir.NewBuilder(f)
		va := b.Load(v4, b.Bitcast(f.Params[0], ir.PtrTo(v4)))
		vb := b.Load(v4, b.Bitcast(f.Params[1], ir.PtrTo(v4)))
		var r ir.Value
		switch c.op {
		case ir.OpAdd:
			r = b.Add(va, vb)
		case ir.OpSub:
			r = b.Sub(va, vb)
		case ir.OpAnd:
			r = b.And(va, vb)
		case ir.OpOr:
			r = b.Or(va, vb)
		case ir.OpXor:
			r = b.Xor(va, vb)
		}
		b.Store(r, b.Bitcast(f.Params[2], ir.PtrTo(v4)))
		b.Ret(nil)

		mem := emu.NewMemory(0x1000000)
		pa := mem.Alloc(16, 16, "a").Start
		pb := mem.Alloc(16, 16, "b").Start
		pc := mem.Alloc(16, 16, "c").Start
		writeLanes32(t, mem, pa, a)
		writeLanes32(t, mem, pb, bv)
		compileAndRun(t, mem, f, []uint64{pa, pb, pc}, nil)
		if got := readLanes32(t, mem, pc); got != c.want {
			t.Errorf("%v: got %v, want %v", c.op, got, c.want)
		}
	}
}

// TestVectorIntBinAliasedDst: the second operand's home register equals the
// destination — the emitter must park it for non-commutative sub.
func TestVectorIntBinAliasedDst(t *testing.T) {
	v4 := ir.VecOf(ir.I32, 4)
	f := ir.NewFunc("alias", ir.Void, ir.PtrTo(ir.I8), ir.PtrTo(ir.I8))
	b := ir.NewBuilder(f)
	v := b.Load(v4, b.Bitcast(f.Params[0], ir.PtrTo(v4)))
	dbl := b.Add(v, v) // dst likely shares v's register
	dif := b.Sub(dbl, v)
	sum := b.Add(dif, dif)
	b.Store(b.Sub(sum, dif), b.Bitcast(f.Params[1], ir.PtrTo(v4)))
	b.Ret(nil)

	mem := emu.NewMemory(0x1000000)
	pa := mem.Alloc(16, 16, "a").Start
	pb := mem.Alloc(16, 16, "b").Start
	writeLanes32(t, mem, pa, [4]uint32{3, 5, 7, 11})
	compileAndRun(t, mem, f, []uint64{pa, pb}, nil)
	// ((2v - v)*2) - v = v
	if got := readLanes32(t, mem, pb); got != [4]uint32{3, 5, 7, 11} {
		t.Errorf("aliased vector chain: got %v", got)
	}
}

// TestShuffle4x32Unpack covers unpcklps ([0,4,1,5]), pshufd (single-source
// permutes), and the shufps two-source shape on <4 x float>.
func TestShuffle4x32Unpack(t *testing.T) {
	v4 := ir.VecOf(ir.Float, 4)
	masks := [][]int{
		{0, 4, 1, 5}, // unpcklps
		{3, 2, 1, 0}, // pshufd
		{2, 2, 0, 0}, // pshufd with repeats
		{0, 1, 4, 5}, // shufps: low from a, low from b
		{1, 0, 6, 7}, // shufps mixed
	}
	src := [4]uint32{0x3F800000, 0x40000000, 0x40400000, 0x40800000} // 1,2,3,4
	srb := [4]uint32{0x40A00000, 0x40C00000, 0x40E00000, 0x41000000} // 5,6,7,8
	lane := func(i int) uint32 {
		if i < 4 {
			return src[i]
		}
		return srb[i-4]
	}
	for _, mask := range masks {
		f := ir.NewFunc("shuf", ir.Void, ir.PtrTo(ir.I8), ir.PtrTo(ir.I8), ir.PtrTo(ir.I8))
		b := ir.NewBuilder(f)
		va := b.Load(v4, b.Bitcast(f.Params[0], ir.PtrTo(v4)))
		vb := b.Load(v4, b.Bitcast(f.Params[1], ir.PtrTo(v4)))
		sh := b.ShuffleVector(va, vb, mask)
		b.Store(sh, b.Bitcast(f.Params[2], ir.PtrTo(v4)))
		b.Ret(nil)

		mem := emu.NewMemory(0x1000000)
		pa := mem.Alloc(16, 16, "a").Start
		pb := mem.Alloc(16, 16, "b").Start
		pc := mem.Alloc(16, 16, "c").Start
		writeLanes32(t, mem, pa, src)
		writeLanes32(t, mem, pb, srb)
		compileAndRun(t, mem, f, []uint64{pa, pb, pc}, nil)
		got := readLanes32(t, mem, pc)
		var want [4]uint32
		for i, m := range mask {
			want[i] = lane(m)
		}
		if got != want {
			t.Errorf("mask %v: got %#v, want %#v", mask, got, want)
		}
	}
}

// TestI128AddRejected: the backend declines i128 add/sub instead of
// miscompiling them.
func TestI128AddRejected(t *testing.T) {
	f := ir.NewFunc("w", ir.Void, ir.PtrTo(ir.I8), ir.PtrTo(ir.I8))
	b := ir.NewBuilder(f)
	v := b.Load(ir.I128, b.Bitcast(f.Params[0], ir.PtrTo(ir.I128)))
	b.Store(b.Add(v, v), b.Bitcast(f.Params[1], ir.PtrTo(ir.I128)))
	b.Ret(nil)
	mem := emu.NewMemory(0x1000000)
	c := NewCompiler(mem)
	if _, err := c.Compile(f); err == nil {
		t.Error("i128 add must be rejected")
	}
}

// TestInsertElementLanes writes each lane of a v4f32 in turn.
func TestInsertElementLanes(t *testing.T) {
	v4 := ir.VecOf(ir.Float, 4)
	for lane := 0; lane < 4; lane++ {
		f := ir.NewFunc("ins", ir.Void, ir.PtrTo(ir.I8), ir.PtrTo(ir.I8))
		b := ir.NewBuilder(f)
		v := b.Load(v4, b.Bitcast(f.Params[0], ir.PtrTo(v4)))
		nv := b.InsertElement(v, ir.FltT(ir.Float, 9), lane)
		b.Store(nv, b.Bitcast(f.Params[1], ir.PtrTo(v4)))
		b.Ret(nil)

		mem := emu.NewMemory(0x1000000)
		pa := mem.Alloc(16, 16, "a").Start
		pb := mem.Alloc(16, 16, "b").Start
		src := [4]uint32{0x3F800000, 0x40000000, 0x40400000, 0x40800000}
		writeLanes32(t, mem, pa, src)
		compileAndRun(t, mem, f, []uint64{pa, pb}, nil)
		got := readLanes32(t, mem, pb)
		want := src
		want[lane] = 0x41100000 // 9.0f
		if got != want {
			t.Errorf("lane %d: got %#v, want %#v", lane, got, want)
		}
	}
}

// TestCompilerEntryLookup: Entry reports compiled addresses per function.
func TestCompilerEntryLookup(t *testing.T) {
	f := ir.NewFunc("one", ir.I64)
	b := ir.NewBuilder(f)
	b.Ret(ir.Int(ir.I64, 1))
	other := ir.NewFunc("other", ir.I64)

	mem := emu.NewMemory(0x1000000)
	c := NewCompiler(mem)
	addr, err := c.Compile(f)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := c.Entry(f)
	if !ok || got != addr {
		t.Errorf("Entry(f) = %#x, %v; want %#x, true", got, ok, addr)
	}
	if _, ok := c.Entry(other); ok {
		t.Error("Entry must miss for uncompiled functions")
	}
}

// TestLinkGlobalWithInitializer: a module global without a fixed address
// gets placed in memory with its initializer; loads through it read that
// data.
func TestLinkGlobalWithInitializer(t *testing.T) {
	g := &ir.Global{Nam: "table", Ty: ir.I64, Init: []byte{
		0x2A, 0, 0, 0, 0, 0, 0, 0, // 42
		0x07, 0, 0, 0, 0, 0, 0, 0, // 7
	}}
	m := &ir.Module{}
	m.AddGlobal(g)
	f := ir.NewFunc("rd", ir.I64, ir.I64)
	b := ir.NewBuilder(f)
	p := b.GEP(ir.I64, g, f.Params[0])
	b.Ret(b.Load(ir.I64, p))
	m.AddFunc(f)

	mem := emu.NewMemory(0x1000000)
	c := NewCompiler(mem)
	entry, err := c.CompileModule(m, "rd")
	if err != nil {
		t.Fatal(err)
	}
	if g.Addr == 0 {
		t.Fatal("global not placed")
	}
	em := emu.NewMachine(mem)
	for i, want := range []uint64{42, 7} {
		got, err := em.Call(entry, emu.CallArgs{Ints: []uint64{uint64(i)}}, 1000)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("table[%d] = %d, want %d", i, got, want)
		}
	}
}
