package jit

import (
	"testing"
	"testing/quick"

	"repro/internal/abi"
	"repro/internal/emu"
	"repro/internal/ir"
	"repro/internal/lift"
	"repro/internal/opt"
	"repro/internal/x86"
	"repro/internal/x86/asm"
)

// compileAndRun compiles f into a fresh machine and calls it.
func compileAndRun(t *testing.T, mem *emu.Memory, f *ir.Func, ints []uint64, fps []float64) (uint64, *emu.Machine) {
	t.Helper()
	c := NewCompiler(mem)
	entry, err := c.Compile(f)
	if err != nil {
		t.Fatalf("compile: %v\n%s", err, ir.FormatFunc(f))
	}
	m := emu.NewMachine(mem)
	got, err := m.Call(entry, emu.CallArgs{Ints: ints, Floats: fps}, 1_000_000)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, ir.FormatFunc(f))
	}
	return got, m
}

func TestCompileMax(t *testing.T) {
	f := ir.NewFunc("max", ir.I64, ir.I64, ir.I64)
	b := ir.NewBuilder(f)
	lt := b.ICmp(ir.PredSLT, f.Params[0], f.Params[1])
	b.Ret(b.Select(lt, f.Params[1], f.Params[0]))
	mem := emu.NewMemory(0x1000000)
	cases := [][3]int64{{1, 2, 2}, {9, 3, 9}, {-5, -9, -5}, {0, 0, 0}}
	for _, cse := range cases {
		got, _ := compileAndRun(t, emu.NewMemory(0x1000000), f, []uint64{uint64(cse[0]), uint64(cse[1])}, nil)
		if int64(got) != cse[2] {
			t.Errorf("max(%d,%d) = %d, want %d", cse[0], cse[1], int64(got), cse[2])
		}
	}
	_ = mem
}

func TestCompileLoopSum(t *testing.T) {
	f := ir.NewFunc("sum", ir.I64, ir.I64)
	b := ir.NewBuilder(f)
	entry := b.Cur
	loop := f.NewBlock("loop")
	body := f.NewBlock("body")
	exit := f.NewBlock("exit")
	b.Br(loop)
	b.SetBlock(loop)
	i := b.Phi(ir.I64)
	s := b.Phi(ir.I64)
	b.CondBr(b.ICmp(ir.PredSLT, i, f.Params[0]), body, exit)
	b.SetBlock(body)
	s2 := b.Add(s, i)
	i2 := b.Add(i, ir.Int(ir.I64, 1))
	b.Br(loop)
	ir.AddIncoming(i, ir.Int(ir.I64, 0), entry)
	ir.AddIncoming(i, i2, body)
	ir.AddIncoming(s, ir.Int(ir.I64, 0), entry)
	ir.AddIncoming(s, s2, body)
	b.SetBlock(exit)
	b.Ret(s)

	for _, n := range []uint64{0, 1, 10, 1000} {
		got, _ := compileAndRun(t, emu.NewMemory(0x1000000), f, []uint64{n}, nil)
		if got != n*(n-1)/2 {
			t.Errorf("sum(%d) = %d", n, got)
		}
	}
}

func TestCompileFloatKernel(t *testing.T) {
	// out = a*x + y with doubles.
	f := ir.NewFunc("axpy", ir.Double, ir.Double, ir.Double, ir.Double)
	b := ir.NewBuilder(f)
	b.Ret(b.FAdd(b.FMul(f.Params[0], f.Params[1]), f.Params[2]))
	mem := emu.NewMemory(0x1000000)
	c := NewCompiler(mem)
	entry, err := c.Compile(f)
	if err != nil {
		t.Fatal(err)
	}
	m := emu.NewMachine(mem)
	_, err = m.Call(entry, emu.CallArgs{Floats: []float64{3, 4, 5}}, 1000)
	if err != nil {
		t.Fatal(err)
	}
	got := m.XMM[0]
	want := emu.XMMReg{Lo: f64b(17)}
	if got.Lo != want.Lo {
		t.Errorf("axpy(3,4,5) = %x, want %x", got.Lo, want.Lo)
	}
}

func f64b(v float64) uint64 {
	return ir.RVFloat(v).Lo
}

func TestCompileMemoryOps(t *testing.T) {
	// f(p, i) = p[i] + p[i+1], doubles.
	f := ir.NewFunc("pair", ir.Double, ir.PtrTo(ir.I8), ir.I64)
	b := ir.NewBuilder(f)
	dp := b.Bitcast(f.Params[0], ir.PtrTo(ir.Double))
	l0 := b.Load(ir.Double, b.GEP(ir.Double, dp, f.Params[1]))
	l1 := b.Load(ir.Double, b.GEP(ir.Double, dp, b.Add(f.Params[1], ir.Int(ir.I64, 1))))
	b.Ret(b.FAdd(l0, l1))

	mem := emu.NewMemory(0x1000000)
	buf := mem.Alloc(64, 16, "buf")
	mem.WriteFloat64(buf.Start+16, 1.5)
	mem.WriteFloat64(buf.Start+24, 2.25)
	c := NewCompiler(mem)
	entry, err := c.Compile(f)
	if err != nil {
		t.Fatal(err)
	}
	m := emu.NewMachine(mem)
	if _, err := m.Call(entry, emu.CallArgs{Ints: []uint64{buf.Start, 2}}, 1000); err != nil {
		t.Fatal(err)
	}
	if got := m.XMM[0].Lo; got != f64b(3.75) {
		t.Errorf("pair = %x, want %x", got, f64b(3.75))
	}
}

func TestCompileStore(t *testing.T) {
	f := ir.NewFunc("st", ir.Void, ir.PtrTo(ir.I8), ir.I64)
	b := ir.NewBuilder(f)
	p := b.Bitcast(f.Params[0], ir.PtrTo(ir.I64))
	b.Store(b.Mul(f.Params[1], ir.Int(ir.I64, 3)), p)
	b.Store(ir.Int(ir.I64, 77), b.GEP(ir.I64, p, ir.Int(ir.I64, 1)))
	b.Ret(nil)
	mem := emu.NewMemory(0x1000000)
	buf := mem.Alloc(64, 16, "buf")
	c := NewCompiler(mem)
	entry, err := c.Compile(f)
	if err != nil {
		t.Fatal(err)
	}
	m := emu.NewMachine(mem)
	if _, err := m.Call(entry, emu.CallArgs{Ints: []uint64{buf.Start, 14}}, 1000); err != nil {
		t.Fatal(err)
	}
	v0, _ := mem.ReadU(buf.Start, 8)
	v1, _ := mem.ReadU(buf.Start+8, 8)
	if v0 != 42 || v1 != 77 {
		t.Errorf("stored %d, %d; want 42, 77", v0, v1)
	}
}

func TestCompileAlloca(t *testing.T) {
	f := ir.NewFunc("spill", ir.I64, ir.I64)
	b := ir.NewBuilder(f)
	a := b.Alloca(ir.I64, 4)
	slot := b.GEP(ir.I64, a, ir.Int(ir.I64, 2))
	b.Store(f.Params[0], slot)
	v := b.Load(ir.I64, slot)
	b.Ret(b.Add(v, ir.Int(ir.I64, 1)))
	got, _ := compileAndRun(t, emu.NewMemory(0x1000000), f, []uint64{41}, nil)
	if got != 42 {
		t.Errorf("got %d, want 42", got)
	}
}

func TestCompileCall(t *testing.T) {
	g := ir.NewFunc("twice", ir.I64, ir.I64)
	gb := ir.NewBuilder(g)
	gb.Ret(gb.Add(g.Params[0], g.Params[0]))

	f := ir.NewFunc("caller", ir.I64, ir.I64)
	fb := ir.NewBuilder(f)
	c1 := fb.Call(g, f.Params[0])
	c2 := fb.Call(g, c1)
	fb.Ret(fb.Add(c2, ir.Int(ir.I64, 1)))

	m := &ir.Module{}
	m.AddFunc(g)
	m.AddFunc(f)
	mem := emu.NewMemory(0x1000000)
	c := NewCompiler(mem)
	entry, err := c.CompileModule(m, "caller")
	if err != nil {
		t.Fatal(err)
	}
	mach := emu.NewMachine(mem)
	got, err := mach.Call(entry, emu.CallArgs{Ints: []uint64{5}}, 10000)
	if err != nil {
		t.Fatal(err)
	}
	if got != 21 {
		t.Errorf("caller(5) = %d, want 21", got)
	}
}

func TestCompileVectorOps(t *testing.T) {
	v2 := ir.VecOf(ir.Double, 2)
	f := ir.NewFunc("vsum", ir.Double, ir.PtrTo(ir.I8))
	b := ir.NewBuilder(f)
	vp := b.Bitcast(f.Params[0], ir.PtrTo(v2))
	v := b.Load(v2, vp)
	dbl := b.FAdd(v, v)
	sw := b.ShuffleVector(dbl, ir.UndefOf(v2), []int{1, 0})
	tot := b.FAdd(dbl, sw)
	b.Ret(b.ExtractElement(tot, 0))

	mem := emu.NewMemory(0x1000000)
	buf := mem.Alloc(16, 16, "buf")
	mem.WriteFloat64(buf.Start, 3)
	mem.WriteFloat64(buf.Start+8, 4)
	c := NewCompiler(mem)
	entry, err := c.Compile(f)
	if err != nil {
		t.Fatal(err)
	}
	m := emu.NewMachine(mem)
	if _, err := m.Call(entry, emu.CallArgs{Ints: []uint64{buf.Start}}, 1000); err != nil {
		t.Fatal(err)
	}
	if m.XMM[0].Lo != f64b(14) {
		t.Errorf("vsum = %x, want %x (14.0)", m.XMM[0].Lo, f64b(14))
	}
}

func TestCompileFCmpPredicates(t *testing.T) {
	mk := func(p ir.Pred) *ir.Func {
		f := ir.NewFunc("fc", ir.I64, ir.Double, ir.Double)
		b := ir.NewBuilder(f)
		c := b.FCmp(p, f.Params[0], f.Params[1])
		b.Ret(b.ZExt(c, ir.I64))
		return f
	}
	cases := []struct {
		p    ir.Pred
		a, b float64
		want uint64
	}{
		{ir.PredOLT, 1, 2, 1}, {ir.PredOLT, 2, 1, 0}, {ir.PredOLT, 2, 2, 0},
		{ir.PredOLE, 2, 2, 1}, {ir.PredOGT, 3, 2, 1}, {ir.PredOGE, 2, 3, 0},
		{ir.PredOEQ, 5, 5, 1}, {ir.PredOEQ, 5, 6, 0},
		{ir.PredONE, 5, 6, 1}, {ir.PredONE, 5, 5, 0},
	}
	for _, cse := range cases {
		f := mk(cse.p)
		got, _ := compileAndRun(t, emu.NewMemory(0x1000000), f, nil, []float64{cse.a, cse.b})
		if got != cse.want {
			t.Errorf("fcmp %s(%g,%g) = %d, want %d", cse.p, cse.a, cse.b, got, cse.want)
		}
	}
}

// TestFullPipelineRoundTrip is the core integration test: machine code is
// lifted, optimized at -O3, JIT-compiled, and must compute the same results
// as the original on the same emulator.
func TestFullPipelineRoundTrip(t *testing.T) {
	const codeBase = 0x401000
	b := asm.NewBuilder()
	// f(in, out, i): out[i] = 0.25*(in[i-1] + in[i+1]) ; returns i*2
	b.I(x86.MOVSD_X, x86.X(x86.XMM0), x86.MemBIS(8, x86.RDI, x86.RDX, 8, -8))
	b.I(x86.ADDSD, x86.X(x86.XMM0), x86.MemBIS(8, x86.RDI, x86.RDX, 8, 8))
	b.I(x86.MOV, x86.R64(x86.RAX), x86.Imm(0x3FD0000000000000, 8))
	b.I(x86.MOVQGP, x86.X(x86.XMM1), x86.R64(x86.RAX))
	b.I(x86.MULSD, x86.X(x86.XMM0), x86.X(x86.XMM1))
	b.I(x86.MOVSD_X, x86.MemBIS(8, x86.RSI, x86.RDX, 8, 0), x86.X(x86.XMM0))
	b.I(x86.LEA, x86.R64(x86.RAX), x86.MemBIS(8, x86.RDX, x86.RDX, 1, 0))
	b.Ret()
	code, _, err := b.Assemble(codeBase)
	if err != nil {
		t.Fatal(err)
	}
	mem := emu.NewMemory(0x10000000)
	if _, err := mem.MapBytes(codeBase, code, "code"); err != nil {
		t.Fatal(err)
	}
	in := mem.Alloc(16*8, 16, "in")
	outA := mem.Alloc(16*8, 16, "outA")
	outB := mem.Alloc(16*8, 16, "outB")
	for k := 0; k < 16; k++ {
		mem.WriteFloat64(in.Start+uint64(8*k), float64(3*k)+0.25)
	}

	sig := abi.Sig(abi.ClassInt, abi.ClassPtr, abi.ClassPtr, abi.ClassInt)
	l := lift.New(mem, lift.DefaultOptions())
	f, err := l.LiftFunc(codeBase, "kern", sig)
	if err != nil {
		t.Fatal(err)
	}
	opt.Optimize(f, opt.O3())
	if err := ir.Verify(f); err != nil {
		t.Fatalf("post-O3 verify: %v\n%s", err, ir.FormatFunc(f))
	}
	c := NewCompiler(mem)
	entry, err := c.CompileModule(l.Module, "kern")
	if err != nil {
		t.Fatalf("compile: %v\n%s", err, ir.FormatFunc(f))
	}

	mOrig := emu.NewMachine(mem)
	mJit := emu.NewMachine(mem)
	for i := 1; i < 15; i++ {
		r1, err := mOrig.Call(codeBase, emu.CallArgs{Ints: []uint64{in.Start, outA.Start, uint64(i)}}, 1000)
		if err != nil {
			t.Fatal(err)
		}
		r2, err := mJit.Call(entry, emu.CallArgs{Ints: []uint64{in.Start, outB.Start, uint64(i)}}, 1000)
		if err != nil {
			t.Fatalf("jit run: %v\n%s", err, ir.FormatFunc(f))
		}
		if r1 != r2 {
			t.Errorf("i=%d: return %d vs %d", i, r1, r2)
		}
		a, _ := mem.ReadFloat64(outA.Start + uint64(8*i))
		bb, _ := mem.ReadFloat64(outB.Start + uint64(8*i))
		if a != bb {
			t.Errorf("i=%d: out %g vs %g", i, a, bb)
		}
	}
}

// TestPipelinePropertyALU lifts and JITs an ALU function and compares against
// direct emulation on random inputs.
func TestPipelinePropertyALU(t *testing.T) {
	const codeBase = 0x401000
	b := asm.NewBuilder()
	// f(a, b) = ((a ^ (b>>3)) * 7) - b + (a & 0xFF)
	b.I(x86.MOV, x86.R64(x86.RCX), x86.R64(x86.RSI))
	b.I(x86.SHR, x86.R64(x86.RCX), x86.Imm(3, 1))
	b.I(x86.XOR, x86.R64(x86.RCX), x86.R64(x86.RDI))
	b.I(x86.IMUL3, x86.R64(x86.RAX), x86.R64(x86.RCX), x86.Imm(7, 8))
	b.I(x86.SUB, x86.R64(x86.RAX), x86.R64(x86.RSI))
	b.I(x86.MOVZX, x86.R64(x86.RDX), x86.R8L(x86.RDI))
	b.I(x86.ADD, x86.R64(x86.RAX), x86.R64(x86.RDX))
	b.Ret()
	code, _, err := b.Assemble(codeBase)
	if err != nil {
		t.Fatal(err)
	}
	mem := emu.NewMemory(0x10000000)
	if _, err := mem.MapBytes(codeBase, code, "code"); err != nil {
		t.Fatal(err)
	}
	sig := abi.Sig(abi.ClassInt, abi.ClassInt, abi.ClassInt)
	l := lift.New(mem, lift.DefaultOptions())
	f, err := l.LiftFunc(codeBase, "mix", sig)
	if err != nil {
		t.Fatal(err)
	}
	opt.Optimize(f, opt.O3())
	c := NewCompiler(mem)
	entry, err := c.Compile(f)
	if err != nil {
		t.Fatal(err)
	}
	mOrig := emu.NewMachine(mem)
	mJit := emu.NewMachine(mem)
	prop := func(a, bb uint64) bool {
		r1, err := mOrig.Call(codeBase, emu.CallArgs{Ints: []uint64{a, bb}}, 1000)
		if err != nil {
			return false
		}
		r2, err := mJit.Call(entry, emu.CallArgs{Ints: []uint64{a, bb}}, 1000)
		if err != nil {
			return false
		}
		return r1 == r2
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestCompileDivRem(t *testing.T) {
	for _, op := range []struct {
		name   string
		build  func(b *ir.Builder, x, y ir.Value) *ir.Inst
		a, b   int64
		expect int64
	}{
		{"sdiv", func(b *ir.Builder, x, y ir.Value) *ir.Inst { return b.SDiv(x, y) }, -35, 4, -8},
		{"srem", func(b *ir.Builder, x, y ir.Value) *ir.Inst { return b.SRem(x, y) }, -35, 4, -3},
		{"udiv", func(b *ir.Builder, x, y ir.Value) *ir.Inst { return b.UDiv(x, y) }, 35, 4, 8},
		{"urem", func(b *ir.Builder, x, y ir.Value) *ir.Inst { return b.URem(x, y) }, 35, 4, 3},
	} {
		f := ir.NewFunc(op.name, ir.I64, ir.I64, ir.I64)
		b := ir.NewBuilder(f)
		b.Ret(op.build(b, f.Params[0], f.Params[1]))
		got, _ := compileAndRun(t, emu.NewMemory(0x1000000), f, []uint64{uint64(op.a), uint64(op.b)}, nil)
		if int64(got) != op.expect {
			t.Errorf("%s(%d,%d) = %d, want %d", op.name, op.a, op.b, int64(got), op.expect)
		}
	}
}

func TestCompileManyValuesSpill(t *testing.T) {
	// More live values than registers forces spilling.
	f := ir.NewFunc("many", ir.I64, ir.I64)
	b := ir.NewBuilder(f)
	var vals []ir.Value
	for k := 1; k <= 20; k++ {
		vals = append(vals, b.Mul(f.Params[0], ir.Int(ir.I64, uint64(k))))
	}
	acc := vals[0]
	for _, v := range vals[1:] {
		acc = b.Xor(acc, v)
	}
	// Use the early values again so they stay live across all the muls.
	acc = b.Add(acc, vals[0])
	acc = b.Add(acc, vals[1])
	b.Ret(acc)

	got, _ := compileAndRun(t, emu.NewMemory(0x1000000), f, []uint64{13}, nil)
	var want uint64
	var vs []uint64
	for k := 1; k <= 20; k++ {
		vs = append(vs, 13*uint64(k))
	}
	want = vs[0]
	for _, v := range vs[1:] {
		want ^= v
	}
	want += vs[0] + vs[1]
	if got != want {
		t.Errorf("got %d, want %d", got, want)
	}
}
