//go:build !amd64 || !linux

package jit

import "fmt"

// Non-amd64/linux hosts run compiled traces on the bytecode VM only;
// buildNative checks nativeTraceOK before anything else, so the stubs below
// are unreachable.
const nativeTraceOK = false

func traceEnter(code uintptr, state *uint64) {
	panic("jit: traceEnter on unsupported platform")
}

func allocExec(code []byte) ([]byte, error) {
	return nil, fmt.Errorf("jit: native trace execution unsupported on this platform")
}

func freeExec(buf []byte) {}
