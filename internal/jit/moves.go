package jit

import (
	"repro/internal/ir"
	"repro/internal/x86"
)

// pmove is one element of a parallel copy: dst receives either the contents
// of srcLoc (when set) or the materialized value srcVal.
type pmove struct {
	dst    loc
	cls    regClass
	srcLoc *loc
	srcVal ir.Value
}

func sameLoc(a, b loc) bool {
	if a.inReg != b.inReg {
		return false
	}
	if a.inReg {
		return a.reg == b.reg
	}
	return a.off == b.off
}

// parallelMoves emits a set of simultaneous location moves, breaking cycles
// through the scratch registers. Constant materializations cannot be read by
// other moves, so they are emitted last.
func (e *emitter) parallelMoves(moves []pmove) error {
	var pending []pmove
	var consts []pmove
	for _, m := range moves {
		if m.srcLoc == nil {
			consts = append(consts, m)
			continue
		}
		if sameLoc(*m.srcLoc, m.dst) {
			continue
		}
		pending = append(pending, m)
	}
	for len(pending) > 0 {
		emitted := false
		for i, m := range pending {
			readByOther := false
			for j, o := range pending {
				if i == j {
					continue
				}
				if o.srcLoc != nil && sameLoc(*o.srcLoc, m.dst) {
					readByOther = true
					break
				}
			}
			if readByOther {
				continue
			}
			if err := e.emitLocMove(m); err != nil {
				return err
			}
			pending = append(pending[:i], pending[i+1:]...)
			emitted = true
			break
		}
		if emitted {
			continue
		}
		// Cycle: park the first move's source in scratch and redirect all
		// readers of that location.
		m := pending[0]
		var park loc
		if m.cls == classXMM {
			park = loc{inReg: true, reg: scratchXMM}
			if err := e.emitLocMove(pmove{dst: park, cls: classXMM, srcLoc: m.srcLoc}); err != nil {
				return err
			}
		} else {
			park = loc{inReg: true, reg: scratchGP}
			if err := e.emitLocMove(pmove{dst: park, cls: classGP, srcLoc: m.srcLoc}); err != nil {
				return err
			}
		}
		old := *m.srcLoc
		for i := range pending {
			if pending[i].srcLoc != nil && sameLoc(*pending[i].srcLoc, old) {
				p := park
				pending[i].srcLoc = &p
			}
		}
	}
	for _, m := range consts {
		if err := e.emitValMove(m); err != nil {
			return err
		}
	}
	return nil
}

// emitLocMove copies between two locations.
func (e *emitter) emitLocMove(m pmove) error {
	src, dst := *m.srcLoc, m.dst
	if sameLoc(src, dst) {
		return nil
	}
	if m.cls == classGP {
		switch {
		case src.inReg && dst.inReg:
			e.b.I(x86.MOV, x86.R64(dst.reg), x86.R64(src.reg))
		case src.inReg:
			e.b.I(x86.MOV, stackOp(8, dst.off), x86.R64(src.reg))
		case dst.inReg:
			e.b.I(x86.MOV, x86.R64(dst.reg), stackOp(8, src.off))
		default:
			e.b.I(x86.MOV, x86.R64(scratchGP2), stackOp(8, src.off))
			e.b.I(x86.MOV, stackOp(8, dst.off), x86.R64(scratchGP2))
		}
		return nil
	}
	switch {
	case src.inReg && dst.inReg:
		e.b.I(x86.MOVAPS, x86.X(dst.reg), x86.X(src.reg))
	case src.inReg:
		e.b.I(x86.MOVUPS, stackOp(16, dst.off), x86.X(src.reg))
	case dst.inReg:
		e.b.I(x86.MOVUPS, x86.X(dst.reg), stackOp(16, src.off))
	default:
		e.b.I(x86.MOVUPS, x86.X(scratchXMM2), stackOp(16, src.off))
		e.b.I(x86.MOVUPS, stackOp(16, dst.off), x86.X(scratchXMM2))
	}
	return nil
}

// emitValMove materializes a value into a location. When the destination is
// a register, it doubles as the materialization target so constants land
// directly (pxor dst,dst instead of pxor scratch,scratch + movaps).
func (e *emitter) emitValMove(m pmove) error {
	if m.cls == classGP {
		into := scratchGP
		if m.dst.inReg {
			into = m.dst.reg
		}
		r, err := e.valueGP(m.srcVal, into)
		if err != nil {
			return err
		}
		return e.emitLocMove(pmove{dst: m.dst, cls: classGP, srcLoc: &loc{inReg: true, reg: r}})
	}
	into := scratchXMM
	if m.dst.inReg {
		into = m.dst.reg
	}
	r, err := e.valueXMM(m.srcVal, into)
	if err != nil {
		return err
	}
	return e.emitLocMove(pmove{dst: m.dst, cls: classXMM, srcLoc: &loc{inReg: true, reg: r}})
}
