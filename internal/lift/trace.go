package lift

import (
	"fmt"

	"repro/internal/emu"
	"repro/internal/ir"
	"repro/internal/x86"
)

// This file lifts a recorded superblock trace (emu.TraceRequest) into IR
// shaped as a counted loop:
//
//	entry:   br header
//	header:  phis (iteration counter, written registers, flag state)
//	         if ctr >= iterCap: exit at the loop head (budget cap)
//	body:    straight-line lifted instructions, split at every recorded
//	         conditional branch into a guard:
//	             recorded-taken:     if !cond -> side exit at fallthrough
//	             recorded-untaken:   if  cond -> side exit at target
//	backedge: ctr' = ctr+1; generation check -> exit at head; br header
//
// Every side exit is a call to a fresh void callee ("trace.exitN") whose
// arguments materialize the full architectural state at that point: the
// current value of every register the trace writes, the dynamic inputs of
// the symbolic flag recipe, and the iteration counter. The static part of
// the exit (instructions retired in the partial iteration, resume RIP, the
// flag-recipe shape) lives in the TraceExit side table, keyed by the call
// instruction — optimization passes rewrite arguments but never clone or
// remove a side-effecting call, so the keys stay stable.
//
// Flags are LAZY: no per-iteration flag IR is emitted. The lifter tracks a
// symbolic recipe (last flag-writing operation and its operands) and exits
// carry the recipe's inputs; the VM recomputes the six flags once, at exit,
// using the emulator's own flag helpers. Loop-carried flag state uses six
// explicit i1 phis whose backedge values materialize the final recipe —
// they are emitted unconditionally and dead-code-eliminated whenever no
// exit or in-body condition consumes pre-first-flag-write state, which is
// the common case.
//
// Memory accesses become intrinsic calls ("trace.loadN"/"trace.storeN").
// Any abnormal access — unmapped address, nonzero modelled penalty, or a
// store into a watched (code-bearing) region — deoptimizes BEFORE the
// owning instruction executes, so the block engine re-executes it with
// exact fault, penalty, and self-modification semantics. Consequently an
// in-trace access that does execute never carries a penalty, which is what
// makes the caller's cycle replay exact.

// TraceFlagKind identifies the symbolic flag recipe at an exit.
type TraceFlagKind uint8

// Flag recipe kinds. The comment lists the dynamic args carried by an exit.
const (
	// TFExplicit: args cf, pf, af, zf, sf, of (i1) — write all six directly.
	TFExplicit TraceFlagKind = iota
	// TFAdd: args a, b — FlagsOfAdd(a, b, w).
	TFAdd
	// TFSub: args a, b — FlagsOfSub(a, b, w).
	TFSub
	// TFAddCF: args a, b, cf — FlagsOfAdd with CF forced (INC).
	TFAddCF
	// TFSubCF: args a, b, cf — FlagsOfSub with CF forced (DEC, NEG).
	TFSubCF
	// TFLogic: args res — FlagsOfLogic(res, w).
	TFLogic
	// TFShift: args v, res, af and, when ShiftCnt != 1, of. CF comes from
	// v and the static count, OF from the sign bits when ShiftCnt == 1.
	TFShift
	// TFMul: args full, af — IMUL's CF=OF overflow test on the full
	// product, result flags from the truncated product.
	TFMul
)

// TraceExit is the static side of one exit call. Argument layout of the
// call: current values of Prog.RegIdx registers in order, then NArgs flag
// recipe args, then the iteration counter.
type TraceExit struct {
	// Steps is the number of instructions of the current iteration retired
	// before the exit (0 for loop-header exits; k for a deopt before
	// instruction k; k+1 for a guard exit after branch k).
	Steps uint64
	// RIP is the address the block engine resumes at.
	RIP uint64

	Kind     TraceFlagKind
	W        uint8 // flag operand width in bytes
	ShiftOp  x86.Op
	ShiftCnt uint8
	NArgs    int
}

// TraceMem is the static side of one memory intrinsic: the access width and
// the deopt exit (a call in its own unreachable block) to take when the
// access cannot be performed in-trace.
type TraceMem struct {
	Size  int
	Write bool
	Exit  *ir.Inst
}

// TraceProgram is a lifted trace plus its side tables.
type TraceProgram struct {
	F *ir.Func
	// RegIdx lists the GPR indices the trace writes, in exit-argument and
	// write-back order.
	RegIdx []int
	// Exits maps each exit call to its static descriptor.
	Exits map[*ir.Inst]*TraceExit
	// Mems maps each memory intrinsic call to its descriptor.
	Mems map[*ir.Inst]*TraceMem
	// Backedge is the block whose execution must re-check the memory code
	// generation (taking GenExit on mismatch) before branching to header.
	Backedge *ir.Block
	// GenExit is the exit call for a failed generation check; its counter
	// argument is already the incremented value.
	GenExit  *ir.Inst
	NumSteps int
}

// Trace function parameter layout.
const (
	// TraceParamFlags is the index of the first of six i1 flag parameters
	// (CF, PF, AF, ZF, SF, OF) following the sixteen i64 GPR parameters.
	TraceParamFlags = 16
	// TraceParamCap is the index of the iteration-cap parameter.
	TraceParamCap = 22
	// TraceNumParams is the total parameter count.
	TraceNumParams = 23
)

type flagState struct {
	kind TraceFlagKind
	w    uint8
	op   x86.Op // TFShift only
	cnt  uint8  // TFShift only
	args []ir.Value
}

type traceLifter struct {
	req *emu.TraceRequest
	f   *ir.Func
	b   *ir.Builder
	p   *TraceProgram

	cur     [16]ir.Value
	written [16]bool
	regPhis [16]*ir.Inst

	flags      flagState
	flagPhis   [6]*ir.Inst
	recipePhis []*ir.Inst

	header  *ir.Block
	ctrPhi  *ir.Inst
	ctrNext ir.Value

	nextExit  int
	stepExits map[int]*ir.Inst // per-step shared deopt exit
	loadFns   map[int]*ir.Func
	storeFns  map[int]*ir.Func
}

// The trace parameter order and TFExplicit argument order both follow the
// package-wide flag component indices fCF..fOF (facets.go).

func sizeMask(size uint8) uint64 {
	switch size {
	case 1:
		return 0xFF
	case 2:
		return 0xFFFF
	case 4:
		return 0xFFFFFFFF
	}
	return ^uint64(0)
}

// Trace lifts a recorded superblock into a TraceProgram, or reports that
// the recording contains an instruction the trace tier does not support.
func Trace(req *emu.TraceRequest) (*TraceProgram, error) {
	shape, written, err := scanTrace(req)
	if err != nil {
		return nil, err
	}
	l := &traceLifter{
		req: req,
		p: &TraceProgram{
			RegIdx:   nil,
			Exits:    make(map[*ir.Inst]*TraceExit),
			Mems:     make(map[*ir.Inst]*TraceMem),
			NumSteps: len(req.Steps),
		},
		written:   written,
		stepExits: make(map[int]*ir.Inst),
		loadFns:   make(map[int]*ir.Func),
		storeFns:  make(map[int]*ir.Func),
	}
	for r := 0; r < 16; r++ {
		if written[r] {
			l.p.RegIdx = append(l.p.RegIdx, r)
		}
	}

	ptypes := make([]*ir.Type, TraceNumParams)
	for i := 0; i < 16; i++ {
		ptypes[i] = ir.I64
	}
	for i := 0; i < 6; i++ {
		ptypes[TraceParamFlags+i] = ir.I1
	}
	ptypes[TraceParamCap] = ir.I64
	l.f = ir.NewFunc(fmt.Sprintf("trace_%x", req.Head), ir.Void, ptypes...)
	l.f.Addr = req.Head
	l.p.F = l.f
	l.b = ir.NewBuilder(l.f) // creates and enters the entry block
	entry := l.b.Cur
	l.header = l.f.NewBlock("header")
	l.b.Br(l.header)

	// Header: phis for the counter, every written register, the six
	// explicit flags, and the final recipe's dynamic inputs.
	l.b.SetBlock(l.header)
	l.ctrPhi = l.b.Phi(ir.I64)
	for _, r := range l.p.RegIdx {
		l.regPhis[r] = l.b.Phi(ir.I64)
	}
	for i := 0; i < 6; i++ {
		l.flagPhis[i] = l.b.Phi(ir.I1)
	}
	if shape.kind == TFExplicit {
		for i := 0; i < 6; i++ {
			l.recipePhis = append(l.recipePhis, l.flagPhis[i])
		}
	} else {
		for _, ty := range recipeArgTypes(shape) {
			l.recipePhis = append(l.recipePhis, l.b.Phi(ty))
		}
	}

	// Architectural state at the loop head.
	for r := 0; r < 16; r++ {
		if l.written[r] {
			l.cur[r] = l.regPhis[r]
		} else {
			l.cur[r] = l.f.Params[r]
		}
	}
	l.flags = flagState{kind: TFExplicit, args: []ir.Value{
		l.flagPhis[0], l.flagPhis[1], l.flagPhis[2], l.flagPhis[3], l.flagPhis[4], l.flagPhis[5],
	}}

	// Budget-cap exit: flags at the header are the final recipe carried
	// through the recipe phis. This exit can only execute from the second
	// header arrival on (the caller guarantees iterCap >= 1), by which
	// point the phis hold iteration values, never the entry-edge undefs.
	headState := shape
	headState.args = make([]ir.Value, len(l.recipePhis))
	for i, ph := range l.recipePhis {
		headState.args[i] = ph
	}
	capCond := l.b.ICmp(ir.PredUGE, l.ctrPhi, l.f.Params[TraceParamCap])
	capExit := l.newExit(0, req.Head, l.ctrPhi, headState, l.cur)
	body := l.f.NewBlock("")
	l.b.CondBr(capCond, capExit.Parent, body)
	l.b.SetBlock(body)

	// Lift the recorded path.
	for k := range req.Steps {
		if err := l.liftStep(k, &req.Steps[k]); err != nil {
			return nil, err
		}
	}

	// Backedge: bump the counter, then the generation check (performed by
	// the VM, not by IR — it has no IR-visible inputs), then loop.
	backedge := l.b.Cur
	l.p.Backedge = backedge
	l.ctrNext = l.b.Add(l.ctrPhi, ir.Int(ir.I64, 1))
	finalState := l.flags
	l.p.GenExit = l.newExit(0, req.Head, l.ctrNext, finalState, l.cur)

	// Materialize the six flags of the final state for the explicit phis;
	// dead unless some exit or condition consumed pre-flag-write state.
	var mats [6]ir.Value
	for i := 0; i < 6; i++ {
		mats[i] = l.matFlagOf(finalState, i)
	}
	l.b.Br(l.header)

	// Wire up the phis.
	ir.AddIncoming(l.ctrPhi, ir.Int(ir.I64, 0), entry)
	ir.AddIncoming(l.ctrPhi, l.ctrNext, backedge)
	for _, r := range l.p.RegIdx {
		ir.AddIncoming(l.regPhis[r], l.f.Params[r], entry)
		ir.AddIncoming(l.regPhis[r], l.cur[r], backedge)
	}
	for i := 0; i < 6; i++ {
		ir.AddIncoming(l.flagPhis[i], l.f.Params[TraceParamFlags+i], entry)
		ir.AddIncoming(l.flagPhis[i], mats[i], backedge)
	}
	if finalState.kind != TFExplicit {
		if len(finalState.args) != len(l.recipePhis) {
			return nil, fmt.Errorf("lift: trace recipe shape drifted (%d args, phis %d)", len(finalState.args), len(l.recipePhis))
		}
		for i, ph := range l.recipePhis {
			ir.AddIncoming(ph, ir.UndefOf(ph.Type()), entry)
			ir.AddIncoming(ph, finalState.args[i], backedge)
		}
	}
	return l.p, nil
}

// recipeArgTypes returns the exit argument types of a recipe shape.
func recipeArgTypes(s flagState) []*ir.Type {
	switch s.kind {
	case TFExplicit:
		return []*ir.Type{ir.I1, ir.I1, ir.I1, ir.I1, ir.I1, ir.I1}
	case TFAdd, TFSub:
		return []*ir.Type{ir.I64, ir.I64}
	case TFAddCF, TFSubCF:
		return []*ir.Type{ir.I64, ir.I64, ir.I1}
	case TFLogic:
		return []*ir.Type{ir.I64}
	case TFShift:
		if s.cnt != 1 {
			return []*ir.Type{ir.I64, ir.I64, ir.I1, ir.I1}
		}
		return []*ir.Type{ir.I64, ir.I64, ir.I1}
	case TFMul:
		return []*ir.Type{ir.I64, ir.I1}
	}
	return nil
}

// scanTrace rejects unsupported instructions and pre-computes the register
// write set and the loop-carried flag recipe shape (which pass 2 must end
// on — the simulation below mirrors liftStep's flag updates exactly).
func scanTrace(req *emu.TraceRequest) (flagState, [16]bool, error) {
	var written [16]bool
	shape := flagState{kind: TFExplicit}
	for i := range req.Steps {
		in := req.Steps[i].In
		if err := checkOperands(in); err != nil {
			return shape, written, err
		}
		switch in.Op {
		case x86.NOP, x86.ENDBR64, x86.JMP, x86.JCC:
		case x86.MOV, x86.MOVZX, x86.MOVSX, x86.MOVSXD, x86.LEA, x86.NOT,
			x86.CMOVCC, x86.SETCC:
		case x86.ADD:
			shape = flagState{kind: TFAdd, w: in.Dst.Size}
		case x86.SUB, x86.CMP:
			shape = flagState{kind: TFSub, w: in.Dst.Size}
		case x86.AND, x86.OR, x86.XOR, x86.TEST:
			shape = flagState{kind: TFLogic, w: in.Dst.Size}
		case x86.INC:
			shape = flagState{kind: TFAddCF, w: in.Dst.Size}
		case x86.DEC, x86.NEG:
			shape = flagState{kind: TFSubCF, w: in.Dst.Size}
		case x86.IMUL, x86.IMUL3:
			shape = flagState{kind: TFMul, w: in.Dst.Size}
		case x86.SHL, x86.SHR, x86.SAR:
			if in.Src.Kind != x86.KImm {
				return shape, written, fmt.Errorf("lift: trace: dynamic shift count at %#x", in.Addr)
			}
			if cnt := shiftCount(in); cnt != 0 {
				shape = flagState{kind: TFShift, w: in.Dst.Size, op: in.Op, cnt: cnt}
			}
		default:
			return shape, written, fmt.Errorf("lift: trace: unsupported %v at %#x", in.Op, in.Addr)
		}
		if writesReg(in) {
			written[in.Dst.Reg] = true
		}
	}
	return shape, written, nil
}

func shiftCount(in *x86.Inst) uint8 {
	cnt := uint64(in.Src.Imm)
	if in.Dst.Size == 8 {
		return uint8(cnt & 63)
	}
	return uint8(cnt & 31)
}

// writesReg reports whether the instruction writes its Dst register.
func writesReg(in *x86.Inst) bool {
	if in.Dst.Kind != x86.KReg {
		return false
	}
	switch in.Op {
	case x86.CMP, x86.TEST, x86.JCC, x86.JMP, x86.NOP, x86.ENDBR64:
		return false
	case x86.SHL, x86.SHR, x86.SAR:
		// A masked-to-zero count is a complete no-op.
		return shiftCount(in) != 0
	}
	return true
}

func checkOperands(in *x86.Inst) error {
	for _, o := range []x86.Operand{in.Dst, in.Src, in.Src2} {
		switch o.Kind {
		case x86.KReg:
			if o.Reg.IsHighByte() {
				return fmt.Errorf("lift: trace: high-byte register at %#x", in.Addr)
			}
			if !o.Reg.IsGP() {
				return fmt.Errorf("lift: trace: non-GP register %v at %#x", o.Reg, in.Addr)
			}
		case x86.KMem:
			if o.Mem.Seg != x86.SegNone {
				return fmt.Errorf("lift: trace: segment override at %#x", in.Addr)
			}
			if !o.Mem.RIPRel {
				if o.Mem.Base != x86.NoReg && !o.Mem.Base.IsGP() {
					return fmt.Errorf("lift: trace: base register %v at %#x", o.Mem.Base, in.Addr)
				}
				if o.Mem.Index != x86.NoReg && !o.Mem.Index.IsGP() {
					return fmt.Errorf("lift: trace: index register %v at %#x", o.Mem.Index, in.Addr)
				}
			}
		}
	}
	return nil
}

// --- value helpers ---------------------------------------------------------

func (l *traceLifter) mask(v ir.Value, size uint8) ir.Value {
	if size == 8 {
		return v
	}
	return l.b.And(v, ir.Int(ir.I64, sizeMask(size)))
}

// sext64 sign-extends the low size bytes of v to 64 bits. High bits of v
// need not be clean — they are shifted out.
func (l *traceLifter) sext64(v ir.Value, size uint8) ir.Value {
	if size == 8 {
		return v
	}
	sh := ir.Int(ir.I64, uint64(64-uint(size)*8))
	return l.b.AShr(l.b.Shl(v, sh), sh)
}

// signTest returns the i1 sign bit of the low size bytes of v (v masked).
func (l *traceLifter) signTest(v ir.Value, size uint8) ir.Value {
	if size == 8 {
		return l.b.ICmp(ir.PredSLT, v, ir.Int(ir.I64, 0))
	}
	bit := ir.Int(ir.I64, uint64(1)<<(uint(size)*8-1))
	return l.b.ICmp(ir.PredNE, l.b.And(v, bit), ir.Int(ir.I64, 0))
}

func (l *traceLifter) parityOf(res ir.Value) ir.Value {
	p := l.b.Ctpop(l.b.And(res, ir.Int(ir.I64, 0xFF)))
	return l.b.ICmp(ir.PredEQ, l.b.And(p, ir.Int(ir.I64, 1)), ir.Int(ir.I64, 0))
}

// readOpVal reads an operand facet, masked to size. Memory reads go through
// a deoptimizing load intrinsic.
func (l *traceLifter) readOpVal(k int, in *x86.Inst, o x86.Operand, size uint8) ir.Value {
	switch o.Kind {
	case x86.KReg:
		return l.mask(l.cur[o.Reg], size)
	case x86.KImm:
		return ir.Int(ir.I64, uint64(o.Imm)&sizeMask(size))
	case x86.KMem:
		return l.memLoad(k, in, o, size)
	}
	panic("trace: readOpVal on absent operand")
}

// writeDst writes v (raw, possibly wider than size) to the destination with
// x86 facet semantics.
func (l *traceLifter) writeDst(k int, in *x86.Inst, o x86.Operand, v ir.Value) {
	if o.Kind == x86.KMem {
		l.memStore(k, in, o, v)
		return
	}
	l.cur[o.Reg] = l.regMerge(o.Reg, o.Size, v)
}

// regMerge computes the new full-width value of register r after writing
// the size-byte facet v.
func (l *traceLifter) regMerge(r x86.Reg, size uint8, v ir.Value) ir.Value {
	switch size {
	case 8:
		return v
	case 4:
		return l.b.And(v, ir.Int(ir.I64, 0xFFFFFFFF))
	default:
		m := sizeMask(size)
		keep := l.b.And(l.cur[r], ir.Int(ir.I64, ^m))
		return l.b.Or(keep, l.b.And(v, ir.Int(ir.I64, m)))
	}
}

// ea builds the effective address of a memory operand (full 64-bit wrap
// semantics, matching the block engine's bindEA).
func (l *traceLifter) ea(in *x86.Inst, o x86.Operand) ir.Value {
	mem := o.Mem
	if mem.RIPRel {
		return ir.Int(ir.I64, in.Addr+uint64(in.Len)+uint64(int64(mem.Disp)))
	}
	var v ir.Value
	if mem.Base != x86.NoReg {
		v = l.cur[mem.Base]
	}
	if mem.Index != x86.NoReg {
		ix := l.b.Mul(l.cur[mem.Index], ir.Int(ir.I64, uint64(mem.Scale)))
		if v == nil {
			v = ix
		} else {
			v = l.b.Add(v, ix)
		}
	}
	d := uint64(int64(mem.Disp))
	switch {
	case v == nil:
		return ir.Int(ir.I64, d)
	case d != 0:
		return l.b.Add(v, ir.Int(ir.I64, d))
	}
	return v
}

func (l *traceLifter) loadFn(size int) *ir.Func {
	f := l.loadFns[size]
	if f == nil {
		f = ir.NewFunc(fmt.Sprintf("trace.load%d", size), ir.I64, ir.I64)
		l.loadFns[size] = f
	}
	return f
}

func (l *traceLifter) storeFn(size int) *ir.Func {
	f := l.storeFns[size]
	if f == nil {
		f = ir.NewFunc(fmt.Sprintf("trace.store%d", size), ir.Void, ir.I64, ir.I64)
		l.storeFns[size] = f
	}
	return f
}

func (l *traceLifter) memLoad(k int, in *x86.Inst, o x86.Operand, size uint8) ir.Value {
	exit := l.deoptExit(k, in)
	addr := l.ea(in, o)
	call := l.b.Call(l.loadFn(int(size)), addr)
	l.p.Mems[call] = &TraceMem{Size: int(size), Exit: exit}
	return call
}

func (l *traceLifter) memStore(k int, in *x86.Inst, o x86.Operand, v ir.Value) {
	exit := l.deoptExit(k, in)
	addr := l.ea(in, o)
	call := l.b.Call(l.storeFn(int(o.Size)), addr, v)
	l.p.Mems[call] = &TraceMem{Size: int(o.Size), Write: true, Exit: exit}
}

// deoptExit returns the step's shared pre-instruction exit: state as of
// BEFORE instruction k, resuming at the instruction itself. Both intrinsics
// of a read-modify-write share it — they are emitted before any register or
// flag update of the instruction, so the snapshot is the pre-state.
func (l *traceLifter) deoptExit(k int, in *x86.Inst) *ir.Inst {
	if e := l.stepExits[k]; e != nil {
		return e
	}
	e := l.newExit(k, in.Addr, l.ctrPhi, l.flags, l.cur)
	l.stepExits[k] = e
	return e
}

// newExit creates an exit block holding one call that materializes the
// given state, and records its descriptor. Returns the call.
func (l *traceLifter) newExit(steps int, rip uint64, ctr ir.Value, st flagState, regs [16]ir.Value) *ir.Inst {
	cur := l.b.Cur
	eb := l.f.NewBlock(fmt.Sprintf("exit%d", l.nextExit))
	l.b.SetBlock(eb)
	var args []ir.Value
	var ptypes []*ir.Type
	for _, r := range l.p.RegIdx {
		args = append(args, regs[r])
		ptypes = append(ptypes, ir.I64)
	}
	for _, a := range st.args {
		args = append(args, a)
		ptypes = append(ptypes, a.Type())
	}
	args = append(args, ctr)
	ptypes = append(ptypes, ir.I64)
	callee := ir.NewFunc(fmt.Sprintf("trace.exit%d", l.nextExit), ir.Void, ptypes...)
	call := l.b.Call(callee, args...)
	l.b.Unreachable()
	l.p.Exits[call] = &TraceExit{
		Steps:    uint64(steps),
		RIP:      rip,
		Kind:     st.kind,
		W:        st.w,
		ShiftOp:  st.op,
		ShiftCnt: st.cnt,
		NArgs:    len(st.args),
	}
	l.nextExit++
	l.b.SetBlock(cur)
	return call
}

// --- flag materialization and conditions -----------------------------------

// matFlag materializes one flag of the CURRENT state as an i1.
func (l *traceLifter) matFlag(i int) ir.Value { return l.matFlagOf(l.flags, i) }

func (l *traceLifter) matFlagOf(st flagState, i int) ir.Value {
	zero := ir.Int(ir.I64, 0)
	switch st.kind {
	case TFExplicit:
		return st.args[i]
	case TFAdd, TFAddCF, TFSub, TFSubCF:
		a, bb := st.args[0], st.args[1]
		var res ir.Value
		add := st.kind == TFAdd || st.kind == TFAddCF
		if add {
			res = l.mask(l.b.Add(a, bb), st.w)
		} else {
			res = l.mask(l.b.Sub(a, bb), st.w)
		}
		switch i {
		case fCF:
			if st.kind == TFAddCF || st.kind == TFSubCF {
				return st.args[2]
			}
			if add {
				return l.b.ICmp(ir.PredULT, res, a)
			}
			return l.b.ICmp(ir.PredULT, a, bb)
		case fOF:
			var tmp ir.Value
			if add {
				tmp = l.b.And(l.b.Xor(a, res), l.b.Xor(bb, res))
			} else {
				tmp = l.b.And(l.b.Xor(a, bb), l.b.Xor(a, res))
			}
			return l.signTest(tmp, st.w)
		case fAF:
			fifteen := ir.Int(ir.I64, 0xF)
			an, bn := l.b.And(a, fifteen), l.b.And(bb, fifteen)
			if add {
				return l.b.ICmp(ir.PredUGT, l.b.Add(an, bn), fifteen)
			}
			return l.b.ICmp(ir.PredULT, an, bn)
		case fZF:
			return l.b.ICmp(ir.PredEQ, res, zero)
		case fSF:
			return l.signTest(res, st.w)
		case fPF:
			return l.parityOf(res)
		}
	case TFLogic:
		res := st.args[0]
		switch i {
		case fCF, fOF, fAF:
			return ir.Bool(false)
		case fZF:
			return l.b.ICmp(ir.PredEQ, res, zero)
		case fSF:
			return l.signTest(res, st.w)
		case fPF:
			return l.parityOf(res)
		}
	case TFShift:
		v, res, af := st.args[0], st.args[1], st.args[2]
		width := uint(st.w) * 8
		switch i {
		case fAF:
			return af
		case fCF:
			cnt := uint(st.cnt)
			if st.op == x86.SHL {
				if cnt > width {
					return ir.Bool(false)
				}
				return l.b.ICmp(ir.PredNE,
					l.b.And(l.b.LShr(v, ir.Int(ir.I64, uint64(width-cnt))), ir.Int(ir.I64, 1)), zero)
			}
			return l.b.ICmp(ir.PredNE,
				l.b.And(l.b.LShr(v, ir.Int(ir.I64, uint64(cnt-1))), ir.Int(ir.I64, 1)), zero)
		case fOF:
			if st.cnt == 1 {
				return l.signTest(l.b.Xor(res, v), st.w)
			}
			return st.args[3]
		case fZF:
			return l.b.ICmp(ir.PredEQ, res, zero)
		case fSF:
			return l.signTest(res, st.w)
		case fPF:
			return l.parityOf(res)
		}
	case TFMul:
		full, af := st.args[0], st.args[1]
		res := l.mask(full, st.w)
		switch i {
		case fAF:
			return af
		case fCF, fOF:
			if st.w == 8 {
				return ir.Bool(false)
			}
			return l.b.ICmp(ir.PredNE, l.sext64(res, st.w), full)
		case fZF:
			return l.b.ICmp(ir.PredEQ, res, zero)
		case fSF:
			return l.signTest(res, st.w)
		case fPF:
			return l.parityOf(res)
		}
	}
	panic("trace: unhandled flag materialization")
}

// cond builds the i1 value of an x86 condition over the current flag state,
// with direct integer-compare fast paths for the dominant sub/cmp and
// logic-op recipes.
func (l *traceLifter) cond(c x86.Cond) ir.Value {
	neg := c&1 == 1
	base := c &^ 1
	st := l.flags
	if st.kind == TFSub {
		a, bb := st.args[0], st.args[1]
		var pred ir.Pred
		ok := true
		switch base {
		case x86.CondE:
			pred = ir.PredEQ
			if neg {
				pred = ir.PredNE
			}
			return l.b.ICmp(pred, a, bb)
		case x86.CondB:
			pred = ir.PredULT
			if neg {
				pred = ir.PredUGE
			}
			return l.b.ICmp(pred, a, bb)
		case x86.CondBE:
			pred = ir.PredULE
			if neg {
				pred = ir.PredUGT
			}
			return l.b.ICmp(pred, a, bb)
		case x86.CondL:
			pred = ir.PredSLT
			if neg {
				pred = ir.PredSGE
			}
		case x86.CondLE:
			pred = ir.PredSLE
			if neg {
				pred = ir.PredSGT
			}
		default:
			ok = false
		}
		if ok {
			return l.b.ICmp(pred, l.sext64(a, st.w), l.sext64(bb, st.w))
		}
	}
	// Generic: compose CondHoldsIn's formula from materialized flags.
	var v ir.Value
	switch base {
	case x86.CondO:
		v = l.matFlag(fOF)
	case x86.CondB:
		v = l.matFlag(fCF)
	case x86.CondE:
		v = l.matFlag(fZF)
	case x86.CondBE:
		v = l.b.Or(l.matFlag(fCF), l.matFlag(fZF))
	case x86.CondS:
		v = l.matFlag(fSF)
	case x86.CondP:
		v = l.matFlag(fPF)
	case x86.CondL:
		v = l.b.Xor(l.matFlag(fSF), l.matFlag(fOF))
	case x86.CondLE:
		v = l.b.Or(l.matFlag(fZF), l.b.Xor(l.matFlag(fSF), l.matFlag(fOF)))
	}
	if neg {
		return l.b.Xor(v, ir.Bool(true))
	}
	return v
}

// --- instruction lifting ---------------------------------------------------

func (l *traceLifter) liftStep(k int, st *emu.TraceStep) error {
	in := st.In
	switch in.Op {
	case x86.NOP, x86.ENDBR64, x86.JMP:
		// JMP's target is the recorded path; nothing to emit.
		return nil

	case x86.MOV:
		v := l.readOpVal(k, in, in.Src, in.Src.Size)
		l.writeDst(k, in, in.Dst, v)
	case x86.MOVZX:
		v := l.readOpVal(k, in, in.Src, in.Src.Size)
		l.writeDst(k, in, in.Dst, v)
	case x86.MOVSX, x86.MOVSXD:
		v := l.readOpVal(k, in, in.Src, in.Src.Size)
		l.writeDst(k, in, in.Dst, l.sext64(v, in.Src.Size))
	case x86.LEA:
		l.cur[in.Dst.Reg] = l.regMerge(in.Dst.Reg, in.Dst.Size, l.ea(in, in.Src))

	case x86.ADD, x86.SUB, x86.CMP, x86.AND, x86.OR, x86.XOR, x86.TEST:
		size := in.Dst.Size
		a := l.readOpVal(k, in, in.Dst, size)
		bb := l.readOpVal(k, in, in.Src, size)
		var res ir.Value
		var kind TraceFlagKind
		var fargs []ir.Value
		switch in.Op {
		case x86.ADD:
			res = l.b.Add(a, bb)
			kind, fargs = TFAdd, []ir.Value{a, bb}
		case x86.SUB, x86.CMP:
			res = l.b.Sub(a, bb)
			kind, fargs = TFSub, []ir.Value{a, bb}
		case x86.AND, x86.TEST:
			res = l.b.And(a, bb)
			kind, fargs = TFLogic, nil
		case x86.OR:
			res = l.b.Or(a, bb)
			kind, fargs = TFLogic, nil
		case x86.XOR:
			res = l.b.Xor(a, bb)
			kind, fargs = TFLogic, nil
		}
		res = l.mask(res, size)
		if kind == TFLogic {
			fargs = []ir.Value{res}
		}
		if in.Op != x86.CMP && in.Op != x86.TEST {
			l.writeDst(k, in, in.Dst, res)
		}
		l.flags = flagState{kind: kind, w: size, args: fargs}

	case x86.NOT:
		size := in.Dst.Size
		v := l.readOpVal(k, in, in.Dst, size)
		l.writeDst(k, in, in.Dst, l.b.Xor(v, ir.Int(ir.I64, sizeMask(size))))
	case x86.NEG:
		size := in.Dst.Size
		v := l.readOpVal(k, in, in.Dst, size)
		cf := l.b.ICmp(ir.PredNE, v, ir.Int(ir.I64, 0))
		res := l.mask(l.b.Sub(ir.Int(ir.I64, 0), v), size)
		l.writeDst(k, in, in.Dst, res)
		l.flags = flagState{kind: TFSubCF, w: size, args: []ir.Value{ir.Int(ir.I64, 0), v, cf}}
	case x86.INC, x86.DEC:
		size := in.Dst.Size
		cf := l.matFlag(fCF) // INC/DEC preserve CF from the previous state
		v := l.readOpVal(k, in, in.Dst, size)
		one := ir.Int(ir.I64, 1)
		if in.Op == x86.INC {
			res := l.mask(l.b.Add(v, one), size)
			l.writeDst(k, in, in.Dst, res)
			l.flags = flagState{kind: TFAddCF, w: size, args: []ir.Value{v, one, cf}}
		} else {
			res := l.mask(l.b.Sub(v, one), size)
			l.writeDst(k, in, in.Dst, res)
			l.flags = flagState{kind: TFSubCF, w: size, args: []ir.Value{v, one, cf}}
		}

	case x86.IMUL, x86.IMUL3:
		af := l.matFlag(fAF) // IMUL leaves AF as-is
		var a, bb ir.Value
		if in.Op == x86.IMUL {
			a = l.sext64(l.readOpVal(k, in, in.Dst, in.Dst.Size), in.Dst.Size)
			bb = l.sext64(l.readOpVal(k, in, in.Src, in.Src.Size), in.Src.Size)
		} else {
			a = l.sext64(l.readOpVal(k, in, in.Src, in.Src.Size), in.Src.Size)
			bb = ir.Int(ir.I64, uint64(in.Src2.Imm))
		}
		full := l.b.Mul(a, bb)
		l.writeDst(k, in, in.Dst, l.mask(full, in.Dst.Size))
		l.flags = flagState{kind: TFMul, w: in.Dst.Size, args: []ir.Value{full, af}}

	case x86.SHL, x86.SHR, x86.SAR:
		size := in.Dst.Size
		cnt := shiftCount(in)
		if cnt == 0 {
			return nil // no write, no flags
		}
		af := l.matFlag(fAF) // shifts leave AF as-is
		var of ir.Value
		if cnt != 1 {
			of = l.matFlag(fOF) // and OF, except for 1-bit shifts
		}
		v := l.readOpVal(k, in, in.Dst, size)
		cv := ir.Int(ir.I64, uint64(cnt))
		var res ir.Value
		switch in.Op {
		case x86.SHL:
			res = l.mask(l.b.Shl(v, cv), size)
		case x86.SHR:
			res = l.b.LShr(v, cv) // v is masked; high bits already zero
		case x86.SAR:
			res = l.mask(l.b.AShr(l.sext64(v, size), cv), size)
		}
		l.writeDst(k, in, in.Dst, res)
		fargs := []ir.Value{v, res, af}
		if cnt != 1 {
			fargs = append(fargs, of)
		}
		l.flags = flagState{kind: TFShift, w: size, op: in.Op, cnt: cnt, args: fargs}

	case x86.CMOVCC:
		cond := l.cond(in.Cond)
		size := in.Dst.Size
		// The source is read unconditionally; if that deoptimizes (fault
		// or penalty) on an untaken cmov the exit state is the pre-state
		// and the block engine re-executes with exact semantics.
		v := l.readOpVal(k, in, in.Src, size)
		taken := l.regMerge(in.Dst.Reg, size, v)
		notTaken := l.cur[in.Dst.Reg]
		if size == 4 {
			// A 32-bit cmov zeroes the upper half even when not taken.
			notTaken = l.b.And(notTaken, ir.Int(ir.I64, 0xFFFFFFFF))
		}
		l.cur[in.Dst.Reg] = l.b.Select(cond, taken, notTaken)

	case x86.SETCC:
		cond := l.cond(in.Cond)
		l.writeDst(k, in, in.Dst, l.b.ZExt(cond, ir.I64))

	case x86.JCC:
		cond := l.cond(in.Cond)
		fallthrough_ := in.Addr + uint64(in.Len)
		target := uint64(in.Dst.Imm)
		var exit *ir.Inst
		if st.Taken {
			exit = l.newExit(k+1, fallthrough_, l.ctrPhi, l.flags, l.cur)
		} else {
			exit = l.newExit(k+1, target, l.ctrPhi, l.flags, l.cur)
		}
		cont := l.f.NewBlock("")
		if st.Taken {
			l.b.CondBr(cond, cont, exit.Parent)
		} else {
			l.b.CondBr(cond, exit.Parent, cont)
		}
		l.b.SetBlock(cont)

	default:
		return fmt.Errorf("lift: trace: unsupported %v at %#x", in.Op, in.Addr)
	}
	return nil
}
