package lift

import (
	"math"
	"testing"

	"repro/internal/abi"
	"repro/internal/emu"
	"repro/internal/ir"
	"repro/internal/x86"
	"repro/internal/x86/asm"
)

// TestLiftNoGEPAddressing: with UseGEP off, base+index*scale+disp operands
// take the inttoptr fallback (addrInt). Results must match the emulator.
func TestLiftNoGEPAddressing(t *testing.T) {
	mem := buildFunc(t, func(b *asm.Builder) {
		// rax = [rdi + 8*rsi + 16]
		b.I(x86.MOV, x86.R64(x86.RAX), x86.MemBIS(8, x86.RDI, x86.RSI, 8, 16))
		b.Ret()
	})
	buf := mem.Alloc(64, 8, "buf")
	if err := mem.WriteU(buf.Start+16+8*3, 8, 0xABCDEF); err != nil {
		t.Fatal(err)
	}
	o := DefaultOptions()
	o.UseGEP = false
	got, lifted := crossCheck(t, mem, abi.Signature{
		Params: []abi.Class{abi.ClassPtr, abi.ClassInt}, Ret: abi.ClassInt,
	}, o, []uint64{buf.Start, 3}, nil)
	if got != 0xABCDEF || lifted != got {
		t.Errorf("machine %#x, lifted %#x", got, lifted)
	}
}

// TestLiftNoGEPIndexOnly: index-register-only operands (no base) through the
// fallback path.
func TestLiftNoGEPIndexOnly(t *testing.T) {
	mem := buildFunc(t, func(b *asm.Builder) {
		b.I(x86.MOV, x86.R64(x86.RAX), x86.MemBIS(8, x86.NoReg, x86.RDI, 4, 0))
		b.Ret()
	})
	buf := mem.Alloc(64, 8, "buf")
	if err := mem.WriteU(buf.Start+8, 8, 77); err != nil {
		t.Fatal(err)
	}
	o := DefaultOptions()
	o.UseGEP = false
	// index = (buf.Start+8)/4; scale 4 lands exactly on the slot.
	got, lifted := crossCheck(t, mem, abi.Signature{
		Params: []abi.Class{abi.ClassInt}, Ret: abi.ClassInt,
	}, o, []uint64{(buf.Start + 8) / 4}, nil)
	if got != 77 || lifted != got {
		t.Errorf("machine %d, lifted %d", got, lifted)
	}
}

// TestLiftScalarF32: movss/addss/mulss lift through the F32 facet and agree
// with the emulator bit-for-bit.
func TestLiftScalarF32(t *testing.T) {
	mem := buildFunc(t, func(b *asm.Builder) {
		b.I(x86.MOVSS_X, x86.X(x86.XMM0), x86.MemBD(4, x86.RDI, 0))
		b.I(x86.ADDSS, x86.X(x86.XMM0), x86.MemBD(4, x86.RDI, 4))
		b.I(x86.MULSS, x86.X(x86.XMM0), x86.X(x86.XMM0))
		b.I(x86.SUBSS, x86.X(x86.XMM0), x86.MemBD(4, x86.RDI, 8))
		b.I(x86.DIVSS, x86.X(x86.XMM0), x86.MemBD(4, x86.RDI, 12))
		// Widen so the f64 return convention reports the value.
		b.I(x86.CVTSS2SD, x86.X(x86.XMM0), x86.X(x86.XMM0))
		b.Ret()
	})
	buf := mem.Alloc(16, 4, "buf")
	vals := []float32{1.5, 2.25, 3.0, 0.5}
	for i, v := range vals {
		if err := mem.WriteU(buf.Start+uint64(4*i), 4, uint64(math.Float32bits(v))); err != nil {
			t.Fatal(err)
		}
	}
	got, lifted := crossCheck(t, mem, abi.Signature{
		Params: []abi.Class{abi.ClassPtr}, Ret: abi.ClassF64,
	}, DefaultOptions(), []uint64{buf.Start}, nil)
	want := float64(((float32(1.5)+2.25)*(float32(1.5)+2.25) - 3.0) / 0.5)
	if math.Float64frombits(got) != want {
		t.Errorf("machine %g, want %g", math.Float64frombits(got), want)
	}
	if lifted != got {
		t.Errorf("lifted %#x != machine %#x", lifted, got)
	}
}

// TestLiftMovssRegToReg: register-to-register movss merges the low lane and
// keeps the rest of the destination (writeXMMScalarF32).
func TestLiftMovssRegToReg(t *testing.T) {
	mem := buildFunc(t, func(b *asm.Builder) {
		b.I(x86.MOVAPS, x86.X(x86.XMM0), x86.X(x86.XMM1)) // d = [b, b]
		b.I(x86.MOVSS_X, x86.X(x86.XMM0), x86.X(x86.XMM2))
		// Sum both f64 halves to observe merge + preserved upper half.
		b.I(x86.MOVAPS, x86.X(x86.XMM3), x86.X(x86.XMM0))
		b.I(x86.UNPCKHPD, x86.X(x86.XMM3), x86.X(x86.XMM3))
		b.I(x86.ADDSD, x86.X(x86.XMM0), x86.X(x86.XMM3))
		b.Ret()
	})
	m := emu.NewMachine(mem)
	m.XMM[1] = emu.XMMReg{Lo: math.Float64bits(4.0), Hi: math.Float64bits(8.0)}
	m.XMM[2] = emu.XMMReg{Lo: uint64(math.Float32bits(2.5))}
	if _, err := m.Call(codeBase, emu.CallArgs{}, 1000); err != nil {
		t.Fatal(err)
	}
	got := math.Float64frombits(m.XMM[0].Lo)

	l := New(mem, DefaultOptions())
	// Lift as a 0-arg function; seed XMM state is not visible to the lifter,
	// so instead check it lifts and verifies (semantics covered above).
	f, err := l.LiftFunc(codeBase, "f", abi.Signature{Ret: abi.ClassF64})
	if err != nil {
		t.Fatal(err)
	}
	if err := ir.Verify(f); err != nil {
		t.Fatal(err)
	}
	if got == 0 {
		t.Error("emulated merge lost data")
	}
}

// TestLiftSegmentOverrideAddrInt: gs-relative operands with a base register
// force the address-space inttoptr fallback even with GEP enabled.
func TestLiftSegmentOverrideAddrInt(t *testing.T) {
	mem := buildFunc(t, func(b *asm.Builder) {
		m := x86.MemBD(8, x86.RDI, 8)
		m.Mem.Seg = x86.SegGS
		b.I(x86.MOV, x86.R64(x86.RAX), m)
		b.Ret()
	})
	gsBase := uint64(0x200000)
	if _, err := mem.Map(gsBase, 0x1000, "gs"); err != nil {
		t.Fatal(err)
	}
	if err := mem.WriteU(gsBase+0x10+8, 8, 321); err != nil {
		t.Fatal(err)
	}

	m := emu.NewMachine(mem)
	m.GSBase = gsBase
	m.GPR[x86.RDI] = 0x10
	if _, err := m.Call(codeBase, emu.CallArgs{}, 1000); err != nil {
		t.Fatal(err)
	}
	if m.GPR[x86.RAX] != 321 {
		t.Fatalf("emulated gs load = %d", m.GPR[x86.RAX])
	}

	l := New(mem, DefaultOptions())
	f, err := l.LiftFunc(codeBase, "f", abi.Signature{
		Params: []abi.Class{abi.ClassInt}, Ret: abi.ClassInt,
	})
	if err != nil {
		t.Fatal(err)
	}
	// The load must land in address space 256 (gs), as Section III.E says.
	found := false
	for _, b := range f.Blocks {
		for _, in := range b.Insts {
			if in.Op == ir.OpLoad && in.Args[0].Type().AddrSpace == 256 {
				found = true
			}
		}
	}
	if !found {
		t.Errorf("no addrspace(256) load in lifted IR:\n%s", ir.FormatFunc(f))
	}
}

// TestLiftAdcSbb: adc/sbb consume the carry flag lifted as an i1 (flagVal)
// and must agree with the emulator on carry-in and carry-out chains.
func TestLiftAdcSbb(t *testing.T) {
	mem := buildFunc(t, func(b *asm.Builder) {
		// 128-bit add: (rdi:0) + (rsi:rsi) — lo = rdi+rsi, hi = 0+rsi+CF.
		b.I(x86.MOV, x86.R64(x86.RAX), x86.R64(x86.RDI))
		b.I(x86.ADD, x86.R64(x86.RAX), x86.R64(x86.RSI))
		b.I(x86.MOV, x86.R64(x86.RCX), x86.Imm(0, 8))
		b.I(x86.ADC, x86.R64(x86.RCX), x86.R64(x86.RSI))
		b.I(x86.ADD, x86.R64(x86.RAX), x86.R64(x86.RCX))
		b.Ret()
	})
	sig := abi.Signature{Params: []abi.Class{abi.ClassInt, abi.ClassInt}, Ret: abi.ClassInt}
	for _, in := range [][2]uint64{
		{^uint64(0), 1},          // carry out of lo
		{1, 2},                   // no carry
		{^uint64(0), ^uint64(0)}, // both large
	} {
		got, lifted := crossCheck(t, mem, sig, DefaultOptions(), in[:], nil)
		if lifted != got {
			t.Errorf("adc in=%v: lifted %#x != machine %#x", in, lifted, got)
		}
	}
}

// TestLiftSbbBorrowChain: sbb with the borrow flag from a preceding sub.
func TestLiftSbbBorrowChain(t *testing.T) {
	mem := buildFunc(t, func(b *asm.Builder) {
		b.I(x86.MOV, x86.R64(x86.RAX), x86.R64(x86.RDI))
		b.I(x86.SUB, x86.R64(x86.RAX), x86.R64(x86.RSI))
		b.I(x86.MOV, x86.R64(x86.RCX), x86.Imm(500, 8))
		b.I(x86.SBB, x86.R64(x86.RCX), x86.Imm(0, 8))
		b.I(x86.MOV, x86.R64(x86.RAX), x86.R64(x86.RCX))
		b.Ret()
	})
	sig := abi.Signature{Params: []abi.Class{abi.ClassInt, abi.ClassInt}, Ret: abi.ClassInt}
	for _, in := range [][2]uint64{{3, 10}, {10, 3}, {5, 5}} {
		got, lifted := crossCheck(t, mem, sig, DefaultOptions(), in[:], nil)
		if lifted != got {
			t.Errorf("sbb in=%v: lifted %d != machine %d", in, lifted, got)
		}
	}
}

// TestLiftImm8SignExtension: 8-bit immediates in 64-bit ALU ops sign-extend
// (matchWidth).
func TestLiftImm8SignExtension(t *testing.T) {
	mem := buildFunc(t, func(b *asm.Builder) {
		b.I(x86.MOV, x86.R64(x86.RAX), x86.R64(x86.RDI))
		b.I(x86.ADD, x86.R64(x86.RAX), x86.Imm(-1, 1)) // imm8 -1 → -1 (64-bit)
		b.Ret()
	})
	sig := abi.Signature{Params: []abi.Class{abi.ClassInt}, Ret: abi.ClassInt}
	got, lifted := crossCheck(t, mem, sig, DefaultOptions(), []uint64{100}, nil)
	if got != 99 || lifted != 99 {
		t.Errorf("machine %d, lifted %d, want 99", got, lifted)
	}
}

// TestFacetCacheReducesCasts: Section III.C — with the facet cache, a value
// used repeatedly at the same width is converted once; without it every use
// re-derives the facet, leaving more cast instructions in the raw IR.
func TestFacetCacheReducesCasts(t *testing.T) {
	build := func(b *asm.Builder) {
		// edi (32-bit facet of rdi) used three times after a 64-bit def.
		b.I(x86.MOV, x86.R64(x86.RAX), x86.R64(x86.RDI))
		b.I(x86.ADD, x86.R32(x86.RCX), x86.R32(x86.RAX))
		b.I(x86.ADD, x86.R32(x86.RCX), x86.R32(x86.RAX))
		b.I(x86.ADD, x86.R32(x86.RCX), x86.R32(x86.RAX))
		b.I(x86.MOV, x86.R64(x86.RAX), x86.R64(x86.RCX))
		b.Ret()
	}
	countCasts := func(on bool) int {
		mem := buildFunc(t, build)
		o := DefaultOptions()
		o.FacetCache = on
		l := New(mem, o)
		f, err := l.LiftFunc(codeBase, "f", abi.Signature{
			Params: []abi.Class{abi.ClassInt, abi.ClassInt}, Ret: abi.ClassInt,
		})
		if err != nil {
			t.Fatal(err)
		}
		n := 0
		for _, blk := range f.Blocks {
			for _, in := range blk.Insts {
				switch in.Op {
				case ir.OpTrunc, ir.OpZExt, ir.OpSExt:
					n++
				}
			}
		}
		return n
	}
	with, without := countCasts(true), countCasts(false)
	if with >= without {
		t.Errorf("facet cache must reduce casts: %d with vs %d without", with, without)
	}
}
