package lift

import (
	"repro/internal/ir"
	"repro/internal/x86"
)

// setArithFlags computes the six status flags for an add- or sub-family
// instruction, following Section III.D of the paper: zero/sign/carry via
// integer comparisons, overflow via the bitwise xor/and/slt pattern
// (Figure 6b), parity via the ctpop intrinsic, and auxiliary carry via
// bitwise operations.
func (l *Lifter) setArithFlags(s *state, isSub bool, a, b, res ir.Value) {
	ty := res.Type()
	zero := ir.Int(ty, 0)
	s.flag[fZF] = l.b.ICmp(ir.PredEQ, res, zero)
	s.flag[fSF] = l.b.ICmp(ir.PredSLT, res, zero)
	if isSub {
		s.flag[fCF] = l.b.ICmp(ir.PredULT, a, b)
		// OF = (a^b) & (a^res) has the sign bit set.
		t1 := l.b.Xor(a, b)
		t2 := l.b.Xor(a, res)
		s.flag[fOF] = l.b.ICmp(ir.PredSLT, l.b.And(t1, t2), zero)
	} else {
		s.flag[fCF] = l.b.ICmp(ir.PredULT, res, a)
		// OF = ~(a^b) & (a^res) has the sign bit set.
		t1 := l.b.Xor(a, res)
		t2 := l.b.Xor(b, res)
		s.flag[fOF] = l.b.ICmp(ir.PredSLT, l.b.And(t1, t2), zero)
	}
	s.flag[fPF] = l.parityFlag(res)
	// AF = bit 4 of a^b^res.
	ax := l.b.Xor(l.b.Xor(a, b), res)
	s.flag[fAF] = l.b.ICmp(ir.PredNE, l.b.And(ax, ir.Int(ty, 0x10)), zero)
	// The flag cache preserves the semantics of cmp/sub for later
	// conditions (Figure 6); other flag writers invalidate it.
	if isSub {
		s.fc = flagCache{valid: true, a: a, b: b}
	} else {
		s.fc = flagCache{}
	}
}

// setLogicFlags computes flags for and/or/xor/test: CF and OF are cleared.
// Because CF = OF = 0, every cmp-style condition over these flags is
// equivalent to comparing the result against zero, so the flag cache is
// seeded with (res, 0).
func (l *Lifter) setLogicFlags(s *state, res ir.Value) {
	ty := res.Type()
	zero := ir.Int(ty, 0)
	s.flag[fZF] = l.b.ICmp(ir.PredEQ, res, zero)
	s.flag[fSF] = l.b.ICmp(ir.PredSLT, res, zero)
	s.flag[fCF] = ir.Bool(false)
	s.flag[fOF] = ir.Bool(false)
	s.flag[fAF] = ir.Bool(false)
	s.flag[fPF] = l.parityFlag(res)
	s.fc = flagCache{valid: true, a: res, b: zero}
}

// setResultFlagsOnly sets ZF/SF/PF from a result and leaves CF/OF undefined
// (shifts, imul), invalidating the flag cache.
func (l *Lifter) setResultFlagsOnly(s *state, res ir.Value) {
	ty := res.Type()
	zero := ir.Int(ty, 0)
	s.flag[fZF] = l.b.ICmp(ir.PredEQ, res, zero)
	s.flag[fSF] = l.b.ICmp(ir.PredSLT, res, zero)
	s.flag[fPF] = l.parityFlag(res)
	s.flag[fCF] = ir.UndefOf(ir.I1)
	s.flag[fOF] = ir.UndefOf(ir.I1)
	s.flag[fAF] = ir.UndefOf(ir.I1)
	s.fc = flagCache{}
}

// parityFlag computes PF: even parity of the low byte, via llvm.ctpop.i8.
func (l *Lifter) parityFlag(res ir.Value) ir.Value {
	b := res
	if res.Type() != ir.I8 {
		b = l.b.Trunc(res, ir.I8)
	}
	pop := l.b.Ctpop(b)
	lowbit := l.b.And(pop, ir.Int(ir.I8, 1))
	return l.b.ICmp(ir.PredEQ, lowbit, ir.Int(ir.I8, 0))
}

// cond reconstructs an x86 condition code as an i1 value. With a valid flag
// cache, signed and unsigned orderings become a single icmp on the original
// cmp operands — the optimization shown in Figure 6c. Without it, the
// condition is assembled from the individual flag values (Figure 6b).
func (l *Lifter) cond(s *state, c x86.Cond) ir.Value {
	if l.Opts.FlagCache && s.fc.valid {
		var p ir.Pred
		ok := true
		ptrOK := false // predicates that translate directly to pointer compares
		switch c {
		case x86.CondE:
			p, ptrOK = ir.PredEQ, true
		case x86.CondNE:
			p, ptrOK = ir.PredNE, true
		case x86.CondL:
			p = ir.PredSLT
		case x86.CondGE:
			p = ir.PredSGE
		case x86.CondLE:
			p = ir.PredSLE
		case x86.CondG:
			p = ir.PredSGT
		case x86.CondB:
			p, ptrOK = ir.PredULT, true
		case x86.CondAE:
			p, ptrOK = ir.PredUGE, true
		case x86.CondBE:
			p, ptrOK = ir.PredULE, true
		case x86.CondA:
			p, ptrOK = ir.PredUGT, true
		default:
			ok = false
		}
		if ok {
			if ptrOK && s.fc.aPtr != nil && s.fc.bPtr != nil {
				return l.b.ICmp(p, s.fc.aPtr, s.fc.bPtr)
			}
			return l.b.ICmp(p, s.fc.a, s.fc.b)
		}
	}
	flag := func(i int) ir.Value {
		if s.flag[i] == nil {
			return ir.UndefOf(ir.I1)
		}
		return s.flag[i]
	}
	var v ir.Value
	switch c &^ 1 {
	case x86.CondO:
		v = flag(fOF)
	case x86.CondB:
		v = flag(fCF)
	case x86.CondE:
		v = flag(fZF)
	case x86.CondBE:
		v = l.b.Or(flag(fCF), flag(fZF))
	case x86.CondS:
		v = flag(fSF)
	case x86.CondP:
		v = flag(fPF)
	case x86.CondL:
		v = l.b.Xor(flag(fSF), flag(fOF))
	case x86.CondLE:
		v = l.b.Or(flag(fZF), l.b.Xor(flag(fSF), flag(fOF)))
	}
	if c&1 != 0 {
		v = l.b.Xor(v, ir.Bool(true))
	}
	return v
}

// setComiFlags models comisd/ucomisd: ZF/PF/CF encode the floating
// comparison result; OF/SF/AF are cleared.
func (l *Lifter) setComiFlags(s *state, a, b ir.Value) {
	uno := l.b.FCmp(ir.PredUNO, a, b)
	oeq := l.b.FCmp(ir.PredOEQ, a, b)
	olt := l.b.FCmp(ir.PredOLT, a, b)
	s.flag[fZF] = l.b.Or(uno, oeq)
	s.flag[fCF] = l.b.Or(uno, olt)
	s.flag[fPF] = uno
	s.flag[fOF] = ir.Bool(false)
	s.flag[fSF] = ir.Bool(false)
	s.flag[fAF] = ir.Bool(false)
	s.fc = flagCache{}
}
