package lift

import (
	"repro/internal/abi"
	"repro/internal/ir"
	"repro/internal/x86"
)

// translate lowers one machine instruction into IR, updating the register
// state. Figure 5 of the paper shows representative translations; this is
// the full dispatch.
func (l *Lifter) translate(s *state, in *x86.Inst, sig abi.Signature) error {
	b := l.b
	switch in.Op {
	case x86.NOP, x86.ENDBR64:
		return nil
	case x86.STC:
		s.flag[fCF] = ir.Bool(true)
		s.fc = flagCache{}
		return nil
	case x86.CLC:
		s.flag[fCF] = ir.Bool(false)
		s.fc = flagCache{}
		return nil
	case x86.UD2:
		b.Unreachable()
		return nil

	case x86.MOV:
		if in.Dst.Kind == x86.KReg && in.Src.Kind == x86.KImm {
			v := ir.Int(ir.IntType(int(in.Dst.Size)*8), uint64(in.Src.Imm))
			l.writeIntOperand(s, in, in.Dst, v, nil)
			return nil
		}
		// Register-to-register 64-bit moves preserve the pointer facet.
		if in.Dst.Kind == x86.KReg && in.Src.Kind == x86.KReg && in.Dst.Size == 8 &&
			!in.Src.Reg.IsHighByte() {
			var ptr ir.Value
			if p, ok := s.gpr[in.Src.Reg][FPtr]; ok {
				ptr = p
			}
			v := l.readGPRFacet(s, in.Src.Reg, FI64)
			l.writeGPR(s, in.Dst.Reg, 8, v, ptr)
			return nil
		}
		v := l.readIntOperand(s, in, in.Src)
		l.writeIntOperand(s, in, in.Dst, v, nil)
		return nil

	case x86.MOVZX:
		v := l.readIntOperand(s, in, in.Src)
		l.writeGPR(s, in.Dst.Reg, in.Dst.Size, b.ZExt(v, ir.IntType(int(in.Dst.Size)*8)), nil)
		return nil
	case x86.MOVSX, x86.MOVSXD:
		v := l.readIntOperand(s, in, in.Src)
		l.writeGPR(s, in.Dst.Reg, in.Dst.Size, b.SExt(v, ir.IntType(int(in.Dst.Size)*8)), nil)
		return nil

	case x86.LEA:
		if in.Dst.Size == 8 && l.Opts.UseGEP && in.Src.Mem.Seg == x86.SegNone {
			ptr := l.memAddr(s, in, in.Src)
			iv := b.PtrToInt(ptr, ir.I64)
			l.writeGPR(s, in.Dst.Reg, 8, iv, ptr)
			return nil
		}
		iv := l.addrInt(s, in.Src.Mem)
		if in.Dst.Size != 8 {
			iv = b.Trunc(iv, ir.IntType(int(in.Dst.Size)*8))
		}
		l.writeGPR(s, in.Dst.Reg, in.Dst.Size, iv, nil)
		return nil

	case x86.ADD, x86.SUB, x86.CMP:
		a := l.readIntOperand(s, in, in.Dst)
		c := l.readIntOperand(s, in, in.Src)
		c = l.matchWidth(c, a.Type())
		var res ir.Value
		isSub := in.Op != x86.ADD
		if isSub {
			res = b.Sub(a, c)
		} else {
			res = b.Add(a, c)
		}
		l.setArithFlags(s, isSub, a, c, res)
		if in.Op == x86.CMP {
			// Record pointer facets of both operands so equality/unsigned
			// conditions compare pointers (one induction chain, not two).
			if in.Dst.Kind == x86.KReg && in.Src.Kind == x86.KReg &&
				in.Dst.Size == 8 && in.Src.Size == 8 {
				if ap, ok := s.gpr[in.Dst.Reg][FPtr]; ok {
					if bp, ok2 := s.gpr[in.Src.Reg][FPtr]; ok2 {
						s.fc.aPtr, s.fc.bPtr = ap, bp
					}
				}
			}
			return nil
		}
		// Pointer facet propagation for 64-bit register destinations
		// (Section III.C: add/lea can set both facets).
		var ptr ir.Value
		if in.Dst.Kind == x86.KReg && in.Dst.Size == 8 && l.Opts.UseGEP {
			if base, ok := s.gpr[in.Dst.Reg][FPtr]; ok {
				off := c
				if isSub {
					off = b.Sub(ir.Int(ir.I64, 0), c)
				}
				ptr = b.GEP(ir.I8, base, off)
			}
		}
		l.writeIntOperand(s, in, in.Dst, res, ptr)
		return nil

	case x86.ADC, x86.SBB:
		a := l.readIntOperand(s, in, in.Dst)
		c := l.matchWidth(l.readIntOperand(s, in, in.Src), a.Type())
		carry := b.ZExt(l.flagVal(s, fCF), a.Type())
		var res ir.Value
		if in.Op == x86.ADC {
			res = b.Add(b.Add(a, c), carry)
		} else {
			res = b.Sub(b.Sub(a, c), carry)
		}
		l.setResultFlagsOnly(s, res)
		l.writeIntOperand(s, in, in.Dst, res, nil)
		return nil

	case x86.AND, x86.OR, x86.XOR, x86.TEST:
		// xor r, r is the canonical zero idiom.
		if in.Op == x86.XOR && in.Dst.Kind == x86.KReg && in.Src.Kind == x86.KReg &&
			in.Dst.Reg == in.Src.Reg {
			zero := ir.Int(ir.IntType(int(in.Dst.Size)*8), 0)
			l.setLogicFlags(s, zero)
			l.writeIntOperand(s, in, in.Dst, zero, nil)
			return nil
		}
		a := l.readIntOperand(s, in, in.Dst)
		c := l.matchWidth(l.readIntOperand(s, in, in.Src), a.Type())
		var res ir.Value
		switch in.Op {
		case x86.AND, x86.TEST:
			res = b.And(a, c)
		case x86.OR:
			res = b.Or(a, c)
		case x86.XOR:
			res = b.Xor(a, c)
		}
		l.setLogicFlags(s, res)
		if in.Op != x86.TEST {
			l.writeIntOperand(s, in, in.Dst, res, nil)
		}
		return nil

	case x86.NOT:
		a := l.readIntOperand(s, in, in.Dst)
		res := b.Xor(a, ir.Int(a.Type(), ^uint64(0)))
		l.writeIntOperand(s, in, in.Dst, res, nil)
		return nil
	case x86.NEG:
		a := l.readIntOperand(s, in, in.Dst)
		res := b.Sub(ir.Int(a.Type(), 0), a)
		l.setArithFlags(s, true, ir.Int(a.Type(), 0), a, res)
		s.fc = flagCache{} // CF differs from plain sub semantics
		l.writeIntOperand(s, in, in.Dst, res, nil)
		return nil
	case x86.INC, x86.DEC:
		a := l.readIntOperand(s, in, in.Dst)
		one := ir.Int(a.Type(), 1)
		cf := s.flag[fCF] // preserved by inc/dec
		var res ir.Value
		if in.Op == x86.INC {
			res = b.Add(a, one)
			l.setArithFlags(s, false, a, one, res)
		} else {
			res = b.Sub(a, one)
			l.setArithFlags(s, true, a, one, res)
		}
		s.flag[fCF] = cf
		s.fc = flagCache{}
		l.writeIntOperand(s, in, in.Dst, res, nil)
		return nil

	case x86.IMUL:
		a := l.readIntOperand(s, in, in.Dst)
		c := l.matchWidth(l.readIntOperand(s, in, in.Src), a.Type())
		res := b.Mul(a, c)
		l.setResultFlagsOnly(s, res)
		l.writeIntOperand(s, in, in.Dst, res, nil)
		return nil
	case x86.IMUL3:
		c := l.readIntOperand(s, in, in.Src)
		res := b.Mul(c, ir.Int(c.Type(), uint64(in.Src2.Imm)))
		l.setResultFlagsOnly(s, res)
		l.writeIntOperand(s, in, in.Dst, res, nil)
		return nil
	case x86.MUL:
		return facetErr(in, "widening multiply is not supported")
	case x86.IDIV:
		// Supported in the common cqo/cdq-extended form: quotient in RAX,
		// remainder in RDX.
		ty := ir.IntType(int(in.Dst.Size) * 8)
		den := l.readIntOperand(s, in, in.Dst)
		num := l.readGPRFacet(s, x86.RAX, gprFacetOfSize(in.Dst.Size))
		q := b.SDiv(num, den)
		r := b.SRem(num, den)
		l.writeGPR(s, x86.RAX, in.Dst.Size, q, nil)
		l.writeGPR(s, x86.RDX, in.Dst.Size, r, nil)
		s.setFlagsUndef()
		_ = ty
		return nil
	case x86.DIV:
		den := l.readIntOperand(s, in, in.Dst)
		num := l.readGPRFacet(s, x86.RAX, gprFacetOfSize(in.Dst.Size))
		q := b.UDiv(num, den)
		r := b.URem(num, den)
		l.writeGPR(s, x86.RAX, in.Dst.Size, q, nil)
		l.writeGPR(s, x86.RDX, in.Dst.Size, r, nil)
		s.setFlagsUndef()
		return nil

	case x86.CQO:
		v := l.readGPRFacet(s, x86.RAX, FI64)
		l.writeGPR(s, x86.RDX, 8, b.AShr(v, ir.Int(ir.I64, 63)), nil)
		return nil
	case x86.CDQ:
		v := l.readGPRFacet(s, x86.RAX, FI32)
		l.writeGPR(s, x86.RDX, 4, b.AShr(v, ir.Int(ir.I32, 31)), nil)
		return nil
	case x86.CDQE:
		v := l.readGPRFacet(s, x86.RAX, FI32)
		l.writeGPR(s, x86.RAX, 8, b.SExt(v, ir.I64), nil)
		return nil

	case x86.SHL, x86.SHR, x86.SAR:
		a := l.readIntOperand(s, in, in.Dst)
		var cnt ir.Value
		if in.Src.Kind == x86.KImm {
			cnt = ir.Int(a.Type(), uint64(in.Src.Imm))
		} else {
			cl := l.readGPRFacet(s, x86.RCX, FI8)
			cnt = b.And(b.ZExt(cl, a.Type()), ir.Int(a.Type(), uint64(a.Type().Bits-1)))
		}
		var res ir.Value
		switch in.Op {
		case x86.SHL:
			res = b.Shl(a, cnt)
		case x86.SHR:
			res = b.LShr(a, cnt)
		case x86.SAR:
			res = b.AShr(a, cnt)
		}
		l.setResultFlagsOnly(s, res)
		l.writeIntOperand(s, in, in.Dst, res, nil)
		return nil
	case x86.ROL, x86.ROR:
		a := l.readIntOperand(s, in, in.Dst)
		bits := uint64(a.Type().Bits)
		if in.Src.Kind != x86.KImm {
			return facetErr(in, "variable rotate is not supported")
		}
		n := uint64(in.Src.Imm) % bits
		var res ir.Value
		if in.Op == x86.ROL {
			res = b.Or(b.Shl(a, ir.Int(a.Type(), n)), b.LShr(a, ir.Int(a.Type(), bits-n)))
		} else {
			res = b.Or(b.LShr(a, ir.Int(a.Type(), n)), b.Shl(a, ir.Int(a.Type(), bits-n)))
		}
		s.setFlagsUndef()
		l.writeIntOperand(s, in, in.Dst, res, nil)
		return nil

	case x86.PUSH:
		v := l.readIntOperand(s, in, withSize(in.Dst, 8))
		rsp := l.readGPRFacet(s, x86.RSP, FPtr)
		newSP := b.GEP(ir.I8, rsp, ir.Int(ir.I64, ^uint64(7))) // -8
		slot := b.Bitcast(newSP, ir.PtrTo(ir.I64))
		b.Store(v, slot)
		l.writeGPR(s, x86.RSP, 8, b.PtrToInt(newSP, ir.I64), newSP)
		return nil
	case x86.POP:
		rsp := l.readGPRFacet(s, x86.RSP, FPtr)
		slot := b.Bitcast(rsp, ir.PtrTo(ir.I64))
		v := b.Load(ir.I64, slot)
		newSP := b.GEP(ir.I8, rsp, ir.Int(ir.I64, 8))
		l.writeGPR(s, x86.RSP, 8, b.PtrToInt(newSP, ir.I64), newSP)
		l.writeIntOperand(s, in, in.Dst, v, nil)
		return nil

	case x86.CALL:
		return l.translateCall(s, in)
	case x86.CALLIndirect, x86.JMPIndirect:
		return facetErr(in, "indirect control flow is not supported")

	case x86.RET:
		switch sig.Ret {
		case abi.ClassF64:
			b.Ret(l.readXMMFacet(s, x86.XMM0, FF64))
		case abi.ClassPtr:
			b.Ret(l.readGPRFacet(s, x86.RAX, FPtr))
		case abi.ClassInt:
			b.Ret(l.readGPRFacet(s, x86.RAX, FI64))
		default:
			b.Ret(nil)
		}
		return nil

	case x86.JMP:
		t, ok := l.blockIR[uint64(in.Dst.Imm)]
		if !ok {
			return facetErr(in, "jump outside function")
		}
		b.Br(t)
		return nil
	case x86.JCC:
		t, ok := l.blockIR[uint64(in.Dst.Imm)]
		if !ok {
			return facetErr(in, "jump outside function")
		}
		fall, ok := l.blockIR[in.Addr+uint64(in.Len)]
		if !ok {
			return facetErr(in, "missing fall-through block")
		}
		b.CondBr(l.cond(s, in.Cond), t, fall)
		return nil
	case x86.CMOVCC:
		c := l.cond(s, in.Cond)
		v := l.readIntOperand(s, in, in.Src)
		old := l.readGPRFacet(s, in.Dst.Reg, gprFacetOfSize(in.Dst.Size))
		l.writeGPR(s, in.Dst.Reg, in.Dst.Size, b.Select(c, v, old), nil)
		return nil
	case x86.SETCC:
		c := l.cond(s, in.Cond)
		l.writeIntOperand(s, in, in.Dst, b.ZExt(c, ir.I8), nil)
		return nil

	case x86.XCHG:
		if in.Dst.Kind == x86.KReg && in.Src.Kind == x86.KReg {
			a := l.readGPRFacet(s, in.Dst.Reg, gprFacetOfSize(in.Dst.Size))
			c := l.readGPRFacet(s, in.Src.Reg, gprFacetOfSize(in.Src.Size))
			l.writeGPR(s, in.Dst.Reg, in.Dst.Size, c, nil)
			l.writeGPR(s, in.Src.Reg, in.Src.Size, a, nil)
			return nil
		}
		return facetErr(in, "xchg with memory is not supported")
	}
	return l.translateSSE(s, in)
}

// flagVal returns a flag value, defaulting to undef.
func (l *Lifter) flagVal(s *state, idx int) ir.Value {
	if s.flag[idx] == nil {
		return ir.UndefOf(ir.I1)
	}
	return s.flag[idx]
}

// matchWidth adapts an immediate operand's type to the computation type
// (x86 sign-extends 8-bit immediates to the operand size).
func (l *Lifter) matchWidth(v ir.Value, ty *ir.Type) ir.Value {
	if v.Type().Equal(ty) {
		return v
	}
	if c, ok := v.(*ir.ConstInt); ok {
		return ir.Int(ty, uint64(int64(c.V)))
	}
	if v.Type().Bits < ty.Bits {
		return l.b.SExt(v, ty)
	}
	return l.b.Trunc(v, ty)
}

func withSize(o x86.Operand, size uint8) x86.Operand {
	if o.Kind == x86.KImm || o.Kind == x86.KReg || o.Kind == x86.KMem {
		o.Size = size
	}
	return o
}

// translateCall lowers a direct call (Section III.B): the target must be a
// declared function; argument registers are read per its signature; caller-
// saved state is clobbered afterwards.
func (l *Lifter) translateCall(s *state, in *x86.Inst) error {
	target := uint64(in.Dst.Imm)
	callee, ok := l.Funcs[target]
	if !ok {
		return facetErr(in, "call to unknown function %#x (declare it first)", target)
	}
	b := l.b
	var args []ir.Value
	for _, loc := range callee.Sig.Locations() {
		if loc.IsFP {
			args = append(args, l.readXMMFacet(s, loc.Reg, FF64))
			continue
		}
		switch callee.Sig.Params[loc.Index] {
		case abi.ClassPtr:
			args = append(args, l.readGPRFacet(s, loc.Reg, FPtr))
		default:
			args = append(args, l.readGPRFacet(s, loc.Reg, FI64))
		}
	}
	call := b.Call(callee.Fn, args...)

	// Clobber caller-saved registers and all vector registers.
	for _, r := range abi.CallerSaved {
		clearFacets(s.gpr[r])
	}
	for i := range s.xmm {
		clearFacets(s.xmm[i])
	}
	s.setFlagsUndef()

	switch callee.Sig.Ret {
	case abi.ClassInt:
		l.writeGPR(s, x86.RAX, 8, call, nil)
	case abi.ClassPtr:
		l.writeGPR(s, x86.RAX, 8, b.PtrToInt(call, ir.I64), call)
	case abi.ClassF64:
		l.writeXMMScalarF64(s, x86.XMM0, call, false)
	}
	return nil
}
