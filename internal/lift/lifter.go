package lift

import (
	"fmt"
	"sort"

	"repro/internal/abi"
	"repro/internal/emu"
	"repro/internal/ir"
	"repro/internal/trace"
	"repro/internal/x86"
)

// Options control the transformation, exposing the paper's design choices
// as ablatable switches.
type Options struct {
	// FlagCache enables the cmp-operand cache of Section III.D (Figure 6).
	FlagCache bool
	// FacetCache caches derived register facets per block (Section III.C).
	FacetCache bool
	// UseGEP reconstructs addresses with getelementptr instead of integer
	// arithmetic plus inttoptr (Section III.E).
	UseGEP bool
	// StackSize is the size of the virtual stack allocated via alloca
	// (Section III.F). The used portion must not exceed this limit.
	StackSize int
	// MaxInsts bounds decoding, mirroring DBrew's resource limits.
	MaxInsts int
	// VolatileRanges marks address ranges whose accesses are volatile.
	// The paper notes this cannot be derived from the assembly and needs
	// an explicit API (Section III.E's future work); this is that API:
	// accesses whose address is statically within a range are marked, and
	// the optimizer then neither reorders nor eliminates them.
	VolatileRanges []VolatileRange
	// Trace, when non-nil, receives a "decode" span (basic-block discovery)
	// and a "lift" span (translation) per LiftFunc call, with instruction
	// and IR-value size attributes. A nil Trace records nothing.
	Trace *trace.Trace
}

// VolatileRange is a half-open interval of volatile memory.
type VolatileRange struct {
	Start, End uint64
}

// DefaultOptions returns the configuration used in the paper's evaluation.
func DefaultOptions() Options {
	return Options{FlagCache: true, FacetCache: true, UseGEP: true, StackSize: 1024}
}

// Callee associates a lifted or declared IR function with its signature.
type Callee struct {
	Fn  *ir.Func
	Sig abi.Signature
}

// Lifter converts x86-64 functions in an emulated address space to IR.
type Lifter struct {
	Mem    *emu.Memory
	Opts   Options
	Module *ir.Module
	// Funcs maps machine entry addresses to known functions so that call
	// instructions can be translated (Section III.B).
	Funcs map[uint64]*Callee

	b          *ir.Builder
	globalBase *ir.Global
	blockIR    map[uint64]*ir.Block
	stackSlots int
}

// New returns a lifter over mem with the given options.
func New(mem *emu.Memory, opts Options) *Lifter {
	return &Lifter{
		Mem:    mem,
		Opts:   opts,
		Module: &ir.Module{},
		Funcs:  make(map[uint64]*Callee),
	}
}

// Declare registers a function signature at an address without lifting it,
// so calls to it can be translated. The returned Callee's Fn is a
// declaration (no blocks) until LiftFunc is called for the same address.
func (l *Lifter) Declare(addr uint64, name string, sig abi.Signature) *Callee {
	if c, ok := l.Funcs[addr]; ok {
		return c
	}
	f := ir.NewFunc(name, retType(sig), paramTypes(sig)...)
	f.Addr = addr
	l.Module.AddFunc(f)
	c := &Callee{Fn: f, Sig: sig}
	l.Funcs[addr] = c
	return c
}

func paramTypes(sig abi.Signature) []*ir.Type {
	out := make([]*ir.Type, len(sig.Params))
	for i, c := range sig.Params {
		switch c {
		case abi.ClassPtr:
			out[i] = ir.PtrTo(ir.I8)
		case abi.ClassF64:
			out[i] = ir.Double
		default:
			out[i] = ir.I64
		}
	}
	return out
}

func retType(sig abi.Signature) *ir.Type {
	switch sig.Ret {
	case abi.ClassF64:
		return ir.Double
	case abi.ClassPtr:
		return ir.PtrTo(ir.I8)
	case abi.ClassInt:
		return ir.I64
	}
	return ir.Void
}

// phikey identifies one phi slot.
type phikey struct {
	isXMM  bool
	isFlag bool
	idx    uint8
	facet  Facet
}

type phiEntry struct {
	key phikey
	phi *ir.Inst
}

type blockLift struct {
	mb   *machBlock
	irb  *ir.Block
	st   *state
	phis []phiEntry
}

// gprPhiFacets and xmmPhiFacets are the facets merged through phi nodes at
// block heads; the paper merges "the values of the registers in all facets
// of the predecessors". Unused phis are removed by the optimizer.
var gprPhiFacets = []Facet{FI64, FPtr}
var xmmPhiFacets = []Facet{FI128, FF64, FV2F64}

// LiftFunc lifts the function at addr. The signature determines the
// parameter-register mapping of Section III.A.
func (l *Lifter) LiftFunc(addr uint64, name string, sig abi.Signature) (*ir.Func, error) {
	decodeSpan := l.Opts.Trace.Start("decode")
	mbs, err := discover(l.Mem, addr, l.Opts.MaxInsts)
	if err != nil {
		decodeSpan.EndErr(err)
		return nil, err
	}
	machInsts := 0
	for _, mb := range mbs {
		machInsts += len(mb.insts)
	}
	decodeSpan.Int("insts_out", int64(machInsts)).Int("blocks_out", int64(len(mbs))).End()

	liftSpan := l.Opts.Trace.Start("lift").Int("insts_in", int64(machInsts))
	f, err := l.liftBlocks(addr, name, sig, mbs)
	if err != nil {
		liftSpan.EndErr(err)
		return nil, err
	}
	liftSpan.Int("ir_values_out", int64(f.NumInsts())).End()
	return f, nil
}

// liftBlocks translates the discovered machine blocks into an IR function.
func (l *Lifter) liftBlocks(addr uint64, name string, sig abi.Signature, mbs []*machBlock) (*ir.Func, error) {
	callee := l.Declare(addr, name, sig)
	f := callee.Fn
	if len(f.Blocks) > 0 {
		return nil, fmt.Errorf("lift: function %s at %#x already lifted", name, addr)
	}
	l.b = ir.NewBuilder(f)
	l.blockIR = make(map[uint64]*ir.Block)

	// Sort blocks by address with the entry block first.
	sort.Slice(mbs, func(i, j int) bool {
		if mbs[i].start == addr {
			return true
		}
		if mbs[j].start == addr {
			return false
		}
		return mbs[i].start < mbs[j].start
	})

	// Every block head seeds one phi per GPR/XMM facet and flag, so the
	// phi-slot and instruction slices have a known floor — preallocating
	// them keeps the hot translate loop out of append's regrow path.
	phisPerBlock := 16*(len(gprPhiFacets)+len(xmmPhiFacets)) + numFlags

	lifts := make([]*blockLift, len(mbs))
	byAddr := make(map[uint64]*blockLift, len(mbs))
	for i, mb := range mbs {
		bl := &blockLift{mb: mb, irb: f.NewBlock(fmt.Sprintf("bb_%x", mb.start))}
		bl.phis = make([]phiEntry, 0, phisPerBlock)
		// Each machine instruction expands to a handful of IR instructions
		// on top of the phi block; start the slice at that scale.
		bl.irb.Insts = make([]*ir.Inst, 0, phisPerBlock+4*len(mb.insts))
		lifts[i] = bl
		byAddr[mb.start] = bl
		l.blockIR[mb.start] = bl.irb
	}

	// Synthetic entry: virtual stack plus parameter setup, then a branch to
	// the first machine block. This lets the machine entry block carry phis
	// when it is also a loop target.
	entrySt := newState()
	l.b.SetBlock(f.Blocks[0]) // the builder created "entry" first
	l.setupEntry(entrySt, f, sig)
	l.b.Br(byAddr[addr].irb)

	// Seed phis for every machine block.
	for _, bl := range lifts {
		l.b.SetBlock(bl.irb)
		st := newState()
		for r := 0; r < 16; r++ {
			for _, fc := range gprPhiFacets {
				phi := l.b.Phi(fc.Type())
				phi.Nam = fmt.Sprintf("%s.%s.%x", x86.Reg(r).Name(8), fc, bl.mb.start)
				st.gpr[r][fc] = phi
				bl.phis = append(bl.phis, phiEntry{phikey{false, false, uint8(r), fc}, phi})
			}
			for _, fc := range xmmPhiFacets {
				phi := l.b.Phi(fc.Type())
				phi.Nam = fmt.Sprintf("xmm%d.%s.%x", r, fc, bl.mb.start)
				st.xmm[r][fc] = phi
				bl.phis = append(bl.phis, phiEntry{phikey{true, false, uint8(r), fc}, phi})
			}
		}
		for fl := 0; fl < numFlags; fl++ {
			phi := l.b.Phi(ir.I1)
			phi.Nam = fmt.Sprintf("%s.%x", flagNames[fl], bl.mb.start)
			st.flag[fl] = phi
			bl.phis = append(bl.phis, phiEntry{phikey{false, true, uint8(fl), 0}, phi})
		}
		bl.st = st
	}

	// Translate instructions block by block.
	for _, bl := range lifts {
		l.b.SetBlock(bl.irb)
		s := bl.st
		for k := range bl.mb.insts {
			in := &bl.mb.insts[k]
			if err := l.translate(s, in, sig); err != nil {
				return nil, err
			}
		}
		// Fall-through edge if the block did not end in a terminator.
		if bl.irb.Term() == nil {
			if bl.mb.fall == 0 {
				return nil, fmt.Errorf("lift: block %#x has no successor", bl.mb.start)
			}
			l.b.Br(l.blockIR[bl.mb.fall])
		}
	}

	// Wire phis: connect each block's phi slots to the predecessor states,
	// materializing facet conversions at predecessor ends when needed.
	byIR := make(map[*ir.Block]*blockLift, len(lifts))
	for _, bl := range lifts {
		byIR[bl.irb] = bl
	}
	predsOf := f.Preds()
	for _, bl := range lifts {
		preds := predsOf[bl.irb]
		for _, pe := range bl.phis {
			// One incoming edge per predecessor: size the phi up front.
			pe.phi.Args = make([]ir.Value, 0, len(preds))
			pe.phi.Incoming = make([]*ir.Block, 0, len(preds))
			for _, p := range preds {
				v := l.predValue(p, byIR, entrySt, pe.key)
				ir.AddIncoming(pe.phi, v, p)
			}
		}
	}
	if err := ir.Verify(f); err != nil {
		return nil, fmt.Errorf("lift: generated invalid IR: %w", err)
	}
	return f, nil
}

// predValue fetches (or materializes) the value of a phi slot at the end of
// predecessor block p.
func (l *Lifter) predValue(p *ir.Block, byIR map[*ir.Block]*blockLift, entrySt *state, key phikey) ir.Value {
	var st *state
	if bl, ok := byIR[p]; ok {
		st = bl.st
	} else {
		st = entrySt // synthetic entry block
	}
	if key.isFlag {
		if st.flag[key.idx] == nil {
			return ir.UndefOf(ir.I1)
		}
		return st.flag[key.idx]
	}
	m := st.gpr[key.idx]
	if key.isXMM {
		m = st.xmm[key.idx]
	}
	if v, ok := m[key.facet]; ok {
		return v
	}
	// Materialize a conversion at the end of p (before its terminator).
	var out ir.Value
	l.atBlockEnd(p, func() {
		if key.isXMM {
			out = l.readXMMFacet(st, x86.XMM0+x86.Reg(key.idx), key.facet)
		} else {
			out = l.readGPRFacet(st, x86.Reg(key.idx), key.facet)
		}
	})
	return out
}

// atBlockEnd runs fn with the builder positioned before b's terminator.
func (l *Lifter) atBlockEnd(b *ir.Block, fn func()) {
	saved := l.b.Cur
	term := b.Insts[len(b.Insts)-1]
	b.Insts = b.Insts[:len(b.Insts)-1]
	l.b.SetBlock(b)
	fn()
	b.Insts = append(b.Insts, term)
	l.b.SetBlock(saved)
}

// setupEntry initializes the register state from the function parameters
// and allocates the virtual stack (Sections III.A and III.F).
func (l *Lifter) setupEntry(s *state, f *ir.Func, sig abi.Signature) {
	// Virtual stack: the red zone below the initial RSP needs headroom.
	stack := l.b.Alloca(ir.I8, l.Opts.StackSize)
	stack.Nam = "vstack"
	top := l.b.GEP(ir.I8, stack, ir.Int(ir.I64, uint64(l.Opts.StackSize-128)))
	top.Nam = "rsp.init"
	s.gpr[x86.RSP][FPtr] = top
	s.gpr[x86.RSP][FI64] = l.b.PtrToInt(top, ir.I64)

	for _, loc := range sig.Locations() {
		p := f.Params[loc.Index]
		if loc.IsFP {
			x := loc.Reg - x86.XMM0
			vec := l.b.InsertElement(ir.UndefOf(ir.VecOf(ir.Double, 2)), p, 0)
			s.xmm[x][FV2F64] = vec
			s.xmm[x][FF64] = p
			s.xmm[x][FI128] = l.b.Bitcast(vec, ir.I128)
			continue
		}
		switch sig.Params[loc.Index] {
		case abi.ClassPtr:
			s.gpr[loc.Reg][FPtr] = p
			s.gpr[loc.Reg][FI64] = l.b.PtrToInt(p, ir.I64)
		default:
			s.gpr[loc.Reg][FI64] = p
		}
	}
}
