package lift

import (
	"fmt"
	"sort"

	"repro/internal/emu"
	"repro/internal/x86"
)

// machBlock is one discovered machine basic block.
type machBlock struct {
	start uint64
	insts []x86.Inst
	// fall is the address of the fall-through successor (0 if none).
	fall uint64
	// branch is the direct branch target (0 if none).
	branch uint64
}

// discover decodes the function at entry into basic blocks, implementing
// Section III.B: every instruction belongs to exactly one block, blocks are
// split at jump targets (de-duplication), a block ends at ret/jmp/jcc, and
// calls do not end blocks. Indirect jumps are unsupported, as in the paper.
func discover(mem *emu.Memory, entry uint64, maxInsts int) ([]*machBlock, error) {
	if maxInsts == 0 {
		maxInsts = 100000
	}
	insts := make(map[uint64]x86.Inst)
	leaders := map[uint64]bool{entry: true}
	work := []uint64{entry}
	decoded := 0

	decodeAt := func(addr uint64) (x86.Inst, error) {
		if in, ok := insts[addr]; ok {
			return in, nil
		}
		window := 15
		var code []byte
		for window > 0 {
			b, err := mem.Bytes(addr, window)
			if err == nil {
				code = b
				break
			}
			window--
		}
		if code == nil {
			return x86.Inst{}, fmt.Errorf("lift: code fetch failed at %#x", addr)
		}
		in, err := x86.Decode(code, addr)
		if err != nil {
			return x86.Inst{}, err
		}
		insts[addr] = in
		decoded++
		if decoded > maxInsts {
			return x86.Inst{}, fmt.Errorf("lift: function exceeds %d instructions", maxInsts)
		}
		return in, nil
	}

	for len(work) > 0 {
		addr := work[len(work)-1]
		work = work[:len(work)-1]
		for {
			if _, seen := insts[addr]; seen {
				break // already scanned from here
			}
			in, err := decodeAt(addr)
			if err != nil {
				return nil, err
			}
			switch in.Op {
			case x86.RET, x86.UD2:
				// Path ends.
			case x86.JMP:
				t := uint64(in.Dst.Imm)
				if !leaders[t] {
					leaders[t] = true
					work = append(work, t)
				}
			case x86.JCC:
				t := uint64(in.Dst.Imm)
				if !leaders[t] {
					leaders[t] = true
					work = append(work, t)
				}
				fall := addr + uint64(in.Len)
				if !leaders[fall] {
					leaders[fall] = true
					work = append(work, fall)
				}
			case x86.JMPIndirect:
				return nil, fmt.Errorf("lift: indirect jump at %#x is not supported", addr)
			default:
				addr += uint64(in.Len)
				continue
			}
			break
		}
	}

	// Validate that every leader is an instruction start.
	for l := range leaders {
		if _, ok := insts[l]; !ok {
			return nil, fmt.Errorf("lift: branch target %#x is not an instruction boundary", l)
		}
	}

	// Assemble blocks: sorted instruction addresses, cut at leaders and
	// terminators.
	addrs := make([]uint64, 0, len(insts))
	for a := range insts {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })

	var blocks []*machBlock
	var cur *machBlock
	flush := func() {
		if cur != nil && len(cur.insts) > 0 {
			blocks = append(blocks, cur)
		}
		cur = nil
	}
	for i, a := range addrs {
		in := insts[a]
		if leaders[a] || cur == nil {
			flush()
			cur = &machBlock{start: a}
		}
		// Detect gaps: linear scan may include instructions from disjoint
		// ranges; a gap forces a new block without fall-through.
		cur.insts = append(cur.insts, in)
		end := a + uint64(in.Len)
		switch in.Op {
		case x86.RET, x86.UD2:
			flush()
		case x86.JMP:
			cur.branch = uint64(in.Dst.Imm)
			flush()
		case x86.JCC:
			cur.branch = uint64(in.Dst.Imm)
			cur.fall = end
			flush()
		default:
			// Split before the next leader (fall-through edge).
			if i+1 < len(addrs) && leaders[addrs[i+1]] && addrs[i+1] == end {
				cur.fall = end
				flush()
			} else if i+1 < len(addrs) && addrs[i+1] != end {
				return nil, fmt.Errorf("lift: control falls off decoded range at %#x", end)
			} else if i+1 == len(addrs) {
				return nil, fmt.Errorf("lift: function at %#x does not end with ret/jmp", entry)
			}
		}
	}
	flush()
	return blocks, nil
}
