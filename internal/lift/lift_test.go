package lift

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/abi"
	"repro/internal/emu"
	"repro/internal/ir"
	"repro/internal/x86"
	"repro/internal/x86/asm"
)

const codeBase = 0x401000

// buildFunc assembles machine code into a fresh memory image.
func buildFunc(t *testing.T, build func(b *asm.Builder)) *emu.Memory {
	t.Helper()
	b := asm.NewBuilder()
	build(b)
	code, _, err := b.Assemble(codeBase)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	mem := emu.NewMemory(0x10000000)
	if _, err := mem.MapBytes(codeBase, code, "code"); err != nil {
		t.Fatal(err)
	}
	return mem
}

// crossCheck runs the machine code and the lifted IR on identical inputs and
// compares results.
func crossCheck(t *testing.T, mem *emu.Memory, sig abi.Signature, opts Options,
	intArgs []uint64, fpArgs []float64) (machine, lifted uint64) {
	t.Helper()
	m := emu.NewMachine(mem)
	got, err := m.Call(codeBase, emu.CallArgs{Ints: intArgs, Floats: fpArgs}, 1_000_000)
	if err != nil {
		t.Fatalf("emulate: %v", err)
	}
	if sig.Ret == abi.ClassF64 {
		got = m.XMM[0].Lo
	}

	l := New(mem, opts)
	f, err := l.LiftFunc(codeBase, "f", sig)
	if err != nil {
		t.Fatalf("lift: %v", err)
	}
	if err := ir.Verify(f); err != nil {
		t.Fatalf("verify: %v", err)
	}
	ip := ir.NewInterp(mem)
	var args []ir.RV
	ii, fi := 0, 0
	for _, c := range sig.Params {
		if c == abi.ClassF64 {
			args = append(args, ir.RVFloat(fpArgs[fi]))
			fi++
		} else {
			args = append(args, ir.RV{Lo: intArgs[ii]})
			ii++
		}
	}
	res, err := ip.CallFunc(f, args)
	if err != nil {
		t.Fatalf("interp: %v\n%s", err, ir.FormatFunc(f))
	}
	return got, res.Lo
}

func maxBuilder(b *asm.Builder) {
	b.I(x86.MOV, x86.R64(x86.RAX), x86.R64(x86.RDI))
	b.I(x86.CMP, x86.R64(x86.RDI), x86.R64(x86.RSI))
	b.Emit(x86.Inst{Op: x86.CMOVCC, Cond: x86.CondL, Dst: x86.R64(x86.RAX), Src: x86.R64(x86.RSI)})
	b.Ret()
}

func TestLiftMax(t *testing.T) {
	for _, opts := range []Options{
		DefaultOptions(),
		{FlagCache: false, FacetCache: true, UseGEP: true, StackSize: 256},
		{FlagCache: true, FacetCache: false, UseGEP: true, StackSize: 256},
		{FlagCache: false, FacetCache: false, UseGEP: false, StackSize: 256},
	} {
		mem := buildFunc(t, maxBuilder)
		sig := abi.Sig(abi.ClassInt, abi.ClassInt, abi.ClassInt)
		cases := [][2]uint64{{1, 2}, {5, 3}, {^uint64(6), 2}, {0, 0}}
		for _, c := range cases {
			got, lifted := crossCheck(t, mem, sig, opts, c[:], nil)
			if got != lifted {
				t.Errorf("opts=%+v max(%d,%d): machine %d, lifted %d", opts, int64(c[0]), int64(c[1]), int64(got), int64(lifted))
			}
		}
	}
}

// TestFlagCacheIR verifies the Figure 6 effect at the IR level: with the
// flag cache the condition becomes a single signed icmp on the original
// operands; without it, the sign/overflow reconstruction pattern appears.
func TestFlagCacheIR(t *testing.T) {
	mem := buildFunc(t, maxBuilder)
	sig := abi.Sig(abi.ClassInt, abi.ClassInt, abi.ClassInt)

	l := New(mem, DefaultOptions())
	f, err := l.LiftFunc(codeBase, "max_fc", sig)
	if err != nil {
		t.Fatal(err)
	}
	out := ir.FormatFunc(f)
	if !strings.Contains(out, "icmp slt i64") {
		t.Errorf("flag cache should produce a direct signed comparison:\n%s", out)
	}

	mem2 := buildFunc(t, maxBuilder)
	opts := DefaultOptions()
	opts.FlagCache = false
	l2 := New(mem2, opts)
	f2, err := l2.LiftFunc(codeBase, "max_nofc", sig)
	if err != nil {
		t.Fatal(err)
	}
	out2 := ir.FormatFunc(f2)
	// Without the cache the condition is assembled from SF and OF: an xor
	// of the two i1 flag values.
	if !strings.Contains(out2, "xor i1") {
		t.Errorf("without flag cache the SF!=OF pattern should appear:\n%s", out2)
	}
}

func TestLiftLoop(t *testing.T) {
	mem := buildFunc(t, func(b *asm.Builder) {
		b.I(x86.XOR, x86.R32(x86.RAX), x86.R32(x86.RAX))
		b.I(x86.XOR, x86.R32(x86.RCX), x86.R32(x86.RCX))
		loop := b.NewLabel()
		done := b.NewLabel()
		b.Bind(loop)
		b.I(x86.CMP, x86.R64(x86.RCX), x86.R64(x86.RDI))
		b.Jcc(x86.CondGE, done)
		b.I(x86.ADD, x86.R64(x86.RAX), x86.R64(x86.RCX))
		b.I(x86.ADD, x86.R64(x86.RCX), x86.Imm(1, 8))
		b.Jmp(loop)
		b.Bind(done)
		b.Ret()
	})
	sig := abi.Sig(abi.ClassInt, abi.ClassInt)
	for _, n := range []uint64{0, 1, 7, 100} {
		got, lifted := crossCheck(t, mem, sig, DefaultOptions(), []uint64{n}, nil)
		if got != lifted {
			t.Errorf("sum(%d): machine %d, lifted %d", n, got, lifted)
		}
	}
}

// TestLiftFig5Sub checks the canonical translation of Figure 5: sub rax, 1.
func TestLiftFig5Sub(t *testing.T) {
	mem := buildFunc(t, func(b *asm.Builder) {
		b.I(x86.MOV, x86.R64(x86.RAX), x86.R64(x86.RDI))
		b.I(x86.SUB, x86.R64(x86.RAX), x86.Imm(1, 8))
		b.Ret()
	})
	sig := abi.Sig(abi.ClassInt, abi.ClassInt)
	l := New(mem, DefaultOptions())
	f, err := l.LiftFunc(codeBase, "dec", sig)
	if err != nil {
		t.Fatal(err)
	}
	out := ir.FormatFunc(f)
	if !strings.Contains(out, "sub i64") {
		t.Errorf("expected sub i64 in lifted IR:\n%s", out)
	}
	got, lifted := crossCheck(t, mem, sig, DefaultOptions(), []uint64{42}, nil)
	if got != 41 || lifted != 41 {
		t.Errorf("dec(42) = %d/%d, want 41", got, lifted)
	}
}

// TestLiftFig5MemLoad checks mov eax, [rbp-0xc]: a GEP-based 32-bit load
// with zero extension, as in Figure 5.
func TestLiftFig5MemLoad(t *testing.T) {
	mem := buildFunc(t, func(b *asm.Builder) {
		b.I(x86.MOV, x86.R64(x86.RBP), x86.R64(x86.RDI))
		b.I(x86.MOV, x86.R32(x86.RAX), x86.MemBD(4, x86.RBP, -0xc))
		b.Ret()
	})
	buf := mem.Alloc(64, 16, "buf")
	mem.WriteU(buf.Start+32-0xc, 4, 0xCAFEBABE)
	sig := abi.Sig(abi.ClassInt, abi.ClassPtr)
	got, lifted := crossCheck(t, mem, sig, DefaultOptions(), []uint64{buf.Start + 32}, nil)
	if got != 0xCAFEBABE || lifted != 0xCAFEBABE {
		t.Errorf("got %#x / %#x, want 0xCAFEBABE", got, lifted)
	}

	l := New(mem, DefaultOptions())
	f, err := l.LiftFunc(codeBase, "load32", sig)
	if err != nil {
		t.Fatal(err)
	}
	out := ir.FormatFunc(f)
	for _, want := range []string{"getelementptr", "load i32", "zext i32"} {
		if !strings.Contains(out, want) {
			t.Errorf("lifted IR missing %q:\n%s", want, out)
		}
	}
}

// TestLiftFig5Addsd checks addsd xmm0, xmm1: extractelement on bitcast
// vectors plus insertelement, as in Figure 5.
func TestLiftFig5Addsd(t *testing.T) {
	mem := buildFunc(t, func(b *asm.Builder) {
		b.I(x86.ADDSD, x86.X(x86.XMM0), x86.X(x86.XMM1))
		b.Ret()
	})
	sig := abi.Sig(abi.ClassF64, abi.ClassF64, abi.ClassF64)
	l := New(mem, DefaultOptions())
	f, err := l.LiftFunc(codeBase, "addsd", sig)
	if err != nil {
		t.Fatal(err)
	}
	out := ir.FormatFunc(f)
	for _, want := range []string{"fadd double", "insertelement"} {
		if !strings.Contains(out, want) {
			t.Errorf("lifted IR missing %q:\n%s", want, out)
		}
	}
	ip := ir.NewInterp(mem)
	res, err := ip.CallFunc(f, []ir.RV{ir.RVFloat(1.25), ir.RVFloat(2.5)})
	if err != nil {
		t.Fatal(err)
	}
	if res.F64() != 3.75 {
		t.Errorf("addsd(1.25,2.5) = %g, want 3.75", res.F64())
	}
}

func TestLiftStencilElement(t *testing.T) {
	// out[i] = 0.25 * (in[i-1] + in[i+1] + in[i-4] + in[i+4]) — the shape of
	// the paper's 4-point stencil element computation (Figure 8 bottom).
	mem := buildFunc(t, func(b *asm.Builder) {
		// rdi=in, rsi=out, rdx=i
		b.I(x86.MOVSD_X, x86.X(x86.XMM0), x86.MemBIS(8, x86.RDI, x86.RDX, 8, -8))
		b.I(x86.ADDSD, x86.X(x86.XMM0), x86.MemBIS(8, x86.RDI, x86.RDX, 8, 8))
		b.I(x86.ADDSD, x86.X(x86.XMM0), x86.MemBIS(8, x86.RDI, x86.RDX, 8, -32))
		b.I(x86.ADDSD, x86.X(x86.XMM0), x86.MemBIS(8, x86.RDI, x86.RDX, 8, 32))
		b.I(x86.MOV, x86.R64(x86.RAX), x86.Imm(0x3FD0000000000000, 8)) // 0.25
		b.I(x86.MOVQGP, x86.X(x86.XMM1), x86.R64(x86.RAX))
		b.I(x86.MULSD, x86.X(x86.XMM0), x86.X(x86.XMM1))
		b.I(x86.MOVSD_X, x86.MemBIS(8, x86.RSI, x86.RDX, 8, 0), x86.X(x86.XMM0))
		b.Ret()
	})
	in := mem.Alloc(16*8, 16, "in")
	outM := mem.Alloc(16*8, 16, "outM")
	outI := mem.Alloc(16*8, 16, "outI")
	for k := 0; k < 16; k++ {
		mem.WriteFloat64(in.Start+uint64(8*k), float64(k*k)+0.5)
	}
	sig := abi.Signature{Params: []abi.Class{abi.ClassPtr, abi.ClassPtr, abi.ClassInt}}

	m := emu.NewMachine(mem)
	l := New(mem, DefaultOptions())
	f, err := l.LiftFunc(codeBase, "stencil", sig)
	if err != nil {
		t.Fatal(err)
	}
	ip := ir.NewInterp(mem)
	for i := 4; i < 12; i++ {
		if _, err := m.Call(codeBase, emu.CallArgs{Ints: []uint64{in.Start, outM.Start, uint64(i)}}, 1000); err != nil {
			t.Fatal(err)
		}
		if _, err := ip.CallFunc(f, []ir.RV{{Lo: in.Start}, {Lo: outI.Start}, {Lo: uint64(i)}}); err != nil {
			t.Fatal(err)
		}
		a, _ := mem.ReadFloat64(outM.Start + uint64(8*i))
		bv, _ := mem.ReadFloat64(outI.Start + uint64(8*i))
		if a != bv || math.IsNaN(a) {
			t.Errorf("i=%d: machine %g, lifted %g", i, a, bv)
		}
	}
}

func TestLiftCall(t *testing.T) {
	// Outer calls inner(x) = x*3, then adds 1.
	var innerAddr uint64
	b := asm.NewBuilder()
	inner := b.NewLabel()
	b.I(x86.SUB, x86.R64(x86.RSP), x86.Imm(8, 8))
	b.CallLabel(inner)
	b.I(x86.ADD, x86.R64(x86.RSP), x86.Imm(8, 8))
	b.I(x86.ADD, x86.R64(x86.RAX), x86.Imm(1, 8))
	b.Ret()
	b.Bind(inner)
	b.I(x86.LEA, x86.R64(x86.RAX), x86.MemBIS(8, x86.RDI, x86.RDI, 2, 0))
	b.Ret()
	code, labels, err := b.Assemble(codeBase)
	if err != nil {
		t.Fatal(err)
	}
	innerAddr = labels[inner]
	mem := emu.NewMemory(0x10000000)
	if _, err := mem.MapBytes(codeBase, code, "code"); err != nil {
		t.Fatal(err)
	}

	sig := abi.Sig(abi.ClassInt, abi.ClassInt)
	l := New(mem, DefaultOptions())
	// Lift the inner function first so the call site resolves.
	if _, err := l.LiftFunc(innerAddr, "inner", sig); err != nil {
		t.Fatal(err)
	}
	f, err := l.LiftFunc(codeBase, "outer", sig)
	if err != nil {
		t.Fatal(err)
	}
	ip := ir.NewInterp(mem)
	res, err := ip.CallFunc(f, []ir.RV{{Lo: 10}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Lo != 31 {
		t.Errorf("outer(10) = %d, want 31", res.Lo)
	}
	m := emu.NewMachine(mem)
	got, err := m.Call(codeBase, emu.CallArgs{Ints: []uint64{10}}, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if got != 31 {
		t.Errorf("machine outer(10) = %d, want 31", got)
	}
}

func TestLiftPushPop(t *testing.T) {
	mem := buildFunc(t, func(b *asm.Builder) {
		b.I(x86.PUSH, x86.R64(x86.RBP))
		b.I(x86.MOV, x86.R64(x86.RBP), x86.R64(x86.RSP))
		b.I(x86.MOV, x86.MemBD(8, x86.RBP, -8), x86.R64(x86.RDI))
		b.I(x86.MOV, x86.R64(x86.RAX), x86.MemBD(8, x86.RBP, -8))
		b.I(x86.ADD, x86.R64(x86.RAX), x86.R64(x86.RAX))
		b.I(x86.POP, x86.R64(x86.RBP))
		b.Ret()
	})
	sig := abi.Sig(abi.ClassInt, abi.ClassInt)
	got, lifted := crossCheck(t, mem, sig, DefaultOptions(), []uint64{21}, nil)
	if got != 42 || lifted != 42 {
		t.Errorf("got %d/%d, want 42", got, lifted)
	}
}

func TestLiftRejectsIndirectJump(t *testing.T) {
	mem := buildFunc(t, func(b *asm.Builder) {
		b.I(x86.JMPIndirect, x86.R64(x86.RAX))
	})
	l := New(mem, DefaultOptions())
	if _, err := l.LiftFunc(codeBase, "bad", abi.Sig(abi.ClassInt)); err == nil {
		t.Fatal("indirect jump must be rejected")
	}
}

func TestLiftUnknownCallRejected(t *testing.T) {
	mem := buildFunc(t, func(b *asm.Builder) {
		b.Call(0x999999)
		b.Ret()
	})
	l := New(mem, DefaultOptions())
	if _, err := l.LiftFunc(codeBase, "bad", abi.Sig(abi.ClassInt)); err == nil {
		t.Fatal("call to undeclared function must be rejected")
	}
}

// TestLiftProperty cross-checks a small ALU function on random inputs.
func TestLiftProperty(t *testing.T) {
	mem := buildFunc(t, func(b *asm.Builder) {
		// f(a,b) = ((a+b)*3) ^ (a>>2) - b
		b.I(x86.LEA, x86.R64(x86.RAX), x86.MemBIS(8, x86.RDI, x86.RSI, 1, 0))
		b.I(x86.IMUL3, x86.R64(x86.RAX), x86.R64(x86.RAX), x86.Imm(3, 8))
		b.I(x86.MOV, x86.R64(x86.RCX), x86.R64(x86.RDI))
		b.I(x86.SHR, x86.R64(x86.RCX), x86.Imm(2, 1))
		b.I(x86.XOR, x86.R64(x86.RAX), x86.R64(x86.RCX))
		b.I(x86.SUB, x86.R64(x86.RAX), x86.R64(x86.RSI))
		b.Ret()
	})
	sig := abi.Sig(abi.ClassInt, abi.ClassInt, abi.ClassInt)
	l := New(mem, DefaultOptions())
	f, err := l.LiftFunc(codeBase, "mix", sig)
	if err != nil {
		t.Fatal(err)
	}
	ip := ir.NewInterp(mem)
	ip.MaxSteps = 1 << 30
	m := emu.NewMachine(mem)
	prop := func(a, b uint64) bool {
		got, err := m.Call(codeBase, emu.CallArgs{Ints: []uint64{a, b}}, 1000)
		if err != nil {
			return false
		}
		res, err := ip.CallFunc(f, []ir.RV{{Lo: a}, {Lo: b}})
		if err != nil {
			return false
		}
		return got == res.Lo
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
