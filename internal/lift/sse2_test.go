package lift

import (
	"math"
	"testing"

	"repro/internal/abi"
	"repro/internal/x86"
	"repro/internal/x86/asm"
)

// ssePair loads two 16-byte vectors from rdi/rdi+16, applies build, and
// returns xmm0's low half as the f64 result; the cross-check compares the
// lifted IR against the emulator on the same memory image.
func ssePairCheck(t *testing.T, vals [4]float64, build func(b *asm.Builder)) {
	t.Helper()
	mem := buildFunc(t, func(b *asm.Builder) {
		b.I(x86.MOVUPD, x86.X(x86.XMM0), x86.MemBD(16, x86.RDI, 0))
		b.I(x86.MOVUPD, x86.X(x86.XMM1), x86.MemBD(16, x86.RDI, 16))
		build(b)
		b.Ret()
	})
	buf := mem.Alloc(32, 16, "buf")
	for i, v := range vals {
		if err := mem.WriteFloat64(buf.Start+uint64(8*i), v); err != nil {
			t.Fatal(err)
		}
	}
	sig := abi.Signature{Params: []abi.Class{abi.ClassPtr}, Ret: abi.ClassF64}
	got, lifted := crossCheck(t, mem, sig, DefaultOptions(), []uint64{buf.Start}, nil)
	if lifted != got {
		t.Errorf("lifted %#x != machine %#x (%g vs %g)",
			lifted, got, math.Float64frombits(lifted), math.Float64frombits(got))
	}
}

func TestLiftPackedArithVariants(t *testing.T) {
	vals := [4]float64{1.5, -2.25, 4.0, 0.5}
	ops := []x86.Op{x86.ADDPD, x86.SUBPD, x86.MULPD, x86.DIVPD,
		x86.ANDPD, x86.ORPD, x86.XORPD}
	for _, op := range ops {
		op := op
		ssePairCheck(t, vals, func(b *asm.Builder) {
			b.I(op, x86.X(x86.XMM0), x86.X(x86.XMM1))
		})
	}
}

func TestLiftShufpdSelectors(t *testing.T) {
	vals := [4]float64{10, 20, 30, 40}
	for sel := int64(0); sel < 4; sel++ {
		sel := sel
		ssePairCheck(t, vals, func(b *asm.Builder) {
			b.I(x86.SHUFPD, x86.X(x86.XMM0), x86.X(x86.XMM1), x86.Imm(sel, 1))
		})
	}
}

func TestLiftUnpackVariants(t *testing.T) {
	vals := [4]float64{1, 2, 3, 4}
	for _, op := range []x86.Op{x86.UNPCKLPD, x86.UNPCKHPD, x86.PUNPCKLQDQ} {
		op := op
		ssePairCheck(t, vals, func(b *asm.Builder) {
			b.I(op, x86.X(x86.XMM0), x86.X(x86.XMM1))
		})
	}
}

func TestLiftMovmskpd(t *testing.T) {
	// Sign patterns: (+,−) → mask 2, (−,+) → mask 1, etc.
	cases := [][2]float64{{1, -1}, {-1, 1}, {-3, -4}, {5, 6}}
	for _, c := range cases {
		mem := buildFunc(t, func(b *asm.Builder) {
			b.I(x86.MOVUPD, x86.X(x86.XMM2), x86.MemBD(16, x86.RDI, 0))
			b.I(x86.MOVMSKPD, x86.R32(x86.RAX), x86.X(x86.XMM2))
			b.Ret()
		})
		buf := mem.Alloc(16, 16, "buf")
		mem.WriteFloat64(buf.Start, c[0])
		mem.WriteFloat64(buf.Start+8, c[1])
		sig := abi.Signature{Params: []abi.Class{abi.ClassPtr}, Ret: abi.ClassInt}
		got, lifted := crossCheck(t, mem, sig, DefaultOptions(), []uint64{buf.Start}, nil)
		want := uint64(0)
		if math.Signbit(c[0]) {
			want |= 1
		}
		if math.Signbit(c[1]) {
			want |= 2
		}
		if got != want || lifted != want {
			t.Errorf("movmskpd(%v): machine %d, lifted %d, want %d", c, got, lifted, want)
		}
	}
}

func TestLiftCvtChain(t *testing.T) {
	// int → ss → sd → int round trip with truncation.
	mem := buildFunc(t, func(b *asm.Builder) {
		b.I(x86.CVTSI2SS, x86.X(x86.XMM0), x86.R64(x86.RDI))
		b.I(x86.CVTSS2SD, x86.X(x86.XMM1), x86.X(x86.XMM0))
		b.I(x86.CVTSD2SS, x86.X(x86.XMM2), x86.X(x86.XMM1))
		b.I(x86.CVTSS2SD, x86.X(x86.XMM3), x86.X(x86.XMM2))
		b.I(x86.CVTTSD2SI, x86.R64(x86.RAX), x86.X(x86.XMM3))
		b.Ret()
	})
	sig := abi.Signature{Params: []abi.Class{abi.ClassInt}, Ret: abi.ClassInt}
	for _, n := range []uint64{0, 7, 1 << 20} {
		got, lifted := crossCheck(t, mem, sig, DefaultOptions(), []uint64{n}, nil)
		if got != n || lifted != n {
			t.Errorf("cvt chain(%d): machine %d, lifted %d", n, got, lifted)
		}
	}
}

func TestLiftMinMaxSqrtSd(t *testing.T) {
	vals := [4]float64{9.0, 2.0, 4.0, 16.0}
	for _, op := range []x86.Op{x86.MINSD, x86.MAXSD} {
		op := op
		ssePairCheck(t, vals, func(b *asm.Builder) {
			b.I(op, x86.X(x86.XMM0), x86.X(x86.XMM1))
		})
	}
	ssePairCheck(t, vals, func(b *asm.Builder) {
		b.I(x86.SQRTSD, x86.X(x86.XMM0), x86.X(x86.XMM1))
	})
}

func TestLiftMovhlpd(t *testing.T) {
	vals := [4]float64{1, 2, 3, 4}
	mem := buildFunc(t, func(b *asm.Builder) {
		b.I(x86.MOVUPD, x86.X(x86.XMM0), x86.MemBD(16, x86.RDI, 0))
		b.I(x86.MOVHPD, x86.X(x86.XMM0), x86.MemBD(8, x86.RDI, 16))
		b.I(x86.MOVLPD, x86.X(x86.XMM0), x86.MemBD(8, x86.RDI, 24))
		// Collapse halves so the return observes both.
		b.I(x86.MOVAPS, x86.X(x86.XMM1), x86.X(x86.XMM0))
		b.I(x86.UNPCKHPD, x86.X(x86.XMM1), x86.X(x86.XMM1))
		b.I(x86.ADDSD, x86.X(x86.XMM0), x86.X(x86.XMM1))
		b.Ret()
	})
	buf := mem.Alloc(32, 16, "buf")
	for i, v := range vals {
		mem.WriteFloat64(buf.Start+uint64(8*i), v)
	}
	sig := abi.Signature{Params: []abi.Class{abi.ClassPtr}, Ret: abi.ClassF64}
	got, lifted := crossCheck(t, mem, sig, DefaultOptions(), []uint64{buf.Start}, nil)
	if want := math.Float64bits(4.0 + 3.0); got != want || lifted != want {
		t.Errorf("movhpd/movlpd: machine %g, lifted %g, want 7",
			math.Float64frombits(got), math.Float64frombits(lifted))
	}
}
