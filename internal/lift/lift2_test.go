package lift

import (
	"strings"
	"testing"

	"repro/internal/abi"
	"repro/internal/emu"
	"repro/internal/ir"
	"repro/internal/x86"
	"repro/internal/x86/asm"
)

// liftAndRun builds, lifts (default options), and interprets with the given
// integer args.
func liftAndRun(t *testing.T, sig abi.Signature, ints []uint64, build func(b *asm.Builder)) uint64 {
	t.Helper()
	mem := buildFunc(t, build)
	l := New(mem, DefaultOptions())
	f, err := l.LiftFunc(codeBase, "f", sig)
	if err != nil {
		t.Fatalf("lift: %v", err)
	}
	ip := ir.NewInterp(mem)
	args := make([]ir.RV, len(ints))
	for i, v := range ints {
		args[i] = ir.RV{Lo: v}
	}
	res, err := ip.CallFunc(f, args)
	if err != nil {
		t.Fatalf("interp: %v\n%s", err, ir.FormatFunc(f))
	}
	return res.Lo
}

func TestLiftSetccFamilies(t *testing.T) {
	// A chain of setcc instructions, some consuming flags produced by
	// intervening shifts/logic ops — lifted semantics must match the
	// machine exactly (cross-checked, since the later conditions observe
	// shift/or flag effects).
	build := func(b *asm.Builder) {
		b.I(x86.CMP, x86.R64(x86.RDI), x86.R64(x86.RSI))
		b.Emit(x86.Inst{Op: x86.SETCC, Cond: x86.CondL, Dst: x86.R8L(x86.RAX)})
		b.I(x86.MOVZX, x86.R64(x86.RAX), x86.R8L(x86.RAX))
		b.Emit(x86.Inst{Op: x86.SETCC, Cond: x86.CondE, Dst: x86.R8L(x86.RCX)})
		b.I(x86.MOVZX, x86.R64(x86.RCX), x86.R8L(x86.RCX))
		b.I(x86.SHL, x86.R64(x86.RCX), x86.Imm(1, 1))
		b.I(x86.OR, x86.R64(x86.RAX), x86.R64(x86.RCX))
		// seta here reads the or's flags (CF=0; ZF from the result).
		b.Emit(x86.Inst{Op: x86.SETCC, Cond: x86.CondA, Dst: x86.R8L(x86.RCX)})
		b.I(x86.MOVZX, x86.R64(x86.RCX), x86.R8L(x86.RCX))
		b.I(x86.SHL, x86.R64(x86.RCX), x86.Imm(2, 1))
		b.I(x86.OR, x86.R64(x86.RAX), x86.R64(x86.RCX))
		b.Ret()
	}
	sig := abi.Sig(abi.ClassInt, abi.ClassInt, abi.ClassInt)
	for _, c := range [][2]uint64{{3, 5}, {5, 3}, {4, 4}, {0, ^uint64(0)}} {
		mem := buildFunc(t, build)
		native, lifted := crossCheck(t, mem, sig, DefaultOptions(), c[:], nil)
		if native != lifted {
			t.Errorf("setcc chain(%d,%d): machine %#x, lifted %#x", c[0], c[1], native, lifted)
		}
	}
}

func TestLiftCdqIdiv(t *testing.T) {
	got := liftAndRun(t, abi.Sig(abi.ClassInt, abi.ClassInt, abi.ClassInt), []uint64{0xFFFFFFFFFFFFFFDD /* -35 */, 4},
		func(b *asm.Builder) {
			b.I(x86.MOV, x86.R64(x86.RAX), x86.R64(x86.RDI))
			b.I(x86.CQO)
			b.I(x86.IDIV, x86.R64(x86.RSI))
			b.Ret()
		})
	if int64(got) != -8 {
		t.Errorf("idiv = %d, want -8", int64(got))
	}
}

func TestLiftHighByteRegisters(t *testing.T) {
	// Uses ah: f(a) = ((a & 0xff00) >> 8) + 1 via ah access.
	got := liftAndRun(t, abi.Sig(abi.ClassInt, abi.ClassInt), []uint64{0x1234},
		func(b *asm.Builder) {
			b.I(x86.MOV, x86.R64(x86.RAX), x86.R64(x86.RDI))
			b.I(x86.MOV, x86.R8L(x86.RCX), x86.RegOp(x86.AH, 1))
			b.I(x86.MOVZX, x86.R64(x86.RAX), x86.R8L(x86.RCX))
			b.I(x86.ADD, x86.R64(x86.RAX), x86.Imm(1, 8))
			b.Ret()
		})
	if got != 0x13 {
		t.Errorf("high byte = %#x, want 0x13", got)
	}
}

func TestLiftRotate(t *testing.T) {
	got := liftAndRun(t, abi.Sig(abi.ClassInt, abi.ClassInt), []uint64{0x8000000000000001},
		func(b *asm.Builder) {
			b.I(x86.MOV, x86.R64(x86.RAX), x86.R64(x86.RDI))
			b.I(x86.ROL, x86.R64(x86.RAX), x86.Imm(4, 1))
			b.Ret()
		})
	if got != 0x18 {
		t.Errorf("rol = %#x, want 0x18", got)
	}
}

func TestLiftComisdBranch(t *testing.T) {
	// f(a, b) = a > b ? 1 : 0 on doubles via comisd + ja.
	mem := buildFunc(t, func(b *asm.Builder) {
		yes := b.NewLabel()
		b.I(x86.UCOMISD, x86.X(x86.XMM0), x86.X(x86.XMM1))
		b.Jcc(x86.CondA, yes)
		b.I(x86.XOR, x86.R32(x86.RAX), x86.R32(x86.RAX))
		b.Ret()
		b.Bind(yes)
		b.I(x86.MOV, x86.R64(x86.RAX), x86.Imm(1, 8))
		b.Ret()
	})
	sig := abi.Signature{Params: []abi.Class{abi.ClassF64, abi.ClassF64}, Ret: abi.ClassInt}
	l := New(mem, DefaultOptions())
	f, err := l.LiftFunc(codeBase, "fcmp", sig)
	if err != nil {
		t.Fatal(err)
	}
	ip := ir.NewInterp(mem)
	for _, c := range []struct {
		a, b float64
		want uint64
	}{{2, 1, 1}, {1, 2, 0}, {1, 1, 0}} {
		got, err := ip.CallFunc(f, []ir.RV{ir.RVFloat(c.a), ir.RVFloat(c.b)})
		if err != nil {
			t.Fatal(err)
		}
		if got.Lo != c.want {
			t.Errorf("gt(%g,%g) = %d, want %d", c.a, c.b, got.Lo, c.want)
		}
	}
}

func TestLiftPackedVector(t *testing.T) {
	// out[0..1] = a[0..1] + b[0..1] via movupd/addpd.
	mem := buildFunc(t, func(b *asm.Builder) {
		b.I(x86.MOVUPD, x86.X(x86.XMM0), x86.MemBD(16, x86.RDI, 0))
		b.I(x86.MOVUPD, x86.X(x86.XMM1), x86.MemBD(16, x86.RSI, 0))
		b.I(x86.ADDPD, x86.X(x86.XMM0), x86.X(x86.XMM1))
		b.I(x86.MOVUPD, x86.MemBD(16, x86.RDX, 0), x86.X(x86.XMM0))
		b.Ret()
	})
	a := mem.Alloc(16, 16, "a")
	bb := mem.Alloc(16, 16, "b")
	o := mem.Alloc(16, 16, "o")
	mem.WriteFloat64(a.Start, 1)
	mem.WriteFloat64(a.Start+8, 2)
	mem.WriteFloat64(bb.Start, 10)
	mem.WriteFloat64(bb.Start+8, 20)
	sig := abi.Signature{Params: []abi.Class{abi.ClassPtr, abi.ClassPtr, abi.ClassPtr}}
	l := New(mem, DefaultOptions())
	f, err := l.LiftFunc(codeBase, "vadd", sig)
	if err != nil {
		t.Fatal(err)
	}
	ip := ir.NewInterp(mem)
	if _, err := ip.CallFunc(f, []ir.RV{{Lo: a.Start}, {Lo: bb.Start}, {Lo: o.Start}}); err != nil {
		t.Fatal(err)
	}
	v0, _ := mem.ReadFloat64(o.Start)
	v1, _ := mem.ReadFloat64(o.Start + 8)
	if v0 != 11 || v1 != 22 {
		t.Errorf("addpd: [%g %g]", v0, v1)
	}
	// The lifted IR should carry <2 x double> operations.
	if !strings.Contains(ir.FormatFunc(f), "<2 x double>") {
		t.Error("packed double type missing from lifted IR")
	}
}

func TestLiftShufflesAndUnpack(t *testing.T) {
	mem := buildFunc(t, func(b *asm.Builder) {
		b.I(x86.MOVUPD, x86.X(x86.XMM0), x86.MemBD(16, x86.RDI, 0))
		b.I(x86.MOVAPS, x86.X(x86.XMM1), x86.X(x86.XMM0))
		b.I(x86.UNPCKHPD, x86.X(x86.XMM1), x86.X(x86.XMM1)) // [hi, hi]
		b.I(x86.ADDSD, x86.X(x86.XMM0), x86.X(x86.XMM1))    // lo+hi in lane 0
		b.Ret()
	})
	buf := mem.Alloc(16, 16, "buf")
	mem.WriteFloat64(buf.Start, 3)
	mem.WriteFloat64(buf.Start+8, 4)
	sig := abi.Signature{Params: []abi.Class{abi.ClassPtr}, Ret: abi.ClassF64}
	l := New(mem, DefaultOptions())
	f, err := l.LiftFunc(codeBase, "hsum", sig)
	if err != nil {
		t.Fatal(err)
	}
	ip := ir.NewInterp(mem)
	got, err := ip.CallFunc(f, []ir.RV{{Lo: buf.Start}})
	if err != nil {
		t.Fatal(err)
	}
	if got.F64() != 7 {
		t.Errorf("hsum = %g, want 7", got.F64())
	}
}

func TestLiftStackRedZone(t *testing.T) {
	// Leaf function using the red zone below rsp.
	got := liftAndRun(t, abi.Sig(abi.ClassInt, abi.ClassInt), []uint64{41},
		func(b *asm.Builder) {
			b.I(x86.MOV, x86.MemBD(8, x86.RSP, -8), x86.R64(x86.RDI))
			b.I(x86.MOV, x86.R64(x86.RAX), x86.MemBD(8, x86.RSP, -8))
			b.I(x86.ADD, x86.R64(x86.RAX), x86.Imm(1, 8))
			b.Ret()
		})
	if got != 42 {
		t.Errorf("red zone = %d, want 42", got)
	}
}

func TestLiftF64ReturnViaParams(t *testing.T) {
	mem := buildFunc(t, func(b *asm.Builder) {
		b.I(x86.ADDSD, x86.X(x86.XMM0), x86.X(x86.XMM1))
		b.I(x86.MULSD, x86.X(x86.XMM0), x86.X(x86.XMM2))
		b.Ret()
	})
	sig := abi.Signature{Params: []abi.Class{abi.ClassF64, abi.ClassF64, abi.ClassF64}, Ret: abi.ClassF64}
	l := New(mem, DefaultOptions())
	f, err := l.LiftFunc(codeBase, "fma", sig)
	if err != nil {
		t.Fatal(err)
	}
	ip := ir.NewInterp(mem)
	got, err := ip.CallFunc(f, []ir.RV{ir.RVFloat(2), ir.RVFloat(3), ir.RVFloat(4)})
	if err != nil {
		t.Fatal(err)
	}
	if got.F64() != 20 {
		t.Errorf("(2+3)*4 = %g", got.F64())
	}
}

func TestLiftDiscoverSharedTail(t *testing.T) {
	// Two paths joining at a shared tail: the block must be emitted once
	// (the de-duplication property of Section III.B).
	mem := buildFunc(t, func(b *asm.Builder) {
		tail := b.NewLabel()
		b.I(x86.TEST, x86.R64(x86.RDI), x86.R64(x86.RDI))
		b.Jcc(x86.CondE, tail)
		b.I(x86.ADD, x86.R64(x86.RSI), x86.Imm(10, 8))
		b.Bind(tail)
		b.I(x86.MOV, x86.R64(x86.RAX), x86.R64(x86.RSI))
		b.I(x86.ADD, x86.R64(x86.RAX), x86.Imm(1, 8))
		b.Ret()
	})
	sig := abi.Sig(abi.ClassInt, abi.ClassInt, abi.ClassInt)
	l := New(mem, DefaultOptions())
	f, err := l.LiftFunc(codeBase, "tail", sig)
	if err != nil {
		t.Fatal(err)
	}
	// Count the ret instructions: exactly one (the tail is shared).
	rets := 0
	for _, blk := range f.Blocks {
		for _, in := range blk.Insts {
			if in.Op == ir.OpRet {
				rets++
			}
		}
	}
	if rets != 1 {
		t.Errorf("shared tail duplicated: %d rets", rets)
	}
	ip := ir.NewInterp(mem)
	got, _ := ip.CallFunc(f, []ir.RV{{Lo: 0}, {Lo: 5}})
	if got.Lo != 6 {
		t.Errorf("tail(0,5) = %d", got.Lo)
	}
	got, _ = ip.CallFunc(f, []ir.RV{{Lo: 1}, {Lo: 5}})
	if got.Lo != 16 {
		t.Errorf("tail(1,5) = %d", got.Lo)
	}
}

func TestLiftErrorOnRolVariable(t *testing.T) {
	mem := buildFunc(t, func(b *asm.Builder) {
		b.I(x86.ROL, x86.R64(x86.RAX), x86.RegOp(x86.RCX, 1))
		b.Ret()
	})
	l := New(mem, DefaultOptions())
	if _, err := l.LiftFunc(codeBase, "bad", abi.Sig(abi.ClassInt)); err == nil {
		t.Fatal("variable rotate must be rejected")
	}
}

func TestLiftStackLimitEnforced(t *testing.T) {
	// A function pushing deeper than the virtual stack fails at runtime of
	// the IR (the alloca has fixed size) — lifting itself succeeds.
	mem := buildFunc(t, func(b *asm.Builder) {
		for i := 0; i < 4; i++ {
			b.I(x86.PUSH, x86.R64(x86.RDI))
		}
		for i := 0; i < 4; i++ {
			b.I(x86.POP, x86.R64(x86.RAX))
		}
		b.Ret()
	})
	opts := DefaultOptions()
	opts.StackSize = 160 // 128 red zone + 32 usable: 4 pushes exactly
	l := New(mem, opts)
	f, err := l.LiftFunc(codeBase, "deep", abi.Sig(abi.ClassInt, abi.ClassInt))
	if err != nil {
		t.Fatal(err)
	}
	ip := ir.NewInterp(mem)
	got, err := ip.CallFunc(f, []ir.RV{{Lo: 9}})
	if err != nil {
		t.Fatalf("4 pushes must fit: %v", err)
	}
	if got.Lo != 9 {
		t.Errorf("push/pop = %d", got.Lo)
	}
}

func TestLiftCdqe32BitChain(t *testing.T) {
	got := liftAndRun(t, abi.Sig(abi.ClassInt, abi.ClassInt), []uint64{0xFFFFFFFF},
		func(b *asm.Builder) {
			b.I(x86.MOV, x86.R32(x86.RAX), x86.R32(x86.RDI)) // -1 as i32
			b.I(x86.CDQE)
			b.Ret()
		})
	if int64(got) != -1 {
		t.Errorf("cdqe = %d, want -1", int64(got))
	}
}

var _ = emu.NewMemory // keep import
