package lift

import (
	"repro/internal/ir"
	"repro/internal/x86"
)

var (
	v2f64 = ir.VecOf(ir.Double, 2)
	v4f32 = ir.VecOf(ir.Float, 4)
	v2i64 = ir.VecOf(ir.I64, 2)
	v4i32 = ir.VecOf(ir.I32, 4)
)

// readSSEOperand reads an SSE source operand in the requested facet; memory
// operands load the facet's type directly.
func (l *Lifter) readSSEOperand(s *state, in *x86.Inst, op x86.Operand, f Facet) ir.Value {
	if op.Kind == x86.KReg && op.Reg.IsXMM() {
		return l.readXMMFacet(s, op.Reg, f)
	}
	return l.loadMem(s, in, op, f.Type())
}

// scalarSSE lowers a scalar double/float arithmetic instruction: the
// operation applies to the low lane, the upper part is preserved.
func (l *Lifter) scalarSSE(s *state, in *x86.Inst, f Facet, op func(a, c ir.Value) ir.Value) error {
	a := l.readXMMFacet(s, in.Dst.Reg, f)
	c := l.readSSEOperand(s, in, in.Src, f)
	res := op(a, c)
	if f == FF64 {
		l.writeXMMScalarF64(s, in.Dst.Reg, res, true)
	} else {
		l.writeXMMScalarF32(s, in.Dst.Reg, res, true)
	}
	return nil
}

// packedSSE lowers a packed arithmetic instruction over the given vector
// facet; the full register is replaced.
func (l *Lifter) packedSSE(s *state, in *x86.Inst, f Facet, op func(a, c ir.Value) ir.Value) error {
	a := l.readXMMFacet(s, in.Dst.Reg, f)
	c := l.readSSEOperand(s, in, in.Src, f)
	l.writeXMM(s, in.Dst.Reg, f, op(a, c))
	return nil
}

func (l *Lifter) translateSSE(s *state, in *x86.Inst) error {
	b := l.b
	switch in.Op {
	case x86.MOVSD_X:
		if in.Dst.Kind == x86.KReg && in.Dst.Reg.IsXMM() {
			if in.Src.Kind == x86.KMem {
				v := l.loadMem(s, in, in.Src, ir.Double)
				l.writeXMMScalarF64(s, in.Dst.Reg, v, false) // load zeroes upper
			} else {
				v := l.readXMMFacet(s, in.Src.Reg, FF64)
				l.writeXMMScalarF64(s, in.Dst.Reg, v, true) // reg-reg preserves
			}
			return nil
		}
		l.storeMem(s, in, in.Dst, l.readXMMFacet(s, in.Src.Reg, FF64))
		return nil
	case x86.MOVSS_X:
		if in.Dst.Kind == x86.KReg && in.Dst.Reg.IsXMM() {
			if in.Src.Kind == x86.KMem {
				v := l.loadMem(s, in, in.Src, ir.Float)
				l.writeXMMScalarF32(s, in.Dst.Reg, v, false)
			} else {
				v := l.readXMMFacet(s, in.Src.Reg, FF32)
				l.writeXMMScalarF32(s, in.Dst.Reg, v, true)
			}
			return nil
		}
		l.storeMem(s, in, in.Dst, l.readXMMFacet(s, in.Src.Reg, FF32))
		return nil

	case x86.MOVAPS, x86.MOVUPS:
		return l.sseFullMove(s, in, FV4F32, in.Op == x86.MOVAPS)
	case x86.MOVAPD, x86.MOVUPD:
		return l.sseFullMove(s, in, FV2F64, in.Op == x86.MOVAPD)
	case x86.MOVDQA, x86.MOVDQU:
		return l.sseFullMove(s, in, FV2I64, in.Op == x86.MOVDQA)

	case x86.MOVQ:
		if in.Dst.Kind == x86.KReg && in.Dst.Reg.IsXMM() {
			var v ir.Value
			if in.Src.Kind == x86.KMem {
				v = l.loadMem(s, in, in.Src, ir.I64)
			} else {
				v = b.ExtractElement(l.readXMMFacet(s, in.Src.Reg, FV2I64), 0)
			}
			// movq zeroes the untouched part (Section III.C.2).
			vec := b.InsertElement(ir.ZeroOf(v2i64), v, 0)
			l.writeXMM(s, in.Dst.Reg, FV2I64, vec)
			return nil
		}
		v := b.ExtractElement(l.readXMMFacet(s, in.Src.Reg, FV2I64), 0)
		l.storeMem(s, in, in.Dst, v)
		return nil
	case x86.MOVD, x86.MOVQGP:
		ity := ir.I32
		if in.Op == x86.MOVQGP {
			ity = ir.I64
		}
		if in.Dst.Kind == x86.KReg && in.Dst.Reg.IsXMM() {
			v := l.readIntOperand(s, in, in.Src)
			var wide ir.Value = v
			if ity == ir.I32 {
				wide = b.ZExt(v, ir.I64)
			}
			vec := b.InsertElement(ir.ZeroOf(v2i64), wide, 0)
			l.writeXMM(s, in.Dst.Reg, FV2I64, vec)
			return nil
		}
		v := b.ExtractElement(l.readXMMFacet(s, in.Src.Reg, FV2I64), 0)
		if ity == ir.I32 {
			v = b.Trunc(v, ir.I32)
		}
		l.writeIntOperand(s, in, in.Dst, v, nil)
		return nil

	case x86.MOVHPD:
		if in.Dst.Kind == x86.KReg {
			v := l.loadMem(s, in, in.Src, ir.Double)
			vec := b.InsertElement(l.readXMMFacet(s, in.Dst.Reg, FV2F64), v, 1)
			l.writeXMM(s, in.Dst.Reg, FV2F64, vec)
			return nil
		}
		v := b.ExtractElement(l.readXMMFacet(s, in.Src.Reg, FV2F64), 1)
		l.storeMem(s, in, in.Dst, v)
		return nil
	case x86.MOVLPD:
		if in.Dst.Kind == x86.KReg {
			v := l.loadMem(s, in, in.Src, ir.Double)
			vec := b.InsertElement(l.readXMMFacet(s, in.Dst.Reg, FV2F64), v, 0)
			l.writeXMM(s, in.Dst.Reg, FV2F64, vec)
			return nil
		}
		v := b.ExtractElement(l.readXMMFacet(s, in.Src.Reg, FV2F64), 0)
		l.storeMem(s, in, in.Dst, v)
		return nil

	case x86.ADDSD:
		return l.scalarSSE(s, in, FF64, func(a, c ir.Value) ir.Value { return b.FAdd(a, c) })
	case x86.SUBSD:
		return l.scalarSSE(s, in, FF64, func(a, c ir.Value) ir.Value { return b.FSub(a, c) })
	case x86.MULSD:
		return l.scalarSSE(s, in, FF64, func(a, c ir.Value) ir.Value { return b.FMul(a, c) })
	case x86.DIVSD:
		return l.scalarSSE(s, in, FF64, func(a, c ir.Value) ir.Value { return b.FDiv(a, c) })
	case x86.MINSD:
		return l.scalarSSE(s, in, FF64, func(a, c ir.Value) ir.Value {
			return b.Select(b.FCmp(ir.PredOLT, c, a), c, a)
		})
	case x86.MAXSD:
		return l.scalarSSE(s, in, FF64, func(a, c ir.Value) ir.Value {
			return b.Select(b.FCmp(ir.PredOGT, c, a), c, a)
		})
	case x86.SQRTSD:
		c := l.readSSEOperand(s, in, in.Src, FF64)
		l.writeXMMScalarF64(s, in.Dst.Reg, b.Sqrt(c), true)
		return nil
	case x86.ADDSS:
		return l.scalarSSE(s, in, FF32, func(a, c ir.Value) ir.Value { return b.FAdd(a, c) })
	case x86.SUBSS:
		return l.scalarSSE(s, in, FF32, func(a, c ir.Value) ir.Value { return b.FSub(a, c) })
	case x86.MULSS:
		return l.scalarSSE(s, in, FF32, func(a, c ir.Value) ir.Value { return b.FMul(a, c) })
	case x86.DIVSS:
		return l.scalarSSE(s, in, FF32, func(a, c ir.Value) ir.Value { return b.FDiv(a, c) })

	case x86.ADDPD:
		return l.packedSSE(s, in, FV2F64, func(a, c ir.Value) ir.Value { return b.FAdd(a, c) })
	case x86.SUBPD:
		return l.packedSSE(s, in, FV2F64, func(a, c ir.Value) ir.Value { return b.FSub(a, c) })
	case x86.MULPD:
		return l.packedSSE(s, in, FV2F64, func(a, c ir.Value) ir.Value { return b.FMul(a, c) })
	case x86.DIVPD:
		return l.packedSSE(s, in, FV2F64, func(a, c ir.Value) ir.Value { return b.FDiv(a, c) })
	case x86.ADDPS:
		return l.packedSSE(s, in, FV4F32, func(a, c ir.Value) ir.Value { return b.FAdd(a, c) })
	case x86.SUBPS:
		return l.packedSSE(s, in, FV4F32, func(a, c ir.Value) ir.Value { return b.FSub(a, c) })
	case x86.MULPS:
		return l.packedSSE(s, in, FV4F32, func(a, c ir.Value) ir.Value { return b.FMul(a, c) })
	case x86.DIVPS:
		return l.packedSSE(s, in, FV4F32, func(a, c ir.Value) ir.Value { return b.FDiv(a, c) })

	case x86.XORPS, x86.XORPD, x86.PXOR:
		// Self-xor is the canonical vector zero idiom; make the constant
		// explicit so specialization can propagate it (cf. Figure 8).
		if in.Src.Kind == x86.KReg && in.Src.Reg == in.Dst.Reg {
			l.writeXMM(s, in.Dst.Reg, FI128, ir.Int(ir.I128, 0))
			return nil
		}
		return l.packedSSE(s, in, FV2I64, func(a, c ir.Value) ir.Value { return b.Xor(a, c) })
	case x86.ANDPS, x86.ANDPD, x86.PAND:
		return l.packedSSE(s, in, FV2I64, func(a, c ir.Value) ir.Value { return b.And(a, c) })
	case x86.ORPS, x86.ORPD, x86.POR:
		return l.packedSSE(s, in, FV2I64, func(a, c ir.Value) ir.Value { return b.Or(a, c) })
	case x86.PADDQ:
		return l.packedSSE(s, in, FV2I64, func(a, c ir.Value) ir.Value { return b.Add(a, c) })
	case x86.PSUBQ:
		return l.packedSSE(s, in, FV2I64, func(a, c ir.Value) ir.Value { return b.Sub(a, c) })
	case x86.PADDD:
		return l.packedSSE(s, in, FV4I32, func(a, c ir.Value) ir.Value { return b.Add(a, c) })
	case x86.PSUBD:
		return l.packedSSE(s, in, FV4I32, func(a, c ir.Value) ir.Value { return b.Sub(a, c) })

	case x86.UNPCKLPD, x86.PUNPCKLQDQ:
		a := l.readXMMFacet(s, in.Dst.Reg, FV2F64)
		c := l.readSSEOperand(s, in, in.Src, FV2F64)
		l.writeXMM(s, in.Dst.Reg, FV2F64, b.ShuffleVector(a, c, []int{0, 2}))
		return nil
	case x86.UNPCKHPD:
		a := l.readXMMFacet(s, in.Dst.Reg, FV2F64)
		c := l.readSSEOperand(s, in, in.Src, FV2F64)
		l.writeXMM(s, in.Dst.Reg, FV2F64, b.ShuffleVector(a, c, []int{1, 3}))
		return nil
	case x86.UNPCKLPS:
		a := l.readXMMFacet(s, in.Dst.Reg, FV4F32)
		c := l.readSSEOperand(s, in, in.Src, FV4F32)
		l.writeXMM(s, in.Dst.Reg, FV4F32, b.ShuffleVector(a, c, []int{0, 4, 1, 5}))
		return nil
	case x86.SHUFPD:
		a := l.readXMMFacet(s, in.Dst.Reg, FV2F64)
		c := l.readSSEOperand(s, in, in.Src, FV2F64)
		sel := uint8(in.Src2.Imm)
		l.writeXMM(s, in.Dst.Reg, FV2F64,
			b.ShuffleVector(a, c, []int{int(sel & 1), 2 + int(sel>>1&1)}))
		return nil
	case x86.SHUFPS:
		a := l.readXMMFacet(s, in.Dst.Reg, FV4F32)
		c := l.readSSEOperand(s, in, in.Src, FV4F32)
		sel := uint8(in.Src2.Imm)
		l.writeXMM(s, in.Dst.Reg, FV4F32, b.ShuffleVector(a, c,
			[]int{int(sel & 3), int(sel >> 2 & 3), 4 + int(sel>>4&3), 4 + int(sel>>6&3)}))
		return nil
	case x86.PSHUFD:
		c := l.readSSEOperand(s, in, in.Src, FV4I32)
		sel := uint8(in.Src2.Imm)
		l.writeXMM(s, in.Dst.Reg, FV4I32, b.ShuffleVector(c, ir.UndefOf(v4i32),
			[]int{int(sel & 3), int(sel >> 2 & 3), int(sel >> 4 & 3), int(sel >> 6 & 3)}))
		return nil

	case x86.CVTSI2SD:
		v := l.readIntOperand(s, in, in.Src)
		l.writeXMMScalarF64(s, in.Dst.Reg, b.SIToFP(v, ir.Double), true)
		return nil
	case x86.CVTSI2SS:
		v := l.readIntOperand(s, in, in.Src)
		l.writeXMMScalarF32(s, in.Dst.Reg, b.SIToFP(v, ir.Float), true)
		return nil
	case x86.CVTTSD2SI:
		v := l.readSSEOperand(s, in, in.Src, FF64)
		res := b.FPToSI(v, ir.IntType(int(in.Dst.Size)*8))
		l.writeGPR(s, in.Dst.Reg, in.Dst.Size, res, nil)
		return nil
	case x86.CVTSD2SS:
		v := l.readSSEOperand(s, in, in.Src, FF64)
		l.writeXMMScalarF32(s, in.Dst.Reg, b.FPTrunc(v, ir.Float), true)
		return nil
	case x86.CVTSS2SD:
		v := l.readSSEOperand(s, in, in.Src, FF32)
		l.writeXMMScalarF64(s, in.Dst.Reg, b.FPExt(v, ir.Double), true)
		return nil

	case x86.COMISD, x86.UCOMISD:
		a := l.readXMMFacet(s, in.Dst.Reg, FF64)
		c := l.readSSEOperand(s, in, in.Src, FF64)
		l.setComiFlags(s, a, c)
		return nil
	case x86.COMISS, x86.UCOMISS:
		a := l.readXMMFacet(s, in.Dst.Reg, FF32)
		c := l.readSSEOperand(s, in, in.Src, FF32)
		l.setComiFlags(s, a, c)
		return nil
	case x86.MOVMSKPD:
		vec := l.readXMMFacet(s, in.Src.Reg, FV2I64)
		e0 := b.LShr(b.ExtractElement(vec, 0), ir.Int(ir.I64, 63))
		e1 := b.Shl(b.LShr(b.ExtractElement(vec, 1), ir.Int(ir.I64, 63)), ir.Int(ir.I64, 1))
		res := b.Or(e0, e1)
		if in.Dst.Size != 8 {
			res = b.Trunc(res, ir.IntType(int(in.Dst.Size)*8))
		}
		l.writeGPR(s, in.Dst.Reg, in.Dst.Size, res, nil)
		return nil
	}
	return facetErr(in, "instruction is not supported by the lifter")
}

// sseFullMove lowers full 16-byte register/memory moves. Aligned forms
// attach the 16-byte alignment guarantee their semantics imply.
func (l *Lifter) sseFullMove(s *state, in *x86.Inst, f Facet, aligned bool) error {
	if in.Dst.Kind == x86.KReg && in.Dst.Reg.IsXMM() {
		if in.Src.Kind == x86.KMem {
			v := l.loadMem(s, in, in.Src, f.Type())
			if aligned {
				if ld, ok := v.(*ir.Inst); ok {
					ld.Align = 16
				}
			}
			l.writeXMM(s, in.Dst.Reg, f, v)
			return nil
		}
		l.writeXMM(s, in.Dst.Reg, f, l.readXMMFacet(s, in.Src.Reg, f))
		return nil
	}
	v := l.readXMMFacet(s, in.Src.Reg, f)
	ptr := l.memAddr(s, in, in.Dst)
	typed := l.b.Bitcast(ptr, ir.PtrInSpace(v.Type(), ptr.Type().AddrSpace))
	st := l.b.Store(v, typed)
	if aligned {
		st.Align = 16
	}
	return nil
}
