package lift

import (
	"repro/internal/ir"
	"repro/internal/x86"
)

// memAddr reconstructs the address of an x86 memory operand as a pointer
// value, following Section III.E: register operands use the pointer facet
// where available and GEP instructions connect the components; constant
// addresses are expressed relative to a global base pointer; segment
// overrides move the pointer into address space 256/257.
func (l *Lifter) memAddr(s *state, in *x86.Inst, op x86.Operand) ir.Value {
	mem := op.Mem
	space := 0
	switch mem.Seg {
	case x86.SegGS:
		space = 256
	case x86.SegFS:
		space = 257
	}

	// Constant absolute or RIP-relative address.
	if mem.Base == x86.NoReg && mem.Index == x86.NoReg || mem.RIPRel {
		addr := uint64(int64(mem.Disp))
		if mem.RIPRel {
			addr = in.Addr + uint64(in.Len) + uint64(int64(mem.Disp))
		}
		return l.constAddr(addr, space)
	}

	if !l.Opts.UseGEP || space != 0 {
		// inttoptr fallback: sum the components as integers.
		v := l.addrInt(s, mem)
		return l.b.IntToPtr(v, ir.PtrInSpace(ir.I8, space))
	}

	// GEP path.
	var ptr ir.Value
	var idx ir.Value
	if mem.Base != x86.NoReg {
		ptr = l.readGPRFacet(s, mem.Base, FPtr)
	}
	if mem.Index != x86.NoReg {
		iv := l.readGPRFacet(s, mem.Index, FI64)
		scale := int64(mem.Scale)
		disp := int64(mem.Disp)
		if scale > 1 && disp%scale == 0 {
			// Typed GEP with element size == scale keeps the index scaled
			// by the access stride, the form LLVM's alias analysis prefers.
			elem := ir.IntType(int(scale) * 8)
			if idxAdj := disp / scale; idxAdj != 0 {
				iv = l.b.Add(iv, ir.Int(ir.I64, uint64(idxAdj)))
			}
			if ptr == nil {
				ptr = l.b.IntToPtr(ir.Int(ir.I64, 0), ir.PtrTo(ir.I8))
			}
			typed := l.b.Bitcast(ptr, ir.PtrTo(elem))
			g := l.b.GEP(elem, typed, iv)
			return l.b.Bitcast(g, ir.PtrTo(ir.I8))
		}
		scaled := iv
		if scale > 1 {
			scaled = l.b.Mul(iv, ir.Int(ir.I64, uint64(scale)))
		}
		idx = scaled
	}
	if ptr == nil {
		ptr = l.b.IntToPtr(ir.Int(ir.I64, 0), ir.PtrTo(ir.I8))
	}
	if idx != nil {
		ptr = l.b.GEP(ir.I8, ptr, idx)
	}
	if mem.Disp != 0 {
		ptr = l.b.GEP(ir.I8, ptr, ir.Int(ir.I64, uint64(int64(mem.Disp))))
	}
	return ptr
}

// addrInt computes a memory operand address as a plain i64.
func (l *Lifter) addrInt(s *state, mem x86.MemArg) ir.Value {
	var v ir.Value
	if mem.Base != x86.NoReg {
		v = l.readGPRFacet(s, mem.Base, FI64)
	}
	if mem.Index != x86.NoReg {
		iv := l.readGPRFacet(s, mem.Index, FI64)
		if mem.Scale > 1 {
			iv = l.b.Mul(iv, ir.Int(ir.I64, uint64(mem.Scale)))
		}
		if v == nil {
			v = iv
		} else {
			v = l.b.Add(v, iv)
		}
	}
	if v == nil {
		return ir.Int(ir.I64, uint64(int64(mem.Disp)))
	}
	if mem.Disp != 0 {
		v = l.b.Add(v, ir.Int(ir.I64, uint64(int64(mem.Disp))))
	}
	return v
}

// constAddr expresses a constant address relative to the module's global
// base pointer, per the paper's recommendation to avoid inttoptr for
// constants. The first constant address found becomes the base.
func (l *Lifter) constAddr(addr uint64, space int) ir.Value {
	if space != 0 {
		return l.b.IntToPtr(ir.Int(ir.I64, addr), ir.PtrInSpace(ir.I8, space))
	}
	if l.globalBase == nil {
		l.globalBase = &ir.Global{Nam: "gbase", Ty: ir.I8, Addr: addr}
		l.Module.AddGlobal(l.globalBase)
	}
	off := int64(addr) - int64(l.globalBase.Addr)
	if off == 0 {
		return l.globalBase
	}
	return l.b.GEP(ir.I8, l.globalBase, ir.Int(ir.I64, uint64(off)))
}

// loadMem loads a typed value from a memory operand.
func (l *Lifter) loadMem(s *state, in *x86.Inst, op x86.Operand, ty *ir.Type) ir.Value {
	ptr := l.memAddr(s, in, op)
	typed := l.b.Bitcast(ptr, ir.PtrInSpace(ty, ptr.Type().AddrSpace))
	ld := l.b.Load(ty, typed)
	ld.Align = l.knownAlign(op)
	ld.Volatile = l.isVolatile(in, op, ty.Size())
	return ld
}

// isVolatile reports whether a memory operand with a statically-known
// address falls into a configured volatile range.
func (l *Lifter) isVolatile(in *x86.Inst, op x86.Operand, size int) bool {
	if len(l.Opts.VolatileRanges) == 0 {
		return false
	}
	mem := op.Mem
	var addr uint64
	switch {
	case mem.RIPRel:
		addr = in.Addr + uint64(in.Len) + uint64(int64(mem.Disp))
	case mem.Base == x86.NoReg && mem.Index == x86.NoReg:
		addr = uint64(int64(mem.Disp))
	default:
		return false // dynamic address: cannot be classified statically
	}
	for _, r := range l.Opts.VolatileRanges {
		if addr >= r.Start && addr+uint64(size) <= r.End {
			return true
		}
	}
	return false
}

// storeMem stores a typed value to a memory operand. Stores are
// non-volatile (Section III.E) unless the address is statically inside a
// configured VolatileRange.
func (l *Lifter) storeMem(s *state, in *x86.Inst, op x86.Operand, v ir.Value) {
	ptr := l.memAddr(s, in, op)
	typed := l.b.Bitcast(ptr, ir.PtrInSpace(v.Type(), ptr.Type().AddrSpace))
	st := l.b.Store(v, typed)
	st.Align = l.knownAlign(op)
	st.Volatile = l.isVolatile(in, op, v.Type().Size())
}

// knownAlign reports alignment knowledge recoverable from the encoding: the
// paper notes that alignment metadata is lost at the binary level, so only
// instructions whose semantics require alignment (movaps/movapd/movdqa)
// give any information. That information is attached by the caller; here we
// return 0 (unknown).
func (l *Lifter) knownAlign(op x86.Operand) int { return 0 }

// readIntOperand reads an integer operand (register facet, immediate, or
// typed memory load).
func (l *Lifter) readIntOperand(s *state, in *x86.Inst, op x86.Operand) ir.Value {
	switch op.Kind {
	case x86.KReg:
		if op.Reg.IsHighByte() {
			return l.readGPRFacet(s, op.Reg.Parent(), FI8H)
		}
		return l.readGPRFacet(s, op.Reg, gprFacetOfSize(op.Size))
	case x86.KImm:
		return ir.Int(ir.IntType(int(op.Size)*8), uint64(op.Imm))
	case x86.KMem:
		return l.loadMem(s, in, op, ir.IntType(int(op.Size)*8))
	}
	return nil
}

// writeIntOperand writes an integer value to a register or memory operand.
func (l *Lifter) writeIntOperand(s *state, in *x86.Inst, op x86.Operand, v ir.Value, ptr ir.Value) {
	switch op.Kind {
	case x86.KReg:
		if op.Reg.IsHighByte() {
			l.writeGPR(s, op.Reg, 1, v, nil)
			return
		}
		l.writeGPR(s, op.Reg, op.Size, v, ptr)
	case x86.KMem:
		l.storeMem(s, in, op, v)
	}
}
