// Package lift converts x86-64 machine code into the ir package's SSA form,
// implementing Section III of the paper: function-level lifting, basic-block
// discovery with splitting/de-duplication, a register facet model with a
// facet cache, per-flag i1 modelling with a flag cache for cmp, GEP-based
// memory operand reconstruction with a global-base heuristic, segment
// address spaces, and a virtual stack allocated via alloca.
package lift

import (
	"fmt"

	"repro/internal/ir"
	"repro/internal/x86"
)

// Facet identifies one view of an architectural register, as in Figure 4 of
// the paper: general purpose registers can be read as i64/i32/i16/i8 or as a
// pointer, SSE registers as i128, scalar float/double, or vectors.
type Facet uint8

// Register facets.
const (
	FI64 Facet = iota // canonical GPR value
	FI32
	FI16
	FI8
	FI8H // high byte (ah..bh)
	FPtr // pointer facet (i8*)

	FI128 Facet = iota + 10 // canonical SSE value
	FF64
	FF32
	FV2F64
	FV4F32
	FV2I64
	FV4I32
)

var facetNames = map[Facet]string{
	FI64: "i64", FI32: "i32", FI16: "i16", FI8: "i8", FI8H: "i8h", FPtr: "ptr",
	FI128: "i128", FF64: "f64", FF32: "f32",
	FV2F64: "v2f64", FV4F32: "v4f32", FV2I64: "v2i64", FV4I32: "v4i32",
}

// String names the facet for diagnostics.
func (f Facet) String() string { return facetNames[f] }

// Type returns the IR type of a facet.
func (f Facet) Type() *ir.Type {
	switch f {
	case FI64:
		return ir.I64
	case FI32:
		return ir.I32
	case FI16:
		return ir.I16
	case FI8, FI8H:
		return ir.I8
	case FPtr:
		return ir.PtrTo(ir.I8)
	case FI128:
		return ir.I128
	case FF64:
		return ir.Double
	case FF32:
		return ir.Float
	case FV2F64:
		return ir.VecOf(ir.Double, 2)
	case FV4F32:
		return ir.VecOf(ir.Float, 4)
	case FV2I64:
		return ir.VecOf(ir.I64, 2)
	case FV4I32:
		return ir.VecOf(ir.I32, 2*2)
	}
	return ir.Void
}

// gprFacetOfSize maps an access width to the matching GPR facet.
func gprFacetOfSize(size uint8) Facet {
	switch size {
	case 1:
		return FI8
	case 2:
		return FI16
	case 4:
		return FI32
	}
	return FI64
}

// flag indices into the state's flag array.
const (
	fCF = iota
	fPF
	fAF
	fZF
	fSF
	fOF
	numFlags
)

var flagNames = [numFlags]string{"cf", "pf", "af", "zf", "sf", "of"}

// flagCache remembers the operands of the most recent cmp/sub so that signed
// and unsigned conditions can be reconstructed as a single icmp (Figure 6).
// When both operands also carry pointer facets, those are recorded so that
// equality and unsigned orderings become pointer comparisons — keeping loops
// over arrays on a single pointer induction chain.
type flagCache struct {
	valid      bool
	a, b       ir.Value
	aPtr, bPtr ir.Value
}

// state is the per-basic-block register mapping from architectural state to
// SSA values, as described in Section III.C.
type state struct {
	gpr  [16]map[Facet]ir.Value
	xmm  [16]map[Facet]ir.Value
	flag [numFlags]ir.Value
	fc   flagCache
}

func newState() *state {
	s := &state{}
	for i := range s.gpr {
		s.gpr[i] = make(map[Facet]ir.Value, 4)
		s.xmm[i] = make(map[Facet]ir.Value, 4)
	}
	return s
}

// killFlags invalidates the flag cache; callers must also set flag values.
func (s *state) killFlags() { s.fc = flagCache{} }

// setFlagsUndef marks all six flags undefined (after instructions whose
// flag effects the lifter does not model precisely).
func (s *state) setFlagsUndef() {
	for i := range s.flag {
		s.flag[i] = ir.UndefOf(ir.I1)
	}
	s.killFlags()
}

// readGPRFacet returns the SSA value of one facet of a GPR, deriving and
// caching it from the canonical i64 value if necessary.
func (l *Lifter) readGPRFacet(s *state, r x86.Reg, f Facet) ir.Value {
	m := s.gpr[r]
	if v, ok := m[f]; ok && (l.Opts.FacetCache || f == FI64) {
		return v
	}
	canon, ok := m[FI64]
	if !ok {
		// Register never written: undef, as in the paper.
		canon = ir.UndefOf(ir.I64)
		m[FI64] = canon
	}
	var v ir.Value
	switch f {
	case FI64:
		v = canon
	case FI32, FI16, FI8:
		v = l.b.Trunc(canon, f.Type())
	case FI8H:
		v = l.b.Trunc(l.b.LShr(canon, ir.Int(ir.I64, 8)), ir.I8)
	case FPtr:
		v = l.b.IntToPtr(canon, ir.PtrTo(ir.I8))
	}
	if l.Opts.FacetCache {
		m[f] = v
	}
	return v
}

// writeGPR updates a GPR with a value of the given access size, modelling
// the x86 zero/merge semantics (Figure 4a) and maintaining the canonical
// i64 facet. ptr optionally carries a pointer facet for the same value.
func (l *Lifter) writeGPR(s *state, r x86.Reg, size uint8, v ir.Value, ptr ir.Value) {
	if r.IsHighByte() {
		parent := r.Parent()
		old := l.readGPRFacet(s, parent, FI64)
		cleared := l.b.And(old, ir.Int(ir.I64, ^uint64(0xFF00)))
		sh := l.b.Shl(l.b.ZExt(v, ir.I64), ir.Int(ir.I64, 8))
		merged := l.b.Or(cleared, sh)
		clearFacets(s.gpr[parent])
		s.gpr[parent][FI64] = merged
		s.gpr[parent][FI8H] = v
		return
	}
	m := s.gpr[r]
	switch size {
	case 8:
		clearFacets(m)
		m[FI64] = v
		if ptr != nil {
			m[FPtr] = ptr
		}
	case 4:
		canon := l.b.ZExt(v, ir.I64) // 32-bit writes zero the upper half
		clearFacets(m)
		m[FI64] = canon
		m[FI32] = v
	case 2, 1:
		mask := uint64(0xFFFF)
		f := FI16
		if size == 1 {
			mask = 0xFF
			f = FI8
		}
		old := l.readGPRFacet(s, r, FI64)
		cleared := l.b.And(old, ir.Int(ir.I64, ^mask))
		merged := l.b.Or(cleared, l.b.ZExt(v, ir.I64))
		clearFacets(m)
		m[FI64] = merged
		m[f] = v
	}
}

// readXMMFacet returns one facet of an SSE register, deriving it through the
// canonical i128 (or a cached vector facet) as in Figure 4b/4c.
func (l *Lifter) readXMMFacet(s *state, r x86.Reg, f Facet) ir.Value {
	m := s.xmm[r-x86.XMM0]
	if v, ok := m[f]; ok && (l.Opts.FacetCache || f == FI128) {
		return v
	}
	// The scalar facets are extracted from the matching vector facet; the
	// vector facets are bitcast from the canonical integer.
	var v ir.Value
	switch f {
	case FI128:
		// Prefer rebuilding from a cached vector facet.
		if l.Opts.FacetCache {
			for _, vf := range []Facet{FV2F64, FV4F32, FV2I64, FV4I32} {
				if cv, ok := m[vf]; ok {
					v = l.b.Bitcast(cv, ir.I128)
					m[FI128] = v
					return v
				}
			}
		}
		cv, ok := m[FI128]
		if !ok {
			cv = ir.UndefOf(ir.I128)
			m[FI128] = cv
		}
		return cv
	case FV2F64, FV4F32, FV2I64, FV4I32:
		v = l.b.Bitcast(l.readXMMFacet(s, r, FI128), f.Type())
	case FF64:
		vec := l.readXMMFacet(s, r, FV2F64)
		v = l.b.ExtractElement(vec, 0)
	case FF32:
		vec := l.readXMMFacet(s, r, FV4F32)
		v = l.b.ExtractElement(vec, 0)
	}
	if l.Opts.FacetCache {
		m[f] = v
	}
	return v
}

// writeXMM replaces the full contents of an SSE register with the given
// facet value, updating the canonical form.
func (l *Lifter) writeXMM(s *state, r x86.Reg, f Facet, v ir.Value) {
	m := s.xmm[r-x86.XMM0]
	clearFacets(m)
	if f == FI128 {
		m[FI128] = v
		return
	}
	m[FI128] = l.b.Bitcast(v, ir.I128)
	if l.Opts.FacetCache {
		m[f] = v
	}
}

// writeXMMScalarF64 writes the low double of an SSE register. When preserve
// is set the upper lane is kept (standard SSE scalar semantics); otherwise
// it is zeroed (movsd-from-memory, movq).
func (l *Lifter) writeXMMScalarF64(s *state, r x86.Reg, v ir.Value, preserve bool) {
	var vec ir.Value
	if preserve {
		vec = l.b.InsertElement(l.readXMMFacet(s, r, FV2F64), v, 0)
	} else {
		vec = l.b.InsertElement(ir.ZeroOf(ir.VecOf(ir.Double, 2)), v, 0)
	}
	m := s.xmm[r-x86.XMM0]
	clearFacets(m)
	m[FI128] = l.b.Bitcast(vec, ir.I128)
	if l.Opts.FacetCache {
		m[FV2F64] = vec
		m[FF64] = v
	}
}

// writeXMMScalarF32 writes the low float lane.
func (l *Lifter) writeXMMScalarF32(s *state, r x86.Reg, v ir.Value, preserve bool) {
	var vec ir.Value
	if preserve {
		vec = l.b.InsertElement(l.readXMMFacet(s, r, FV4F32), v, 0)
	} else {
		vec = l.b.InsertElement(ir.ZeroOf(ir.VecOf(ir.Float, 4)), v, 0)
	}
	m := s.xmm[r-x86.XMM0]
	clearFacets(m)
	m[FI128] = l.b.Bitcast(vec, ir.I128)
	if l.Opts.FacetCache {
		m[FV4F32] = vec
		m[FF32] = v
	}
}

func clearFacets(m map[Facet]ir.Value) {
	for k := range m {
		delete(m, k)
	}
}

// facetErr builds a descriptive lifting error.
func facetErr(in *x86.Inst, format string, args ...interface{}) error {
	return fmt.Errorf("lift: %#x %v: %s", in.Addr, in, fmt.Sprintf(format, args...))
}
