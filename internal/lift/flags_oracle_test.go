package lift

// Per-flag oracle tests: for each arithmetic opcode and boundary operand
// pair, run the instruction natively in the emulator and compare every one
// of the six status flags (CF, PF, AF, ZF, SF, OF) — individually, not as a
// packed word — against the flags the lifter materializes as IR. The
// differential suite in internal/crosstest only observes flags indirectly
// (through jcc/setcc/cmov); this test pins the bit-level contract of
// setArithFlags itself, including inc's CF preservation.

import (
	"testing"

	"repro/internal/abi"
	"repro/internal/emu"
	"repro/internal/ir"
	"repro/internal/x86"
	"repro/internal/x86/asm"
)

// flagName mirrors the fCF..fOF index order.
var flagName = [numFlags]string{"CF", "PF", "AF", "ZF", "SF", "OF"}

// oracleOps are the instructions under test. Every op reads RAX (and RCX
// where it has a source operand); inc additionally must preserve the
// incoming CF, which the varying cf0 seed exercises.
var oracleOps = []struct {
	name string
	inst x86.Inst
}{
	{"add", x86.Inst{Op: x86.ADD, Dst: x86.R64(x86.RAX), Src: x86.R64(x86.RCX)}},
	{"sub", x86.Inst{Op: x86.SUB, Dst: x86.R64(x86.RAX), Src: x86.R64(x86.RCX)}},
	{"cmp", x86.Inst{Op: x86.CMP, Dst: x86.R64(x86.RAX), Src: x86.R64(x86.RCX)}},
	{"inc", x86.Inst{Op: x86.INC, Dst: x86.R64(x86.RAX)}},
}

// oracleOperands are boundary pairs chosen to flip each flag at least once:
// zero results (ZF), sign changes (SF), signed overflow at both extremes
// (OF), unsigned wraparound (CF), low-nibble carries (AF), and both parities
// of the result byte (PF).
var oracleOperands = [][2]uint64{
	{0, 0},
	{0, 1},
	{1, 1},
	{1, 2},
	{3, 1},
	{0xFFFFFFFFFFFFFFFF, 0},
	{0xFFFFFFFFFFFFFFFF, 1},
	{0xFFFFFFFFFFFFFFFF, 0xFFFFFFFFFFFFFFFF},
	{0x7FFFFFFFFFFFFFFF, 1},
	{0x7FFFFFFFFFFFFFFF, 0x7FFFFFFFFFFFFFFF},
	{0x8000000000000000, 1},
	{0x8000000000000000, 0x8000000000000000},
	{0x8000000000000000, 0x7FFFFFFFFFFFFFFF},
	{0x123456789ABCDEF0, 0x0F0F0F0F0F0F0F0F},
	{0x10, 0x01},
	{0x0F, 0x01},
}

// nativeFlags assembles {mov rax,a; mov rcx,b; stc|clc; op; ret}, runs it in
// the emulator, and returns the machine's architectural flags.
func nativeFlags(t *testing.T, op x86.Inst, a, b uint64, cf0 bool) emu.Flags {
	t.Helper()
	bld := asm.NewBuilder()
	bld.I(x86.MOV, x86.R64(x86.RAX), x86.Imm(int64(a), 8))
	bld.I(x86.MOV, x86.R64(x86.RCX), x86.Imm(int64(b), 8))
	if cf0 {
		bld.I(x86.STC)
	} else {
		bld.I(x86.CLC)
	}
	bld.Emit(op)
	bld.Ret()
	code, _, err := bld.Assemble(0x400000)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	mem := emu.NewMemory(0x1000000)
	if _, err := mem.MapBytes(0x400000, code, "oracle"); err != nil {
		t.Fatal(err)
	}
	m := emu.NewMachine(mem)
	if _, err := m.Call(0x400000, emu.CallArgs{}, 1000); err != nil {
		t.Fatalf("emulate %s(%#x, %#x): %v", op.Op, a, b, err)
	}
	return m.Flags
}

// liftedFlags seeds a symbolic register state with the same operands and
// incoming CF, translates the single instruction through the lifter, packs
// the six resulting flag values into one i64 (bit i = flag i), and
// evaluates it with the IR interpreter.
func liftedFlags(t *testing.T, op x86.Inst, a, b uint64, cf0 bool) [numFlags]bool {
	t.Helper()
	mem := emu.NewMemory(0x1000000)
	f := ir.NewFunc("flags_oracle", ir.I64)
	bld := ir.NewBuilder(f)
	l := &Lifter{Mem: mem, Opts: DefaultOptions(), Module: &ir.Module{}, b: bld}
	s := newState()
	s.gpr[x86.RAX][FI64] = ir.Int(ir.I64, a)
	s.gpr[x86.RCX][FI64] = ir.Int(ir.I64, b)
	for i := range s.flag {
		s.flag[i] = ir.Bool(false)
	}
	s.flag[fCF] = ir.Bool(cf0)

	if err := l.translate(s, &op, abi.Signature{}); err != nil {
		t.Fatalf("translate %s: %v", op.Op, err)
	}

	packed := ir.Value(ir.Int(ir.I64, 0))
	for i := 0; i < numFlags; i++ {
		if s.flag[i] == nil {
			t.Fatalf("translate %s left flag %s unset", op.Op, flagName[i])
		}
		bit := bld.Shl(bld.ZExt(s.flag[i], ir.I64), ir.Int(ir.I64, uint64(i)))
		packed = bld.Or(packed, bit)
	}
	bld.Ret(packed)
	if err := ir.Verify(f); err != nil {
		t.Fatalf("flag-pack function does not verify: %v\n%s", err, ir.FormatFunc(f))
	}
	res, err := ir.NewInterp(mem).CallFunc(f, nil)
	if err != nil {
		t.Fatalf("interpret flag pack: %v\n%s", err, ir.FormatFunc(f))
	}
	var out [numFlags]bool
	for i := 0; i < numFlags; i++ {
		out[i] = res.Lo&(1<<uint(i)) != 0
	}
	return out
}

// TestArithFlagsOracle checks all six flags individually for every
// opcode × operand pair × incoming-CF combination.
func TestArithFlagsOracle(t *testing.T) {
	for _, op := range oracleOps {
		op := op
		t.Run(op.name, func(t *testing.T) {
			for _, in := range oracleOperands {
				for _, cf0 := range []bool{false, true} {
					a, b := in[0], in[1]
					want := nativeFlags(t, op.inst, a, b, cf0)
					got := liftedFlags(t, op.inst, a, b, cf0)
					wantBits := [numFlags]bool{want.CF, want.PF, want.AF, want.ZF, want.SF, want.OF}
					for i := 0; i < numFlags; i++ {
						if got[i] != wantBits[i] {
							t.Errorf("%s(%#x, %#x) cf0=%v: %s = %v, emulator says %v",
								op.name, a, b, cf0, flagName[i], got[i], wantBits[i])
						}
					}
				}
			}
		})
	}
}

// TestIncPreservesCF pins the special case directly: inc must write ZF, SF,
// OF, AF, PF like an add-by-one but leave CF exactly as it found it.
func TestIncPreservesCF(t *testing.T) {
	inc := x86.Inst{Op: x86.INC, Dst: x86.R64(x86.RAX)}
	for _, a := range []uint64{0, 1, 0xFFFFFFFFFFFFFFFF, 0x7FFFFFFFFFFFFFFF} {
		for _, cf0 := range []bool{false, true} {
			got := liftedFlags(t, inc, a, 0, cf0)
			if got[fCF] != cf0 {
				t.Errorf("inc(%#x) with cf0=%v: lifted CF = %v, want preserved", a, cf0, got[fCF])
			}
			want := nativeFlags(t, inc, a, 0, cf0)
			if want.CF != cf0 {
				t.Errorf("inc(%#x) with cf0=%v: emulator CF = %v, want preserved", a, cf0, want.CF)
			}
		}
	}
}
