package lift

import (
	"strings"
	"testing"

	"repro/internal/abi"
	"repro/internal/ir"
	"repro/internal/opt"
	"repro/internal/x86"
	"repro/internal/x86/asm"
)

// TestVolatileRangesSurviveO3: loads/stores inside a configured volatile
// range are marked and survive the full pipeline, while an identical
// non-volatile redundant load pair is collapsed.
func TestVolatileRangesSurviveO3(t *testing.T) {
	mem := buildFunc(t, func(b *asm.Builder) {
		// Two loads from a device register at 0x2000, summed.
		b.I(x86.MOV, x86.R64(x86.RAX), x86.MemAbs(8, 0x2000))
		b.I(x86.MOV, x86.R64(x86.RCX), x86.MemAbs(8, 0x2000))
		b.I(x86.ADD, x86.R64(x86.RAX), x86.R64(x86.RCX))
		// And two from plain memory at 0x3000.
		b.I(x86.MOV, x86.R64(x86.RCX), x86.MemAbs(8, 0x3000))
		b.I(x86.ADD, x86.R64(x86.RAX), x86.R64(x86.RCX))
		b.I(x86.MOV, x86.R64(x86.RCX), x86.MemAbs(8, 0x3000))
		b.I(x86.ADD, x86.R64(x86.RAX), x86.R64(x86.RCX))
		b.Ret()
	})
	if _, err := mem.Map(0x2000, 8, "mmio"); err != nil {
		t.Fatal(err)
	}
	if _, err := mem.Map(0x3000, 8, "ram"); err != nil {
		t.Fatal(err)
	}

	lo := DefaultOptions()
	lo.VolatileRanges = []VolatileRange{{Start: 0x2000, End: 0x2008}}
	l := New(mem, lo)
	f, err := l.LiftFunc(codeBase, "dev", abi.Sig(abi.ClassInt))
	if err != nil {
		t.Fatal(err)
	}
	out := ir.FormatFunc(f)
	if strings.Count(out, "load volatile") != 2 {
		t.Errorf("expected two volatile loads:\n%s", out)
	}

	opt.Optimize(f, opt.O3())
	loads := 0
	volLoads := 0
	for _, blk := range f.Blocks {
		for _, in := range blk.Insts {
			if in.Op == ir.OpLoad {
				loads++
				if in.Volatile {
					volLoads++
				}
			}
		}
	}
	if volLoads != 2 {
		t.Errorf("volatile loads must survive -O3: %d", volLoads)
	}
	if loads != 3 { // 2 volatile + 1 deduplicated plain load
		t.Errorf("plain redundant load should be CSEd: %d total loads\n%s", loads, ir.FormatFunc(f))
	}
}
