package tier

import (
	"fmt"
	"math"
	"math/bits"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/codecache"
	"repro/internal/emu"
)

// Level is an execution tier.
type Level int32

// The three execution tiers.
const (
	// Tier0 interprets the original machine code on the emulator: zero
	// compile cost, slowest per call.
	Tier0 Level = iota
	// Tier1 runs the cheap lift + minimal-cleanup JIT (opt.O1): fast to
	// compile, decent code, no specialization folding.
	Tier1
	// Tier2 runs the full specialize + optimize pipeline (DBrew + opt.O3):
	// expensive to compile, fastest code.
	Tier2
	// NumLevels is the tier count.
	NumLevels = 3
)

// String names the tier.
func (l Level) String() string {
	switch l {
	case Tier0:
		return "tier0/interp"
	case Tier1:
		return "tier1/lift"
	case Tier2:
		return "tier2/opt"
	}
	return fmt.Sprintf("tier%d", int32(l))
}

// histBuckets is the compile-latency bucket count: bucket i holds compiles
// whose latency is in [2^(i-1), 2^i) microseconds, with bucket 0 for <1 µs
// and the last bucket open-ended.
const histBuckets = 20

// LatencyHistogram is a concurrency-safe log2-bucketed histogram of compile
// latencies.
type LatencyHistogram struct {
	buckets [histBuckets]atomic.Uint64
}

// Add records one latency.
func (h *LatencyHistogram) Add(d time.Duration) {
	us := d.Microseconds()
	i := 0
	if us > 0 {
		i = bits.Len64(uint64(us))
	}
	if i >= histBuckets {
		i = histBuckets - 1
	}
	h.buckets[i].Add(1)
}

// Snapshot copies the current counts.
func (h *LatencyHistogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	for i := range s {
		s[i] = h.buckets[i].Load()
	}
	return s
}

// HistogramSnapshot is a point-in-time copy of a LatencyHistogram.
type HistogramSnapshot [histBuckets]uint64

// Merge adds the counts of o into s.
func (s *HistogramSnapshot) Merge(o HistogramSnapshot) {
	for i := range s {
		s[i] += o[i]
	}
}

// Count returns the total number of recorded latencies.
func (s HistogramSnapshot) Count() uint64 {
	var n uint64
	for _, c := range s {
		n += c
	}
	return n
}

// String renders the non-empty buckets as "≤1µs:2 ≤64µs:1 ...".
func (s HistogramSnapshot) String() string {
	var b strings.Builder
	for i, c := range s {
		if c == 0 {
			continue
		}
		if b.Len() > 0 {
			b.WriteByte(' ')
		}
		// Bucket i holds latencies in [2^(i-1), 2^i) µs; bucket 0 is <1 µs.
		upper := time.Duration(uint64(1)<<uint(i)) * time.Microsecond
		fmt.Fprintf(&b, "<%v:%d", upper, c)
	}
	if b.Len() == 0 {
		return "(empty)"
	}
	return b.String()
}

// FuncStats is a snapshot of one handle's counters.
type FuncStats struct {
	Name     string
	Level    Level  // currently installed tier
	Entry    uint64 // currently installed code address
	CodeSize int    // size of the installed code (0 at tier 0)
	Calls    uint64 // dispatched calls since registration or last deopt
	Cycles   uint64 // accumulated modelled cycles since last deopt
	Insts    uint64 // emulated instructions retired since last deopt
	// Promotions[l] counts installs of tier l.
	Promotions [NumLevels]uint64
	// Deopts counts invalidation-driven drops back to tier 0.
	Deopts uint64
	// CompileErrors counts failed promotion compiles.
	CompileErrors uint64
	// CompileTime is the total wall-clock time spent compiling (including
	// time blocked on another handle's in-flight identical compile).
	CompileTime time.Duration
	// TimeInTier accumulates wall-clock residency per tier.
	TimeInTier [NumLevels]time.Duration
	// CompileLatency is the per-promotion latency histogram, merged across
	// target tiers.
	CompileLatency HistogramSnapshot
	// CompileLatencyByTier splits the same promotions by target tier, so a
	// cheap tier-1 baseline compile and an expensive tier-2 specialization
	// are visible as separate distributions. Index Tier0 stays empty.
	CompileLatencyByTier [NumLevels]HistogramSnapshot
}

// String summarizes the snapshot on one line.
func (s FuncStats) String() string {
	return fmt.Sprintf("%s: %v, calls %d, promotions %d/%d, deopts %d, compile %v (errors %d)",
		s.Name, s.Level, s.Calls, s.Promotions[Tier1], s.Promotions[Tier2],
		s.Deopts, s.CompileTime.Round(time.Microsecond), s.CompileErrors)
}

// Stats snapshots a whole manager.
type Stats struct {
	Funcs []FuncStats
	Cache codecache.Stats
	// Trace is the process-wide trace-tier snapshot: tier-0 dispatch runs
	// the emulator, whose block engine promotes hot loops to compiled
	// superblock traces on its own. These counters expose that inner tier.
	Trace emu.TraceStats
}

// CompileLatency merges every function's histogram.
func (s Stats) CompileLatency() HistogramSnapshot {
	var h HistogramSnapshot
	for _, f := range s.Funcs {
		h.Merge(f.CompileLatency)
	}
	return h
}

// CompileLatencyFor merges every function's histogram for one target tier.
func (s Stats) CompileLatencyFor(l Level) HistogramSnapshot {
	var h HistogramSnapshot
	if l < 0 || l >= NumLevels {
		return h
	}
	for _, f := range s.Funcs {
		h.Merge(f.CompileLatencyByTier[l])
	}
	return h
}

// String renders a small per-function table plus the cache counters.
func (s Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-16s %-12s %8s %6s %6s %6s %12s  %s\n",
		"function", "tier", "calls", "promo1", "promo2", "deopt", "compile", "time-in-tier (0/1/2)")
	for _, f := range s.Funcs {
		fmt.Fprintf(&b, "%-16s %-12s %8d %6d %6d %6d %12v  %v/%v/%v\n",
			f.Name, f.Level, f.Calls, f.Promotions[Tier1], f.Promotions[Tier2], f.Deopts,
			f.CompileTime.Round(time.Microsecond),
			f.TimeInTier[0].Round(time.Microsecond),
			f.TimeInTier[1].Round(time.Microsecond),
			f.TimeInTier[2].Round(time.Microsecond))
	}
	fmt.Fprintf(&b, "compile cache: %v\n", s.Cache)
	fmt.Fprintf(&b, "compile latency: %v\n", s.CompileLatency())
	fmt.Fprintf(&b, "compile latency tier1: %v\n", s.CompileLatencyFor(Tier1))
	fmt.Fprintf(&b, "compile latency tier2: %v\n", s.CompileLatencyFor(Tier2))
	fmt.Fprintf(&b, "emulator traces: %d compiled (%d at O3), %d aborted, %d runs, %d iterations, %d side exits\n",
		s.Trace.Compiled, s.Trace.CompiledO3, s.Trace.Aborted,
		s.Trace.Runs, s.Trace.Iters, s.Trace.SideExits)
	return b.String()
}

// Stats snapshots the handle's counters. TimeInTier includes the residency
// of the current tier up to now.
func (f *Func) Stats() FuncStats {
	st := f.active.Load()
	out := FuncStats{
		Name:     f.name,
		Level:    st.level,
		Entry:    st.entry,
		CodeSize: st.size,
		Calls:    f.calls.Load(),
		Cycles:   f.cycles.Load(),
		Insts:    f.insts.Load(),
	}
	for l := range f.hist {
		out.CompileLatencyByTier[l] = f.hist[l].Snapshot()
		out.CompileLatency.Merge(out.CompileLatencyByTier[l])
	}
	f.statsMu.Lock()
	out.Promotions = f.promotions
	out.Deopts = f.deopts
	out.CompileErrors = f.compileErrs
	out.CompileTime = f.compileTime
	out.TimeInTier = f.timeIn
	out.TimeInTier[st.level] += time.Since(f.enteredAt)
	f.statsMu.Unlock()
	return out
}

// emuF64 reinterprets an XMM low lane as a float64.
func emuF64(bits64 uint64) float64 { return math.Float64frombits(bits64) }
