package tier

import (
	"fmt"

	"repro/internal/trace"
)

// HistogramData converts the log2-bucketed latency snapshot into the
// cumulative form the Prometheus exposition format wants: bucket i's upper
// bound is 2^i microseconds expressed in seconds, the open-ended last bucket
// folds into +Inf. The sample sum is estimated from bucket upper bounds (the
// histogram does not track exact sums).
func (s HistogramSnapshot) HistogramData() trace.HistogramData {
	var d trace.HistogramData
	var cum uint64
	for i := 0; i < histBuckets-1; i++ {
		cum += s[i]
		d.Buckets = append(d.Buckets, trace.HistogramBucket{
			UpperBound:      float64(uint64(1)<<uint(i)) / 1e6,
			CumulativeCount: cum,
		})
		d.SampleSum += float64(s[i]) * float64(uint64(1)<<uint(i)) / 1e6
	}
	// Open-ended bucket: count it toward +Inf, estimate with its lower bound.
	d.SampleCount = cum + s[histBuckets-1]
	d.SampleSum += float64(s[histBuckets-1]) * float64(uint64(1)<<uint(histBuckets-2)) / 1e6
	return d
}

// RegisterMetrics exports the tiered-execution counters into reg under the
// given metric-name prefix (e.g. "dbrew_tier"). snapshot is polled on every
// scrape; ok == false (tiering disabled) reads as all-zero/empty series, so
// a registry built once stays valid across EnableTiering.
func RegisterMetrics(reg *trace.Registry, prefix string, snapshot func() (Stats, bool)) {
	grab := func() Stats {
		st, ok := snapshot()
		if !ok {
			return Stats{}
		}
		return st
	}
	reg.Counter(prefix+"_promotions_total", "Tier promotions installed (all tiers).",
		func() float64 {
			var n uint64
			for _, f := range grab().Funcs {
				for _, p := range f.Promotions {
					n += p
				}
			}
			return float64(n)
		})
	reg.Counter(prefix+"_deopts_total", "Invalidation-driven drops back to tier 0.",
		func() float64 {
			var n uint64
			for _, f := range grab().Funcs {
				n += f.Deopts
			}
			return float64(n)
		})
	reg.Counter(prefix+"_compile_errors_total", "Failed promotion compiles.",
		func() float64 {
			var n uint64
			for _, f := range grab().Funcs {
				n += f.CompileErrors
			}
			return float64(n)
		})
	reg.GaugeVec(prefix+"_funcs", "Registered functions currently at each tier.",
		func() []trace.Sample {
			var counts [NumLevels]int
			for _, f := range grab().Funcs {
				if f.Level >= 0 && int(f.Level) < NumLevels {
					counts[f.Level]++
				}
			}
			out := make([]trace.Sample, 0, NumLevels)
			for l, c := range counts {
				out = append(out, trace.Sample{
					Label: fmt.Sprintf(`tier="%d"`, l),
					Value: float64(c),
				})
			}
			return out
		})
	reg.Histogram(prefix+"_compile_seconds", "Promotion compile latency.",
		func() trace.HistogramData {
			return grab().CompileLatency().HistogramData()
		})
	// Per-tier split of the same latencies: the registry has no labeled
	// histograms, so each target tier gets its own metric family. The
	// tier-1 family is where the fastpath baseline backend's compile-cost
	// win shows up against the tier-2 full pipeline.
	reg.Histogram(prefix+"_tier1_compile_seconds", "Tier-1 (baseline backend) promotion compile latency.",
		func() trace.HistogramData {
			return grab().CompileLatencyFor(Tier1).HistogramData()
		})
	reg.Histogram(prefix+"_tier2_compile_seconds", "Tier-2 (specialize+optimize) promotion compile latency.",
		func() trace.HistogramData {
			return grab().CompileLatencyFor(Tier2).HistogramData()
		})
	// The emulator's inner trace tier: hot superblock loops compiled while
	// functions are still at tier 0.
	reg.Counter(prefix+"_traces_compiled_total", "Emulator superblock traces compiled (including O3 recompiles).",
		func() float64 {
			t := grab().Trace
			return float64(t.Compiled + t.CompiledO3)
		})
	reg.Counter(prefix+"_traces_aborted_total", "Emulator trace recordings or compiles aborted.",
		func() float64 { return float64(grab().Trace.Aborted) })
	reg.Counter(prefix+"_trace_runs_total", "Emulator trace executions.",
		func() float64 { return float64(grab().Trace.Runs) })
	reg.Counter(prefix+"_trace_iterations_total", "Loop iterations completed inside compiled traces.",
		func() float64 { return float64(grab().Trace.Iters) })
	reg.Counter(prefix+"_trace_side_exits_total", "Trace runs that deoptimized through a guard or memory side exit.",
		func() float64 { return float64(grab().Trace.SideExits) })
	// The native backend layered on the trace tier: superblocks compiled
	// all the way to host x86-64 and stitched by the link cache.
	reg.Counter(prefix+"_trace_native_compiles_total", "Emulator traces compiled to native x86-64 (vs. bytecode-VM fallback).",
		func() float64 { return float64(grab().Trace.NativeCompiled) })
	reg.Counter(prefix+"_trace_native_deopts_total", "Native trace runs that reconstructed state through an exit stub.",
		func() float64 { return float64(grab().Trace.NativeDeopts) })
	reg.Counter(prefix+"_trace_links_total", "Guard-exit handoffs dispatched through the trace-to-trace link cache.",
		func() float64 { return float64(grab().Trace.Links) })
	reg.Counter(prefix+"_trace_link_invalidations_total", "Cached trace links dropped by code-invalidation epoch bumps.",
		func() float64 { return float64(grab().Trace.LinkInvalidations) })
}
