// Package tier implements tiered execution: every registered function runs
// behind a stable dispatch handle, starting on the slowest-but-free tier and
// getting promoted to progressively better code as it proves hot.
//
// The tiers mirror the paper's compile-time/run-time tradeoff (Section V,
// Figure 10): rewriting plus LLVM-style optimization only pays off once a
// function is called often enough to amortize the transformation time, so
// the manager spends nothing up front and invests compile time proportional
// to observed hotness:
//
//	tier 0  interpret the original machine code on the emulator
//	tier 1  cheap lift + minimal cleanup (opt.O1), compiled fast
//	tier 2  full specialization + optimization pipeline (DBrew + opt.O3)
//
// Promotions compile in a background goroutine and install via an atomic
// code-pointer swap, so callers never block on a compile (unless
// Config.Synchronous is set, which is deterministic and useful for tests and
// benchmarks). Concurrent promotions of the same specialization are
// deduplicated through a codecache singleflight: no matter how many
// goroutines cross a hotness threshold together, each (function, tier)
// specialization compiles exactly once.
//
// A function whose specialized code depends on fixed memory regions
// (dbrew_setmem-style) declares them at registration; Manager.Invalidate
// deoptimizes every overlapping function back to tier 0 and drops its
// cached compilations, so mutating a fixed region never leaves stale
// specialized code reachable.
package tier

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/codecache"
	"repro/internal/emu"
	"repro/internal/x86"
)

// CompileResult is the outcome of compiling a function for a target level.
type CompileResult struct {
	// Entry is the address of the generated code in the shared address
	// space.
	Entry uint64
	// CodeSize is the generated code size in bytes.
	CodeSize int
}

// CompileFunc produces code for one target level. It runs on a background
// goroutine (or the calling goroutine under Config.Synchronous) and must be
// safe to run concurrently with calls executing the function's current
// tier; compilations for the same manager never run concurrently with each
// other when they share a specialization key.
type CompileFunc func(target Level) (CompileResult, error)

// FixedArg pins one integer/pointer argument to a known value. The
// dispatcher applies the pin at every tier, so tier-0 interpretation of the
// original code computes exactly what the tier-2 specialized code hardwires.
type FixedArg struct {
	Idx int
	Val uint64
}

// Range is a half-open fixed-memory interval [Start, End) the function's
// specialized code was compiled against.
type Range struct {
	Start, End uint64
}

// Config tunes the promotion policy.
type Config struct {
	// Tier1Calls and Tier2Calls are the invocation counts at which a
	// function becomes eligible for tier 1 and tier 2. Zero selects the
	// defaults (10 and 100). Tier2Calls below Tier1Calls effectively skips
	// tier 1.
	Tier1Calls uint64
	Tier2Calls uint64

	// Tier1Cycles and Tier2Cycles optionally promote on accumulated
	// modelled cycles instead of call counts (whichever threshold is
	// crossed first). Zero disables the cycle trigger.
	Tier1Cycles uint64
	Tier2Cycles uint64

	// Synchronous compiles promotions on the calling goroutine at the call
	// that crosses the threshold, instead of in the background. Promotion
	// points become deterministic; the crossing call pays the compile.
	Synchronous bool

	// CacheCapacity bounds the promotion singleflight cache (default 256).
	CacheCapacity int

	// MaxInst bounds the emulated instructions per dispatched call
	// (0 = unlimited), mirroring DBrew's resource limits.
	MaxInst uint64

	// StackSize is the private stack per pooled executor (default 64 KiB).
	// Each concurrent caller gets its own stack region, which is what makes
	// dispatch safe from many goroutines on one shared address space.
	StackSize int

	// LegacyTier1 selects the old lift+O1+linear-scan tier-1 pipeline
	// instead of the fastpath single-pass baseline backend. The manager
	// itself only records the choice (compile callbacks read it through
	// Manager.Config and specialization keys hash it, so the two pipelines
	// never share cached code); kept for A/B comparison.
	LegacyTier1 bool
}

func (c Config) withDefaults() Config {
	if c.Tier1Calls == 0 {
		c.Tier1Calls = 10
	}
	if c.Tier2Calls == 0 {
		c.Tier2Calls = 100
	}
	if c.CacheCapacity <= 0 {
		c.CacheCapacity = 256
	}
	if c.StackSize <= 0 {
		c.StackSize = 64 << 10
	}
	return c
}

// Manager owns the registered functions, the promotion policy, and the
// compile singleflight cache. All methods are safe for concurrent use.
type Manager struct {
	mem   *emu.Memory
	cfg   Config
	cache *codecache.Cache[CompileResult]

	pool sync.Pool // of *executor
	wg   sync.WaitGroup

	mu    sync.Mutex
	funcs []*Func
}

// NewManager creates a tiering manager over the given address space.
func NewManager(mem *emu.Memory, cfg Config) *Manager {
	m := &Manager{
		mem:   mem,
		cfg:   cfg.withDefaults(),
		cache: codecache.New[CompileResult](cfg.CacheCapacity),
	}
	m.pool.New = func() any {
		stack := mem.Alloc(m.cfg.StackSize, 4096, "tier.stack")
		return &executor{
			m: emu.NewMachine(mem),
			// Leave the ABI red zone below the initial stack pointer.
			stackTop: stack.End() - 64,
		}
	}
	return m
}

// executor is a pooled emulator machine with a private stack, so concurrent
// dispatched calls never share mutable machine state.
type executor struct {
	m        *emu.Machine
	stackTop uint64
}

// FuncSpec registers one function with the manager.
type FuncSpec struct {
	// Name labels the function in statistics (defaults to the entry
	// address).
	Name string
	// Entry is the original machine-code entry point — the tier-0 target.
	Entry uint64
	// Fixed pins arguments at dispatch so every tier computes the
	// specialized semantics.
	Fixed []FixedArg
	// Ranges are the fixed memory regions the tier-2 specialization folds;
	// Manager.Invalidate deoptimizes on overlap.
	Ranges []Range
	// Compile produces code for tier 1 and tier 2.
	Compile CompileFunc
}

// Register adds a function to the manager and returns its dispatch handle,
// initially executing at tier 0.
func (m *Manager) Register(spec FuncSpec) (*Func, error) {
	if spec.Entry == 0 {
		return nil, fmt.Errorf("tier: zero entry address")
	}
	if spec.Compile == nil {
		return nil, fmt.Errorf("tier: nil compile function")
	}
	if spec.Name == "" {
		spec.Name = fmt.Sprintf("fn_%#x", spec.Entry)
	}
	f := &Func{
		mgr:       m,
		name:      spec.Name,
		orig:      spec.Entry,
		fixed:     append([]FixedArg(nil), spec.Fixed...),
		ranges:    append([]Range(nil), spec.Ranges...),
		compile:   spec.Compile,
		enteredAt: time.Now(),
	}
	f.active.Store(&codeState{level: Tier0, entry: spec.Entry})
	m.mu.Lock()
	m.funcs = append(m.funcs, f)
	m.mu.Unlock()
	return f, nil
}

// Config returns the manager's effective configuration (defaults applied).
func (m *Manager) Config() Config { return m.cfg }

// Funcs returns the registered handles in registration order.
func (m *Manager) Funcs() []*Func {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]*Func(nil), m.funcs...)
}

// Drain blocks until all in-flight background promotions have finished
// (installed, been discarded, or failed).
func (m *Manager) Drain() { m.wg.Wait() }

// Invalidate declares that bytes in [start, end) changed. Every function
// whose fixed ranges overlap is deoptimized back to tier 0: its counters
// reset, its cached compilations are dropped, and any in-flight promotion
// result is discarded on arrival. It returns the number of functions
// deoptimized. Call it after mutating memory a specialization was compiled
// against; the next promotion re-specializes over the new contents.
func (m *Manager) Invalidate(start, end uint64) int {
	n := 0
	for _, f := range m.Funcs() {
		if f.overlaps(start, end) {
			f.deopt()
			n++
		}
	}
	return n
}

// CacheStats reports the promotion singleflight cache counters. Misses
// count actual compilations started.
func (m *Manager) CacheStats() codecache.Stats { return m.cache.Stats() }

// SetCacheRemoveHook installs fn to observe every explicit removal from the
// promotion cache — i.e. every deoptimization's dropped compilation keys.
// The engine points this at its lower cache levels (disk artifact eviction
// and the fleet eviction broadcast) so a deoptimized specialization cannot
// be resurrected stale from a level the manager does not know about. A nil
// fn uninstalls. See codecache.Cache.SetRemoveHook for the firing rules.
func (m *Manager) SetCacheRemoveHook(fn func(codecache.Key)) {
	m.cache.SetRemoveHook(fn)
}

// Stats snapshots every registered function plus the compile cache and the
// emulator's trace-tier counters.
func (m *Manager) Stats() Stats {
	st := Stats{Cache: m.cache.Stats(), Trace: emu.ReadTraceStats()}
	for _, f := range m.Funcs() {
		st.Funcs = append(st.Funcs, f.Stats())
	}
	return st
}

// codeState is the immutable dispatch target; Func.active swaps atomically
// between states on promotion and deoptimization.
type codeState struct {
	level Level
	entry uint64
	size  int
}

// Func is the stable dispatch handle for one registered function. Callers
// keep invoking the same handle while the code behind it is swapped by
// promotions and deoptimizations.
type Func struct {
	mgr     *Manager
	name    string
	orig    uint64
	fixed   []FixedArg
	ranges  []Range
	compile CompileFunc

	active   atomic.Pointer[codeState]
	calls    atomic.Uint64
	cycles   atomic.Uint64
	insts    atomic.Uint64
	gen      atomic.Uint64
	inflight [NumLevels]atomic.Bool
	failed   [NumLevels]atomic.Bool

	hist [NumLevels]LatencyHistogram

	statsMu     sync.Mutex
	enteredAt   time.Time
	timeIn      [NumLevels]time.Duration
	promotions  [NumLevels]uint64
	deopts      uint64
	compileErrs uint64
	compileTime time.Duration
	lastErr     error
	keys        [NumLevels]cachedKey
}

// cachedKey remembers the singleflight key an installed tier was compiled
// under, so deoptimization can evict it.
type cachedKey struct {
	key codecache.Key
	ok  bool
}

// Name returns the registration name.
func (f *Func) Name() string { return f.name }

// Level returns the currently installed tier.
func (f *Func) Level() Level { return f.active.Load().level }

// Entry returns the address of the currently installed code.
func (f *Func) Entry() uint64 { return f.active.Load().entry }

// Call dispatches through f's current tier with the SysV convention and
// returns RAX. Fixed arguments override the passed values. Safe for
// concurrent use; a call that crosses a hotness threshold triggers (or, in
// synchronous mode, performs) promotion.
func (f *Func) Call(ints []uint64, floats []float64) (uint64, error) {
	rax, _, err := f.dispatch(ints, floats)
	return rax, err
}

// CallF dispatches like Call but returns XMM0 as a float64.
func (f *Func) CallF(ints []uint64, floats []float64) (float64, error) {
	_, xmm0, err := f.dispatch(ints, floats)
	return xmm0, err
}

func (f *Func) dispatch(ints []uint64, floats []float64) (rax uint64, xmm0 float64, err error) {
	st := f.active.Load()
	args := ints
	if len(f.fixed) > 0 {
		args = append(make([]uint64, 0, len(ints)+len(f.fixed)), ints...)
		for _, fx := range f.fixed {
			for len(args) <= fx.Idx {
				args = append(args, 0)
			}
			args[fx.Idx] = fx.Val
		}
	}
	ex := f.mgr.pool.Get().(*executor)
	ex.m.Reset()
	ex.m.GPR[x86.RSP] = ex.stackTop
	rax, err = ex.m.Call(st.entry, emu.CallArgs{Ints: args, Floats: floats}, f.mgr.cfg.MaxInst)
	xmm0 = emuF64(ex.m.XMM[0].Lo)
	cyc := uint64(ex.m.Cycles)
	n := ex.m.InstCount
	f.mgr.pool.Put(ex)
	if err != nil {
		return 0, 0, err
	}
	calls := f.calls.Add(1)
	cycles := f.cycles.Add(cyc)
	f.insts.Add(n)
	f.maybePromote(calls, cycles)
	return rax, xmm0, nil
}

// maybePromote requests the highest tier whose hotness threshold the
// counters have crossed. Requests are deduplicated per target level; a
// direct 0→2 jump happens when both thresholds were crossed before tier 1
// finished compiling.
func (f *Func) maybePromote(calls, cycles uint64) {
	st := f.active.Load()
	cfg := f.mgr.cfg
	switch {
	case st.level < Tier2 && (calls >= cfg.Tier2Calls || (cfg.Tier2Cycles > 0 && cycles >= cfg.Tier2Cycles)):
		f.requestPromotion(Tier2)
	case st.level < Tier1 && (calls >= cfg.Tier1Calls || (cfg.Tier1Cycles > 0 && cycles >= cfg.Tier1Cycles)):
		f.requestPromotion(Tier1)
	}
}

func (f *Func) requestPromotion(target Level) {
	if f.failed[target].Load() {
		return // compile already failed; stay at the current tier
	}
	if !f.inflight[target].CompareAndSwap(false, true) {
		return // a promotion to this level is already in flight
	}
	if f.mgr.cfg.Synchronous {
		f.promote(target)
		return
	}
	f.mgr.wg.Add(1)
	go func() {
		defer f.mgr.wg.Done()
		f.promote(target)
	}()
}

// promote compiles the target level through the singleflight cache and
// installs the result with an atomic swap, unless the function was
// deoptimized while the compile ran (the generation check) or a higher tier
// was installed meanwhile.
func (f *Func) promote(target Level) {
	defer f.inflight[target].Store(false)
	gen := f.gen.Load()
	key, keyOK := f.specKey(target)
	start := time.Now()
	var res CompileResult
	var err error
	if keyOK {
		res, _, err = f.mgr.cache.Do(key, func() (CompileResult, error) {
			return f.compile(target)
		})
	} else {
		// A fixed range points at unmapped memory; compile without
		// cross-handle dedup (the inflight flag still dedups per handle).
		res, err = f.compile(target)
	}
	lat := time.Since(start)
	f.hist[target].Add(lat)

	f.statsMu.Lock()
	defer f.statsMu.Unlock()
	f.compileTime += lat
	if err != nil {
		f.compileErrs++
		f.lastErr = err
		f.failed[target].Store(true)
		return
	}
	if f.gen.Load() != gen {
		return // deoptimized during the compile: result is stale
	}
	cur := f.active.Load()
	if cur.level >= target {
		return
	}
	now := time.Now()
	f.timeIn[cur.level] += now.Sub(f.enteredAt)
	f.enteredAt = now
	f.active.Store(&codeState{level: target, entry: res.Entry, size: res.CodeSize})
	f.promotions[target]++
	f.keys[target] = cachedKey{key: key, ok: keyOK}
}

// deopt drops the function back to tier 0 and forgets everything derived
// from the invalidated contents.
func (f *Func) deopt() {
	f.statsMu.Lock()
	defer f.statsMu.Unlock()
	f.gen.Add(1) // discard in-flight promotion results
	f.calls.Store(0)
	f.cycles.Store(0)
	f.insts.Store(0)
	for l := range f.failed {
		f.failed[l].Store(false)
	}
	for l, k := range f.keys {
		if k.ok {
			f.mgr.cache.Remove(k.key)
			f.keys[l] = cachedKey{}
		}
	}
	cur := f.active.Load()
	if cur.level == Tier0 {
		return
	}
	now := time.Now()
	f.timeIn[cur.level] += now.Sub(f.enteredAt)
	f.enteredAt = now
	f.active.Store(&codeState{level: Tier0, entry: f.orig})
	f.deopts++
}

func (f *Func) overlaps(start, end uint64) bool {
	for _, r := range f.ranges {
		if start < r.End && r.Start < end {
			return true
		}
	}
	return false
}

// specKey canonicalizes the (function, level) specialization, hashing the
// current contents of all fixed ranges — the same scheme the engine's
// rewrite cache uses, so two handles over identical configurations share
// one compilation. ok is false when a fixed range is unreadable.
func (f *Func) specKey(target Level) (codecache.Key, bool) {
	h := codecache.NewHasher()
	h.U64(f.orig)
	h.I64(int64(target))
	if f.mgr.cfg.LegacyTier1 {
		// The two tier-1 backends emit different code for the same
		// specialization; keep their cache entries apart.
		h.U64(1)
	}
	h.U64(uint64(len(f.fixed)))
	for _, fx := range f.fixed {
		h.I64(int64(fx.Idx))
		h.U64(fx.Val)
	}
	h.U64(uint64(len(f.ranges)))
	for _, r := range f.ranges {
		h.U64(r.Start)
		h.U64(r.End)
		data, err := f.mgr.mem.Read(r.Start, int(r.End-r.Start))
		if err != nil {
			return codecache.Key{}, false
		}
		h.Bytes(data)
	}
	return h.Sum(), true
}
