package tier

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/emu"
	"repro/internal/x86"
	"repro/internal/x86/asm"
)

// placeAdd places position-independent code computing rdi+rsi and returns
// its entry. pad inserts extra no-op work so different "tiers" are
// distinguishable by address and instruction count.
func placeAdd(t *testing.T, mem *emu.Memory, name string, pad int) uint64 {
	t.Helper()
	b := asm.NewBuilder()
	for i := 0; i < pad; i++ {
		b.I(x86.MOV, x86.R64(x86.RAX), x86.R64(x86.RDI))
	}
	b.I(x86.MOV, x86.R64(x86.RAX), x86.R64(x86.RDI))
	b.I(x86.ADD, x86.R64(x86.RAX), x86.R64(x86.RSI))
	b.Ret()
	code, _, err := b.Assemble(0)
	if err != nil {
		t.Fatal(err)
	}
	r := mem.Alloc(len(code), 16, name)
	copy(r.Data, code)
	return r.Start
}

// testFunc registers an add function whose "compiles" place alternative add
// implementations, with per-level compile counters.
func testFunc(t *testing.T, mem *emu.Memory, mgr *Manager, counts *[NumLevels]atomic.Int64, delay time.Duration, ranges []Range) *Func {
	t.Helper()
	orig := placeAdd(t, mem, "orig", 8)
	f, err := mgr.Register(FuncSpec{
		Name:   "add",
		Entry:  orig,
		Ranges: ranges,
		Compile: func(target Level) (CompileResult, error) {
			if delay > 0 {
				time.Sleep(delay)
			}
			counts[target].Add(1)
			pad := 4
			if target == Tier2 {
				pad = 0
			}
			entry := placeAdd(t, mem, fmt.Sprintf("code.%v.%d", target, counts[target].Load()), pad)
			return CompileResult{Entry: entry, CodeSize: 16}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestPromotionThresholds(t *testing.T) {
	mem := emu.NewMemory(0x1000000)
	mgr := NewManager(mem, Config{Tier1Calls: 3, Tier2Calls: 6, Synchronous: true})
	var counts [NumLevels]atomic.Int64
	f := testFunc(t, mem, mgr, &counts, 0, nil)

	wantLevel := func(call int, want Level) {
		t.Helper()
		if got := f.Level(); got != want {
			t.Fatalf("after call %d: level = %v, want %v", call, got, want)
		}
	}
	for i := 1; i <= 10; i++ {
		got, err := f.Call([]uint64{10, uint64(i)}, nil)
		if err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
		if got != 10+uint64(i) {
			t.Fatalf("call %d: got %d, want %d", i, got, 10+uint64(i))
		}
		switch {
		case i < 3:
			wantLevel(i, Tier0)
		case i < 6:
			wantLevel(i, Tier1)
		default:
			wantLevel(i, Tier2)
		}
	}
	if c1, c2 := counts[Tier1].Load(), counts[Tier2].Load(); c1 != 1 || c2 != 1 {
		t.Fatalf("compiles = %d/%d, want 1/1", c1, c2)
	}
	st := f.Stats()
	if st.Promotions[Tier1] != 1 || st.Promotions[Tier2] != 1 {
		t.Fatalf("promotions = %v, want one each", st.Promotions)
	}
	if st.Calls != 10 || st.Cycles == 0 {
		t.Fatalf("stats calls=%d cycles=%d", st.Calls, st.Cycles)
	}
	if st.CompileLatency.Count() != 2 {
		t.Fatalf("latency histogram count = %d, want 2", st.CompileLatency.Count())
	}
}

func TestFixedArgOverride(t *testing.T) {
	mem := emu.NewMemory(0x1000000)
	mgr := NewManager(mem, Config{Tier1Calls: 2, Tier2Calls: 4, Synchronous: true})
	orig := placeAdd(t, mem, "orig", 0)
	f, err := mgr.Register(FuncSpec{
		Entry: orig,
		Fixed: []FixedArg{{Idx: 1, Val: 100}},
		Compile: func(target Level) (CompileResult, error) {
			return CompileResult{Entry: placeAdd(t, mem, "promoted", 2)}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		// The caller's second argument must be overridden with 100 at
		// every tier.
		got, err := f.Call([]uint64{7, 9999}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if got != 107 {
			t.Fatalf("call %d: got %d, want 107 (fixed arg ignored?)", i, got)
		}
	}
}

func TestDeoptAndRepromotion(t *testing.T) {
	mem := emu.NewMemory(0x1000000)
	buf := mem.Alloc(16, 16, "fixedregion")
	mgr := NewManager(mem, Config{Tier1Calls: 2, Tier2Calls: 4, Synchronous: true})
	var counts [NumLevels]atomic.Int64
	f := testFunc(t, mem, mgr, &counts, 0, []Range{{Start: buf.Start, End: buf.End()}})

	for i := 0; i < 5; i++ {
		if _, err := f.Call([]uint64{1, 2}, nil); err != nil {
			t.Fatal(err)
		}
	}
	if f.Level() != Tier2 {
		t.Fatalf("level = %v, want tier2", f.Level())
	}

	// A non-overlapping invalidation must not deopt.
	if n := mgr.Invalidate(buf.End()+100, buf.End()+200); n != 0 {
		t.Fatalf("non-overlapping invalidate deopted %d functions", n)
	}
	if f.Level() != Tier2 {
		t.Fatalf("level after unrelated invalidate = %v", f.Level())
	}

	// Mutate the fixed region and invalidate: back to tier 0, counters
	// reset, and hotness re-promotes over the (conceptually new) contents.
	mem.WriteU(buf.Start, 8, 42)
	if n := mgr.Invalidate(buf.Start, buf.Start+8); n != 1 {
		t.Fatalf("invalidate deopted %d functions, want 1", n)
	}
	if f.Level() != Tier0 {
		t.Fatalf("level after invalidate = %v, want tier0", f.Level())
	}
	st := f.Stats()
	if st.Deopts != 1 || st.Calls != 0 {
		t.Fatalf("after deopt: deopts=%d calls=%d", st.Deopts, st.Calls)
	}
	for i := 0; i < 5; i++ {
		if _, err := f.Call([]uint64{1, 2}, nil); err != nil {
			t.Fatal(err)
		}
	}
	if f.Level() != Tier2 {
		t.Fatalf("no re-promotion after deopt: level = %v", f.Level())
	}
	// Contents changed, so re-promotion must have recompiled rather than
	// reusing the pre-invalidation cache entries.
	if c2 := counts[Tier2].Load(); c2 != 2 {
		t.Fatalf("tier2 compiles after deopt = %d, want 2", c2)
	}
}

func TestFailedCompileStaysPutAndDoesNotRetry(t *testing.T) {
	mem := emu.NewMemory(0x1000000)
	mgr := NewManager(mem, Config{Tier1Calls: 2, Tier2Calls: 1 << 60, Synchronous: true})
	orig := placeAdd(t, mem, "orig", 0)
	var attempts atomic.Int64
	f, err := mgr.Register(FuncSpec{
		Entry: orig,
		Compile: func(target Level) (CompileResult, error) {
			attempts.Add(1)
			return CompileResult{}, fmt.Errorf("synthetic failure")
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		got, err := f.Call([]uint64{3, 4}, nil)
		if err != nil || got != 7 {
			t.Fatalf("call %d: got %d, err %v", i, got, err)
		}
	}
	if f.Level() != Tier0 {
		t.Fatalf("level = %v, want tier0 after failed compiles", f.Level())
	}
	if n := attempts.Load(); n != 1 {
		t.Fatalf("compile attempted %d times, want exactly 1 (no retry storm)", n)
	}
	if st := f.Stats(); st.CompileErrors != 1 {
		t.Fatalf("CompileErrors = %d, want 1", st.CompileErrors)
	}
}

func TestTimeInTierAccounting(t *testing.T) {
	mem := emu.NewMemory(0x1000000)
	mgr := NewManager(mem, Config{Tier1Calls: 1 << 60, Tier2Calls: 2, Synchronous: true})
	var counts [NumLevels]atomic.Int64
	f := testFunc(t, mem, mgr, &counts, 0, nil)
	if _, err := f.Call([]uint64{1, 1}, nil); err != nil {
		t.Fatal(err)
	}
	time.Sleep(2 * time.Millisecond)
	if _, err := f.Call([]uint64{1, 1}, nil); err != nil {
		t.Fatal(err)
	}
	time.Sleep(2 * time.Millisecond)
	st := f.Stats()
	if st.Level != Tier2 {
		t.Fatalf("level = %v (direct 0->2 jump expected)", st.Level)
	}
	if st.TimeInTier[Tier0] <= 0 || st.TimeInTier[Tier2] <= 0 {
		t.Fatalf("time-in-tier not accounted: %v", st.TimeInTier)
	}
	if st.TimeInTier[Tier1] != 0 {
		t.Fatalf("tier1 was never active but has residency %v", st.TimeInTier[Tier1])
	}
}

// TestConcurrentPromotionCompilesOnce is the exactly-once guarantee under
// contention: 32 goroutines hammer one handle through both thresholds, and
// the tier-2 pipeline must compile exactly once (singleflight + in-flight
// dedup), observable both in the compile cache counters and the promotion
// counters. Run under -race (make check does).
func TestConcurrentPromotionCompilesOnce(t *testing.T) {
	mem := emu.NewMemory(0x1000000)
	mgr := NewManager(mem, Config{Tier1Calls: 8, Tier2Calls: 64})
	var counts [NumLevels]atomic.Int64
	// A compile delay widens the race window: many goroutines cross the
	// threshold while the first compile is still in flight.
	f := testFunc(t, mem, mgr, &counts, 2*time.Millisecond, nil)

	const goroutines = 32
	const callsPer = 32
	var wg sync.WaitGroup
	errs := make([]error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < callsPer; i++ {
				got, err := f.Call([]uint64{uint64(g), uint64(i)}, nil)
				if err != nil {
					errs[g] = err
					return
				}
				if got != uint64(g)+uint64(i) {
					errs[g] = fmt.Errorf("got %d, want %d", got, g+i)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	mgr.Drain()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", g, err)
		}
	}

	if c2 := counts[Tier2].Load(); c2 != 1 {
		t.Fatalf("tier2 compiled %d times, want exactly 1", c2)
	}
	if c1 := counts[Tier1].Load(); c1 > 1 {
		t.Fatalf("tier1 compiled %d times, want at most 1", c1)
	}
	st := f.Stats()
	if st.Promotions[Tier2] != 1 {
		t.Fatalf("tier2 promotions = %d, want 1", st.Promotions[Tier2])
	}
	if st.Level != Tier2 {
		t.Fatalf("final level = %v, want tier2", st.Level)
	}
	if st.Calls != goroutines*callsPer {
		t.Fatalf("calls = %d, want %d", st.Calls, goroutines*callsPer)
	}
	cs := mgr.CacheStats()
	wantMisses := counts[Tier1].Load() + counts[Tier2].Load()
	if cs.Misses != wantMisses {
		t.Fatalf("cache misses = %d, want %d (one per compiled level)", cs.Misses, wantMisses)
	}
}

func TestRegisterValidation(t *testing.T) {
	mem := emu.NewMemory(0x1000000)
	mgr := NewManager(mem, Config{})
	if _, err := mgr.Register(FuncSpec{Entry: 0, Compile: func(Level) (CompileResult, error) { return CompileResult{}, nil }}); err == nil {
		t.Fatal("zero entry accepted")
	}
	if _, err := mgr.Register(FuncSpec{Entry: 0x1000}); err == nil {
		t.Fatal("nil compile accepted")
	}
}

// TestFastpathDeoptDiscardsInFlightCompile pins the generation-counter
// contract the fastpath tier-1 backend depends on: when a function is
// deoptimized while its (fast, but still asynchronous) tier-1 compile is in
// flight, the arriving result must be discarded, not installed over the
// freshly invalidated state. Run under -race via `make race-fastpath`.
func TestFastpathDeoptDiscardsInFlightCompile(t *testing.T) {
	mem := emu.NewMemory(0x1000000)
	mgr := NewManager(mem, Config{Tier1Calls: 2, Tier2Calls: 1 << 62})
	fixed := mem.Alloc(16, 8, "fixed")

	started := make(chan struct{})
	var startedOnce sync.Once
	release := make(chan struct{})
	var compiles atomic.Int64
	orig := placeAdd(t, mem, "orig", 8)
	f, err := mgr.Register(FuncSpec{
		Name:   "add",
		Entry:  orig,
		Ranges: []Range{{Start: fixed.Start, End: fixed.End()}},
		Compile: func(target Level) (CompileResult, error) {
			startedOnce.Do(func() { close(started) })
			<-release
			n := compiles.Add(1)
			entry := placeAdd(t, mem, fmt.Sprintf("code.%v.%d", target, n), 4)
			return CompileResult{Entry: entry, CodeSize: 16}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	// Cross the tier-1 threshold; the background compile parks on release.
	for i := 0; i < 2; i++ {
		if _, err := f.Call([]uint64{1, uint64(i)}, nil); err != nil {
			t.Fatal(err)
		}
	}
	<-started

	// Deoptimize mid-compile, then let the stale result arrive: it must be
	// discarded, leaving the function at tier 0 with zero installs.
	if n := mgr.Invalidate(fixed.Start, fixed.End()); n != 1 {
		t.Fatalf("Invalidate deoptimized %d funcs, want 1", n)
	}
	close(release)
	mgr.Drain()

	st := f.Stats()
	if st.Promotions[Tier1] != 0 {
		t.Fatalf("stale tier-1 result was installed (promotions = %d)", st.Promotions[Tier1])
	}
	if compiles.Load() != 1 {
		t.Fatalf("compiles = %d, want 1", compiles.Load())
	}
	if got := f.Level(); got != Tier0 {
		t.Fatalf("level after discarded compile = %v, want tier0", got)
	}

	// The handle still works and re-promotes over the new state; racing
	// dispatchers against the second promotion install is the -race payoff.
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				got, err := f.Call([]uint64{10, 20}, nil)
				if err != nil {
					t.Error(err)
					return
				}
				if got != 30 {
					t.Errorf("call after deopt = %d, want 30", got)
					return
				}
			}
		}()
	}
	wg.Wait()
	mgr.Drain()
	if got := f.Level(); got != Tier1 {
		t.Fatalf("level after re-promotion = %v, want tier1", got)
	}
}
