package kernels

import (
	"math"
	"testing"

	"repro/internal/emu"
	"repro/internal/stencil"
)

// setup builds a corpus plus matrices and serialized stencils.
func setup(t *testing.T, sz int, st stencil.Stencil) (*Corpus, *stencil.Matrix, *stencil.Matrix, uint64, uint64) {
	t.Helper()
	mem := emu.NewMemory(0x10000000)
	c, err := Build(mem, sz)
	if err != nil {
		t.Fatal(err)
	}
	m1 := stencil.NewMatrix(mem, sz, "m1")
	m2 := stencil.NewMatrix(mem, sz, "m2")
	m1.InitBoundary()
	for r := 1; r < sz-1; r++ {
		for col := 1; col < sz-1; col++ {
			m1.Set(r, col, float64(r*31+col)/100.0)
		}
	}
	flat, _, err := st.SerializeFlat(mem)
	if err != nil {
		t.Fatal(err)
	}
	sorted, _, _, err := st.SerializeSorted(mem)
	if err != nil {
		t.Fatal(err)
	}
	return c, m1, m2, flat, sorted
}

// runElem invokes an element kernel for every interior element of row.
func runElem(t *testing.T, c *Corpus, entry, s uint64, m1, m2 *stencil.Matrix, row int) {
	t.Helper()
	m := emu.NewMachine(c.Mem)
	for col := 1; col < m1.N-1; col++ {
		idx := uint64(row*m1.N + col)
		_, err := m.Call(entry, emu.CallArgs{
			Ints: []uint64{s, m1.Region.Start, m2.Region.Start, idx},
		}, 100000)
		if err != nil {
			t.Fatalf("col %d: %v", col, err)
		}
	}
}

// runLine invokes a line kernel on one row.
func runLine(t *testing.T, c *Corpus, entry, s uint64, m1, m2 *stencil.Matrix, row int) {
	t.Helper()
	m := emu.NewMachine(c.Mem)
	idx0 := uint64(row*m1.N + 1)
	n := uint64(m1.N - 2)
	_, err := m.Call(entry, emu.CallArgs{
		Ints: []uint64{s, m1.Region.Start, m2.Region.Start, idx0, n},
	}, 100_000_000)
	if err != nil {
		t.Fatal(err)
	}
}

// checkRow compares one matrix row against the reference computation.
func checkRow(t *testing.T, st stencil.Stencil, m1, m2 *stencil.Matrix, row int, label string) {
	t.Helper()
	ref := m1.Slice()
	for col := 1; col < m1.N-1; col++ {
		idx := row*m1.N + col
		want := st.Apply(ref, m1.N, idx)
		got := m2.Get(row, col)
		if math.Abs(got-want) > 1e-12 {
			t.Fatalf("%s: (%d,%d): got %g, want %g", label, row, col, got, want)
			return
		}
	}
}

func TestElementKernels(t *testing.T) {
	const sz = 33
	st := stencil.FourPoint()
	c, m1, m2, flat, sorted := setup(t, sz, st)
	for _, k := range []struct {
		name  string
		entry uint64
		s     uint64
	}{
		{"direct", c.DirectElem, flat},
		{"flat", c.FlatElem, flat},
		{"sorted", c.SortedElem, sorted},
	} {
		runElem(t, c, k.entry, k.s, m1, m2, 5)
		checkRow(t, st, m1, m2, 5, k.name)
	}
}

func TestLineKernels(t *testing.T) {
	const sz = 33
	st := stencil.FourPoint()
	c, m1, m2, flat, sorted := setup(t, sz, st)
	for _, k := range []struct {
		name  string
		entry uint64
		s     uint64
	}{
		{"direct_line", c.DirectLine, flat},
		{"flat_line", c.FlatLine, flat},
		{"sorted_line", c.SortedLine, sorted},
		{"direct_line_call", c.DirectLineCall, flat},
		{"flat_line_call", c.FlatLineCall, flat},
		{"sorted_line_call", c.SortedLineCall, sorted},
	} {
		runLine(t, c, k.entry, k.s, m1, m2, 7)
		checkRow(t, st, m1, m2, 7, k.name)
	}
}

func TestLineKernelOddCount(t *testing.T) {
	// Odd element counts exercise the vectorized kernel's peel and tail.
	const sz = 20 // 18 interior elements; with peel the pairing shifts
	st := stencil.FourPoint()
	c, m1, m2, flat, _ := setup(t, sz, st)
	m := emu.NewMachine(c.Mem)
	for _, n := range []uint64{1, 2, 3, 7, 17} {
		idx0 := uint64(3*sz + 1)
		_, err := m.Call(c.DirectLine, emu.CallArgs{
			Ints: []uint64{flat, m1.Region.Start, m2.Region.Start, idx0, n},
		}, 1_000_000)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		ref := m1.Slice()
		for k := 0; k < int(n); k++ {
			idx := int(idx0) + k
			want := st.Apply(ref, sz, idx)
			got := m2.Get(idx/sz, idx%sz)
			if math.Abs(got-want) > 1e-12 {
				t.Fatalf("n=%d k=%d: got %g want %g", n, k, got, want)
			}
		}
	}
}

func TestEightPointStencil(t *testing.T) {
	const sz = 25
	st := stencil.EightPoint()
	c, m1, m2, flat, sorted := setup(t, sz, st)
	runElem(t, c, c.FlatElem, flat, m1, m2, 4)
	checkRow(t, st, m1, m2, 4, "flat8")
	runElem(t, c, c.SortedElem, sorted, m1, m2, 4)
	checkRow(t, st, m1, m2, 4, "sorted8")
}

func TestMaxKernel(t *testing.T) {
	mem := emu.NewMemory(0x10000000)
	c, err := Build(mem, 649)
	if err != nil {
		t.Fatal(err)
	}
	m := emu.NewMachine(mem)
	cases := [][3]int64{{3, 9, 9}, {9, 3, 9}, {-4, -7, -4}}
	for _, cs := range cases {
		got, err := m.Call(c.MaxFunc, emu.CallArgs{Ints: []uint64{uint64(cs[0]), uint64(cs[1])}}, 100)
		if err != nil {
			t.Fatal(err)
		}
		if int64(got) != cs[2] {
			t.Errorf("max(%d,%d) = %d, want %d", cs[0], cs[1], int64(got), cs[2])
		}
	}
}

func TestPaperMatrixSize(t *testing.T) {
	if n := stencil.MatrixSize(9, 80); n != 649 {
		t.Errorf("9x9 with 80 interlines = %d, want 649 (the paper's setup)", n)
	}
}

func Test649Kernels(t *testing.T) {
	// Run one row with the paper's actual matrix size so the lea-chain
	// multiply path is exercised.
	st := stencil.FourPoint()
	c, m1, m2, flat, sorted := setup(t, 649, st)
	runLine(t, c, c.FlatLine, flat, m1, m2, 11)
	checkRow(t, st, m1, m2, 11, "flat649")
	runLine(t, c, c.SortedLine, sorted, m1, m2, 12)
	checkRow(t, st, m1, m2, 12, "sorted649")
	runLine(t, c, c.DirectLine, flat, m1, m2, 13)
	checkRow(t, st, m1, m2, 13, "direct649")
}

// TestOddSizeKernels: the corpus must be correct for arbitrary matrix sizes
// (imul path of emitMulSZ), not only the paper's lea-chain 649.
func TestOddSizeKernels(t *testing.T) {
	st := stencil.FourPoint()
	for _, sz := range []int{17, 101, 255} {
		c, m1, m2, flat, sorted := setup(t, sz, st)
		row := sz / 2
		runElem(t, c, c.FlatElem, flat, m1, m2, row)
		checkRow(t, st, m1, m2, row, "flat_elem")
		runElem(t, c, c.SortedElem, sorted, m1, m2, row)
		checkRow(t, st, m1, m2, row, "sorted_elem")
		runLine(t, c, c.FlatLine, flat, m1, m2, row+1)
		checkRow(t, st, m1, m2, row+1, "flat_line")
		runLine(t, c, c.DirectLine, flat, m1, m2, row+2)
		checkRow(t, st, m1, m2, row+2, "direct_line")
	}
}
