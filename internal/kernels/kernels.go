// Package kernels provides the "compiled binary code" corpus of the
// reproduction: hand-scheduled x86-64 machine code for every function the
// paper's evaluation feeds into DBrew and the LLVM transformation, written
// in the style GCC 5.4 emits at -O3 -mno-avx. This substitutes for the
// GCC-compiled object code of the original artifact (see DESIGN.md): the
// bytes are genuine x86-64 with the idioms the paper calls out — lea-chain
// index multiplication, SSE scalar arithmetic, and a vectorized line kernel
// with an alignment peel and aligned packed stores.
//
// All element kernels share the signature
//
//	void elem(struct S *s, double *m1, double *m2, long index)
//
// (rdi, rsi, rdx, rcx) and all line kernels
//
//	void line(struct S *s, double *m1, double *m2, long index0, long n)
//
// (rdi, rsi, rdx, rcx, r8).
package kernels

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/abi"
	"repro/internal/emu"
	"repro/internal/x86"
	"repro/internal/x86/asm"
)

// Corpus holds the entry addresses of all built kernels.
type Corpus struct {
	Mem *emu.Memory
	SZ  int // matrix side length baked into the generic kernels (like #define SZ)

	// Quarter is the address of the 0.25 constant; QuarterPair of the
	// 16-byte [0.25, 0.25] used by the vectorized kernel.
	Quarter     uint64
	QuarterPair uint64

	// Element kernels.
	DirectElem uint64
	FlatElem   uint64
	SortedElem uint64

	// Line kernels as the compiler produced them (generic kernels inlined,
	// the direct one vectorized).
	DirectLine uint64
	FlatLine   uint64
	SortedLine uint64

	// Call-based line kernels: the element computation in a separate
	// function, as used for the DBrew line-kernel experiments (Section VI).
	DirectLineCall uint64
	FlatLineCall   uint64
	SortedLineCall uint64

	// MaxFunc is the Figure 6 example: max(a, b) via cmp + cmovl.
	MaxFunc uint64

	// Sizes maps entry addresses to code sizes (for listings).
	Sizes map[uint64]int
}

// ElemSig is the element kernel signature.
var ElemSig = abi.Signature{Params: []abi.Class{abi.ClassPtr, abi.ClassPtr, abi.ClassPtr, abi.ClassInt}}

// LineSig is the line kernel signature.
var LineSig = abi.Signature{Params: []abi.Class{abi.ClassPtr, abi.ClassPtr, abi.ClassPtr, abi.ClassInt, abi.ClassInt}}

// MaxSig is the Figure 6 function signature.
var MaxSig = abi.Sig(abi.ClassInt, abi.ClassInt, abi.ClassInt)

// codeBase is where the "text segment" of the corpus is mapped.
const codeBase = 0x400000

// Build assembles the corpus into mem for matrices of side length sz.
func Build(mem *emu.Memory, sz int) (*Corpus, error) {
	c := &Corpus{Mem: mem, SZ: sz, Sizes: make(map[uint64]int)}

	// .rodata: FP constants, 16-byte aligned for the packed pair.
	ro := mem.Alloc(32, 16, "kernels.rodata")
	binary.LittleEndian.PutUint64(ro.Data[0:], math.Float64bits(0.25))
	binary.LittleEndian.PutUint64(ro.Data[16:], math.Float64bits(0.25))
	binary.LittleEndian.PutUint64(ro.Data[24:], math.Float64bits(0.25))
	c.Quarter = ro.Start
	c.QuarterPair = ro.Start + 16
	if c.QuarterPair >= 1<<31 {
		return nil, fmt.Errorf("kernels: rodata beyond 2 GiB")
	}

	base := codeBase
	type fn struct {
		name  string
		addr  *uint64
		build func(b *asm.Builder) error
	}
	fns := []fn{
		{"direct_elem", &c.DirectElem, c.buildDirectElem},
		{"flat_elem", &c.FlatElem, c.buildFlatElem},
		{"sorted_elem", &c.SortedElem, c.buildSortedElem},
		{"direct_line", &c.DirectLine, c.buildDirectLine},
		{"flat_line", &c.FlatLine, c.buildFlatLine},
		{"sorted_line", &c.SortedLine, c.buildSortedLine},
		{"max", &c.MaxFunc, buildMax},
	}
	next := uint64(base)
	for _, f := range fns {
		b := asm.NewBuilder()
		if err := f.build(b); err != nil {
			return nil, fmt.Errorf("kernels: %s: %w", f.name, err)
		}
		code, _, err := b.Assemble(next)
		if err != nil {
			return nil, fmt.Errorf("kernels: %s: %w", f.name, err)
		}
		if _, err := mem.MapBytes(next, code, "kernels."+f.name); err != nil {
			return nil, err
		}
		*f.addr = next
		c.Sizes[next] = len(code)
		next += uint64(len(code))
		next = (next + 15) &^ 15 // function alignment
	}

	// Call-based line kernels need the element entry addresses.
	callFns := []fn{
		{"direct_line_call", &c.DirectLineCall, func(b *asm.Builder) error { return buildLineCall(b, c.DirectElem) }},
		{"flat_line_call", &c.FlatLineCall, func(b *asm.Builder) error { return buildLineCall(b, c.FlatElem) }},
		{"sorted_line_call", &c.SortedLineCall, func(b *asm.Builder) error { return buildLineCall(b, c.SortedElem) }},
	}
	for _, f := range callFns {
		b := asm.NewBuilder()
		if err := f.build(b); err != nil {
			return nil, fmt.Errorf("kernels: %s: %w", f.name, err)
		}
		code, _, err := b.Assemble(next)
		if err != nil {
			return nil, fmt.Errorf("kernels: %s: %w", f.name, err)
		}
		if _, err := mem.MapBytes(next, code, "kernels."+f.name); err != nil {
			return nil, err
		}
		*f.addr = next
		c.Sizes[next] = len(code)
		next += uint64(len(code))
		next = (next + 15) &^ 15
	}
	return c, nil
}

// rowDisp is the byte displacement of one matrix row.
func (c *Corpus) rowDisp() int32 { return int32(8 * c.SZ) }

// quarterOp returns the absolute-address operand of the 0.25 constant, the
// form GCC's constant pool references take after linking (cf. the
// mulsd xmm0, [0x14c47d8] in Figure 8).
func (c *Corpus) quarterOp() x86.Operand { return x86.MemAbs(8, int32(c.Quarter)) }

// buildDirectElem is the hand-specialized 4-point stencil:
//
//	m2[idx] = 0.25*(m1[idx-1] + m1[idx+1] + m1[idx-SZ] + m1[idx+SZ])
func (c *Corpus) buildDirectElem(b *asm.Builder) error {
	rd := c.rowDisp()
	b.I(x86.MOVSD_X, x86.X(x86.XMM0), x86.MemBIS(8, x86.RSI, x86.RCX, 8, -8))
	b.I(x86.ADDSD, x86.X(x86.XMM0), x86.MemBIS(8, x86.RSI, x86.RCX, 8, 8))
	b.I(x86.ADDSD, x86.X(x86.XMM0), x86.MemBIS(8, x86.RSI, x86.RCX, 8, -rd))
	b.I(x86.ADDSD, x86.X(x86.XMM0), x86.MemBIS(8, x86.RSI, x86.RCX, 8, rd))
	b.I(x86.MULSD, x86.X(x86.XMM0), c.quarterOp())
	b.I(x86.MOVSD_X, x86.MemBIS(8, x86.RDX, x86.RCX, 8, 0), x86.X(x86.XMM0))
	b.Ret()
	return nil
}

// emitMul649 emits the GCC-style lea chain computing dst = src*SZ for
// SZ = 649 (dst = src + 8*(81*src), 81 = 9*9), or an imul for other sizes.
// src and dst must differ; dst is clobbered.
func (c *Corpus) emitMulSZ(b *asm.Builder, dst, src x86.Reg) {
	if c.SZ == 649 {
		// GCC 5.4 strength-reduces *649 into lea chains — the paper notes
		// LLVM instead uses a single imul here (Section VI-A).
		b.I(x86.LEA, x86.R64(dst), x86.MemBIS(8, src, src, 8, 0)) // 9*src
		b.I(x86.LEA, x86.R64(dst), x86.MemBIS(8, dst, dst, 8, 0)) // 81*src
		b.I(x86.LEA, x86.R64(dst), x86.MemBIS(8, src, dst, 8, 0)) // 649*src
		return
	}
	b.I(x86.IMUL3, x86.R64(dst), x86.R64(src), x86.Imm(int64(c.SZ), 8))
}

// buildFlatElem is apply_flat from Figure 7 as GCC compiles it: a loop over
// the stencil points with the lea-chain index computation.
func (c *Corpus) buildFlatElem(b *asm.Builder) error {
	loop := b.NewLabel()
	store := b.NewLabel()
	zero := b.NewLabel()

	b.I(x86.MOV, x86.R32(x86.RAX), x86.MemBD(4, x86.RDI, 0)) // ps
	b.I(x86.TEST, x86.R32(x86.RAX), x86.R32(x86.RAX))
	b.Jcc(x86.CondLE, zero)
	b.I(x86.LEA, x86.R64(x86.R8), x86.MemBD(8, x86.RDI, 8)) // p = s->p
	b.I(x86.MOVSXD, x86.R64(x86.R9), x86.R32(x86.RAX))
	b.I(x86.SHL, x86.R64(x86.R9), x86.Imm(4, 1))
	b.I(x86.ADD, x86.R64(x86.R9), x86.R64(x86.R8)) // end pointer
	b.I(x86.PXOR, x86.X(x86.XMM1), x86.X(x86.XMM1))

	b.Bind(loop)
	b.I(x86.MOVSXD, x86.R64(x86.R10), x86.MemBD(4, x86.R8, 12)) // dy
	c.emitMulSZ(b, x86.R11, x86.R10)                            // SZ*dy
	b.I(x86.MOVSXD, x86.R64(x86.RAX), x86.MemBD(4, x86.R8, 8))  // dx
	b.I(x86.ADD, x86.R64(x86.RAX), x86.R64(x86.R11))
	b.I(x86.ADD, x86.R64(x86.RAX), x86.R64(x86.RCX)) // + index
	b.I(x86.MOVSD_X, x86.X(x86.XMM0), x86.MemBD(8, x86.R8, 0))
	b.I(x86.MULSD, x86.X(x86.XMM0), x86.MemBIS(8, x86.RSI, x86.RAX, 8, 0))
	b.I(x86.ADDSD, x86.X(x86.XMM1), x86.X(x86.XMM0))
	b.I(x86.ADD, x86.R64(x86.R8), x86.Imm(16, 8))
	b.I(x86.CMP, x86.R64(x86.R8), x86.R64(x86.R9))
	b.Jcc(x86.CondNE, loop)
	b.Jmp(store)

	b.Bind(zero)
	b.I(x86.PXOR, x86.X(x86.XMM1), x86.X(x86.XMM1))
	b.Bind(store)
	b.I(x86.MOVSD_X, x86.MemBIS(8, x86.RDX, x86.RCX, 8, 0), x86.X(x86.XMM1))
	b.Ret()
	return nil
}

// buildSortedElem is the sorted-structure kernel: the header holds a table
// of pointers to coefficient groups (the nested pointers of Section IV);
// two nested loops, one multiply per group.
func (c *Corpus) buildSortedElem(b *asm.Builder) error {
	gloop := b.NewLabel()
	ploop := b.NewLabel()
	pdone := b.NewLabel()
	store := b.NewLabel()
	zero := b.NewLabel()

	b.I(x86.PUSH, x86.R64(x86.RBX))
	b.I(x86.PUSH, x86.R64(x86.R12))
	b.I(x86.MOV, x86.R32(x86.RAX), x86.MemBD(4, x86.RDI, 0)) // gs
	b.I(x86.TEST, x86.R32(x86.RAX), x86.R32(x86.RAX))
	b.Jcc(x86.CondLE, zero)
	b.I(x86.LEA, x86.R64(x86.R8), x86.MemBD(8, x86.RDI, 8)) // pointer table
	b.I(x86.MOVSXD, x86.R64(x86.RAX), x86.R32(x86.RAX))
	b.I(x86.LEA, x86.R64(x86.R9), x86.MemBIS(8, x86.R8, x86.RAX, 8, 0)) // table end
	b.I(x86.PXOR, x86.X(x86.XMM1), x86.X(x86.XMM1))                     // v

	b.Bind(gloop)
	b.I(x86.MOV, x86.R64(x86.RBX), x86.MemBD(8, x86.R8, 0))  // group ptr (nested)
	b.I(x86.MOV, x86.R32(x86.RAX), x86.MemBD(4, x86.RBX, 8)) // ps
	b.I(x86.PXOR, x86.X(x86.XMM2), x86.X(x86.XMM2))          // sum
	b.I(x86.TEST, x86.R32(x86.RAX), x86.R32(x86.RAX))
	b.Jcc(x86.CondLE, pdone)
	b.I(x86.LEA, x86.R64(x86.R10), x86.MemBD(8, x86.RBX, 16)) // point ptr
	b.I(x86.MOVSXD, x86.R64(x86.RAX), x86.R32(x86.RAX))
	b.I(x86.LEA, x86.R64(x86.R11), x86.MemBIS(8, x86.R10, x86.RAX, 8, 0)) // end

	b.Bind(ploop)
	b.I(x86.MOVSXD, x86.R64(x86.R12), x86.MemBD(4, x86.R10, 4)) // dy
	c.emitMulSZ(b, x86.RAX, x86.R12)                            // SZ*dy
	b.I(x86.MOVSXD, x86.R64(x86.R12), x86.MemBD(4, x86.R10, 0)) // dx
	b.I(x86.ADD, x86.R64(x86.RAX), x86.R64(x86.R12))
	b.I(x86.ADD, x86.R64(x86.RAX), x86.R64(x86.RCX))
	b.I(x86.ADDSD, x86.X(x86.XMM2), x86.MemBIS(8, x86.RSI, x86.RAX, 8, 0))
	b.I(x86.ADD, x86.R64(x86.R10), x86.Imm(8, 8))
	b.I(x86.CMP, x86.R64(x86.R10), x86.R64(x86.R11))
	b.Jcc(x86.CondNE, ploop)

	b.Bind(pdone)
	b.I(x86.MULSD, x86.X(x86.XMM2), x86.MemBD(8, x86.RBX, 0)) // * f
	b.I(x86.ADDSD, x86.X(x86.XMM1), x86.X(x86.XMM2))
	b.I(x86.ADD, x86.R64(x86.R8), x86.Imm(8, 8))
	b.I(x86.CMP, x86.R64(x86.R8), x86.R64(x86.R9))
	b.Jcc(x86.CondNE, gloop)
	b.Jmp(store)

	b.Bind(zero)
	b.I(x86.PXOR, x86.X(x86.XMM1), x86.X(x86.XMM1))
	b.Bind(store)
	b.I(x86.MOVSD_X, x86.MemBIS(8, x86.RDX, x86.RCX, 8, 0), x86.X(x86.XMM1))
	b.I(x86.POP, x86.R64(x86.R12))
	b.I(x86.POP, x86.R64(x86.RBX))
	b.Ret()
	return nil
}

// buildDirectLine is the compile-time vectorized line kernel: GCC peels one
// element when the output is misaligned, then processes pairs with packed
// arithmetic and aligned stores, with a scalar tail (Section VI-B notes GCC
// "includes alignment checks to perform aligned loads where possible").
func (c *Corpus) buildDirectLine(b *asm.Builder) error {
	rd := c.rowDisp()
	done := b.NewLabel()
	mainSetup := b.NewLabel()
	mainLoop := b.NewLabel()
	tail := b.NewLabel()

	b.I(x86.TEST, x86.R64(x86.R8), x86.R64(x86.R8))
	b.Jcc(x86.CondLE, done)

	// Peel one scalar element if m2+8*idx is not 16-byte aligned.
	b.I(x86.LEA, x86.R64(x86.RAX), x86.MemBIS(8, x86.RDX, x86.RCX, 8, 0))
	b.I(x86.TEST, x86.R8L(x86.RAX), x86.Imm(15, 1))
	b.Jcc(x86.CondE, mainSetup)
	c.emitScalarElem(b)
	b.I(x86.ADD, x86.R64(x86.RCX), x86.Imm(1, 8))
	b.I(x86.SUB, x86.R64(x86.R8), x86.Imm(1, 8))
	b.Jcc(x86.CondE, done)

	b.Bind(mainSetup)
	b.I(x86.MOV, x86.R64(x86.R9), x86.R64(x86.R8))
	b.I(x86.SHR, x86.R64(x86.R9), x86.Imm(1, 1)) // pair count
	b.Jcc(x86.CondE, tail)
	b.I(x86.MOVAPD, x86.X(x86.XMM2), x86.MemAbs(16, int32(c.QuarterPair)))

	b.Bind(mainLoop)
	b.I(x86.MOVUPD, x86.X(x86.XMM0), x86.MemBIS(16, x86.RSI, x86.RCX, 8, -8))
	b.I(x86.MOVUPD, x86.X(x86.XMM1), x86.MemBIS(16, x86.RSI, x86.RCX, 8, 8))
	b.I(x86.ADDPD, x86.X(x86.XMM0), x86.X(x86.XMM1))
	b.I(x86.MOVUPD, x86.X(x86.XMM1), x86.MemBIS(16, x86.RSI, x86.RCX, 8, -rd))
	b.I(x86.ADDPD, x86.X(x86.XMM0), x86.X(x86.XMM1))
	b.I(x86.MOVUPD, x86.X(x86.XMM1), x86.MemBIS(16, x86.RSI, x86.RCX, 8, rd))
	b.I(x86.ADDPD, x86.X(x86.XMM0), x86.X(x86.XMM1))
	b.I(x86.MULPD, x86.X(x86.XMM0), x86.X(x86.XMM2))
	b.I(x86.MOVAPD, x86.MemBIS(16, x86.RDX, x86.RCX, 8, 0), x86.X(x86.XMM0))
	b.I(x86.ADD, x86.R64(x86.RCX), x86.Imm(2, 8))
	b.I(x86.SUB, x86.R64(x86.R9), x86.Imm(1, 8))
	b.Jcc(x86.CondNE, mainLoop)

	b.Bind(tail)
	b.I(x86.TEST, x86.R8L(x86.R8), x86.Imm(1, 1))
	b.Jcc(x86.CondE, done)
	c.emitScalarElem(b)

	b.Bind(done)
	b.Ret()
	return nil
}

// emitScalarElem emits the scalar direct computation at the current rcx.
func (c *Corpus) emitScalarElem(b *asm.Builder) {
	rd := c.rowDisp()
	b.I(x86.MOVSD_X, x86.X(x86.XMM0), x86.MemBIS(8, x86.RSI, x86.RCX, 8, -8))
	b.I(x86.ADDSD, x86.X(x86.XMM0), x86.MemBIS(8, x86.RSI, x86.RCX, 8, 8))
	b.I(x86.ADDSD, x86.X(x86.XMM0), x86.MemBIS(8, x86.RSI, x86.RCX, 8, -rd))
	b.I(x86.ADDSD, x86.X(x86.XMM0), x86.MemBIS(8, x86.RSI, x86.RCX, 8, rd))
	b.I(x86.MULSD, x86.X(x86.XMM0), c.quarterOp())
	b.I(x86.MOVSD_X, x86.MemBIS(8, x86.RDX, x86.RCX, 8, 0), x86.X(x86.XMM0))
}

// buildFlatLine is the generic flat kernel inlined into the line loop, as
// GCC -O3 produces (outer loop over elements, inner over stencil points).
func (c *Corpus) buildFlatLine(b *asm.Builder) error {
	elem := b.NewLabel()
	pt := b.NewLabel()
	estore := b.NewLabel()
	ezero := b.NewLabel()
	enext := b.NewLabel()
	done := b.NewLabel()

	b.I(x86.TEST, x86.R64(x86.R8), x86.R64(x86.R8))
	b.Jcc(x86.CondLE, done)
	b.I(x86.PUSH, x86.R64(x86.RBX))
	b.I(x86.LEA, x86.R64(x86.R9), x86.MemBIS(8, x86.RCX, x86.R8, 1, 0)) // end index

	b.Bind(elem)
	b.I(x86.MOV, x86.R32(x86.RAX), x86.MemBD(4, x86.RDI, 0)) // ps
	b.I(x86.TEST, x86.R32(x86.RAX), x86.R32(x86.RAX))
	b.Jcc(x86.CondLE, ezero)
	b.I(x86.LEA, x86.R64(x86.R10), x86.MemBD(8, x86.RDI, 8))
	b.I(x86.MOVSXD, x86.R64(x86.RAX), x86.R32(x86.RAX))
	b.I(x86.SHL, x86.R64(x86.RAX), x86.Imm(4, 1))
	b.I(x86.ADD, x86.R64(x86.RAX), x86.R64(x86.R10))
	b.I(x86.MOV, x86.R64(x86.R11), x86.R64(x86.RAX)) // end ptr
	b.I(x86.PXOR, x86.X(x86.XMM1), x86.X(x86.XMM1))

	b.Bind(pt)
	b.I(x86.MOVSXD, x86.R64(x86.RBX), x86.MemBD(4, x86.R10, 12)) // dy
	c.emitMulSZ(b, x86.RAX, x86.RBX)
	b.I(x86.MOVSXD, x86.R64(x86.RBX), x86.MemBD(4, x86.R10, 8)) // dx
	b.I(x86.ADD, x86.R64(x86.RAX), x86.R64(x86.RBX))
	b.I(x86.ADD, x86.R64(x86.RAX), x86.R64(x86.RCX))
	b.I(x86.MOVSD_X, x86.X(x86.XMM0), x86.MemBD(8, x86.R10, 0))
	b.I(x86.MULSD, x86.X(x86.XMM0), x86.MemBIS(8, x86.RSI, x86.RAX, 8, 0))
	b.I(x86.ADDSD, x86.X(x86.XMM1), x86.X(x86.XMM0))
	b.I(x86.ADD, x86.R64(x86.R10), x86.Imm(16, 8))
	b.I(x86.CMP, x86.R64(x86.R10), x86.R64(x86.R11))
	b.Jcc(x86.CondNE, pt)
	b.Jmp(estore)

	b.Bind(ezero)
	b.I(x86.PXOR, x86.X(x86.XMM1), x86.X(x86.XMM1))
	b.Bind(estore)
	b.I(x86.MOVSD_X, x86.MemBIS(8, x86.RDX, x86.RCX, 8, 0), x86.X(x86.XMM1))
	b.Bind(enext)
	b.I(x86.ADD, x86.R64(x86.RCX), x86.Imm(1, 8))
	b.I(x86.CMP, x86.R64(x86.RCX), x86.R64(x86.R9))
	b.Jcc(x86.CondNE, elem)
	b.I(x86.POP, x86.R64(x86.RBX))
	b.Bind(done)
	b.Ret()
	return nil
}

// buildSortedLine inlines the sorted kernel into the line loop (three
// nested loops over elements, groups, and points).
func (c *Corpus) buildSortedLine(b *asm.Builder) error {
	elem := b.NewLabel()
	gloop := b.NewLabel()
	ploop := b.NewLabel()
	pdone := b.NewLabel()
	estore := b.NewLabel()
	ezero := b.NewLabel()
	done := b.NewLabel()

	b.I(x86.TEST, x86.R64(x86.R8), x86.R64(x86.R8))
	b.Jcc(x86.CondLE, done)
	b.I(x86.PUSH, x86.R64(x86.RBX))
	b.I(x86.PUSH, x86.R64(x86.R12))
	b.I(x86.PUSH, x86.R64(x86.R13))
	b.I(x86.LEA, x86.R64(x86.R13), x86.MemBIS(8, x86.RCX, x86.R8, 1, 0)) // end index

	b.Bind(elem)
	b.I(x86.MOV, x86.R32(x86.RAX), x86.MemBD(4, x86.RDI, 0)) // gs
	b.I(x86.TEST, x86.R32(x86.RAX), x86.R32(x86.RAX))
	b.Jcc(x86.CondLE, ezero)
	b.I(x86.LEA, x86.R64(x86.R8), x86.MemBD(8, x86.RDI, 8)) // pointer table
	b.I(x86.MOVSXD, x86.R64(x86.RAX), x86.R32(x86.RAX))
	b.I(x86.LEA, x86.R64(x86.R9), x86.MemBIS(8, x86.R8, x86.RAX, 8, 0))
	b.I(x86.PXOR, x86.X(x86.XMM1), x86.X(x86.XMM1))

	b.Bind(gloop)
	b.I(x86.MOV, x86.R64(x86.RBX), x86.MemBD(8, x86.R8, 0))  // group ptr
	b.I(x86.MOV, x86.R32(x86.RAX), x86.MemBD(4, x86.RBX, 8)) // ps
	b.I(x86.PXOR, x86.X(x86.XMM2), x86.X(x86.XMM2))
	b.I(x86.TEST, x86.R32(x86.RAX), x86.R32(x86.RAX))
	b.Jcc(x86.CondLE, pdone)
	b.I(x86.LEA, x86.R64(x86.R10), x86.MemBD(8, x86.RBX, 16))
	b.I(x86.MOVSXD, x86.R64(x86.RAX), x86.R32(x86.RAX))
	b.I(x86.LEA, x86.R64(x86.R11), x86.MemBIS(8, x86.R10, x86.RAX, 8, 0))

	b.Bind(ploop)
	b.I(x86.MOVSXD, x86.R64(x86.R12), x86.MemBD(4, x86.R10, 4))
	c.emitMulSZ(b, x86.RAX, x86.R12)
	b.I(x86.MOVSXD, x86.R64(x86.R12), x86.MemBD(4, x86.R10, 0))
	b.I(x86.ADD, x86.R64(x86.RAX), x86.R64(x86.R12))
	b.I(x86.ADD, x86.R64(x86.RAX), x86.R64(x86.RCX))
	b.I(x86.ADDSD, x86.X(x86.XMM2), x86.MemBIS(8, x86.RSI, x86.RAX, 8, 0))
	b.I(x86.ADD, x86.R64(x86.R10), x86.Imm(8, 8))
	b.I(x86.CMP, x86.R64(x86.R10), x86.R64(x86.R11))
	b.Jcc(x86.CondNE, ploop)

	b.Bind(pdone)
	b.I(x86.MULSD, x86.X(x86.XMM2), x86.MemBD(8, x86.RBX, 0))
	b.I(x86.ADDSD, x86.X(x86.XMM1), x86.X(x86.XMM2))
	b.I(x86.ADD, x86.R64(x86.R8), x86.Imm(8, 8))
	b.I(x86.CMP, x86.R64(x86.R8), x86.R64(x86.R9))
	b.Jcc(x86.CondNE, gloop)
	b.Jmp(estore)

	b.Bind(ezero)
	b.I(x86.PXOR, x86.X(x86.XMM1), x86.X(x86.XMM1))
	b.Bind(estore)
	b.I(x86.MOVSD_X, x86.MemBIS(8, x86.RDX, x86.RCX, 8, 0), x86.X(x86.XMM1))
	b.I(x86.ADD, x86.R64(x86.RCX), x86.Imm(1, 8))
	b.I(x86.CMP, x86.R64(x86.RCX), x86.R64(x86.R13))
	b.Jcc(x86.CondNE, elem)
	b.I(x86.POP, x86.R64(x86.R13))
	b.I(x86.POP, x86.R64(x86.R12))
	b.I(x86.POP, x86.R64(x86.RBX))
	b.Bind(done)
	b.Ret()
	return nil
}

// buildLineCall loops over one line calling the element kernel — the
// DBrew-input form of the line kernels ("the actual computation of an
// element is moved to a separate function which is inlined by DBrew").
func buildLineCall(b *asm.Builder, elemAddr uint64) error {
	loop := b.NewLabel()
	done := b.NewLabel()

	b.I(x86.TEST, x86.R64(x86.R8), x86.R64(x86.R8))
	b.Jcc(x86.CondLE, done)
	b.I(x86.PUSH, x86.R64(x86.RBX))
	b.I(x86.PUSH, x86.R64(x86.R12))
	b.I(x86.PUSH, x86.R64(x86.R13))
	b.I(x86.PUSH, x86.R64(x86.R14))
	b.I(x86.PUSH, x86.R64(x86.R15))
	b.I(x86.MOV, x86.R64(x86.RBX), x86.R64(x86.RDI))
	b.I(x86.MOV, x86.R64(x86.R12), x86.R64(x86.RSI))
	b.I(x86.MOV, x86.R64(x86.R13), x86.R64(x86.RDX))
	b.I(x86.MOV, x86.R64(x86.R14), x86.R64(x86.RCX))
	b.I(x86.MOV, x86.R64(x86.R15), x86.R64(x86.R8))

	b.Bind(loop)
	b.I(x86.MOV, x86.R64(x86.RDI), x86.R64(x86.RBX))
	b.I(x86.MOV, x86.R64(x86.RSI), x86.R64(x86.R12))
	b.I(x86.MOV, x86.R64(x86.RDX), x86.R64(x86.R13))
	b.I(x86.MOV, x86.R64(x86.RCX), x86.R64(x86.R14))
	b.Call(elemAddr)
	b.I(x86.ADD, x86.R64(x86.R14), x86.Imm(1, 8))
	b.I(x86.SUB, x86.R64(x86.R15), x86.Imm(1, 8))
	b.Jcc(x86.CondNE, loop)

	b.I(x86.POP, x86.R64(x86.R15))
	b.I(x86.POP, x86.R64(x86.R14))
	b.I(x86.POP, x86.R64(x86.R13))
	b.I(x86.POP, x86.R64(x86.R12))
	b.I(x86.POP, x86.R64(x86.RBX))
	b.Bind(done)
	b.Ret()
	return nil
}

// buildMax is the Figure 6 example: long max(long a, long b).
func buildMax(b *asm.Builder) error {
	b.I(x86.MOV, x86.R64(x86.RAX), x86.R64(x86.RDI))
	b.I(x86.CMP, x86.R64(x86.RDI), x86.R64(x86.RSI))
	b.Emit(x86.Inst{Op: x86.CMOVCC, Cond: x86.CondL, Dst: x86.R64(x86.RAX), Src: x86.R64(x86.RSI)})
	b.Ret()
	return nil
}
