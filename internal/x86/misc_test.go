package x86

import (
	"strings"
	"testing"
)

func TestOpStringVariants(t *testing.T) {
	cases := map[Op]string{
		ADD: "add", MOVSD_X: "movsd", JCC: "jcc", CMOVCC: "cmovcc",
		SETCC: "setcc", PSHUFD: "pshufd",
	}
	for op, want := range cases {
		if got := op.String(); got != want {
			t.Errorf("Op(%d).String() = %q, want %q", op, got, want)
		}
	}
	if got := Op(9999).String(); !strings.HasPrefix(got, "op") {
		t.Errorf("unknown op should fall back: %q", got)
	}
}

func TestMnemonicConditionSuffixes(t *testing.T) {
	cases := []struct {
		in   Inst
		want string
	}{
		{Inst{Op: JCC, Cond: CondE}, "je"},
		{Inst{Op: JCC, Cond: CondG}, "jg"},
		{Inst{Op: CMOVCC, Cond: CondL}, "cmovl"},
		{Inst{Op: SETCC, Cond: CondB}, "setb"},
		{Inst{Op: RET}, "ret"},
	}
	for _, c := range cases {
		if got := c.in.Mnemonic(); got != c.want {
			t.Errorf("Mnemonic = %q, want %q", got, c.want)
		}
	}
}

func TestNArgsAndIsBranch(t *testing.T) {
	if n := (Inst{Op: RET}).NArgs(); n != 0 {
		t.Errorf("ret NArgs = %d", n)
	}
	if n := (Inst{Op: NOT, Dst: R64(RAX)}).NArgs(); n != 1 {
		t.Errorf("not NArgs = %d", n)
	}
	if n := (Inst{Op: ADD, Dst: R64(RAX), Src: R64(RCX)}).NArgs(); n != 2 {
		t.Errorf("add NArgs = %d", n)
	}
	if n := (Inst{Op: IMUL3, Dst: R64(RAX), Src: R64(RCX), Src2: Imm(3, 8)}).NArgs(); n != 3 {
		t.Errorf("imul3 NArgs = %d", n)
	}
	branches := []Op{JMP, JMPIndirect, JCC, CALL, CALLIndirect, RET}
	for _, op := range branches {
		if !(Inst{Op: op}).IsBranch() {
			t.Errorf("%v must be a branch", op)
		}
	}
	if (Inst{Op: ADD}).IsBranch() {
		t.Error("add is not a branch")
	}
}

func TestRegStringNames(t *testing.T) {
	cases := map[Reg]string{
		RAX: "rax", R15: "r15", XMM0: "xmm0", XMM15: "xmm15",
	}
	for r, want := range cases {
		if got := r.String(); got != want {
			t.Errorf("Reg.String() = %q, want %q", got, want)
		}
	}
	if got := RSP.Name(4); got != "esp" {
		t.Errorf("esp name: %q", got)
	}
	if got := RAX.Name(1); got != "al" {
		t.Errorf("al name: %q", got)
	}
}

func TestEncodeAllStopsOnError(t *testing.T) {
	e := NewEncoder(0x1000)
	good := Inst{Op: ADD, Dst: R64(RAX), Src: R64(RCX)}
	bad := Inst{Op: ADD, Dst: Imm(1, 8), Src: Imm(2, 8)} // imm dst is invalid
	if err := e.EncodeAll([]Inst{good, good}); err != nil {
		t.Fatalf("valid sequence: %v", err)
	}
	if err := e.EncodeAll([]Inst{good, bad, good}); err == nil {
		t.Error("invalid instruction must stop EncodeAll")
	}
}

func TestDecodeErrorMessage(t *testing.T) {
	_, err := Decode([]byte{0x0F, 0xFF, 0xFF}, 0x4000)
	if err == nil {
		t.Fatal("garbage must not decode")
	}
	de, ok := err.(*DecodeError)
	if !ok {
		t.Fatalf("want *DecodeError, got %T", err)
	}
	msg := de.Error()
	if !strings.Contains(msg, "0x400") || !strings.Contains(msg, "cannot decode") {
		t.Errorf("unhelpful error: %q", msg)
	}
}

func TestInstStringBranchForm(t *testing.T) {
	in := Inst{Op: JCC, Cond: CondNE, Dst: Imm(0x401020, 8)}
	if got := in.String(); got != "jne 0x401020" {
		t.Errorf("jcc format: %q", got)
	}
	in = Inst{Op: CALL, Dst: Imm(0x400000, 8)}
	if got := in.String(); got != "call 0x400000" {
		t.Errorf("call format: %q", got)
	}
}

// TestStcClcRoundTrip: the carry-materialization ops encode/decode exactly.
func TestStcClcRoundTrip(t *testing.T) {
	for _, op := range []Op{STC, CLC} {
		enc, err := EncodeInst(Inst{Op: op}, 0x1000)
		if err != nil {
			t.Fatalf("%v: %v", op, err)
		}
		if len(enc) != 1 {
			t.Errorf("%v encodes to %d bytes", op, len(enc))
		}
		in, err := Decode(enc, 0x1000)
		if err != nil {
			t.Fatalf("%v: decode: %v", op, err)
		}
		if in.Op != op || in.Len != 1 {
			t.Errorf("%v round trip: %+v", op, in)
		}
	}
}
