package x86

import (
	"encoding/binary"
	"fmt"
)

// Encoder assembles instructions into x86-64 machine code. Instructions are
// appended to Buf; PC tracks the virtual address of the next instruction so
// relative branches and RIP-relative operands can be resolved.
type Encoder struct {
	Buf []byte
	PC  uint64
}

// NewEncoder returns an encoder emitting code for the given base address.
func NewEncoder(base uint64) *Encoder { return &Encoder{PC: base} }

// Encode appends the encoding of in and advances PC. Branch targets
// (Dst.Imm of JMP/JCC/CALL) are absolute addresses.
func (e *Encoder) Encode(in Inst) error {
	start := len(e.Buf)
	if err := e.encode(in); err != nil {
		e.Buf = e.Buf[:start]
		return fmt.Errorf("x86: encode %v: %w", in, err)
	}
	e.PC += uint64(len(e.Buf) - start)
	return nil
}

// EncodeAll encodes a sequence of instructions, stopping at the first error.
func (e *Encoder) EncodeAll(insts []Inst) error {
	for _, in := range insts {
		if err := e.Encode(in); err != nil {
			return err
		}
	}
	return nil
}

// legacy prefixes
const (
	pfx66 = 0x66
	pfxF2 = 0xF2
	pfxF3 = 0xF3
)

// modrm captures everything needed to emit a ModRM-form instruction.
type modrm struct {
	prefix byte   // 0, 0x66, 0xF2, 0xF3
	opc    []byte // opcode bytes (including 0F escape)
	reg    byte   // value of the ModRM reg field (register encoding or /digit)
	regExt bool   // REX.R
	rm     Operand
	rexW   bool
	opSize uint8 // operand size for 66-prefix decision on integer ops (2 => 66)
	imm    []byte
	rex8   bool // force REX presence for SPL/BPL/SIL/DIL access
	noRex  bool // high-byte register in use: REX must not be emitted
}

func (e *Encoder) emitModRM(m modrm) error {
	// Segment override.
	if m.rm.Kind == KMem {
		switch m.rm.Mem.Seg {
		case SegFS:
			e.Buf = append(e.Buf, 0x64)
		case SegGS:
			e.Buf = append(e.Buf, 0x65)
		}
	}
	if m.opSize == 2 {
		e.Buf = append(e.Buf, pfx66)
	}
	if m.prefix != 0 {
		e.Buf = append(e.Buf, m.prefix)
	}

	rex := byte(0x40)
	need := m.rexW || m.rex8
	if m.rexW {
		rex |= 8
	}
	if m.regExt {
		rex |= 4
		need = true
	}

	var modrmByte, sib byte
	var hasSIB bool
	var disp []byte
	var ripFixup bool

	switch m.rm.Kind {
	case KReg:
		r := m.rm.Reg
		enc := r.enc()
		if (r.IsGP() && r >= R8) || (r.IsXMM() && r >= XMM8) {
			rex |= 1
			need = true
		}
		modrmByte = 0xC0 | (m.reg&7)<<3 | enc&7
		if r.IsHighByte() {
			m.noRex = true
		}
		if m.rm.Size == 1 && r.IsGP() && r >= RSP && r <= RDI {
			need = true // SPL/BPL/SIL/DIL require a REX prefix
		}
	case KMem:
		mem := m.rm.Mem
		if mem.RIPRel {
			modrmByte = 0x00 | (m.reg&7)<<3 | 5
			disp = le32(uint32(mem.Disp))
			ripFixup = true
			break
		}
		base, idx := mem.Base, mem.Index
		if base != NoReg && base >= R8 && base.IsGP() {
			rex |= 1
			need = true
		}
		if idx != NoReg && idx >= R8 && idx.IsGP() {
			rex |= 2
			need = true
		}
		needSIB := idx != NoReg || base == NoReg || base == RSP || base == R12
		var mod byte
		switch {
		case base == NoReg:
			mod = 0 // disp32, SIB with base=101
			disp = le32(uint32(mem.Disp))
		case mem.Disp == 0 && base != RBP && base != R13:
			mod = 0
		case mem.Disp >= -128 && mem.Disp <= 127:
			mod = 1
			disp = []byte{byte(mem.Disp)}
		default:
			mod = 2
			disp = le32(uint32(mem.Disp))
		}
		if needSIB {
			modrmByte = mod<<6 | (m.reg&7)<<3 | 4
			var ss byte
			switch mem.Scale {
			case 1, 0:
				ss = 0
			case 2:
				ss = 1
			case 4:
				ss = 2
			case 8:
				ss = 3
			default:
				return fmt.Errorf("bad scale %d", mem.Scale)
			}
			ib := byte(4) // none
			if idx != NoReg {
				if idx == RSP {
					return fmt.Errorf("rsp cannot be an index register")
				}
				ib = idx.enc() & 7
			}
			bb := byte(5) // none => disp32
			if base != NoReg {
				bb = base.enc() & 7
			}
			sib = ss<<6 | ib<<3 | bb
			hasSIB = true
		} else {
			modrmByte = mod<<6 | (m.reg&7)<<3 | base.enc()&7
		}
	default:
		return fmt.Errorf("bad rm operand kind %d", m.rm.Kind)
	}

	if need {
		if m.noRex {
			return fmt.Errorf("high-byte register cannot be combined with REX")
		}
		e.Buf = append(e.Buf, rex)
	}
	e.Buf = append(e.Buf, m.opc...)
	e.Buf = append(e.Buf, modrmByte)
	if hasSIB {
		e.Buf = append(e.Buf, sib)
	}
	if ripFixup {
		// Disp was specified relative to the end of the instruction, which
		// is exactly how it is encoded; nothing further to adjust because
		// the immediate (if any) follows and the caller pre-adjusted.
		_ = ripFixup
	}
	e.Buf = append(e.Buf, disp...)
	e.Buf = append(e.Buf, m.imm...)
	return nil
}

func le32(v uint32) []byte {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	return b[:]
}

func le64(v uint64) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	return b[:]
}

func immBytes(v int64, size uint8) ([]byte, error) {
	switch size {
	case 1:
		if v < -128 || v > 255 {
			return nil, fmt.Errorf("immediate %d does not fit in 8 bits", v)
		}
		return []byte{byte(v)}, nil
	case 2:
		if v < -32768 || v > 65535 {
			return nil, fmt.Errorf("immediate %d does not fit in 16 bits", v)
		}
		return []byte{byte(v), byte(v >> 8)}, nil
	case 4, 8:
		if v < -(1<<31) || v > (1<<31)-1 {
			return nil, fmt.Errorf("immediate %d does not fit in 32 bits", v)
		}
		return le32(uint32(v)), nil
	}
	return nil, fmt.Errorf("bad immediate size %d", size)
}

// aluSpec describes the classic ALU encoding family (ADD/OR/ADC/SBB/AND/SUB/XOR/CMP).
var aluDigit = map[Op]byte{ADD: 0, OR: 1, ADC: 2, SBB: 3, AND: 4, SUB: 5, XOR: 6, CMP: 7}

// sseSpec describes a prefix + 0F-opcode SSE instruction where dst must be xmm.
type sseSpec struct {
	prefix byte
	opc    byte
}

var sseALU = map[Op]sseSpec{
	ADDSD: {pfxF2, 0x58}, SUBSD: {pfxF2, 0x5C}, MULSD: {pfxF2, 0x59}, DIVSD: {pfxF2, 0x5E},
	MINSD: {pfxF2, 0x5D}, MAXSD: {pfxF2, 0x5F}, SQRTSD: {pfxF2, 0x51},
	ADDSS: {pfxF3, 0x58}, SUBSS: {pfxF3, 0x5C}, MULSS: {pfxF3, 0x59}, DIVSS: {pfxF3, 0x5E},
	ADDPD: {pfx66, 0x58}, SUBPD: {pfx66, 0x5C}, MULPD: {pfx66, 0x59}, DIVPD: {pfx66, 0x5E},
	ADDPS: {0, 0x58}, SUBPS: {0, 0x5C}, MULPS: {0, 0x59}, DIVPS: {0, 0x5E},
	XORPS: {0, 0x57}, XORPD: {pfx66, 0x57}, ANDPS: {0, 0x54}, ANDPD: {pfx66, 0x54},
	ORPS: {0, 0x56}, ORPD: {pfx66, 0x56},
	UNPCKLPD: {pfx66, 0x14}, UNPCKHPD: {pfx66, 0x15}, UNPCKLPS: {0, 0x14},
	PXOR: {pfx66, 0xEF}, POR: {pfx66, 0xEB}, PAND: {pfx66, 0xDB},
	PADDD: {pfx66, 0xFE}, PADDQ: {pfx66, 0xD4}, PSUBD: {pfx66, 0xFA}, PSUBQ: {pfx66, 0xFB},
	PUNPCKLQDQ: {pfx66, 0x6C},
	COMISD:     {pfx66, 0x2F}, UCOMISD: {pfx66, 0x2E},
	COMISS: {0, 0x2F}, UCOMISS: {0, 0x2E},
	CVTSD2SS: {pfxF2, 0x5A}, CVTSS2SD: {pfxF3, 0x5A},
}

// moveSpec describes SSE load/store pairs: opcLoad for xmm <- rm, opcStore
// for rm <- xmm.
type moveSpec struct {
	prefix             byte
	opcLoad, opcStore  byte
	storePrefix        byte // if nonzero, store form uses a different prefix
	hasDistinctProfile bool
}

var sseMove = map[Op]moveSpec{
	MOVSD_X: {prefix: pfxF2, opcLoad: 0x10, opcStore: 0x11},
	MOVSS_X: {prefix: pfxF3, opcLoad: 0x10, opcStore: 0x11},
	MOVAPS:  {prefix: 0, opcLoad: 0x28, opcStore: 0x29},
	MOVUPS:  {prefix: 0, opcLoad: 0x10, opcStore: 0x11},
	MOVAPD:  {prefix: pfx66, opcLoad: 0x28, opcStore: 0x29},
	MOVUPD:  {prefix: pfx66, opcLoad: 0x10, opcStore: 0x11},
	MOVDQA:  {prefix: pfx66, opcLoad: 0x6F, opcStore: 0x7F},
	MOVDQU:  {prefix: pfxF3, opcLoad: 0x6F, opcStore: 0x7F},
	MOVHPD:  {prefix: pfx66, opcLoad: 0x16, opcStore: 0x17},
	MOVLPD:  {prefix: pfx66, opcLoad: 0x12, opcStore: 0x13},
}

func (e *Encoder) encode(in Inst) error {
	dst, src := in.Dst, in.Src
	switch in.Op {
	case NOP:
		e.Buf = append(e.Buf, 0x90)
		return nil
	case STC:
		e.Buf = append(e.Buf, 0xF9)
		return nil
	case CLC:
		e.Buf = append(e.Buf, 0xF8)
		return nil
	case UD2:
		e.Buf = append(e.Buf, 0x0F, 0x0B)
		return nil
	case ENDBR64:
		e.Buf = append(e.Buf, 0xF3, 0x0F, 0x1E, 0xFA)
		return nil
	case RET:
		e.Buf = append(e.Buf, 0xC3)
		return nil
	case MOVSB:
		e.Buf = append(e.Buf, 0xA4)
		return nil
	case STOSB:
		e.Buf = append(e.Buf, 0xAA)
		return nil
	case REPMOVSB:
		e.Buf = append(e.Buf, 0xF3, 0xA4)
		return nil
	case REPSTOSB:
		e.Buf = append(e.Buf, 0xF3, 0xAA)
		return nil
	case CQO:
		e.Buf = append(e.Buf, 0x48, 0x99)
		return nil
	case CDQ:
		e.Buf = append(e.Buf, 0x99)
		return nil
	case CDQE:
		e.Buf = append(e.Buf, 0x48, 0x98)
		return nil

	case JMP, CALL, JCC:
		// Always encode with rel32 for a fixed instruction length.
		target := uint64(dst.Imm)
		var header []byte
		switch in.Op {
		case JMP:
			header = []byte{0xE9}
		case CALL:
			header = []byte{0xE8}
		case JCC:
			header = []byte{0x0F, 0x80 + byte(in.Cond)}
		}
		end := e.PC + uint64(len(header)) + 4
		rel := int64(target) - int64(end)
		if rel < -(1<<31) || rel > (1<<31)-1 {
			return fmt.Errorf("branch target out of rel32 range")
		}
		e.Buf = append(e.Buf, header...)
		e.Buf = append(e.Buf, le32(uint32(rel))...)
		return nil

	case JMPIndirect:
		return e.emitModRM(modrm{opc: []byte{0xFF}, reg: 4, rm: dst})
	case CALLIndirect:
		return e.emitModRM(modrm{opc: []byte{0xFF}, reg: 2, rm: dst})

	case PUSH:
		switch dst.Kind {
		case KReg:
			if dst.Reg >= R8 {
				e.Buf = append(e.Buf, 0x41)
			}
			e.Buf = append(e.Buf, 0x50+dst.Reg.enc()&7)
			return nil
		case KImm:
			if dst.Imm >= -128 && dst.Imm <= 127 {
				e.Buf = append(e.Buf, 0x6A, byte(dst.Imm))
			} else {
				e.Buf = append(e.Buf, 0x68)
				e.Buf = append(e.Buf, le32(uint32(dst.Imm))...)
			}
			return nil
		case KMem:
			return e.emitModRM(modrm{opc: []byte{0xFF}, reg: 6, rm: dst})
		}
	case POP:
		if dst.Kind == KReg {
			if dst.Reg >= R8 {
				e.Buf = append(e.Buf, 0x41)
			}
			e.Buf = append(e.Buf, 0x58+dst.Reg.enc()&7)
			return nil
		}
		return e.emitModRM(modrm{opc: []byte{0x8F}, reg: 0, rm: dst})

	case MOV:
		return e.encodeMov(in)
	case MOVZX, MOVSX:
		var opc []byte
		base := byte(0xB6)
		if in.Op == MOVSX {
			base = 0xBE
		}
		switch src.Size {
		case 1:
			opc = []byte{0x0F, base}
		case 2:
			opc = []byte{0x0F, base + 1}
		default:
			return fmt.Errorf("movzx/movsx source must be 8- or 16-bit")
		}
		return e.emitModRM(modrm{opc: opc, reg: dst.Reg.enc(), regExt: dst.Reg >= R8,
			rm: src, rexW: dst.Size == 8, opSize: op66(dst.Size)})
	case MOVSXD:
		return e.emitModRM(modrm{opc: []byte{0x63}, reg: dst.Reg.enc(), regExt: dst.Reg >= R8,
			rm: src, rexW: true})
	case LEA:
		if src.Kind != KMem {
			return fmt.Errorf("lea requires a memory source")
		}
		return e.emitModRM(modrm{opc: []byte{0x8D}, reg: dst.Reg.enc(), regExt: dst.Reg >= R8,
			rm: src, rexW: dst.Size == 8, opSize: op66(dst.Size)})

	case ADD, OR, ADC, SBB, AND, SUB, XOR, CMP:
		return e.encodeALU(in, aluDigit[in.Op])
	case TEST:
		if src.Kind == KImm {
			imm, err := immBytes(src.Imm, min8(dst.Size, 4))
			if err != nil {
				return err
			}
			opc := byte(0xF7)
			if dst.Size == 1 {
				opc = 0xF6
			}
			return e.emitModRM(modrm{opc: []byte{opc}, reg: 0, rm: dst,
				rexW: dst.Size == 8, opSize: op66(dst.Size), imm: imm})
		}
		opc := byte(0x85)
		if dst.Size == 1 {
			opc = 0x84
		}
		m := modrm{opc: []byte{opc}, reg: src.Reg.enc(), regExt: src.Reg >= R8 && src.Reg.IsGP(),
			rm: dst, rexW: dst.Size == 8, opSize: op66(dst.Size)}
		if src.Reg.IsHighByte() {
			m.noRex = true
		}
		if dst.Size == 1 && src.Reg.IsGP() && src.Reg >= RSP && src.Reg <= RDI {
			m.rex8 = true
		}
		return e.emitModRM(m)
	case XCHG:
		return e.emitModRM(modrm{opc: []byte{0x87}, reg: src.Reg.enc(), regExt: src.Reg >= R8 && src.Reg.IsGP(),
			rm: dst, rexW: dst.Size == 8, opSize: op66(dst.Size)})
	case POPCNT:
		return e.emitModRM(modrm{prefix: pfxF3, opc: []byte{0x0F, 0xB8}, reg: dst.Reg.enc(),
			regExt: dst.Reg >= R8 && dst.Reg.IsGP(), rm: src, rexW: dst.Size == 8, opSize: op66(dst.Size)})

	case NOT, NEG, MUL, IDIV, DIV:
		digit := map[Op]byte{NOT: 2, NEG: 3, MUL: 4, IDIV: 7, DIV: 6}[in.Op]
		opc := byte(0xF7)
		if dst.Size == 1 {
			opc = 0xF6
		}
		return e.emitModRM(modrm{opc: []byte{opc}, reg: digit, rm: dst,
			rexW: dst.Size == 8, opSize: op66(dst.Size)})
	case INC, DEC:
		digit := byte(0)
		if in.Op == DEC {
			digit = 1
		}
		opc := byte(0xFF)
		if dst.Size == 1 {
			opc = 0xFE
		}
		return e.emitModRM(modrm{opc: []byte{opc}, reg: digit, rm: dst,
			rexW: dst.Size == 8, opSize: op66(dst.Size)})

	case IMUL:
		return e.emitModRM(modrm{opc: []byte{0x0F, 0xAF}, reg: dst.Reg.enc(), regExt: dst.Reg >= R8,
			rm: src, rexW: dst.Size == 8, opSize: op66(dst.Size)})
	case IMUL3:
		immv := in.Src2.Imm
		if immv >= -128 && immv <= 127 {
			return e.emitModRM(modrm{opc: []byte{0x6B}, reg: dst.Reg.enc(), regExt: dst.Reg >= R8,
				rm: src, rexW: dst.Size == 8, opSize: op66(dst.Size), imm: []byte{byte(immv)}})
		}
		imm, err := immBytes(immv, 4)
		if err != nil {
			return err
		}
		return e.emitModRM(modrm{opc: []byte{0x69}, reg: dst.Reg.enc(), regExt: dst.Reg >= R8,
			rm: src, rexW: dst.Size == 8, opSize: op66(dst.Size), imm: imm})

	case SHL, SHR, SAR, ROL, ROR:
		digit := map[Op]byte{ROL: 0, ROR: 1, SHL: 4, SHR: 5, SAR: 7}[in.Op]
		opcImm, opcCL, opc1 := byte(0xC1), byte(0xD3), byte(0xD1)
		if dst.Size == 1 {
			opcImm, opcCL, opc1 = 0xC0, 0xD2, 0xD0
		}
		switch {
		case src.Kind == KImm && src.Imm == 1:
			return e.emitModRM(modrm{opc: []byte{opc1}, reg: digit, rm: dst,
				rexW: dst.Size == 8, opSize: op66(dst.Size)})
		case src.Kind == KImm:
			return e.emitModRM(modrm{opc: []byte{opcImm}, reg: digit, rm: dst,
				rexW: dst.Size == 8, opSize: op66(dst.Size), imm: []byte{byte(src.Imm)}})
		case src.IsReg(RCX):
			return e.emitModRM(modrm{opc: []byte{opcCL}, reg: digit, rm: dst,
				rexW: dst.Size == 8, opSize: op66(dst.Size)})
		}
		return fmt.Errorf("shift count must be immediate or cl")

	case CMOVCC:
		return e.emitModRM(modrm{opc: []byte{0x0F, 0x40 + byte(in.Cond)}, reg: dst.Reg.enc(),
			regExt: dst.Reg >= R8, rm: src, rexW: dst.Size == 8, opSize: op66(dst.Size)})
	case SETCC:
		m := modrm{opc: []byte{0x0F, 0x90 + byte(in.Cond)}, reg: 0, rm: dst}
		if dst.Kind == KReg && dst.Reg.IsGP() && dst.Reg >= RSP && dst.Reg <= RDI {
			m.rex8 = true
		}
		return e.emitModRM(m)

	case MOVQ:
		// movq xmm, xmm/m64 = F3 0F 7E; movq m64/xmm, xmm = 66 0F D6
		if dst.Kind == KReg && dst.Reg.IsXMM() {
			return e.emitModRM(modrm{prefix: pfxF3, opc: []byte{0x0F, 0x7E}, reg: dst.Reg.enc(),
				regExt: dst.Reg >= XMM8, rm: withSize(src, 8)})
		}
		return e.emitModRM(modrm{prefix: pfx66, opc: []byte{0x0F, 0xD6}, reg: src.Reg.enc(),
			regExt: src.Reg >= XMM8, rm: withSize(dst, 8)})
	case MOVD, MOVQGP:
		w := in.Op == MOVQGP
		if dst.Kind == KReg && dst.Reg.IsXMM() {
			return e.emitModRM(modrm{prefix: pfx66, opc: []byte{0x0F, 0x6E}, reg: dst.Reg.enc(),
				regExt: dst.Reg >= XMM8, rm: src, rexW: w})
		}
		return e.emitModRM(modrm{prefix: pfx66, opc: []byte{0x0F, 0x7E}, reg: src.Reg.enc(),
			regExt: src.Reg >= XMM8, rm: dst, rexW: w})

	case SHUFPD, SHUFPS, PSHUFD:
		spec := map[Op]sseSpec{SHUFPD: {pfx66, 0xC6}, SHUFPS: {0, 0xC6}, PSHUFD: {pfx66, 0x70}}[in.Op]
		return e.emitModRM(modrm{prefix: spec.prefix, opc: []byte{0x0F, spec.opc}, reg: dst.Reg.enc(),
			regExt: dst.Reg >= XMM8, rm: src, imm: []byte{byte(in.Src2.Imm)}})

	case CVTSI2SD, CVTSI2SS:
		p := byte(pfxF2)
		if in.Op == CVTSI2SS {
			p = pfxF3
		}
		return e.emitModRM(modrm{prefix: p, opc: []byte{0x0F, 0x2A}, reg: dst.Reg.enc(),
			regExt: dst.Reg >= XMM8, rm: src, rexW: src.Size == 8})
	case CVTTSD2SI:
		return e.emitModRM(modrm{prefix: pfxF2, opc: []byte{0x0F, 0x2C}, reg: dst.Reg.enc(),
			regExt: dst.Reg >= R8 && dst.Reg.IsGP(), rm: src, rexW: dst.Size == 8})
	case MOVMSKPD:
		return e.emitModRM(modrm{prefix: pfx66, opc: []byte{0x0F, 0x50}, reg: dst.Reg.enc(),
			regExt: dst.Reg >= R8 && dst.Reg.IsGP(), rm: src})
	}

	if spec, ok := sseALU[in.Op]; ok {
		return e.emitModRM(modrm{prefix: spec.prefix, opc: []byte{0x0F, spec.opc}, reg: dst.Reg.enc(),
			regExt: dst.Reg >= XMM8, rm: src})
	}
	if spec, ok := sseMove[in.Op]; ok {
		if dst.Kind == KReg && dst.Reg.IsXMM() {
			return e.emitModRM(modrm{prefix: spec.prefix, opc: []byte{0x0F, spec.opcLoad}, reg: dst.Reg.enc(),
				regExt: dst.Reg >= XMM8, rm: src})
		}
		return e.emitModRM(modrm{prefix: spec.prefix, opc: []byte{0x0F, spec.opcStore}, reg: src.Reg.enc(),
			regExt: src.Reg >= XMM8, rm: dst})
	}

	return fmt.Errorf("unsupported opcode %v", in.Op)
}

func (e *Encoder) encodeMov(in Inst) error {
	dst, src := in.Dst, in.Src
	switch {
	case src.Kind == KImm && dst.Kind == KReg:
		// 64-bit immediates outside int32 range need movabs (B8+r io).
		if dst.Size == 8 && (src.Imm < -(1<<31) || src.Imm > (1<<31)-1) {
			rex := byte(0x48)
			if dst.Reg >= R8 {
				rex |= 1
			}
			e.Buf = append(e.Buf, rex, 0xB8+dst.Reg.enc()&7)
			e.Buf = append(e.Buf, le64(uint64(src.Imm))...)
			return nil
		}
		if dst.Size == 8 {
			imm, err := immBytes(src.Imm, 4)
			if err != nil {
				return err
			}
			return e.emitModRM(modrm{opc: []byte{0xC7}, reg: 0, rm: dst, rexW: true, imm: imm})
		}
		// 32-bit and narrower: B8+r / B0+r short forms.
		if dst.Size == 4 {
			if dst.Reg >= R8 {
				e.Buf = append(e.Buf, 0x41)
			}
			e.Buf = append(e.Buf, 0xB8+dst.Reg.enc()&7)
			e.Buf = append(e.Buf, le32(uint32(src.Imm))...)
			return nil
		}
		imm, err := immBytes(src.Imm, dst.Size)
		if err != nil {
			return err
		}
		opc := byte(0xC7)
		if dst.Size == 1 {
			opc = 0xC6
		}
		return e.emitModRM(modrm{opc: []byte{opc}, reg: 0, rm: dst, opSize: op66(dst.Size), imm: imm})
	case src.Kind == KImm && dst.Kind == KMem:
		opc := byte(0xC7)
		isz := min8(dst.Size, 4)
		if dst.Size == 1 {
			opc = 0xC6
			isz = 1
		}
		imm, err := immBytes(src.Imm, isz)
		if err != nil {
			return err
		}
		return e.emitModRM(modrm{opc: []byte{opc}, reg: 0, rm: dst,
			rexW: dst.Size == 8, opSize: op66(dst.Size), imm: imm})
	case dst.Kind == KReg && (src.Kind == KMem || src.Kind == KReg):
		opc := byte(0x8B)
		if dst.Size == 1 {
			opc = 0x8A
		}
		m := modrm{opc: []byte{opc}, reg: dst.Reg.enc(), regExt: dst.Reg >= R8 && dst.Reg.IsGP(),
			rm: src, rexW: dst.Size == 8, opSize: op66(dst.Size)}
		if dst.Reg.IsHighByte() {
			m.noRex = true
		}
		if dst.Size == 1 && dst.Reg.IsGP() && dst.Reg >= RSP && dst.Reg <= RDI {
			m.rex8 = true
		}
		return e.emitModRM(m)
	case dst.Kind == KMem && src.Kind == KReg:
		opc := byte(0x89)
		if src.Size == 1 {
			opc = 0x88
		}
		m := modrm{opc: []byte{opc}, reg: src.Reg.enc(), regExt: src.Reg >= R8 && src.Reg.IsGP(),
			rm: dst, rexW: src.Size == 8, opSize: op66(src.Size)}
		if src.Reg.IsHighByte() {
			m.noRex = true
		}
		if src.Size == 1 && src.Reg.IsGP() && src.Reg >= RSP && src.Reg <= RDI {
			m.rex8 = true
		}
		return e.emitModRM(m)
	}
	return fmt.Errorf("unsupported mov form")
}

func (e *Encoder) encodeALU(in Inst, digit byte) error {
	dst, src := in.Dst, in.Src
	op8 := digit*8 + 0 // e.g. ADD r/m8, r8 = 00
	switch {
	case src.Kind == KImm:
		size := dst.Size
		if size == 1 {
			imm, err := immBytes(src.Imm, 1)
			if err != nil {
				return err
			}
			return e.emitModRM(modrm{opc: []byte{0x80}, reg: digit, rm: dst, imm: imm})
		}
		if src.Imm >= -128 && src.Imm <= 127 {
			return e.emitModRM(modrm{opc: []byte{0x83}, reg: digit, rm: dst,
				rexW: size == 8, opSize: op66(size), imm: []byte{byte(src.Imm)}})
		}
		imm, err := immBytes(src.Imm, min8(size, 4))
		if err != nil {
			return err
		}
		return e.emitModRM(modrm{opc: []byte{0x81}, reg: digit, rm: dst,
			rexW: size == 8, opSize: op66(size), imm: imm})
	case src.Kind == KReg && (dst.Kind == KReg || dst.Kind == KMem):
		opc := op8 + 1 // r/m, r
		if dst.Size == 1 {
			opc = op8
		}
		m := modrm{opc: []byte{opc}, reg: src.Reg.enc(), regExt: src.Reg >= R8 && src.Reg.IsGP(),
			rm: dst, rexW: dst.Size == 8, opSize: op66(dst.Size)}
		if src.Reg.IsHighByte() {
			m.noRex = true
		}
		if dst.Size == 1 && src.Reg.IsGP() && src.Reg >= RSP && src.Reg <= RDI {
			m.rex8 = true // spl/bpl/sil/dil need a REX prefix
		}
		return m.emit(e)
	case src.Kind == KMem && dst.Kind == KReg:
		opc := op8 + 3 // r, r/m
		if dst.Size == 1 {
			opc = op8 + 2
		}
		m := modrm{opc: []byte{opc}, reg: dst.Reg.enc(), regExt: dst.Reg >= R8 && dst.Reg.IsGP(),
			rm: src, rexW: dst.Size == 8, opSize: op66(dst.Size)}
		if dst.Reg.IsHighByte() {
			m.noRex = true
		}
		if dst.Size == 1 && dst.Reg.IsGP() && dst.Reg >= RSP && dst.Reg <= RDI {
			m.rex8 = true
		}
		return e.emitModRM(m)
	}
	return fmt.Errorf("unsupported ALU form")
}

func (m modrm) emit(e *Encoder) error { return e.emitModRM(m) }

func op66(size uint8) uint8 {
	if size == 2 {
		return 2
	}
	return 0
}

func min8(a, b uint8) uint8 {
	if a < b {
		return a
	}
	return b
}

func withSize(o Operand, size uint8) Operand {
	o.Size = size
	return o
}

// EncodeInst is a convenience wrapper encoding a single instruction at pc.
func EncodeInst(in Inst, pc uint64) ([]byte, error) {
	e := NewEncoder(pc)
	if err := e.Encode(in); err != nil {
		return nil, err
	}
	return e.Buf, nil
}
