package x86

import (
	"testing"
)

// corpus returns a broad set of instructions covering the encoder's forms.
func corpus() []Inst {
	i := func(op Op, args ...Operand) Inst {
		in := Inst{Op: op}
		if len(args) > 0 {
			in.Dst = args[0]
		}
		if len(args) > 1 {
			in.Src = args[1]
		}
		if len(args) > 2 {
			in.Src2 = args[2]
		}
		return in
	}
	return []Inst{
		i(NOP), i(RET), i(UD2), i(CQO), i(CDQ), i(CDQE), i(ENDBR64),
		// MOV forms.
		i(MOV, R64(RAX), R64(RBX)),
		i(MOV, R64(R8), R64(R15)),
		i(MOV, R32(RCX), R32(RDI)),
		i(MOV, R64(RAX), Imm(42, 8)),
		i(MOV, R64(RAX), Imm(0x123456789A, 8)),
		i(MOV, R64(R12), Imm(-1, 8)),
		i(MOV, R32(RDX), Imm(7, 4)),
		i(MOV, R8L(RAX), Imm(255, 1)),
		i(MOV, RegOp(AH, 1), R8L(RBX)),
		i(MOV, R64(RAX), MemBD(8, RBP, -0xc)),
		i(MOV, MemBD(8, RSP, 16), R64(RDI)),
		i(MOV, MemBIS(4, RSI, RCX, 4, 8), R32(RAX)),
		i(MOV, R32(RAX), MemBIS(4, NoReg, RDX, 8, 0x100)),
		i(MOV, MemAbs(8, 0x14c47d8), R64(RAX)),
		i(MOV, R64(RAX), MemRIP(8, 0x1234)),
		i(MOV, MemBD(1, RDI, 3), R8L(RSI)),
		i(MOV, R16(RBX), MemBD(2, RAX, 0)),
		i(MOV, MemBD(8, R13, 0), R64(RAX)),
		i(MOV, MemBD(8, RBP, 0), R64(RAX)),
		i(MOV, MemBD(8, R12, 0), R64(RAX)),
		i(MOV, MemBD(4, RSP, 0), R32(RAX)),
		i(MOV, Mem(8, MemArg{Base: NoReg, Index: NoReg, Scale: 1, Disp: 0x28, Seg: SegFS}), R64(RAX)),
		// MOVZX/MOVSX/MOVSXD.
		i(MOVZX, R32(RAX), R8L(RBX)),
		i(MOVZX, R64(RCX), MemBD(1, RSI, 2)),
		i(MOVZX, R32(RAX), R16(RDX)),
		i(MOVSX, R64(RAX), R8L(RCX)),
		i(MOVSX, R32(RDI), MemBD(2, RBP, -8)),
		i(MOVSXD, R64(RAX), R32(RDX)),
		i(MOVSXD, R64(R9), MemBD(4, RDI, 4)),
		// LEA.
		i(LEA, R64(RAX), MemBIS(8, RDI, RSI, 2, 5)),
		i(LEA, R64(R10), MemBD(8, RSP, -16)),
		i(LEA, R32(RAX), MemBIS(4, RAX, RAX, 4, 0)),
		// ALU.
		i(ADD, R64(RAX), R64(RBX)),
		i(ADD, R64(RAX), Imm(1, 8)),
		i(ADD, R64(RAX), Imm(0x1000, 8)),
		i(ADD, R32(RCX), MemBD(4, RDI, 0)),
		i(ADD, MemBD(8, RSI, 8), R64(RDX)),
		i(SUB, R64(RSP), Imm(0x28, 8)),
		i(SUB, R64(RAX), Imm(1, 8)),
		i(CMP, R64(RDI), R64(RSI)),
		i(CMP, R32(RAX), Imm(100, 4)),
		i(CMP, MemBD(4, RBP, -4), Imm(9, 4)),
		i(AND, R64(RAX), Imm(-16, 8)),
		i(OR, R32(RDX), R32(RCX)),
		i(XOR, R32(RAX), R32(RAX)),
		i(XOR, R64(R15), R64(R15)),
		i(ADC, R64(RAX), Imm(0, 8)),
		i(SBB, R32(RDX), R32(RDX)),
		i(TEST, R64(RAX), R64(RAX)),
		i(TEST, R32(RDI), Imm(1, 4)),
		i(XCHG, R64(RAX), R64(RDX)),
		// Unary.
		i(NOT, R64(RAX)), i(NEG, R32(RDX)), i(NEG, MemBD(8, RSP, 8)),
		i(INC, R64(RCX)), i(DEC, R32(RAX)), i(INC, MemBD(4, RDI, 0)),
		i(MUL, R64(RBX)), i(IDIV, R64(RCX)), i(DIV, R32(RSI)),
		// IMUL.
		i(IMUL, R64(RAX), R64(RBX)),
		i(IMUL, R32(RDX), MemBD(4, RSI, 4)),
		i(IMUL3, R64(RAX), R64(RCX), Imm(649, 8)),
		i(IMUL3, R32(RAX), R32(RAX), Imm(3, 4)),
		// Shifts.
		i(SHL, R64(RAX), Imm(3, 1)),
		i(SHR, R32(RDX), Imm(1, 1)),
		i(SAR, R64(RCX), Imm(63, 1)),
		i(SHL, R64(RAX), RegOp(RCX, 1)),
		i(ROL, R32(RAX), Imm(8, 1)),
		i(ROR, R64(RBX), Imm(16, 1)),
		// Stack.
		i(PUSH, R64(RBP)), i(PUSH, R64(R12)), i(POP, R64(RBP)), i(POP, R64(R14)),
		i(PUSH, Imm(5, 8)), i(PUSH, Imm(0x1234, 8)), i(PUSH, MemBD(8, RAX, 0)),
		// cmov/setcc.
		i(CMOVCC, R64(RAX), R64(RSI)).withCond(CondL),
		i(CMOVCC, R32(RDX), MemBD(4, RDI, 8)).withCond(CondNE),
		i(SETCC, R8L(RAX)).withCond(CondE),
		i(SETCC, MemBD(1, RBP, -1)).withCond(CondG),
		i(SETCC, R8L(RSI)).withCond(CondB),
		// SSE moves.
		i(MOVSD_X, X(XMM0), MemBIS(8, RSI, RAX, 8, 0)),
		i(MOVSD_X, MemBIS(8, RDX, RCX, 8, 0), X(XMM1)),
		i(MOVSD_X, X(XMM0), X(XMM1)),
		i(MOVSS_X, X(XMM2), MemBD(4, RDI, 12)),
		i(MOVAPS, X(XMM0), X(XMM7)),
		i(MOVAPS, MemBD(16, RSP, 0), X(XMM8)),
		i(MOVUPS, X(XMM1), MemBD(16, RSI, 8)),
		i(MOVAPD, X(XMM3), MemBD(16, RDI, 0)),
		i(MOVUPD, MemBD(16, RDX, 24), X(XMM15)),
		i(MOVDQA, X(XMM4), MemBD(16, RSP, 32)),
		i(MOVDQU, X(XMM5), MemBD(16, RSI, 1)),
		i(MOVQ, X(XMM0), MemBD(8, RAX, 0)),
		i(MOVQ, MemBD(8, RAX, 0), X(XMM0)),
		i(MOVQ, X(XMM1), X(XMM2)),
		i(MOVD, X(XMM0), R32(RAX)),
		i(MOVD, R32(RDX), X(XMM3)),
		i(MOVQGP, X(XMM0), R64(RDI)),
		i(MOVQGP, R64(RAX), X(XMM0)),
		i(MOVHPD, X(XMM0), MemBD(8, RSI, 8)),
		i(MOVLPD, MemBD(8, RDI, 0), X(XMM2)),
		// SSE arithmetic.
		i(ADDSD, X(XMM0), X(XMM1)),
		i(ADDSD, X(XMM0), MemBIS(8, RSI, RCX, 8, 8)),
		i(SUBSD, X(XMM3), MemBD(8, RAX, 0)),
		i(MULSD, X(XMM0), MemAbs(8, 0x14c47d8)),
		i(DIVSD, X(XMM1), X(XMM2)),
		i(MINSD, X(XMM0), X(XMM4)), i(MAXSD, X(XMM0), X(XMM5)),
		i(SQRTSD, X(XMM1), X(XMM1)),
		i(ADDSS, X(XMM0), X(XMM1)), i(MULSS, X(XMM2), MemBD(4, RSI, 4)),
		i(ADDPD, X(XMM0), X(XMM1)),
		i(ADDPD, X(XMM0), MemBD(16, RSI, 16)),
		i(SUBPD, X(XMM2), X(XMM3)), i(MULPD, X(XMM4), MemBD(16, RDI, 0)),
		i(DIVPD, X(XMM0), X(XMM1)),
		i(ADDPS, X(XMM0), X(XMM1)), i(MULPS, X(XMM1), MemBD(16, RSI, 0)),
		i(XORPS, X(XMM0), X(XMM0)), i(XORPD, X(XMM1), X(XMM1)),
		i(ANDPS, X(XMM0), X(XMM3)), i(ANDPD, X(XMM2), X(XMM3)),
		i(ORPS, X(XMM0), X(XMM1)), i(ORPD, X(XMM5), X(XMM6)),
		i(UNPCKLPD, X(XMM0), X(XMM1)), i(UNPCKHPD, X(XMM2), X(XMM3)),
		i(UNPCKLPS, X(XMM0), X(XMM2)),
		i(PXOR, X(XMM1), X(XMM1)), i(POR, X(XMM0), X(XMM2)), i(PAND, X(XMM3), X(XMM4)),
		i(PADDD, X(XMM0), X(XMM1)), i(PADDQ, X(XMM2), MemBD(16, RSI, 0)),
		i(PSUBD, X(XMM5), X(XMM6)), i(PSUBQ, X(XMM7), X(XMM8)),
		i(PUNPCKLQDQ, X(XMM0), X(XMM1)),
		i(SHUFPD, X(XMM0), X(XMM1), Imm(1, 1)),
		i(SHUFPS, X(XMM2), X(XMM3), Imm(0x1B, 1)),
		i(PSHUFD, X(XMM0), X(XMM1), Imm(0x4E, 1)),
		// Conversions / compares.
		i(CVTSI2SD, X(XMM0), R64(RAX)),
		i(CVTSI2SD, X(XMM1), R32(RDX)),
		i(CVTSI2SS, X(XMM2), R32(RCX)),
		i(CVTTSD2SI, R64(RAX), X(XMM0)),
		i(CVTTSD2SI, R32(RDX), X(XMM3)),
		i(CVTSD2SS, X(XMM0), X(XMM1)),
		i(CVTSS2SD, X(XMM1), MemBD(4, RSI, 0)),
		i(COMISD, X(XMM0), X(XMM1)),
		i(UCOMISD, X(XMM0), MemBD(8, RDI, 8)),
		i(COMISS, X(XMM2), X(XMM3)),
		i(UCOMISS, X(XMM4), X(XMM5)),
		i(MOVMSKPD, R32(RAX), X(XMM0)),
		// Byte string operations.
		i(MOVSB),
		i(STOSB),
		i(REPMOVSB),
		i(REPSTOSB),
		// Indirect control flow (decode-only targets).
		i(JMPIndirect, R64(RAX)),
		i(CALLIndirect, MemBD(8, RBX, 0)),
	}
}

func (in Inst) withCond(c Cond) Inst {
	in.Cond = c
	return in
}

// TestEncodeDecodeRoundTrip encodes every corpus instruction, decodes the
// bytes, re-encodes the decoded form, and requires identical machine code.
func TestEncodeDecodeRoundTrip(t *testing.T) {
	const base = 0x401000
	for _, in := range corpus() {
		enc, err := EncodeInst(in, base)
		if err != nil {
			t.Errorf("encode %v: %v", in, err)
			continue
		}
		dec, err := Decode(enc, base)
		if err != nil {
			t.Errorf("decode %v (% x): %v", in, enc, err)
			continue
		}
		if dec.Len != len(enc) {
			t.Errorf("%v: decoded length %d, encoded %d bytes", in, dec.Len, len(enc))
		}
		re, err := EncodeInst(dec, base)
		if err != nil {
			t.Errorf("re-encode %v -> %v: %v", in, dec, err)
			continue
		}
		if string(re) != string(enc) {
			t.Errorf("%v: round trip mismatch\n  enc  % x (%v)\n  re   % x (%v)", in, enc, in, re, dec)
		}
	}
}

// TestBranchRoundTrip checks relative branch target resolution.
func TestBranchRoundTrip(t *testing.T) {
	const base = 0x400000
	cases := []Inst{
		{Op: JMP, Dst: Imm(0x400100, 8)},
		{Op: CALL, Dst: Imm(0x3FFF00, 8)},
		{Op: JCC, Cond: CondLE, Dst: Imm(0x400050, 8)},
		{Op: JCC, Cond: CondNE, Dst: Imm(0x400000, 8)},
	}
	for _, in := range cases {
		enc, err := EncodeInst(in, base)
		if err != nil {
			t.Fatalf("encode %v: %v", in, err)
		}
		dec, err := Decode(enc, base)
		if err != nil {
			t.Fatalf("decode %v: %v", in, err)
		}
		if got, want := uint64(dec.Dst.Imm), uint64(in.Dst.Imm); got != want {
			t.Errorf("%v: target %#x, want %#x", in, got, want)
		}
		if dec.Op != in.Op || dec.Cond != in.Cond {
			t.Errorf("%v: decoded as %v", in, dec)
		}
	}
}

// TestDecodeRel8 checks that short branches (which GCC emits and the encoder
// does not) decode correctly.
func TestDecodeRel8(t *testing.T) {
	// jmp +5 from 0x1000: EB 03 -> target = 0x1000+2+3.
	dec, err := Decode([]byte{0xEB, 0x03}, 0x1000)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Op != JMP || uint64(dec.Dst.Imm) != 0x1005 {
		t.Errorf("got %v, want jmp 0x1005", dec)
	}
	// jl -2 from 0x2000: 7C FE -> target = 0x2000.
	dec, err = Decode([]byte{0x7C, 0xFE}, 0x2000)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Op != JCC || dec.Cond != CondL || uint64(dec.Dst.Imm) != 0x2000 {
		t.Errorf("got %v, want jl 0x2000", dec)
	}
}

func TestDecodeErrors(t *testing.T) {
	cases := [][]byte{
		{},           // empty
		{0x66},       // prefix only
		{0x0F, 0xFF}, // unsupported 0F opcode
		{0xE9, 0x01}, // truncated rel32
		{0x8B},       // missing modrm
	}
	for _, c := range cases {
		if _, err := Decode(c, 0); err == nil {
			t.Errorf("decode % x: expected error", c)
		}
	}
}

func TestRegisterNames(t *testing.T) {
	cases := []struct {
		r    Reg
		size uint8
		want string
	}{
		{RAX, 8, "rax"}, {RAX, 4, "eax"}, {RAX, 2, "ax"}, {RAX, 1, "al"},
		{RSP, 1, "spl"}, {R8, 4, "r8d"}, {R15, 2, "r15w"}, {RDI, 1, "dil"},
		{XMM0, 16, "xmm0"}, {XMM15, 16, "xmm15"}, {AH, 1, "ah"}, {BH, 1, "bh"},
	}
	for _, c := range cases {
		if got := c.r.Name(c.size); got != c.want {
			t.Errorf("Name(%d,%d) = %q, want %q", c.r, c.size, got, c.want)
		}
	}
}

func TestCondNegate(t *testing.T) {
	pairs := map[Cond]Cond{CondE: CondNE, CondL: CondGE, CondB: CondAE, CondS: CondNS}
	for c, want := range pairs {
		if c.Negate() != want {
			t.Errorf("%v.Negate() = %v, want %v", c, c.Negate(), want)
		}
		if c.Negate().Negate() != c {
			t.Errorf("double negate of %v", c)
		}
	}
}

func TestInstString(t *testing.T) {
	cases := []struct {
		in   Inst
		want string
	}{
		{Inst{Op: SUB, Dst: R64(RAX), Src: Imm(1, 8)}, "sub rax, 1"},
		{Inst{Op: MOV, Dst: R32(RAX), Src: MemBD(4, RBP, -0xc)}, "mov eax, dword ptr [rbp - 0xc]"},
		{Inst{Op: ADDSD, Dst: X(XMM0), Src: X(XMM1)}, "addsd xmm0, xmm1"},
		{Inst{Op: MOVSD_X, Dst: X(XMM0), Src: MemBIS(8, RSI, RAX, 8, 0)}, "movsd xmm0, qword ptr [rsi + 8*rax]"},
		{Inst{Op: CMOVCC, Cond: CondL, Dst: R64(RAX), Src: R64(RSI)}, "cmovl rax, rsi"},
		{Inst{Op: RET}, "ret"},
		{Inst{Op: JCC, Cond: CondNE, Dst: Imm(0x400123, 8)}, "jne 0x400123"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}
