package x86

import (
	"math/rand"
	"testing"
)

// TestDecodeFuzzNoPanic feeds random byte windows to the decoder: it must
// either decode or return an error, never panic, and any decoded
// instruction must re-encode (when supported) without panicking either.
func TestDecodeFuzzNoPanic(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	buf := make([]byte, 16)
	for i := 0; i < 200000; i++ {
		for j := range buf {
			buf[j] = byte(r.Intn(256))
		}
		in, err := Decode(buf, 0x1000)
		if err != nil {
			continue
		}
		if in.Len <= 0 || in.Len > 15 {
			t.Fatalf("decoded length %d out of range for % x", in.Len, buf)
		}
		// Re-encoding may fail for forms the encoder does not produce, but
		// must not panic.
		_, _ = EncodeInst(in, 0x1000)
	}
}

// TestDecodeEncodeDecodeStable: decoding a supported encoding twice through
// the encoder must reach a fixed point (decode(encode(decode(x))) ==
// decode(x) semantically, compared via the printed form).
func TestDecodeEncodeDecodeStable(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	buf := make([]byte, 16)
	checked := 0
	for i := 0; i < 300000 && checked < 5000; i++ {
		for j := range buf {
			buf[j] = byte(r.Intn(256))
		}
		in1, err := Decode(buf, 0x1000)
		if err != nil {
			continue
		}
		enc, err := EncodeInst(in1, 0x1000)
		if err != nil {
			continue // unsupported by the encoder: fine
		}
		in2, err := Decode(enc, 0x1000)
		if err != nil {
			t.Fatalf("re-decode failed for %v (% x -> % x): %v", in1, buf[:in1.Len], enc, err)
		}
		if in1.String() != in2.String() {
			t.Fatalf("unstable round trip: %q -> %q (% x -> % x)", in1, in2, buf[:in1.Len], enc)
		}
		checked++
	}
	if checked < 1000 {
		t.Fatalf("only %d instructions checked", checked)
	}
}
