// Package x86 models the subset of the x86-64 instruction set used by the
// DBrew reproduction: a register file, an operand/instruction representation,
// a binary encoder, a decoder, and an Intel-syntax printer.
//
// The subset covers what GCC/Clang emit for scalar and SSE floating-point
// code at -O3 -mno-avx: the integer ALU, address generation, data movement,
// control flow, and the SSE/SSE2 scalar and packed instructions. AVX is
// deliberately absent, matching the paper's evaluation setup.
package x86

import "fmt"

// Reg identifies an architectural register. General purpose registers come
// first (RAX..R15), followed by the sixteen SSE vector registers and the
// instruction pointer. The four legacy high-byte registers (AH..BH) get
// dedicated identifiers because they address bits 8..15 of their parent
// register and therefore behave differently from every other facet.
type Reg uint8

// General purpose registers, in hardware encoding order.
const (
	RAX Reg = iota
	RCX
	RDX
	RBX
	RSP
	RBP
	RSI
	RDI
	R8
	R9
	R10
	R11
	R12
	R13
	R14
	R15
)

// SSE vector registers.
const (
	XMM0 Reg = 16 + iota
	XMM1
	XMM2
	XMM3
	XMM4
	XMM5
	XMM6
	XMM7
	XMM8
	XMM9
	XMM10
	XMM11
	XMM12
	XMM13
	XMM14
	XMM15
)

// Special registers.
const (
	// RIPVal names the instruction pointer for RIP-relative addressing.
	RIPVal Reg = 32
	// AH..BH are the legacy high-byte views of RAX..RBX.
	AH Reg = 33 + iota
	CH
	DH
	BH
	// NoReg marks an absent register operand.
	NoReg Reg = 255
)

// IsGP reports whether r is one of the sixteen general purpose registers.
func (r Reg) IsGP() bool { return r <= R15 }

// IsXMM reports whether r is an SSE vector register.
func (r Reg) IsXMM() bool { return r >= XMM0 && r <= XMM15 }

// IsHighByte reports whether r is one of the legacy high-byte registers.
func (r Reg) IsHighByte() bool { return r >= AH && r <= BH }

// Parent returns the containing 64-bit register for a high-byte register,
// and r itself otherwise.
func (r Reg) Parent() Reg {
	if r.IsHighByte() {
		return Reg(r - AH) // AH->RAX(0), CH->RCX(1), DH->RDX(2), BH->RBX(3)
	}
	return r
}

// enc returns the 4-bit hardware encoding of the register.
func (r Reg) enc() byte {
	switch {
	case r.IsGP():
		return byte(r)
	case r.IsXMM():
		return byte(r - XMM0)
	case r.IsHighByte():
		return byte(r-AH) + 4 // AH=4, CH=5, DH=6, BH=7
	}
	panic(fmt.Sprintf("x86: register %d has no hardware encoding", r))
}

var gpNames64 = [16]string{"rax", "rcx", "rdx", "rbx", "rsp", "rbp", "rsi", "rdi", "r8", "r9", "r10", "r11", "r12", "r13", "r14", "r15"}
var gpNames32 = [16]string{"eax", "ecx", "edx", "ebx", "esp", "ebp", "esi", "edi", "r8d", "r9d", "r10d", "r11d", "r12d", "r13d", "r14d", "r15d"}
var gpNames16 = [16]string{"ax", "cx", "dx", "bx", "sp", "bp", "si", "di", "r8w", "r9w", "r10w", "r11w", "r12w", "r13w", "r14w", "r15w"}
var gpNames8 = [16]string{"al", "cl", "dl", "bl", "spl", "bpl", "sil", "dil", "r8b", "r9b", "r10b", "r11b", "r12b", "r13b", "r14b", "r15b"}
var highNames = [4]string{"ah", "ch", "dh", "bh"}

// Name returns the conventional assembly name of the register when accessed
// with the given operand size in bytes (1, 2, 4, 8, or 16 for XMM).
func (r Reg) Name(size uint8) string {
	switch {
	case r.IsGP():
		switch size {
		case 1:
			return gpNames8[r]
		case 2:
			return gpNames16[r]
		case 4:
			return gpNames32[r]
		default:
			return gpNames64[r]
		}
	case r.IsXMM():
		return fmt.Sprintf("xmm%d", r-XMM0)
	case r.IsHighByte():
		return highNames[r-AH]
	case r == RIPVal:
		return "rip"
	}
	return fmt.Sprintf("reg%d", r)
}

// String returns the full-width name of the register.
func (r Reg) String() string {
	if r.IsGP() {
		return gpNames64[r]
	}
	return r.Name(16)
}

// SegReg identifies a segment override. Only FS and GS are meaningful in
// 64-bit mode; they map to the LLVM address spaces 257 and 256 during
// lifting, exactly as described in the paper.
type SegReg uint8

// Segment override values.
const (
	SegNone SegReg = iota
	SegFS
	SegGS
)

// String returns the segment prefix name.
func (s SegReg) String() string {
	switch s {
	case SegFS:
		return "fs"
	case SegGS:
		return "gs"
	}
	return ""
}

// Cond is an x86 condition code in hardware encoding order, used by Jcc,
// SETcc and CMOVcc.
type Cond uint8

// Condition codes.
const (
	CondO  Cond = iota // overflow
	CondNO             // not overflow
	CondB              // below (carry)
	CondAE             // above or equal (not carry)
	CondE              // equal (zero)
	CondNE             // not equal
	CondBE             // below or equal
	CondA              // above
	CondS              // sign
	CondNS             // not sign
	CondP              // parity
	CondNP             // not parity
	CondL              // less (signed)
	CondGE             // greater or equal (signed)
	CondLE             // less or equal (signed)
	CondG              // greater (signed)
)

var condNames = [16]string{"o", "no", "b", "ae", "e", "ne", "be", "a", "s", "ns", "p", "np", "l", "ge", "le", "g"}

// String returns the condition suffix (e, ne, l, ...).
func (c Cond) String() string { return condNames[c&15] }

// Negate returns the inverse condition.
func (c Cond) Negate() Cond { return c ^ 1 }
