package x86

import (
	"fmt"
	"strings"
)

// Op names an instruction mnemonic. Condition-dependent instructions (Jcc,
// SETcc, CMOVcc) use a single Op plus the Inst.Cond field.
type Op uint16

// Integer and control-flow operations.
const (
	INVALID Op = iota
	MOV
	MOVZX
	MOVSX
	MOVSXD
	LEA
	ADD
	ADC
	SUB
	SBB
	CMP
	AND
	OR
	XOR
	TEST
	NOT
	NEG
	INC
	DEC
	IMUL  // two-operand form
	IMUL3 // three-operand form with immediate
	MUL
	IDIV
	DIV
	CQO
	CDQ
	CDQE
	SHL
	SHR
	SAR
	ROL
	ROR
	PUSH
	POP
	CALL
	RET
	JMP
	JMPIndirect
	CALLIndirect
	JCC
	CMOVCC
	SETCC
	NOP
	STC
	CLC
	UD2
	XCHG
	ENDBR64
	POPCNT
	MOVSB    // byte string move [rdi] <- [rsi], rsi/rdi advance
	STOSB    // byte string store [rdi] <- al, rdi advances
	REPMOVSB // rep movsb: rcx-counted block copy
	REPSTOSB // rep stosb: rcx-counted block fill

	// SSE data movement.
	MOVSD_X // scalar double move (F2 0F 10/11)
	MOVSS_X
	MOVAPS
	MOVUPS
	MOVAPD
	MOVUPD
	MOVDQA
	MOVDQU
	MOVQ // 66/F3 0F D6 / 7E family
	MOVD // GP <-> XMM, 32-bit
	MOVQGP
	MOVHPD
	MOVLPD

	// SSE scalar floating point.
	ADDSD
	SUBSD
	MULSD
	DIVSD
	MINSD
	MAXSD
	SQRTSD
	ADDSS
	SUBSS
	MULSS
	DIVSS

	// SSE packed floating point.
	ADDPD
	SUBPD
	MULPD
	DIVPD
	ADDPS
	SUBPS
	MULPS
	DIVPS
	XORPS
	XORPD
	ANDPS
	ANDPD
	ORPS
	ORPD
	UNPCKLPD
	UNPCKHPD
	UNPCKLPS
	SHUFPD
	SHUFPS
	PSHUFD

	// SSE integer.
	PXOR
	POR
	PAND
	PADDD
	PADDQ
	PSUBD
	PSUBQ
	PUNPCKLQDQ

	// Conversions and comparisons.
	CVTSI2SD
	CVTSI2SS
	CVTTSD2SI
	CVTSD2SS
	CVTSS2SD
	COMISD
	UCOMISD
	COMISS
	UCOMISS
	MOVMSKPD

	opCount
)

var opNames = map[Op]string{
	MOV: "mov", MOVZX: "movzx", MOVSX: "movsx", MOVSXD: "movsxd", LEA: "lea",
	ADD: "add", ADC: "adc", SUB: "sub", SBB: "sbb", CMP: "cmp",
	AND: "and", OR: "or", XOR: "xor", TEST: "test",
	NOT: "not", NEG: "neg", INC: "inc", DEC: "dec",
	IMUL: "imul", IMUL3: "imul", MUL: "mul", IDIV: "idiv", DIV: "div",
	CQO: "cqo", CDQ: "cdq", CDQE: "cdqe",
	SHL: "shl", SHR: "shr", SAR: "sar", ROL: "rol", ROR: "ror",
	PUSH: "push", POP: "pop", CALL: "call", RET: "ret", JMP: "jmp",
	JMPIndirect: "jmp", CALLIndirect: "call",
	NOP: "nop", STC: "stc", CLC: "clc",
	UD2: "ud2", XCHG: "xchg", ENDBR64: "endbr64", POPCNT: "popcnt",
	MOVSB: "movsb", STOSB: "stosb", REPMOVSB: "rep movsb", REPSTOSB: "rep stosb",
	MOVSD_X: "movsd", MOVSS_X: "movss", MOVAPS: "movaps", MOVUPS: "movups",
	MOVAPD: "movapd", MOVUPD: "movupd", MOVDQA: "movdqa", MOVDQU: "movdqu",
	MOVQ: "movq", MOVD: "movd", MOVQGP: "movq", MOVHPD: "movhpd", MOVLPD: "movlpd",
	ADDSD: "addsd", SUBSD: "subsd", MULSD: "mulsd", DIVSD: "divsd",
	MINSD: "minsd", MAXSD: "maxsd", SQRTSD: "sqrtsd",
	ADDSS: "addss", SUBSS: "subss", MULSS: "mulss", DIVSS: "divss",
	ADDPD: "addpd", SUBPD: "subpd", MULPD: "mulpd", DIVPD: "divpd",
	ADDPS: "addps", SUBPS: "subps", MULPS: "mulps", DIVPS: "divps",
	XORPS: "xorps", XORPD: "xorpd", ANDPS: "andps", ANDPD: "andpd",
	ORPS: "orps", ORPD: "orpd",
	UNPCKLPD: "unpcklpd", UNPCKHPD: "unpckhpd", UNPCKLPS: "unpcklps",
	SHUFPD: "shufpd", SHUFPS: "shufps", PSHUFD: "pshufd",
	PXOR: "pxor", POR: "por", PAND: "pand",
	PADDD: "paddd", PADDQ: "paddq", PSUBD: "psubd", PSUBQ: "psubq",
	PUNPCKLQDQ: "punpcklqdq",
	CVTSI2SD:   "cvtsi2sd", CVTSI2SS: "cvtsi2ss", CVTTSD2SI: "cvttsd2si",
	CVTSD2SS: "cvtsd2ss", CVTSS2SD: "cvtss2sd",
	COMISD: "comisd", UCOMISD: "ucomisd", COMISS: "comiss", UCOMISS: "ucomiss",
	MOVMSKPD: "movmskpd",
}

// String returns the base mnemonic (condition-generic for jcc/cmovcc/setcc).
func (o Op) String() string {
	if n, ok := opNames[o]; ok {
		return n
	}
	switch o {
	case JCC:
		return "jcc"
	case CMOVCC:
		return "cmovcc"
	case SETCC:
		return "setcc"
	}
	return fmt.Sprintf("op%d", uint16(o))
}

// OperandKind distinguishes the operand variants.
type OperandKind uint8

// Operand kinds.
const (
	KNone OperandKind = iota
	KReg
	KImm
	KMem
)

// MemArg is an x86 memory operand: [base + index*scale + disp], optionally
// with a segment override or RIP-relative base.
type MemArg struct {
	Base   Reg
	Index  Reg
	Scale  uint8 // 1, 2, 4, or 8
	Disp   int32
	Seg    SegReg
	RIPRel bool
}

// Operand is a single instruction operand. Size is the access width in
// bytes: 1, 2, 4, 8, or 16 for a full vector register or memory access.
type Operand struct {
	Kind OperandKind
	Reg  Reg
	Size uint8
	Imm  int64
	Mem  MemArg
}

// RegOp constructs a register operand of the given width.
func RegOp(r Reg, size uint8) Operand { return Operand{Kind: KReg, Reg: r, Size: size} }

// R64 constructs a 64-bit GP register operand.
func R64(r Reg) Operand { return RegOp(r, 8) }

// R32 constructs a 32-bit GP register operand.
func R32(r Reg) Operand { return RegOp(r, 4) }

// R16 constructs a 16-bit GP register operand.
func R16(r Reg) Operand { return RegOp(r, 2) }

// R8 constructs an 8-bit GP register operand.
func R8L(r Reg) Operand { return RegOp(r, 1) }

// X constructs a full-width XMM register operand.
func X(r Reg) Operand { return RegOp(r, 16) }

// Imm constructs an immediate operand. Size is the width of the destination
// the immediate applies to.
func Imm(v int64, size uint8) Operand { return Operand{Kind: KImm, Imm: v, Size: size} }

// Mem constructs a memory operand.
func Mem(size uint8, m MemArg) Operand { return Operand{Kind: KMem, Size: size, Mem: m} }

// MemBD constructs a [base+disp] memory operand.
func MemBD(size uint8, base Reg, disp int32) Operand {
	return Mem(size, MemArg{Base: base, Index: NoReg, Scale: 1, Disp: disp})
}

// MemBIS constructs a [base + index*scale + disp] memory operand.
func MemBIS(size uint8, base, index Reg, scale uint8, disp int32) Operand {
	return Mem(size, MemArg{Base: base, Index: index, Scale: scale, Disp: disp})
}

// MemAbs constructs an absolute-address memory operand (encoded via SIB with
// no base; only reachable for 32-bit addresses).
func MemAbs(size uint8, addr int32) Operand {
	return Mem(size, MemArg{Base: NoReg, Index: NoReg, Scale: 1, Disp: addr})
}

// MemRIP constructs a RIP-relative memory operand; Disp is relative to the
// end of the instruction.
func MemRIP(size uint8, disp int32) Operand {
	return Mem(size, MemArg{Base: RIPVal, Index: NoReg, Scale: 1, Disp: disp, RIPRel: true})
}

// IsReg reports whether the operand is a register operand for r.
func (o Operand) IsReg(r Reg) bool { return o.Kind == KReg && o.Reg == r }

func (o Operand) format() string {
	switch o.Kind {
	case KReg:
		return o.Reg.Name(o.Size)
	case KImm:
		if o.Imm < 0 || o.Imm > 9 {
			return fmt.Sprintf("%#x", o.Imm)
		}
		return fmt.Sprintf("%d", o.Imm)
	case KMem:
		var b strings.Builder
		switch o.Size {
		case 1:
			b.WriteString("byte ptr ")
		case 2:
			b.WriteString("word ptr ")
		case 4:
			b.WriteString("dword ptr ")
		case 8:
			b.WriteString("qword ptr ")
		case 16:
			b.WriteString("xmmword ptr ")
		}
		if o.Mem.Seg != SegNone {
			b.WriteString(o.Mem.Seg.String())
			b.WriteString(":")
		}
		b.WriteString("[")
		first := true
		if o.Mem.RIPRel {
			b.WriteString("rip")
			first = false
		} else if o.Mem.Base != NoReg {
			b.WriteString(o.Mem.Base.Name(8))
			first = false
		}
		if o.Mem.Index != NoReg {
			if !first {
				b.WriteString(" + ")
			}
			fmt.Fprintf(&b, "%d*%s", o.Mem.Scale, o.Mem.Index.Name(8))
			first = false
		}
		if o.Mem.Disp != 0 || first {
			if first {
				fmt.Fprintf(&b, "%#x", uint32(o.Mem.Disp))
			} else if o.Mem.Disp > 0 {
				fmt.Fprintf(&b, " + %#x", o.Mem.Disp)
			} else {
				fmt.Fprintf(&b, " - %#x", -int64(o.Mem.Disp))
			}
		}
		b.WriteString("]")
		return b.String()
	}
	return ""
}

// Inst is one decoded or to-be-encoded instruction. For relative branches
// (JMP, JCC, CALL) the target is stored in Imm as an absolute address once
// decoded, or as a label index before assembly. Cond is meaningful only for
// JCC, CMOVCC and SETCC.
type Inst struct {
	Op   Op
	Cond Cond
	Dst  Operand
	Src  Operand
	Src2 Operand // third operand: IMUL3 immediate, SHUFPD selector

	// Addr and Len are filled by the decoder: the address the instruction
	// was decoded from and its encoded length in bytes.
	Addr uint64
	Len  int
}

// NArgs reports the number of present operands.
func (in Inst) NArgs() int {
	switch {
	case in.Src2.Kind != KNone:
		return 3
	case in.Src.Kind != KNone:
		return 2
	case in.Dst.Kind != KNone:
		return 1
	}
	return 0
}

// Mnemonic returns the full mnemonic including the condition suffix.
func (in Inst) Mnemonic() string {
	switch in.Op {
	case JCC:
		return "j" + in.Cond.String()
	case CMOVCC:
		return "cmov" + in.Cond.String()
	case SETCC:
		return "set" + in.Cond.String()
	}
	return in.Op.String()
}

// String renders the instruction in Intel syntax.
func (in Inst) String() string {
	m := in.Mnemonic()
	switch in.Op {
	case JMP, JCC, CALL:
		return fmt.Sprintf("%s %#x", m, uint64(in.Dst.Imm))
	}
	parts := make([]string, 0, 3)
	for _, o := range []Operand{in.Dst, in.Src, in.Src2} {
		if o.Kind != KNone {
			parts = append(parts, o.format())
		}
	}
	if len(parts) == 0 {
		return m
	}
	return m + " " + strings.Join(parts, ", ")
}

// IsBranch reports whether the instruction modifies control flow.
func (in Inst) IsBranch() bool {
	switch in.Op {
	case JMP, JMPIndirect, JCC, CALL, CALLIndirect, RET, UD2:
		return true
	}
	return false
}

// BranchTarget returns the absolute target address of a direct branch and
// whether the instruction has one.
func (in Inst) BranchTarget() (uint64, bool) {
	switch in.Op {
	case JMP, JCC, CALL:
		return uint64(in.Dst.Imm), true
	}
	return 0, false
}
