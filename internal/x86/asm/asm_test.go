package asm

import (
	"math/rand"
	"testing"

	"repro/internal/x86"
)

func TestForwardAndBackwardLabels(t *testing.T) {
	b := NewBuilder()
	top := b.NewLabel()
	end := b.NewLabel()
	b.Bind(top)
	b.I(x86.ADD, x86.R64(x86.RAX), x86.Imm(1, 8))
	b.Jcc(x86.CondE, end) // forward
	b.Jmp(top)            // backward
	b.Bind(end)
	b.Ret()
	code, labels, err := b.Assemble(0x1000)
	if err != nil {
		t.Fatal(err)
	}
	if labels[top] != 0x1000 {
		t.Errorf("top label at %#x", labels[top])
	}
	// Decode and verify the branch targets.
	var insts []x86.Inst
	addr := uint64(0x1000)
	for addr < 0x1000+uint64(len(code)) {
		in, err := x86.Decode(code[addr-0x1000:], addr)
		if err != nil {
			t.Fatal(err)
		}
		insts = append(insts, in)
		addr += uint64(in.Len)
	}
	if len(insts) != 4 {
		t.Fatalf("expected 4 instructions, got %d", len(insts))
	}
	if tgt, _ := insts[1].BranchTarget(); tgt != labels[end] {
		t.Errorf("jcc target %#x, want %#x", tgt, labels[end])
	}
	if tgt, _ := insts[2].BranchTarget(); tgt != labels[top] {
		t.Errorf("jmp target %#x, want %#x", tgt, labels[top])
	}
}

func TestUnboundLabelFails(t *testing.T) {
	b := NewBuilder()
	l := b.NewLabel()
	b.Jmp(l)
	if _, _, err := b.Assemble(0x1000); err == nil {
		t.Fatal("assembling with an unbound label must fail")
	}
}

func TestCallLabel(t *testing.T) {
	b := NewBuilder()
	fn := b.NewLabel()
	b.CallLabel(fn)
	b.Ret()
	b.Bind(fn)
	b.I(x86.MOV, x86.R64(x86.RAX), x86.Imm(7, 8))
	b.Ret()
	code, labels, err := b.Assemble(0x2000)
	if err != nil {
		t.Fatal(err)
	}
	in, err := x86.Decode(code, 0x2000)
	if err != nil {
		t.Fatal(err)
	}
	if in.Op != x86.CALL {
		t.Fatalf("first instruction %v", in)
	}
	if tgt, _ := in.BranchTarget(); tgt != labels[fn] {
		t.Errorf("call target %#x, want %#x", tgt, labels[fn])
	}
}

func TestAssembleTwiceIsStable(t *testing.T) {
	b := NewBuilder()
	l := b.NewLabel()
	b.Bind(l)
	b.I(x86.ADD, x86.R64(x86.RAX), x86.R64(x86.RBX))
	b.Jmp(l)
	c1, _, err := b.Assemble(0x4000)
	if err != nil {
		t.Fatal(err)
	}
	c2, _, err := b.Assemble(0x4000)
	if err != nil {
		t.Fatal(err)
	}
	if string(c1) != string(c2) {
		t.Error("repeated assembly differs")
	}
	c3, _, err := b.Assemble(0x8000)
	if err != nil {
		t.Fatal(err)
	}
	if len(c3) != len(c1) {
		t.Error("assembly length must be base-independent")
	}
}

// TestAssembleAtHighBase: label branches must assemble at bases beyond the
// rel32 range from address 0 (regression: pass-1 used placeholder target 0,
// which made the range check fail for any base above 2 GiB).
func TestAssembleAtHighBase(t *testing.T) {
	b := NewBuilder()
	top := b.NewLabel()
	b.Bind(top)
	b.I(x86.SUB, x86.R64(x86.RDI), x86.Imm(1, 8))
	b.Jcc(x86.CondNE, top)
	b.Ret()
	for _, base := range []uint64{0x1000, 0x9000_0000, 0x7FFF_FFF0_0000} {
		code, labels, err := b.Assemble(base)
		if err != nil {
			t.Fatalf("base %#x: %v", base, err)
		}
		if labels[top] != base {
			t.Errorf("base %#x: label at %#x", base, labels[top])
		}
		// The encoded jne must target the label.
		in, err := x86.Decode(code[4:], base+4)
		if err != nil {
			t.Fatalf("base %#x: decode: %v", base, err)
		}
		if tgt, ok := in.BranchTarget(); !ok || tgt != base {
			t.Errorf("base %#x: branch to %#x, want %#x", base, tgt, base)
		}
	}
}

// TestAssembleBaseIndependentLengths: a random labeled program must have
// identical instruction layout at different bases (pass-1 sizing must not
// depend on the base address).
func TestAssembleBaseIndependentLengths(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		b := NewBuilder()
		var labels []Label
		for i := 0; i < 5; i++ {
			labels = append(labels, b.NewLabel())
		}
		n := r.Intn(30) + 5
		for i := 0; i < n; i++ {
			switch r.Intn(5) {
			case 0:
				b.I(x86.ADD, x86.R64(x86.RAX), x86.Imm(int64(r.Intn(1000)), 8))
			case 1:
				b.I(x86.MOV, x86.R64(x86.RCX), x86.R64(x86.RDX))
			case 2:
				b.Jmp(labels[r.Intn(len(labels))])
			case 3:
				b.Jcc(x86.CondNE, labels[r.Intn(len(labels))])
			case 4:
				b.Bind(labels[r.Intn(len(labels))])
			}
		}
		for _, l := range labels {
			b.Bind(l) // ensure all labels bound (duplicates are rebinding)
		}
		b.Ret()

		c1, l1, err1 := b.Assemble(0x1000)
		c2, l2, err2 := b.Assemble(0x7000_0000_0000)
		if err1 != nil || err2 != nil {
			t.Fatalf("trial %d: %v / %v", trial, err1, err2)
		}
		if len(c1) != len(c2) {
			t.Fatalf("trial %d: lengths differ: %d vs %d", trial, len(c1), len(c2))
		}
		for lbl, a1 := range l1 {
			if l2[lbl]-0x7000_0000_0000 != a1-0x1000 {
				t.Errorf("trial %d: label %d offset differs", trial, lbl)
			}
		}
	}
}
