// Package asm provides a small label-based assembler on top of the x86
// encoder. It is used to author the "compiled" input corpus, by the DBrew
// encoder, and by the JIT backend.
//
// Labels are resolved with a two-pass assembly: because the encoder always
// emits rel32 branches, instruction lengths are independent of final label
// values, so the second pass simply patches target addresses.
package asm

import (
	"fmt"

	"repro/internal/x86"
)

// Label is a forward-referenceable position in the instruction stream.
type Label int

// item is either an instruction or a label definition.
type item struct {
	inst    x86.Inst
	label   Label
	isLabel bool
	// target, when >= 0, marks the instruction as a branch to a label that
	// must be patched during assembly.
	target Label
}

// Builder accumulates instructions and labels and assembles them to machine
// code at a chosen base address.
type Builder struct {
	items  []item
	nlabel int
}

// NewBuilder returns an empty Builder.
func NewBuilder() *Builder { return &Builder{} }

// NewLabel allocates a fresh, not yet bound label.
func (b *Builder) NewLabel() Label {
	b.nlabel++
	return Label(b.nlabel - 1)
}

// Bind places lbl at the current position.
func (b *Builder) Bind(lbl Label) {
	b.items = append(b.items, item{label: lbl, isLabel: true, target: -1})
}

// Emit appends a non-branching instruction.
func (b *Builder) Emit(in x86.Inst) {
	b.items = append(b.items, item{inst: in, target: -1})
}

// I is shorthand for Emit with operands.
func (b *Builder) I(op x86.Op, args ...x86.Operand) {
	in := x86.Inst{Op: op}
	if len(args) > 0 {
		in.Dst = args[0]
	}
	if len(args) > 1 {
		in.Src = args[1]
	}
	if len(args) > 2 {
		in.Src2 = args[2]
	}
	b.Emit(in)
}

// Jmp emits an unconditional jump to lbl.
func (b *Builder) Jmp(lbl Label) {
	b.items = append(b.items, item{inst: x86.Inst{Op: x86.JMP, Dst: x86.Imm(0, 8)}, target: lbl})
}

// Jcc emits a conditional jump to lbl.
func (b *Builder) Jcc(c x86.Cond, lbl Label) {
	b.items = append(b.items, item{inst: x86.Inst{Op: x86.JCC, Cond: c, Dst: x86.Imm(0, 8)}, target: lbl})
}

// Call emits a call to an absolute address.
func (b *Builder) Call(addr uint64) {
	b.I(x86.CALL, x86.Imm(int64(addr), 8))
}

// CallLabel emits a call to a label inside this builder.
func (b *Builder) CallLabel(lbl Label) {
	b.items = append(b.items, item{inst: x86.Inst{Op: x86.CALL, Dst: x86.Imm(0, 8)}, target: lbl})
}

// Ret emits a return.
func (b *Builder) Ret() { b.I(x86.RET) }

// MovLabel emits "mov r64, imm" whose immediate is the absolute address of
// lbl, resolved at Assemble time. It is how subjects build jump tables and
// computed-goto targets at runtime without knowing layout in advance.
func (b *Builder) MovLabel(r x86.Reg, lbl Label) {
	b.items = append(b.items, item{inst: x86.Inst{Op: x86.MOV, Dst: x86.R64(r), Src: x86.Imm(0, 8)}, target: lbl})
}

// Assemble encodes the instruction stream at the given base address and
// returns the machine code plus the address of every bound label.
func (b *Builder) Assemble(base uint64) ([]byte, map[Label]uint64, error) {
	// Pass 1: compute instruction offsets (lengths are label-independent
	// because branches are fixed-size rel32 forms).
	offsets := make([]uint64, len(b.items))
	labelAddr := make(map[Label]uint64)
	pc := base
	for i, it := range b.items {
		offsets[i] = pc
		if it.isLabel {
			labelAddr[it.label] = pc
			continue
		}
		enc, err := x86.EncodeInst(patchedForSizing(it.inst, it.target >= 0, pc), pc)
		if err != nil {
			return nil, nil, fmt.Errorf("asm: pass1 item %d: %w", i, err)
		}
		pc += uint64(len(enc))
	}
	// Pass 2: emit with resolved targets.
	e := x86.NewEncoder(base)
	for i, it := range b.items {
		if it.isLabel {
			continue
		}
		in := it.inst
		if it.target >= 0 {
			addr, ok := labelAddr[it.target]
			if !ok {
				return nil, nil, fmt.Errorf("asm: unbound label %d", it.target)
			}
			if in.Op == x86.MOV {
				in.Src = x86.Imm(int64(addr), 8)
			} else {
				in.Dst = x86.Imm(int64(addr), 8)
			}
		}
		if err := e.Encode(in); err != nil {
			return nil, nil, fmt.Errorf("asm: pass2 item %d: %w", i, err)
		}
	}
	// Label addresses were computed from pass-1 lengths; a pass-2 encoding
	// that drifted (e.g. a MovLabel immediate crossing the imm32 boundary)
	// would silently corrupt every later target.
	if uint64(len(e.Buf)) != pc-base {
		return nil, nil, fmt.Errorf("asm: pass2 emitted %d bytes, pass1 sized %d (encoding length drifted)",
			len(e.Buf), pc-base)
	}
	return e.Buf, labelAddr, nil
}

// patchedForSizing replaces not-yet-resolved branch targets with the
// instruction's own neighbourhood so pass-1 encoding cannot fail on rel32
// range checks when assembling at a high base address. Lengths stay correct
// because branches are always encoded in their fixed-size rel32 forms.
func patchedForSizing(in x86.Inst, hasLabel bool, pc uint64) x86.Inst {
	if !hasLabel {
		return in
	}
	switch in.Op {
	case x86.JMP, x86.JCC, x86.CALL:
		in.Dst = x86.Imm(int64(pc), 8)
	case x86.MOV:
		// MovLabel: size with a same-neighbourhood immediate so the mov
		// picks the same encoding length in both passes.
		in.Src = x86.Imm(int64(pc), 8)
	}
	return in
}
