package x86

import (
	"encoding/binary"
	"fmt"
)

// DecodeError reports an undecodable byte sequence. DBrew treats it as a
// recoverable rewriting failure (the original function is returned).
type DecodeError struct {
	Addr uint64
	Byte byte
	Msg  string
}

// Error formats the decode failure with address and offending byte.
func (e *DecodeError) Error() string {
	return fmt.Sprintf("x86: cannot decode at %#x (byte %#02x): %s", e.Addr, e.Byte, e.Msg)
}

// decodeState carries the prefix information collected before the opcode.
type decodeState struct {
	code   []byte
	pos    int
	addr   uint64
	rex    byte
	hasRex bool
	opSize bool // 0x66 seen
	repF2  bool
	repF3  bool
	seg    SegReg
}

func (d *decodeState) fail(msg string) error {
	b := byte(0)
	if d.pos < len(d.code) {
		b = d.code[d.pos]
	}
	return &DecodeError{Addr: d.addr + uint64(d.pos), Byte: b, Msg: msg}
}

func (d *decodeState) byte() (byte, error) {
	if d.pos >= len(d.code) {
		return 0, d.fail("truncated instruction")
	}
	b := d.code[d.pos]
	d.pos++
	return b, nil
}

func (d *decodeState) i8() (int8, error) {
	b, err := d.byte()
	return int8(b), err
}

func (d *decodeState) i32() (int32, error) {
	if d.pos+4 > len(d.code) {
		return 0, d.fail("truncated imm32")
	}
	v := int32(binary.LittleEndian.Uint32(d.code[d.pos:]))
	d.pos += 4
	return v, nil
}

func (d *decodeState) i64() (int64, error) {
	if d.pos+8 > len(d.code) {
		return 0, d.fail("truncated imm64")
	}
	v := int64(binary.LittleEndian.Uint64(d.code[d.pos:]))
	d.pos += 8
	return v, nil
}

func (d *decodeState) imm(size uint8) (int64, error) {
	switch size {
	case 1:
		v, err := d.i8()
		return int64(v), err
	case 2:
		if d.pos+2 > len(d.code) {
			return 0, d.fail("truncated imm16")
		}
		v := int16(binary.LittleEndian.Uint16(d.code[d.pos:]))
		d.pos += 2
		return int64(v), nil
	case 4, 8:
		v, err := d.i32()
		return int64(v), err
	}
	return 0, d.fail("bad immediate size")
}

// opndSize returns the integer operand size implied by prefixes.
func (d *decodeState) opndSize() uint8 {
	switch {
	case d.hasRex && d.rex&8 != 0:
		return 8
	case d.opSize:
		return 2
	default:
		return 4
	}
}

// gpreg maps a 3-bit register field plus the relevant REX extension bit to a
// register operand of the given size, handling the high-byte aliases.
func (d *decodeState) gpreg(field byte, ext bool, size uint8) Operand {
	n := Reg(field)
	if ext {
		n += 8
	}
	if size == 1 && !d.hasRex && field >= 4 && !ext {
		return RegOp(AH+Reg(field-4), 1)
	}
	return RegOp(n, size)
}

func xmmreg(field byte, ext bool) Operand {
	n := XMM0 + Reg(field)
	if ext {
		n += 8
	}
	return RegOp(n, 16)
}

// modRM decodes a ModRM byte plus SIB/displacement. size is the access width
// for the r/m operand; xmm selects XMM interpretation of a register r/m.
func (d *decodeState) modRM(size uint8, xmm bool) (reg byte, rm Operand, err error) {
	mrm, err := d.byte()
	if err != nil {
		return 0, Operand{}, err
	}
	mod := mrm >> 6
	reg = (mrm >> 3) & 7
	rmf := mrm & 7

	if mod == 3 {
		if xmm {
			rm = xmmreg(rmf, d.rex&1 != 0)
			rm.Size = size
		} else {
			rm = d.gpreg(rmf, d.rex&1 != 0, size)
		}
		return reg, rm, nil
	}

	mem := MemArg{Base: NoReg, Index: NoReg, Scale: 1, Seg: d.seg}
	if rmf == 4 { // SIB
		sib, err := d.byte()
		if err != nil {
			return 0, Operand{}, err
		}
		scale := byte(1) << (sib >> 6)
		idx := (sib >> 3) & 7
		base := sib & 7
		if !(idx == 4 && d.rex&2 == 0) {
			r := Reg(idx)
			if d.rex&2 != 0 {
				r += 8
			}
			mem.Index = r
			mem.Scale = scale
		}
		if base == 5 && mod == 0 {
			disp, err := d.i32()
			if err != nil {
				return 0, Operand{}, err
			}
			mem.Disp = disp
		} else {
			r := Reg(base)
			if d.rex&1 != 0 {
				r += 8
			}
			mem.Base = r
		}
	} else if rmf == 5 && mod == 0 { // RIP-relative
		disp, err := d.i32()
		if err != nil {
			return 0, Operand{}, err
		}
		mem.Base = RIPVal
		mem.RIPRel = true
		mem.Disp = disp
	} else {
		r := Reg(rmf)
		if d.rex&1 != 0 {
			r += 8
		}
		mem.Base = r
	}
	switch mod {
	case 1:
		disp, err := d.i8()
		if err != nil {
			return 0, Operand{}, err
		}
		mem.Disp = int32(disp)
	case 2:
		disp, err := d.i32()
		if err != nil {
			return 0, Operand{}, err
		}
		mem.Disp = disp
	}
	return reg, Mem(size, mem), nil
}

// Decode decodes a single instruction at code[0:], which lives at virtual
// address addr. The returned instruction has Addr and Len set; relative
// branch targets are converted to absolute addresses.
func Decode(code []byte, addr uint64) (Inst, error) {
	d := &decodeState{code: code, addr: addr}

prefixLoop:
	for {
		if d.pos >= len(code) {
			return Inst{}, d.fail("empty instruction")
		}
		switch code[d.pos] {
		case 0x66:
			d.opSize = true
			d.pos++
		case 0xF2:
			d.repF2 = true
			d.pos++
		case 0xF3:
			d.repF3 = true
			d.pos++
		case 0x64:
			d.seg = SegFS
			d.pos++
		case 0x65:
			d.seg = SegGS
			d.pos++
		case 0x2E, 0x3E, 0x26, 0x36: // ignored segment prefixes in 64-bit mode
			d.pos++
		default:
			break prefixLoop
		}
	}
	if d.pos < len(code) && code[d.pos]&0xF0 == 0x40 {
		d.rex = code[d.pos]
		d.hasRex = true
		d.pos++
	}

	in, err := d.decodeOpcode()
	if err != nil {
		return Inst{}, err
	}
	in.Addr = addr
	in.Len = d.pos
	return in, nil
}

func (d *decodeState) regExtR() bool { return d.rex&4 != 0 }

func (d *decodeState) decodeOpcode() (Inst, error) {
	opc, err := d.byte()
	if err != nil {
		return Inst{}, err
	}
	size := d.opndSize()

	switch {
	case opc == 0x0F:
		return d.decode0F()

	// ALU family: 00-3B structured as digit*8 + form.
	case opc < 0x40 && opc&7 <= 3:
		ops := [8]Op{ADD, OR, ADC, SBB, AND, SUB, XOR, CMP}
		op := ops[opc>>3]
		form := opc & 7
		sz := size
		if form == 0 || form == 2 {
			sz = 1
		}
		reg, rm, err := d.modRM(sz, false)
		if err != nil {
			return Inst{}, err
		}
		r := d.gpreg(reg, d.regExtR(), sz)
		if form <= 1 { // r/m, r
			return Inst{Op: op, Dst: rm, Src: r}, nil
		}
		return Inst{Op: op, Dst: r, Src: rm}, nil
	case opc < 0x40 && opc&7 == 4: // op al, imm8
		v, err := d.i8()
		if err != nil {
			return Inst{}, err
		}
		ops := [8]Op{ADD, OR, ADC, SBB, AND, SUB, XOR, CMP}
		return Inst{Op: ops[opc>>3], Dst: RegOp(RAX, 1), Src: Imm(int64(v), 1)}, nil
	case opc < 0x40 && opc&7 == 5: // op eax/rax, imm32
		v, err := d.imm(size)
		if err != nil {
			return Inst{}, err
		}
		ops := [8]Op{ADD, OR, ADC, SBB, AND, SUB, XOR, CMP}
		return Inst{Op: ops[opc>>3], Dst: RegOp(RAX, size), Src: Imm(v, size)}, nil

	case opc >= 0x50 && opc <= 0x57:
		r := Reg(opc - 0x50)
		if d.rex&1 != 0 {
			r += 8
		}
		return Inst{Op: PUSH, Dst: RegOp(r, 8)}, nil
	case opc >= 0x58 && opc <= 0x5F:
		r := Reg(opc - 0x58)
		if d.rex&1 != 0 {
			r += 8
		}
		return Inst{Op: POP, Dst: RegOp(r, 8)}, nil

	case opc == 0x63:
		reg, rm, err := d.modRM(4, false)
		if err != nil {
			return Inst{}, err
		}
		return Inst{Op: MOVSXD, Dst: d.gpreg(reg, d.regExtR(), 8), Src: rm}, nil

	case opc == 0x68:
		v, err := d.i32()
		if err != nil {
			return Inst{}, err
		}
		return Inst{Op: PUSH, Dst: Imm(int64(v), 8)}, nil
	case opc == 0x6A:
		v, err := d.i8()
		if err != nil {
			return Inst{}, err
		}
		return Inst{Op: PUSH, Dst: Imm(int64(v), 8)}, nil

	case opc == 0x69 || opc == 0x6B:
		reg, rm, err := d.modRM(size, false)
		if err != nil {
			return Inst{}, err
		}
		isz := uint8(4)
		if opc == 0x6B {
			isz = 1
		}
		v, err := d.imm(isz)
		if err != nil {
			return Inst{}, err
		}
		return Inst{Op: IMUL3, Dst: d.gpreg(reg, d.regExtR(), size), Src: rm, Src2: Imm(v, size)}, nil

	case opc >= 0x70 && opc <= 0x7F: // Jcc rel8
		v, err := d.i8()
		if err != nil {
			return Inst{}, err
		}
		target := d.addr + uint64(d.pos) + uint64(int64(v))
		return Inst{Op: JCC, Cond: Cond(opc - 0x70), Dst: Imm(int64(target), 8)}, nil

	case opc == 0x80 || opc == 0x81 || opc == 0x83:
		sz := size
		if opc == 0x80 {
			sz = 1
		}
		reg, rm, err := d.modRM(sz, false)
		if err != nil {
			return Inst{}, err
		}
		isz := uint8(1)
		if opc == 0x81 {
			isz = min8(sz, 4)
			if sz == 2 {
				isz = 2
			}
		}
		v, err := d.imm(isz)
		if err != nil {
			return Inst{}, err
		}
		ops := [8]Op{ADD, OR, ADC, SBB, AND, SUB, XOR, CMP}
		return Inst{Op: ops[reg], Dst: rm, Src: Imm(v, sz)}, nil

	case opc == 0x84 || opc == 0x85:
		sz := size
		if opc == 0x84 {
			sz = 1
		}
		reg, rm, err := d.modRM(sz, false)
		if err != nil {
			return Inst{}, err
		}
		return Inst{Op: TEST, Dst: rm, Src: d.gpreg(reg, d.regExtR(), sz)}, nil

	case opc == 0x87:
		reg, rm, err := d.modRM(size, false)
		if err != nil {
			return Inst{}, err
		}
		return Inst{Op: XCHG, Dst: rm, Src: d.gpreg(reg, d.regExtR(), size)}, nil

	case opc == 0x88 || opc == 0x89:
		sz := size
		if opc == 0x88 {
			sz = 1
		}
		reg, rm, err := d.modRM(sz, false)
		if err != nil {
			return Inst{}, err
		}
		return Inst{Op: MOV, Dst: rm, Src: d.gpreg(reg, d.regExtR(), sz)}, nil
	case opc == 0x8A || opc == 0x8B:
		sz := size
		if opc == 0x8A {
			sz = 1
		}
		reg, rm, err := d.modRM(sz, false)
		if err != nil {
			return Inst{}, err
		}
		return Inst{Op: MOV, Dst: d.gpreg(reg, d.regExtR(), sz), Src: rm}, nil

	case opc == 0x8D:
		reg, rm, err := d.modRM(size, false)
		if err != nil {
			return Inst{}, err
		}
		if rm.Kind != KMem {
			return Inst{}, d.fail("lea with register operand")
		}
		return Inst{Op: LEA, Dst: d.gpreg(reg, d.regExtR(), size), Src: rm}, nil

	case opc == 0x8F:
		_, rm, err := d.modRM(8, false)
		if err != nil {
			return Inst{}, err
		}
		return Inst{Op: POP, Dst: rm}, nil

	case opc == 0x90:
		return Inst{Op: NOP}, nil

	case opc == 0xF9:
		return Inst{Op: STC}, nil
	case opc == 0xF8:
		return Inst{Op: CLC}, nil

	case opc == 0x98:
		if size == 8 {
			return Inst{Op: CDQE}, nil
		}
		return Inst{}, d.fail("cwde not supported")
	case opc == 0x99:
		if size == 8 {
			return Inst{Op: CQO}, nil
		}
		return Inst{Op: CDQ}, nil

	case opc == 0xA4 || opc == 0xAA: // movsb / stosb (byte string ops)
		if d.repF2 {
			return Inst{}, d.fail("repne string op not supported")
		}
		switch {
		case opc == 0xA4 && d.repF3:
			return Inst{Op: REPMOVSB}, nil
		case opc == 0xA4:
			return Inst{Op: MOVSB}, nil
		case d.repF3:
			return Inst{Op: REPSTOSB}, nil
		default:
			return Inst{Op: STOSB}, nil
		}

	case opc >= 0xB0 && opc <= 0xB7:
		v, err := d.i8()
		if err != nil {
			return Inst{}, err
		}
		return Inst{Op: MOV, Dst: d.gpreg(opc-0xB0, d.rex&1 != 0, 1), Src: Imm(int64(v), 1)}, nil
	case opc >= 0xB8 && opc <= 0xBF:
		r := Reg(opc - 0xB8)
		if d.rex&1 != 0 {
			r += 8
		}
		if size == 8 {
			v, err := d.i64()
			if err != nil {
				return Inst{}, err
			}
			return Inst{Op: MOV, Dst: RegOp(r, 8), Src: Imm(v, 8)}, nil
		}
		v, err := d.imm(size)
		if err != nil {
			return Inst{}, err
		}
		if size == 4 {
			v = int64(uint32(v))
		}
		return Inst{Op: MOV, Dst: RegOp(r, size), Src: Imm(v, size)}, nil

	case opc == 0xC0 || opc == 0xC1 || opc == 0xD0 || opc == 0xD1 || opc == 0xD2 || opc == 0xD3:
		sz := size
		if opc == 0xC0 || opc == 0xD0 || opc == 0xD2 {
			sz = 1
		}
		reg, rm, err := d.modRM(sz, false)
		if err != nil {
			return Inst{}, err
		}
		ops := [8]Op{ROL, ROR, INVALID, INVALID, SHL, SHR, INVALID, SAR}
		op := ops[reg]
		if op == INVALID {
			return Inst{}, d.fail("unsupported shift digit")
		}
		switch opc {
		case 0xC0, 0xC1:
			v, err := d.i8()
			if err != nil {
				return Inst{}, err
			}
			return Inst{Op: op, Dst: rm, Src: Imm(int64(v), 1)}, nil
		case 0xD0, 0xD1:
			return Inst{Op: op, Dst: rm, Src: Imm(1, 1)}, nil
		default:
			return Inst{Op: op, Dst: rm, Src: RegOp(RCX, 1)}, nil
		}

	case opc == 0xC3:
		return Inst{Op: RET}, nil

	case opc == 0xC6 || opc == 0xC7:
		sz := size
		if opc == 0xC6 {
			sz = 1
		}
		_, rm, err := d.modRM(sz, false)
		if err != nil {
			return Inst{}, err
		}
		isz := min8(sz, 4)
		v, err := d.imm(isz)
		if err != nil {
			return Inst{}, err
		}
		if sz == 4 {
			// Normalize with the B8+r form: a 32-bit destination is
			// zero-extended, so represent the immediate unsigned.
			v = int64(uint32(v))
		}
		return Inst{Op: MOV, Dst: rm, Src: Imm(v, sz)}, nil

	case opc == 0xE8 || opc == 0xE9:
		v, err := d.i32()
		if err != nil {
			return Inst{}, err
		}
		target := d.addr + uint64(d.pos) + uint64(int64(v))
		op := CALL
		if opc == 0xE9 {
			op = JMP
		}
		return Inst{Op: op, Dst: Imm(int64(target), 8)}, nil
	case opc == 0xEB:
		v, err := d.i8()
		if err != nil {
			return Inst{}, err
		}
		target := d.addr + uint64(d.pos) + uint64(int64(v))
		return Inst{Op: JMP, Dst: Imm(int64(target), 8)}, nil

	case opc == 0xF6 || opc == 0xF7:
		sz := size
		if opc == 0xF6 {
			sz = 1
		}
		reg, rm, err := d.modRM(sz, false)
		if err != nil {
			return Inst{}, err
		}
		switch reg {
		case 0, 1: // TEST r/m, imm
			isz := min8(sz, 4)
			v, err := d.imm(isz)
			if err != nil {
				return Inst{}, err
			}
			return Inst{Op: TEST, Dst: rm, Src: Imm(v, sz)}, nil
		case 2:
			return Inst{Op: NOT, Dst: rm}, nil
		case 3:
			return Inst{Op: NEG, Dst: rm}, nil
		case 4:
			return Inst{Op: MUL, Dst: rm}, nil
		case 6:
			return Inst{Op: DIV, Dst: rm}, nil
		case 7:
			return Inst{Op: IDIV, Dst: rm}, nil
		}
		return Inst{}, d.fail("unsupported F7 digit")

	case opc == 0xFE || opc == 0xFF:
		sz := size
		if opc == 0xFE {
			sz = 1
		}
		reg, rm, err := d.modRM(sz, false)
		if err != nil {
			return Inst{}, err
		}
		switch reg {
		case 0:
			return Inst{Op: INC, Dst: rm}, nil
		case 1:
			return Inst{Op: DEC, Dst: rm}, nil
		case 2:
			if opc == 0xFF {
				return Inst{Op: CALLIndirect, Dst: withSize(rm, 8)}, nil
			}
		case 4:
			if opc == 0xFF {
				return Inst{Op: JMPIndirect, Dst: withSize(rm, 8)}, nil
			}
		case 6:
			if opc == 0xFF {
				return Inst{Op: PUSH, Dst: withSize(rm, 8)}, nil
			}
		}
		return Inst{}, d.fail("unsupported FF digit")
	}
	return Inst{}, d.fail("unsupported opcode")
}

// sse0FALU maps 0F second-byte opcodes plus mandatory prefix to SSE Ops.
type sseKey struct {
	opc    byte
	prefix byte // 0, 66, F2, F3
}

var sse0F = map[sseKey]Op{
	{0x58, pfxF2}: ADDSD, {0x5C, pfxF2}: SUBSD, {0x59, pfxF2}: MULSD, {0x5E, pfxF2}: DIVSD,
	{0x5D, pfxF2}: MINSD, {0x5F, pfxF2}: MAXSD, {0x51, pfxF2}: SQRTSD,
	{0x58, pfxF3}: ADDSS, {0x5C, pfxF3}: SUBSS, {0x59, pfxF3}: MULSS, {0x5E, pfxF3}: DIVSS,
	{0x58, pfx66}: ADDPD, {0x5C, pfx66}: SUBPD, {0x59, pfx66}: MULPD, {0x5E, pfx66}: DIVPD,
	{0x58, 0}: ADDPS, {0x5C, 0}: SUBPS, {0x59, 0}: MULPS, {0x5E, 0}: DIVPS,
	{0x57, 0}: XORPS, {0x57, pfx66}: XORPD, {0x54, 0}: ANDPS, {0x54, pfx66}: ANDPD,
	{0x56, 0}: ORPS, {0x56, pfx66}: ORPD,
	{0x14, pfx66}: UNPCKLPD, {0x15, pfx66}: UNPCKHPD, {0x14, 0}: UNPCKLPS,
	{0xEF, pfx66}: PXOR, {0xEB, pfx66}: POR, {0xDB, pfx66}: PAND,
	{0xFE, pfx66}: PADDD, {0xD4, pfx66}: PADDQ, {0xFA, pfx66}: PSUBD, {0xFB, pfx66}: PSUBQ,
	{0x6C, pfx66}: PUNPCKLQDQ,
	{0x2F, pfx66}: COMISD, {0x2E, pfx66}: UCOMISD, {0x2F, 0}: COMISS, {0x2E, 0}: UCOMISS,
	{0x5A, pfxF2}: CVTSD2SS, {0x5A, pfxF3}: CVTSS2SD,
}

// operand size (in bytes) of the r/m side of each SSE op when it is memory.
var sseMemSize = map[Op]uint8{
	ADDSD: 8, SUBSD: 8, MULSD: 8, DIVSD: 8, MINSD: 8, MAXSD: 8, SQRTSD: 8,
	ADDSS: 4, SUBSS: 4, MULSS: 4, DIVSS: 4,
	COMISD: 8, UCOMISD: 8, COMISS: 4, UCOMISS: 4,
	CVTSD2SS: 8, CVTSS2SD: 4,
}

func (d *decodeState) curPrefix() byte {
	switch {
	case d.repF2:
		return pfxF2
	case d.repF3:
		return pfxF3
	case d.opSize:
		return pfx66
	}
	return 0
}

func (d *decodeState) decode0F() (Inst, error) {
	opc, err := d.byte()
	if err != nil {
		return Inst{}, err
	}
	pfx := d.curPrefix()
	size := uint8(4)
	if d.rex&8 != 0 {
		size = 8
	}

	switch {
	case opc == 0x0B:
		return Inst{Op: UD2}, nil
	case opc == 0x1E && pfx == pfxF3:
		b, err := d.byte()
		if err != nil {
			return Inst{}, err
		}
		if b == 0xFA {
			return Inst{Op: ENDBR64}, nil
		}
		return Inst{}, d.fail("unsupported F3 0F 1E form")
	case opc == 0x1F: // multi-byte NOP
		_, _, err := d.modRM(size, false)
		if err != nil {
			return Inst{}, err
		}
		return Inst{Op: NOP}, nil

	case opc == 0x10 || opc == 0x11: // movups/movupd/movss/movsd
		var op Op
		switch pfx {
		case 0:
			op = MOVUPS
		case pfx66:
			op = MOVUPD
		case pfxF2:
			op = MOVSD_X
		case pfxF3:
			op = MOVSS_X
		}
		msz := uint8(16)
		if op == MOVSD_X {
			msz = 8
		} else if op == MOVSS_X {
			msz = 4
		}
		reg, rm, err := d.modRM(msz, true)
		if err != nil {
			return Inst{}, err
		}
		x := xmmreg(reg, d.regExtR())
		if opc == 0x10 {
			return Inst{Op: op, Dst: x, Src: rm}, nil
		}
		return Inst{Op: op, Dst: rm, Src: x}, nil
	case opc == 0x28 || opc == 0x29:
		op := MOVAPS
		if pfx == pfx66 {
			op = MOVAPD
		}
		reg, rm, err := d.modRM(16, true)
		if err != nil {
			return Inst{}, err
		}
		x := xmmreg(reg, d.regExtR())
		if opc == 0x28 {
			return Inst{Op: op, Dst: x, Src: rm}, nil
		}
		return Inst{Op: op, Dst: rm, Src: x}, nil
	case opc == 0x6F || opc == 0x7F:
		var op Op
		switch pfx {
		case pfx66:
			op = MOVDQA
		case pfxF3:
			op = MOVDQU
		default:
			return Inst{}, d.fail("mmx not supported")
		}
		reg, rm, err := d.modRM(16, true)
		if err != nil {
			return Inst{}, err
		}
		x := xmmreg(reg, d.regExtR())
		if opc == 0x6F {
			return Inst{Op: op, Dst: x, Src: rm}, nil
		}
		return Inst{Op: op, Dst: rm, Src: x}, nil
	case opc == 0x12 || opc == 0x13 || opc == 0x16 || opc == 0x17:
		if pfx != pfx66 {
			return Inst{}, d.fail("only movlpd/movhpd supported")
		}
		op := MOVLPD
		if opc >= 0x16 {
			op = MOVHPD
		}
		reg, rm, err := d.modRM(8, true)
		if err != nil {
			return Inst{}, err
		}
		x := xmmreg(reg, d.regExtR())
		if opc == 0x12 || opc == 0x16 {
			return Inst{Op: op, Dst: x, Src: rm}, nil
		}
		return Inst{Op: op, Dst: rm, Src: x}, nil

	case opc == 0x7E && pfx == pfxF3: // movq xmm, xmm/m64
		reg, rm, err := d.modRM(8, true)
		if err != nil {
			return Inst{}, err
		}
		return Inst{Op: MOVQ, Dst: xmmreg(reg, d.regExtR()), Src: rm}, nil
	case opc == 0xD6 && pfx == pfx66: // movq m64/xmm, xmm
		reg, rm, err := d.modRM(8, true)
		if err != nil {
			return Inst{}, err
		}
		return Inst{Op: MOVQ, Dst: rm, Src: xmmreg(reg, d.regExtR())}, nil
	case opc == 0x6E && pfx == pfx66: // movd/movq xmm, r/m
		reg, rm, err := d.modRM(size, false)
		if err != nil {
			return Inst{}, err
		}
		op := MOVD
		if size == 8 {
			op = MOVQGP
		}
		return Inst{Op: op, Dst: xmmreg(reg, d.regExtR()), Src: rm}, nil
	case opc == 0x7E && pfx == pfx66: // movd/movq r/m, xmm
		reg, rm, err := d.modRM(size, false)
		if err != nil {
			return Inst{}, err
		}
		op := MOVD
		if size == 8 {
			op = MOVQGP
		}
		return Inst{Op: op, Dst: rm, Src: xmmreg(reg, d.regExtR())}, nil

	case opc == 0xC6: // shufps/shufpd
		op := SHUFPS
		if pfx == pfx66 {
			op = SHUFPD
		}
		reg, rm, err := d.modRM(16, true)
		if err != nil {
			return Inst{}, err
		}
		v, err := d.i8()
		if err != nil {
			return Inst{}, err
		}
		return Inst{Op: op, Dst: xmmreg(reg, d.regExtR()), Src: rm, Src2: Imm(int64(v), 1)}, nil
	case opc == 0x70 && pfx == pfx66:
		reg, rm, err := d.modRM(16, true)
		if err != nil {
			return Inst{}, err
		}
		v, err := d.i8()
		if err != nil {
			return Inst{}, err
		}
		return Inst{Op: PSHUFD, Dst: xmmreg(reg, d.regExtR()), Src: rm, Src2: Imm(int64(v), 1)}, nil

	case opc == 0x2A && (pfx == pfxF2 || pfx == pfxF3): // cvtsi2sd/ss
		reg, rm, err := d.modRM(size, false)
		if err != nil {
			return Inst{}, err
		}
		op := CVTSI2SD
		if pfx == pfxF3 {
			op = CVTSI2SS
		}
		return Inst{Op: op, Dst: xmmreg(reg, d.regExtR()), Src: rm}, nil
	case opc == 0x2C && pfx == pfxF2: // cvttsd2si
		reg, rm, err := d.modRM(8, true)
		if err != nil {
			return Inst{}, err
		}
		return Inst{Op: CVTTSD2SI, Dst: d.gpreg(reg, d.regExtR(), size), Src: rm}, nil
	case opc == 0x50 && pfx == pfx66: // movmskpd
		reg, rm, err := d.modRM(16, true)
		if err != nil {
			return Inst{}, err
		}
		return Inst{Op: MOVMSKPD, Dst: d.gpreg(reg, d.regExtR(), size), Src: rm}, nil

	case opc >= 0x40 && opc <= 0x4F: // CMOVcc
		sz := d.opndSize()
		reg, rm, err := d.modRM(sz, false)
		if err != nil {
			return Inst{}, err
		}
		return Inst{Op: CMOVCC, Cond: Cond(opc - 0x40), Dst: d.gpreg(reg, d.regExtR(), sz), Src: rm}, nil
	case opc >= 0x80 && opc <= 0x8F: // Jcc rel32
		v, err := d.i32()
		if err != nil {
			return Inst{}, err
		}
		target := d.addr + uint64(d.pos) + uint64(int64(v))
		return Inst{Op: JCC, Cond: Cond(opc - 0x80), Dst: Imm(int64(target), 8)}, nil
	case opc >= 0x90 && opc <= 0x9F: // SETcc
		_, rm, err := d.modRM(1, false)
		if err != nil {
			return Inst{}, err
		}
		return Inst{Op: SETCC, Cond: Cond(opc - 0x90), Dst: rm}, nil

	case opc == 0xB8 && pfx == pfxF3: // popcnt
		sz := d.opndSize()
		reg, rm, err := d.modRM(sz, false)
		if err != nil {
			return Inst{}, err
		}
		return Inst{Op: POPCNT, Dst: d.gpreg(reg, d.regExtR(), sz), Src: rm}, nil

	case opc == 0xAF: // imul r, r/m
		sz := d.opndSize()
		reg, rm, err := d.modRM(sz, false)
		if err != nil {
			return Inst{}, err
		}
		return Inst{Op: IMUL, Dst: d.gpreg(reg, d.regExtR(), sz), Src: rm}, nil

	case opc == 0xB6 || opc == 0xB7 || opc == 0xBE || opc == 0xBF: // movzx/movsx
		srcSize := uint8(1)
		if opc == 0xB7 || opc == 0xBF {
			srcSize = 2
		}
		op := MOVZX
		if opc >= 0xBE {
			op = MOVSX
		}
		sz := d.opndSize()
		reg, rm, err := d.modRM(srcSize, false)
		if err != nil {
			return Inst{}, err
		}
		return Inst{Op: op, Dst: d.gpreg(reg, d.regExtR(), sz), Src: rm}, nil
	}

	if op, ok := sse0F[sseKey{opc, pfx}]; ok {
		msz := sseMemSize[op]
		if msz == 0 {
			msz = 16
		}
		reg, rm, err := d.modRM(msz, true)
		if err != nil {
			return Inst{}, err
		}
		return Inst{Op: op, Dst: xmmreg(reg, d.regExtR()), Src: rm}, nil
	}
	return Inst{}, d.fail("unsupported 0F opcode")
}
