// Package corpus is the rewriter-evaluation corpus: a registry of
// compiler-idiom subjects the pipeline historically did not cover — jump
// tables and computed gotos, irreducible control flow, varargs-style and
// struct-by-value ABI shapes, unaligned SSE, rep-string ops, PIC/RIP-
// relative data — plus a Futamura-projection stress workload (a bytecode
// interpreter specialized against a fixed program). Each subject carries
// machine code, an input-space generator, and a differential oracle over
// every execution path; the oracle asserts bit-identical outputs or an
// explicit classified fallback. The one outcome the corpus exists to make
// impossible is silent wrong code.
//
// The per-subject × per-path verdicts form the coverage scorecard surfaced
// by `stencilbench -fig coverage` and committed as BENCH_coverage.json;
// `make corpus` fails on any wrong verdict or on a pass→fallback regression
// against the committed scorecard.
package corpus

import (
	"context"
	"fmt"
	"net/http/httptest"

	"repro/internal/abi"
	"repro/internal/dbrew"
	"repro/internal/emu"
	"repro/internal/fastpath"
	"repro/internal/jit"
	"repro/internal/lift"
	"repro/internal/opt"
	"repro/internal/service"
)

// Verdict classifies one execution path's handling of one subject.
type Verdict string

const (
	// VerdictPass: the path produced code (or executed directly) and the
	// result was bit-identical to the reference on every input.
	VerdictPass Verdict = "pass"
	// VerdictFallback: the path explicitly declined (DBrew fallback, trace
	// recording abort) and execution continued on the original code, which
	// stayed bit-identical. The idiom is handled safely, not accelerated.
	VerdictFallback Verdict = "fallback"
	// VerdictUnsupported: the path rejected the subject with a classified
	// error before producing any code (lift/fastpath/jit refusal). Nothing
	// ran, so nothing could diverge.
	VerdictUnsupported Verdict = "unsupported"
	// VerdictWrong: the path produced code whose behavior diverged from
	// the reference. Never acceptable; the corpus gate fails on it.
	VerdictWrong Verdict = "wrong"
)

// Image is a built subject: a self-contained address space with the
// subject's code, an entry point, a zeroed scratch window the function may
// use via its third argument, and the input pairs the oracle sweeps.
type Image struct {
	Mem     *emu.Memory
	Entry   uint64
	Scratch uint64
	Sig     abi.Signature
	Inputs  [][2]uint64
}

// Subject is one corpus entry.
type Subject struct {
	// Name is the scorecard row key; Family groups related subjects
	// (several rows may probe one idiom family from different angles).
	Name, Family string
	// Desc says what the subject exercises and why it is hard.
	Desc string
	// Build constructs a fresh image. Subjects must derive all state from
	// the arguments and the zeroed scratch window so runs are reproducible.
	Build func() (*Image, error)
}

// PathResult is one cell of the scorecard.
type PathResult struct {
	Path    string  `json:"path"`
	Verdict Verdict `json:"verdict"`
	// Detail carries the classified error or divergence description.
	Detail string `json:"detail,omitempty"`
}

// Result is one subject's verdicts across every execution path.
type Result struct {
	Subject string       `json:"subject"`
	Family  string       `json:"family"`
	Paths   []PathResult `json:"paths"`
}

// Wrong reports whether any path produced wrong code.
func (r *Result) Wrong() bool {
	for _, p := range r.Paths {
		if p.Verdict == VerdictWrong {
			return true
		}
	}
	return false
}

// Verdict returns the named path's verdict ("" when absent).
func (r *Result) Verdict(path string) Verdict {
	for _, p := range r.Paths {
		if p.Path == path {
			return p.Verdict
		}
	}
	return ""
}

// PathNames lists the execution paths every subject is swept through, in
// scorecard column order.
func PathNames() []string {
	return []string{
		"emu-interp", "emu-block", "emu-trace",
		"dbrew", "lift-o1", "specialize-o3", "fastpath", "dbrewd",
	}
}

// scratchSize is the zeroed window subjects may address via arg 3.
const scratchSize = 256

// defaultSig is the uniform subject signature: f(i64, i64, ptr) -> i64.
var defaultSig = abi.Signature{
	Params: []abi.Class{abi.ClassInt, abi.ClassInt, abi.ClassPtr},
	Ret:    abi.ClassInt,
}

// outcome is one run's observable behavior: the returned value and the
// scratch window afterwards (all the architectural effects subjects have).
type outcome struct {
	ret     uint64
	scratch string
}

func runMachine(img *Image, entry uint64, in [2]uint64, cfg func(*emu.Machine)) (outcome, error) {
	if err := zeroScratch(img.Mem, img.Scratch); err != nil {
		return outcome{}, err
	}
	m := emu.NewMachine(img.Mem)
	if cfg != nil {
		cfg(m)
	}
	ret, err := m.Call(entry, emu.CallArgs{Ints: []uint64{in[0], in[1], img.Scratch}}, 5_000_000)
	if err != nil {
		return outcome{}, err
	}
	buf, err := img.Mem.Read(img.Scratch, scratchSize)
	if err != nil {
		return outcome{}, err
	}
	return outcome{ret: ret, scratch: string(buf)}, nil
}

func zeroScratch(mem *emu.Memory, scratch uint64) error {
	b, err := mem.Bytes(scratch, scratchSize)
	if err != nil {
		return err
	}
	for i := range b {
		b[i] = 0
	}
	return nil
}

// compare sweeps the subject's inputs at entry under cfg and compares each
// outcome to the reference list. It returns a passing PathResult or a
// VerdictWrong one describing the first divergence; an execution error is a
// divergence too (the reference ran to completion).
func compare(img *Image, path string, entry uint64, refs []outcome, cfg func(*emu.Machine)) PathResult {
	for i, in := range img.Inputs {
		got, err := runMachine(img, entry, in, cfg)
		if err != nil {
			return PathResult{Path: path, Verdict: VerdictWrong,
				Detail: fmt.Sprintf("in=(%#x,%#x): %v", in[0], in[1], err)}
		}
		if got.ret != refs[i].ret {
			return PathResult{Path: path, Verdict: VerdictWrong,
				Detail: fmt.Sprintf("in=(%#x,%#x): got %#x, want %#x", in[0], in[1], got.ret, refs[i].ret)}
		}
		if got.scratch != refs[i].scratch {
			return PathResult{Path: path, Verdict: VerdictWrong,
				Detail: fmt.Sprintf("in=(%#x,%#x): scratch memory diverged", in[0], in[1])}
		}
	}
	return PathResult{Path: path, Verdict: VerdictPass}
}

// Run sweeps one subject through every execution path and returns the
// scorecard row. The reference is the per-instruction interpreter; every
// other path must match it bit-for-bit or decline explicitly.
func Run(s *Subject) (*Result, error) {
	img, err := s.Build()
	if err != nil {
		return nil, fmt.Errorf("corpus: build %s: %v", s.Name, err)
	}
	// The dbrewd path replays the daemon's output over a pristine snapshot,
	// so capture the address space before anything (stack allocation,
	// installed rewrites) extends it.
	snapshot := service.SnapshotRegions(img.Mem)

	// Reference: the per-instruction interpreter.
	refs := make([]outcome, len(img.Inputs))
	for i, in := range img.Inputs {
		refs[i], err = runMachine(img, img.Entry, in, func(m *emu.Machine) { m.Interp = true })
		if err != nil {
			return nil, fmt.Errorf("corpus: %s: reference run in=%v: %v", s.Name, in, err)
		}
	}
	res := &Result{Subject: s.Name, Family: s.Family}
	res.Paths = append(res.Paths,
		PathResult{Path: "emu-interp", Verdict: VerdictPass}, // the reference itself
		compare(img, "emu-block", img.Entry, refs, func(m *emu.Machine) { m.Traces = false }),
		runTracePath(img, refs),
		runDBrewPath(img, refs),
		runLiftPath(img, refs),
		runSpecializePath(img, refs),
		runFastpathPath(img, refs),
		runDbrewdPath(s, img, snapshot, refs),
	)
	return res, nil
}

// RunAll runs every subject and returns the rows in registry order.
func RunAll(subjects []*Subject) ([]*Result, error) {
	var out []*Result
	for _, s := range subjects {
		r, err := Run(s)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// runTracePath runs the trace tier with aggressive thresholds. A subject
// whose loops the recorder declines (indirect branches, unsupported ops)
// still executes on the block engine; that is the classified fallback.
func runTracePath(img *Image, refs []outcome) PathResult {
	before := emu.ReadTraceStats()
	pr := compare(img, "emu-trace", img.Entry, refs, func(m *emu.Machine) {
		m.Traces = true
		m.TraceOpts = emu.TraceOptions{HotThreshold: 2, O3Threshold: 4}
	})
	after := emu.ReadTraceStats()
	if pr.Verdict == VerdictPass && after.Compiled == before.Compiled && after.Aborted > before.Aborted {
		pr.Verdict = VerdictFallback
		pr.Detail = "recording aborted; stayed on the block engine"
	}
	return pr
}

// runDBrewPath does the identity rewrite. An explicit fallback re-enters
// the original code — verified bit-identical and classified VerdictFallback.
func runDBrewPath(img *Image, refs []outcome) PathResult {
	rw := dbrew.NewRewriter(img.Mem, img.Entry, img.Sig)
	entry, err := rw.Rewrite()
	if err != nil {
		return PathResult{Path: "dbrew", Verdict: VerdictUnsupported, Detail: err.Error()}
	}
	pr := compare(img, "dbrew", entry, refs, nil)
	if pr.Verdict == VerdictPass && rw.Stats.Failed {
		pr.Verdict = VerdictFallback
		if rw.Stats.Err != nil {
			pr.Detail = rw.Stats.Err.Error()
		}
	}
	return pr
}

// runLiftPath is the tier-1 pipeline: lift, O1 (strict FP), JIT.
func runLiftPath(img *Image, refs []outcome) PathResult {
	l := lift.New(img.Mem, lift.DefaultOptions())
	f, err := l.LiftFunc(img.Entry, "c1", img.Sig)
	if err != nil {
		return PathResult{Path: "lift-o1", Verdict: VerdictUnsupported, Detail: err.Error()}
	}
	cfg := opt.O1()
	cfg.FastMath = false
	opt.Optimize(f, cfg)
	comp := jit.NewCompiler(img.Mem)
	comp.NamePrefix = "corpus1."
	entry, err := comp.CompileModule(l.Module, f.Nam)
	if err != nil {
		return PathResult{Path: "lift-o1", Verdict: VerdictUnsupported, Detail: err.Error()}
	}
	return compare(img, "lift-o1", entry, refs, nil)
}

// runSpecializePath is the paper's full pipeline: DBrew rewrite, then lift
// + O3 (strict FP) + JIT of the rewritten code. A DBrew fallback leaves
// nothing to lift, so the path is classified unsupported.
func runSpecializePath(img *Image, refs []outcome) PathResult {
	rw := dbrew.NewRewriter(img.Mem, img.Entry, img.Sig)
	specEntry, err := rw.Rewrite()
	if err != nil || rw.Stats.Failed {
		detail := "dbrew fell back; nothing to lift"
		if err != nil {
			detail = err.Error()
		} else if rw.Stats.Err != nil {
			detail = rw.Stats.Err.Error()
		}
		return PathResult{Path: "specialize-o3", Verdict: VerdictUnsupported, Detail: detail}
	}
	l := lift.New(img.Mem, lift.DefaultOptions())
	f, err := l.LiftFunc(specEntry, "c3", img.Sig)
	if err != nil {
		return PathResult{Path: "specialize-o3", Verdict: VerdictUnsupported, Detail: err.Error()}
	}
	cfg := opt.O3()
	cfg.FastMath = false
	opt.Optimize(f, cfg)
	comp := jit.NewCompiler(img.Mem)
	comp.NamePrefix = "corpus3."
	entry, err := comp.CompileModule(l.Module, f.Nam)
	if err != nil {
		return PathResult{Path: "specialize-o3", Verdict: VerdictUnsupported, Detail: err.Error()}
	}
	return compare(img, "specialize-o3", entry, refs, nil)
}

func runFastpathPath(img *Image, refs []outcome) PathResult {
	res, err := fastpath.Compile(img.Mem, img.Entry, "c", img.Sig, fastpath.Options{NamePrefix: "corpus."})
	if err != nil {
		return PathResult{Path: "fastpath", Verdict: VerdictUnsupported, Detail: err.Error()}
	}
	pr := compare(img, "fastpath", res.Entry, refs, nil)
	if pr.Verdict == VerdictPass {
		pr.Detail = "mode=" + res.Mode.String()
	}
	return pr
}

// runDbrewdPath round-trips the subject through a dbrewd instance: snapshot
// regions up, identity rewrite with the dbrew backend, then replay the
// returned code over a pristine copy of the snapshot. A daemon-side
// fallback replays the original entry instead (the client's contract).
func runDbrewdPath(s *Subject, img *Image, snapshot []service.Region, refs []outcome) PathResult {
	svc := service.New(service.Config{})
	ts := httptest.NewServer(svc)
	defer ts.Close()
	client := service.NewClient(ts.URL)

	resp, err := client.Specialize(context.Background(), &service.Request{
		Regions: snapshot,
		Entry:   img.Entry,
		Sig:     service.SigFromABI(img.Sig),
		Backend: "dbrew",
	})
	if err != nil {
		return PathResult{Path: "dbrewd", Verdict: VerdictUnsupported, Detail: err.Error()}
	}

	// Replay in a fresh address space reconstructed from the snapshot, the
	// way a client would install the daemon's artifact.
	replay, err := s.Build()
	if err != nil {
		return PathResult{Path: "dbrewd", Verdict: VerdictWrong, Detail: "rebuild for replay: " + err.Error()}
	}
	entry := replay.Entry
	fellBack := resp.Stats.Failed
	if !fellBack {
		if _, err := replay.Mem.MapBytes(resp.Addr, resp.Code, "dbrewd"); err != nil {
			return PathResult{Path: "dbrewd", Verdict: VerdictWrong, Detail: "map artifact: " + err.Error()}
		}
		entry = resp.Addr
	}
	pr := compare(replay, "dbrewd", entry, refs, nil)
	if pr.Verdict == VerdictPass && fellBack {
		pr.Verdict = VerdictFallback
		pr.Detail = "daemon reported fallback; original code replayed"
	}
	return pr
}
