package corpus

// The coverage scorecard: the corpus run serialized as deterministic JSON
// (fixed subject and path order, no timestamps) so it can be committed as
// BENCH_coverage.json and diffed. `make corpus` regenerates it and fails on
// any wrong verdict or on a pass -> fallback/unsupported regression against
// the committed file.

import (
	"bytes"
	"encoding/json"
	"fmt"
)

// Scorecard is the committed corpus-coverage artifact.
type Scorecard struct {
	Paths    []string        `json:"paths"`
	Subjects []*Result       `json:"subjects"`
	Futamura *FutamuraReport `json:"futamura,omitempty"`
}

// BuildScorecard runs the full corpus (every subject across every path,
// plus the Futamura specialization benchmark) and assembles the scorecard.
func BuildScorecard() (*Scorecard, error) {
	rows, err := RunAll(Subjects())
	if err != nil {
		return nil, err
	}
	fut, err := RunFutamura()
	if err != nil {
		return nil, err
	}
	return &Scorecard{Paths: PathNames(), Subjects: rows, Futamura: fut}, nil
}

// MarshalJSON-stable encoding for committing to the repo.
func (sc *Scorecard) Encode() ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(sc); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func DecodeScorecard(data []byte) (*Scorecard, error) {
	var sc Scorecard
	if err := json.Unmarshal(data, &sc); err != nil {
		return nil, err
	}
	return &sc, nil
}

// Gate validates an invariant every scorecard must satisfy regardless of
// history: no path on any subject produced wrong code, and the Futamura
// speedup holds the paper's >= 2x bar.
func (sc *Scorecard) Gate() []string {
	var bad []string
	for _, r := range sc.Subjects {
		for _, p := range r.Paths {
			if p.Verdict == VerdictWrong {
				bad = append(bad, fmt.Sprintf("%s/%s: WRONG CODE: %s", r.Subject, p.Path, p.Detail))
			}
		}
	}
	if sc.Futamura == nil {
		bad = append(bad, "futamura: benchmark row missing")
	} else if sc.Futamura.Speedup < 2 {
		bad = append(bad, fmt.Sprintf("futamura: speedup %.2fx below the 2x bar", sc.Futamura.Speedup))
	}
	return bad
}

// CompareScorecards reports coverage regressions of fresh against committed:
// a subject/path cell that was a pass and no longer is, or a row that
// disappeared. New subjects and fallback -> pass improvements are fine.
func CompareScorecards(committed, fresh *Scorecard) []string {
	var regressions []string
	byName := map[string]*Result{}
	for _, r := range fresh.Subjects {
		byName[r.Subject] = r
	}
	for _, old := range committed.Subjects {
		now, ok := byName[old.Subject]
		if !ok {
			regressions = append(regressions, fmt.Sprintf("%s: subject dropped from the corpus", old.Subject))
			continue
		}
		for _, p := range old.Paths {
			if p.Verdict != VerdictPass {
				continue
			}
			if got := now.Verdict(p.Path); got != VerdictPass {
				regressions = append(regressions,
					fmt.Sprintf("%s/%s: was pass, now %s", old.Subject, p.Path, got))
			}
		}
	}
	if committed.Futamura != nil && committed.Futamura.Speedup >= 2 &&
		(fresh.Futamura == nil || fresh.Futamura.Speedup < 2) {
		regressions = append(regressions, "futamura: speedup row regressed below 2x")
	}
	return regressions
}

// FormatScorecard renders the verdict matrix as the human-readable table
// `stencilbench -fig coverage` prints (the JSON artifact is the canonical
// committed form).
func FormatScorecard(sc *Scorecard) string {
	short := map[Verdict]string{
		VerdictPass:        "pass",
		VerdictFallback:    "fallback",
		VerdictUnsupported: "unsup",
		VerdictWrong:       "WRONG",
	}
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "%-18s %-16s", "subject", "family")
	for _, p := range sc.Paths {
		fmt.Fprintf(&buf, " %-13s", p)
	}
	buf.WriteByte('\n')
	for _, r := range sc.Subjects {
		fmt.Fprintf(&buf, "%-18s %-16s", r.Subject, r.Family)
		for _, p := range sc.Paths {
			v := r.Verdict(p)
			s, ok := short[v]
			if !ok {
				s = string(v)
			}
			fmt.Fprintf(&buf, " %-13s", s)
		}
		buf.WriteByte('\n')
	}
	if f := sc.Futamura; f != nil {
		fmt.Fprintf(&buf, "\nfutamura projection: %d inputs, interp %.0f cy -> specialized %.0f cy (%.2fx)",
			f.Inputs, f.InterpCycles, f.SpecCycles, f.Speedup)
		if f.SpecO3Cycles != 0 {
			fmt.Fprintf(&buf, ", spec+O3 %.0f cy (%.2fx)", f.SpecO3Cycles, f.SpeedupO3)
		}
		buf.WriteByte('\n')
	}
	return buf.String()
}
