package corpus

// The Futamura-projection stress workload: a small bytecode-VM interpreter
// written in x86, specialized by DBrew against a fixed bytecode program —
// the first Futamura projection, where specializing an interpreter to a
// program yields a compiled version of that program. The VM program lives
// in its own memory region declared constant via SetMem, so the rewriter
// folds the whole fetch/decode/dispatch skeleton away and the residual code
// is just the handler bodies. The oracle asserts the specialized function
// agrees with plain interpretation on randomized inputs, and the benchmark
// row gates on a >= 2x deterministic-cycle speedup.

import (
	"fmt"
	"math/rand"

	"repro/internal/dbrew"
	"repro/internal/emu"
	"repro/internal/jit"
	"repro/internal/lift"
	"repro/internal/opt"
	"repro/internal/x86"
	"repro/internal/x86/asm"
)

// vmProgBase is the VM program's region: disjoint from subject code and
// scratch so SetMem can declare exactly the bytecode constant.
const vmProgBase = 0x600000

// VM opcodes. Instructions are 8 bytes: byte 0 opcode, byte 1 dst register
// (0..5), byte 2 src register, bytes 4..7 a little-endian int32 immediate.
// The six VM registers live in the scratch window at [rdx+0..48); r0 and r1
// are preloaded with the function's two arguments, r2 is the result.
const (
	vmHALT  = 0 // return vmreg r2
	vmLOADI = 1 // dst = imm
	vmMOV   = 2 // dst = src
	vmADD   = 3 // dst += src
	vmSUB   = 4 // dst -= src
	vmMUL   = 5 // dst *= src
	vmAND   = 6 // dst &= src
	vmJNZ   = 7 // if dst != 0: goto instruction index imm
)

func vmInst(op, dst, src byte, imm int32) uint64 {
	return uint64(op) | uint64(dst)<<8 | uint64(src)<<16 | uint64(uint32(imm))<<32
}

// vmProgram is the fixed bytecode the interpreter is specialized against:
// a 12-iteration loop computing r2 = 12*(a*b + b) (mod 2^64).
func vmProgram() []uint64 {
	return []uint64{
		vmInst(vmLOADI, 2, 0, 0),  // 0: r2 = 0 (accumulator)
		vmInst(vmLOADI, 3, 0, 12), // 1: r3 = 12 (counter)
		vmInst(vmLOADI, 4, 0, 1),  // 2: r4 = 1
		vmInst(vmMOV, 5, 0, 0),    // 3: r5 = r0        <- loop head
		vmInst(vmMUL, 5, 1, 0),    // 4: r5 *= r1
		vmInst(vmADD, 2, 5, 0),    // 5: r2 += r5
		vmInst(vmADD, 2, 1, 0),    // 6: r2 += r1
		vmInst(vmSUB, 3, 4, 0),    // 7: r3 -= r4
		vmInst(vmJNZ, 3, 0, 3),    // 8: if r3 != 0 goto 3
		vmInst(vmHALT, 0, 0, 0),   // 9: return r2
	}
}

func vmProgramBytes() []byte {
	var out []byte
	for _, w := range vmProgram() {
		out = append(out,
			byte(w), byte(w>>8), byte(w>>16), byte(w>>24),
			byte(w>>32), byte(w>>40), byte(w>>48), byte(w>>56))
	}
	return out
}

// vmEval is the Go-level semantic model of the VM, used to cross-check the
// x86 interpreter itself.
func vmEval(prog []uint64, a, b uint64) uint64 {
	var regs [6]uint64
	regs[0], regs[1] = a, b
	pc := 0
	for {
		w := prog[pc]
		op, dst, src := byte(w), (w>>8)&7, (w>>16)&7
		imm := int64(int32(w >> 32))
		switch op {
		case vmHALT:
			return regs[2]
		case vmLOADI:
			regs[dst] = uint64(imm)
		case vmMOV:
			regs[dst] = regs[src]
		case vmADD:
			regs[dst] += regs[src]
		case vmSUB:
			regs[dst] -= regs[src]
		case vmMUL:
			regs[dst] *= regs[src]
		case vmAND:
			regs[dst] &= regs[src]
		case vmJNZ:
			if regs[dst] != 0 {
				pc = int(imm)
				continue
			}
		}
		pc++
	}
}

// buildInterpreter assembles the x86 bytecode interpreter. Dispatch is a
// compare/jump-equal chain (not an indirect jump) so the DBrew rewriter and
// the lifter can follow it; with the program bytes known, every compare
// folds and the chain disappears from the residual code.
func buildInterpreter(b *asm.Builder) {
	loop, next, halt := b.NewLabel(), b.NewLabel(), b.NewLabel()
	handlers := make([]asm.Label, 8)
	for i := range handlers {
		handlers[i] = b.NewLabel()
	}
	// vmreg r0 = a, r1 = b; r10 = VM program counter (a host pointer).
	b.I(x86.MOV, x86.MemBD(8, x86.RDX, 0), x86.R64(x86.RDI))
	b.I(x86.MOV, x86.MemBD(8, x86.RDX, 8), x86.R64(x86.RSI))
	b.I(x86.MOV, x86.R64(x86.R10), x86.Imm(vmProgBase, 8))

	b.Bind(loop)
	// Fetch and crack the 8-byte instruction word.
	b.I(x86.MOV, x86.R64(x86.RAX), x86.MemBD(8, x86.R10, 0))
	b.I(x86.MOV, x86.R64(x86.RCX), x86.R64(x86.RAX)) // opcode
	b.I(x86.AND, x86.R64(x86.RCX), x86.Imm(0xFF, 8))
	b.I(x86.MOV, x86.R64(x86.R8), x86.R64(x86.RAX)) // dst byte offset
	b.I(x86.SHR, x86.R64(x86.R8), x86.Imm(8, 1))
	b.I(x86.AND, x86.R64(x86.R8), x86.Imm(7, 8))
	b.I(x86.SHL, x86.R64(x86.R8), x86.Imm(3, 1))
	b.I(x86.MOV, x86.R64(x86.R9), x86.R64(x86.RAX)) // src byte offset
	b.I(x86.SHR, x86.R64(x86.R9), x86.Imm(16, 1))
	b.I(x86.AND, x86.R64(x86.R9), x86.Imm(7, 8))
	b.I(x86.SHL, x86.R64(x86.R9), x86.Imm(3, 1))
	b.I(x86.MOV, x86.R64(x86.R11), x86.R64(x86.RAX)) // sign-extended imm
	b.I(x86.SAR, x86.R64(x86.R11), x86.Imm(32, 1))
	for op := 0; op < 8; op++ {
		b.I(x86.CMP, x86.R64(x86.RCX), x86.Imm(int64(op), 1))
		b.Jcc(x86.CondE, handlers[op])
	}
	b.Jmp(halt) // unreachable opcode: stop rather than run off

	b.Bind(handlers[vmHALT])
	b.Jmp(halt)
	b.Bind(handlers[vmLOADI])
	b.I(x86.MOV, x86.MemBIS(8, x86.RDX, x86.R8, 1, 0), x86.R64(x86.R11))
	b.Jmp(next)
	b.Bind(handlers[vmMOV])
	b.I(x86.MOV, x86.R64(x86.RAX), x86.MemBIS(8, x86.RDX, x86.R9, 1, 0))
	b.I(x86.MOV, x86.MemBIS(8, x86.RDX, x86.R8, 1, 0), x86.R64(x86.RAX))
	b.Jmp(next)
	for _, h := range []struct {
		op  int
		alu x86.Op
	}{{vmADD, x86.ADD}, {vmSUB, x86.SUB}, {vmMUL, x86.IMUL}, {vmAND, x86.AND}} {
		b.Bind(handlers[h.op])
		b.I(x86.MOV, x86.R64(x86.RAX), x86.MemBIS(8, x86.RDX, x86.R9, 1, 0))
		b.I(x86.MOV, x86.R64(x86.RCX), x86.MemBIS(8, x86.RDX, x86.R8, 1, 0))
		b.I(h.alu, x86.R64(x86.RCX), x86.R64(x86.RAX))
		b.I(x86.MOV, x86.MemBIS(8, x86.RDX, x86.R8, 1, 0), x86.R64(x86.RCX))
		b.Jmp(next)
	}
	b.Bind(handlers[vmJNZ])
	b.I(x86.MOV, x86.R64(x86.RAX), x86.MemBIS(8, x86.RDX, x86.R8, 1, 0))
	b.I(x86.CMP, x86.R64(x86.RAX), x86.Imm(0, 1))
	b.Jcc(x86.CondE, next)
	b.I(x86.SHL, x86.R64(x86.R11), x86.Imm(3, 1))
	b.I(x86.MOV, x86.R64(x86.R10), x86.Imm(vmProgBase, 8))
	b.I(x86.ADD, x86.R64(x86.R10), x86.R64(x86.R11))
	b.Jmp(loop)

	b.Bind(next)
	b.I(x86.ADD, x86.R64(x86.R10), x86.Imm(8, 8))
	b.Jmp(loop)

	b.Bind(halt)
	b.I(x86.MOV, x86.R64(x86.RAX), x86.MemBD(8, x86.RDX, 16)) // vmreg r2
	b.Ret()
}

func buildFutamuraImage() (*Image, error) {
	img, err := buildImage(buildInterpreter)
	if err != nil {
		return nil, err
	}
	if _, err := img.Mem.MapBytes(vmProgBase, vmProgramBytes(), "vmprog"); err != nil {
		return nil, err
	}
	return img, nil
}

// FutamuraSubject sweeps the interpreter itself (running the fixed program)
// through the standard oracle, so every execution path is held to
// bit-identical interpretation of the VM.
func FutamuraSubject() *Subject {
	return &Subject{
		Name:   "futamura-interp",
		Family: "futamura",
		Desc:   "bytecode-VM interpreter running a fixed 10-instruction program",
		Build:  buildFutamuraImage,
	}
}

// FutamuraReport is the specialization benchmark row.
type FutamuraReport struct {
	Inputs int `json:"inputs"` // randomized input pairs checked
	// Deterministic cycle counts (Haswell cost model) for one call.
	InterpCycles float64 `json:"interp_cycles"`
	SpecCycles   float64 `json:"spec_cycles"`
	SpecO3Cycles float64 `json:"spec_o3_cycles,omitempty"`
	// Speedup = InterpCycles / SpecCycles; the corpus gate requires >= 2.
	Speedup   float64 `json:"speedup"`
	SpeedupO3 float64 `json:"speedup_o3,omitempty"`
}

// futamuraInputs is the randomized sweep: boundary pairs plus seeded-random
// 64-bit values (fixed seed — the corpus is deterministic end to end).
func futamuraInputs() [][2]uint64 {
	in := [][2]uint64{{0, 0}, {1, 1}, {0xFFFF_FFFF_FFFF_FFFF, 2}, {3, 0x8000_0000_0000_0000}}
	r := rand.New(rand.NewSource(0x5EED))
	for i := 0; i < 16; i++ {
		in = append(in, [2]uint64{r.Uint64(), r.Uint64()})
	}
	return in
}

// cycleCount runs entry on the interpreter and returns (ret, cycles) under
// the deterministic cost model.
func cycleCount(img *Image, entry uint64, in [2]uint64) (uint64, float64, error) {
	if err := zeroScratch(img.Mem, img.Scratch); err != nil {
		return 0, 0, err
	}
	m := emu.NewMachine(img.Mem)
	m.Interp = true
	ret, err := m.Call(entry, emu.CallArgs{Ints: []uint64{in[0], in[1], img.Scratch}}, 5_000_000)
	if err != nil {
		return 0, 0, err
	}
	return ret, m.Cycles, nil
}

// RunFutamura performs the first Futamura projection — specialize the
// interpreter against the fixed program via SetMem — and verifies the
// residual function against plain interpretation and the Go semantic model
// on every randomized input, then measures the cycle-count speedup. Any
// disagreement or a rewriter fallback is an error: the stress workload
// exists to prove the specializer handles an interpreter loop.
func RunFutamura() (*FutamuraReport, error) {
	img, err := buildFutamuraImage()
	if err != nil {
		return nil, err
	}
	prog := vmProgram()

	rw := dbrew.NewRewriter(img.Mem, img.Entry, img.Sig)
	rw.SetMem(vmProgBase, vmProgBase+uint64(8*len(prog)))
	specEntry, err := rw.Rewrite()
	if err != nil {
		return nil, fmt.Errorf("futamura: specialize: %v", err)
	}
	if rw.Stats.Failed {
		return nil, fmt.Errorf("futamura: rewriter fell back: %v", rw.Stats.Err)
	}

	// Optional second stage: lift the residual code and push it through O3.
	var o3Entry uint64
	l := lift.New(img.Mem, lift.DefaultOptions())
	if f, lerr := l.LiftFunc(specEntry, "fut3", img.Sig); lerr == nil {
		cfg := opt.O3()
		cfg.FastMath = false
		opt.Optimize(f, cfg)
		comp := jit.NewCompiler(img.Mem)
		comp.NamePrefix = "futamura."
		if e, cerr := comp.CompileModule(l.Module, f.Nam); cerr == nil {
			o3Entry = e
		}
	}

	rep := &FutamuraReport{}
	for _, in := range futamuraInputs() {
		want := vmEval(prog, in[0], in[1])
		ref, refCycles, err := cycleCount(img, img.Entry, in)
		if err != nil {
			return nil, fmt.Errorf("futamura: interpret (%#x,%#x): %v", in[0], in[1], err)
		}
		if ref != want {
			return nil, fmt.Errorf("futamura: x86 interpreter disagrees with VM model on (%#x,%#x): got %#x, want %#x",
				in[0], in[1], ref, want)
		}
		got, specCycles, err := cycleCount(img, specEntry, in)
		if err != nil {
			return nil, fmt.Errorf("futamura: specialized (%#x,%#x): %v", in[0], in[1], err)
		}
		if got != want {
			return nil, fmt.Errorf("futamura: specialized code wrong on (%#x,%#x): got %#x, want %#x",
				in[0], in[1], got, want)
		}
		if o3Entry != 0 {
			got3, o3Cycles, err := cycleCount(img, o3Entry, in)
			if err != nil {
				return nil, fmt.Errorf("futamura: spec+O3 (%#x,%#x): %v", in[0], in[1], err)
			}
			if got3 != want {
				return nil, fmt.Errorf("futamura: spec+O3 wrong on (%#x,%#x): got %#x, want %#x",
					in[0], in[1], got3, want)
			}
			rep.SpecO3Cycles = o3Cycles
		}
		rep.Inputs++
		rep.InterpCycles, rep.SpecCycles = refCycles, specCycles
	}
	rep.Speedup = rep.InterpCycles / rep.SpecCycles
	if rep.SpecO3Cycles != 0 {
		rep.SpeedupO3 = rep.InterpCycles / rep.SpecO3Cycles
	}
	return rep, nil
}
