package corpus

// The subject registry. Every subject is a small function with the uniform
// signature f(a i64, b i64, scratch ptr) -> i64 that leans hard on one
// compiler idiom the rewriting pipeline historically sidestepped. Subjects
// derive all state from the arguments and the zeroed scratch window, so the
// oracle's runs are reproducible and every architectural effect lands in
// the (ret, scratch) outcome the oracle compares.

import (
	"encoding/binary"
	"fmt"

	"repro/internal/emu"
	"repro/internal/x86"
	"repro/internal/x86/asm"
)

// subjectBase is where subject code is mapped; far from the rewriter's own
// allocation range so installed artifacts never alias it.
const subjectBase = 0x400000

// defaultInputs covers boundary shapes: zeros, small values, all low-bit
// selector classes (for subjects that index tables by a&3 or a&1), large
// magnitudes, and sign-bit patterns.
var defaultInputs = [][2]uint64{
	{0, 0},
	{1, 1},
	{2, 3},
	{3, 0xFF},
	{4, 2},
	{7, 13},
	{5, 0x8000_0000_0000_0001},
	{0xFFFF_FFFF_FFFF_FFFF, 5},
	{123456789, 987654321},
}

// buildImage assembles body at subjectBase, allocates the scratch window,
// and wraps both in a fresh address space.
func buildImage(body func(b *asm.Builder)) (*Image, error) {
	b := asm.NewBuilder()
	body(b)
	code, _, err := b.Assemble(subjectBase)
	if err != nil {
		return nil, err
	}
	return placeImage(code)
}

func placeImage(code []byte) (*Image, error) {
	mem := emu.NewMemory(0x10000000)
	if _, err := mem.MapBytes(subjectBase, code, "subject"); err != nil {
		return nil, err
	}
	scratch := mem.Alloc(scratchSize, 64, "scratch")
	return &Image{
		Mem:     mem,
		Entry:   subjectBase,
		Scratch: scratch.Start,
		Sig:     defaultSig,
		Inputs:  defaultInputs,
	}, nil
}

// Subjects returns the full registry in scorecard row order.
func Subjects() []*Subject {
	return []*Subject{
		jumpTableSubject(),
		computedGotoSubject(),
		irreducibleSubject(),
		varargsSubject(),
		byvalSubject(),
		unalignedSSESubject(),
		repStringSubject(),
		picRIPRelSubject(),
		FutamuraSubject(),
	}
}

// jumpTableSubject dispatches through a 4-entry jump table materialized in
// scratch memory — the switch-statement lowering pattern. The table is
// built at runtime (MovLabel stores), so the indirect jmp's targets are
// data, invisible to any static scan.
func jumpTableSubject() *Subject {
	return &Subject{
		Name:   "jumptable",
		Family: "jump-table",
		Desc:   "4-way switch via in-memory jump table; indirect jmp [rdx+r8*8+192]",
		Build: func() (*Image, error) {
			return buildImage(func(b *asm.Builder) {
				c0, c1, c2, c3 := b.NewLabel(), b.NewLabel(), b.NewLabel(), b.NewLabel()
				done := b.NewLabel()
				b.I(x86.MOV, x86.R64(x86.RAX), x86.R64(x86.RDI))
				b.I(x86.MOV, x86.R64(x86.RCX), x86.R64(x86.RSI))
				// Build the table at [rdx+192..224).
				for i, lbl := range []asm.Label{c0, c1, c2, c3} {
					b.MovLabel(x86.R11, lbl)
					b.I(x86.MOV, x86.MemBD(8, x86.RDX, int32(192+8*i)), x86.R64(x86.R11))
				}
				b.I(x86.MOV, x86.R64(x86.R8), x86.R64(x86.RDI))
				b.I(x86.AND, x86.R64(x86.R8), x86.Imm(3, 8))
				b.I(x86.JMPIndirect, x86.MemBIS(8, x86.RDX, x86.R8, 8, 192))
				b.Bind(c0)
				b.I(x86.ADD, x86.R64(x86.RAX), x86.R64(x86.RCX))
				b.Jmp(done)
				b.Bind(c1)
				b.I(x86.XOR, x86.R64(x86.RAX), x86.R64(x86.RCX))
				b.Jmp(done)
				b.Bind(c2)
				b.I(x86.SUB, x86.R64(x86.RAX), x86.R64(x86.RCX))
				b.Jmp(done)
				b.Bind(c3)
				b.I(x86.IMUL, x86.R64(x86.RAX), x86.R64(x86.RCX))
				b.Bind(done)
				b.Ret()
			})
		},
	}
}

// computedGotoSubject is the threaded-interpreter dispatch shape: a loop
// whose every iteration indirect-jumps through a 2-entry table selected by
// a data-dependent bit, so the branch target changes between iterations.
func computedGotoSubject() *Subject {
	return &Subject{
		Name:   "computed-goto",
		Family: "jump-table",
		Desc:   "threaded dispatch loop: per-iteration indirect jmp via [rdx+r11*8+160]",
		Build: func() (*Image, error) {
			return buildImage(func(b *asm.Builder) {
				t0, t1 := b.NewLabel(), b.NewLabel()
				loop, done := b.NewLabel(), b.NewLabel()
				b.I(x86.MOV, x86.R64(x86.RAX), x86.R64(x86.RDI))
				b.I(x86.MOV, x86.R64(x86.RCX), x86.Imm(6, 8))
				for i, lbl := range []asm.Label{t0, t1} {
					b.MovLabel(x86.R9, lbl)
					b.I(x86.MOV, x86.MemBD(8, x86.RDX, int32(160+8*i)), x86.R64(x86.R9))
				}
				b.Bind(loop)
				b.I(x86.CMP, x86.R64(x86.RCX), x86.Imm(0, 1))
				b.Jcc(x86.CondE, done)
				b.I(x86.MOV, x86.R64(x86.R11), x86.R64(x86.RAX))
				b.I(x86.AND, x86.R64(x86.R11), x86.Imm(1, 8))
				b.I(x86.JMPIndirect, x86.MemBIS(8, x86.RDX, x86.R11, 8, 160))
				b.Bind(t0) // even accumulator: fold in b
				b.I(x86.ADD, x86.R64(x86.RAX), x86.R64(x86.RSI))
				b.I(x86.SUB, x86.R64(x86.RCX), x86.Imm(1, 8))
				b.Jmp(loop)
				b.Bind(t1) // odd accumulator: scramble
				b.I(x86.XOR, x86.R64(x86.RAX), x86.Imm(0x3C5A, 8))
				b.I(x86.ADD, x86.R64(x86.RAX), x86.Imm(1, 8))
				b.I(x86.SUB, x86.R64(x86.RCX), x86.Imm(1, 8))
				b.Jmp(loop)
				b.Bind(done)
				b.Ret()
			})
		},
	}
}

// irreducibleSubject enters a loop at two different points: the preheader
// conditionally jumps into the loop's middle, while the back edge targets
// its top. The resulting region has two entries — irreducible, so it cannot
// be expressed as natural loops and defeats interval-based loop analyses.
func irreducibleSubject() *Subject {
	return &Subject{
		Name:   "irreducible",
		Family: "irreducible-cfg",
		Desc:   "two-entry loop: preheader jumps into the middle, back edge to the top",
		Build: func() (*Image, error) {
			return buildImage(func(b *asm.Builder) {
				entryA, entryB := b.NewLabel(), b.NewLabel()
				b.I(x86.MOV, x86.R64(x86.RAX), x86.R64(x86.RDI))
				b.I(x86.MOV, x86.R64(x86.RCX), x86.Imm(8, 8))
				b.I(x86.MOV, x86.R64(x86.R8), x86.R64(x86.RSI))
				b.I(x86.AND, x86.R64(x86.R8), x86.Imm(1, 8))
				b.I(x86.CMP, x86.R64(x86.R8), x86.Imm(0, 1))
				b.Jcc(x86.CondNE, entryB) // odd b: enter the loop mid-body
				b.Bind(entryA)
				b.I(x86.ADD, x86.R64(x86.RAX), x86.R64(x86.RSI))
				b.Bind(entryB)
				b.I(x86.XOR, x86.R64(x86.RAX), x86.R64(x86.RCX))
				b.I(x86.SUB, x86.R64(x86.RCX), x86.Imm(1, 8))
				b.I(x86.CMP, x86.R64(x86.RCX), x86.Imm(0, 1))
				b.Jcc(x86.CondNE, entryA)
				b.Ret()
			})
		},
	}
}

// varargsSubject models the va_start/va_arg lowering: register arguments
// spill to an in-memory save area, then a data-dependent count walks the
// area as an array — the access pattern that makes argument registers
// observable through memory.
func varargsSubject() *Subject {
	return &Subject{
		Name:   "varargs",
		Family: "abi-varargs",
		Desc:   "register save area at [rdx+128..); count=(a&3)+1 entries summed via indexed loads",
		Build: func() (*Image, error) {
			return buildImage(func(b *asm.Builder) {
				loop, done := b.NewLabel(), b.NewLabel()
				// Spill the "variadic" arguments.
				b.I(x86.MOV, x86.MemBD(8, x86.RDX, 128), x86.R64(x86.RDI))
				b.I(x86.MOV, x86.MemBD(8, x86.RDX, 136), x86.R64(x86.RSI))
				b.I(x86.MOV, x86.R64(x86.R11), x86.Imm(0x11_2233_4455, 8))
				b.I(x86.MOV, x86.MemBD(8, x86.RDX, 144), x86.R64(x86.R11))
				b.I(x86.MOV, x86.R64(x86.R11), x86.Imm(0x77, 8))
				b.I(x86.MOV, x86.MemBD(8, x86.RDX, 152), x86.R64(x86.R11))
				// count = (a & 3) + 1
				b.I(x86.MOV, x86.R64(x86.RCX), x86.R64(x86.RDI))
				b.I(x86.AND, x86.R64(x86.RCX), x86.Imm(3, 8))
				b.I(x86.ADD, x86.R64(x86.RCX), x86.Imm(1, 8))
				b.I(x86.XOR, x86.R64(x86.RAX), x86.R64(x86.RAX))
				b.I(x86.XOR, x86.R64(x86.R8), x86.R64(x86.R8))
				b.Bind(loop)
				b.I(x86.CMP, x86.R64(x86.R8), x86.R64(x86.RCX))
				b.Jcc(x86.CondGE, done)
				b.I(x86.MOV, x86.R64(x86.R11), x86.MemBIS(8, x86.RDX, x86.R8, 8, 128))
				b.I(x86.ADD, x86.R64(x86.RAX), x86.R64(x86.R11))
				b.I(x86.ADD, x86.R64(x86.R8), x86.Imm(1, 8))
				b.Jmp(loop)
				b.Bind(done)
				b.Ret()
			})
		},
	}
}

// byvalSubject passes a 3-field struct by value on the stack to a callee
// that reads it rsp-relative across the return address — the memory-passed
// aggregate ABI shape. RSP-relative addressing inside an inlined call is
// exactly what DBrew's rewriter must refuse rather than mistranslate.
func byvalSubject() *Subject {
	return &Subject{
		Name:   "byval",
		Family: "abi-byval",
		Desc:   "struct{a,b,7} passed by value on the stack; callee reads [rsp+8..32)",
		Build: func() (*Image, error) {
			return buildImage(func(b *asm.Builder) {
				callee := b.NewLabel()
				b.I(x86.SUB, x86.R64(x86.RSP), x86.Imm(32, 8))
				b.I(x86.MOV, x86.MemBD(8, x86.RSP, 0), x86.R64(x86.RDI))
				b.I(x86.MOV, x86.MemBD(8, x86.RSP, 8), x86.R64(x86.RSI))
				b.I(x86.MOV, x86.R64(x86.R11), x86.Imm(7, 8))
				b.I(x86.MOV, x86.MemBD(8, x86.RSP, 16), x86.R64(x86.R11))
				b.CallLabel(callee)
				b.I(x86.ADD, x86.R64(x86.RSP), x86.Imm(32, 8))
				b.Ret()
				b.Bind(callee)
				// The struct sits just above the return address.
				b.I(x86.MOV, x86.R64(x86.RAX), x86.MemBD(8, x86.RSP, 8))
				b.I(x86.MOV, x86.R64(x86.R8), x86.MemBD(8, x86.RSP, 16))
				b.I(x86.ADD, x86.R64(x86.RAX), x86.R64(x86.R8))
				b.I(x86.MOV, x86.R64(x86.R8), x86.MemBD(8, x86.RSP, 24))
				b.I(x86.IMUL, x86.R64(x86.RAX), x86.R64(x86.R8))
				b.Ret()
			})
		},
	}
}

// unalignedSSESubject does 16-byte SSE loads and stores at 4-byte-offset
// (misaligned) addresses straddling adjacent scratch slots — legal only for
// the unaligned move forms, and a classic source of rewriter bugs when an
// alignment assumption sneaks into the translated access.
func unalignedSSESubject() *Subject {
	return &Subject{
		Name:   "unaligned-sse",
		Family: "unaligned-sse",
		Desc:   "movups/paddq on addresses at +4/+12 bytes, straddling slot boundaries",
		Build: func() (*Image, error) {
			return buildImage(func(b *asm.Builder) {
				b.I(x86.MOV, x86.MemBD(8, x86.RDX, 0), x86.R64(x86.RDI))
				b.I(x86.MOV, x86.MemBD(8, x86.RDX, 8), x86.R64(x86.RSI))
				b.I(x86.MOV, x86.R64(x86.R11), x86.R64(x86.RDI))
				b.I(x86.XOR, x86.R64(x86.R11), x86.R64(x86.RSI))
				b.I(x86.MOV, x86.MemBD(8, x86.RDX, 16), x86.R64(x86.R11))
				b.I(x86.MOVUPS, x86.X(x86.XMM0), x86.MemBD(16, x86.RDX, 4))
				b.I(x86.MOVUPS, x86.X(x86.XMM1), x86.MemBD(16, x86.RDX, 12))
				b.I(x86.PADDQ, x86.X(x86.XMM0), x86.X(x86.XMM1))
				b.I(x86.MOVUPS, x86.MemBD(16, x86.RDX, 32), x86.X(x86.XMM0))
				b.I(x86.MOV, x86.R64(x86.RAX), x86.MemBD(8, x86.RDX, 32))
				b.I(x86.MOV, x86.R64(x86.R8), x86.MemBD(8, x86.RDX, 40))
				b.I(x86.XOR, x86.R64(x86.RAX), x86.R64(x86.R8))
				b.Ret()
			})
		},
	}
}

// repStringSubject uses the rep-prefixed string instructions — an implicit
// rcx/rsi/rdi loop in a single instruction, with memory effects whose size
// is data-independent here but whose semantics (pointer advancement, byte
// granularity) the pipeline must model exactly.
func repStringSubject() *Subject {
	return &Subject{
		Name:   "rep-string",
		Family: "rep-string",
		Desc:   "rep movsb block copy + rep stosb fill, results folded from the copied bytes",
		Build: func() (*Image, error) {
			return buildImage(func(b *asm.Builder) {
				b.I(x86.MOV, x86.MemBD(8, x86.RDX, 0), x86.R64(x86.RDI))
				b.I(x86.MOV, x86.MemBD(8, x86.RDX, 8), x86.R64(x86.RSI))
				// rep movsb: copy 16 bytes scratch[0..16) -> scratch[64..80).
				b.I(x86.LEA, x86.R64(x86.RSI), x86.MemBD(8, x86.RDX, 0))
				b.I(x86.LEA, x86.R64(x86.RDI), x86.MemBD(8, x86.RDX, 64))
				b.I(x86.MOV, x86.R64(x86.RCX), x86.Imm(16, 8))
				b.I(x86.REPMOVSB)
				// rep stosb: fill scratch[96..104) with 0x5A.
				b.I(x86.MOV, x86.R64(x86.RAX), x86.Imm(0x5A, 8))
				b.I(x86.LEA, x86.R64(x86.RDI), x86.MemBD(8, x86.RDX, 96))
				b.I(x86.MOV, x86.R64(x86.RCX), x86.Imm(8, 8))
				b.I(x86.REPSTOSB)
				b.I(x86.MOV, x86.R64(x86.RAX), x86.MemBD(8, x86.RDX, 64))
				b.I(x86.MOV, x86.R64(x86.R8), x86.MemBD(8, x86.RDX, 72))
				b.I(x86.ADD, x86.R64(x86.RAX), x86.R64(x86.R8))
				b.I(x86.MOV, x86.R64(x86.R8), x86.MemBD(8, x86.RDX, 96))
				b.I(x86.XOR, x86.R64(x86.RAX), x86.R64(x86.R8))
				b.Ret()
			})
		},
	}
}

// picRIPRelSubject loads two constants through RIP-relative addressing —
// the position-independent-code data access pattern. Any path that moves
// the code (fastpath copy, DBrew emit) must retarget the displacements or
// decline; copying the bytes verbatim silently reads the wrong address.
func picRIPRelSubject() *Subject {
	return &Subject{
		Name:   "pic-riprel",
		Family: "pic-riprel",
		Desc:   "two RIP-relative constant loads; constants live just past RET",
		Build: func() (*Image, error) {
			e := x86.Encoder{PC: subjectBase}
			// Layout (fixed lengths): mov(7) mov(7) add(3) add(3) xor(3)
			// ret(1) = 24 bytes, constants at +24 and +32.
			for _, in := range []x86.Inst{
				{Op: x86.MOV, Dst: x86.R64(x86.RAX), Src: x86.MemRIP(8, 24-7)},
				{Op: x86.MOV, Dst: x86.R64(x86.R8), Src: x86.MemRIP(8, 32-14)},
				{Op: x86.ADD, Dst: x86.R64(x86.RAX), Src: x86.R64(x86.R8)},
				{Op: x86.ADD, Dst: x86.R64(x86.RAX), Src: x86.R64(x86.RDI)},
				{Op: x86.XOR, Dst: x86.R64(x86.RAX), Src: x86.R64(x86.RSI)},
				{Op: x86.RET},
			} {
				if err := e.Encode(in); err != nil {
					return nil, err
				}
			}
			if len(e.Buf) != 24 {
				return nil, fmt.Errorf("pic-riprel: code is %d bytes, layout expects 24", len(e.Buf))
			}
			code := binary.LittleEndian.AppendUint64(e.Buf, 0x1111_2222_3333_4444)
			code = binary.LittleEndian.AppendUint64(code, 0x0F0F_F0F0_5A5A_A5A5)
			return placeImage(code)
		},
	}
}
