package corpus

import (
	"os"
	"testing"
)

// TestCorpusNoWrongCode is the central gate: every subject through every
// execution path, no silent wrong code anywhere. Fallback and unsupported
// are acceptable classified outcomes; divergence never is.
func TestCorpusNoWrongCode(t *testing.T) {
	rows, err := RunAll(Subjects())
	if err != nil {
		t.Fatal(err)
	}
	families := map[string]bool{}
	for _, r := range rows {
		families[r.Family] = true
		for _, p := range r.Paths {
			t.Logf("%-16s %-14s %-11s %s", r.Subject, p.Path, p.Verdict, p.Detail)
			if p.Verdict == VerdictWrong {
				t.Errorf("%s/%s: WRONG CODE: %s", r.Subject, p.Path, p.Detail)
			}
		}
		if len(r.Paths) != len(PathNames()) {
			t.Errorf("%s: %d paths, want %d", r.Subject, len(r.Paths), len(PathNames()))
		}
	}
	if len(families) < 6 {
		t.Errorf("corpus covers %d idiom families, want >= 6", len(families))
	}
	if len(PathNames()) < 5 {
		t.Errorf("corpus sweeps %d paths, want >= 5", len(PathNames()))
	}
}

// TestFutamuraProjection gates the specialization stress workload: the
// rewriter must compile the interpreter+program pair, agree with plain
// interpretation on every randomized input, and clear the 2x speedup bar.
func TestFutamuraProjection(t *testing.T) {
	rep, err := RunFutamura()
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("futamura: inputs=%d interp=%.0fcy spec=%.0fcy (%.2fx) specO3=%.0fcy (%.2fx)",
		rep.Inputs, rep.InterpCycles, rep.SpecCycles, rep.Speedup, rep.SpecO3Cycles, rep.SpeedupO3)
	if rep.Inputs < 20 {
		t.Errorf("swept %d inputs, want >= 20", rep.Inputs)
	}
	if rep.Speedup < 2 {
		t.Errorf("specialization speedup %.2fx, want >= 2x", rep.Speedup)
	}
}

// TestScorecardAgainstCommitted regenerates the scorecard and diffs it
// against the committed BENCH_coverage.json: any wrong verdict or any
// pass -> fallback/unsupported regression fails. This is what `make corpus`
// runs.
func TestScorecardAgainstCommitted(t *testing.T) {
	if testing.Short() {
		t.Skip("full corpus run; skipped in -short")
	}
	fresh, err := BuildScorecard()
	if err != nil {
		t.Fatal(err)
	}
	for _, msg := range fresh.Gate() {
		t.Error(msg)
	}
	data, err := os.ReadFile("../../BENCH_coverage.json")
	if err != nil {
		t.Fatalf("committed scorecard missing (regenerate with `stencilbench -fig coverage > BENCH_coverage.json`): %v", err)
	}
	committed, err := DecodeScorecard(data)
	if err != nil {
		t.Fatal(err)
	}
	for _, msg := range CompareScorecards(committed, fresh) {
		t.Errorf("coverage regression: %s", msg)
	}
}
