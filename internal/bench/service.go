package bench

import "repro/internal/abi"

// SpecInput names one Section VI specialization as Engine/Rewriter inputs:
// the kernel entry, its ABI signature, and the serialized stencil the
// specialization fixes parameter 0 to. It is how the dbrewd service layer
// (and its round-trip benchmark and smoke mode) reuses the paper's
// workload without depending on this package's preparation machinery.
type SpecInput struct {
	Entry       uint64
	Sig         abi.Signature
	StencilAddr uint64
	StencilSize int
}

// SpecInput returns the specialization inputs for a (kind, structure, mode)
// combination — the same selection Prepare makes internally.
func (w *Workload) SpecInput(kind Kind, s Structure, mode Mode) SpecInput {
	entry, sAddr, fullSize, _ := w.inputFor(kind, s, mode)
	return SpecInput{Entry: entry, Sig: sigFor(kind), StencilAddr: sAddr, StencilSize: fullSize}
}
