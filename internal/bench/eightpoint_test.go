package bench

import (
	"testing"

	"repro/internal/stencil"
)

// TestEightPointAllModes runs the 8-point stencil (two coefficient groups,
// diagonal taps) through every generic mode: this exercises multi-group
// sorted loops, 8-way unrolling under parameter fixation, and DBrew's
// recursive pointer following over two group records.
func TestEightPointAllModes(t *testing.T) {
	w, err := NewWorkloadStencil(33, stencil.EightPoint())
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range []Kind{Element, Line} {
		for _, s := range []Structure{Flat, Sorted} {
			for _, mode := range AllModes {
				v, err := w.Prepare(kind, s, mode, Options{})
				if err != nil {
					t.Errorf("%v/%v/%v: prepare: %v", kind, s, mode, err)
					continue
				}
				m, err := w.MeasureRows(v, 2)
				if err != nil {
					t.Errorf("%v/%v/%v: %v", kind, s, mode, err)
					continue
				}
				t.Logf("%v/%-12v/%-10v: %6.2f cyc/elem (%s)", kind, s, mode, m.CyclesPerElem, v.Notes)
			}
		}
	}
}

// TestEightPointSpecializationShape: the sorted structure's advantage (one
// multiply per group) must show under DBrew with two groups.
func TestEightPointSpecializationShape(t *testing.T) {
	w, err := NewWorkloadStencil(33, stencil.EightPoint())
	if err != nil {
		t.Fatal(err)
	}
	get := func(s Structure, m Mode) float64 {
		v, err := w.Prepare(Element, s, m, Options{})
		if err != nil {
			t.Fatalf("%v/%v: %v", s, m, err)
		}
		meas, err := w.MeasureRows(v, 2)
		if err != nil {
			t.Fatalf("%v/%v: %v", s, m, err)
		}
		return meas.CyclesPerElem
	}
	flatDBrew := get(Flat, DBrew)
	sortedDBrew := get(Sorted, DBrew)
	if sortedDBrew >= flatDBrew {
		t.Errorf("sorted DBrew (%.2f) should beat flat DBrew (%.2f): 2 multiplies vs 8", sortedDBrew, flatDBrew)
	}
	flatNative := get(Flat, Native)
	flatFix := get(Flat, LLVMFix)
	if flatFix >= flatNative/2 {
		t.Errorf("8-point flat LLVM-fix (%.2f) should strongly improve on native (%.2f)", flatFix, flatNative)
	}
}
