package bench

import (
	"fmt"
	"math"
	"strings"
	"time"

	"repro/internal/emu"
	"repro/internal/fastpath"
	"repro/internal/opt"
	"repro/internal/tier"
)

// Tiering promotion thresholds for the experiment: warm after 16 calls,
// hot after 128 — small enough that modest call counts exercise every tier.
const (
	tieringT1 = 16
	tieringT2 = 128
)

// TieringRow compares total cost at one call count: one-shot pays the full
// DBrew+O3 transformation up front, tiered starts interpreting and invests
// compile time only as hotness proves it worthwhile. Totals combine the
// wall-clock transformation time with the modelled execution time of every
// call (cycles at the Haswell model clock) — the paper's Figure 10 framing
// of compile time against run time.
type TieringRow struct {
	Calls        int
	OneShotTotal time.Duration
	TieredTotal  time.Duration
	FinalLevel   tier.Level
	Promotions   [tier.NumLevels]uint64
	// SteadyRatio is the tiered per-call time at the final installed tier
	// over the one-shot per-call time (1.0 = converged; large at low call
	// counts where tiering intentionally never compiled).
	SteadyRatio float64
}

// TieringResult carries the sweep plus the per-call numbers behind it.
type TieringResult struct {
	Rows []TieringRow
	// Tier0PerCall/Tier2PerCall are the modelled per-call times of the
	// interpreted original and the fully optimized specialization.
	Tier0PerCall time.Duration
	Tier2PerCall time.Duration
	// OneShotCompile is the cold DBrew+O3 transformation time.
	OneShotCompile time.Duration
	// BreakEvenCalls estimates the call count where the one-shot compile
	// amortizes against interpreting: compile / (tier0 - tier2) per-call.
	BreakEvenCalls int
	// EmuInsts and Elapsed measure the emulator's share of the sweep:
	// instructions retired across every interpreted call (all tiers and the
	// per-call calibration runs) against the experiment's wall clock.
	EmuInsts uint64
	Elapsed  time.Duration

	// Tier-1 backend comparison over the same entry: the legacy lift+O1
	// pipeline against the fastpath single-pass baseline that tiering now
	// uses by default. Compile times are wall clock, per-call times use the
	// cycle model, and the break-evens estimate the call count where each
	// tier-1 compile amortizes against staying interpreted.
	LegacyT1Compile     time.Duration
	FastpathT1Compile   time.Duration
	LegacyT1PerCall     time.Duration
	FastpathT1PerCall   time.Duration
	FastpathT1Mode      string
	LegacyT1BreakEven   int
	FastpathT1BreakEven int
}

// RunTiering sweeps the element-kernel (flat structure) specialization over
// the given call counts, comparing one-shot O3 against tiered execution
// (tier 0 interpret → tier 1 lift+O1 at 16 calls → tier 2 DBrew+O3 at 128
// calls, synchronous promotions so the accounting is exact). Every tiered
// run verifies its results against the Go reference.
func (w *Workload) RunTiering(callCounts []int) (*TieringResult, error) {
	if len(callCounts) == 0 {
		callCounts = []int{1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000}
	}
	entry, sAddr, fullSize, _ := w.inputFor(Element, Flat, DBrewLLVM)
	startInsts := emu.TotalRetired()
	start := time.Now()

	// One-shot reference: cold full transformation plus its per-call time.
	oneShot, err := w.Prepare(Element, Flat, DBrewLLVM, Options{})
	if err != nil {
		return nil, fmt.Errorf("bench: one-shot prepare: %w", err)
	}
	oneShotPerCall, err := w.perCallTime(oneShot.Entry)
	if err != nil {
		return nil, fmt.Errorf("bench: one-shot measure: %w", err)
	}
	tier0PerCall, err := w.perCallTime(entry)
	if err != nil {
		return nil, fmt.Errorf("bench: tier0 measure: %w", err)
	}

	res := &TieringResult{
		Tier0PerCall:   tier0PerCall,
		Tier2PerCall:   oneShotPerCall,
		OneShotCompile: oneShot.CompileTime,
	}
	if d := tier0PerCall - oneShotPerCall; d > 0 {
		res.BreakEvenCalls = int(float64(oneShot.CompileTime) / float64(d))
	}

	// Tier-1 backend comparison: compile the same entry with the legacy
	// lift+O1 pipeline and with the fastpath baseline, and measure both
	// compile cost and resulting per-call time.
	legacyT1, err := w.Prepare(Element, Flat, LLVM, Options{
		PipelineMod: func(c *opt.Config) { *c = opt.O1() },
	})
	if err != nil {
		return nil, fmt.Errorf("bench: legacy tier1 prepare: %w", err)
	}
	fpStart := time.Now()
	fpRes, err := fastpath.Compile(w.Mem, entry, "elem.t1", sigFor(Element), fastpath.Options{NamePrefix: "bench."})
	if err != nil {
		return nil, fmt.Errorf("bench: fastpath tier1 compile: %w", err)
	}
	res.FastpathT1Compile = time.Since(fpStart)
	res.LegacyT1Compile = legacyT1.CompileTime
	res.FastpathT1Mode = fpRes.Mode.String()
	if res.LegacyT1PerCall, err = w.perCallTime(legacyT1.Entry); err != nil {
		return nil, fmt.Errorf("bench: legacy tier1 measure: %w", err)
	}
	if res.FastpathT1PerCall, err = w.perCallTime(fpRes.Entry); err != nil {
		return nil, fmt.Errorf("bench: fastpath tier1 measure: %w", err)
	}
	if d := tier0PerCall - res.LegacyT1PerCall; d > 0 {
		res.LegacyT1BreakEven = int(float64(res.LegacyT1Compile) / float64(d))
	}
	if d := tier0PerCall - res.FastpathT1PerCall; d > 0 {
		res.FastpathT1BreakEven = int(float64(res.FastpathT1Compile) / float64(d))
	}

	for _, calls := range callCounts {
		row, err := w.runTieredOnce(entry, sAddr, fullSize, calls, oneShot.CompileTime, oneShotPerCall)
		if err != nil {
			return nil, fmt.Errorf("bench: tiered run (%d calls): %w", calls, err)
		}
		res.Rows = append(res.Rows, *row)
	}
	res.EmuInsts = emu.TotalRetired() - startInsts
	res.Elapsed = time.Since(start)
	return res, nil
}

// runTieredOnce executes one cold tiered session of the given length and
// totals its cost against the one-shot numbers.
func (w *Workload) runTieredOnce(entry, sAddr uint64, fullSize, calls int, oneShotCompile, oneShotPerCall time.Duration) (*TieringRow, error) {
	mgr := tier.NewManager(w.Mem, tier.Config{
		Tier1Calls:  tieringT1,
		Tier2Calls:  tieringT2,
		Synchronous: true,
	})
	f, err := mgr.Register(tier.FuncSpec{
		Name:   "flat_elem",
		Entry:  entry,
		Fixed:  []tier.FixedArg{{Idx: 0, Val: sAddr}},
		Ranges: []tier.Range{{Start: sAddr, End: sAddr + uint64(fullSize)}},
		Compile: func(target tier.Level) (tier.CompileResult, error) {
			switch target {
			case tier.Tier1:
				// The default tier-1 backend: fastpath single-pass baseline,
				// matching what Rewriter.Tiered installs.
				res, err := fastpath.Compile(w.Mem, entry, "flat_elem.t1", sigFor(Element), fastpath.Options{NamePrefix: "tb."})
				if err != nil {
					return tier.CompileResult{}, err
				}
				return tier.CompileResult{Entry: res.Entry, CodeSize: res.CodeSize}, nil
			case tier.Tier2:
				v, err := w.Prepare(Element, Flat, DBrewLLVM, Options{})
				if err != nil {
					return tier.CompileResult{}, err
				}
				return tier.CompileResult{Entry: v.Entry, CodeSize: v.CodeSize}, nil
			}
			return tier.CompileResult{}, fmt.Errorf("no compiler for %v", target)
		},
	})
	if err != nil {
		return nil, err
	}

	n := w.SZ - 2
	row := 1
	ref := w.M1.Slice()
	for i := 0; i < calls; i++ {
		col := 1 + i%n
		idx := uint64(row*w.SZ + col)
		if _, err := f.Call([]uint64{0, w.M1.Region.Start, w.M2.Region.Start, idx}, nil); err != nil {
			return nil, fmt.Errorf("call %d (at %v): %w", i, f.Level(), err)
		}
		// Verify against the Go reference: tiering must never trade
		// correctness for speed, at any tier or promotion boundary.
		want := w.Stencil.Apply(ref, w.SZ, int(idx))
		if got := w.M2.Get(row, col); math.Abs(got-want) > 1e-9 {
			return nil, fmt.Errorf("call %d (at %v): element (%d,%d) = %g, want %g",
				i, f.Level(), row, col, got, want)
		}
	}

	st := f.Stats()
	clk := emu.HaswellModel().ClockHz
	modelled := time.Duration(float64(st.Cycles) / clk * float64(time.Second))
	out := &TieringRow{
		Calls:        calls,
		OneShotTotal: oneShotCompile + time.Duration(calls)*oneShotPerCall,
		TieredTotal:  modelled + st.CompileTime,
		FinalLevel:   st.Level,
		Promotions:   st.Promotions,
	}
	finalPerCall, err := w.perCallTime(st.Entry)
	if err != nil {
		return nil, err
	}
	if oneShotPerCall > 0 {
		out.SteadyRatio = float64(finalPerCall) / float64(oneShotPerCall)
	}
	return out, nil
}

// formatBreakEven renders a tier-1 break-even estimate; 0 means the
// compiled code never beats the interpreter per call (baseline code can
// model slower than interpreting a tiny kernel — its value is the nearly
// free compile, not steady-state speed).
func formatBreakEven(calls int) string {
	if calls <= 0 {
		return "never (per-call above interp)"
	}
	return fmt.Sprintf("~%d calls", calls)
}

// perCallTime measures the modelled per-call time of one element-kernel
// entry by averaging over an interior row.
func (w *Workload) perCallTime(entry uint64) (time.Duration, error) {
	n := w.SZ - 2
	m := emu.NewMachine(w.Mem)
	for col := 1; col <= n; col++ {
		idx := uint64(w.SZ + col) // row 1
		args := []uint64{w.FlatAddr, w.M1.Region.Start, w.M2.Region.Start, idx}
		if _, err := m.Call(entry, emu.CallArgs{Ints: args}, 0); err != nil {
			return 0, err
		}
	}
	secsPerCall := m.Cycles / float64(n) / m.Cost.ClockHz
	return time.Duration(secsPerCall * float64(time.Second)), nil
}

// Format renders the Figure-10-style table: one-shot versus tiered totals
// across call counts, with the break-even estimate.
func (r *TieringResult) Format() string {
	var b strings.Builder
	b.WriteString("Tiered execution — one-shot O3 vs profile-guided promotion (flat element kernel)\n")
	fmt.Fprintf(&b, "per-call: tier0 (interp) %v, tier2 (DBrew+O3) %v; one-shot compile %v\n",
		r.Tier0PerCall, r.Tier2PerCall, r.OneShotCompile.Round(time.Microsecond))
	fmt.Fprintf(&b, "promotion thresholds: tier1 at %d calls, tier2 at %d calls\n", tieringT1, tieringT2)
	if r.BreakEvenCalls > 0 {
		fmt.Fprintf(&b, "estimated break-even: ~%d calls (compile / per-call saving)\n", r.BreakEvenCalls)
	}
	if r.FastpathT1Compile > 0 {
		speedup := float64(r.LegacyT1Compile) / float64(r.FastpathT1Compile)
		fmt.Fprintf(&b, "tier-1 compile: legacy lift+O1 %v, fastpath %v (%.1fx cheaper, mode %s)\n",
			r.LegacyT1Compile.Round(time.Microsecond), r.FastpathT1Compile.Round(time.Microsecond),
			speedup, r.FastpathT1Mode)
		fmt.Fprintf(&b, "tier-1 per-call: legacy %v, fastpath %v; tier-1 break-even: legacy %s, fastpath %s\n",
			r.LegacyT1PerCall, r.FastpathT1PerCall,
			formatBreakEven(r.LegacyT1BreakEven), formatBreakEven(r.FastpathT1BreakEven))
	}
	fmt.Fprintf(&b, "%8s %14s %14s %14s %-12s %7s %7s\n",
		"calls", "one-shot [ms]", "tiered [ms]", "winner", "final tier", "promos", "steady")
	for _, row := range r.Rows {
		winner := "tiered"
		if row.OneShotTotal < row.TieredTotal {
			winner = "one-shot"
		}
		fmt.Fprintf(&b, "%8d %14.3f %14.3f %14s %-12v %3d/%-3d %6.2fx\n",
			row.Calls,
			float64(row.OneShotTotal.Microseconds())/1000.0,
			float64(row.TieredTotal.Microseconds())/1000.0,
			winner, row.FinalLevel,
			row.Promotions[tier.Tier1], row.Promotions[tier.Tier2],
			row.SteadyRatio)
	}
	if r.EmuInsts > 0 && r.Elapsed > 0 {
		fmt.Fprintf(&b, "emulator: %d instructions retired in %v (%.3g inst/s)\n",
			r.EmuInsts, r.Elapsed.Round(time.Millisecond), float64(r.EmuInsts)/r.Elapsed.Seconds())
	}
	return b.String()
}
