package bench

import (
	"strings"
	"testing"
)

func TestFigureRunnersAndFormatting(t *testing.T) {
	w, err := NewWorkload(33)
	if err != nil {
		t.Fatal(err)
	}
	fig, err := w.RunFigure9(Element, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Bars) != 15 {
		t.Fatalf("15 bars expected, got %d", len(fig.Bars))
	}
	out := fig.Format()
	for _, want := range []string{"Figure 9a", "Direct", "SortedStruct", "DBrew+LLVM"} {
		if !strings.Contains(out, want) {
			t.Errorf("format missing %q", want)
		}
	}
	if b := fig.Get(Flat, DBrew); b == nil || b.CycPerEl <= 0 {
		t.Error("Get(Flat, DBrew) broken")
	}
	if fig.Get(Flat, Mode(99)) != nil {
		t.Error("Get with invalid mode must return nil")
	}

	rows, err := w.RunFigure10(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 12 {
		t.Fatalf("12 compile-time rows expected, got %d", len(rows))
	}
	if !strings.Contains(FormatFigure10(rows), "time [ms]") {
		t.Error("figure 10 format broken")
	}

	vec, err := w.RunVectorization(1)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(vec.Format(), "forced/aligned ratio") {
		t.Error("vectorization format broken")
	}

	ab, err := w.RunAblations(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(ab) != 5 || ab[0].Delta != 0 {
		t.Errorf("ablation rows: %+v", ab)
	}
	if !strings.Contains(FormatAblations(ab), "no flag cache") {
		t.Error("ablation format broken")
	}
}

func TestModeAndStructureStrings(t *testing.T) {
	if Native.String() != "Native" || DBrewLLVM.String() != "DBrew+LLVM" {
		t.Error("mode names")
	}
	if Flat.String() != "Struct" || Sorted.String() != "SortedStruct" {
		t.Error("structure names")
	}
	if Element.String() != "element" || Line.String() != "line" {
		t.Error("kind names")
	}
}

func TestPassAblationAndDisassemble(t *testing.T) {
	w, err := NewWorkload(33)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := w.RunPassAblation(1, DBrewLLVM)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("8 pipeline variants expected, got %d", len(rows))
	}
	// Rows are sorted ascending; -O0 must be the most expensive variant for
	// DBrew output (no cleanup at all).
	if rows[len(rows)-1].Pass != "no optimization (-O0)" {
		t.Errorf("-O0 should rank last, got %q", rows[len(rows)-1].Pass)
	}
	out := FormatPassAblation(rows, DBrewLLVM)
	if !strings.Contains(out, "cyc/elem") || !strings.Contains(out, "no inlining") {
		t.Errorf("format broken:\n%s", out)
	}

	v, err := w.Prepare(Element, Flat, DBrewLLVM, Options{})
	if err != nil {
		t.Fatal(err)
	}
	lst, err := w.Disassemble(v)
	if err != nil {
		t.Fatal(err)
	}
	if len(lst) < 3 {
		t.Errorf("disassembly too short: %v", lst)
	}
	foundRet := false
	for _, line := range lst {
		if strings.Contains(line, "ret") {
			foundRet = true
		}
	}
	if !foundRet {
		t.Error("disassembly must contain a ret")
	}
}

func TestFigure7Layouts(t *testing.T) {
	w, err := NewWorkload(33)
	if err != nil {
		t.Fatal(err)
	}
	out, err := w.Figure7Layouts()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"points = 4", "f: 0.25", "groups = 1", ".factor = 0.25", "dx: -1"} {
		if !strings.Contains(out, want) {
			t.Errorf("layout dump missing %q:\n%s", want, out)
		}
	}
}
