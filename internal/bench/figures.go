package bench

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/abi"
	"repro/internal/dbrew"
	"repro/internal/ir"
	"repro/internal/jit"
	"repro/internal/kernels"
	"repro/internal/lift"
	"repro/internal/opt"
)

// Bar is one measurement bar of Figure 9.
type Bar struct {
	Structure Structure
	Mode      Mode
	Seconds   float64
	CycPerEl  float64
	InstPerEl float64
	Notes     string
}

// FigureResult is the regenerated data of one running-time figure.
type FigureResult struct {
	Name string
	Kind Kind
	Bars []Bar
}

// RunFigure9 regenerates Figure 9a (Element) or 9b (Line): the fifteen bars
// of running time for the projected full workload (50,000 Jacobi iterations
// on the SZ×SZ matrix).
func (w *Workload) RunFigure9(kind Kind, rows int) (*FigureResult, error) {
	name := "Figure 9a (element kernel)"
	if kind == Line {
		name = "Figure 9b (line kernel)"
	}
	res := &FigureResult{Name: name, Kind: kind}
	for _, s := range AllStructures {
		for _, mode := range AllModes {
			v, err := w.Prepare(kind, s, mode, Options{})
			if err != nil {
				return nil, fmt.Errorf("%v/%v: %w", s, mode, err)
			}
			m, err := w.MeasureRows(v, rows)
			if err != nil {
				return nil, fmt.Errorf("%v/%v: %w", s, mode, err)
			}
			res.Bars = append(res.Bars, Bar{
				Structure: s, Mode: mode,
				Seconds: m.Seconds, CycPerEl: m.CyclesPerElem, InstPerEl: m.InstsPerElem,
				Notes: v.Notes,
			})
		}
	}
	return res, nil
}

// Format renders the figure as the table the paper's bar chart encodes.
func (r *FigureResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — run time for %d iterations [s]\n", r.Name, Iters)
	fmt.Fprintf(&b, "%-14s %-12s %10s %10s %10s\n", "structure", "mode", "time [s]", "cyc/elem", "inst/elem")
	for _, bar := range r.Bars {
		fmt.Fprintf(&b, "%-14s %-12s %10.2f %10.2f %10.1f\n",
			bar.Structure, bar.Mode, bar.Seconds, bar.CycPerEl, bar.InstPerEl)
	}
	return b.String()
}

// Get returns the bar for (structure, mode).
func (r *FigureResult) Get(s Structure, m Mode) *Bar {
	for i := range r.Bars {
		if r.Bars[i].Structure == s && r.Bars[i].Mode == m {
			return &r.Bars[i]
		}
	}
	return nil
}

// CompileTimeRow is one bar of Figure 10, extended with the warm
// (specialization-cache hit) lookup time for the same request.
type CompileTimeRow struct {
	Structure Structure
	Mode      Mode
	Avg       time.Duration // cold: full transformation
	Warm      time.Duration // cached: PrepareCached hit for the same key
	Speedup   float64       // Avg / Warm
}

// figure10Modes are the non-native transformation modes Figure 10 times.
var figure10Modes = []Mode{LLVM, LLVMFix, DBrew, DBrewLLVM}

// RunFigure10 regenerates Figure 10: average transformation times of the
// non-native modes on the line kernels, averaged over repeats (the paper
// performs 1000 compiles; pass repeats accordingly). Each row also carries
// the warm time — the cost of PrepareCached when the specialization cache
// already holds the compiled variant.
func (w *Workload) RunFigure10(repeats int) ([]CompileTimeRow, error) {
	if repeats <= 0 {
		repeats = 10
	}
	prev := w.cache
	w.EnableCache(256)
	defer func() { w.cache = prev }()
	var rows []CompileTimeRow
	for _, s := range AllStructures {
		for _, mode := range figure10Modes {
			var total time.Duration
			for i := 0; i < repeats; i++ {
				v, err := w.Prepare(Line, s, mode, Options{})
				if err != nil {
					return nil, fmt.Errorf("%v/%v: %w", s, mode, err)
				}
				total += v.CompileTime
			}
			// Populate the cache once, then time pure hits.
			if _, _, err := w.PrepareCached(Line, s, mode, Options{}); err != nil {
				return nil, fmt.Errorf("%v/%v warm: %w", s, mode, err)
			}
			var warm time.Duration
			for i := 0; i < repeats; i++ {
				start := time.Now()
				_, hit, err := w.PrepareCached(Line, s, mode, Options{})
				warm += time.Since(start)
				if err != nil {
					return nil, fmt.Errorf("%v/%v warm: %w", s, mode, err)
				}
				if !hit {
					return nil, fmt.Errorf("%v/%v warm: cache miss on populated key", s, mode)
				}
			}
			row := CompileTimeRow{
				Structure: s, Mode: mode,
				Avg:  total / time.Duration(repeats),
				Warm: warm / time.Duration(repeats),
			}
			if row.Warm > 0 {
				row.Speedup = float64(row.Avg) / float64(row.Warm)
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// FormatFigure10 renders the compile-time table with cold and warm columns.
func FormatFigure10(rows []CompileTimeRow) string {
	var b strings.Builder
	b.WriteString("Figure 10 — average transformation time of the line kernels [ms]\n")
	fmt.Fprintf(&b, "%-14s %-12s %10s %10s %9s\n", "structure", "mode", "time [ms]", "warm [µs]", "speedup")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-14s %-12s %10.3f %10.3f %8.0fx\n",
			r.Structure, r.Mode,
			float64(r.Avg.Microseconds())/1000.0,
			float64(r.Warm.Nanoseconds())/1000.0,
			r.Speedup)
	}
	return b.String()
}

// VectorizationResult is the Section VI-B experiment.
type VectorizationResult struct {
	GCCAligned   Measurement // native vectorized direct line kernel
	ForcedVector Measurement // specialized flat line, -force-vector-width=2
	ScalarFix    Measurement // same without forcing (cost model declines)
	Ratio        float64     // forced / aligned (the paper reports ~1.23)
}

// RunVectorization regenerates the forced-vectorization comparison.
func (w *Workload) RunVectorization(rows int) (*VectorizationResult, error) {
	nat, err := w.Prepare(Line, Direct, Native, Options{})
	if err != nil {
		return nil, err
	}
	mn, err := w.MeasureRows(nat, rows)
	if err != nil {
		return nil, err
	}
	forced, err := w.Prepare(Line, Flat, LLVMFix, Options{ForceVectorWidth: 2})
	if err != nil {
		return nil, err
	}
	mf, err := w.MeasureRows(forced, rows)
	if err != nil {
		return nil, err
	}
	scalar, err := w.Prepare(Line, Flat, LLVMFix, Options{})
	if err != nil {
		return nil, err
	}
	ms, err := w.MeasureRows(scalar, rows)
	if err != nil {
		return nil, err
	}
	return &VectorizationResult{
		GCCAligned:   mn,
		ForcedVector: mf,
		ScalarFix:    ms,
		Ratio:        mf.CyclesPerElem / mn.CyclesPerElem,
	}, nil
}

// Format renders the vectorization experiment.
func (r *VectorizationResult) Format() string {
	var b strings.Builder
	b.WriteString("Section VI-B — forced vectorization of the specialized line kernel\n")
	fmt.Fprintf(&b, "  GCC compile-time vectorized (aligned stores): %6.2f cyc/elem\n", r.GCCAligned.CyclesPerElem)
	fmt.Fprintf(&b, "  forced -force-vector-width=2  (unaligned):    %6.2f cyc/elem\n", r.ForcedVector.CyclesPerElem)
	fmt.Fprintf(&b, "  cost model unforced (stays scalar):           %6.2f cyc/elem\n", r.ScalarFix.CyclesPerElem)
	fmt.Fprintf(&b, "  forced/aligned ratio: %.2f (paper: ~1.23)\n", r.Ratio)
	return b.String()
}

// Figure8Listings regenerates the Figure 8 comparison: the sorted element
// kernel (whose single coefficient group yields the paper's one-multiply
// form) specialized by plain DBrew versus the same code after the LLVM
// backend.
func (w *Workload) Figure8Listings() (dbrewLst, llvmLst []string, err error) {
	r := dbrew.NewRewriter(w.Mem, w.Corpus.SortedElem, kernels.ElemSig)
	r.SetParPtr(0, w.SortedAddr, w.SortedSize)
	addr, err := r.Rewrite()
	if err != nil {
		return nil, nil, err
	}
	if r.Stats.Failed {
		return nil, nil, fmt.Errorf("dbrew failed: %v", r.Stats.Err)
	}
	dbrewLst, err = dbrew.Listing(w.Mem, addr, r.Stats.CodeSize)
	if err != nil {
		return nil, nil, err
	}

	l := lift.New(w.Mem, lift.DefaultOptions())
	f, err := l.LiftFunc(addr, "fig8", kernels.ElemSig)
	if err != nil {
		return nil, nil, err
	}
	opt.Optimize(f, opt.O3())
	comp := jit.NewCompiler(w.Mem)
	jaddr, err := comp.CompileModule(l.Module, f.Nam)
	if err != nil {
		return nil, nil, err
	}
	llvmLst, err = dbrew.Listing(w.Mem, jaddr, comp.Sizes[jaddr])
	return dbrewLst, llvmLst, err
}

// Figure6IR regenerates the Figure 6 comparison: the max(a, b) kernel lifted
// with and without the flag cache, after -O3.
func (w *Workload) Figure6IR() (withCache, withoutCache string, err error) {
	mk := func(fc bool) (string, error) {
		lo := lift.DefaultOptions()
		lo.FlagCache = fc
		l := lift.New(w.Mem, lo)
		name := "max_fc"
		if !fc {
			name = "max_nofc"
		}
		f, err := l.LiftFunc(w.Corpus.MaxFunc, name, kernels.MaxSig)
		if err != nil {
			return "", err
		}
		opt.Optimize(f, opt.O3())
		return ir.FormatFunc(f), nil
	}
	if withCache, err = mk(true); err != nil {
		return
	}
	withoutCache, err = mk(false)
	return
}

// AblationRow is one configuration of the design-choice ablations.
type AblationRow struct {
	Name     string
	CycPerEl float64
	Delta    float64 // relative to the baseline configuration
}

// RunAblations measures the lifter design choices the paper calls out
// (Section III): flag cache, facet cache, and GEP-based addressing, each
// disabled in isolation on the LLVM identity transformation of the flat
// element kernel.
func (w *Workload) RunAblations(rows int) ([]AblationRow, error) {
	type cfg struct {
		name string
		mod  func(o *lift.Options)
	}
	cfgs := []cfg{
		{"baseline (all on)", func(o *lift.Options) {}},
		{"no flag cache", func(o *lift.Options) { o.FlagCache = false }},
		{"no facet cache", func(o *lift.Options) { o.FacetCache = false }},
		{"inttoptr addressing (no GEP)", func(o *lift.Options) { o.UseGEP = false }},
		{"all off", func(o *lift.Options) { o.FlagCache = false; o.FacetCache = false; o.UseGEP = false }},
	}
	var rowsOut []AblationRow
	var base float64
	for i, c := range cfgs {
		lo := lift.DefaultOptions()
		c.mod(&lo)
		v, err := w.Prepare(Element, Flat, LLVM, Options{LiftOpts: &lo})
		if err != nil {
			return nil, fmt.Errorf("%s: %w", c.name, err)
		}
		m, err := w.MeasureRows(v, rows)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", c.name, err)
		}
		if i == 0 {
			base = m.CyclesPerElem
		}
		rowsOut = append(rowsOut, AblationRow{
			Name:     c.name,
			CycPerEl: m.CyclesPerElem,
			Delta:    m.CyclesPerElem/base - 1,
		})
	}
	return rowsOut, nil
}

// FormatAblations renders the ablation table.
func FormatAblations(rows []AblationRow) string {
	var b strings.Builder
	b.WriteString("Lifter design-choice ablations (flat element kernel, LLVM identity mode)\n")
	fmt.Fprintf(&b, "%-30s %10s %8s\n", "configuration", "cyc/elem", "delta")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-30s %10.2f %+7.1f%%\n", r.Name, r.CycPerEl, 100*r.Delta)
	}
	return b.String()
}

// PassAblationRow measures removing one optimization pass family from the
// pipeline — the study the paper's conclusion names as the motivation for
// the LLVM backend ("understand which optimization passes are essential").
type PassAblationRow struct {
	Pass     string
	CycPerEl float64
	Delta    float64
}

// passAblationConfigs are the pipeline variants of the essential-passes
// study.
func passAblationConfigs() []struct {
	name string
	o    Options
} {
	return []struct {
		name string
		o    Options
	}{
		{"full -O3 pipeline", Options{}},
		{"no instcombine/folding", Options{PipelineMod: func(c *opt.Config) { c.NoInstCombine = true }}},
		{"no fast-math", Options{NoFastMath: true}},
		{"no CSE/GVN", Options{PipelineMod: func(c *opt.Config) { c.NoCSE = true }}},
		{"no inlining", Options{PipelineMod: func(c *opt.Config) { c.NoInline = true }}},
		{"no loop unrolling", Options{PipelineMod: func(c *opt.Config) { c.NoUnroll = true }}},
		{"no mem2reg/SROA", Options{PipelineMod: func(c *opt.Config) { c.NoMem2Reg = true }}},
		{"no optimization (-O0)", Options{OptLevel: -1}},
	}
}

// RunPassAblation measures the flat element kernel with individual pipeline
// features disabled, in the given mode (DBrewLLVM answers "what does DBrew
// output need?", LLVMFix answers "what does IR-level specialization need?").
func (w *Workload) RunPassAblation(rows int, mode Mode) ([]PassAblationRow, error) {
	var out []PassAblationRow
	var base float64
	for i, c := range passAblationConfigs() {
		v, err := w.Prepare(Element, Flat, mode, c.o)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", c.name, err)
		}
		m, err := w.MeasureRows(v, rows)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", c.name, err)
		}
		if i == 0 {
			base = m.CyclesPerElem
		}
		out = append(out, PassAblationRow{Pass: c.name, CycPerEl: m.CyclesPerElem, Delta: m.CyclesPerElem/base - 1})
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].CycPerEl < out[j].CycPerEl })
	return out, nil
}

// FormatPassAblation renders the pass ablation.
func FormatPassAblation(rows []PassAblationRow, mode Mode) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Pipeline ablations (flat element kernel, %v mode)\n", mode)
	fmt.Fprintf(&b, "%-30s %10s %8s\n", "pipeline", "cyc/elem", "delta")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-30s %10.2f %+7.1f%%\n", r.Pass, r.CycPerEl, 100*r.Delta)
	}
	return b.String()
}

// avoid unused import when abi is only used in signatures elsewhere.
var _ = abi.ClassInt

// Figure7Layouts renders the two serialized data-structure layouts of
// Figure 7 (the generic flat SortedStencil-free form and the
// coefficient-sorted form with its group pointer table) as annotated hex
// dumps, so the memory images the kernels traverse can be inspected.
func (w *Workload) Figure7Layouts() (string, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "flat layout (StencilPoint[%d] with factors) at %#x, %d bytes:\n",
		len(w.Stencil.Points), w.FlatAddr, w.FlatSize)
	ps, err := w.Mem.ReadU(w.FlatAddr, 4)
	if err != nil {
		return "", err
	}
	fmt.Fprintf(&b, "  +0x00  points = %d\n", ps)
	for i := 0; i < int(ps); i++ {
		off := uint64(8 + 16*i)
		f, _ := w.Mem.ReadFloat64(w.FlatAddr + off)
		dx, _ := w.Mem.ReadU(w.FlatAddr+off+8, 4)
		dy, _ := w.Mem.ReadU(w.FlatAddr+off+12, 4)
		fmt.Fprintf(&b, "  +%#04x  {f: %-5g dx: %-3d dy: %-3d}\n",
			off, f, int32(dx), int32(dy))
	}

	fmt.Fprintf(&b, "\nsorted layout (SortedStencil with group pointers) at %#x, %d bytes (header %d):\n",
		w.SortedAddr, w.SortedSize, w.SortedHeader)
	gs, err := w.Mem.ReadU(w.SortedAddr, 4)
	if err != nil {
		return "", err
	}
	fmt.Fprintf(&b, "  +0x00  groups = %d\n", gs)
	for g := 0; g < int(gs); g++ {
		p, _ := w.Mem.ReadU(w.SortedAddr+8+uint64(8*g), 8)
		fmt.Fprintf(&b, "  +%#04x  group[%d] -> %#x\n", 8+8*g, g, p)
		f, _ := w.Mem.ReadFloat64(p)
		np, _ := w.Mem.ReadU(p+8, 4)
		fmt.Fprintf(&b, "          .factor = %g, .points = %d\n", f, np)
		for i := 0; i < int(np); i++ {
			dx, _ := w.Mem.ReadU(p+16+uint64(8*i), 4)
			dy, _ := w.Mem.ReadU(p+16+uint64(8*i)+4, 4)
			fmt.Fprintf(&b, "          point[%d] = {dx: %-3d dy: %-3d}\n", i, int32(dx), int32(dy))
		}
	}
	return b.String(), nil
}
