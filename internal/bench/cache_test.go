package bench

import (
	"testing"

	"repro/internal/opt"
)

func cachedWorkload(t testing.TB) *Workload {
	t.Helper()
	w, err := NewWorkload(33)
	if err != nil {
		t.Fatal(err)
	}
	w.EnableCache(256)
	return w
}

func TestPrepareCachedHitSharesVariant(t *testing.T) {
	w := cachedWorkload(t)
	v1, hit, err := w.PrepareCached(Line, Flat, DBrew, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Error("first PrepareCached reported a hit")
	}
	v2, hit, err := w.PrepareCached(Line, Flat, DBrew, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !hit {
		t.Error("second PrepareCached missed")
	}
	if v1 != v2 {
		t.Error("cache hit returned a different Variant")
	}
	st, ok := w.CacheStats()
	if !ok || st.Misses != 1 || st.Hits != 1 {
		t.Errorf("stats = %+v, want 1 miss / 1 hit", st)
	}

	// The cached variant still measures correctly.
	m, err := w.MeasureRows(v2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if m.CyclesPerElem <= 0 {
		t.Errorf("cached variant unmeasurable: %+v", m)
	}
}

// TestPrepareCachedInvalidationOnStencilChange: the key hashes the stencil
// region's contents, so mutating the serialized stencil must force a
// recompile, and restoring it must hit the original entry again.
func TestPrepareCachedInvalidationOnStencilChange(t *testing.T) {
	w := cachedWorkload(t)
	v1, _, err := w.PrepareCached(Element, Flat, DBrew, Options{})
	if err != nil {
		t.Fatal(err)
	}
	orig, err := w.Mem.ReadFloat64(w.FlatAddr + 8) // first point's factor
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Mem.WriteFloat64(w.FlatAddr+8, orig*2); err != nil {
		t.Fatal(err)
	}
	v2, hit, err := w.PrepareCached(Element, Flat, DBrew, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Error("stencil mutation did not change the cache key")
	}
	if v2.Entry == v1.Entry {
		t.Error("recompile after mutation reused the old entry")
	}
	if err := w.Mem.WriteFloat64(w.FlatAddr+8, orig); err != nil {
		t.Fatal(err)
	}
	v3, hit, err := w.PrepareCached(Element, Flat, DBrew, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !hit || v3 != v1 {
		t.Error("restoring the stencil did not hit the original specialization")
	}
}

// TestPrepareCachedBypassesUnhashable: a PipelineMod closure cannot be part
// of the key, so such requests must compile fresh every time and leave the
// counters untouched.
func TestPrepareCachedBypassesUnhashable(t *testing.T) {
	w := cachedWorkload(t)
	o := Options{PipelineMod: func(c *opt.Config) { c.NoCSE = true }}
	for i := 0; i < 2; i++ {
		_, hit, err := w.PrepareCached(Element, Flat, DBrewLLVM, o)
		if err != nil {
			t.Fatal(err)
		}
		if hit {
			t.Error("unhashable request reported a cache hit")
		}
	}
	if st, _ := w.CacheStats(); st.Hits != 0 || st.Misses != 0 {
		t.Errorf("unhashable requests touched the cache: %+v", st)
	}
}

// TestConcurrentThroughputExactlyOnce: under concurrent load every distinct
// specialization compiles exactly once; all other requests are hits.
func TestConcurrentThroughputExactlyOnce(t *testing.T) {
	w, err := NewWorkload(33)
	if err != nil {
		t.Fatal(err)
	}
	r, err := w.RunConcurrentThroughput(8, 2)
	if err != nil {
		t.Fatal(err)
	}
	if r.Compiles != int64(r.Distinct) {
		t.Errorf("compiles = %d, want exactly %d (one per specialization)", r.Compiles, r.Distinct)
	}
	if r.Hits != int64(r.Requests)-r.Compiles {
		t.Errorf("hits = %d, want %d", r.Hits, int64(r.Requests)-r.Compiles)
	}
	if got := r.Format(); got == "" {
		t.Error("empty throughput format")
	}
}
