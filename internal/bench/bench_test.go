package bench

import (
	"testing"
)

// TestAllVariantsSmall prepares and verifies every (kind, structure, mode)
// combination on a small matrix: each variant must produce bit-correct rows.
func TestAllVariantsSmall(t *testing.T) {
	w, err := NewWorkload(33)
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range []Kind{Element, Line} {
		for _, s := range AllStructures {
			for _, mode := range AllModes {
				v, err := w.Prepare(kind, s, mode, Options{})
				if err != nil {
					t.Errorf("%v/%v/%v: prepare: %v", kind, s, mode, err)
					continue
				}
				meas, err := w.MeasureRows(v, 2)
				if err != nil {
					t.Errorf("%v/%v/%v: %v", kind, s, mode, err)
					continue
				}
				if meas.CyclesPerElem <= 0 {
					t.Errorf("%v/%v/%v: no cycles measured", kind, s, mode)
				}
				t.Logf("%v/%-12v/%-10v: %6.2f cyc/elem %6.1f inst/elem (%s)",
					kind, s, mode, meas.CyclesPerElem, meas.InstsPerElem, v.Notes)
			}
		}
	}
}

// TestPaperSizeVariants spot-checks the paper's 649 configuration for the
// most complex combinations.
func TestPaperSizeVariants(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	w, err := NewWorkload(649)
	if err != nil {
		t.Fatal(err)
	}
	for _, cfg := range []struct {
		kind Kind
		s    Structure
		mode Mode
	}{
		{Element, Flat, DBrew},
		{Element, Flat, DBrewLLVM},
		{Element, Flat, LLVMFix},
		{Element, Sorted, DBrewLLVM},
		{Line, Flat, DBrew},
		{Line, Sorted, DBrewLLVM},
		{Line, Direct, LLVM},
	} {
		v, err := w.Prepare(cfg.kind, cfg.s, cfg.mode, Options{})
		if err != nil {
			t.Errorf("%v/%v/%v: prepare: %v", cfg.kind, cfg.s, cfg.mode, err)
			continue
		}
		meas, err := w.MeasureRows(v, 1)
		if err != nil {
			t.Errorf("%v/%v/%v: %v", cfg.kind, cfg.s, cfg.mode, err)
			continue
		}
		t.Logf("%v/%-12v/%-10v: %6.2f cyc/elem -> %7.2f s (%s)",
			cfg.kind, cfg.s, cfg.mode, meas.CyclesPerElem, meas.Seconds, v.Notes)
	}
}
