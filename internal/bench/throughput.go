package bench

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/emu"
)

// ThroughputResult summarizes the concurrent-specialization experiment:
// many goroutines requesting the twelve distinct line-kernel
// specializations (structure × non-native mode) through the cache.
type ThroughputResult struct {
	Goroutines int
	Rounds     int
	Distinct   int           // distinct specializations requested
	Requests   int           // total PrepareCached calls
	Compiles   int64         // cache misses — must equal Distinct
	Hits       int64         // served from cache or by waiting on an in-flight compile
	Elapsed    time.Duration // wall clock for the whole run
	EmuInsts   uint64        // emulated instructions retired during the run
}

// RunConcurrentThroughput runs goroutines workers, each requesting every
// distinct line-kernel specialization rounds times via PrepareCached. The
// cache's singleflight guarantees each specialization compiles exactly
// once no matter how many workers race for it; everything else is a hit.
func (w *Workload) RunConcurrentThroughput(goroutines, rounds int) (*ThroughputResult, error) {
	if goroutines <= 0 {
		goroutines = 8
	}
	if rounds <= 0 {
		rounds = 1
	}
	prev := w.cache
	w.EnableCache(256)
	defer func() { w.cache = prev }()

	type combo struct {
		s Structure
		m Mode
	}
	var combos []combo
	for _, s := range AllStructures {
		for _, m := range figure10Modes {
			combos = append(combos, combo{s, m})
		}
	}

	var wg sync.WaitGroup
	errs := make([]error, goroutines)
	startInsts := emu.TotalRetired()
	start := time.Now()
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				// Stagger the walk so workers collide on different keys.
				for j := range combos {
					c := combos[(j+g)%len(combos)]
					if _, _, err := w.PrepareCached(Line, c.s, c.m, Options{}); err != nil {
						errs[g] = fmt.Errorf("%v/%v: %w", c.s, c.m, err)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	elapsed := time.Since(start)
	insts := emu.TotalRetired() - startInsts
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	st, _ := w.CacheStats()
	return &ThroughputResult{
		Goroutines: goroutines,
		Rounds:     rounds,
		Distinct:   len(combos),
		Requests:   goroutines * rounds * len(combos),
		Compiles:   st.Misses,
		Hits:       st.Hits,
		Elapsed:    elapsed,
		EmuInsts:   insts,
	}, nil
}

// Format renders the throughput experiment.
func (r *ThroughputResult) Format() string {
	var b strings.Builder
	b.WriteString("Concurrent specialization throughput (line kernels, cached)\n")
	fmt.Fprintf(&b, "  %d goroutines × %d rounds × %d specializations = %d requests\n",
		r.Goroutines, r.Rounds, r.Distinct, r.Requests)
	fmt.Fprintf(&b, "  compiles: %d (exactly one per distinct specialization), cache hits: %d\n",
		r.Compiles, r.Hits)
	persec := float64(r.Requests) / r.Elapsed.Seconds()
	fmt.Fprintf(&b, "  elapsed: %v, %.0f requests/s\n", r.Elapsed.Round(time.Microsecond), persec)
	if r.EmuInsts > 0 && r.Elapsed > 0 {
		fmt.Fprintf(&b, "  emulator: %d instructions retired (%.3g inst/s)\n",
			r.EmuInsts, float64(r.EmuInsts)/r.Elapsed.Seconds())
	} else {
		b.WriteString("  emulator: 0 instructions retired (compile-only run)\n")
	}
	return b.String()
}
