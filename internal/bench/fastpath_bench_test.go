package bench

// BenchmarkTier1Compile compares tier-1 compile latency across backends,
// the measurement behind BENCH_fastpath.json (cmd/benchfastpath):
//
//	legacy/*    lift + O1 + linear-scan JIT (TierConfig.LegacyTier1)
//	fastpath/*  the fastpath backend's real decision path (copy or lower)
//	lower/*     fastpath with the shortcut disabled, isolating its gain
//
// Two subjects: the flat element kernel (branchy — takes the lowering
// route, where lifting dominates every backend) and a hand-assembled
// straight-line kernel (copy-eligible — where the shortcut removes the
// lifter from the path entirely and delivers the order-of-magnitude win).

import (
	"testing"

	"repro/internal/abi"
	"repro/internal/emu"
	"repro/internal/fastpath"
	"repro/internal/jit"
	"repro/internal/lift"
	"repro/internal/opt"
	"repro/internal/x86"
	"repro/internal/x86/asm"
)

// compileBatch bounds how many compiles land in one address space before
// the benchmark recreates it (off the clock): every compile allocates code
// pages, and an unbounded run would grow the region table without bound.
const compileBatch = 1024

// placeStraight assembles a ~12-instruction straight-line integer kernel
// (no branches, no RIP-relative operands) into mem and returns its entry.
func placeStraight(tb testing.TB, mem *emu.Memory) uint64 {
	b := asm.NewBuilder()
	b.I(x86.MOV, x86.R64(x86.RAX), x86.R64(x86.RDI))
	b.I(x86.IMUL3, x86.R64(x86.RAX), x86.R64(x86.RAX), x86.Imm(3, 8))
	b.I(x86.XOR, x86.R64(x86.RSI), x86.Imm(0x55, 8))
	b.I(x86.ADD, x86.R64(x86.RAX), x86.R64(x86.RSI))
	b.I(x86.LEA, x86.R64(x86.RCX), x86.MemBIS(8, x86.RAX, x86.RSI, 2, 17))
	b.I(x86.SHL, x86.R64(x86.RCX), x86.Imm(3, 1))
	b.I(x86.SUB, x86.R64(x86.RCX), x86.R64(x86.RDI))
	b.I(x86.AND, x86.R64(x86.RCX), x86.Imm(0x7FFFFFFF, 8))
	b.I(x86.OR, x86.R64(x86.RAX), x86.R64(x86.RCX))
	b.I(x86.MOV, x86.R32(x86.RDX), x86.R32(x86.RAX))
	b.I(x86.ADD, x86.R64(x86.RAX), x86.R64(x86.RDX))
	b.Ret()
	code, _, err := b.Assemble(0) // position-independent: base is irrelevant
	if err != nil {
		tb.Fatal(err)
	}
	r := mem.Alloc(len(code), 16, "straight")
	copy(r.Data, code)
	return r.Start
}

var straightSig = abi.Signature{Params: []abi.Class{abi.ClassInt, abi.ClassInt}, Ret: abi.ClassInt}

func mustWorkload33(tb testing.TB) *Workload {
	w, err := NewWorkload(33)
	if err != nil {
		tb.Fatal(err)
	}
	return w
}

// compileLegacyT1 is the legacy tier-1 pipeline: lift, O1, linear-scan JIT.
func compileLegacyT1(tb testing.TB, mem *emu.Memory, entry uint64, sig abi.Signature) {
	l := lift.New(mem, lift.DefaultOptions())
	f, err := l.LiftFunc(entry, "t1", sig)
	if err != nil {
		tb.Fatal(err)
	}
	cfg := opt.O1()
	opt.Optimize(f, cfg)
	comp := jit.NewCompiler(mem)
	comp.NamePrefix = "t1."
	if _, err := comp.CompileModule(l.Module, f.Nam); err != nil {
		tb.Fatal(err)
	}
}

func compileFastpathT1(tb testing.TB, mem *emu.Memory, entry uint64, sig abi.Signature, noShortcut bool) {
	if _, err := fastpath.Compile(mem, entry, "t1", sig, fastpath.Options{
		NamePrefix: "t1.",
		NoShortcut: noShortcut,
	}); err != nil {
		tb.Fatal(err)
	}
}

func BenchmarkTier1Compile(b *testing.B) {
	// Element-kernel subjects share this setup: a fresh workload every
	// compileBatch compiles.
	elementLoop := func(b *testing.B, compile func(*Workload, uint64)) {
		w := mustWorkload33(b)
		entry, _, _, _ := w.inputFor(Element, Flat, DBrewLLVM)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if i > 0 && i%compileBatch == 0 {
				b.StopTimer()
				w = mustWorkload33(b)
				entry, _, _, _ = w.inputFor(Element, Flat, DBrewLLVM)
				b.StartTimer()
			}
			compile(w, entry)
		}
	}
	// Straight-line subjects only need a bare memory image.
	straightLoop := func(b *testing.B, compile func(*emu.Memory, uint64)) {
		mem := emu.NewMemory(0x10000000)
		entry := placeStraight(b, mem)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if i > 0 && i%compileBatch == 0 {
				b.StopTimer()
				mem = emu.NewMemory(0x10000000)
				entry = placeStraight(b, mem)
				b.StartTimer()
			}
			compile(mem, entry)
		}
	}

	b.Run("legacy/element", func(b *testing.B) {
		elementLoop(b, func(w *Workload, entry uint64) {
			compileLegacyT1(b, w.Mem, entry, sigFor(Element))
		})
	})
	b.Run("fastpath/element", func(b *testing.B) {
		elementLoop(b, func(w *Workload, entry uint64) {
			compileFastpathT1(b, w.Mem, entry, sigFor(Element), false)
		})
	})
	b.Run("legacy/straight", func(b *testing.B) {
		straightLoop(b, func(mem *emu.Memory, entry uint64) {
			compileLegacyT1(b, mem, entry, straightSig)
		})
	})
	b.Run("fastpath/straight", func(b *testing.B) {
		straightLoop(b, func(mem *emu.Memory, entry uint64) {
			compileFastpathT1(b, mem, entry, straightSig, false)
		})
	})
	b.Run("lower/straight", func(b *testing.B) {
		straightLoop(b, func(mem *emu.Memory, entry uint64) {
			compileFastpathT1(b, mem, entry, straightSig, true)
		})
	})
}

// TestFastpathStraightKernelCopyEligible pins the benchmark's straight-line
// subject to the copy route: if the kernel or the scanner changes and it
// stops copy-qualifying, fastpath/straight silently measures the wrong
// thing — fail instead.
func TestFastpathStraightKernelCopyEligible(t *testing.T) {
	mem := emu.NewMemory(0x10000000)
	entry := placeStraight(t, mem)
	res, err := fastpath.Compile(mem, entry, "pin", straightSig, fastpath.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Mode != fastpath.ModeCopy {
		t.Fatalf("straight kernel mode = %v, want copy", res.Mode)
	}
	// The copied code must behave like the original: run both on the
	// emulator and compare.
	for _, in := range [][2]uint64{{0, 0}, {7, 9}, {1 << 40, 0xFFFF}} {
		want, err := emu.NewMachine(mem).Call(entry, emu.CallArgs{Ints: []uint64{in[0], in[1]}}, 0)
		if err != nil {
			t.Fatal(err)
		}
		got, err := emu.NewMachine(mem).Call(res.Entry, emu.CallArgs{Ints: []uint64{in[0], in[1]}}, 0)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("copy(%#x, %#x) = %#x, original %#x", in[0], in[1], got, want)
		}
	}
}
