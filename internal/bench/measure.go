package bench

import (
	"fmt"
	"math"

	"repro/internal/emu"
	"repro/internal/x86"
	"repro/internal/x86/asm"
)

// buildDriver4 emits the element-kernel measurement loop for the standard
// four-argument signature (s, m1, m2, idx): it walks n elements calling the
// kernel, mirroring the benchmark loop of the paper's evaluation.
func buildDriver4(b *asm.Builder, target uint64) {
	loop := b.NewLabel()
	done := b.NewLabel()
	b.I(x86.TEST, x86.R64(x86.R8), x86.R64(x86.R8))
	b.Jcc(x86.CondLE, done)
	b.I(x86.PUSH, x86.R64(x86.RBX))
	b.I(x86.PUSH, x86.R64(x86.R12))
	b.I(x86.PUSH, x86.R64(x86.R13))
	b.I(x86.PUSH, x86.R64(x86.R14))
	b.I(x86.PUSH, x86.R64(x86.R15))
	b.I(x86.MOV, x86.R64(x86.RBX), x86.R64(x86.RDI))
	b.I(x86.MOV, x86.R64(x86.R12), x86.R64(x86.RSI))
	b.I(x86.MOV, x86.R64(x86.R13), x86.R64(x86.RDX))
	b.I(x86.MOV, x86.R64(x86.R14), x86.R64(x86.RCX))
	b.I(x86.MOV, x86.R64(x86.R15), x86.R64(x86.R8))
	b.Bind(loop)
	b.I(x86.MOV, x86.R64(x86.RDI), x86.R64(x86.RBX))
	b.I(x86.MOV, x86.R64(x86.RSI), x86.R64(x86.R12))
	b.I(x86.MOV, x86.R64(x86.RDX), x86.R64(x86.R13))
	b.I(x86.MOV, x86.R64(x86.RCX), x86.R64(x86.R14))
	b.Call(target)
	b.I(x86.ADD, x86.R64(x86.R14), x86.Imm(1, 8))
	b.I(x86.SUB, x86.R64(x86.R15), x86.Imm(1, 8))
	b.Jcc(x86.CondNE, loop)
	b.I(x86.POP, x86.R64(x86.R15))
	b.I(x86.POP, x86.R64(x86.R14))
	b.I(x86.POP, x86.R64(x86.R13))
	b.I(x86.POP, x86.R64(x86.R12))
	b.I(x86.POP, x86.R64(x86.RBX))
	b.Bind(done)
	b.Ret()
}

// buildDriver3 is the same loop for LLVM-fix variants whose stencil argument
// was fixed away: the kernel takes (m1, m2, idx). The driver still receives
// (s, m1, m2, idx0, n) so callers are uniform; s is ignored.
func buildDriver3(b *asm.Builder, target uint64) {
	loop := b.NewLabel()
	done := b.NewLabel()
	b.I(x86.TEST, x86.R64(x86.R8), x86.R64(x86.R8))
	b.Jcc(x86.CondLE, done)
	b.I(x86.PUSH, x86.R64(x86.R12))
	b.I(x86.PUSH, x86.R64(x86.R13))
	b.I(x86.PUSH, x86.R64(x86.R14))
	b.I(x86.PUSH, x86.R64(x86.R15))
	b.I(x86.MOV, x86.R64(x86.R12), x86.R64(x86.RSI))
	b.I(x86.MOV, x86.R64(x86.R13), x86.R64(x86.RDX))
	b.I(x86.MOV, x86.R64(x86.R14), x86.R64(x86.RCX))
	b.I(x86.MOV, x86.R64(x86.R15), x86.R64(x86.R8))
	b.Bind(loop)
	b.I(x86.MOV, x86.R64(x86.RDI), x86.R64(x86.R12))
	b.I(x86.MOV, x86.R64(x86.RSI), x86.R64(x86.R13))
	b.I(x86.MOV, x86.R64(x86.RDX), x86.R64(x86.R14))
	b.Call(target)
	b.I(x86.ADD, x86.R64(x86.R14), x86.Imm(1, 8))
	b.I(x86.SUB, x86.R64(x86.R15), x86.Imm(1, 8))
	b.Jcc(x86.CondNE, loop)
	b.I(x86.POP, x86.R64(x86.R15))
	b.I(x86.POP, x86.R64(x86.R14))
	b.I(x86.POP, x86.R64(x86.R13))
	b.I(x86.POP, x86.R64(x86.R12))
	b.Bind(done)
	b.Ret()
}

// Measurement is one timing result, projected onto the paper's workload.
type Measurement struct {
	CyclesPerElem float64
	InstsPerElem  float64
	// Seconds projects the full evaluation workload: Iters Jacobi
	// iterations over the interior of the SZ×SZ matrix at the model clock.
	Seconds float64
	// ElementsMeasured is the emulated sample size.
	ElementsMeasured int
}

// Iters is the paper's iteration count (50,000 Jacobi iterations).
const Iters = 50000

// MeasureRows runs the variant over the given number of interior rows and
// verifies every produced element against the Go reference before reporting
// timing. The emulated sample is extrapolated to the full workload.
func (w *Workload) MeasureRows(v *Variant, rows int) (Measurement, error) {
	if rows <= 0 {
		rows = 2
	}
	n := w.SZ - 2 // interior elements per row

	var entry uint64
	var err error
	if v.Kind == Element {
		if v.driver == 0 {
			v.driver, err = w.driverFor(v)
			if err != nil {
				return Measurement{}, err
			}
		}
		entry = v.driver
	} else {
		entry = v.Entry
	}

	m := emu.NewMachine(w.Mem)
	m.ResetStats()
	ref := w.M1.Slice()
	for r := 0; r < rows; r++ {
		row := 1 + (r % (w.SZ - 2))
		idx0 := uint64(row*w.SZ + 1)
		args := []uint64{v.StencilAddr, w.M1.Region.Start, w.M2.Region.Start, idx0, uint64(n)}
		if v.Kind == Line && v.DropStencilArg {
			args = []uint64{w.M1.Region.Start, w.M2.Region.Start, idx0, uint64(n)}
		}
		if _, err := m.Call(entry, emu.CallArgs{Ints: args}, 0); err != nil {
			return Measurement{}, fmt.Errorf("bench: %v/%v/%v run: %w", v.Kind, v.Structure, v.Mode, err)
		}
		// Verify the row.
		for col := 1; col < w.SZ-1; col++ {
			idx := row*w.SZ + col
			want := w.Stencil.Apply(ref, w.SZ, idx)
			got := w.M2.Get(row, col)
			if math.Abs(got-want) > 1e-9 {
				return Measurement{}, fmt.Errorf("bench: %v/%v/%v wrong result at (%d,%d): got %g want %g",
					v.Kind, v.Structure, v.Mode, row, col, got, want)
			}
		}
	}

	elems := rows * n
	cpe := m.Cycles / float64(elems)
	ipe := float64(m.InstCount) / float64(elems)
	totalElems := float64(Iters) * float64(n) * float64(n)
	secs := cpe * totalElems / m.Cost.ClockHz
	return Measurement{
		CyclesPerElem:    cpe,
		InstsPerElem:     ipe,
		Seconds:          secs,
		ElementsMeasured: elems,
	}, nil
}
