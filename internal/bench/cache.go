package bench

import (
	"repro/internal/codecache"
	"repro/internal/lift"
)

// EnableCache attaches a specialization cache of the given capacity (entries)
// to the workload. PrepareCached then deduplicates compilations: concurrent
// requests for the same (kind, structure, mode, options, stencil contents)
// specialization compile exactly once and share the resulting Variant.
func (w *Workload) EnableCache(capacity int) {
	w.cache = codecache.New[*Variant](capacity)
}

// DisableCache detaches the cache; PrepareCached degrades to Prepare.
func (w *Workload) DisableCache() { w.cache = nil }

// CacheStats reports the cache counters; ok is false when no cache is set.
func (w *Workload) CacheStats() (codecache.Stats, bool) {
	if w.cache == nil {
		return codecache.Stats{}, false
	}
	return w.cache.Stats(), true
}

// cacheKey canonicalizes a preparation request. The stencil region the
// specialization fixes is hashed by content, so mutating the serialized
// stencil changes the key and forces a recompile — cached code can never go
// stale silently. Requests carrying a PipelineMod closure are not hashable
// and report ok=false (the caller bypasses the cache).
func (w *Workload) cacheKey(kind Kind, s Structure, mode Mode, o Options) (codecache.Key, bool) {
	if o.PipelineMod != nil {
		return codecache.Key{}, false
	}
	entry, sAddr, fullSize, headerSize := w.inputFor(kind, s, mode)
	h := codecache.NewHasher()
	h.U64(uint64(kind))
	h.U64(uint64(s))
	h.U64(uint64(mode))
	h.U64(entry)
	h.I64(int64(o.ForceVectorWidth))
	h.I64(int64(o.OptLevel))
	h.Bool(o.NoFastMath)
	lo := lift.DefaultOptions()
	if o.LiftOpts != nil {
		lo = *o.LiftOpts
	}
	h.Bool(lo.FlagCache)
	h.Bool(lo.FacetCache)
	h.Bool(lo.UseGEP)
	h.I64(int64(lo.StackSize))
	h.I64(int64(lo.MaxInsts))
	h.U64(uint64(len(lo.VolatileRanges)))
	for _, vr := range lo.VolatileRanges {
		h.U64(vr.Start)
		h.U64(vr.End)
	}
	h.U64(sAddr)
	h.U64(uint64(headerSize))
	buf, err := w.Mem.Read(sAddr, fullSize)
	if err != nil {
		return codecache.Key{}, false
	}
	h.Bytes(buf)
	return h.Sum(), true
}

// PrepareCached is Prepare behind the specialization cache. The returned hit
// reports whether an already-compiled Variant was reused (including waiting
// on a concurrent in-flight compile of the same key). Cache hits share one
// *Variant across callers; treat it as read-only apart from MeasureRows,
// which must not run concurrently on a shared Variant.
//
// Compilations are serialized by an internal lock because preparation
// allocates and writes the emulated address space; hits bypass it entirely,
// so PrepareCached is safe to call from many goroutines.
func (w *Workload) PrepareCached(kind Kind, s Structure, mode Mode, o Options) (*Variant, bool, error) {
	if w.cache == nil {
		v, err := w.Prepare(kind, s, mode, o)
		return v, false, err
	}
	key, ok := w.cacheKey(kind, s, mode, o)
	if !ok {
		w.compileMu.Lock()
		defer w.compileMu.Unlock()
		v, err := w.Prepare(kind, s, mode, o)
		return v, false, err
	}
	return w.cache.Do(key, func() (*Variant, error) {
		w.compileMu.Lock()
		defer w.compileMu.Unlock()
		return w.Prepare(kind, s, mode, o)
	})
}
