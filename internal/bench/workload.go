// Package bench implements the paper's evaluation (Section VI): the five
// code-generation modes — Original, LLVM transformation, LLVM transformation
// with parameter fixation, DBrew, and DBrew combined with the LLVM backend —
// applied to the element and line kernels over the three stencil structures,
// plus the measurement machinery that regenerates Figures 9a, 9b, and 10 and
// the Section VI-B forced-vectorization experiment.
package bench

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/abi"
	"repro/internal/codecache"
	"repro/internal/dbrew"
	"repro/internal/emu"
	"repro/internal/ir"
	"repro/internal/jit"
	"repro/internal/kernels"
	"repro/internal/lift"
	"repro/internal/opt"
	"repro/internal/stencil"
	"repro/internal/x86/asm"
)

// Mode is one of the five evaluation modes.
type Mode int

// Evaluation modes (Section VI).
const (
	Native    Mode = iota // Original: unmodified, as produced by the compiler
	LLVM                  // lift -> O3 -> JIT (identity transformation)
	LLVMFix               // lift -> fix stencil parameter at IR level -> O3 -> JIT
	DBrew                 // specialize by binary rewriting
	DBrewLLVM             // DBrew output lifted and post-processed by the LLVM backend
)

var modeNames = map[Mode]string{
	Native: "Native", LLVM: "LLVM", LLVMFix: "LLVM-fix", DBrew: "DBrew", DBrewLLVM: "DBrew+LLVM",
}

// String names the mode as in the paper's figures.
func (m Mode) String() string { return modeNames[m] }

// AllModes lists the modes in the paper's bar order.
var AllModes = []Mode{Native, LLVM, LLVMFix, DBrew, DBrewLLVM}

// Structure selects the stencil representation.
type Structure int

// Structures (the figure groups).
const (
	Direct Structure = iota
	Flat
	Sorted
)

var structNames = map[Structure]string{Direct: "Direct", Flat: "Struct", Sorted: "SortedStruct"}

// String names the data-structure variant.
func (s Structure) String() string { return structNames[s] }

// AllStructures lists the figure groups.
var AllStructures = []Structure{Direct, Flat, Sorted}

// Kind selects the element or line kernel experiments.
type Kind int

// Kernel kinds.
const (
	Element Kind = iota
	Line
)

// String names the kernel granularity.
func (k Kind) String() string {
	if k == Element {
		return "element"
	}
	return "line"
}

// Workload bundles the memory image, code corpus, matrices, and serialized
// stencils for one experiment configuration.
type Workload struct {
	Mem     *emu.Memory
	Corpus  *kernels.Corpus
	Stencil stencil.Stencil
	M1, M2  *stencil.Matrix
	SZ      int

	FlatAddr uint64
	FlatSize int

	SortedAddr   uint64
	SortedHeader int
	SortedSize   int

	// cache, when enabled, deduplicates PrepareCached compilations;
	// compileMu serializes the compilations themselves (preparation
	// allocates and writes the shared emulated address space).
	cache     *codecache.Cache[*Variant]
	compileMu sync.Mutex
}

// NewWorkload builds the full workload for side length sz (the paper: 649)
// with the 4-point Jacobi stencil.
func NewWorkload(sz int) (*Workload, error) {
	return NewWorkloadStencil(sz, stencil.FourPoint())
}

// NewWorkloadStencil builds a workload with an arbitrary stencil (e.g. the
// 8-point variant with two coefficient groups).
func NewWorkloadStencil(sz int, st stencil.Stencil) (*Workload, error) {
	mem := emu.NewMemory(0x10000000)
	c, err := kernels.Build(mem, sz)
	if err != nil {
		return nil, err
	}
	w := &Workload{Mem: mem, Corpus: c, Stencil: st, SZ: sz}
	w.M1 = stencil.NewMatrix(mem, sz, "m1")
	w.M2 = stencil.NewMatrix(mem, sz, "m2")
	w.M1.InitBoundary()
	w.M2.InitBoundary()
	// A non-trivial interior so correctness checks are meaningful.
	for r := 1; r < sz-1; r++ {
		for col := 1; col < sz-1; col++ {
			w.M1.Set(r, col, float64((r*37+col*11)%100)/128.0)
		}
	}
	if w.FlatAddr, w.FlatSize, err = w.Stencil.SerializeFlat(mem); err != nil {
		return nil, err
	}
	if w.SortedAddr, w.SortedHeader, w.SortedSize, err = w.Stencil.SerializeSorted(mem); err != nil {
		return nil, err
	}
	return w, nil
}

// inputFor returns the machine entry, stencil address, full stencil size,
// and header size for a (kind, structure, mode) combination. DBrew modes use
// the call-based line kernels, as in the paper.
func (w *Workload) inputFor(kind Kind, s Structure, mode Mode) (entry, sAddr uint64, fullSize, headerSize int) {
	c := w.Corpus
	dbrewMode := mode == DBrew || mode == DBrewLLVM
	switch s {
	case Direct:
		sAddr, fullSize, headerSize = w.FlatAddr, w.FlatSize, w.FlatSize
		if kind == Element {
			entry = c.DirectElem
		} else if dbrewMode {
			entry = c.DirectLineCall
		} else {
			entry = c.DirectLine
		}
	case Flat:
		sAddr, fullSize, headerSize = w.FlatAddr, w.FlatSize, w.FlatSize
		if kind == Element {
			entry = c.FlatElem
		} else if dbrewMode {
			entry = c.FlatLineCall
		} else {
			entry = c.FlatLine
		}
	case Sorted:
		sAddr, fullSize, headerSize = w.SortedAddr, w.SortedSize, w.SortedHeader
		if kind == Element {
			entry = c.SortedElem
		} else if dbrewMode {
			entry = c.SortedLineCall
		} else {
			entry = c.SortedLine
		}
	}
	return
}

func sigFor(kind Kind) abi.Signature {
	if kind == Element {
		return kernels.ElemSig
	}
	return kernels.LineSig
}

// Variant is a runnable code variant plus preparation metadata.
type Variant struct {
	Kind      Kind
	Structure Structure
	Mode      Mode

	Entry uint64
	// DropStencilArg is set for LLVM-fix variants: the wrapper takes
	// (m1, m2, index[, n]) because the stencil parameter was fixed away.
	DropStencilArg bool
	StencilAddr    uint64

	// CompileTime is the wall-clock cost of the preparation (Figure 10).
	CompileTime time.Duration
	// CodeSize is the generated code size (0 for Native).
	CodeSize int
	// Notes carries pipeline statistics.
	Notes string

	// driver caches the per-element measurement loop so repeated
	// MeasureRows calls do not grow the emulated address space.
	driver uint64
}

// Options tweak preparation (ablations and the Section VI-B experiment).
type Options struct {
	ForceVectorWidth int
	LiftOpts         *lift.Options
	OptLevel         int  // -1 overrides to a no-opt pipeline
	NoFastMath       bool // disable FP optimizations
	// PipelineMod, when set, adjusts the optimization configuration (used
	// by the per-pass ablation study).
	PipelineMod func(*opt.Config)
}

// Prepare builds the code variant for the given configuration.
func (w *Workload) Prepare(kind Kind, s Structure, mode Mode, o Options) (*Variant, error) {
	entry, sAddr, fullSize, headerSize := w.inputFor(kind, s, mode)
	v := &Variant{Kind: kind, Structure: s, Mode: mode, StencilAddr: sAddr}
	sig := sigFor(kind)

	lo := lift.DefaultOptions()
	if o.LiftOpts != nil {
		lo = *o.LiftOpts
	}
	cfg := opt.O3()
	cfg.FastMath = !o.NoFastMath
	cfg.ForceVectorWidth = o.ForceVectorWidth
	if o.OptLevel == -1 {
		cfg.Level = 0
	}
	if o.PipelineMod != nil {
		o.PipelineMod(&cfg)
	}

	start := time.Now()
	switch mode {
	case Native:
		v.Entry = entry
		v.CodeSize = w.Corpus.Sizes[entry]

	case LLVM:
		l := w.liftInput(lo)
		f, err := l.LiftFunc(entry, fmt.Sprintf("k_%s_%s", kind, s), sig)
		if err != nil {
			return nil, fmt.Errorf("bench: lift: %w", err)
		}
		st := opt.Optimize(f, cfg)
		comp := jit.NewCompiler(w.Mem)
		addr, err := comp.CompileModule(l.Module, f.Nam)
		if err != nil {
			return nil, fmt.Errorf("bench: jit: %w", err)
		}
		v.Entry = addr
		v.CodeSize = comp.Sizes[addr]
		v.Notes = fmt.Sprintf("insts %d->%d", st.InstsBefore, st.InstsAfter)

	case LLVMFix:
		l := w.liftInput(lo)
		f, err := l.LiftFunc(entry, fmt.Sprintf("k_%s_%s", kind, s), sig)
		if err != nil {
			return nil, fmt.Errorf("bench: lift: %w", err)
		}
		// Fix parameter 0 (the stencil pointer) to its runtime value via a
		// wrapper plus always-inline (Section IV), then globalize the
		// explicitly-sized constant region. Nested pointers (the sorted
		// structure's group table targets) are NOT followed.
		g := &ir.Global{Nam: "stencil_fixed", Ty: ir.I8, Addr: sAddr, Const: true}
		l.Module.AddGlobal(g)
		wrap, err := opt.FixParam(l.Module, f, 0, g)
		if err != nil {
			return nil, err
		}
		ranges := []opt.ConstRange{{Start: sAddr, Size: headerSize}}
		st := opt.Optimize(wrap, cfg)
		inlined, unrolled := st.Inlined, st.Unrolled
		// Alternate constant-memory folding with the standard pipeline until
		// a fixed point: inlining exposes constant addresses, folding their
		// loads enables unrolling, which exposes more constant addresses.
		last := st
		for i := 0; i < 6; i++ {
			n, err := opt.GlobalizeConstMem(l.Module, wrap, w.Mem, ranges)
			if err != nil {
				return nil, err
			}
			if n == 0 {
				break
			}
			last = opt.Optimize(wrap, cfg)
			inlined += last.Inlined
			unrolled += last.Unrolled
		}
		comp := jit.NewCompiler(w.Mem)
		addr, err := comp.CompileModule(l.Module, wrap.Nam)
		if err != nil {
			return nil, fmt.Errorf("bench: jit: %w", err)
		}
		v.Entry = addr
		v.DropStencilArg = true
		v.CodeSize = comp.Sizes[addr]
		v.Notes = fmt.Sprintf("inlined %d, unrolled %d, insts %d->%d",
			inlined, unrolled, st.InstsBefore, last.InstsAfter)

	case DBrew:
		r := dbrew.NewRewriter(w.Mem, entry, sig)
		r.SetParPtr(0, sAddr, fullSize)
		addr, err := r.Rewrite()
		if err != nil {
			return nil, fmt.Errorf("bench: dbrew: %w", err)
		}
		if r.Stats.Failed {
			return nil, fmt.Errorf("bench: dbrew fell back to original: %v", r.Stats.Err)
		}
		v.Entry = addr
		v.CodeSize = r.Stats.CodeSize
		v.Notes = fmt.Sprintf("emitted %d, eliminated %d, inlined %d",
			r.Stats.Emitted, r.Stats.Eliminated, r.Stats.Inlined)

	case DBrewLLVM:
		r := dbrew.NewRewriter(w.Mem, entry, sig)
		r.SetParPtr(0, sAddr, fullSize)
		addr, err := r.Rewrite()
		if err != nil {
			return nil, fmt.Errorf("bench: dbrew: %w", err)
		}
		if r.Stats.Failed {
			return nil, fmt.Errorf("bench: dbrew fell back to original: %v", r.Stats.Err)
		}
		l := w.liftInput(lo)
		f, err := l.LiftFunc(addr, fmt.Sprintf("dbl_%s_%s", kind, s), sig)
		if err != nil {
			return nil, fmt.Errorf("bench: lift dbrew output: %w", err)
		}
		st := opt.Optimize(f, cfg)
		comp := jit.NewCompiler(w.Mem)
		jaddr, err := comp.CompileModule(l.Module, f.Nam)
		if err != nil {
			return nil, fmt.Errorf("bench: jit: %w", err)
		}
		v.Entry = jaddr
		v.CodeSize = comp.Sizes[jaddr]
		v.Notes = fmt.Sprintf("dbrew emitted %d; insts %d->%d",
			r.Stats.Emitted, st.InstsBefore, st.InstsAfter)
	}
	v.CompileTime = time.Since(start)
	return v, nil
}

// liftInput returns a lifter with the corpus call targets declared, so the
// call-based line kernels lift (the callee is lifted as its own function).
func (w *Workload) liftInput(lo lift.Options) *lift.Lifter {
	l := lift.New(w.Mem, lo)
	c := w.Corpus
	l.Declare(c.DirectElem, "direct_elem", kernels.ElemSig)
	l.Declare(c.FlatElem, "flat_elem", kernels.ElemSig)
	l.Declare(c.SortedElem, "sorted_elem", kernels.ElemSig)
	return l
}

// driverFor assembles the measurement driver loop: it iterates over one line
// calling the variant per element (Element kind), matching the paper's
// "running time also includes the loop used to iterate over the matrix and
// the overhead of the function call".
func (w *Workload) driverFor(v *Variant) (uint64, error) {
	b := asm.NewBuilder()
	if v.DropStencilArg {
		buildDriver3(b, v.Entry)
	} else {
		buildDriver4(b, v.Entry)
	}
	// Provisional sizing pass: assemble near the call target so the rel32
	// range check cannot fire regardless of where the allocator is.
	code, _, err := b.Assemble(v.Entry)
	if err != nil {
		return 0, err
	}
	region := w.Mem.Alloc(len(code), 16, "bench.driver")
	code, _, err = b.Assemble(region.Start)
	if err != nil {
		return 0, err
	}
	copy(region.Data, code)
	return region.Start, nil
}

// Disassemble returns the generated code of a prepared variant.
func (w *Workload) Disassemble(v *Variant) ([]string, error) {
	return dbrew.Listing(w.Mem, v.Entry, v.CodeSize)
}
