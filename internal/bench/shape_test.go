package bench

import (
	"strings"
	"testing"
)

// TestPaperShape asserts the qualitative results of Section VI: who wins,
// by roughly what factor, and where the crossovers fall. Absolute cycle
// counts come from the cost model, but these orderings are the claims the
// paper makes.
func TestPaperShape(t *testing.T) {
	w, err := NewWorkload(33)
	if err != nil {
		t.Fatal(err)
	}
	get := func(kind Kind, s Structure, m Mode, o Options) float64 {
		t.Helper()
		v, err := w.Prepare(kind, s, m, o)
		if err != nil {
			t.Fatalf("%v/%v/%v: %v", kind, s, m, err)
		}
		meas, err := w.MeasureRows(v, 2)
		if err != nil {
			t.Fatalf("%v/%v/%v: %v", kind, s, m, err)
		}
		return meas.CyclesPerElem
	}

	// --- Element kernel (Figure 9a) ---
	directNative := get(Element, Direct, Native, Options{})
	// "For the variant with the hard-coded stencil, we can observe no major
	// differences between the different modes."
	for _, m := range AllModes {
		v := get(Element, Direct, m, Options{})
		if v > directNative*1.25 || v < directNative*0.75 {
			t.Errorf("element/Direct/%v = %.2f strays from native %.2f", m, v, directNative)
		}
	}

	flatNative := get(Element, Flat, Native, Options{})
	if flatNative < directNative*1.5 {
		t.Errorf("generic flat structure should be much slower than hard-coded: %.2f vs %.2f",
			flatNative, directNative)
	}
	// "The parameter fixation at the level of LLVM-IR leads to the same
	// performance as the hard-coded stencil."
	flatFix := get(Element, Flat, LLVMFix, Options{})
	if flatFix > directNative*1.25 {
		t.Errorf("element/Flat/LLVM-fix %.2f should approach direct %.2f", flatFix, directNative)
	}
	// "The DBrew specialization has some overhead."
	flatDBrew := get(Element, Flat, DBrew, Options{})
	if flatDBrew <= directNative*1.1 {
		t.Errorf("element/Flat/DBrew %.2f should retain overhead over direct %.2f", flatDBrew, directNative)
	}
	if flatDBrew >= flatNative {
		t.Errorf("element/Flat/DBrew %.2f must beat the generic native %.2f", flatDBrew, flatNative)
	}

	// "Applying the LLVM optimizations on the top of the DBrew
	// specialization again leads to code with the same performance as the
	// hard-coded stencil." (sorted structure)
	sortedDBrewLLVM := get(Element, Sorted, DBrewLLVM, Options{})
	if sortedDBrewLLVM > directNative*1.15 {
		t.Errorf("element/Sorted/DBrew+LLVM %.2f should match direct %.2f", sortedDBrewLLVM, directNative)
	}
	// "The parameter fixation at LLVM-IR level has a high overhead [for the
	// sorted structure]... nested pointers... not handled."
	sortedFix := get(Element, Sorted, LLVMFix, Options{})
	if sortedFix < directNative*2.5 {
		t.Errorf("element/Sorted/LLVM-fix %.2f should remain far above direct %.2f (no specialization)",
			sortedFix, directNative)
	}
	// "The DBrew specialization has a lower overhead as for the flat
	// structure because the redundant multiplications are eliminated."
	sortedDBrew := get(Element, Sorted, DBrew, Options{})
	if sortedDBrew > flatDBrew*1.15 {
		t.Errorf("element/Sorted/DBrew %.2f should not exceed flat DBrew %.2f", sortedDBrew, flatDBrew)
	}

	// --- Line kernel (Figure 9b) ---
	lineDirect := get(Line, Direct, Native, Options{})
	// The compile-time vectorized kernel is the fastest configuration.
	if lineDirect >= directNative {
		t.Errorf("vectorized line kernel %.2f should beat the element kernel %.2f", lineDirect, directNative)
	}
	// "The code produced by DBrew is significantly slower as the original
	// code does not involve vectorization."
	lineDirectDBrew := get(Line, Direct, DBrew, Options{})
	if lineDirectDBrew < lineDirect*1.3 {
		t.Errorf("line/Direct/DBrew %.2f should be well above vectorized native %.2f", lineDirectDBrew, lineDirect)
	}
	// "Specialization at LLVM-IR level improves the performance, but is
	// still slower than the code with the hard-coded stencil as
	// vectorization is not performed."
	lineFlatFix := get(Line, Flat, LLVMFix, Options{})
	lineFlatNative := get(Line, Flat, Native, Options{})
	if lineFlatFix >= lineFlatNative {
		t.Errorf("line/Flat/LLVM-fix %.2f must improve on native %.2f", lineFlatFix, lineFlatNative)
	}
	if lineFlatFix <= lineDirect {
		t.Errorf("line/Flat/LLVM-fix %.2f should stay above the vectorized kernel %.2f", lineFlatFix, lineDirect)
	}
	// "Involving LLVM on the code produced by DBrew leads to performance
	// improvements, but does not reach the performance of the LLVM-IR
	// specialization as information about constant memory regions is not
	// preserved."
	lineFlatDBrew := get(Line, Flat, DBrew, Options{})
	lineFlatDL := get(Line, Flat, DBrewLLVM, Options{})
	if lineFlatDL >= lineFlatDBrew*1.05 {
		t.Errorf("line/Flat/DBrew+LLVM %.2f should improve on DBrew %.2f", lineFlatDL, lineFlatDBrew)
	}
	if lineFlatDL < lineFlatFix*0.95 {
		t.Errorf("line/Flat/DBrew+LLVM %.2f should not beat the LLVM-IR specialization %.2f", lineFlatDL, lineFlatFix)
	}
	// "For the sorted structure... the LLVM transformation applied on the
	// top of DBrew leads to the same performance as the specialization at
	// LLVM-IR level."
	lineSortedDL := get(Line, Sorted, DBrewLLVM, Options{})
	if lineSortedDL > lineFlatFix*1.25 {
		t.Errorf("line/Sorted/DBrew+LLVM %.2f should approach the flat LLVM-IR specialization %.2f",
			lineSortedDL, lineFlatFix)
	}

	// --- Section VI-B: forced vectorization ---
	vec, err := w.RunVectorization(2)
	if err != nil {
		t.Fatal(err)
	}
	if vec.ForcedVector.CyclesPerElem >= vec.ScalarFix.CyclesPerElem {
		t.Errorf("forced vectorization %.2f must beat the scalar specialization %.2f",
			vec.ForcedVector.CyclesPerElem, vec.ScalarFix.CyclesPerElem)
	}
	if vec.Ratio <= 1.0 {
		t.Errorf("forced (unaligned) vectorization should remain slower than GCC's aligned loop: ratio %.2f", vec.Ratio)
	}
	if vec.Ratio > 2.5 {
		t.Errorf("forced vectorization ratio %.2f too far from the paper's ~1.23", vec.Ratio)
	}
}

// TestFigure6Shapes checks the flag-cache effect at the IR level against the
// paper's listings.
func TestFigure6Shapes(t *testing.T) {
	w, err := NewWorkload(33)
	if err != nil {
		t.Fatal(err)
	}
	with, without, err := w.Figure6IR()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(with, "icmp slt i64 %arg0, %arg1") {
		t.Errorf("flag-cache IR should contain the direct comparison:\n%s", with)
	}
	if strings.Count(with, "\n") > 7 {
		t.Errorf("flag-cache IR should be minimal (Figure 6c):\n%s", with)
	}
	if !strings.Contains(without, "xor") {
		t.Errorf("no-flag-cache IR should contain the SF^OF pattern (Figure 6b):\n%s", without)
	}
	if strings.Count(without, "\n") <= strings.Count(with, "\n") {
		t.Error("no-flag-cache IR must be larger than the cached form")
	}
}

// TestFigure8Shapes checks the code-listing comparison: DBrew materializes
// known values and keeps per-point address arithmetic; the LLVM backend
// folds them into addressing modes.
func TestFigure8Shapes(t *testing.T) {
	w, err := NewWorkload(649)
	if err != nil {
		t.Fatal(err)
	}
	d, l, err := w.Figure8Listings()
	if err != nil {
		t.Fatal(err)
	}
	dj := strings.Join(d, "\n")
	lj := strings.Join(l, "\n")
	// DBrew output: materialized displacements plus explicit adds.
	if !strings.Contains(dj, "mov rax, -0x1") || !strings.Contains(dj, "add rax, rcx") {
		t.Errorf("DBrew listing missing the materialize+add pattern of Figure 8:\n%s", dj)
	}
	if !strings.Contains(dj, "pxor") {
		t.Errorf("DBrew listing missing the pxor zero idiom:\n%s", dj)
	}
	// LLVM-post-processed output: folded addressing, shorter code.
	if !strings.Contains(lj, "8*rcx - 0x8") && !strings.Contains(lj, "8*rcx + 0x8") {
		t.Errorf("LLVM listing should fold displacements into addressing modes:\n%s", lj)
	}
	if len(l) >= len(d) {
		t.Errorf("LLVM-optimized listing (%d insts) should be shorter than DBrew's (%d)", len(l), len(d))
	}
	// Both keep exactly one multiplication (single coefficient group).
	if strings.Count(lj, "mulsd") != 1 {
		t.Errorf("expected exactly one mulsd in the optimized listing:\n%s", lj)
	}
}

// TestCompileTimeShape checks Figure 10's claim: a standalone DBrew
// transformation is significantly cheaper than the LLVM pipeline, and the
// LLVM time grows with code complexity.
func TestCompileTimeShape(t *testing.T) {
	w, err := NewWorkload(33)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := w.RunFigure10(3)
	if err != nil {
		t.Fatal(err)
	}
	find := func(s Structure, m Mode) float64 {
		for _, r := range rows {
			if r.Structure == s && r.Mode == m {
				return float64(r.Avg.Nanoseconds())
			}
		}
		t.Fatalf("missing row %v/%v", s, m)
		return 0
	}
	for _, s := range AllStructures {
		db := find(s, DBrew)
		lv := find(s, LLVM)
		if db >= lv {
			t.Errorf("%v: DBrew (%.0f ns) should be cheaper than the LLVM pipeline (%.0f ns)", s, db, lv)
		}
	}
	// LLVM compile time grows with code complexity (sorted > direct).
	if find(Sorted, LLVM) <= find(Direct, LLVM)/2 {
		t.Error("LLVM transformation time should grow with code complexity")
	}
}
