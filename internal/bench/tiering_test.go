package bench

import (
	"strings"
	"testing"

	"repro/internal/tier"
)

// TestRunTiering checks the acceptance criteria of the tiering figure on a
// small workload: tiered wins at one call (no compile is ever triggered),
// and at high call counts the handle reaches tier 2 with steady-state
// per-call throughput within 5% of the one-shot O3 variant.
func TestRunTiering(t *testing.T) {
	w, err := NewWorkload(33)
	if err != nil {
		t.Fatal(err)
	}
	res, err := w.RunTiering([]int{1, tieringT1 - 1, tieringT2 * 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("got %d rows, want 3", len(res.Rows))
	}

	cold := res.Rows[0]
	if cold.TieredTotal >= cold.OneShotTotal {
		t.Fatalf("tiered (%v) does not beat one-shot (%v) at a single call",
			cold.TieredTotal, cold.OneShotTotal)
	}
	if cold.FinalLevel != tier.Tier0 {
		t.Fatalf("single call promoted to %v", cold.FinalLevel)
	}

	warm := res.Rows[1]
	if warm.FinalLevel != tier.Tier0 {
		t.Fatalf("%d calls (below tier1 threshold) promoted to %v", tieringT1-1, warm.FinalLevel)
	}

	hot := res.Rows[2]
	if hot.FinalLevel != tier.Tier2 {
		t.Fatalf("%d calls reached only %v, want tier2", hot.Calls, hot.FinalLevel)
	}
	if hot.Promotions[tier.Tier1] != 1 || hot.Promotions[tier.Tier2] != 1 {
		t.Fatalf("promotions = %v, want one per tier", hot.Promotions)
	}
	if hot.SteadyRatio > 1.05 {
		t.Fatalf("steady-state ratio %.3f exceeds 1.05 (tiered top tier slower than one-shot)",
			hot.SteadyRatio)
	}

	if res.Tier0PerCall <= res.Tier2PerCall {
		t.Fatalf("interpreting (%v) should cost more per call than optimized code (%v)",
			res.Tier0PerCall, res.Tier2PerCall)
	}
	if res.BreakEvenCalls <= 0 {
		t.Fatalf("break-even estimate = %d, want positive", res.BreakEvenCalls)
	}

	// Tier-1 backend comparison: both backends measured and the route
	// recorded. No relative wall-clock assertion here — the element kernel
	// takes the lowering route, where lifting dominates both backends and
	// scheduler noise could flip single samples; the compile-latency gate
	// lives in cmd/benchfastpath over medians.
	if res.LegacyT1Compile <= 0 || res.FastpathT1Compile <= 0 {
		t.Fatalf("tier-1 compile times not measured: legacy %v, fastpath %v",
			res.LegacyT1Compile, res.FastpathT1Compile)
	}
	if res.FastpathT1Mode == "" {
		t.Error("fastpath tier-1 mode not recorded")
	}
	if res.LegacyT1PerCall <= 0 || res.FastpathT1PerCall <= 0 {
		t.Errorf("tier-1 per-call times not measured: legacy %v, fastpath %v",
			res.LegacyT1PerCall, res.FastpathT1PerCall)
	}

	out := res.Format()
	for _, want := range []string{"one-shot", "tiered", "break-even", "tier2/opt", "fastpath"} {
		if !strings.Contains(out, want) {
			t.Fatalf("formatted table missing %q:\n%s", want, out)
		}
	}
}
