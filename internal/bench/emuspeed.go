package bench

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/emu"
)

// EmuSpeedResult compares the emulator's execution tiers on the
// unspecialized element kernel: the per-instruction interpreter, the
// block-translating engine, the tracing JIT pinned to its bytecode VM, and
// the full trace tier with native x86-64 emission and trace linking — all
// on identical inputs.
type EmuSpeedResult struct {
	Rounds       int           // interior-row passes per engine
	Calls        int           // total kernel calls per engine
	InterpTime   time.Duration // wall clock, per-instruction interpreter
	BlocksTime   time.Duration // wall clock, block-translating engine
	TraceVMTime  time.Duration // wall clock, trace tier pinned to the bytecode VM
	TracesTime   time.Duration // wall clock, trace tier with native emission
	InterpInsts  uint64        // instructions retired on the interpreter
	BlocksInsts  uint64        // instructions retired on the block engine
	TraceVMInsts uint64        // instructions retired on the bytecode-VM trace tier
	TracesInsts  uint64        // instructions retired with native traces on
	Traces       emu.TraceStats
}

// Speedup is the wall-clock ratio interpreter/blocks.
func (r *EmuSpeedResult) Speedup() float64 {
	if r.BlocksTime <= 0 {
		return 0
	}
	return float64(r.InterpTime) / float64(r.BlocksTime)
}

// TraceSpeedup is the wall-clock ratio blocks/traces: what the trace tier
// adds on top of block translation for this workload.
func (r *EmuSpeedResult) TraceSpeedup() float64 {
	if r.TracesTime <= 0 {
		return 0
	}
	return float64(r.BlocksTime) / float64(r.TracesTime)
}

// NativeSpeedup is the wall-clock ratio tracevm/traces: what native
// emission adds over interpreting the same compiled traces on the VM.
func (r *EmuSpeedResult) NativeSpeedup() float64 {
	if r.TracesTime <= 0 {
		return 0
	}
	return float64(r.TraceVMTime) / float64(r.TracesTime)
}

// RunEmuSpeed drives the original (unspecialized) element kernel through one
// machine per engine, sweeping an interior row rounds times, and reports
// wall time and emulated instructions per second for each. Results are
// verified to be identical across all three engines.
func (w *Workload) RunEmuSpeed(rounds int) (*EmuSpeedResult, error) {
	if rounds <= 0 {
		rounds = 50
	}
	entry, _, _, _ := w.inputFor(Element, Flat, DBrewLLVM)
	n := w.SZ - 2

	runOne := func(interp, traces, noNative bool) (time.Duration, uint64, error) {
		m := emu.NewMachine(w.Mem)
		m.Interp = interp
		m.Traces = traces
		m.TraceOpts.NoNativeTraces = noNative
		start := time.Now()
		for round := 0; round < rounds; round++ {
			for col := 1; col <= n; col++ {
				idx := uint64(w.SZ + col) // row 1
				args := []uint64{w.FlatAddr, w.M1.Region.Start, w.M2.Region.Start, idx}
				if _, err := m.Call(entry, emu.CallArgs{Ints: args}, 0); err != nil {
					return 0, 0, err
				}
			}
		}
		return time.Since(start), m.InstCount, nil
	}

	interpTime, interpInsts, err := runOne(true, false, false)
	if err != nil {
		return nil, fmt.Errorf("bench: emuspeed interp: %w", err)
	}
	blocksTime, blocksInsts, err := runOne(false, false, false)
	if err != nil {
		return nil, fmt.Errorf("bench: emuspeed blocks: %w", err)
	}
	vmTime, vmInsts, err := runOne(false, true, true)
	if err != nil {
		return nil, fmt.Errorf("bench: emuspeed tracevm: %w", err)
	}
	before := emu.ReadTraceStats()
	tracesTime, tracesInsts, err := runOne(false, true, false)
	if err != nil {
		return nil, fmt.Errorf("bench: emuspeed traces: %w", err)
	}
	after := emu.ReadTraceStats()
	if interpInsts != blocksInsts || blocksInsts != vmInsts || vmInsts != tracesInsts {
		return nil, fmt.Errorf("bench: emuspeed engines disagree: interp retired %d instructions, blocks %d, tracevm %d, traces %d",
			interpInsts, blocksInsts, vmInsts, tracesInsts)
	}
	return &EmuSpeedResult{
		Rounds:       rounds,
		Calls:        rounds * n,
		InterpTime:   interpTime,
		BlocksTime:   blocksTime,
		TraceVMTime:  vmTime,
		TracesTime:   tracesTime,
		InterpInsts:  interpInsts,
		BlocksInsts:  blocksInsts,
		TraceVMInsts: vmInsts,
		TracesInsts:  tracesInsts,
		Traces: emu.TraceStats{
			Compiled:          after.Compiled - before.Compiled,
			CompiledO3:        after.CompiledO3 - before.CompiledO3,
			Aborted:           after.Aborted - before.Aborted,
			Runs:              after.Runs - before.Runs,
			Iters:             after.Iters - before.Iters,
			SideExits:         after.SideExits - before.SideExits,
			NativeCompiled:    after.NativeCompiled - before.NativeCompiled,
			NativeDeopts:      after.NativeDeopts - before.NativeDeopts,
			Links:             after.Links - before.Links,
			LinkInvalidations: after.LinkInvalidations - before.LinkInvalidations,
		},
	}, nil
}

// Format renders the engine comparison.
func (r *EmuSpeedResult) Format() string {
	var b strings.Builder
	b.WriteString("Emulator execution engines — interpreter vs translated blocks vs traced superblocks\n")
	fmt.Fprintf(&b, "  workload: unspecialized flat element kernel, %d calls (%d rounds over an interior row)\n",
		r.Calls, r.Rounds)
	line := func(name string, d time.Duration, insts uint64) {
		persec := 0.0
		if d > 0 {
			persec = float64(insts) / d.Seconds()
		}
		fmt.Fprintf(&b, "  %-8s %10v  %12d instructions  %10.3g inst/s\n",
			name, d.Round(time.Microsecond), insts, persec)
	}
	line("interp", r.InterpTime, r.InterpInsts)
	line("blocks", r.BlocksTime, r.BlocksInsts)
	line("tracevm", r.TraceVMTime, r.TraceVMInsts)
	line("traces", r.TracesTime, r.TracesInsts)
	fmt.Fprintf(&b, "  speedup: blocks %.2fx over interp, traces %.2fx over blocks, native %.2fx over trace VM\n",
		r.Speedup(), r.TraceSpeedup(), r.NativeSpeedup())
	fmt.Fprintf(&b, "  trace tier: %d compiled (%d at O3, %d native), %d aborted, %d runs, %d iterations, %d side exits\n",
		r.Traces.Compiled, r.Traces.CompiledO3, r.Traces.NativeCompiled, r.Traces.Aborted,
		r.Traces.Runs, r.Traces.Iters, r.Traces.SideExits)
	fmt.Fprintf(&b, "  native: %d exit-stub deopts, %d trace links (%d link invalidations)\n",
		r.Traces.NativeDeopts, r.Traces.Links, r.Traces.LinkInvalidations)
	return b.String()
}
