package bench

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/emu"
)

// EmuSpeedResult compares the emulator's two execution engines on the
// unspecialized element kernel: the per-instruction interpreter against the
// block-translating engine, on identical inputs.
type EmuSpeedResult struct {
	Rounds      int           // interior-row passes per engine
	Calls       int           // total kernel calls per engine
	InterpTime  time.Duration // wall clock, per-instruction interpreter
	BlocksTime  time.Duration // wall clock, block-translating engine
	InterpInsts uint64        // instructions retired on the interpreter
	BlocksInsts uint64        // instructions retired on the block engine
}

// Speedup is the wall-clock ratio interpreter/blocks.
func (r *EmuSpeedResult) Speedup() float64 {
	if r.BlocksTime <= 0 {
		return 0
	}
	return float64(r.InterpTime) / float64(r.BlocksTime)
}

// RunEmuSpeed drives the original (unspecialized) element kernel through one
// machine per engine, sweeping an interior row rounds times, and reports
// wall time and emulated instructions per second for each. Results are
// verified to be identical across the two engines.
func (w *Workload) RunEmuSpeed(rounds int) (*EmuSpeedResult, error) {
	if rounds <= 0 {
		rounds = 50
	}
	entry, _, _, _ := w.inputFor(Element, Flat, DBrewLLVM)
	n := w.SZ - 2

	runOne := func(interp bool) (time.Duration, uint64, error) {
		m := emu.NewMachine(w.Mem)
		m.Interp = interp
		start := time.Now()
		for round := 0; round < rounds; round++ {
			for col := 1; col <= n; col++ {
				idx := uint64(w.SZ + col) // row 1
				args := []uint64{w.FlatAddr, w.M1.Region.Start, w.M2.Region.Start, idx}
				if _, err := m.Call(entry, emu.CallArgs{Ints: args}, 0); err != nil {
					return 0, 0, err
				}
			}
		}
		return time.Since(start), m.InstCount, nil
	}

	interpTime, interpInsts, err := runOne(true)
	if err != nil {
		return nil, fmt.Errorf("bench: emuspeed interp: %w", err)
	}
	blocksTime, blocksInsts, err := runOne(false)
	if err != nil {
		return nil, fmt.Errorf("bench: emuspeed blocks: %w", err)
	}
	if interpInsts != blocksInsts {
		return nil, fmt.Errorf("bench: emuspeed engines disagree: interp retired %d instructions, blocks %d",
			interpInsts, blocksInsts)
	}
	return &EmuSpeedResult{
		Rounds:      rounds,
		Calls:       rounds * n,
		InterpTime:  interpTime,
		BlocksTime:  blocksTime,
		InterpInsts: interpInsts,
		BlocksInsts: blocksInsts,
	}, nil
}

// Format renders the engine comparison.
func (r *EmuSpeedResult) Format() string {
	var b strings.Builder
	b.WriteString("Emulator execution engines — per-instruction interpreter vs translated blocks\n")
	fmt.Fprintf(&b, "  workload: unspecialized flat element kernel, %d calls (%d rounds over an interior row)\n",
		r.Calls, r.Rounds)
	line := func(name string, d time.Duration, insts uint64) {
		persec := 0.0
		if d > 0 {
			persec = float64(insts) / d.Seconds()
		}
		fmt.Fprintf(&b, "  %-8s %10v  %12d instructions  %10.3g inst/s\n",
			name, d.Round(time.Microsecond), insts, persec)
	}
	line("interp", r.InterpTime, r.InterpInsts)
	line("blocks", r.BlocksTime, r.BlocksInsts)
	fmt.Fprintf(&b, "  speedup: %.2fx\n", r.Speedup())
	return b.String()
}
