package trace

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestSpanRecording(t *testing.T) {
	tr := New("compile")
	outer := tr.Start("cache")
	inner := tr.Start("rewrite").Int("insts_in", 12).Int("code_bytes", 40)
	time.Sleep(time.Millisecond)
	inner.End()
	outer.Outcome("miss").End()
	tr.Finish()

	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	if spans[0].Name != "cache" || spans[0].Depth != 0 {
		t.Errorf("span 0 = %+v, want cache at depth 0", spans[0])
	}
	if spans[1].Name != "rewrite" || spans[1].Depth != 1 {
		t.Errorf("span 1 = %+v, want rewrite at depth 1", spans[1])
	}
	if spans[0].Outcome != "miss" {
		t.Errorf("outcome = %q, want miss", spans[0].Outcome)
	}
	if v, ok := spans[1].Attr("insts_in"); !ok || v != 12 {
		t.Errorf("insts_in = %d, %v", v, ok)
	}
	if spans[1].DurNS <= 0 {
		t.Error("inner span has no duration")
	}
	// Child must lie within its parent.
	if spans[1].StartNS < spans[0].StartNS ||
		spans[1].StartNS+spans[1].DurNS > spans[0].StartNS+spans[0].DurNS {
		t.Errorf("child [%d,+%d] escapes parent [%d,+%d]",
			spans[1].StartNS, spans[1].DurNS, spans[0].StartNS, spans[0].DurNS)
	}
	if tr.TotalNS() < spans[0].DurNS {
		t.Errorf("total %d < outer span %d", tr.TotalNS(), spans[0].DurNS)
	}
}

func TestNilTraceIsInert(t *testing.T) {
	var tr *Trace
	r := tr.Start("anything")
	r.Int("k", 1).Outcome("x")
	r.End()
	r.EndErr(nil)
	tr.Finish()
	if tr.Spans() != nil || tr.JSON() != nil || tr.TotalNS() != 0 || tr.Name() != "" {
		t.Error("nil trace leaked state")
	}
	if tr.Find("anything") != nil {
		t.Error("nil trace found a span")
	}
	if got := tr.String(); got != "(no trace)" {
		t.Errorf("String() = %q", got)
	}
}

// TestNilTraceAllocationFree pins the disabled-by-default fast path: a nil
// trace must record nothing and allocate nothing.
func TestNilTraceAllocationFree(t *testing.T) {
	var tr *Trace
	allocs := testing.AllocsPerRun(1000, func() {
		sp := tr.Start("stage")
		sp.Int("n", 1)
		sp.End()
	})
	if allocs != 0 {
		t.Errorf("nil-trace span cycle allocates %v times, want 0", allocs)
	}
}

func TestJSONShape(t *testing.T) {
	tr := New("rewrite")
	tr.Start("lift").Int("ir_values_out", 99).End()
	tr.Finish()
	var decoded struct {
		Name    string `json:"name"`
		Start   string `json:"start"`
		TotalNS int64  `json:"total_ns"`
		Spans   []Span `json:"spans"`
	}
	if err := json.Unmarshal(tr.JSON(), &decoded); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if decoded.Name != "rewrite" || len(decoded.Spans) != 1 {
		t.Fatalf("decoded %+v", decoded)
	}
	if v, ok := decoded.Spans[0].Attr("ir_values_out"); !ok || v != 99 {
		t.Errorf("attr lost in JSON round trip: %d %v", v, ok)
	}
	if _, err := time.Parse(time.RFC3339Nano, decoded.Start); err != nil {
		t.Errorf("start timestamp: %v", err)
	}
}

func TestStringTree(t *testing.T) {
	tr := New("demo")
	a := tr.Start("optimize")
	tr.Start("optimize.round").Int("instcombine", 3).End()
	a.End()
	tr.Finish()
	out := tr.String()
	if !strings.Contains(out, "optimize.round") || !strings.Contains(out, "instcombine=3") {
		t.Errorf("missing content:\n%s", out)
	}
	// The child line must be indented deeper than the parent line.
	var parentIndent, childIndent int
	for _, line := range strings.Split(out, "\n") {
		trimmed := strings.TrimLeft(line, " ")
		if strings.HasPrefix(trimmed, "optimize.round") {
			childIndent = len(line) - len(trimmed)
		} else if strings.HasPrefix(trimmed, "optimize") {
			parentIndent = len(line) - len(trimmed)
		}
	}
	if childIndent <= parentIndent {
		t.Errorf("child indent %d <= parent indent %d:\n%s", childIndent, parentIndent, out)
	}
}

func TestEndErr(t *testing.T) {
	tr := New("x")
	tr.Start("jit").EndErr(errTest)
	sp := tr.Find("jit")
	if sp == nil || sp.Outcome != "error: boom" {
		t.Fatalf("span %+v", sp)
	}
	// Depth must have unwound so a sibling is not nested.
	tr.Start("next").End()
	if got := tr.Find("next").Depth; got != 0 {
		t.Errorf("sibling depth = %d, want 0", got)
	}
}

var errTest = errorString("boom")

type errorString string

func (e errorString) Error() string { return string(e) }
