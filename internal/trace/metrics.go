package trace

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"net/http"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Registry is a pull-model metrics registry rendering the Prometheus text
// exposition format (version 0.0.4). Collectors are closures sampled at
// scrape time, so registering is cheap and the instrumented subsystems keep
// their existing atomic counters — the registry is just a shared schema over
// them. It is the one /metrics surface for both engine-embedded and daemon
// deployments.
type Registry struct {
	mu   sync.Mutex
	fams map[string]*family
}

// family is one metric family: a name, help text, a type, and a sampler.
type family struct {
	name, help, kind string
	samples          func() []Sample
	histogram        func() HistogramData
}

// Sample is one sample of a counter/gauge family. Label is rendered inside
// the braces verbatim (e.g. `tier="1"`); leave it empty for an unlabeled
// metric.
type Sample struct {
	Label string
	Value float64
}

// HistogramBucket is one cumulative histogram bucket: the count of
// observations with value <= UpperBound (in seconds for latency metrics).
type HistogramBucket struct {
	UpperBound      float64
	CumulativeCount uint64
}

// HistogramData is a point-in-time histogram: cumulative buckets plus the
// observation count and (possibly estimated) sum.
type HistogramData struct {
	Buckets     []HistogramBucket
	SampleCount uint64
	SampleSum   float64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: make(map[string]*family)}
}

func (r *Registry) register(f *family) {
	r.mu.Lock()
	r.fams[f.name] = f
	r.mu.Unlock()
}

// Counter registers a monotonically increasing metric.
func (r *Registry) Counter(name, help string, fn func() float64) {
	r.register(&family{name: name, help: help, kind: "counter",
		samples: func() []Sample { return []Sample{{Value: fn()}} }})
}

// Gauge registers a metric that can go up and down.
func (r *Registry) Gauge(name, help string, fn func() float64) {
	r.register(&family{name: name, help: help, kind: "gauge",
		samples: func() []Sample { return []Sample{{Value: fn()}} }})
}

// CounterVec registers a labeled counter family; fn returns one sample per
// label set.
func (r *Registry) CounterVec(name, help string, fn func() []Sample) {
	r.register(&family{name: name, help: help, kind: "counter", samples: fn})
}

// GaugeVec registers a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, fn func() []Sample) {
	r.register(&family{name: name, help: help, kind: "gauge", samples: fn})
}

// Histogram registers a histogram family sampled at scrape time.
func (r *Registry) Histogram(name, help string, fn func() HistogramData) {
	r.register(&family{name: name, help: help, kind: "histogram", histogram: fn})
}

// escapeHelp escapes backslashes and newlines per the exposition format.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WriteTo renders every family in name order.
func (r *Registry) WriteTo(w io.Writer) (int64, error) {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.fams))
	for _, f := range r.fams {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	var b bytes.Buffer
	for _, f := range fams {
		fmt.Fprintf(&b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.kind)
		if f.kind == "histogram" {
			h := f.histogram()
			for _, bk := range h.Buckets {
				le := formatValue(bk.UpperBound)
				fmt.Fprintf(&b, "%s_bucket{le=%q} %d\n", f.name, le, bk.CumulativeCount)
			}
			fmt.Fprintf(&b, "%s_bucket{le=\"+Inf\"} %d\n", f.name, h.SampleCount)
			fmt.Fprintf(&b, "%s_sum %s\n", f.name, formatValue(h.SampleSum))
			fmt.Fprintf(&b, "%s_count %d\n", f.name, h.SampleCount)
			continue
		}
		for _, s := range f.samples() {
			if s.Label == "" {
				fmt.Fprintf(&b, "%s %s\n", f.name, formatValue(s.Value))
			} else {
				fmt.Fprintf(&b, "%s{%s} %s\n", f.name, s.Label, formatValue(s.Value))
			}
		}
	}
	n, err := w.Write(b.Bytes())
	return int64(n), err
}

// Text renders the registry to a string.
func (r *Registry) Text() string {
	var b strings.Builder
	r.WriteTo(&b)
	return b.String()
}

// ContentType is the exposition format content type.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// ServeHTTP serves the registry as a /metrics endpoint.
func (r *Registry) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", ContentType)
	w.WriteHeader(http.StatusOK)
	r.WriteTo(w)
}

var (
	metricNameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	sampleLineRe = regexp.MustCompile(
		`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"(?:,[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*")*\})? ([-+]?(?:[0-9]*\.?[0-9]+(?:[eE][-+]?[0-9]+)?|Inf|NaN))( [0-9]+)?$`)
)

// Lint validates data against the Prometheus text exposition format: every
// sample line must parse, every TYPE must be a known metric type, samples
// must follow their family's TYPE line, and histogram families must end with
// a "+Inf" bucket plus _sum and _count samples. It is the checker the
// /metrics tests assert against.
func Lint(data []byte) error {
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	typed := make(map[string]string)
	histParts := make(map[string]map[string]bool)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 3 {
				return fmt.Errorf("line %d: malformed comment %q", lineno, line)
			}
			switch fields[1] {
			case "HELP":
				if !metricNameRe.MatchString(fields[2]) {
					return fmt.Errorf("line %d: bad metric name %q", lineno, fields[2])
				}
			case "TYPE":
				if len(fields) != 4 {
					return fmt.Errorf("line %d: TYPE needs a name and a type", lineno)
				}
				switch fields[3] {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return fmt.Errorf("line %d: unknown metric type %q", lineno, fields[3])
				}
				if !metricNameRe.MatchString(fields[2]) {
					return fmt.Errorf("line %d: bad metric name %q", lineno, fields[2])
				}
				typed[fields[2]] = fields[3]
				if fields[3] == "histogram" {
					histParts[fields[2]] = make(map[string]bool)
				}
			default:
				return fmt.Errorf("line %d: unknown comment keyword %q", lineno, fields[1])
			}
			continue
		}
		m := sampleLineRe.FindStringSubmatch(line)
		if m == nil {
			return fmt.Errorf("line %d: malformed sample %q", lineno, line)
		}
		name := m[1]
		base := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			trimmed := strings.TrimSuffix(name, suffix)
			if t, ok := typed[trimmed]; ok && t == "histogram" && strings.HasSuffix(name, suffix) {
				base = trimmed
				part := strings.TrimPrefix(suffix, "_")
				if suffix == "_bucket" && strings.Contains(m[2], `le="+Inf"`) {
					part = "inf"
				}
				histParts[base][part] = true
				break
			}
		}
		if _, ok := typed[base]; !ok {
			return fmt.Errorf("line %d: sample %q precedes its TYPE line", lineno, name)
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if lineno == 0 {
		return fmt.Errorf("empty exposition")
	}
	for name, parts := range histParts {
		for _, want := range []string{"inf", "sum", "count"} {
			if !parts[want] {
				return fmt.Errorf("histogram %s is missing its %s sample", name, map[string]string{
					"inf": `le="+Inf" bucket`, "sum": "_sum", "count": "_count"}[want])
			}
		}
	}
	return nil
}
