package trace

import (
	"net/http/httptest"
	"strings"
	"testing"
)

func demoRegistry() *Registry {
	reg := NewRegistry()
	reg.Counter("demo_hits_total", "Cache hits.", func() float64 { return 42 })
	reg.Gauge("demo_entries", "Live entries.", func() float64 { return 7 })
	reg.GaugeVec("demo_funcs", "Functions per tier.", func() []Sample {
		return []Sample{
			{Label: `tier="0"`, Value: 1},
			{Label: `tier="1"`, Value: 2},
		}
	})
	reg.Histogram("demo_latency_seconds", "Request latency.", func() HistogramData {
		return HistogramData{
			Buckets: []HistogramBucket{
				{UpperBound: 0.001, CumulativeCount: 3},
				{UpperBound: 0.01, CumulativeCount: 5},
			},
			SampleCount: 6,
			SampleSum:   0.123,
		}
	})
	return reg
}

func TestRegistryOutputLints(t *testing.T) {
	out := demoRegistry().Text()
	if err := Lint([]byte(out)); err != nil {
		t.Fatalf("registry output fails its own linter: %v\n%s", err, out)
	}
	for _, want := range []string{
		"# TYPE demo_hits_total counter",
		"demo_hits_total 42",
		"# TYPE demo_funcs gauge",
		`demo_funcs{tier="1"} 2`,
		`demo_latency_seconds_bucket{le="0.001"} 3`,
		`demo_latency_seconds_bucket{le="+Inf"} 6`,
		"demo_latency_seconds_sum 0.123",
		"demo_latency_seconds_count 6",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRegistryDeterministicOrder(t *testing.T) {
	reg := demoRegistry()
	if a, b := reg.Text(), reg.Text(); a != b {
		t.Error("two renders differ")
	}
	out := reg.Text()
	// Families are sorted by name: demo_entries before demo_funcs before
	// demo_hits_total before demo_latency_seconds.
	order := []string{"demo_entries", "demo_funcs", "demo_hits_total", "demo_latency_seconds"}
	last := -1
	for _, name := range order {
		i := strings.Index(out, "# HELP "+name+" ")
		if i < 0 {
			t.Fatalf("missing family %s", name)
		}
		if i < last {
			t.Errorf("family %s out of order", name)
		}
		last = i
	}
}

func TestRegistryServeHTTP(t *testing.T) {
	rec := httptest.NewRecorder()
	demoRegistry().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("status %d", rec.Code)
	}
	if got := rec.Header().Get("Content-Type"); got != ContentType {
		t.Errorf("content type %q", got)
	}
	if err := Lint(rec.Body.Bytes()); err != nil {
		t.Errorf("served body fails lint: %v", err)
	}
}

func TestRegistryReRegisterReplaces(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("x_total", "first", func() float64 { return 1 })
	reg.Counter("x_total", "second", func() float64 { return 2 })
	out := reg.Text()
	if strings.Contains(out, "first") || !strings.Contains(out, "x_total 2") {
		t.Errorf("re-registration did not replace:\n%s", out)
	}
}

func TestLintRejects(t *testing.T) {
	cases := map[string]string{
		"sample without TYPE":  "foo 1\n",
		"bad type":             "# TYPE foo zigzag\nfoo 1\n",
		"malformed sample":     "# TYPE foo counter\nfoo one\n",
		"bad name":             "# TYPE 9foo counter\n9foo 1\n",
		"histogram no +Inf":    "# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n",
		"histogram no sum":     "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 1\nh_count 1\n",
		"empty":                "",
		"help missing name":    "# HELP\n",
		"unknown comment word": "# FOO bar baz\n",
	}
	for name, in := range cases {
		if err := Lint([]byte(in)); err == nil {
			t.Errorf("%s: lint accepted %q", name, in)
		}
	}
	good := "# HELP ok_total fine\n# TYPE ok_total counter\nok_total{a=\"b\"} 3 1700000000\n"
	if err := Lint([]byte(good)); err != nil {
		t.Errorf("lint rejected valid input: %v", err)
	}
}
