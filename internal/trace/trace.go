// Package trace is the pipeline's zero-dependency observability layer: a
// low-overhead span recorder for per-stage compile telemetry (this file)
// and a Prometheus-text-format metrics registry (metrics.go) shared by
// engine-embedded and daemon deployments.
//
// A Trace is a flat list of spans ordered by start time, each carrying its
// nesting depth, duration, integer size attributes (instruction counts, IR
// values, code bytes), and an outcome. The recording API is nil-safe: every
// method on a nil *Trace and on the Region handles it returns is a no-op
// that performs no allocation, so pipeline stages thread a possibly-nil
// trace unconditionally and the disabled path stays free.
package trace

import (
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"time"
)

// Attr is one integer span attribute (sizes, counts).
type Attr struct {
	Key string `json:"key"`
	Val int64  `json:"val"`
}

// Span is one recorded pipeline stage. StartNS is the offset from the
// trace's start; Depth is the nesting level (a span contains every later
// span of greater depth until the next span of its own depth or less).
type Span struct {
	Name    string `json:"name"`
	StartNS int64  `json:"start_ns"`
	DurNS   int64  `json:"dur_ns"`
	Depth   int    `json:"depth"`
	Outcome string `json:"outcome"`
	Attrs   []Attr `json:"attrs,omitempty"`
}

// Attr returns the value of the named attribute and whether it is present.
func (s *Span) Attr(key string) (int64, bool) {
	for _, a := range s.Attrs {
		if a.Key == key {
			return a.Val, true
		}
	}
	return 0, false
}

// Trace collects the spans of one pipeline run (a Rewrite call, a tier
// promotion, a service request). Create with New; a nil *Trace is the
// disabled recorder and every method on it no-ops.
type Trace struct {
	name  string
	start time.Time

	mu      sync.Mutex
	spans   []Span
	depth   int
	totalNS int64
}

// New starts an enabled trace.
func New(name string) *Trace {
	return &Trace{name: name, start: time.Now()}
}

// Name returns the trace's name ("" on nil).
func (t *Trace) Name() string {
	if t == nil {
		return ""
	}
	return t.name
}

// Region is the handle of an open span. The zero Region (returned by a nil
// Trace) is inert: Int, Outcome, and End do nothing.
type Region struct {
	t   *Trace
	idx int
	at  time.Time
}

// Start opens a span. Spans opened before the previous one ended nest one
// level deeper; close each region exactly once with End.
func (t *Trace) Start(name string) Region {
	if t == nil {
		return Region{}
	}
	now := time.Now()
	t.mu.Lock()
	idx := len(t.spans)
	t.spans = append(t.spans, Span{
		Name:    name,
		StartNS: now.Sub(t.start).Nanoseconds(),
		Depth:   t.depth,
		Outcome: "ok",
	})
	t.depth++
	t.mu.Unlock()
	return Region{t: t, idx: idx, at: now}
}

// Int attaches an integer attribute and returns the region for chaining.
func (r Region) Int(key string, v int64) Region {
	if r.t == nil {
		return r
	}
	r.t.mu.Lock()
	sp := &r.t.spans[r.idx]
	sp.Attrs = append(sp.Attrs, Attr{Key: key, Val: v})
	r.t.mu.Unlock()
	return r
}

// Outcome replaces the span's outcome (default "ok").
func (r Region) Outcome(s string) Region {
	if r.t == nil {
		return r
	}
	r.t.mu.Lock()
	r.t.spans[r.idx].Outcome = s
	r.t.mu.Unlock()
	return r
}

// End closes the span, recording its duration.
func (r Region) End() {
	if r.t == nil {
		return
	}
	d := time.Since(r.at).Nanoseconds()
	r.t.mu.Lock()
	r.t.spans[r.idx].DurNS = d
	if r.t.depth > 0 {
		r.t.depth--
	}
	r.t.mu.Unlock()
}

// EndErr closes the span with outcome "error: <err>" when err is non-nil.
func (r Region) EndErr(err error) {
	if err != nil {
		r.Outcome("error: " + err.Error())
	}
	r.End()
}

// Finish records the trace's total duration. Further spans may still be
// added (Finish is idempotent; the last call wins).
func (t *Trace) Finish() {
	if t == nil {
		return
	}
	d := time.Since(t.start).Nanoseconds()
	t.mu.Lock()
	t.totalNS = d
	t.mu.Unlock()
}

// TotalNS returns the duration recorded by Finish (0 before).
func (t *Trace) TotalNS() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.totalNS
}

// Spans returns a copy of the recorded spans in start order.
func (t *Trace) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, len(t.spans))
	copy(out, t.spans)
	for i := range out {
		out[i].Attrs = append([]Attr(nil), t.spans[i].Attrs...)
	}
	return out
}

// Find returns the first span with the given name, or nil.
func (t *Trace) Find(name string) *Span {
	for _, sp := range t.Spans() {
		if sp.Name == name {
			s := sp
			return &s
		}
	}
	return nil
}

// jsonTrace is the wire form of a trace.
type jsonTrace struct {
	Name    string `json:"name"`
	Start   string `json:"start"`
	TotalNS int64  `json:"total_ns"`
	Spans   []Span `json:"spans"`
}

// JSON marshals the trace (nil on a nil trace).
func (t *Trace) JSON() []byte {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	jt := jsonTrace{
		Name:    t.name,
		Start:   t.start.UTC().Format(time.RFC3339Nano),
		TotalNS: t.totalNS,
		Spans:   t.spans,
	}
	out, err := json.Marshal(jt)
	t.mu.Unlock()
	if err != nil {
		return nil
	}
	return out
}

// String renders the trace as an indented tree, one span per line.
func (t *Trace) String() string {
	if t == nil {
		return "(no trace)"
	}
	spans := t.Spans()
	var b strings.Builder
	fmt.Fprintf(&b, "%s (%v)\n", t.Name(), time.Duration(t.TotalNS()))
	for _, sp := range spans {
		fmt.Fprintf(&b, "%s%-18s %10v", strings.Repeat("  ", sp.Depth+1), sp.Name, time.Duration(sp.DurNS))
		for _, a := range sp.Attrs {
			fmt.Fprintf(&b, " %s=%d", a.Key, a.Val)
		}
		if sp.Outcome != "ok" {
			fmt.Fprintf(&b, " [%s]", sp.Outcome)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
