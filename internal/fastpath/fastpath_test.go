package fastpath

import (
	"bytes"
	"testing"

	"repro/internal/abi"
	"repro/internal/emu"
	"repro/internal/x86"
	"repro/internal/x86/asm"
)

const codeBase = 0x401000

var i2Sig = abi.Signature{Params: []abi.Class{abi.ClassInt, abi.ClassInt}, Ret: abi.ClassInt}

// place assembles machine code at codeBase in a fresh memory image.
func place(t *testing.T, build func(b *asm.Builder)) (*emu.Memory, []byte) {
	t.Helper()
	b := asm.NewBuilder()
	build(b)
	code, _, err := b.Assemble(codeBase)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	mem := emu.NewMemory(0x10000000)
	if _, err := mem.MapBytes(codeBase, code, "code"); err != nil {
		t.Fatal(err)
	}
	return mem, code
}

// maxCode is straight-line (CMOV instead of a branch): shortcut-eligible.
func maxCode(b *asm.Builder) {
	b.I(x86.MOV, x86.R64(x86.RAX), x86.R64(x86.RDI))
	b.I(x86.CMP, x86.R64(x86.RAX), x86.R64(x86.RSI))
	b.Emit(x86.Inst{Op: x86.CMOVCC, Cond: x86.CondL, Dst: x86.R64(x86.RAX), Src: x86.R64(x86.RSI)})
	b.Ret()
}

// branchCode takes the larger argument via a conditional jump: not eligible.
func branchCode(b *asm.Builder) {
	done := b.NewLabel()
	b.I(x86.MOV, x86.R64(x86.RAX), x86.R64(x86.RDI))
	b.I(x86.CMP, x86.R64(x86.RAX), x86.R64(x86.RSI))
	b.Jcc(x86.CondGE, done)
	b.I(x86.MOV, x86.R64(x86.RAX), x86.R64(x86.RSI))
	b.Bind(done)
	b.Ret()
}

func run(t *testing.T, mem *emu.Memory, entry uint64, a, b uint64) uint64 {
	t.Helper()
	m := emu.NewMachine(mem)
	got, err := m.Call(entry, emu.CallArgs{Ints: []uint64{a, b}}, 1_000_000)
	if err != nil {
		t.Fatalf("call %#x: %v", entry, err)
	}
	return got
}

func TestShortcutCopiesStraightLine(t *testing.T) {
	mem, code := place(t, maxCode)
	before := ReadStats()
	res, err := Compile(mem, codeBase, "max", i2Sig, Options{NamePrefix: "t1."})
	if err != nil {
		t.Fatal(err)
	}
	if res.Mode != ModeCopy {
		t.Fatalf("mode = %v, want copy", res.Mode)
	}
	if res.Entry == codeBase {
		t.Fatal("copy installed at the original entry")
	}
	if res.Insts != 4 {
		t.Errorf("scanned insts = %d, want 4", res.Insts)
	}
	got, err := mem.Bytes(res.Entry, res.CodeSize)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, code) {
		t.Errorf("copied code differs:\n got %x\nwant %x", got, code)
	}
	for _, in := range [][2]uint64{{3, 9}, {9, 3}, {7, 7}, {0, 0xFFFFFFFFFFFFFFFF}} {
		if w, g := run(t, mem, codeBase, in[0], in[1]), run(t, mem, res.Entry, in[0], in[1]); g != w {
			t.Errorf("max(%d,%d): copy = %d, original = %d", in[0], in[1], g, w)
		}
	}
	after := ReadStats()
	if after.Copies != before.Copies+1 {
		t.Errorf("Copies = %d, want %d", after.Copies, before.Copies+1)
	}
}

func TestBranchFallsBackToLower(t *testing.T) {
	mem, _ := place(t, branchCode)
	before := ReadStats()
	res, err := Compile(mem, codeBase, "max", i2Sig, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Mode != ModeLower {
		t.Fatalf("mode = %v, want lower", res.Mode)
	}
	for _, in := range [][2]uint64{{3, 9}, {9, 3}, {7, 7}} {
		if w, g := run(t, mem, codeBase, in[0], in[1]), run(t, mem, res.Entry, in[0], in[1]); g != w {
			t.Errorf("max(%d,%d): lowered = %d, original = %d", in[0], in[1], g, w)
		}
	}
	after := ReadStats()
	if after.Lowers != before.Lowers+1 || after.ShortcutRejects != before.ShortcutRejects+1 {
		t.Errorf("stats = %+v, want one more lower and reject than %+v", after, before)
	}
}

func TestRIPRelativeCopyFixup(t *testing.T) {
	mem, code := place(t, func(b *asm.Builder) {
		// RIP-relative load: position-dependent, so the copy route must
		// re-encode the displacement against the new address. The
		// displacement points 8 bytes past RET, where we map a constant.
		b.Emit(x86.Inst{Op: x86.MOV, Dst: x86.R64(x86.RAX), Src: x86.MemRIP(8, 1)})
		b.Ret()
	})
	// The mov is 7 bytes, so its RIP target (end + 1) is codeBase + 8 —
	// right after the 1-byte RET.
	if _, err := mem.MapBytes(codeBase+8, []byte{0x2A, 0, 0, 0, 0, 0, 0, 0}, "const"); err != nil {
		t.Fatal(err)
	}
	before := ReadStats()
	res, err := Compile(mem, codeBase, "ripload", abi.Signature{Ret: abi.ClassInt}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Mode != ModeCopy {
		t.Fatalf("mode = %v, want copy (RIP-relative fixup)", res.Mode)
	}
	got, err := mem.Bytes(res.Entry, res.CodeSize)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(got, code) {
		t.Error("fixed-up copy is byte-identical to the original: displacement was not retargeted")
	}
	if g := run(t, mem, res.Entry, 0, 0); g != 0x2A {
		t.Errorf("relocated ripload = %#x, want 0x2a", g)
	}
	after := ReadStats()
	if after.CopyFixups != before.CopyFixups+1 {
		t.Errorf("CopyFixups = %d, want %d", after.CopyFixups, before.CopyFixups+1)
	}
}

func TestRIPRelativeStoreCopyFixup(t *testing.T) {
	// A RIP-relative *store* followed by a reload, exercising a destination
	// memory operand fixup: writes 0x55 into the slot after RET, reads it
	// back.
	mem, _ := place(t, func(b *asm.Builder) {
		b.I(x86.MOV, x86.R64(x86.RAX), x86.Imm(0x55, 4))
		// Both instructions target the 8-byte slot right past RET.
		// Sizes: mov-imm 7, store 7, load 7, ret 1 → end offsets 7/14/21/22.
		b.Emit(x86.Inst{Op: x86.MOV, Dst: x86.MemRIP(8, 22-14), Src: x86.R64(x86.RAX)})
		b.Emit(x86.Inst{Op: x86.MOV, Dst: x86.R64(x86.RAX), Src: x86.MemRIP(8, 22-21)})
		b.Ret()
	})
	if _, err := mem.MapBytes(codeBase+22, make([]byte, 8), "slot"); err != nil {
		t.Fatal(err)
	}
	res, err := Compile(mem, codeBase, "ripstore", abi.Signature{Ret: abi.ClassInt}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Mode != ModeCopy {
		t.Fatalf("mode = %v, want copy (RIP-relative fixup)", res.Mode)
	}
	if g := run(t, mem, res.Entry, 0, 0); g != 0x55 {
		t.Errorf("relocated ripstore = %#x, want 0x55", g)
	}
	// Both copies hit the same absolute slot: the original still sees the
	// value stored by the relocated code's target computation.
	if g := run(t, mem, codeBase, 0, 0); g != 0x55 {
		t.Errorf("original ripstore = %#x, want 0x55", g)
	}
}

func TestNoShortcutForcesLower(t *testing.T) {
	mem, _ := place(t, maxCode)
	res, err := Compile(mem, codeBase, "max", i2Sig, Options{NoShortcut: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Mode != ModeLower {
		t.Fatalf("mode = %v, want lower", res.Mode)
	}
	for _, in := range [][2]uint64{{3, 9}, {9, 3}} {
		if w, g := run(t, mem, codeBase, in[0], in[1]), run(t, mem, res.Entry, in[0], in[1]); g != w {
			t.Errorf("max(%d,%d): lowered = %d, original = %d", in[0], in[1], g, w)
		}
	}
}

func TestScanStraightLine(t *testing.T) {
	mem, code := place(t, maxCode)
	insts, n, ok := scanStraightLine(mem, codeBase, 0)
	if !ok || n != len(code) || len(insts) != 4 {
		t.Errorf("scan = (%d, %d, %v), want (%d, 4, true)", n, len(insts), ok, len(code))
	}
	// A scan cap below the function size rejects.
	if _, _, ok := scanStraightLine(mem, codeBase, 2); ok {
		t.Error("scan with 2-byte cap should reject")
	}
	// Decoding into unmapped memory rejects (no RET found).
	if _, _, ok := scanStraightLine(mem, codeBase+uint64(len(code)), 64); ok {
		t.Error("scan past the function should reject")
	}
}
