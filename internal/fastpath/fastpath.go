// Package fastpath is the TPDE-style single-pass baseline backend: it turns
// original machine code into installable tier-1 code with the minimum work
// that still yields bit-identical architectural behavior.
//
// Two routes, tried in order:
//
//  1. Direct-from-x86 shortcut (ModeCopy): if the function is straight-line
//     code — decodes cleanly from the entry to a RET with no other control
//     flow — the bytes are copied into a fresh code region. Encodings that
//     are position-independent copy verbatim; RIP-relative operands are
//     re-encoded with the displacement retargeted at the original data. No
//     lift, no IR, no regalloc; compile cost is one decode scan plus a
//     memcpy (plus per-instruction re-encode when fixups are needed).
//
//  2. Single-pass lower (ModeLower): otherwise the code is lifted to IR once
//     and handed to the JIT's baseline mode (jit.Compiler.Baseline), which
//     fuses instruction selection and a fixed all-in-slots allocation into
//     one walk — no optimizer rounds, no liveness fixpoint, no linear scan.
//
// Callers that need the legacy lift+O1+linear-scan tier-1 pipeline for A/B
// comparison keep it behind their own flag; see dbrewllvm's
// TierConfig.LegacyTier1 and the dbrewd fastpath deadline strategy.
package fastpath

import (
	"fmt"
	"sync/atomic"

	"repro/internal/abi"
	"repro/internal/emu"
	"repro/internal/jit"
	"repro/internal/lift"
	"repro/internal/trace"
	"repro/internal/x86"
)

// Mode identifies which route produced the code.
type Mode int

const (
	// ModeCopy is the direct-from-x86 shortcut: straight-line original
	// bytes copied verbatim into a new region.
	ModeCopy Mode = iota
	// ModeLower is the fused single-pass compile: lift once, then the
	// baseline JIT backend.
	ModeLower
)

func (m Mode) String() string {
	switch m {
	case ModeCopy:
		return "copy"
	case ModeLower:
		return "lower"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// Options tune a fastpath compile; the zero value is ready to use.
type Options struct {
	// NamePrefix distinguishes code regions of multiple generations of one
	// function, as in jit.Compiler.NamePrefix (e.g. "t1.").
	NamePrefix string
	// Trace, when non-nil, receives one "fastpath" span per Compile with
	// mode and size attributes. A nil Trace records nothing.
	Trace *trace.Trace
	// MaxScan bounds the shortcut's decode scan in bytes (default 4096).
	// Functions longer than this take the lowering route.
	MaxScan int
	// NoShortcut disables the direct-from-x86 route, forcing ModeLower.
	// Used by benchmarks and tests to measure the lowering path alone.
	NoShortcut bool
}

// Result describes a successful fastpath compile.
type Result struct {
	// Entry is the address of the installed code.
	Entry uint64
	// CodeSize is the emitted (or copied) code size in bytes.
	CodeSize int
	// Mode is the route that produced the code.
	Mode Mode
	// Insts is the number of machine instructions scanned on the copy
	// route (0 for ModeLower).
	Insts int
}

// Stats are process-wide fastpath counters, in the style of
// emu.ReadTraceStats.
type Stats struct {
	// Copies and Lowers count successful compiles per route.
	Copies, Lowers uint64
	// CopyFixups counts ModeCopy compiles that needed RIP-relative
	// displacement re-encoding (a subset of Copies).
	CopyFixups uint64
	// ShortcutRejects counts entries that failed the straight-line scan
	// (branch, decode error, over MaxScan, or an out-of-range RIP-relative
	// fixup) and fell through to lowering.
	ShortcutRejects uint64
}

var counters struct {
	copies, lowers, fixups, rejects atomic.Uint64
}

// ReadStats returns a snapshot of the process-wide counters.
func ReadStats() Stats {
	return Stats{
		Copies:          counters.copies.Load(),
		Lowers:          counters.lowers.Load(),
		CopyFixups:      counters.fixups.Load(),
		ShortcutRejects: counters.rejects.Load(),
	}
}

const defaultMaxScan = 4096

// Compile produces executable code for the function at entry using the
// cheapest applicable route. The output is behaviorally bit-identical to
// the original code (architectural state, flags, memory effects); only
// compile latency and code placement differ from the optimizing tiers.
func Compile(mem *emu.Memory, entry uint64, name string, sig abi.Signature, opts Options) (*Result, error) {
	sp := opts.Trace.Start("fastpath")
	res, err := compile(mem, entry, name, sig, opts)
	if err != nil {
		sp.EndErr(err)
		return nil, err
	}
	sp.Int("mode", int64(res.Mode)).Int("code_bytes", int64(res.CodeSize)).End()
	return res, nil
}

func compile(mem *emu.Memory, entry uint64, name string, sig abi.Signature, opts Options) (*Result, error) {
	if !opts.NoShortcut {
		if res, ok := tryCopy(mem, entry, name, opts); ok {
			counters.copies.Add(1)
			return res, nil
		}
		counters.rejects.Add(1)
	}

	lo := lift.DefaultOptions()
	lo.Trace = opts.Trace
	l := lift.New(mem, lo)
	f, err := l.LiftFunc(entry, name, sig)
	if err != nil {
		return nil, fmt.Errorf("fastpath: lift %s: %w", name, err)
	}
	comp := jit.NewCompiler(mem)
	comp.Baseline = true
	comp.NamePrefix = opts.NamePrefix
	comp.Trace = opts.Trace
	addr, err := comp.CompileModule(l.Module, f.Nam)
	if err != nil {
		return nil, fmt.Errorf("fastpath: jit %s: %w", name, err)
	}
	counters.lowers.Add(1)
	return &Result{Entry: addr, CodeSize: comp.Sizes[addr], Mode: ModeLower}, nil
}

// tryCopy attempts the direct-from-x86 shortcut: scan for straight-line
// code, then install it at a fresh address — verbatim when every encoding is
// position-independent, or with RIP-relative displacements re-encoded
// against the new location. Returns (nil, false) when the function is not
// copy-eligible (branch, decode error, over MaxScan, or a displacement that
// cannot be expressed from the new address).
func tryCopy(mem *emu.Memory, entry uint64, name string, opts Options) (*Result, bool) {
	insts, n, ok := scanStraightLine(mem, entry, opts.MaxScan)
	if !ok {
		return nil, false
	}
	ripRel := false
	for i := range insts {
		if instRIPRel(&insts[i]) {
			ripRel = true
			break
		}
	}
	if !ripRel {
		// Pure byte copy: the encodings are position-independent.
		code, err := mem.Bytes(entry, n)
		if err != nil {
			return nil, false
		}
		r := mem.Alloc(n, 16, "fastpath."+opts.NamePrefix+name)
		copy(r.Data, code)
		return &Result{Entry: r.Start, CodeSize: n, Mode: ModeCopy, Insts: len(insts)}, true
	}
	// RIP-relative fixup: the output is rebuilt instruction by instruction —
	// position-independent encodings are copied verbatim, RIP-relative ones
	// are re-encoded with the displacement retargeted at the original data.
	// Sizing pass at base 0 (lengths are displacement-independent: RIP
	// operands always encode disp32), then the real pass at the allocated
	// address with range checks.
	size, ok := emitCopyFixed(mem, entry, insts, nil)
	if !ok {
		return nil, false
	}
	r := mem.Alloc(size, 16, "fastpath."+opts.NamePrefix+name)
	if got, ok := emitCopyFixed(mem, entry, insts, r); !ok || got != size {
		return nil, false
	}
	counters.fixups.Add(1)
	return &Result{Entry: r.Start, CodeSize: size, Mode: ModeCopy, Insts: len(insts)}, true
}

// emitCopyFixed writes the relocated copy of insts into out (or, with out ==
// nil, sizes it at a placeholder base). Returns the total byte size and
// whether every RIP-relative displacement stayed in range.
func emitCopyFixed(mem *emu.Memory, entry uint64, insts []x86.Inst, out *emu.Region) (int, bool) {
	base := uint64(0)
	if out != nil {
		base = out.Start
	}
	e := x86.NewEncoder(base)
	for i := range insts {
		in := insts[i]
		if !instRIPRel(&in) {
			raw, err := mem.Bytes(in.Addr, in.Len)
			if err != nil {
				return 0, false
			}
			e.Buf = append(e.Buf, raw...)
			e.PC += uint64(in.Len)
			continue
		}
		// The decoded displacement is relative to the end of the original
		// instruction; the encoder's contract is the same relative to the
		// new end, so retarget each operand at its original absolute data.
		before := len(e.Buf)
		for _, op := range []*x86.Operand{&in.Dst, &in.Src, &in.Src2} {
			if op.Kind != x86.KMem || !op.Mem.RIPRel {
				continue
			}
			target := in.Addr + uint64(in.Len) + uint64(int64(op.Mem.Disp))
			// Conservative length bound: re-encoding cannot shrink the
			// fields that precede the displacement, so the new end is at
			// most at pc+15. Verify the exact value after encoding.
			newDisp := int64(target) - int64(e.PC) - int64(in.Len)
			if newDisp < -(1<<31) || newDisp >= 1<<31 {
				return 0, false
			}
			op.Mem.Disp = int32(newDisp)
		}
		if err := e.Encode(in); err != nil {
			return 0, false
		}
		if newLen := len(e.Buf) - before; newLen != in.Len {
			// The encoder chose a different-length form than the original
			// bytes: the pre-computed displacement (relative to the new
			// end) would be off. Reject; the lowering route handles it.
			return 0, false
		}
	}
	if out != nil {
		if len(e.Buf) != len(out.Data) {
			return len(e.Buf), false
		}
		copy(out.Data, e.Buf)
	}
	return len(e.Buf), true
}

func instRIPRel(in *x86.Inst) bool {
	for _, op := range []x86.Operand{in.Dst, in.Src, in.Src2} {
		if op.Kind == x86.KMem && op.Mem.RIPRel {
			return true
		}
	}
	return false
}

// scanStraightLine decodes forward from entry and returns the decoded
// instructions plus total byte length when the function is eligible for the
// copy shortcut: every instruction decodes and none is a branch except a
// final RET. RIP-relative operands are allowed — the copy route re-encodes
// them against the new address (see tryCopy).
func scanStraightLine(mem *emu.Memory, entry uint64, maxScan int) ([]x86.Inst, int, bool) {
	if maxScan <= 0 {
		maxScan = defaultMaxScan
	}
	off := 0
	var insts []x86.Inst
	for off < maxScan {
		addr := entry + uint64(off)
		// An instruction is at most 15 bytes; near the end of a mapped
		// region a full window may fault, so shrink until a read succeeds.
		var window []byte
		for n := 16; n >= 1; n-- {
			if b, err := mem.Bytes(addr, n); err == nil {
				window = b
				break
			}
		}
		if window == nil {
			return nil, 0, false
		}
		in, err := x86.Decode(window, addr)
		if err != nil {
			return nil, 0, false
		}
		off += in.Len
		insts = append(insts, in)
		if in.Op == x86.RET {
			return insts, off, true
		}
		if in.IsBranch() {
			return nil, 0, false
		}
	}
	return nil, 0, false
}
