// Package fastpath is the TPDE-style single-pass baseline backend: it turns
// original machine code into installable tier-1 code with the minimum work
// that still yields bit-identical architectural behavior.
//
// Two routes, tried in order:
//
//  1. Direct-from-x86 shortcut (ModeCopy): if the function is straight-line
//     code — decodes cleanly from the entry to a RET with no other control
//     flow and no RIP-relative operands — the bytes are position-independent
//     and are simply copied into a fresh code region. No lift, no IR, no
//     regalloc; compile cost is one decode scan plus a memcpy.
//
//  2. Single-pass lower (ModeLower): otherwise the code is lifted to IR once
//     and handed to the JIT's baseline mode (jit.Compiler.Baseline), which
//     fuses instruction selection and a fixed all-in-slots allocation into
//     one walk — no optimizer rounds, no liveness fixpoint, no linear scan.
//
// Callers that need the legacy lift+O1+linear-scan tier-1 pipeline for A/B
// comparison keep it behind their own flag; see dbrewllvm's
// TierConfig.LegacyTier1 and the dbrewd fastpath deadline strategy.
package fastpath

import (
	"fmt"
	"sync/atomic"

	"repro/internal/abi"
	"repro/internal/emu"
	"repro/internal/jit"
	"repro/internal/lift"
	"repro/internal/trace"
	"repro/internal/x86"
)

// Mode identifies which route produced the code.
type Mode int

const (
	// ModeCopy is the direct-from-x86 shortcut: straight-line original
	// bytes copied verbatim into a new region.
	ModeCopy Mode = iota
	// ModeLower is the fused single-pass compile: lift once, then the
	// baseline JIT backend.
	ModeLower
)

func (m Mode) String() string {
	switch m {
	case ModeCopy:
		return "copy"
	case ModeLower:
		return "lower"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// Options tune a fastpath compile; the zero value is ready to use.
type Options struct {
	// NamePrefix distinguishes code regions of multiple generations of one
	// function, as in jit.Compiler.NamePrefix (e.g. "t1.").
	NamePrefix string
	// Trace, when non-nil, receives one "fastpath" span per Compile with
	// mode and size attributes. A nil Trace records nothing.
	Trace *trace.Trace
	// MaxScan bounds the shortcut's decode scan in bytes (default 4096).
	// Functions longer than this take the lowering route.
	MaxScan int
	// NoShortcut disables the direct-from-x86 route, forcing ModeLower.
	// Used by benchmarks and tests to measure the lowering path alone.
	NoShortcut bool
}

// Result describes a successful fastpath compile.
type Result struct {
	// Entry is the address of the installed code.
	Entry uint64
	// CodeSize is the emitted (or copied) code size in bytes.
	CodeSize int
	// Mode is the route that produced the code.
	Mode Mode
	// Insts is the number of machine instructions scanned on the copy
	// route (0 for ModeLower).
	Insts int
}

// Stats are process-wide fastpath counters, in the style of
// emu.ReadTraceStats.
type Stats struct {
	// Copies and Lowers count successful compiles per route.
	Copies, Lowers uint64
	// ShortcutRejects counts entries that failed the straight-line scan
	// (branch, RIP-relative operand, decode error, or over MaxScan) and
	// fell through to lowering.
	ShortcutRejects uint64
}

var counters struct {
	copies, lowers, rejects atomic.Uint64
}

// ReadStats returns a snapshot of the process-wide counters.
func ReadStats() Stats {
	return Stats{
		Copies:          counters.copies.Load(),
		Lowers:          counters.lowers.Load(),
		ShortcutRejects: counters.rejects.Load(),
	}
}

const defaultMaxScan = 4096

// Compile produces executable code for the function at entry using the
// cheapest applicable route. The output is behaviorally bit-identical to
// the original code (architectural state, flags, memory effects); only
// compile latency and code placement differ from the optimizing tiers.
func Compile(mem *emu.Memory, entry uint64, name string, sig abi.Signature, opts Options) (*Result, error) {
	sp := opts.Trace.Start("fastpath")
	res, err := compile(mem, entry, name, sig, opts)
	if err != nil {
		sp.EndErr(err)
		return nil, err
	}
	sp.Int("mode", int64(res.Mode)).Int("code_bytes", int64(res.CodeSize)).End()
	return res, nil
}

func compile(mem *emu.Memory, entry uint64, name string, sig abi.Signature, opts Options) (*Result, error) {
	if !opts.NoShortcut {
		if n, insts, ok := scanStraightLine(mem, entry, opts.MaxScan); ok {
			code, err := mem.Bytes(entry, n)
			if err != nil {
				return nil, fmt.Errorf("fastpath: read %s at %#x: %w", name, entry, err)
			}
			r := mem.Alloc(n, 16, "fastpath."+opts.NamePrefix+name)
			copy(r.Data, code)
			counters.copies.Add(1)
			return &Result{Entry: r.Start, CodeSize: n, Mode: ModeCopy, Insts: insts}, nil
		}
		counters.rejects.Add(1)
	}

	lo := lift.DefaultOptions()
	lo.Trace = opts.Trace
	l := lift.New(mem, lo)
	f, err := l.LiftFunc(entry, name, sig)
	if err != nil {
		return nil, fmt.Errorf("fastpath: lift %s: %w", name, err)
	}
	comp := jit.NewCompiler(mem)
	comp.Baseline = true
	comp.NamePrefix = opts.NamePrefix
	comp.Trace = opts.Trace
	addr, err := comp.CompileModule(l.Module, f.Nam)
	if err != nil {
		return nil, fmt.Errorf("fastpath: jit %s: %w", name, err)
	}
	counters.lowers.Add(1)
	return &Result{Entry: addr, CodeSize: comp.Sizes[addr], Mode: ModeLower}, nil
}

// scanStraightLine decodes forward from entry and reports (totalBytes,
// instCount, true) when the function is eligible for the copy shortcut:
// every instruction decodes, none is a branch except a final RET, and no
// operand is RIP-relative (copied code runs at a different address, so only
// position-independent encodings survive relocation by memcpy).
func scanStraightLine(mem *emu.Memory, entry uint64, maxScan int) (int, int, bool) {
	if maxScan <= 0 {
		maxScan = defaultMaxScan
	}
	off, insts := 0, 0
	for off < maxScan {
		addr := entry + uint64(off)
		// An instruction is at most 15 bytes; near the end of a mapped
		// region a full window may fault, so shrink until a read succeeds.
		var window []byte
		for n := 16; n >= 1; n-- {
			if b, err := mem.Bytes(addr, n); err == nil {
				window = b
				break
			}
		}
		if window == nil {
			return 0, 0, false
		}
		in, err := x86.Decode(window, addr)
		if err != nil {
			return 0, 0, false
		}
		off += in.Len
		insts++
		if in.Op == x86.RET {
			return off, insts, true
		}
		if in.IsBranch() {
			return 0, 0, false
		}
		for _, op := range []x86.Operand{in.Dst, in.Src, in.Src2} {
			if op.Kind == x86.KMem && op.Mem.RIPRel {
				return 0, 0, false
			}
		}
	}
	return 0, 0, false
}
