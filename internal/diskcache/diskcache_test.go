package diskcache

// Crash/corruption-safety suite (one of the PR's satellite tasks): torn
// writes, truncation, bit flips, concurrent writers and readers, and
// kill-between-write-and-rename must all checksum-reject and read as misses
// — never as wrong data and never as a crash. Run with -race.

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/codecache"
)

func keyOf(parts ...uint64) codecache.Key {
	h := codecache.NewHasher()
	for _, p := range parts {
		h.U64(p)
	}
	return h.Sum()
}

func artifactOf(n int, tag byte) *Artifact {
	code := bytes.Repeat([]byte{tag}, n)
	return &Artifact{Code: code, IR: fmt.Sprintf("define @f%d()", tag), Meta: []byte(`{"v":1}`)}
}

func openT(t *testing.T, dir string, maxBytes int64) *Store {
	t.Helper()
	s, err := Open(dir, maxBytes)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	k := keyOf(1, 2, 3)
	a := &Artifact{Code: []byte{0x48, 0x89, 0xf8, 0xc3}, IR: "define i64 @f()", Meta: []byte(`{"decoded":7}`)}
	k2, got, err := Decode(Encode(k, a))
	if err != nil {
		t.Fatal(err)
	}
	if k2 != k {
		t.Fatalf("decoded key %v, want %v", k2, k)
	}
	if !bytes.Equal(got.Code, a.Code) || got.IR != a.IR || !bytes.Equal(got.Meta, a.Meta) {
		t.Fatalf("round trip mismatch: %+v vs %+v", got, a)
	}
	// Empty sections round-trip too.
	if _, got, err = Decode(Encode(k, &Artifact{})); err != nil {
		t.Fatal(err)
	} else if len(got.Code) != 0 || got.IR != "" || len(got.Meta) != 0 {
		t.Fatalf("empty artifact round trip: %+v", got)
	}
}

func TestPutGetPersistsAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, 1<<20)
	k := keyOf(42)
	a := artifactOf(128, 0xAB)
	if err := s.Put(k, a); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get(k)
	if !ok || !bytes.Equal(got.Code, a.Code) {
		t.Fatalf("Get after Put: ok=%v", ok)
	}

	// A fresh Store over the same directory (the restart) finds it again.
	s2 := openT(t, dir, 1<<20)
	got, ok = s2.Get(k)
	if !ok {
		t.Fatal("artifact lost across reopen")
	}
	if !bytes.Equal(got.Code, a.Code) || got.IR != a.IR || !bytes.Equal(got.Meta, a.Meta) {
		t.Fatal("artifact bytes changed across reopen")
	}
	if st := s2.Stats(); st.Entries != 1 || st.Hits != 1 {
		t.Fatalf("reopened stats: %v", st)
	}
}

func TestTruncatedArtifactRejected(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, 1<<20)
	k := keyOf(7)
	if err := s.Put(k, artifactOf(256, 0x11)); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, k.String()+fileExt)
	// Truncate mid-payload: the checksum no longer matches.
	if err := os.Truncate(path, headerSize+100); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(k); ok {
		t.Fatal("truncated artifact served as valid")
	}
	st := s.Stats()
	if st.Corruptions != 1 {
		t.Fatalf("corruptions = %d, want 1", st.Corruptions)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("corrupt file not deleted")
	}
	// Recompile-and-Put heals the slot.
	if err := s.Put(k, artifactOf(256, 0x11)); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(k); !ok {
		t.Fatal("healed artifact not served")
	}
}

func TestBitFlippedPayloadRejected(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, 1<<20)
	k := keyOf(9)
	if err := s.Put(k, artifactOf(512, 0x22)); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, k.String()+fileExt)
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	buf[headerSize+300] ^= 0x01 // single bit flip deep in the code section
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(k); ok {
		t.Fatal("bit-flipped artifact served as valid")
	}
	if st := s.Stats(); st.Corruptions != 1 || st.Misses != 1 {
		t.Fatalf("stats after bit flip: %v", st)
	}
}

func TestHeaderTooShortRejectedAtOpen(t *testing.T) {
	dir := t.TempDir()
	k := keyOf(3)
	// A file shorter than the header cannot be anything but corrupt.
	if err := os.WriteFile(filepath.Join(dir, k.String()+fileExt), []byte("short"), 0o644); err != nil {
		t.Fatal(err)
	}
	s := openT(t, dir, 1<<20)
	if s.Len() != 0 {
		t.Fatal("sub-header file indexed")
	}
	if st := s.Stats(); st.Corruptions != 1 {
		t.Fatalf("corruptions = %d, want 1", st.Corruptions)
	}
}

func TestKillBetweenWriteAndRenameSwept(t *testing.T) {
	dir := t.TempDir()
	k := keyOf(5)
	// Simulate a writer that died after writing its temp file but before the
	// rename: a complete, valid encoding under a temp name.
	tmpPath := filepath.Join(dir, k.String()+".tmp123456")
	if err := os.WriteFile(tmpPath, Encode(k, artifactOf(64, 0x33)), 0o644); err != nil {
		t.Fatal(err)
	}
	s := openT(t, dir, 1<<20)
	if _, err := os.Stat(tmpPath); !os.IsNotExist(err) {
		t.Fatal("stale tmp file survived Open")
	}
	// The key reads as a miss (the write never committed), and a fresh Put
	// works normally.
	if _, ok := s.Get(k); ok {
		t.Fatal("uncommitted artifact visible")
	}
	if err := s.Put(k, artifactOf(64, 0x33)); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(k); !ok {
		t.Fatal("Put after sweep failed")
	}
}

func TestWrongKeyFileRejected(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, 1<<20)
	k1, k2 := keyOf(1), keyOf(2)
	if err := s.Put(k1, artifactOf(64, 0x44)); err != nil {
		t.Fatal(err)
	}
	// Rename k1's (internally consistent) file over k2's slot: the embedded
	// key disagrees with the file name, so it must not serve for k2.
	if err := os.Rename(filepath.Join(dir, k1.String()+fileExt), filepath.Join(dir, k2.String()+fileExt)); err != nil {
		t.Fatal(err)
	}
	s2 := openT(t, dir, 1<<20)
	if _, ok := s2.Get(k2); ok {
		t.Fatal("cross-key renamed artifact served")
	}
	if st := s2.Stats(); st.Corruptions != 1 {
		t.Fatalf("corruptions = %d, want 1", st.Corruptions)
	}
}

func TestLRUEvictionByBytes(t *testing.T) {
	dir := t.TempDir()
	// Each artifact is ~1KiB of payload; bound to ~3 of them.
	s := openT(t, dir, 3*1100)
	keys := make([]codecache.Key, 5)
	for i := range keys {
		keys[i] = keyOf(uint64(i))
		if err := s.Put(keys[i], artifactOf(1024, byte(i))); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.Bytes > 3*1100 {
		t.Fatalf("bytes = %d over bound", st.Bytes)
	}
	if st.Evictions == 0 {
		t.Fatal("no evictions despite exceeding the byte bound")
	}
	if _, ok := s.Get(keys[0]); ok {
		t.Fatal("oldest artifact survived eviction")
	}
	if _, ok := s.Get(keys[4]); !ok {
		t.Fatal("newest artifact evicted")
	}
	// The evicted file is gone from disk, not just the index.
	if _, err := os.Stat(filepath.Join(dir, keys[0].String()+fileExt)); !os.IsNotExist(err) {
		t.Fatal("evicted artifact file still on disk")
	}
}

func TestOpenEvictsOverBound(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, 1<<20)
	for i := 0; i < 4; i++ {
		if err := s.Put(keyOf(uint64(i)), artifactOf(1024, byte(i))); err != nil {
			t.Fatal(err)
		}
	}
	// Reopen with a tighter bound: the scan itself evicts the oldest.
	s2 := openT(t, dir, 2*1100)
	if st := s2.Stats(); st.Bytes > 2*1100 || st.Entries > 2 {
		t.Fatalf("reopen did not enforce the bound: %v", st)
	}
}

func TestRemove(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, 1<<20)
	k := keyOf(1)
	if err := s.Put(k, artifactOf(32, 0x55)); err != nil {
		t.Fatal(err)
	}
	if !s.Remove(k) {
		t.Fatal("Remove of stored key reported false")
	}
	if s.Remove(k) {
		t.Fatal("second Remove reported true")
	}
	if _, ok := s.Get(k); ok {
		t.Fatal("removed artifact still served")
	}
	if _, err := os.Stat(filepath.Join(dir, k.String()+fileExt)); !os.IsNotExist(err) {
		t.Fatal("removed artifact file still on disk")
	}
}

// TestConcurrentWritersAndReaders hammers one store with same-key and
// distinct-key traffic; under -race this pins the locking discipline, and
// every successful Get must decode to one of the values some writer wrote.
func TestConcurrentWritersAndReaders(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, 1<<20)
	const (
		workers = 8
		rounds  = 50
	)
	shared := keyOf(0xFFFF)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			own := keyOf(uint64(w))
			for i := 0; i < rounds; i++ {
				if err := s.Put(shared, artifactOf(256, byte(w))); err != nil {
					t.Error(err)
					return
				}
				if err := s.Put(own, artifactOf(128, byte(w))); err != nil {
					t.Error(err)
					return
				}
				if a, ok := s.Get(shared); ok {
					if len(a.Code) != 256 {
						t.Errorf("shared artifact has %d code bytes, want 256", len(a.Code))
						return
					}
					// All bytes must come from ONE writer: no torn mixes.
					for _, b := range a.Code[1:] {
						if b != a.Code[0] {
							t.Error("torn artifact observed")
							return
						}
					}
				}
				if a, ok := s.Get(own); !ok || a.Code[0] != byte(w) {
					t.Errorf("worker %d lost its own artifact (ok=%v)", w, ok)
					return
				}
			}
		}()
	}
	wg.Wait()
	if st := s.Stats(); st.Corruptions != 0 {
		t.Fatalf("concurrent traffic produced %d corruption rejections", st.Corruptions)
	}
}
