// Package diskcache implements the persistent second level of the
// specialization cache: an on-disk, content-addressed artifact store with
// one file per cache key. Because codecache keys canonically hash the
// entry, signature, optimization configuration, and the *contents* of every
// fixed memory range, an artifact written under a key is valid for as long
// as the file survives — across process restarts and across machines — and
// a mutated input simply produces a different key. The store therefore
// never needs coherence traffic; it only needs integrity, which the
// checksummed artifact format provides: a torn, truncated, or bit-flipped
// file fails its checksum on read, is deleted, and reads as a miss (the
// caller recompiles), never as a crash or as wrong code.
//
// Durability and crash safety come from the classic write-to-temp +
// atomic-rename protocol: a writer that dies between write and rename
// leaves only a *.tmp file, which Open sweeps; a reader never observes a
// half-written artifact under a final name. The store is bounded by total
// payload bytes with LRU eviction (access order is maintained in memory and
// approximated by file modification time across restarts).
package diskcache

import (
	"container/list"
	"encoding/binary"
	"fmt"
	"hash/crc64"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/codecache"
)

// Artifact is one cached compilation result: the generated machine code,
// the formatted IR it was compiled from (empty when the producing pipeline
// did not run the IR backend), and an opaque metadata blob (the engine
// stores its compile statistics here as JSON; this package does not
// interpret it). The same encoding serves as the artifact wire format of
// the fleet's GET /artifact/{key} endpoint, so a peer fetch is verified by
// the same checksum as a disk read.
type Artifact struct {
	Code []byte
	IR   string
	Meta []byte
}

// payloadSize is the artifact's contribution to the store's byte bound.
func (a *Artifact) payloadSize() int64 {
	return int64(len(a.Code) + len(a.IR) + len(a.Meta))
}

// Artifact file layout (little-endian):
//
//	offset size field
//	     0    8 magic "DBRWART1"
//	     8    8 CRC64-ECMA over bytes [16, EOF)
//	    16   16 cache key (self-describing: detects cross-key renames)
//	    32    4 code length
//	    36    4 IR length
//	    40    4 meta length
//	    44    . code bytes, IR bytes, meta bytes
//
// The fixed 44-byte header in front of raw section bytes keeps the layout
// mmap-friendly: code starts at a constant offset and sections are
// contiguous and unencoded.
const (
	magic      = "DBRWART1"
	headerSize = 44
)

var crcTable = crc64.MakeTable(crc64.ECMA)

// Encode serializes the artifact under key k in the checksummed file/wire
// format.
func Encode(k codecache.Key, a *Artifact) []byte {
	buf := make([]byte, headerSize+int(a.payloadSize()))
	copy(buf[0:8], magic)
	copy(buf[16:32], k[:])
	binary.LittleEndian.PutUint32(buf[32:36], uint32(len(a.Code)))
	binary.LittleEndian.PutUint32(buf[36:40], uint32(len(a.IR)))
	binary.LittleEndian.PutUint32(buf[40:44], uint32(len(a.Meta)))
	p := buf[headerSize:]
	copy(p, a.Code)
	copy(p[len(a.Code):], a.IR)
	copy(p[len(a.Code)+len(a.IR):], a.Meta)
	binary.LittleEndian.PutUint64(buf[8:16], crc64.Checksum(buf[16:], crcTable))
	return buf
}

// Decode parses and verifies an encoded artifact, returning the key it was
// written under. Any structural or checksum violation is an error — the
// caller treats it as corruption, not as data.
func Decode(buf []byte) (codecache.Key, *Artifact, error) {
	var k codecache.Key
	if len(buf) < headerSize {
		return k, nil, fmt.Errorf("diskcache: artifact truncated: %d bytes < %d-byte header", len(buf), headerSize)
	}
	if string(buf[0:8]) != magic {
		return k, nil, fmt.Errorf("diskcache: bad magic %q", buf[0:8])
	}
	sum := binary.LittleEndian.Uint64(buf[8:16])
	if got := crc64.Checksum(buf[16:], crcTable); got != sum {
		return k, nil, fmt.Errorf("diskcache: checksum mismatch: header %#x, computed %#x", sum, got)
	}
	copy(k[:], buf[16:32])
	nCode := int(binary.LittleEndian.Uint32(buf[32:36]))
	nIR := int(binary.LittleEndian.Uint32(buf[36:40]))
	nMeta := int(binary.LittleEndian.Uint32(buf[40:44]))
	if headerSize+nCode+nIR+nMeta != len(buf) {
		return k, nil, fmt.Errorf("diskcache: section lengths %d+%d+%d disagree with %d payload bytes",
			nCode, nIR, nMeta, len(buf)-headerSize)
	}
	p := buf[headerSize:]
	a := &Artifact{
		Code: append([]byte(nil), p[:nCode]...),
		IR:   string(p[nCode : nCode+nIR]),
		Meta: append([]byte(nil), p[nCode+nIR:]...),
	}
	return k, a, nil
}

// Stats is a snapshot of the store counters.
type Stats struct {
	// Hits counts Gets served from a valid artifact file.
	Hits int64
	// Misses counts Gets that found no (valid) file.
	Misses int64
	// Writes counts artifacts persisted by Put.
	Writes int64
	// Evictions counts artifacts dropped by the byte-capacity bound.
	Evictions int64
	// Corruptions counts files rejected by Decode (bad magic, torn write,
	// bit flip, length mismatch) and deleted. Each one also counts a Miss.
	Corruptions int64
	// Entries is the current number of stored artifacts; Bytes their total
	// payload size.
	Entries int64
	Bytes   int64
}

func (s Stats) String() string {
	return fmt.Sprintf("disk hits %d, misses %d, writes %d, evictions %d, corruptions %d, entries %d (%d bytes)",
		s.Hits, s.Misses, s.Writes, s.Evictions, s.Corruptions, s.Entries, s.Bytes)
}

// fileExt is the artifact file suffix; files are named <key-hex>.art.
const fileExt = ".art"

type diskEntry struct {
	key   codecache.Key
	bytes int64
}

// Store is the on-disk artifact store. All methods are safe for concurrent
// use; Get/Put of distinct keys serialize only on the in-memory index, while
// file I/O for a torn or concurrent write is made safe by the temp+rename
// protocol.
type Store struct {
	dir      string
	maxBytes int64

	mu      sync.Mutex
	index   map[codecache.Key]*list.Element // of *diskEntry
	lru     *list.List                      // front = most recently used
	totalMu int64                           // current payload bytes (under mu)

	hits        atomic.Int64
	misses      atomic.Int64
	writes      atomic.Int64
	evictions   atomic.Int64
	corruptions atomic.Int64
}

// DefaultMaxBytes bounds the store when Open is given maxBytes <= 0.
const DefaultMaxBytes = 256 << 20

// Open creates (if necessary) and scans dir, rebuilding the artifact index
// from the files present: stale *.tmp files from writers that died before
// their rename are swept, artifact files with unparsable names are ignored,
// and LRU order is seeded from file modification times (oldest first).
// Contents are NOT checksummed at open — corruption is detected (and the
// file deleted) on first Get, keeping restart cost proportional to the
// directory listing, not the cache size. maxBytes bounds the total payload
// bytes (<= 0 selects DefaultMaxBytes); if the scanned files already exceed
// it, the oldest are evicted immediately.
func Open(dir string, maxBytes int64) (*Store, error) {
	if maxBytes <= 0 {
		maxBytes = DefaultMaxBytes
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("diskcache: %w", err)
	}
	s := &Store{
		dir:      dir,
		maxBytes: maxBytes,
		index:    make(map[codecache.Key]*list.Element),
		lru:      list.New(),
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("diskcache: %w", err)
	}
	type scanned struct {
		e     diskEntry
		mtime int64
	}
	var found []scanned
	for _, de := range entries {
		name := de.Name()
		if de.IsDir() {
			continue
		}
		if strings.Contains(name, ".tmp") {
			os.Remove(filepath.Join(dir, name)) // torn write: writer died pre-rename
			continue
		}
		if !strings.HasSuffix(name, fileExt) {
			continue
		}
		k, err := codecache.ParseKey(strings.TrimSuffix(name, fileExt))
		if err != nil {
			continue
		}
		info, err := de.Info()
		if err != nil {
			continue
		}
		size := info.Size() - headerSize
		if size < 0 {
			// Too short to even hold a header: certain corruption.
			os.Remove(filepath.Join(dir, name))
			s.corruptions.Add(1)
			continue
		}
		found = append(found, scanned{diskEntry{key: k, bytes: size}, info.ModTime().UnixNano()})
	}
	sort.Slice(found, func(i, j int) bool { return found[i].mtime < found[j].mtime })
	for i := range found {
		e := found[i].e
		s.index[e.key] = s.lru.PushFront(&diskEntry{key: e.key, bytes: e.bytes})
		s.totalMu += e.bytes
	}
	s.mu.Lock()
	s.evictOver()
	s.mu.Unlock()
	return s, nil
}

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

func (s *Store) path(k codecache.Key) string {
	return filepath.Join(s.dir, k.String()+fileExt)
}

// Get loads and verifies the artifact for k. A missing file is a miss; a
// file that fails structural or checksum validation is deleted, counted as
// a corruption, and reported as a miss — the caller recompiles and Put
// replaces the file with a good copy.
func (s *Store) Get(k codecache.Key) (*Artifact, bool) {
	s.mu.Lock()
	el, ok := s.index[k]
	if ok {
		s.lru.MoveToFront(el)
	}
	s.mu.Unlock()
	if !ok {
		s.misses.Add(1)
		return nil, false
	}
	buf, err := os.ReadFile(s.path(k))
	if err != nil {
		// Indexed but unreadable (e.g. removed underneath us): drop it.
		s.dropIndex(k)
		s.misses.Add(1)
		return nil, false
	}
	gotKey, a, err := Decode(buf)
	if err != nil || gotKey != k {
		s.deleteCorrupt(k)
		s.misses.Add(1)
		return nil, false
	}
	s.hits.Add(1)
	return a, true
}

// Contains reports whether an artifact file for k is indexed, without
// reading or validating it (a later Get may still reject it as corrupt).
func (s *Store) Contains(k codecache.Key) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.index[k]
	return ok
}

// Put atomically persists the artifact for k: the encoding is written to a
// temp file in the same directory and renamed into place, so concurrent
// readers (and a crash at any instant) observe either the old state or the
// complete new file, never a tear. Writing past the byte bound evicts
// least-recently-used artifacts.
func (s *Store) Put(k codecache.Key, a *Artifact) error {
	buf := Encode(k, a)
	tmp, err := os.CreateTemp(s.dir, k.String()+".tmp*")
	if err != nil {
		return fmt.Errorf("diskcache: %w", err)
	}
	if _, err := tmp.Write(buf); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("diskcache: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("diskcache: %w", err)
	}
	if err := os.Rename(tmp.Name(), s.path(k)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("diskcache: %w", err)
	}
	s.writes.Add(1)

	s.mu.Lock()
	if el, ok := s.index[k]; ok {
		e := el.Value.(*diskEntry)
		s.totalMu += a.payloadSize() - e.bytes
		e.bytes = a.payloadSize()
		s.lru.MoveToFront(el)
	} else {
		s.index[k] = s.lru.PushFront(&diskEntry{key: k, bytes: a.payloadSize()})
		s.totalMu += a.payloadSize()
	}
	s.evictOver()
	s.mu.Unlock()
	return nil
}

// evictOver drops LRU entries (and their files) until the byte bound holds.
// Caller holds s.mu.
func (s *Store) evictOver() {
	for s.totalMu > s.maxBytes && s.lru.Len() > 0 {
		back := s.lru.Back()
		e := back.Value.(*diskEntry)
		s.lru.Remove(back)
		delete(s.index, e.key)
		s.totalMu -= e.bytes
		os.Remove(s.path(e.key))
		s.evictions.Add(1)
	}
}

// Remove deletes the artifact for k (file and index entry), reporting
// whether one was stored. It is the invalidation hook: the engine calls it
// from the in-memory cache's remove hook so a key declared stale can never
// be resurrected from disk.
func (s *Store) Remove(k codecache.Key) bool {
	ok := s.dropIndex(k)
	os.Remove(s.path(k))
	return ok
}

func (s *Store) dropIndex(k codecache.Key) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.index[k]
	if !ok {
		return false
	}
	e := el.Value.(*diskEntry)
	s.lru.Remove(el)
	delete(s.index, k)
	s.totalMu -= e.bytes
	return true
}

func (s *Store) deleteCorrupt(k codecache.Key) {
	s.dropIndex(k)
	os.Remove(s.path(k))
	s.corruptions.Add(1)
}

// Len returns the number of indexed artifacts.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lru.Len()
}

// Stats returns a snapshot of the counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	entries, bytes := int64(s.lru.Len()), s.totalMu
	s.mu.Unlock()
	return Stats{
		Hits:        s.hits.Load(),
		Misses:      s.misses.Load(),
		Writes:      s.writes.Load(),
		Evictions:   s.evictions.Load(),
		Corruptions: s.corruptions.Load(),
		Entries:     entries,
		Bytes:       bytes,
	}
}
