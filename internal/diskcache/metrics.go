package diskcache

import "repro/internal/trace"

// RegisterMetrics exports the store counters into reg under the given
// metric-name prefix (e.g. "dbrew_diskcache"). snapshot is polled on every
// scrape; when it reports ok == false (disk cache disabled) every series
// reads zero, matching the codecache registration contract.
func RegisterMetrics(reg *trace.Registry, prefix string, snapshot func() (Stats, bool)) {
	grab := func() Stats {
		st, ok := snapshot()
		if !ok {
			return Stats{}
		}
		return st
	}
	counter := func(name, help string, field func(Stats) int64) {
		reg.Counter(prefix+"_"+name, help, func() float64 {
			return float64(field(grab()))
		})
	}
	counter("hits_total", "Artifact reads served from a valid disk file.",
		func(s Stats) int64 { return s.Hits })
	counter("misses_total", "Artifact reads that found no valid file.",
		func(s Stats) int64 { return s.Misses })
	counter("writes_total", "Artifacts persisted to disk.",
		func(s Stats) int64 { return s.Writes })
	counter("evictions_total", "Artifacts dropped by the byte-capacity bound.",
		func(s Stats) int64 { return s.Evictions })
	counter("corruptions_total", "Artifact files rejected by checksum/structure validation and deleted.",
		func(s Stats) int64 { return s.Corruptions })
	reg.Gauge(prefix+"_entries", "Artifacts currently stored on disk.",
		func() float64 { return float64(grab().Entries) })
	reg.Gauge(prefix+"_bytes", "Total payload bytes currently stored on disk.",
		func() float64 { return float64(grab().Bytes) })
}
