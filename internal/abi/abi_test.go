package abi

import (
	"testing"

	"repro/internal/x86"
)

func TestLocations(t *testing.T) {
	sig := Signature{Params: []Class{ClassPtr, ClassF64, ClassInt, ClassF64, ClassInt}}
	locs := sig.Locations()
	want := []struct {
		reg x86.Reg
		fp  bool
	}{
		{x86.RDI, false}, {x86.XMM0, true}, {x86.RSI, false}, {x86.XMM1, true}, {x86.RDX, false},
	}
	for i, w := range want {
		if locs[i].Reg != w.reg || locs[i].IsFP != w.fp || locs[i].Index != i {
			t.Errorf("param %d: got %+v, want reg %v fp %v", i, locs[i], w.reg, w.fp)
		}
	}
}

func TestSig(t *testing.T) {
	s := Sig(ClassF64, ClassPtr, ClassInt)
	if s.Ret != ClassF64 || len(s.Params) != 2 {
		t.Errorf("unexpected signature %+v", s)
	}
}

func TestRegisterSets(t *testing.T) {
	seen := map[x86.Reg]bool{}
	for _, r := range append(append([]x86.Reg{}, CallerSaved...), CalleeSaved...) {
		if seen[r] {
			t.Errorf("register %v in both sets", r)
		}
		seen[r] = true
	}
	if seen[x86.RSP] {
		t.Error("rsp must not be in either set")
	}
}
