// Package abi models the System V AMD64 calling convention subset used
// throughout the reproduction: integer/pointer arguments in RDI, RSI, RDX,
// RCX, R8, R9; floating-point arguments in XMM0..XMM7; integer results in
// RAX and floating results in XMM0. DBrew's parameter-fixation API and the
// lifter's function-signature mapping both rely on this (Section II and
// Section III.A of the paper).
package abi

import "repro/internal/x86"

// Class categorizes one parameter or return slot.
type Class uint8

// Parameter classes.
const (
	ClassNone Class = iota
	ClassInt        // 64-bit integer
	ClassPtr        // pointer
	ClassF64        // double
)

// Signature describes a function's parameters and result.
type Signature struct {
	Params []Class
	Ret    Class
}

// Sig builds a signature.
func Sig(ret Class, params ...Class) Signature {
	return Signature{Params: params, Ret: ret}
}

// IntArgRegs is the SysV integer argument register order.
var IntArgRegs = []x86.Reg{x86.RDI, x86.RSI, x86.RDX, x86.RCX, x86.R8, x86.R9}

// ParamLocation describes where one parameter lives.
type ParamLocation struct {
	Reg   x86.Reg // integer or XMM register
	IsFP  bool
	Index int // parameter index
}

// Locations maps every parameter of sig to its register. The paper's note
// about parameter slots applies: each parameter here occupies exactly one
// 64-bit slot, so the mapping is 1:1.
func (s Signature) Locations() []ParamLocation {
	var locs []ParamLocation
	nInt, nFP := 0, 0
	for i, c := range s.Params {
		switch c {
		case ClassF64:
			locs = append(locs, ParamLocation{Reg: x86.XMM0 + x86.Reg(nFP), IsFP: true, Index: i})
			nFP++
		default:
			locs = append(locs, ParamLocation{Reg: IntArgRegs[nInt], Index: i})
			nInt++
		}
	}
	return locs
}

// CallerSaved lists the registers a call clobbers under SysV (excluding the
// return registers, which the caller reads afterwards).
var CallerSaved = []x86.Reg{
	x86.RAX, x86.RCX, x86.RDX, x86.RSI, x86.RDI,
	x86.R8, x86.R9, x86.R10, x86.R11,
}

// CalleeSaved lists registers preserved across calls.
var CalleeSaved = []x86.Reg{x86.RBX, x86.RBP, x86.R12, x86.R13, x86.R14, x86.R15}
