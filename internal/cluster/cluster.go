// Package cluster shares compiled specialization artifacts across a static
// fleet of dbrewd nodes. Ownership of a cache key is decided by consistent
// hashing over the peer list (every node computes the same answer with no
// coordination), and the fleet protocol is deliberately tiny:
//
//	GET    /artifact/{key}         fetch a compiled artifact from its owner
//	GET    /artifact/{key}?wait=1  ... also joining an in-flight compile
//	DELETE /artifact/{key}         eviction broadcast to the owner
//
// Artifacts travel in the diskcache wire encoding, so a peer fetch gets the
// same checksum + embedded-key verification as a disk read: a corrupt or
// mis-keyed response is an error, never wrong code. Peer failures are soft
// by design — every caller degrades to a local compile — and a failing peer
// is skipped for a backoff window instead of being retried on the hot path.
package cluster

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/internal/codecache"
	"repro/internal/diskcache"
)

// ErrNotFound reports a peer answered 404: it owns the key but has no
// artifact (and no in-flight compile when wait was requested).
var ErrNotFound = errors.New("cluster: artifact not found on peer")

// ErrPeerDown reports the peer was skipped because it is inside its failure
// backoff window; no request was sent.
var ErrPeerDown = errors.New("cluster: peer is in backoff")

// ErrSelfOwned reports the local node owns the key, so there is no peer to
// talk to.
var ErrSelfOwned = errors.New("cluster: key is owned by this node")

// Ring is a consistent-hash ring over node addresses. Every node builds the
// ring from the same peer list (order-insensitive) and therefore agrees on
// the owner of every key without coordination; adding or removing one node
// remaps only the keys adjacent to its virtual points.
type Ring struct {
	points []ringPoint // sorted by hash
	nodes  []string    // sorted, deduplicated
}

type ringPoint struct {
	hash uint64
	node string
}

// DefaultReplicas is the virtual-node count per physical node; enough to
// keep the ownership split within a few percent of uniform for small
// fleets.
const DefaultReplicas = 64

// NewRing builds a ring over nodes with the given number of virtual points
// per node (<= 0 selects DefaultReplicas). Duplicate and empty node names
// are dropped.
func NewRing(nodes []string, replicas int) *Ring {
	if replicas <= 0 {
		replicas = DefaultReplicas
	}
	seen := map[string]bool{}
	r := &Ring{}
	for _, n := range nodes {
		if n == "" || seen[n] {
			continue
		}
		seen[n] = true
		r.nodes = append(r.nodes, n)
	}
	sort.Strings(r.nodes)
	for _, n := range r.nodes {
		for i := 0; i < replicas; i++ {
			h := fnv.New64a()
			fmt.Fprintf(h, "%s#%d", n, i)
			r.points = append(r.points, ringPoint{hash: h.Sum64(), node: n})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].node < r.points[j].node
	})
	return r
}

// Nodes returns the ring members, sorted.
func (r *Ring) Nodes() []string { return append([]string(nil), r.nodes...) }

// Owner returns the node owning key k: the first virtual point clockwise of
// the key's hash. It returns "" for an empty ring.
func (r *Ring) Owner(k codecache.Key) string {
	if len(r.points) == 0 {
		return ""
	}
	h := fnv.New64a()
	h.Write(k[:])
	hv := h.Sum64()
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= hv })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].node
}

// Stats are the peer-traffic counters of one Client, all monotonic.
type Stats struct {
	// Fetches counts artifact GETs actually sent to peers.
	Fetches int64
	// FetchHits counts fetches that returned a valid artifact.
	FetchHits int64
	// FetchMisses counts fetches answered 404.
	FetchMisses int64
	// Failures counts fetches and evicts that errored (transport error,
	// bad status, or a response failing checksum/key verification).
	Failures int64
	// Timeouts counts the subset of Failures caused by the peer deadline.
	Timeouts int64
	// SkippedBackoff counts requests not sent because the peer was inside
	// its failure backoff window.
	SkippedBackoff int64
	// Evicts counts eviction broadcasts delivered to an owner.
	Evicts int64
}

// String summarizes the counters.
func (s Stats) String() string {
	return fmt.Sprintf("peer fetches %d (hits %d, misses %d), failures %d (timeouts %d), backoff-skips %d, evicts %d",
		s.Fetches, s.FetchHits, s.FetchMisses, s.Failures, s.Timeouts, s.SkippedBackoff, s.Evicts)
}

// Options tunes a Client; the zero value selects the defaults.
type Options struct {
	// Replicas is the virtual-node count (default DefaultReplicas).
	Replicas int
	// Timeout bounds each peer request (default 2s). Degrading to a local
	// compile after this long is always preferable to waiting.
	Timeout time.Duration
	// Backoff is how long a peer is skipped after a failure (default 5s);
	// each consecutive failure doubles the window up to 8× Backoff.
	Backoff time.Duration
	// HTTPClient overrides the transport (tests inject httptest clients).
	HTTPClient *http.Client
}

func (o Options) withDefaults() Options {
	if o.Replicas <= 0 {
		o.Replicas = DefaultReplicas
	}
	if o.Timeout <= 0 {
		o.Timeout = 2 * time.Second
	}
	if o.Backoff <= 0 {
		o.Backoff = 5 * time.Second
	}
	if o.HTTPClient == nil {
		o.HTTPClient = &http.Client{}
	}
	return o
}

// Client is one node's view of the fleet: the shared ring plus per-peer
// failure state. Safe for concurrent use.
type Client struct {
	self string
	ring *Ring
	opts Options

	mu    sync.Mutex
	down  map[string]*peerState
	stats Stats
}

type peerState struct {
	fails int
	until time.Time
}

// New builds a fleet client for the node at self (a host:port reachable by
// the peers). peers is the full static member list; self is added if
// absent, so every node can be configured with the same list.
func New(self string, peers []string, opts Options) *Client {
	all := append(append([]string(nil), peers...), self)
	o := opts.withDefaults()
	return &Client{
		self: self,
		ring: NewRing(all, o.Replicas),
		opts: o,
		down: map[string]*peerState{},
	}
}

// Self returns this node's address.
func (c *Client) Self() string { return c.self }

// Ring exposes the ownership ring (shared, read-only).
func (c *Client) Ring() *Ring { return c.ring }

// Owner returns the address owning key k and whether that is this node.
func (c *Client) Owner(k codecache.Key) (addr string, self bool) {
	addr = c.ring.Owner(k)
	return addr, addr == c.self
}

// Stats snapshots the peer-traffic counters.
func (c *Client) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Available reports whether peer is currently outside its failure backoff
// window (a peer never marked failed is always available).
func (c *Client) Available(peer string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	st, ok := c.down[peer]
	return !ok || time.Now().After(st.until)
}

// MarkFailure records a failed interaction with peer, starting (or
// doubling, up to 8×) its backoff window.
func (c *Client) MarkFailure(peer string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.down[peer]
	if st == nil {
		st = &peerState{}
		c.down[peer] = st
	}
	if st.fails < 4 {
		st.fails++
	}
	st.until = time.Now().Add(c.opts.Backoff << (st.fails - 1))
}

// MarkSuccess clears peer's failure state.
func (c *Client) MarkSuccess(peer string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.down, peer)
}

func (c *Client) addStat(f func(*Stats)) {
	c.mu.Lock()
	f(&c.stats)
	c.mu.Unlock()
}

// FetchArtifact asks the owner of k for its artifact. When wait is true the
// owner also joins an in-flight compilation for the key before answering.
// It returns ErrSelfOwned when this node owns the key, ErrPeerDown when the
// owner is inside its backoff window, ErrNotFound on a 404, and a
// verification error when the response fails the checksum or embeds a
// different key. Any transport or verification failure marks the peer
// failed; success clears it.
func (c *Client) FetchArtifact(ctx context.Context, k codecache.Key, wait bool) (*diskcache.Artifact, error) {
	owner, self := c.Owner(k)
	if self || owner == "" {
		return nil, ErrSelfOwned
	}
	return c.FetchArtifactFrom(ctx, owner, k, wait)
}

// FetchArtifactFrom is FetchArtifact against an explicit peer.
func (c *Client) FetchArtifactFrom(ctx context.Context, peer string, k codecache.Key, wait bool) (*diskcache.Artifact, error) {
	if !c.Available(peer) {
		c.addStat(func(s *Stats) { s.SkippedBackoff++ })
		return nil, ErrPeerDown
	}
	url := fmt.Sprintf("http://%s/artifact/%s", peer, k)
	if wait {
		url += "?wait=1"
	}
	ctx, cancel := context.WithTimeout(ctx, c.opts.Timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	c.addStat(func(s *Stats) { s.Fetches++ })
	resp, err := c.opts.HTTPClient.Do(req)
	if err != nil {
		c.fail(peer, err)
		return nil, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusNotFound:
		// A clean miss is a healthy peer: no backoff.
		c.MarkSuccess(peer)
		c.addStat(func(s *Stats) { s.FetchMisses++ })
		return nil, ErrNotFound
	default:
		err := fmt.Errorf("cluster: peer %s: unexpected status %s", peer, resp.Status)
		c.fail(peer, err)
		return nil, err
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		c.fail(peer, err)
		return nil, err
	}
	gotKey, art, err := diskcache.Decode(body)
	if err != nil {
		c.fail(peer, err)
		return nil, fmt.Errorf("cluster: peer %s sent invalid artifact: %w", peer, err)
	}
	if gotKey != k {
		err := fmt.Errorf("cluster: peer %s sent artifact for key %s, want %s", peer, gotKey, k)
		c.fail(peer, err)
		return nil, err
	}
	c.MarkSuccess(peer)
	c.addStat(func(s *Stats) { s.FetchHits++ })
	return art, nil
}

// Evict broadcasts the eviction of k to its owner (a DELETE). A no-op
// returning nil when this node owns the key — the local levels already
// dropped it — or when the owner is in backoff (the artifact will age out
// or be re-evicted later; eviction is advisory, correctness never depends
// on it because keys content-hash their inputs).
func (c *Client) Evict(ctx context.Context, k codecache.Key) error {
	owner, self := c.Owner(k)
	if self || owner == "" {
		return nil
	}
	if !c.Available(owner) {
		c.addStat(func(s *Stats) { s.SkippedBackoff++ })
		return nil
	}
	ctx, cancel := context.WithTimeout(ctx, c.opts.Timeout)
	defer cancel()
	url := fmt.Sprintf("http://%s/artifact/%s", owner, k)
	req, err := http.NewRequestWithContext(ctx, http.MethodDelete, url, nil)
	if err != nil {
		return err
	}
	resp, err := c.opts.HTTPClient.Do(req)
	if err != nil {
		c.fail(owner, err)
		return err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusNotFound {
		err := fmt.Errorf("cluster: evict on %s: unexpected status %s", owner, resp.Status)
		c.fail(owner, err)
		return err
	}
	c.MarkSuccess(owner)
	c.addStat(func(s *Stats) { s.Evicts++ })
	return nil
}

// fail records a request failure for backoff and stats, classifying
// deadline errors as timeouts.
func (c *Client) fail(peer string, err error) {
	c.MarkFailure(peer)
	timeout := errors.Is(err, context.DeadlineExceeded)
	c.addStat(func(s *Stats) {
		s.Failures++
		if timeout {
			s.Timeouts++
		}
	})
}
