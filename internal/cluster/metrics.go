package cluster

import "repro/internal/trace"

// RegisterMetrics exports the peer-traffic counters into reg under the
// given metric-name prefix (e.g. "dbrew_cluster"). snapshot is polled on
// every scrape; when it reports ok == false (fleet mode disabled) every
// series reads zero, matching the codecache/diskcache contracts.
func RegisterMetrics(reg *trace.Registry, prefix string, snapshot func() (Stats, bool)) {
	grab := func() Stats {
		st, ok := snapshot()
		if !ok {
			return Stats{}
		}
		return st
	}
	counter := func(name, help string, field func(Stats) int64) {
		reg.Counter(prefix+"_"+name, help, func() float64 {
			return float64(field(grab()))
		})
	}
	counter("fetches_total", "Artifact fetches sent to peers.",
		func(s Stats) int64 { return s.Fetches })
	counter("fetch_hits_total", "Peer fetches that returned a valid artifact.",
		func(s Stats) int64 { return s.FetchHits })
	counter("fetch_misses_total", "Peer fetches answered 404.",
		func(s Stats) int64 { return s.FetchMisses })
	counter("failures_total", "Peer requests that errored or failed verification.",
		func(s Stats) int64 { return s.Failures })
	counter("timeouts_total", "Peer requests that hit the per-request deadline.",
		func(s Stats) int64 { return s.Timeouts })
	counter("backoff_skips_total", "Peer requests suppressed by the failure backoff window.",
		func(s Stats) int64 { return s.SkippedBackoff })
	counter("evicts_total", "Eviction broadcasts delivered to owners.",
		func(s Stats) int64 { return s.Evicts })
}
