package cluster

import (
	"bytes"
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
	"time"

	"repro/internal/codecache"
	"repro/internal/diskcache"
)

func keyOf(parts ...uint64) codecache.Key {
	h := codecache.NewHasher()
	for _, p := range parts {
		h.U64(p)
	}
	return h.Sum()
}

func TestRingDeterministicAndOrderInsensitive(t *testing.T) {
	a := NewRing([]string{"n1:9000", "n2:9000", "n3:9000"}, 0)
	b := NewRing([]string{"n3:9000", "n1:9000", "n2:9000", "n2:9000", ""}, 0)
	for i := uint64(0); i < 1000; i++ {
		k := keyOf(i)
		if a.Owner(k) != b.Owner(k) {
			t.Fatalf("key %d: owners differ across construction orders", i)
		}
	}
	if got := a.Nodes(); len(got) != 3 {
		t.Fatalf("Nodes() = %v", got)
	}
}

func TestRingDistribution(t *testing.T) {
	nodes := []string{"a:1", "b:1", "c:1", "d:1"}
	r := NewRing(nodes, 0)
	counts := map[string]int{}
	const n = 8000
	for i := uint64(0); i < n; i++ {
		counts[r.Owner(keyOf(i))]++
	}
	for _, node := range nodes {
		share := float64(counts[node]) / n
		if share < 0.10 || share > 0.45 {
			t.Errorf("node %s owns %.1f%% of keys — consistent hashing badly skewed: %v",
				node, share*100, counts)
		}
	}
}

func TestRingSingleNodeAndEmpty(t *testing.T) {
	one := NewRing([]string{"solo:1"}, 0)
	for i := uint64(0); i < 50; i++ {
		if one.Owner(keyOf(i)) != "solo:1" {
			t.Fatal("single-node ring must own everything")
		}
	}
	if NewRing(nil, 0).Owner(keyOf(1)) != "" {
		t.Fatal("empty ring must return no owner")
	}
}

func TestRingRemapIsIncremental(t *testing.T) {
	before := NewRing([]string{"a:1", "b:1", "c:1", "d:1"}, 0)
	after := NewRing([]string{"a:1", "b:1", "c:1"}, 0) // d left
	moved := 0
	const n = 4000
	for i := uint64(0); i < n; i++ {
		k := keyOf(i)
		ob, oa := before.Owner(k), after.Owner(k)
		if ob != "d:1" && ob != oa {
			moved++
		}
	}
	// Keys not owned by the departed node must (almost) all stay put.
	if moved != 0 {
		t.Errorf("%d/%d keys not owned by the departed node were remapped", moved, n)
	}
}

// peerServer serves the fleet protocol for a fixed artifact set.
func peerServer(t *testing.T, artifacts map[codecache.Key]*diskcache.Artifact) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("GET /artifact/{key}", func(w http.ResponseWriter, r *http.Request) {
		k, err := codecache.ParseKey(r.PathValue("key"))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		a, ok := artifacts[k]
		if !ok {
			http.NotFound(w, r)
			return
		}
		w.Write(diskcache.Encode(k, a))
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv
}

func hostOf(t *testing.T, srv *httptest.Server) string {
	t.Helper()
	u, err := url.Parse(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	return u.Host
}

func TestFetchArtifactRoundTrip(t *testing.T) {
	k := keyOf(7)
	want := &diskcache.Artifact{Code: []byte{0x48, 0xc3}, IR: "define @f()", Meta: []byte(`{"decoded":1}`)}
	srv := peerServer(t, map[codecache.Key]*diskcache.Artifact{k: want})
	peer := hostOf(t, srv)

	c := New("self:1", []string{peer}, Options{})
	got, err := c.FetchArtifactFrom(context.Background(), peer, k, false)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Code, want.Code) || got.IR != want.IR {
		t.Fatalf("fetched artifact differs: %+v", got)
	}
	if _, err := c.FetchArtifactFrom(context.Background(), peer, keyOf(8), false); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing key: err = %v, want ErrNotFound", err)
	}
	st := c.Stats()
	if st.Fetches != 2 || st.FetchHits != 1 || st.FetchMisses != 1 || st.Failures != 0 {
		t.Fatalf("stats = %v", st)
	}
}

func TestFetchRejectsWrongKeyResponse(t *testing.T) {
	// A confused peer answers with an artifact encoded under a different key.
	k, other := keyOf(1), keyOf(2)
	mux := http.NewServeMux()
	mux.HandleFunc("GET /artifact/{key}", func(w http.ResponseWriter, r *http.Request) {
		w.Write(diskcache.Encode(other, &diskcache.Artifact{Code: []byte{0xc3}}))
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()
	peer := hostOf(t, srv)

	c := New("self:1", []string{peer}, Options{})
	if _, err := c.FetchArtifactFrom(context.Background(), peer, k, false); err == nil ||
		!strings.Contains(err.Error(), "sent artifact for key") {
		t.Fatalf("wrong-key response accepted: err = %v", err)
	}
	if st := c.Stats(); st.Failures != 1 {
		t.Fatalf("stats = %v, want 1 failure", st)
	}
}

func TestFetchRejectsCorruptResponse(t *testing.T) {
	k := keyOf(3)
	mux := http.NewServeMux()
	mux.HandleFunc("GET /artifact/{key}", func(w http.ResponseWriter, r *http.Request) {
		buf := diskcache.Encode(k, &diskcache.Artifact{Code: []byte{0xc3, 0x90, 0x90}})
		buf[len(buf)-1] ^= 0x01 // checksum now fails
		w.Write(buf)
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()
	peer := hostOf(t, srv)

	c := New("self:1", []string{peer}, Options{})
	if _, err := c.FetchArtifactFrom(context.Background(), peer, k, false); err == nil ||
		!strings.Contains(err.Error(), "invalid artifact") {
		t.Fatalf("corrupt response accepted: err = %v", err)
	}
}

func TestBackoffSkipsFailedPeer(t *testing.T) {
	c := New("self:1", []string{"dead:1"}, Options{Backoff: 50 * time.Millisecond})
	if !c.Available("dead:1") {
		t.Fatal("fresh peer must be available")
	}
	c.MarkFailure("dead:1")
	if c.Available("dead:1") {
		t.Fatal("failed peer must be in backoff")
	}
	if _, err := c.FetchArtifactFrom(context.Background(), "dead:1", keyOf(1), false); !errors.Is(err, ErrPeerDown) {
		t.Fatalf("fetch during backoff: err = %v, want ErrPeerDown", err)
	}
	if st := c.Stats(); st.SkippedBackoff != 1 || st.Fetches != 0 {
		t.Fatalf("stats = %v: backoff skip must not send a request", st)
	}
	// The window expires; the peer becomes eligible again.
	time.Sleep(80 * time.Millisecond)
	if !c.Available("dead:1") {
		t.Fatal("peer must leave backoff after the window")
	}
	// Consecutive failures widen the window.
	c.MarkFailure("dead:1")
	c.MarkFailure("dead:1")
	time.Sleep(60 * time.Millisecond) // > 1× but < 2× backoff
	if c.Available("dead:1") {
		t.Fatal("second failure must widen the backoff window")
	}
	c.MarkSuccess("dead:1")
	if !c.Available("dead:1") {
		t.Fatal("MarkSuccess must clear backoff")
	}
}

func TestFetchTimeoutClassified(t *testing.T) {
	block := make(chan struct{})
	defer close(block)
	mux := http.NewServeMux()
	mux.HandleFunc("GET /artifact/{key}", func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-block:
		case <-r.Context().Done():
		}
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()
	peer := hostOf(t, srv)

	c := New("self:1", []string{peer}, Options{Timeout: 30 * time.Millisecond})
	_, err := c.FetchArtifactFrom(context.Background(), peer, keyOf(1), false)
	if err == nil {
		t.Fatal("fetch against a hung peer must fail")
	}
	st := c.Stats()
	if st.Failures != 1 || st.Timeouts != 1 {
		t.Fatalf("stats = %v, want the failure classified as a timeout", st)
	}
	if c.Available(peer) {
		t.Fatal("timed-out peer must enter backoff")
	}
}

func TestEvictDeliveredToOwnerOnly(t *testing.T) {
	deleted := make(chan string, 1)
	mux := http.NewServeMux()
	mux.HandleFunc("DELETE /artifact/{key}", func(w http.ResponseWriter, r *http.Request) {
		deleted <- r.PathValue("key")
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()
	peer := hostOf(t, srv)

	c := New("self:1", []string{peer}, Options{})
	// Find one key the peer owns and one key self owns.
	var peerKey, selfKey codecache.Key
	havePeer, haveSelf := false, false
	for i := uint64(0); !(havePeer && haveSelf); i++ {
		k := keyOf(i)
		if owner, self := c.Owner(k); self && !haveSelf {
			selfKey, haveSelf = k, true
		} else if owner == peer && !havePeer {
			peerKey, havePeer = k, true
		}
	}
	if err := c.Evict(context.Background(), peerKey); err != nil {
		t.Fatal(err)
	}
	select {
	case got := <-deleted:
		if got != peerKey.String() {
			t.Fatalf("peer saw eviction of %s, want %s", got, peerKey)
		}
	case <-time.After(time.Second):
		t.Fatal("eviction never reached the owner")
	}
	// Self-owned evictions are a local no-op.
	if err := c.Evict(context.Background(), selfKey); err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.Evicts != 1 {
		t.Fatalf("stats = %v, want exactly 1 remote evict", st)
	}
}
