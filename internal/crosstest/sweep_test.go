package crosstest

import "testing"

// TestSweepExtended widens the differential search beyond the seeds of
// TestDifferential. Larger one-off sweeps (thousands of seeds) were run
// during development; this bounded version guards against regressions.
func TestSweepExtended(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	for seed := int64(1000); seed <= 1250; seed++ {
		p, err := Generate(seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		runDifferential(t, p)
		if t.Failed() {
			t.Fatalf("first failure at seed %d", seed)
		}
	}
}
