package crosstest

import (
	"bytes"
	"encoding/binary"
	"strings"
	"testing"

	"repro/internal/dbrew"
	"repro/internal/emu"
	"repro/internal/fastpath"
	"repro/internal/ir"
	"repro/internal/jit"
	"repro/internal/lift"
	"repro/internal/opt"
	"repro/internal/x86"
	"repro/internal/x86/asm"
)

// inputs exercised for every generated program.
var inputPairs = [][2]uint64{
	{0, 0},
	{1, 2},
	{0xFFFFFFFFFFFFFFFF, 1},
	{0x8000000000000000, 0x7FFFFFFFFFFFFFFF},
	{12345, 678910},
	{0xDEADBEEF, 0xCAFEBABE12345678},
}

// TestDifferential runs each generated program through all five execution
// paths and requires identical results and identical scratch memory.
func TestDifferential(t *testing.T) {
	seeds := 40
	if testing.Short() {
		seeds = 10
	}
	for seed := int64(1); seed <= int64(seeds); seed++ {
		p, err := Generate(seed)
		if err != nil {
			t.Fatalf("seed %d: generate: %v", seed, err)
		}
		runDifferential(t, p)
	}
}

func runDifferential(t *testing.T, p *Program) {
	t.Helper()
	sig := p.Sig()

	// Build all variants once, in one address space.
	mem, entry, scratch, err := p.Place()
	if err != nil {
		t.Fatalf("%s: place: %v", p.Desc, err)
	}

	// On any failure (including Fatalf's Goexit) dump the generated
	// program's disassembly and the lifted IR variants, so a fuzzing
	// counterexample is diagnosable from the report alone.
	var fRaw, fOpt *ir.Func
	var fpRes *fastpath.Result
	alreadyFailed := t.Failed()
	defer func() {
		if !t.Failed() || alreadyFailed {
			return
		}
		if lst, err := dbrew.Listing(mem, entry, len(p.Code)); err == nil {
			t.Logf("%s (seed %d): generated code:\n\t%s", p.Desc, p.Seed, strings.Join(lst, "\n\t"))
		}
		if fRaw != nil {
			t.Logf("%s: lifted IR (raw):\n%s", p.Desc, ir.FormatFunc(fRaw))
		}
		if fOpt != nil {
			t.Logf("%s: lifted IR (post-O3):\n%s", p.Desc, ir.FormatFunc(fOpt))
		}
		if fpRes != nil {
			if lst, err := dbrew.Listing(mem, fpRes.Entry, fpRes.CodeSize); err == nil {
				t.Logf("%s: fastpath output (%v, %d bytes):\n\t%s",
					p.Desc, fpRes.Mode, fpRes.CodeSize, strings.Join(lst, "\n\t"))
			}
		}
	}()

	// Variant A: lifted (raw) for the interpreter.
	lRaw := lift.New(mem, lift.DefaultOptions())
	fRaw, err = lRaw.LiftFunc(entry, "raw", sig)
	if err != nil {
		t.Fatalf("%s: lift: %v", p.Desc, err)
	}
	// Variant B: lifted + O3, interpreted and JIT-compiled.
	lOpt := lift.New(mem, lift.DefaultOptions())
	fOpt, err = lOpt.LiftFunc(entry, "opt", sig)
	if err != nil {
		t.Fatalf("%s: lift2: %v", p.Desc, err)
	}
	// Strict FP: fast-math legitimately changes signed zeros and
	// association, which would break bit-exact differential comparison.
	cfg := opt.O3()
	cfg.FastMath = false
	opt.Optimize(fOpt, cfg)
	if err := ir.Verify(fOpt); err != nil {
		t.Fatalf("%s: post-O3 verify: %v", p.Desc, err)
	}
	comp := jit.NewCompiler(mem)
	jitEntry, err := comp.CompileModule(lOpt.Module, "opt")
	if err != nil {
		t.Fatalf("%s: jit: %v\n%s", p.Desc, err, ir.FormatFunc(fOpt))
	}
	// Variant C: DBrew identity rewrite.
	rw := dbrew.NewRewriter(mem, entry, sig)
	dbrewEntry, err := rw.Rewrite()
	if err != nil {
		t.Fatalf("%s: dbrew: %v", p.Desc, err)
	}
	if rw.Stats.Failed {
		t.Fatalf("%s: dbrew fell back: %v", p.Desc, rw.Stats.Err)
	}
	// Variant D: fastpath single-pass baseline — byte-copy shortcut for
	// straight-line programs, fused lift+baseline-JIT for the rest.
	fpRes, err = fastpath.Compile(mem, entry, "fp", sig, fastpath.Options{NamePrefix: "xt."})
	if err != nil {
		t.Fatalf("%s: fastpath: %v", p.Desc, err)
	}

	for _, in := range inputPairs {
		// Native reference.
		if err := ResetScratch(mem, scratch); err != nil {
			t.Fatal(err)
		}
		want, wantBuf, err := RunNative(mem, entry, scratch, p, in[0], in[1])
		if err != nil {
			t.Fatalf("%s in=%v: native: %v", p.Desc, in, err)
		}

		// Raw lifted IR, interpreted.
		ResetScratch(mem, scratch)
		got, buf := runInterp(t, p, mem, fRaw, scratch, in)
		check(t, p, "lift+interp", in, want, got, wantBuf, buf)

		// Optimized IR, interpreted.
		ResetScratch(mem, scratch)
		got, buf = runInterp(t, p, mem, fOpt, scratch, in)
		check(t, p, "lift+O3+interp", in, want, got, wantBuf, buf)

		// Optimized IR, JIT-compiled, emulated.
		ResetScratch(mem, scratch)
		got, buf, err = RunNative(mem, jitEntry, scratch, p, in[0], in[1])
		if err != nil {
			t.Fatalf("%s in=%v: jit run: %v", p.Desc, in, err)
		}
		check(t, p, "lift+O3+jit", in, want, got, wantBuf, buf)

		// DBrew identity rewrite, emulated.
		ResetScratch(mem, scratch)
		got, buf, err = RunNative(mem, dbrewEntry, scratch, p, in[0], in[1])
		if err != nil {
			t.Fatalf("%s in=%v: dbrew run: %v", p.Desc, in, err)
		}
		check(t, p, "dbrew", in, want, got, wantBuf, buf)

		// Fastpath baseline, emulated.
		ResetScratch(mem, scratch)
		got, buf, err = RunNative(mem, fpRes.Entry, scratch, p, in[0], in[1])
		if err != nil {
			t.Fatalf("%s in=%v: fastpath(%v) run: %v", p.Desc, in, fpRes.Mode, err)
		}
		check(t, p, "fastpath:"+fpRes.Mode.String(), in, want, got, wantBuf, buf)
	}
}

func runInterp(t *testing.T, p *Program, mem *emu.Memory, f *ir.Func, scratch uint64, in [2]uint64) (uint64, []byte) {
	t.Helper()
	ip := ir.NewInterp(mem)
	ip.MaxSteps = 5_000_000
	res, err := ip.CallFunc(f, []ir.RV{{Lo: in[0]}, {Lo: in[1]}, {Lo: scratch}})
	if err != nil {
		t.Fatalf("%s in=%v: interp: %v\n%s", p.Desc, in, err, ir.FormatFunc(f))
	}
	buf, err := mem.Read(scratch, ScratchSize)
	if err != nil {
		t.Fatal(err)
	}
	return res.Lo, buf
}

func check(t *testing.T, p *Program, path string, in [2]uint64, want, got uint64, wantBuf, buf []byte) {
	t.Helper()
	if got != want {
		t.Errorf("%s: %s(%#x, %#x) = %#x, native %#x", p.Desc, path, in[0], in[1], got, want)
	}
	if !bytes.Equal(wantBuf, buf) {
		t.Errorf("%s: %s(%#x, %#x): scratch memory diverged", p.Desc, path, in[0], in[1])
	}
}

// TestDBrewSpecializationConsistency fixes the first argument and checks
// that the specialized code matches the original called with that value.
func TestDBrewSpecializationConsistency(t *testing.T) {
	seeds := 25
	if testing.Short() {
		seeds = 8
	}
	for seed := int64(100); seed < int64(100+seeds); seed++ {
		p, err := Generate(seed)
		if err != nil {
			t.Fatal(err)
		}
		mem, entry, scratch, err := p.Place()
		if err != nil {
			t.Fatal(err)
		}
		const fixedA = 0x1234_5678_9ABC
		rw := dbrew.NewRewriter(mem, entry, p.Sig())
		rw.SetPar(0, fixedA)
		spec, err := rw.Rewrite()
		if err != nil {
			t.Fatal(err)
		}
		if rw.Stats.Failed {
			t.Fatalf("%s: dbrew fell back: %v", p.Desc, rw.Stats.Err)
		}
		for _, b := range []uint64{0, 7, 0xFFFF_FFFF_FFFF} {
			ResetScratch(mem, scratch)
			want, wantBuf, err := RunNative(mem, entry, scratch, p, fixedA, b)
			if err != nil {
				t.Fatal(err)
			}
			ResetScratch(mem, scratch)
			got, buf, err := RunNative(mem, spec, scratch, p, 0xBAD, b) // arg 0 ignored
			if err != nil {
				t.Fatalf("%s: specialized run: %v", p.Desc, err)
			}
			if got != want || !bytes.Equal(wantBuf, buf) {
				t.Errorf("%s: specialization diverged for b=%#x: %#x vs %#x", p.Desc, b, got, want)
			}
		}
	}
}

// TestDBrewPlusLLVMConsistency runs the full Figure 1 path on generated
// programs with a fixed parameter.
func TestDBrewPlusLLVMConsistency(t *testing.T) {
	seeds := 15
	if testing.Short() {
		seeds = 5
	}
	for seed := int64(500); seed < int64(500+seeds); seed++ {
		p, err := Generate(seed)
		if err != nil {
			t.Fatal(err)
		}
		mem, entry, scratch, err := p.Place()
		if err != nil {
			t.Fatal(err)
		}
		const fixedA = 42
		rw := dbrew.NewRewriter(mem, entry, p.Sig())
		rw.SetPar(0, fixedA)
		spec, err := rw.Rewrite()
		if err != nil || rw.Stats.Failed {
			t.Fatalf("%s: dbrew: %v %v", p.Desc, err, rw.Stats.Err)
		}
		l := lift.New(mem, lift.DefaultOptions())
		f, err := l.LiftFunc(spec, "spec", p.Sig())
		if err != nil {
			t.Fatalf("%s: lift dbrew output: %v", p.Desc, err)
		}
		cfg := opt.O3()
		cfg.FastMath = false
		opt.Optimize(f, cfg)
		comp := jit.NewCompiler(mem)
		jentry, err := comp.CompileModule(l.Module, "spec")
		if err != nil {
			t.Fatalf("%s: jit: %v", p.Desc, err)
		}
		for _, b := range []uint64{3, 0x8000_0000_0000_0001} {
			ResetScratch(mem, scratch)
			want, wantBuf, err := RunNative(mem, entry, scratch, p, fixedA, b)
			if err != nil {
				t.Fatal(err)
			}
			ResetScratch(mem, scratch)
			got, buf, err := RunNative(mem, jentry, scratch, p, 0, b)
			if err != nil {
				t.Fatalf("%s: dbrew+llvm run: %v", p.Desc, err)
			}
			if got != want || !bytes.Equal(wantBuf, buf) {
				t.Errorf("%s: dbrew+llvm diverged for b=%#x: %#x vs %#x", p.Desc, b, got, want)
			}
		}
	}
}

// TestFastpathShortcutSeeds pins generator seeds whose programs are
// straight-line (no loop or diamond chunks), so the fastpath backend must
// take the direct byte-copy route rather than lowering through the lifter.
// Each seed then runs the full differential harness, which includes the
// fastpath variant — the copied code must agree bit-for-bit with the
// native reference. If the generator changes and a seed stops being
// copy-eligible, this fails rather than the shortcut coverage silently
// evaporating. The same seeds are in FuzzDifferential's in-code corpus.
func TestFastpathShortcutSeeds(t *testing.T) {
	// 3/17 are small integer ALU+mem programs, 15/28 carry SSE doubles
	// (28 is the longest at 22 instructions).
	for _, seed := range []int64{3, 15, 17, 28} {
		p, err := Generate(seed)
		if err != nil {
			t.Fatalf("seed %d: generate: %v", seed, err)
		}
		mem, entry, _, err := p.Place()
		if err != nil {
			t.Fatalf("seed %d: place: %v", seed, err)
		}
		res, err := fastpath.Compile(mem, entry, "pin", p.Sig(), fastpath.Options{})
		if err != nil {
			t.Fatalf("seed %d: fastpath: %v", seed, err)
		}
		if res.Mode != fastpath.ModeCopy {
			t.Errorf("seed %d: mode = %v, want copy: shortcut coverage lost", seed, res.Mode)
		}
		runDifferential(t, p)
	}
}

// containsOp reports whether the program's code stream contains op.
func containsOp(p *Program, op x86.Op) bool {
	for off := 0; off < len(p.Code); {
		in, err := x86.Decode(p.Code[off:], 0x400000+uint64(off))
		if err != nil {
			return false
		}
		off += in.Len
		if in.Op == op {
			return true
		}
	}
	return false
}

// runDifferentialRelaxed is the masked-program harness: every execution
// path either agrees bit-for-bit with the native reference or rejects the
// program explicitly — a lift or fastpath error, or a DBrew fallback that
// re-enters the original code. Hard idioms rejecting is expected and
// classified; producing silently wrong code never is.
func runDifferentialRelaxed(t *testing.T, p *Program) {
	t.Helper()
	sig := p.Sig()
	mem, entry, scratch, err := p.Place()
	if err != nil {
		t.Fatalf("%s: place: %v", p.Desc, err)
	}

	type variant struct {
		name  string
		entry uint64
	}
	var variants []variant

	// DBrew: a fallback returns the original entry, which still runs below
	// (it must stay bit-identical); Stats.Failed only classifies it.
	rw := dbrew.NewRewriter(mem, entry, sig)
	de, err := rw.Rewrite()
	if err != nil {
		t.Fatalf("%s: dbrew: %v", p.Desc, err)
	}
	dbName := "dbrew"
	if rw.Stats.Failed {
		dbName = "dbrew-fallback"
	}
	variants = append(variants, variant{dbName, de})

	// lift + O3 + JIT: an unsupported idiom is a classified rejection.
	l := lift.New(mem, lift.DefaultOptions())
	if f, err := l.LiftFunc(entry, "m", sig); err != nil {
		t.Logf("%s: lift rejected (classified): %v", p.Desc, err)
	} else {
		cfg := opt.O3()
		cfg.FastMath = false
		opt.Optimize(f, cfg)
		if err := ir.Verify(f); err != nil {
			t.Fatalf("%s: post-O3 verify: %v", p.Desc, err)
		}
		comp := jit.NewCompiler(mem)
		if je, err := comp.CompileModule(l.Module, "m"); err != nil {
			t.Logf("%s: jit rejected (classified): %v", p.Desc, err)
		} else {
			variants = append(variants, variant{"lift+O3+jit", je})
		}
	}

	// Fastpath: same contract.
	if res, err := fastpath.Compile(mem, entry, "m", sig, fastpath.Options{NamePrefix: "xm."}); err != nil {
		t.Logf("%s: fastpath rejected (classified): %v", p.Desc, err)
	} else {
		variants = append(variants, variant{"fastpath:" + res.Mode.String(), res.Entry})
	}

	engines := []struct {
		name string
		cfg  func(m *emu.Machine)
	}{
		{"interp", func(m *emu.Machine) { m.Interp = true }},
		{"block", func(m *emu.Machine) { m.Traces = false }},
	}
	for _, in := range inputPairs {
		if err := ResetScratch(mem, scratch); err != nil {
			t.Fatal(err)
		}
		// Reference: the trace-tier machine on the original code.
		want, wantBuf, err := RunNative(mem, entry, scratch, p, in[0], in[1])
		if err != nil {
			t.Fatalf("%s in=%v: native: %v", p.Desc, in, err)
		}
		// The pure interpreter and the block engine must agree with it.
		for _, eng := range engines {
			ResetScratch(mem, scratch)
			m := emu.NewMachine(mem)
			eng.cfg(m)
			got, err := m.Call(entry, emu.CallArgs{Ints: []uint64{in[0], in[1], scratch}}, 2_000_000)
			if err != nil {
				t.Fatalf("%s in=%v: %s: %v", p.Desc, in, eng.name, err)
			}
			if p.UsesFP {
				got = m.XMM[0].Lo
			}
			buf, err := mem.Read(scratch, ScratchSize)
			if err != nil {
				t.Fatal(err)
			}
			check(t, p, eng.name, in, want, got, wantBuf, buf)
		}
		for _, v := range variants {
			ResetScratch(mem, scratch)
			got, buf, err := RunNative(mem, v.entry, scratch, p, in[0], in[1])
			if err != nil {
				t.Fatalf("%s in=%v: %s run: %v", p.Desc, in, v.name, err)
			}
			check(t, p, v.name, in, want, got, wantBuf, buf)
		}
	}
}

// TestDifferentialMasked sweeps the feature-gated generator shapes —
// computed gotos through in-memory jump tables and rep-string blocks —
// through the relaxed harness. The sweep also asserts both idioms actually
// appear somewhere in the swept programs, so a generator change cannot
// silently drop the coverage.
func TestDifferentialMasked(t *testing.T) {
	seeds := int64(12)
	if testing.Short() {
		seeds = 4
	}
	sawIndirect, sawRep := false, false
	for _, mask := range []Feature{FeatIndirect, FeatRepString, FeatIndirect | FeatRepString} {
		for seed := int64(1); seed <= seeds; seed++ {
			p, err := GenerateWithMask(seed, mask)
			if err != nil {
				t.Fatalf("seed %d mask %#x: generate: %v", seed, mask, err)
			}
			sawIndirect = sawIndirect || containsOp(p, x86.JMPIndirect)
			sawRep = sawRep || containsOp(p, x86.REPMOVSB) || containsOp(p, x86.REPSTOSB)
			runDifferentialRelaxed(t, p)
		}
	}
	if !sawIndirect {
		t.Error("no swept program contained an indirect jmp: jump-table coverage lost")
	}
	if !sawRep {
		t.Error("no swept program contained a rep-string op: rep-string coverage lost")
	}
}

// TestGenerateMaskZeroUnchanged pins that a zero mask reproduces the exact
// byte stream Generate produced before features existed, for a handful of
// structurally diverse seeds — the feature gating must not perturb the
// random sequence of existing corpus seeds.
func TestGenerateMaskZeroUnchanged(t *testing.T) {
	for _, seed := range []int64{1, 3, 25, 28, 100, 500, 1458} {
		a, err := Generate(seed)
		if err != nil {
			t.Fatal(err)
		}
		b, err := GenerateWithMask(seed, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a.Code, b.Code) {
			t.Errorf("seed %d: mask-0 program differs from Generate", seed)
		}
	}
}

// TestFastpathRIPRelativeCopySubject pins a hand-built straight-line
// subject with RIP-relative constant loads (PIC-style data after the code):
// the fastpath backend must keep it on the copy route by re-encoding the
// displacements against the relocated address, and the result must survive
// the full strict differential harness.
func TestFastpathRIPRelativeCopySubject(t *testing.T) {
	b := asm.NewBuilder()
	// Layout (offsets): mov rax,[rip+17] at 0 (len 7, end 7, target 24);
	// mov r8,[rip+18] at 7 (len 7, end 14, target 32); add at 14; add at
	// 17; xor at 20; ret at 23; constants at 24 and 32.
	b.I(x86.MOV, x86.R64(x86.RAX), x86.MemRIP(8, 17))
	b.I(x86.MOV, x86.R64(x86.R8), x86.MemRIP(8, 18))
	b.I(x86.ADD, x86.R64(x86.RAX), x86.R64(x86.R8))
	b.I(x86.ADD, x86.R64(x86.RAX), x86.R64(x86.RDI))
	b.I(x86.XOR, x86.R64(x86.RAX), x86.R64(x86.RSI))
	b.Ret()
	code, _, err := b.Assemble(0x400000)
	if err != nil {
		t.Fatal(err)
	}
	if len(code) != 24 {
		t.Fatalf("code is %d bytes, want 24: hand-computed RIP displacements are stale", len(code))
	}
	code = binary.LittleEndian.AppendUint64(code, 0x1111_2222_3333_4444)
	code = binary.LittleEndian.AppendUint64(code, 0x0F0F_F0F0_5A5A_A5A5)
	p := &Program{Code: code, Seed: -1, Desc: "pinned-riprel"}

	mem, entry, _, err := p.Place()
	if err != nil {
		t.Fatal(err)
	}
	res, err := fastpath.Compile(mem, entry, "riprel", p.Sig(), fastpath.Options{})
	if err != nil {
		t.Fatalf("fastpath: %v", err)
	}
	if res.Mode != fastpath.ModeCopy {
		t.Errorf("mode = %v, want copy: RIP-relative fixup coverage lost", res.Mode)
	}
	runDifferential(t, p)
}

// TestDifferentialCondOps pins fresh seeds that exercise the flag-consuming
// generator shapes (cmov/setcc/adc/sbb after cmp) introduced for the
// stc/clc carry-materialization feature.
func TestDifferentialCondOps(t *testing.T) {
	found := 0
	for seed := int64(500); seed < 560 && found < 12; seed++ {
		p, err := Generate(seed)
		if err != nil {
			t.Fatal(err)
		}
		runDifferential(t, p)
		found++
	}
}
