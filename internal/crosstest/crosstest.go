// Package crosstest provides differential validation across the
// reproduction's execution paths: randomly generated x86-64 programs are
// run (1) natively on the emulator, (2) lifted and interpreted as IR,
// (3) lifted, optimized at -O3, and interpreted, (4) lifted, optimized, and
// JIT-compiled back to machine code, (5) identity-rewritten by DBrew, and
// (6) compiled by the fastpath single-pass baseline backend — all six must
// agree bit-for-bit on every input.
//
// The generator emits structured random programs (straight-line ALU and SSE
// blocks, counted loops, conditional diamonds, memory traffic on a scratch
// buffer) covering the instruction subset the corpus kernels use.
package crosstest

import (
	"fmt"
	"math/rand"

	"repro/internal/abi"
	"repro/internal/emu"
	"repro/internal/x86"
	"repro/internal/x86/asm"
)

// Feature is a bitmask of optional generator shapes beyond the baseline
// instruction mix. Features gate idioms that not every execution path
// supports (the lifter and fastpath reject indirect branches, for example),
// so masked programs run through the relaxed differential harness that
// classifies those rejections instead of failing on them.
type Feature uint32

const (
	// FeatIndirect emits computed gotos: case addresses stored into an
	// in-memory table, then an indirect jmp through the table.
	FeatIndirect Feature = 1 << iota
	// FeatRepString emits rep movsb / rep stosb blocks on the scratch
	// buffer.
	FeatRepString
	// FeatNestedLoop emits two adjacent counted loops re-entered by an
	// outer loop — the shape whose traces hand off through the
	// trace-to-trace link cache.
	FeatNestedLoop
)

// Program is one generated test program.
type Program struct {
	Code []byte
	// UsesFP selects the XMM0-result convention.
	UsesFP bool
	Seed   int64
	Mask   Feature
	Desc   string
}

// Sig returns the program's ABI signature: f(i64, i64, ptr) -> i64/f64.
// The pointer argument addresses a scratch buffer the program may read and
// write within [0, ScratchSize).
func (p *Program) Sig() abi.Signature {
	ret := abi.ClassInt
	if p.UsesFP {
		ret = abi.ClassF64
	}
	return abi.Signature{Params: []abi.Class{abi.ClassInt, abi.ClassInt, abi.ClassPtr}, Ret: ret}
}

// ScratchSize is the size of the memory window programs may touch.
const ScratchSize = 256

// gen carries generation state.
type gen struct {
	r *rand.Rand
	b *asm.Builder
	// pool of registers holding integer values the generator may use.
	live []x86.Reg
	// fp tracks whether XMM0..XMM3 hold initialized doubles.
	fpLive int
	depth  int
	mask   Feature
}

// Generate builds a random program from the seed with no optional features.
func Generate(seed int64) (*Program, error) { return GenerateWithMask(seed, 0) }

// GenerateWithMask builds a random program from the seed with the given
// feature shapes enabled. A zero mask produces bit-identical programs to
// Generate for the same seed: the extra chunk kinds only widen the random
// choice when their feature bit is set.
func GenerateWithMask(seed int64, mask Feature) (*Program, error) {
	r := rand.New(rand.NewSource(seed))
	g := &gen{r: r, b: asm.NewBuilder(), mask: mask}

	// Initial values: rax := rdi, rcx... keep args and derive more.
	// Register pool: rax, rcx, rsi?, r8, r9, r10, r11 (caller-saved).
	g.b.I(x86.MOV, x86.R64(x86.RAX), x86.R64(x86.RDI))
	g.b.I(x86.MOV, x86.R64(x86.R8), x86.R64(x86.RSI))
	g.b.I(x86.MOV, x86.R64(x86.R9), x86.Imm(int64(r.Uint32()), 8))
	g.live = []x86.Reg{x86.RAX, x86.R8, x86.R9}

	usesFP := r.Intn(3) == 0
	if usesFP {
		// Seed xmm0/xmm1 from integer state.
		g.b.I(x86.CVTSI2SD, x86.X(x86.XMM0), x86.R64(x86.RAX))
		g.b.I(x86.CVTSI2SD, x86.X(x86.XMM1), x86.R64(x86.R8))
		g.fpLive = 2
	}

	n := 3 + r.Intn(5)
	for i := 0; i < n; i++ {
		g.emitChunk(usesFP)
	}

	if usesFP {
		// Fold integer state into the FP result for coverage.
		g.b.I(x86.CVTSI2SD, x86.X(x86.XMM2), x86.R64(g.pick()))
		g.b.I(x86.ADDSD, x86.X(x86.XMM0), x86.X(x86.XMM2))
	} else {
		// Merge all live registers into rax.
		for _, reg := range g.live[1:] {
			g.b.I(x86.XOR, x86.R64(x86.RAX), x86.R64(reg))
		}
	}
	g.b.Ret()

	code, _, err := g.b.Assemble(0x400000)
	if err != nil {
		return nil, err
	}
	return &Program{Code: code, UsesFP: usesFP, Seed: seed, Mask: mask,
		Desc: fmt.Sprintf("seed=%d chunks=%d fp=%v mask=%#x", seed, n, usesFP, uint32(mask))}, nil
}

func (g *gen) pick() x86.Reg { return g.live[g.r.Intn(len(g.live))] }

// scratchOp returns a memory operand within the scratch buffer (pointed to
// by rdx, which callers must not clobber).
func (g *gen) scratchOp(size uint8) x86.Operand {
	slots := (ScratchSize - 16) / 8
	off := int32(8 * g.r.Intn(slots))
	return x86.MemBD(size, x86.RDX, off)
}

// features returns the enabled optional chunk kinds in fixed order, so the
// mapping from random index to shape is stable per mask.
func (g *gen) features() []Feature {
	var fs []Feature
	for _, f := range []Feature{FeatIndirect, FeatRepString, FeatNestedLoop} {
		if g.mask&f != 0 {
			fs = append(fs, f)
		}
	}
	return fs
}

// emitChunk appends one random structure. Feature chunks occupy indices 8+,
// so a zero mask draws from the same range (and therefore the same random
// bit stream) as before features existed.
func (g *gen) emitChunk(fp bool) {
	fs := g.features()
	k := g.r.Intn(8 + len(fs))
	if k >= 8 {
		switch fs[k-8] {
		case FeatIndirect:
			g.emitIndirect()
		case FeatRepString:
			g.emitRepString()
		case FeatNestedLoop:
			g.emitAdjacentLoops()
		}
		return
	}
	switch k {
	case 0:
		g.emitALU()
	case 1:
		g.emitALU()
		g.emitALU()
	case 2:
		g.emitMem()
	case 3:
		if g.depth < 2 {
			g.emitLoop(fp)
		} else {
			g.emitALU()
		}
	case 4:
		g.emitDiamond()
	case 5:
		if fp {
			g.emitFP()
		} else {
			g.emitALU()
		}
	case 6:
		g.emitNarrow()
	case 7:
		g.emitCondOps()
	}
}

// emitALU appends one integer ALU instruction on live registers.
func (g *gen) emitALU() {
	d := g.pick()
	s := g.pick()
	imm := int64(int32(g.r.Uint32()))
	switch g.r.Intn(10) {
	case 0:
		g.b.I(x86.ADD, x86.R64(d), x86.R64(s))
	case 1:
		g.b.I(x86.SUB, x86.R64(d), x86.R64(s))
	case 2:
		g.b.I(x86.ADD, x86.R64(d), x86.Imm(imm%1000, 8))
	case 3:
		g.b.I(x86.XOR, x86.R64(d), x86.R64(s))
	case 4:
		g.b.I(x86.AND, x86.R64(d), x86.Imm(imm|0xFF, 8))
	case 5:
		g.b.I(x86.OR, x86.R64(d), x86.R64(s))
	case 6:
		g.b.I(x86.IMUL3, x86.R64(d), x86.R64(s), x86.Imm(int64(g.r.Intn(64)+1), 8))
	case 7:
		g.b.I(x86.SHL, x86.R64(d), x86.Imm(int64(g.r.Intn(31)+1), 1))
	case 8:
		g.b.I(x86.SHR, x86.R64(d), x86.Imm(int64(g.r.Intn(31)+1), 1))
	case 9:
		g.b.I(x86.LEA, x86.R64(d), x86.MemBIS(8, s, g.pick(), uint8(1<<g.r.Intn(4)), int32(imm%256)))
	}
}

// emitNarrow exercises sub-register widths and extensions.
func (g *gen) emitNarrow() {
	d := g.pick()
	s := g.pick()
	switch g.r.Intn(5) {
	case 0:
		g.b.I(x86.MOV, x86.R32(d), x86.R32(s)) // zeroes upper half
	case 1:
		g.b.I(x86.MOVZX, x86.R64(d), x86.R8L(s))
	case 2:
		g.b.I(x86.MOVSX, x86.R64(d), x86.R8L(s))
	case 3:
		g.b.I(x86.ADD, x86.R32(d), x86.R32(s))
	case 4:
		g.b.I(x86.MOVSXD, x86.R64(d), x86.R32(s))
	}
}

// emitMem appends a store + load pair on the scratch buffer.
func (g *gen) emitMem() {
	v := g.pick()
	g.b.I(x86.MOV, g.scratchOp(8), x86.R64(v))
	d := g.pick()
	g.b.I(x86.MOV, x86.R64(d), g.scratchOp(8))
}

// emitFP appends SSE double arithmetic on xmm0/xmm1 (+ scratch loads).
func (g *gen) emitFP() {
	ops := []x86.Op{x86.ADDSD, x86.SUBSD, x86.MULSD}
	op := ops[g.r.Intn(len(ops))]
	switch g.r.Intn(3) {
	case 0:
		g.b.I(op, x86.X(x86.XMM0), x86.X(x86.XMM1))
	case 1:
		g.b.I(x86.MOVSD_X, g.scratchOp(8), x86.X(x86.XMM0))
		g.b.I(op, x86.X(x86.XMM1), g.scratchOp(8))
	case 2:
		g.b.I(x86.CVTSI2SD, x86.X(x86.XMM1), x86.R64(g.pick()))
		g.b.I(op, x86.X(x86.XMM0), x86.X(x86.XMM1))
	}
}

// emitLoop appends a bounded counted loop whose body is a couple of ALU ops.
func (g *gen) emitLoop(fp bool) {
	g.depth++
	defer func() { g.depth-- }()
	// for (r10 = K; r10 != 0; r10--) body. The range deliberately
	// straddles RunNative's trace-tier hot threshold: short loops stay on
	// the block engine, longer ones get recorded, compiled, and finish
	// inside a trace.
	iters := int64(g.r.Intn(12) + 1)
	g.b.I(x86.MOV, x86.R64(x86.R10), x86.Imm(iters, 8))
	loop := g.b.NewLabel()
	g.b.Bind(loop)
	g.emitALU()
	if fp && g.r.Intn(2) == 0 {
		g.emitFP()
	}
	g.b.I(x86.SUB, x86.R64(x86.R10), x86.Imm(1, 8))
	g.b.Jcc(x86.CondNE, loop)
}

// emitCondOps appends flag-consuming data instructions: cmp followed by
// cmov/setcc/adc/sbb, exercising the per-flag lifting and DBrew's partial
// flag knowledge.
func (g *gen) emitCondOps() {
	a, b := g.pick(), g.pick()
	d := g.pick()
	conds := []x86.Cond{x86.CondE, x86.CondNE, x86.CondL, x86.CondGE, x86.CondB, x86.CondA}
	c := conds[g.r.Intn(len(conds))]
	g.b.I(x86.CMP, x86.R64(a), x86.R64(b))
	switch g.r.Intn(4) {
	case 0:
		g.b.Emit(x86.Inst{Op: x86.CMOVCC, Cond: c, Dst: x86.R64(d), Src: x86.R64(a)})
	case 1:
		g.b.Emit(x86.Inst{Op: x86.SETCC, Cond: c, Dst: x86.R8L(d)})
		g.b.I(x86.MOVZX, x86.R64(d), x86.R8L(d))
	case 2:
		g.b.I(x86.ADC, x86.R64(d), x86.R64(a))
	case 3:
		g.b.I(x86.SBB, x86.R64(d), x86.Imm(int64(g.r.Intn(100)), 8))
	}
}

// emitDiamond appends an if/else on a data-dependent condition.
func (g *gen) emitDiamond() {
	a, b := g.pick(), g.pick()
	conds := []x86.Cond{x86.CondE, x86.CondNE, x86.CondL, x86.CondGE, x86.CondB, x86.CondA, x86.CondLE, x86.CondS}
	c := conds[g.r.Intn(len(conds))]
	els := g.b.NewLabel()
	done := g.b.NewLabel()
	g.b.I(x86.CMP, x86.R64(a), x86.R64(b))
	g.b.Jcc(c, els)
	g.emitALU()
	g.b.Jmp(done)
	g.b.Bind(els)
	g.emitALU()
	g.b.Bind(done)
}

// emitIndirect appends a computed goto: the absolute addresses of two case
// labels are stored into an in-memory table at the top of the scratch buffer
// (above the slots scratchOp hands out, so random stores cannot clobber it),
// then an indirect jmp selects one by a data-dependent bit. This is the
// jump-table idiom compilers emit for dense switches; the lifter, DBrew, and
// fastpath reject it, so masked programs go through the relaxed harness.
func (g *gen) emitIndirect() {
	c0 := g.b.NewLabel()
	c1 := g.b.NewLabel()
	done := g.b.NewLabel()
	g.b.MovLabel(x86.R11, c0)
	g.b.I(x86.MOV, x86.MemBD(8, x86.RDX, ScratchSize-16), x86.R64(x86.R11))
	g.b.MovLabel(x86.R11, c1)
	g.b.I(x86.MOV, x86.MemBD(8, x86.RDX, ScratchSize-8), x86.R64(x86.R11))
	g.b.I(x86.MOV, x86.R64(x86.R11), x86.R64(g.pick()))
	g.b.I(x86.AND, x86.R64(x86.R11), x86.Imm(1, 8))
	g.b.I(x86.JMPIndirect, x86.MemBIS(8, x86.RDX, x86.R11, 8, ScratchSize-16))
	g.b.Bind(c0)
	g.emitALU()
	g.b.Jmp(done)
	g.b.Bind(c1)
	g.emitALU()
	g.b.Bind(done)
}

// emitRepString appends a rep movsb or rep stosb block on the scratch
// buffer, then folds one destination byte back into a live register so the
// string op affects the architectural result. rsi/rdi/rcx are outside the
// register pool, so clobbering them is safe.
func (g *gen) emitRepString() {
	count := int64(g.r.Intn(24) + 1)
	srcOff := int32(8 * g.r.Intn(8))    // 0..56
	dstOff := int32(64 + 8*g.r.Intn(8)) // 64..120
	g.b.I(x86.LEA, x86.R64(x86.RDI), x86.MemBD(8, x86.RDX, dstOff))
	g.b.I(x86.MOV, x86.R64(x86.RCX), x86.Imm(count, 8))
	if g.r.Intn(2) == 0 {
		g.b.I(x86.LEA, x86.R64(x86.RSI), x86.MemBD(8, x86.RDX, srcOff))
		g.b.I(x86.REPMOVSB)
	} else {
		g.b.I(x86.REPSTOSB) // stores AL; rax holds live pool state
	}
	d := g.pick()
	g.b.I(x86.MOV, x86.R64(x86.R11), x86.MemBD(8, x86.RDX, dstOff))
	g.b.I(x86.AND, x86.R64(x86.R11), x86.Imm(0xFF, 8))
	g.b.I(x86.ADD, x86.R64(d), x86.R64(x86.R11))
}

// emitAdjacentLoops appends the trace-linking idiom: two counted do-while
// loops placed back to back so the first loop's not-taken backedge falls
// through directly onto the second loop's head, the pair re-entered by a
// short outer loop. Under RunNative's thresholds both inner loops compile
// traces on the first outer pass; on the second, the first trace's guard
// exit lands exactly on the second trace's head and the handoff goes
// through the trace-to-trace link cache instead of block dispatch.
func (g *gen) emitAdjacentLoops() {
	i1 := int64(g.r.Intn(5) + 4) // 4..8: enough iterations to record,
	i2 := int64(g.r.Intn(5) + 4) // compile, and enter each inner trace
	g.b.I(x86.MOV, x86.R64(x86.R11), x86.Imm(2, 8))
	top := g.b.NewLabel()
	g.b.Bind(top)
	// Both inner counters initialize before the first loop: an instruction
	// between the loops would become the first guard exit's target and the
	// handoff would miss the second trace's head.
	g.b.I(x86.MOV, x86.R64(x86.R10), x86.Imm(i1, 8))
	g.b.I(x86.MOV, x86.R64(x86.RCX), x86.Imm(i2, 8))
	l1 := g.b.NewLabel()
	g.b.Bind(l1)
	g.emitALU()
	g.b.I(x86.SUB, x86.R64(x86.R10), x86.Imm(1, 8))
	g.b.Jcc(x86.CondNE, l1) // fallthrough == second loop head
	l2 := g.b.NewLabel()
	g.b.Bind(l2)
	g.emitALU()
	g.b.I(x86.SUB, x86.R64(x86.RCX), x86.Imm(1, 8))
	g.b.Jcc(x86.CondNE, l2)
	g.b.I(x86.SUB, x86.R64(x86.R11), x86.Imm(1, 8))
	g.b.Jcc(x86.CondNE, top)
}

// Place loads the program into a fresh memory image with a scratch buffer
// and returns (memory, entry, scratch address).
func (p *Program) Place() (*emu.Memory, uint64, uint64, error) {
	mem := emu.NewMemory(0x10000000)
	if _, err := mem.MapBytes(0x400000, p.Code, "prog"); err != nil {
		return nil, 0, 0, err
	}
	scratch := mem.Alloc(ScratchSize, 16, "scratch")
	return mem, 0x400000, scratch.Start, nil
}

// RunNative executes the program on the emulator and returns (rax or xmm0
// bits, final scratch contents). The trace tier runs with aggressive
// thresholds so the generator's short counted loops cross them: every
// differential comparison then also covers record → compile → trace-VM
// execution (and O3 recompilation) against the lifted pipelines, not just
// the interpreter and block engine.
func RunNative(mem *emu.Memory, entry, scratch uint64, p *Program, a, b uint64) (uint64, []byte, error) {
	m := emu.NewMachine(mem)
	m.TraceOpts = emu.TraceOptions{HotThreshold: 2, O3Threshold: 4}
	res, err := m.Call(entry, emu.CallArgs{Ints: []uint64{a, b, scratch}}, 2_000_000)
	if err != nil {
		return 0, nil, err
	}
	if p.UsesFP {
		res = m.XMM[0].Lo
	}
	buf, err := mem.Read(scratch, ScratchSize)
	return res, buf, err
}

// resetScratch zeroes the scratch window between runs.
func ResetScratch(mem *emu.Memory, scratch uint64) error {
	b, err := mem.Bytes(scratch, ScratchSize)
	if err != nil {
		return err
	}
	for i := range b {
		b[i] = 0
	}
	return nil
}
