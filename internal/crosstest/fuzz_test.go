package crosstest

// FuzzDifferential feeds generator seeds through the full differential
// harness: every program the seed produces must agree bit-for-bit across
// native emulation, lifted interpretation, lifted+O3 interpretation,
// lifted+O3+JIT, the DBrew identity rewrite, and the fastpath baseline
// backend, on every boundary input pair (straight-line programs also pin
// fastpath's byte-copy shortcut). A crash artifact is therefore a seed
// whose generated program
// exposes a miscompilation somewhere in the pipeline; runDifferential dumps
// the disassembly and lifted IR on failure so the artifact is diagnosable
// offline.
//
// The committed seed corpus (testdata/fuzz/FuzzDifferential) pins seeds
// covering the generator's structural shapes — straight-line ALU, SSE
// blocks, counted loops, conditional diamonds, flag-consuming ops — and
// runs as part of the plain test suite ("go test" executes the corpus
// without fuzzing). make fuzz-smoke runs a short live fuzz on top.
//
// RunNative arms the emulator's trace tier with aggressive thresholds, so
// the harness also differentially exercises superblock recording, trace-VM
// execution, and guard-exit deoptimization whenever a generated loop gets
// hot. The loop-bearing corpus seeds below pin that behavior.

import (
	"testing"

	"repro/internal/emu"
	"repro/internal/x86"
)

// decodeFuzzSeed splits a raw fuzz input into (generator seed, feature
// mask): the low 32 bits seed the generator, bits 32-34 select features.
// Plain small seeds — the whole historical corpus — decode to a zero mask
// and the exact program they always produced; masked inputs reach the
// jump-table, rep-string, and trace-linking nested-loop shapes, and the
// fuzzer can mutate between the spaces freely.
func decodeFuzzSeed(raw int64) (int64, Feature) {
	return int64(uint32(raw)), Feature((uint64(raw) >> 32) & 7)
}

// encodeFuzzSeed is decodeFuzzSeed's inverse for pinning corpus entries.
func encodeFuzzSeed(seed int64, mask Feature) int64 {
	return int64(uint64(uint32(seed)) | uint64(mask)<<32)
}

func FuzzDifferential(f *testing.F) {
	// In-code seeds mirror the ranges the deterministic tests sweep.
	for _, seed := range []int64{1, 7, 19, 40, 100, 500, 512, 555} {
		f.Add(seed)
	}
	// Straight-line seeds that keep the fastpath byte-copy shortcut under
	// fuzz (pinned by TestFastpathShortcutSeeds).
	for _, seed := range []int64{3, 15, 17, 28} {
		f.Add(seed)
	}
	// Masked seeds pin the hard-idiom shapes under fuzz: computed gotos
	// through in-memory jump tables (mask 1), rep movsb/stosb blocks
	// (mask 2), and both at once (mask 3). Verified idiom-bearing by
	// TestFuzzCorpusHitsHardIdioms; mirrored in testdata/fuzz.
	for _, raw := range pinnedMaskedSeeds {
		f.Add(raw)
	}
	// Nested-loop seeds keep trace-to-trace linking under fuzz (pinned by
	// TestFuzzCorpusEngagesTraceLinks; mirrored in testdata/fuzz).
	for _, raw := range pinnedLinkSeeds {
		f.Add(raw)
	}
	f.Fuzz(func(t *testing.T, raw int64) {
		seed, mask := decodeFuzzSeed(raw)
		p, err := GenerateWithMask(seed, mask)
		if err != nil {
			// The generator rejects nothing today; treat a refusal as
			// uninteresting rather than a failure so fuzzing keeps moving.
			t.Skipf("seed %d: generate: %v", seed, err)
		}
		if mask != 0 {
			// Hard idioms may be rejected (classified) by the lifted
			// paths; the relaxed harness still requires every path that
			// accepts the program to agree bit-for-bit.
			runDifferentialRelaxed(t, p)
			return
		}
		runDifferential(t, p)
	})
}

// pinnedMaskedSeeds are the feature-masked corpus entries: two jump-table
// programs, two rep-string programs, two with both shapes (18|3 also mixes
// conditional diamonds around the indirect jmp, the closest the generator
// comes to irreducible regions).
var pinnedMaskedSeeds = []int64{
	encodeFuzzSeed(5, FeatIndirect),
	encodeFuzzSeed(10, FeatIndirect),
	encodeFuzzSeed(5, FeatRepString),
	encodeFuzzSeed(11, FeatRepString),
	encodeFuzzSeed(18, FeatIndirect|FeatRepString),
	encodeFuzzSeed(10, FeatIndirect|FeatRepString),
}

// pinnedLinkSeeds are nested-loop corpus entries whose adjacent-loop chunks
// provably hand off through the trace-to-trace link cache under RunNative's
// thresholds (verified by TestFuzzCorpusEngagesTraceLinks). 9/24/28 link
// multiple loop pairs; the masked pair mixes links with rep-string and
// jump-table idioms around the linked region.
var pinnedLinkSeeds = []int64{
	encodeFuzzSeed(9, FeatNestedLoop),
	encodeFuzzSeed(24, FeatNestedLoop),
	encodeFuzzSeed(28, FeatNestedLoop),
	encodeFuzzSeed(9, FeatNestedLoop|FeatRepString),
	encodeFuzzSeed(28, FeatNestedLoop|FeatRepString|FeatIndirect),
}

// TestFuzzCorpusHitsHardIdioms pins that the masked corpus seeds actually
// generate the idioms they were chosen for, so generator drift cannot
// silently reduce them to baseline programs.
func TestFuzzCorpusHitsHardIdioms(t *testing.T) {
	sawIndirect, sawRep := false, false
	for _, raw := range pinnedMaskedSeeds {
		seed, mask := decodeFuzzSeed(raw)
		p, err := GenerateWithMask(seed, mask)
		if err != nil {
			t.Fatalf("seed %d mask %#x: %v", seed, mask, err)
		}
		hasInd := containsOp(p, x86.JMPIndirect)
		hasRep := containsOp(p, x86.REPMOVSB) || containsOp(p, x86.REPSTOSB)
		if !hasInd && !hasRep {
			t.Errorf("seed %d mask %#x: program contains neither hard idiom", seed, mask)
		}
		sawIndirect = sawIndirect || hasInd
		sawRep = sawRep || hasRep
	}
	if !sawIndirect || !sawRep {
		t.Errorf("corpus coverage: indirect=%v rep-string=%v, want both", sawIndirect, sawRep)
	}
}

// TestFuzzCorpusEngagesTraces pins the loop-bearing corpus seeds to the
// trace tier: each must compile at least one superblock trace under
// RunNative's thresholds, so corpus runs (and fuzzing on top of them) keep
// covering the record -> compile -> trace-VM path. If the generator or the
// thresholds change and a seed stops tracing, this fails rather than the
// coverage silently evaporating.
func TestFuzzCorpusEngagesTraces(t *testing.T) {
	// 186/831/2517 compile several distinct traces in one program,
	// 1458 retires many trace iterations, 108/147 side-exit before
	// completing a single iteration, 25 is a plain counted loop.
	for _, seed := range []int64{25, 108, 147, 186, 831, 1458, 2517} {
		p, err := Generate(seed)
		if err != nil {
			t.Fatalf("seed %d: generate: %v", seed, err)
		}
		mem, entry, scratch, err := p.Place()
		if err != nil {
			t.Fatalf("seed %d: place: %v", seed, err)
		}
		before := emu.ReadTraceStats()
		if _, _, err := RunNative(mem, entry, scratch, p, 3, 5); err != nil {
			t.Fatalf("seed %d: run: %v", seed, err)
		}
		after := emu.ReadTraceStats()
		if after.Compiled == before.Compiled {
			t.Errorf("seed %d: no trace compiled (aborted %d): loop coverage lost",
				seed, after.Aborted-before.Aborted)
		}
	}
}

// TestFuzzCorpusEngagesTraceLinks pins the nested-loop corpus seeds to the
// linking tier: each must record at least one trace-to-trace link under
// RunNative's thresholds, so corpus runs (and fuzzing on top of them) keep
// covering the guard-exit handoff between compiled traces. Like its trace
// sibling above, this fails loudly if generator or threshold drift ever
// stops the seeds from linking.
func TestFuzzCorpusEngagesTraceLinks(t *testing.T) {
	for _, raw := range pinnedLinkSeeds {
		seed, mask := decodeFuzzSeed(raw)
		p, err := GenerateWithMask(seed, mask)
		if err != nil {
			t.Fatalf("seed %d mask %#x: generate: %v", seed, mask, err)
		}
		mem, entry, scratch, err := p.Place()
		if err != nil {
			t.Fatalf("seed %d mask %#x: place: %v", seed, mask, err)
		}
		before := emu.ReadTraceStats()
		if _, _, err := RunNative(mem, entry, scratch, p, 3, 5); err != nil {
			t.Fatalf("seed %d mask %#x: run: %v", seed, mask, err)
		}
		after := emu.ReadTraceStats()
		if after.Links == before.Links {
			t.Errorf("seed %d mask %#x: no trace link (compiled %d): linking coverage lost",
				seed, mask, after.Compiled-before.Compiled)
		}
	}
}
