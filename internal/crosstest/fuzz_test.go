package crosstest

// FuzzDifferential feeds generator seeds through the full differential
// harness: every program the seed produces must agree bit-for-bit across
// native emulation, lifted interpretation, lifted+O3 interpretation,
// lifted+O3+JIT, and the DBrew identity rewrite, on every boundary input
// pair. A crash artifact is therefore a seed whose generated program
// exposes a miscompilation somewhere in the pipeline; runDifferential dumps
// the disassembly and lifted IR on failure so the artifact is diagnosable
// offline.
//
// The committed seed corpus (testdata/fuzz/FuzzDifferential) pins seeds
// covering the generator's structural shapes — straight-line ALU, SSE
// blocks, counted loops, conditional diamonds, flag-consuming ops — and
// runs as part of the plain test suite ("go test" executes the corpus
// without fuzzing). make fuzz-smoke runs a short live fuzz on top.

import "testing"

func FuzzDifferential(f *testing.F) {
	// In-code seeds mirror the ranges the deterministic tests sweep.
	for _, seed := range []int64{1, 7, 19, 40, 100, 500, 512, 555} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		p, err := Generate(seed)
		if err != nil {
			// The generator rejects nothing today; treat a refusal as
			// uninteresting rather than a failure so fuzzing keeps moving.
			t.Skipf("seed %d: generate: %v", seed, err)
		}
		runDifferential(t, p)
	})
}
