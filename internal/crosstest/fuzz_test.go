package crosstest

// FuzzDifferential feeds generator seeds through the full differential
// harness: every program the seed produces must agree bit-for-bit across
// native emulation, lifted interpretation, lifted+O3 interpretation,
// lifted+O3+JIT, the DBrew identity rewrite, and the fastpath baseline
// backend, on every boundary input pair (straight-line programs also pin
// fastpath's byte-copy shortcut). A crash artifact is therefore a seed
// whose generated program
// exposes a miscompilation somewhere in the pipeline; runDifferential dumps
// the disassembly and lifted IR on failure so the artifact is diagnosable
// offline.
//
// The committed seed corpus (testdata/fuzz/FuzzDifferential) pins seeds
// covering the generator's structural shapes — straight-line ALU, SSE
// blocks, counted loops, conditional diamonds, flag-consuming ops — and
// runs as part of the plain test suite ("go test" executes the corpus
// without fuzzing). make fuzz-smoke runs a short live fuzz on top.
//
// RunNative arms the emulator's trace tier with aggressive thresholds, so
// the harness also differentially exercises superblock recording, trace-VM
// execution, and guard-exit deoptimization whenever a generated loop gets
// hot. The loop-bearing corpus seeds below pin that behavior.

import (
	"testing"

	"repro/internal/emu"
)

func FuzzDifferential(f *testing.F) {
	// In-code seeds mirror the ranges the deterministic tests sweep.
	for _, seed := range []int64{1, 7, 19, 40, 100, 500, 512, 555} {
		f.Add(seed)
	}
	// Straight-line seeds that keep the fastpath byte-copy shortcut under
	// fuzz (pinned by TestFastpathShortcutSeeds).
	for _, seed := range []int64{3, 15, 17, 28} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		p, err := Generate(seed)
		if err != nil {
			// The generator rejects nothing today; treat a refusal as
			// uninteresting rather than a failure so fuzzing keeps moving.
			t.Skipf("seed %d: generate: %v", seed, err)
		}
		runDifferential(t, p)
	})
}

// TestFuzzCorpusEngagesTraces pins the loop-bearing corpus seeds to the
// trace tier: each must compile at least one superblock trace under
// RunNative's thresholds, so corpus runs (and fuzzing on top of them) keep
// covering the record -> compile -> trace-VM path. If the generator or the
// thresholds change and a seed stops tracing, this fails rather than the
// coverage silently evaporating.
func TestFuzzCorpusEngagesTraces(t *testing.T) {
	// 186/831/2517 compile several distinct traces in one program,
	// 1458 retires many trace iterations, 108/147 side-exit before
	// completing a single iteration, 25 is a plain counted loop.
	for _, seed := range []int64{25, 108, 147, 186, 831, 1458, 2517} {
		p, err := Generate(seed)
		if err != nil {
			t.Fatalf("seed %d: generate: %v", seed, err)
		}
		mem, entry, scratch, err := p.Place()
		if err != nil {
			t.Fatalf("seed %d: place: %v", seed, err)
		}
		before := emu.ReadTraceStats()
		if _, _, err := RunNative(mem, entry, scratch, p, 3, 5); err != nil {
			t.Fatalf("seed %d: run: %v", seed, err)
		}
		after := emu.ReadTraceStats()
		if after.Compiled == before.Compiled {
			t.Errorf("seed %d: no trace compiled (aborted %d): loop coverage lost",
				seed, after.Aborted-before.Aborted)
		}
	}
}
