// Package stencil implements the paper's case study (Section V): generic 2d
// stencil descriptors in the two layouts of Figure 7 — a flat structure
// (struct FS/FP) and a coefficient-sorted structure (struct SS/SG/SP) — plus
// the matrix-with-interlines construction and the Jacobi iteration driver
// used by the evaluation, and pure-Go reference implementations that serve
// as correctness oracles for every code variant.
package stencil

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"repro/internal/emu"
)

// Point is one stencil tap: matrix offset (DX, DY) with coefficient F.
type Point struct {
	DX, DY int32
	F      float64
}

// Stencil is a generic 2d stencil.
type Stencil struct {
	Points []Point
}

// FourPoint returns the 4-point Jacobi stencil used throughout the paper
// (Figure 7's s4: the four neighbours weighted 0.25).
func FourPoint() Stencil {
	return Stencil{Points: []Point{
		{DX: -1, DY: 0, F: 0.25},
		{DX: 1, DY: 0, F: 0.25},
		{DX: 0, DY: -1, F: 0.25},
		{DX: 0, DY: 1, F: 0.25},
	}}
}

// EightPoint returns an 8-point stencil (the four neighbours plus the four
// diagonals) with two coefficient groups — exercising the sorted layout with
// more than one group.
func EightPoint() Stencil {
	return Stencil{Points: []Point{
		{DX: -1, DY: 0, F: 0.15},
		{DX: 1, DY: 0, F: 0.15},
		{DX: 0, DY: -1, F: 0.15},
		{DX: 0, DY: 1, F: 0.15},
		{DX: -1, DY: -1, F: 0.10},
		{DX: 1, DY: -1, F: 0.10},
		{DX: -1, DY: 1, F: 0.10},
		{DX: 1, DY: 1, F: 0.10},
	}}
}

// Flat layout (struct FS { int ps; struct FP p[]; } with
// struct FP { double f; int dx, dy; }):
//
//	offset 0:  ps (i32), 4 bytes padding
//	offset 8:  p[0].f (f64), p[0].dx (i32) at +8, p[0].dy (i32) at +12
//	stride 16 per point.
const (
	flatHeader   = 8
	flatStride   = 16
	flatOffF     = 0
	flatOffDX    = 8
	flatOffDY    = 12
	sortedHeader = 8
	groupHeader  = 16 // f (f64) at 0, ps (i32) at 8, padding, points at 16
	pointSize    = 8  // dx (i32), dy (i32)
)

// SerializeFlat writes the FS/FP representation into memory and returns its
// address and size.
func (s Stencil) SerializeFlat(mem *emu.Memory) (addr uint64, size int, err error) {
	size = flatHeader + flatStride*len(s.Points)
	buf := make([]byte, size)
	binary.LittleEndian.PutUint32(buf, uint32(len(s.Points)))
	for i, p := range s.Points {
		off := flatHeader + flatStride*i
		binary.LittleEndian.PutUint64(buf[off+flatOffF:], math.Float64bits(p.F))
		binary.LittleEndian.PutUint32(buf[off+flatOffDX:], uint32(p.DX))
		binary.LittleEndian.PutUint32(buf[off+flatOffDY:], uint32(p.DY))
	}
	r := mem.Alloc(size, 16, "stencil.flat")
	copy(r.Data, buf)
	return r.Start, size, nil
}

// Group is one coefficient group of the sorted layout.
type Group struct {
	F      float64
	Points []Point
}

// Groups returns the stencil points grouped by coefficient, sorted by
// descending group size (the paper's sorted structure groups points by
// coefficient so each factor is multiplied once per group).
func (s Stencil) Groups() []Group {
	byF := make(map[float64][]Point)
	var order []float64
	for _, p := range s.Points {
		if _, ok := byF[p.F]; !ok {
			order = append(order, p.F)
		}
		byF[p.F] = append(byF[p.F], p)
	}
	sort.Float64s(order)
	groups := make([]Group, 0, len(order))
	for _, f := range order {
		groups = append(groups, Group{F: f, Points: byF[f]})
	}
	sort.SliceStable(groups, func(i, j int) bool {
		return len(groups[i].Points) > len(groups[j].Points)
	})
	return groups
}

// SerializeSorted writes the SS/SG/SP representation. Like the paper's
// sorted structure, it contains nested pointers: the header holds gs and a
// table of gs pointers to the group records.
//
//	offset 0:       gs (i32), 4 bytes padding
//	offset 8:       gs pointers (8 bytes each) to the groups
//	each group:     f (f64), ps (i32), padding, then ps points of
//	                (dx i32, dy i32)
//
// headerSize covers only gs plus the pointer table — the part an explicit
// constant-memory configuration at the IR level sees (Section IV: nested
// pointers are not followed). size is the full serialized footprint, which
// DBrew's recursive fixation covers.
func (s Stencil) SerializeSorted(mem *emu.Memory) (addr uint64, headerSize, size int, err error) {
	groups := s.Groups()
	headerSize = sortedHeader + 8*len(groups)
	size = headerSize
	// Align group records to 8 bytes.
	groupOff := make([]int, len(groups))
	for i, g := range groups {
		size = (size + 7) &^ 7
		groupOff[i] = size
		size += groupHeader + pointSize*len(g.Points)
	}
	r := mem.Alloc(size, 16, "stencil.sorted")
	buf := r.Data
	binary.LittleEndian.PutUint32(buf, uint32(len(groups)))
	for i, g := range groups {
		binary.LittleEndian.PutUint64(buf[sortedHeader+8*i:], r.Start+uint64(groupOff[i]))
		off := groupOff[i]
		binary.LittleEndian.PutUint64(buf[off:], math.Float64bits(g.F))
		binary.LittleEndian.PutUint32(buf[off+8:], uint32(len(g.Points)))
		po := off + groupHeader
		for _, p := range g.Points {
			binary.LittleEndian.PutUint32(buf[po:], uint32(p.DX))
			binary.LittleEndian.PutUint32(buf[po+4:], uint32(p.DY))
			po += pointSize
		}
	}
	return r.Start, headerSize, size, nil
}

// Apply computes one stencil application at idx on a flattened sz×sz matrix
// — the reference semantics of apply_flat in Figure 7.
func (s Stencil) Apply(m1 []float64, sz, idx int) float64 {
	v := 0.0
	for _, p := range s.Points {
		v += p.F * m1[idx+int(p.DX)+sz*int(p.DY)]
	}
	return v
}

// ApplySorted computes the same value with the grouped evaluation order
// (one multiply per coefficient group).
func (s Stencil) ApplySorted(m1 []float64, sz, idx int) float64 {
	v := 0.0
	for _, g := range s.Groups() {
		sum := 0.0
		for _, p := range g.Points {
			sum += m1[idx+int(p.DX)+sz*int(p.DY)]
		}
		v += g.F * sum
	}
	return v
}

// Matrix is a square matrix of doubles living in emulated memory.
type Matrix struct {
	N      int
	Region *emu.Region
}

// MatrixSize returns the side length for a base grid with interlines:
// 9×9 with 80 interlines gives 649×649, the paper's configuration.
func MatrixSize(base, interlines int) int {
	return base + (base-1)*interlines
}

// NewMatrix allocates an n×n matrix (16-byte aligned, as malloc+GCC would).
func NewMatrix(mem *emu.Memory, n int, name string) *Matrix {
	r := mem.Alloc(n*n*8, 64, name)
	return &Matrix{N: n, Region: r}
}

// Addr returns the address of element (row, col).
func (m *Matrix) Addr(row, col int) uint64 {
	return m.Region.Start + uint64(8*(row*m.N+col))
}

// Set writes element (row, col).
func (m *Matrix) Set(row, col int, v float64) {
	binary.LittleEndian.PutUint64(m.Region.Data[8*(row*m.N+col):], math.Float64bits(v))
}

// Get reads element (row, col).
func (m *Matrix) Get(row, col int) float64 {
	return math.Float64frombits(binary.LittleEndian.Uint64(m.Region.Data[8*(row*m.N+col):]))
}

// Slice returns the matrix contents as a flat []float64 copy.
func (m *Matrix) Slice() []float64 {
	out := make([]float64, m.N*m.N)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(m.Region.Data[8*i:]))
	}
	return out
}

// InitBoundary sets the classic Jacobi boundary condition (linear gradients
// along the borders, zero interior), mirroring the example the paper's
// evaluation derives from.
func (m *Matrix) InitBoundary() {
	n := m.N
	h := 1.0 / float64(n-1)
	for i := 0; i < n; i++ {
		g := h * float64(i)
		m.Set(0, i, 1.0-g) // top
		m.Set(n-1, i, g)   // bottom
		m.Set(i, 0, 1.0-g) // left
		m.Set(i, n-1, g)   // right
	}
	m.Set(0, n-1, 0)
	m.Set(n-1, 0, 0)
}

// CopyFrom copies the contents of another matrix.
func (m *Matrix) CopyFrom(o *Matrix) error {
	if m.N != o.N {
		return fmt.Errorf("stencil: size mismatch %d vs %d", m.N, o.N)
	}
	copy(m.Region.Data, o.Region.Data)
	return nil
}

// JacobiRef performs iters Jacobi iterations in pure Go over the interior of
// the matrices and returns the final values — the correctness oracle.
func JacobiRef(s Stencil, src []float64, sz, iters int) []float64 {
	a := append([]float64(nil), src...)
	b := append([]float64(nil), src...)
	for it := 0; it < iters; it++ {
		for row := 1; row < sz-1; row++ {
			for col := 1; col < sz-1; col++ {
				idx := row*sz + col
				b[idx] = s.Apply(a, sz, idx)
			}
		}
		a, b = b, a
	}
	return a
}
