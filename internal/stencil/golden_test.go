package stencil_test

// Golden-file tests for the lifted IR of the Section VI element kernels:
// one golden per stencil data structure (direct, flat, sorted) × opt level
// (O0, O1, O3). The formatted IR is compared byte-for-byte, so any change
// to the lifter or an optimization pass that alters the produced IR — an
// intentional improvement or accidental churn — shows up as a reviewable
// testdata diff. Regenerate with:
//
//	go test ./internal/stencil -run TestKernelIRGolden -update
//
// The kernels are built at a fixed matrix size and fixed code base, and the
// pipeline is deterministic, so the goldens are stable across runs.

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/emu"
	"repro/internal/ir"
	"repro/internal/kernels"
	"repro/internal/lift"
	"repro/internal/opt"
)

var update = flag.Bool("update", false, "rewrite the IR golden files")

// goldenSZ is the matrix side length baked into the generic kernels; it
// appears as a constant in the IR, so it must not change without -update.
const goldenSZ = 9

func liftKernelIR(t *testing.T, structure string, cfg opt.Config) string {
	t.Helper()
	mem := emu.NewMemory(0x10000000)
	c, err := kernels.Build(mem, goldenSZ)
	if err != nil {
		t.Fatalf("build kernels: %v", err)
	}
	entry := map[string]uint64{
		"direct": c.DirectElem,
		"flat":   c.FlatElem,
		"sorted": c.SortedElem,
	}[structure]
	if entry == 0 {
		t.Fatalf("unknown structure %q", structure)
	}
	l := lift.New(mem, lift.DefaultOptions())
	f, err := l.LiftFunc(entry, structure+"_elem", kernels.ElemSig)
	if err != nil {
		t.Fatalf("lift %s: %v", structure, err)
	}
	opt.Optimize(f, cfg)
	if err := ir.Verify(f); err != nil {
		t.Fatalf("%s: optimized IR does not verify: %v", structure, err)
	}
	return ir.FormatFunc(f)
}

func TestKernelIRGolden(t *testing.T) {
	levels := []struct {
		name string
		cfg  opt.Config
	}{
		{"O0", opt.Config{}},
		{"O1", opt.O1()},
		{"O3", opt.O3()},
	}
	for _, structure := range []string{"direct", "flat", "sorted"} {
		for _, lv := range levels {
			structure, lv := structure, lv
			t.Run(structure+"_"+lv.name, func(t *testing.T) {
				got := liftKernelIR(t, structure, lv.cfg)
				path := filepath.Join("testdata", fmt.Sprintf("elem_%s_%s.ll.golden", structure, lv.name))
				if *update {
					if err := os.MkdirAll("testdata", 0o755); err != nil {
						t.Fatal(err)
					}
					if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
						t.Fatal(err)
					}
					return
				}
				want, err := os.ReadFile(path)
				if err != nil {
					t.Fatalf("missing golden (regenerate with -update): %v", err)
				}
				if string(want) != got {
					t.Errorf("IR differs from %s (regenerate with -update if intentional):\n%s",
						path, diffLines(string(want), got))
				}
			})
		}
	}
}

// TestKernelIRGoldenDeterministic guards the premise of the golden files:
// lifting and optimizing the same kernel twice yields identical text.
func TestKernelIRGoldenDeterministic(t *testing.T) {
	a := liftKernelIR(t, "flat", opt.O3())
	b := liftKernelIR(t, "flat", opt.O3())
	if a != b {
		t.Fatalf("lift+O3 is not deterministic:\n%s", diffLines(a, b))
	}
}

// diffLines renders a compact first-divergence report; full files can be
// large, so show context around the first differing line only.
func diffLines(want, got string) string {
	w := strings.Split(want, "\n")
	g := strings.Split(got, "\n")
	n := len(w)
	if len(g) < n {
		n = len(g)
	}
	for i := 0; i < n; i++ {
		if w[i] != g[i] {
			return fmt.Sprintf("first difference at line %d:\n  golden: %s\n  got:    %s", i+1, w[i], g[i])
		}
	}
	return fmt.Sprintf("line counts differ: golden %d lines, got %d lines", len(w), len(g))
}
