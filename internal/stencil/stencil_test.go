package stencil

import (
	"encoding/binary"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/emu"
)

func TestGroups(t *testing.T) {
	g4 := FourPoint().Groups()
	if len(g4) != 1 || len(g4[0].Points) != 4 || g4[0].F != 0.25 {
		t.Errorf("FourPoint groups: %+v", g4)
	}
	g8 := EightPoint().Groups()
	if len(g8) != 2 {
		t.Fatalf("EightPoint groups: %d", len(g8))
	}
	// Sorted by descending group size; equal here, so both have 4 points.
	if len(g8[0].Points) != 4 || len(g8[1].Points) != 4 {
		t.Errorf("EightPoint group sizes: %d, %d", len(g8[0].Points), len(g8[1].Points))
	}
}

func TestApplyEqualsApplySorted(t *testing.T) {
	const sz = 12
	m := make([]float64, sz*sz)
	for i := range m {
		m[i] = float64(i%17) / 3
	}
	for _, s := range []Stencil{FourPoint(), EightPoint()} {
		for row := 1; row < sz-1; row++ {
			for col := 1; col < sz-1; col++ {
				idx := row*sz + col
				a := s.Apply(m, sz, idx)
				b := s.ApplySorted(m, sz, idx)
				if math.Abs(a-b) > 1e-12 {
					t.Fatalf("apply mismatch at %d: %g vs %g", idx, a, b)
				}
			}
		}
	}
}

func TestSerializeFlatLayout(t *testing.T) {
	mem := emu.NewMemory(0x10000)
	s := FourPoint()
	addr, size, err := s.SerializeFlat(mem)
	if err != nil {
		t.Fatal(err)
	}
	if size != 8+16*4 {
		t.Errorf("flat size %d", size)
	}
	ps, _ := mem.ReadU(addr, 4)
	if ps != 4 {
		t.Errorf("ps = %d", ps)
	}
	// First point: f at +8, dx at +16, dy at +20.
	f, _ := mem.ReadFloat64(addr + 8)
	if f != 0.25 {
		t.Errorf("p[0].f = %g", f)
	}
	dx, _ := mem.ReadU(addr+16, 4)
	if int32(dx) != -1 {
		t.Errorf("p[0].dx = %d", int32(dx))
	}
}

func TestSerializeSortedLayout(t *testing.T) {
	mem := emu.NewMemory(0x10000)
	s := EightPoint()
	addr, header, size, err := s.SerializeSorted(mem)
	if err != nil {
		t.Fatal(err)
	}
	gs, _ := mem.ReadU(addr, 4)
	if gs != 2 {
		t.Errorf("gs = %d", gs)
	}
	if header != 8+8*2 {
		t.Errorf("header size %d", header)
	}
	// Each group pointer must land inside the serialized blob and point at
	// a record with the right point count.
	total := 0
	for gi := 0; gi < int(gs); gi++ {
		p, _ := mem.ReadU(addr+8+uint64(8*gi), 8)
		if p < addr || p >= addr+uint64(size) {
			t.Fatalf("group %d pointer %#x outside blob [%#x, %#x)", gi, p, addr, addr+uint64(size))
		}
		ps, _ := mem.ReadU(p+8, 4)
		total += int(ps)
		f, _ := mem.ReadFloat64(p)
		if f != 0.15 && f != 0.10 {
			t.Errorf("group %d f = %g", gi, f)
		}
	}
	if total != 8 {
		t.Errorf("total points %d", total)
	}
}

func TestMatrixBasics(t *testing.T) {
	mem := emu.NewMemory(0x100000)
	m := NewMatrix(mem, 8, "m")
	m.Set(2, 3, 1.5)
	if m.Get(2, 3) != 1.5 {
		t.Error("set/get")
	}
	if m.Addr(2, 3) != m.Region.Start+8*(2*8+3) {
		t.Error("addr")
	}
	sl := m.Slice()
	if sl[2*8+3] != 1.5 {
		t.Error("slice")
	}
	m2 := NewMatrix(mem, 8, "m2")
	if err := m2.CopyFrom(m); err != nil {
		t.Fatal(err)
	}
	if m2.Get(2, 3) != 1.5 {
		t.Error("copy")
	}
	m3 := NewMatrix(mem, 9, "m3")
	if err := m3.CopyFrom(m); err == nil {
		t.Error("size mismatch must error")
	}
}

func TestInitBoundary(t *testing.T) {
	mem := emu.NewMemory(0x100000)
	m := NewMatrix(mem, 5, "m")
	m.InitBoundary()
	if m.Get(0, 0) != 1 {
		t.Errorf("corner (0,0) = %g", m.Get(0, 0))
	}
	if m.Get(0, 4) != 0 || m.Get(4, 0) != 0 {
		t.Errorf("opposite corners must be 0")
	}
	if m.Get(2, 2) != 0 {
		t.Error("interior must start at 0")
	}
}

func TestJacobiRefConverges(t *testing.T) {
	// The Jacobi iteration smooths toward the boundary-driven harmonic
	// solution: the residual must shrink monotonically over iterations.
	const sz = 17
	mem := emu.NewMemory(0x100000)
	m := NewMatrix(mem, sz, "m")
	m.InitBoundary()
	src := m.Slice()
	s := FourPoint()
	prev := math.Inf(1)
	state := src
	for it := 0; it < 4; it++ {
		next := JacobiRef(s, state, sz, 5)
		var delta float64
		for i := range next {
			delta += math.Abs(next[i] - state[i])
		}
		if delta >= prev {
			t.Fatalf("iteration %d: residual %g did not shrink from %g", it, delta, prev)
		}
		prev = delta
		state = next
	}
}

// TestSerializeRoundTripProperty: random stencils serialize into flat form
// whose fields read back exactly.
func TestSerializeRoundTripProperty(t *testing.T) {
	prop := func(dxs, dys []int8, coefIdx []uint8) bool {
		n := len(dxs)
		if n > len(dys) {
			n = len(dys)
		}
		if n > len(coefIdx) {
			n = len(coefIdx)
		}
		if n == 0 || n > 16 {
			return true
		}
		coefs := []float64{0.25, 0.5, 0.125}
		st := Stencil{}
		for i := 0; i < n; i++ {
			st.Points = append(st.Points, Point{
				DX: int32(dxs[i]), DY: int32(dys[i]), F: coefs[int(coefIdx[i])%3],
			})
		}
		mem := emu.NewMemory(0x100000)
		addr, size, err := st.SerializeFlat(mem)
		if err != nil || size != 8+16*n {
			return false
		}
		buf, err := mem.Read(addr, size)
		if err != nil {
			return false
		}
		if binary.LittleEndian.Uint32(buf) != uint32(n) {
			return false
		}
		for i, p := range st.Points {
			off := 8 + 16*i
			if math.Float64frombits(binary.LittleEndian.Uint64(buf[off:])) != p.F {
				return false
			}
			if int32(binary.LittleEndian.Uint32(buf[off+8:])) != p.DX {
				return false
			}
			if int32(binary.LittleEndian.Uint32(buf[off+12:])) != p.DY {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestMatrixSizeFormula(t *testing.T) {
	cases := [][3]int{{9, 80, 649}, {9, 0, 9}, {5, 2, 13}}
	for _, c := range cases {
		if got := MatrixSize(c[0], c[1]); got != c[2] {
			t.Errorf("MatrixSize(%d, %d) = %d, want %d", c[0], c[1], got, c[2])
		}
	}
}
