package service

// The cache-hierarchy experiment behind `stencilbench -fig cache`: one
// Section VI line-kernel specialization served from each level of the new
// persistence/fleet hierarchy — a fresh compile, the in-memory cache, the
// on-disk artifact store across a daemon restart, and a peer fetch from the
// key's owning fleet node — so the "not compiling at all" levels can be
// compared against the compile they replace. Every timed request travels
// the full HTTP+JSON path and includes region placement, the cost a real
// client pays on every variant.

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"time"

	dbrewllvm "repro"
	"repro/internal/bench"
	"repro/internal/cluster"
)

// CacheBenchRow is one structure's latency-by-source comparison, all
// values mean microseconds per request.
type CacheBenchRow struct {
	Structure     string
	CompileUS     float64 // pipeline execution (source "compile")
	MemoryHitUS   float64 // in-memory specialization cache (source "memory")
	DiskRestartUS float64 // restarted daemon, artifact store (source "disk")
	PeerHitUS     float64 // non-owner node adopting the owner's artifact (source "peer")
}

// RunCacheBenchmark measures specialization latency by serving level for
// the line kernel over every stencil structure. Each row asserts the
// response's Source field, so a regression that silently reroutes a level
// to the pipeline fails the run rather than skewing it.
func RunCacheBenchmark(size, repeats int) ([]CacheBenchRow, error) {
	if repeats < 1 {
		repeats = 1
	}
	w, err := bench.NewWorkload(size)
	if err != nil {
		return nil, err
	}
	regions := SnapshotRegions(w.Mem)
	ctx := context.Background()

	var rows []CacheBenchRow
	for _, structure := range bench.AllStructures {
		in := w.SpecInput(bench.Line, structure, bench.DBrewLLVM)
		row := CacheBenchRow{Structure: structure.String()}

		dir, err := os.MkdirTemp("", "dbrew-cachebench-")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(dir)

		// Level "compile" and level "memory" on one persistent daemon.
		svc := New(Config{CacheDir: dir})
		ts := httptest.NewServer(svc)
		client := NewClient(ts.URL)
		for i := 0; i < repeats; i++ {
			us, err := timedRequest(ctx, client, benchRequest(in, regions, coldBudget(i)), "compile")
			if err != nil {
				ts.Close()
				return nil, fmt.Errorf("%s compile: %w", structure, err)
			}
			row.CompileUS += us
		}
		warmReq := benchRequest(in, regions, 0)
		if _, err := client.Specialize(ctx, warmReq); err != nil {
			ts.Close()
			return nil, fmt.Errorf("%s warm prime: %w", structure, err)
		}
		for i := 0; i < repeats; i++ {
			us, err := timedRequest(ctx, client, warmReq, "memory")
			if err != nil {
				ts.Close()
				return nil, fmt.Errorf("%s memory hit: %w", structure, err)
			}
			row.MemoryHitUS += us
		}
		if err := svc.Shutdown(ctx); err != nil {
			ts.Close()
			return nil, err
		}
		ts.Close()

		// Level "disk": a restarted daemon over the same artifact directory.
		// Each repeat restarts fresh, so the request pays the honest warm-
		// restart path: region placement plus the artifact load.
		for i := 0; i < repeats; i++ {
			us, err := restartRequest(ctx, dir, warmReq)
			if err != nil {
				return nil, fmt.Errorf("%s disk restart: %w", structure, err)
			}
			row.DiskRestartUS += us
		}

		// Level "peer": an owner node holds the artifact; fresh non-owner
		// nodes fetch and adopt it.
		peerUS, err := peerHitLatency(ctx, regions, in, repeats)
		if err != nil {
			return nil, fmt.Errorf("%s peer hit: %w", structure, err)
		}
		row.PeerHitUS = peerUS

		n := float64(repeats)
		row.CompileUS /= n
		row.MemoryHitUS /= n
		row.DiskRestartUS /= n
		rows = append(rows, row)
	}
	return rows, nil
}

// timedRequest sends req and returns the elapsed microseconds, failing
// when the response was not served by the expected level.
func timedRequest(ctx context.Context, client *Client, req *Request, wantSource string) (float64, error) {
	start := time.Now()
	resp, err := client.Specialize(ctx, req)
	if err != nil {
		return 0, err
	}
	elapsed := us(start)
	if resp.Source != wantSource {
		return 0, fmt.Errorf("served from %q, want %q", resp.Source, wantSource)
	}
	return elapsed, nil
}

// restartRequest boots a fresh daemon over dir, waits for the artifact
// index to warm, and times one request that must hit the disk level.
func restartRequest(ctx context.Context, dir string, req *Request) (float64, error) {
	svc := New(Config{CacheDir: dir})
	ts := httptest.NewServer(svc)
	defer ts.Close()
	<-svc.Ready()
	if err := svc.WarmError(); err != nil {
		return 0, err
	}
	return timedRequest(ctx, NewClient(ts.URL), req, "disk")
}

// peerHitLatency primes the key's owning node, then measures fresh
// non-owner nodes fetching the artifact through the fleet protocol.
func peerHitLatency(ctx context.Context, regions []Region, in bench.SpecInput, repeats int) (float64, error) {
	// The owner serves on a real port; the measuring nodes advertise a
	// fixed placeholder address that is part of the ring but never dialed.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return 0, err
	}
	ownerAddr := ln.Addr().String()
	const measurerAddr = "measurer.invalid:1"

	owner := New(Config{Self: ownerAddr, Peers: []string{measurerAddr}})
	ownerSrv := &http.Server{Handler: owner}
	go ownerSrv.Serve(ln)
	defer ownerSrv.Close()

	// The measured key must be owned by the owner node; nudge the
	// instruction budget (part of the key, irrelevant to the code) until
	// consistent hashing lands it there.
	eng := dbrewllvm.NewEngine()
	eng.EnableCache(16)
	for _, rg := range regions {
		if _, err := eng.Mem.MapBytes(rg.Addr, rg.Data, "image"); err != nil {
			return 0, err
		}
	}
	ring := cluster.New(measurerAddr, []string{ownerAddr}, cluster.Options{})
	budget := 0
	for i := 1; ; i++ {
		rw := newBenchRewriter(eng, in, budget)
		key, ok := rw.CacheKey()
		if !ok {
			return 0, fmt.Errorf("bench key not derivable")
		}
		if o, self := ring.Owner(key); !self && o == ownerAddr {
			break
		}
		budget = 1<<25 + i // key nudge: huge budget, identical generated code
	}
	ownedReq := benchRequest(in, regions, budget)

	ownerClient := NewClient("http://" + ownerAddr)
	if _, err := ownerClient.Specialize(ctx, ownedReq); err != nil {
		return 0, fmt.Errorf("owner prime: %w", err)
	}

	var total float64
	for i := 0; i < repeats; i++ {
		svc := New(Config{Self: measurerAddr, Peers: []string{ownerAddr}})
		ts := httptest.NewServer(svc)
		us, err := timedRequest(ctx, NewClient(ts.URL), ownedReq, "peer")
		ts.Close()
		if err != nil {
			return 0, err
		}
		total += us
	}
	return total / float64(repeats), nil
}

// FormatCacheBenchmark renders the level comparison with the speedup each
// non-compiling level buys over the pipeline.
func FormatCacheBenchmark(rows []CacheBenchRow) string {
	out := "Specialization latency by serving level (line kernel, LLVM backend, mean us):\n\n"
	out += fmt.Sprintf("  %-12s %10s %12s %14s %10s %18s\n",
		"structure", "compile", "memory hit", "disk restart", "peer hit", "restart speedup")
	for _, r := range rows {
		speedup := 0.0
		if r.DiskRestartUS > 0 {
			speedup = r.CompileUS / r.DiskRestartUS
		}
		out += fmt.Sprintf("  %-12s %10.1f %12.1f %14.1f %10.1f %17.1fx\n",
			r.Structure, r.CompileUS, r.MemoryHitUS, r.DiskRestartUS, r.PeerHitUS, speedup)
	}
	out += "\nevery request travels the full HTTP+JSON path and asserts its serving level:\n"
	out += "memory = one daemon's specialization cache; disk restart = a freshly booted\n"
	out += "daemon over the same -cachedir; peer hit = a cold fleet node adopting the\n"
	out += "owning node's artifact instead of compiling.\n"
	return out
}
