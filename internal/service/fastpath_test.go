package service

// Deadline-pressured strategy selection: requests whose remaining budget
// falls below Config.FastpathDeadline must be compiled by the single-pass
// fastpath backend and say so in Response.Strategy, without ever sharing
// cache entries with full-strategy compiles of the same specialization.

import (
	"bytes"
	"context"
	"testing"
	"time"

	dbrewllvm "repro"
	"repro/internal/bench"
)

// TestFastpathStrategySelection drives one server through both strategies:
// a generous deadline keeps the full pipeline, a budget below the
// threshold flips to fastpath, and the two never coalesce into the same
// cache entry.
func TestFastpathStrategySelection(t *testing.T) {
	w, regions := newWorkloadSnapshot(t)
	in := w.SpecInput(bench.Line, bench.Flat, bench.DBrewLLVM)

	_, client := startServer(t, Config{FastpathDeadline: 5 * time.Second})

	full := requestFor(in, regions, specCase{backend: "llvm", fix: true})
	full.DeadlineMS = 60_000
	fullResp, err := client.Specialize(context.Background(), full)
	if err != nil {
		t.Fatalf("full Specialize: %v", err)
	}
	if fullResp.Strategy != strategyFull {
		t.Fatalf("generous-deadline strategy = %q, want %q", fullResp.Strategy, strategyFull)
	}
	if len(fullResp.Code) == 0 {
		t.Fatal("full strategy returned no code")
	}

	// Same specialization, but the 4s budget sits below the 5s threshold:
	// the server must switch strategies and must not serve the cached
	// full-strategy artifact (the cache key includes the strategy).
	fast := requestFor(in, regions, specCase{backend: "llvm", fix: true})
	fast.DeadlineMS = 4_000
	fastResp, err := client.Specialize(context.Background(), fast)
	if err != nil {
		t.Fatalf("fastpath Specialize: %v", err)
	}
	if fastResp.Strategy != strategyFastpath {
		t.Fatalf("tight-deadline strategy = %q, want %q", fastResp.Strategy, strategyFastpath)
	}
	if fastResp.CacheHit {
		t.Error("fastpath request hit the full-strategy cache entry")
	}
	if len(fastResp.Code) == 0 {
		t.Fatal("fastpath strategy returned no code")
	}

	// A repeat under the same pressure is a warm hit on the fastpath entry.
	fastResp2, err := client.Specialize(context.Background(), fast)
	if err != nil {
		t.Fatalf("warm fastpath Specialize: %v", err)
	}
	if !fastResp2.CacheHit {
		t.Error("identical fastpath repeat did not hit the cache")
	}
	if fastResp2.Strategy != strategyFastpath {
		t.Errorf("warm fastpath strategy = %q, want %q", fastResp2.Strategy, strategyFastpath)
	}
	if !bytes.Equal(fastResp2.Code, fastResp.Code) {
		t.Error("warm fastpath bytes differ from cold fastpath bytes")
	}

	m, err := client.Metrics(context.Background())
	if err != nil {
		t.Fatalf("Metrics: %v", err)
	}
	if m.FastpathServed != 2 {
		t.Errorf("fastpath_served = %d, want 2", m.FastpathServed)
	}
	if m.FullServed != 1 {
		t.Errorf("full_served = %d, want 1", m.FullServed)
	}
	if m.Engine.FastpathCompiles != 1 {
		t.Errorf("engine fastpath_compiles = %d, want 1", m.Engine.FastpathCompiles)
	}
}

// TestFastpathStrategyMatchesDirectRewrite asserts the fastpath artifact
// served over HTTP is byte-identical to a direct in-process Rewriter with
// Fastpath set, over the same snapshot — the same acceptance criterion
// TestServiceMatchesDirectRewrite applies to the full pipeline.
func TestFastpathStrategyMatchesDirectRewrite(t *testing.T) {
	w, regions := newWorkloadSnapshot(t)
	in := w.SpecInput(bench.Line, bench.Flat, bench.DBrewLLVM)

	eng := directEngine(t, regions)
	rw := dbrewllvm.NewRewriter(eng, in.Entry, in.Sig)
	rw.SetBackend(dbrewllvm.BackendLLVM)
	rw.Fastpath = true
	rw.SetParPtr(0, in.StencilAddr, in.StencilSize)
	directAddr, err := rw.Rewrite()
	if err != nil {
		t.Fatalf("direct fastpath Rewrite: %v", err)
	}
	directCode, err := eng.Mem.Read(directAddr, rw.CodeSize)
	if err != nil {
		t.Fatal(err)
	}

	// A threshold above any allowed deadline forces fastpath on every
	// request this server sees.
	_, client := startServer(t, Config{FastpathDeadline: time.Hour})
	req := requestFor(in, regions, specCase{backend: "llvm", fix: true})
	resp, err := client.Specialize(context.Background(), req)
	if err != nil {
		t.Fatalf("Specialize: %v", err)
	}
	if resp.Strategy != strategyFastpath {
		t.Fatalf("strategy = %q, want %q", resp.Strategy, strategyFastpath)
	}
	if !bytes.Equal(resp.Code, directCode) {
		t.Fatalf("service fastpath code (%d bytes) differs from direct fastpath Rewrite (%d bytes)",
			len(resp.Code), len(directCode))
	}
}
