package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
)

// Sentinel errors for the interesting response classes; match with
// errors.Is against the error returned by Client methods.
var (
	// ErrOverloaded is 429: the daemon's admission queue was full.
	ErrOverloaded = errors.New("service: overloaded")
	// ErrDeadlineExceeded is 504: the request's deadline passed server-side.
	ErrDeadlineExceeded = errors.New("service: deadline exceeded")
	// ErrShuttingDown is 503: the daemon is draining.
	ErrShuttingDown = errors.New("service: shutting down")
	// ErrConflict is 409: a region conflicts with already-uploaded contents.
	ErrConflict = errors.New("service: region conflict")
)

// APIError is any non-2xx response, carrying the HTTP status, the failing
// pipeline stage (when the server identified one), and the server message.
// It matches the sentinel errors above under errors.Is.
type APIError struct {
	StatusCode int
	Stage      string
	Message    string
}

// Error formats the status, optional stage, and message.
func (e *APIError) Error() string {
	if e.Stage != "" {
		return fmt.Sprintf("service: HTTP %d (%s stage): %s", e.StatusCode, e.Stage, e.Message)
	}
	return fmt.Sprintf("service: HTTP %d: %s", e.StatusCode, e.Message)
}

// Is maps status codes onto the package sentinels.
func (e *APIError) Is(target error) bool {
	switch target {
	case ErrOverloaded:
		return e.StatusCode == http.StatusTooManyRequests
	case ErrDeadlineExceeded:
		return e.StatusCode == http.StatusGatewayTimeout
	case ErrShuttingDown:
		return e.StatusCode == http.StatusServiceUnavailable
	case ErrConflict:
		return e.StatusCode == http.StatusConflict
	}
	return false
}

// Client is the typed dbrewd client used by cmd/dbrewd's smoke mode, the
// round-trip benchmark, and the end-to-end tests.
type Client struct {
	// BaseURL is the daemon root, e.g. "http://127.0.0.1:7411".
	BaseURL string
	// HTTPClient defaults to http.DefaultClient.
	HTTPClient *http.Client
}

// NewClient returns a client for the daemon at baseURL.
func NewClient(baseURL string) *Client { return &Client{BaseURL: baseURL} }

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// Specialize posts one specialization request and decodes the result.
// Non-2xx responses come back as *APIError.
func (c *Client) Specialize(ctx context.Context, req *Request) (*Response, error) {
	return c.specialize(ctx, req, "/specialize")
}

// SpecializeTraced is Specialize with ?trace=1: the daemon captures a
// per-request pipeline trace and returns it in Response.Trace.
func (c *Client) SpecializeTraced(ctx context.Context, req *Request) (*Response, error) {
	return c.specialize(ctx, req, "/specialize?trace=1")
}

func (c *Client) specialize(ctx context.Context, req *Request, path string) (*Response, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, fmt.Errorf("service: encoding request: %w", err)
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+path, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	hres, err := c.httpClient().Do(hreq)
	if err != nil {
		return nil, err
	}
	defer hres.Body.Close()
	if hres.StatusCode != http.StatusOK {
		return nil, decodeError(hres)
	}
	var resp Response
	if err := json.NewDecoder(hres.Body).Decode(&resp); err != nil {
		return nil, fmt.Errorf("service: decoding response: %w", err)
	}
	return &resp, nil
}

// Health checks /healthz; nil means the daemon is accepting requests.
func (c *Client) Health(ctx context.Context) error {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/healthz", nil)
	if err != nil {
		return err
	}
	hres, err := c.httpClient().Do(hreq)
	if err != nil {
		return err
	}
	defer hres.Body.Close()
	if hres.StatusCode != http.StatusOK {
		return decodeError(hres)
	}
	return nil
}

// Metrics fetches and decodes /metrics.
func (c *Client) Metrics(ctx context.Context) (*Metrics, error) {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/metrics", nil)
	if err != nil {
		return nil, err
	}
	// The default /metrics representation is Prometheus text; ask for the
	// structured JSON snapshot explicitly.
	hreq.Header.Set("Accept", "application/json")
	hres, err := c.httpClient().Do(hreq)
	if err != nil {
		return nil, err
	}
	defer hres.Body.Close()
	if hres.StatusCode != http.StatusOK {
		return nil, decodeError(hres)
	}
	var m Metrics
	if err := json.NewDecoder(hres.Body).Decode(&m); err != nil {
		return nil, fmt.Errorf("service: decoding metrics: %w", err)
	}
	return &m, nil
}

func decodeError(hres *http.Response) error {
	apiErr := &APIError{StatusCode: hres.StatusCode}
	raw, _ := io.ReadAll(io.LimitReader(hres.Body, 1<<16))
	var body ErrorBody
	if json.Unmarshal(raw, &body) == nil && body.Error != "" {
		apiErr.Stage = body.Stage
		apiErr.Message = body.Error
	} else {
		apiErr.Message = string(bytes.TrimSpace(raw))
	}
	return apiErr
}
