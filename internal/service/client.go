package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
)

// Sentinel errors for the interesting response classes; match with
// errors.Is against the error returned by Client methods.
var (
	// ErrOverloaded is 429: the daemon's admission queue was full.
	ErrOverloaded = errors.New("service: overloaded")
	// ErrDeadlineExceeded is 504: the request's deadline passed server-side.
	ErrDeadlineExceeded = errors.New("service: deadline exceeded")
	// ErrShuttingDown is 503: the daemon is draining.
	ErrShuttingDown = errors.New("service: shutting down")
	// ErrConflict is 409: a region conflicts with already-uploaded contents.
	ErrConflict = errors.New("service: region conflict")
)

// APIError is any non-2xx response, carrying the HTTP status, the failing
// pipeline stage (when the server identified one), and the server message.
// It matches the sentinel errors above under errors.Is.
type APIError struct {
	StatusCode int
	Stage      string
	Message    string
	// Missing carries the 412 missing-chunk set for delta-form requests.
	Missing []string
}

// Error formats the status, optional stage, and message.
func (e *APIError) Error() string {
	if e.Stage != "" {
		return fmt.Sprintf("service: HTTP %d (%s stage): %s", e.StatusCode, e.Stage, e.Message)
	}
	return fmt.Sprintf("service: HTTP %d: %s", e.StatusCode, e.Message)
}

// Is maps status codes onto the package sentinels.
func (e *APIError) Is(target error) bool {
	switch target {
	case ErrOverloaded:
		return e.StatusCode == http.StatusTooManyRequests
	case ErrDeadlineExceeded:
		return e.StatusCode == http.StatusGatewayTimeout
	case ErrShuttingDown:
		return e.StatusCode == http.StatusServiceUnavailable
	case ErrConflict:
		return e.StatusCode == http.StatusConflict
	}
	return false
}

// Client is the typed dbrewd client used by cmd/dbrewd's smoke mode, the
// round-trip benchmark, and the end-to-end tests.
type Client struct {
	// BaseURL is the daemon root, e.g. "http://127.0.0.1:7411".
	BaseURL string
	// HTTPClient defaults to http.DefaultClient.
	HTTPClient *http.Client

	// deltaMu guards delta/known: delta snapshots replace each region's
	// bytes with its content-defined chunk list, omitting payloads the
	// server acknowledged in an earlier response.
	deltaMu sync.Mutex
	delta   bool
	known   map[string]struct{}
}

// EnableDeltaSnapshots switches this client to chunked delta uploads:
// regions ship as chunk-hash lists, payloads included only for chunks the
// server has not yet acknowledged. A server that lost chunks (restart,
// store eviction) answers 412 with the missing set; the client retries once
// with those payloads, and falls back to a plain full snapshot if the delta
// transport still fails — delta mode can never lose a request.
func (c *Client) EnableDeltaSnapshots() {
	c.deltaMu.Lock()
	defer c.deltaMu.Unlock()
	c.delta = true
	if c.known == nil {
		c.known = make(map[string]struct{})
	}
}

// deltaRequest returns a copy of req with every region in delta form, plus
// the full ordered hash list for post-success bookkeeping. Chunks in force
// (the server's reported missing set) or never acknowledged carry payloads.
func (c *Client) deltaRequest(req *Request, force map[string]bool) (*Request, []string) {
	c.deltaMu.Lock()
	defer c.deltaMu.Unlock()
	dreq := *req
	dreq.Regions = make([]Region, len(req.Regions))
	var hashes []string
	for i, rg := range req.Regions {
		chunks := splitChunks(rg.Data)
		wire := make([]Chunk, len(chunks))
		for j, data := range chunks {
			h := chunkHash(data)
			hashes = append(hashes, h)
			wire[j] = Chunk{Hash: h}
			_, acked := c.known[h]
			if force[h] || !acked {
				wire[j].Data = data
			}
		}
		dreq.Regions[i] = Region{Addr: rg.Addr, Chunks: wire}
	}
	return &dreq, hashes
}

func (c *Client) markKnown(hashes []string) {
	c.deltaMu.Lock()
	defer c.deltaMu.Unlock()
	for _, h := range hashes {
		c.known[h] = struct{}{}
	}
}

func (c *Client) deltaEnabled() bool {
	c.deltaMu.Lock()
	defer c.deltaMu.Unlock()
	return c.delta
}

// NewClient returns a client for the daemon at baseURL.
func NewClient(baseURL string) *Client { return &Client{BaseURL: baseURL} }

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// Specialize posts one specialization request and decodes the result.
// Non-2xx responses come back as *APIError.
func (c *Client) Specialize(ctx context.Context, req *Request) (*Response, error) {
	return c.specialize(ctx, req, "/specialize")
}

// SpecializeTraced is Specialize with ?trace=1: the daemon captures a
// per-request pipeline trace and returns it in Response.Trace.
func (c *Client) SpecializeTraced(ctx context.Context, req *Request) (*Response, error) {
	return c.specialize(ctx, req, "/specialize?trace=1")
}

func (c *Client) specialize(ctx context.Context, req *Request, path string) (*Response, error) {
	if !c.deltaEnabled() {
		return c.post(ctx, req, path)
	}
	dreq, hashes := c.deltaRequest(req, nil)
	resp, err := c.post(ctx, dreq, path)
	var apiErr *APIError
	if err != nil && errors.As(err, &apiErr) &&
		apiErr.StatusCode == http.StatusPreconditionFailed && len(apiErr.Missing) > 0 {
		force := make(map[string]bool, len(apiErr.Missing))
		for _, h := range apiErr.Missing {
			force[h] = true
		}
		dreq, hashes = c.deltaRequest(req, force)
		resp, err = c.post(ctx, dreq, path)
	}
	if err != nil {
		if errors.As(err, &apiErr) && apiErr.StatusCode == http.StatusPreconditionFailed {
			// The handshake failed twice (a store thrashing under eviction
			// pressure); the plain snapshot always works.
			return c.post(ctx, req, path)
		}
		return nil, err
	}
	c.markKnown(hashes)
	return resp, nil
}

func (c *Client) post(ctx context.Context, req *Request, path string) (*Response, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, fmt.Errorf("service: encoding request: %w", err)
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+path, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	hres, err := c.httpClient().Do(hreq)
	if err != nil {
		return nil, err
	}
	defer hres.Body.Close()
	if hres.StatusCode != http.StatusOK {
		return nil, decodeError(hres)
	}
	var resp Response
	if err := json.NewDecoder(hres.Body).Decode(&resp); err != nil {
		return nil, fmt.Errorf("service: decoding response: %w", err)
	}
	return &resp, nil
}

// Health checks /healthz; nil means the daemon is accepting requests.
func (c *Client) Health(ctx context.Context) error {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/healthz", nil)
	if err != nil {
		return err
	}
	hres, err := c.httpClient().Do(hreq)
	if err != nil {
		return err
	}
	defer hres.Body.Close()
	if hres.StatusCode != http.StatusOK {
		return decodeError(hres)
	}
	return nil
}

// Metrics fetches and decodes /metrics.
func (c *Client) Metrics(ctx context.Context) (*Metrics, error) {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/metrics", nil)
	if err != nil {
		return nil, err
	}
	// The default /metrics representation is Prometheus text; ask for the
	// structured JSON snapshot explicitly.
	hreq.Header.Set("Accept", "application/json")
	hres, err := c.httpClient().Do(hreq)
	if err != nil {
		return nil, err
	}
	defer hres.Body.Close()
	if hres.StatusCode != http.StatusOK {
		return nil, decodeError(hres)
	}
	var m Metrics
	if err := json.NewDecoder(hres.Body).Decode(&m); err != nil {
		return nil, fmt.Errorf("service: decoding metrics: %w", err)
	}
	return &m, nil
}

func decodeError(hres *http.Response) error {
	apiErr := &APIError{StatusCode: hres.StatusCode}
	raw, _ := io.ReadAll(io.LimitReader(hres.Body, 1<<16))
	var body ErrorBody
	if json.Unmarshal(raw, &body) == nil && body.Error != "" {
		apiErr.Stage = body.Stage
		apiErr.Message = body.Error
		apiErr.Missing = body.Missing
	} else {
		apiErr.Message = string(bytes.TrimSpace(raw))
	}
	return apiErr
}
