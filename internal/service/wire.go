// Package service implements dbrewd, the specialization-as-a-service
// daemon: an HTTP front-end over the Engine/Rewriter pipeline that accepts
// raw x86-64 machine code plus a specialization configuration and returns
// the optimized machine code, its IR, and compile statistics.
//
// A request is a self-contained snapshot of the client's relevant address
// space: every region (code and fixed data) is shipped with its absolute
// address and reconstructed verbatim inside the daemon's engine, so the
// returned code is byte-identical to what an in-process Rewrite would have
// produced over the same image. Identical regions re-uploaded by later
// requests are recognized by content and reused; conflicting contents at
// the same address are rejected with 409 rather than silently respecialized
// over different data.
//
// The daemon's operational behavior — bounded worker pool with admission
// control, request coalescing through the engine's specialization-cache
// singleflight, per-request deadlines, graceful shutdown, and the
// /healthz + /metrics endpoints — is described in DESIGN.md ("dbrewd").
package service

import (
	"encoding/json"
	"fmt"

	dbrewllvm "repro"
	"repro/internal/abi"
	"repro/internal/cluster"
	"repro/internal/emu"
	"repro/internal/tier"
)

// Region is one mapped range of the client's address space, placed at its
// absolute address inside the daemon's engine. Data is base64 in JSON.
//
// A region travels in exactly one of two forms: plain (Data holds the
// bytes) or delta (Chunks lists the region's content-defined chunks in
// order, each payload optional). The server reconstructs delta regions from
// its chunk store and answers 412 with ErrorBody.Missing when payloads it
// has never seen are omitted — see Client.EnableDeltaSnapshots.
type Region struct {
	Addr uint64 `json:"addr"`
	Data []byte `json:"data,omitempty"`
	// Chunks is the delta form: the region's chunk sequence. Mutually
	// exclusive with Data.
	Chunks []Chunk `json:"chunks,omitempty"`
}

// Chunk is one content-defined chunk of a delta-form region. Hash is the
// chunk identity (truncated SHA-256, hex); Data is the payload, omitted
// when the client believes the server's chunk store already holds it.
type Chunk struct {
	Hash string `json:"hash"`
	Data []byte `json:"data,omitempty"`
}

// SigSpec is the wire form of a function signature. Classes are "int",
// "ptr", "f64"; the return class may also be "none" (or empty) for void.
type SigSpec struct {
	Ret    string   `json:"ret,omitempty"`
	Params []string `json:"params"`
}

// ParamFix fixes one parameter. With Ptr false it is dbrew_setpar(idx,
// value); with Ptr true it is dbrew_setpar_ptr: Value is a pointer whose
// target region [Value, Value+Size) holds fixed contents.
type ParamFix struct {
	Idx   int    `json:"idx"`
	Value uint64 `json:"value"`
	Ptr   bool   `json:"ptr,omitempty"`
	Size  int    `json:"size,omitempty"`
}

// MemRange declares [Start, End) as fixed memory (dbrew_setmem).
type MemRange struct {
	Start uint64 `json:"start"`
	End   uint64 `json:"end"`
}

// Limits forwards the DBrew resource limits; zero fields keep defaults.
type Limits struct {
	BufferSize  int `json:"buffer_size,omitempty"`
	MaxInsts    int `json:"max_insts,omitempty"`
	InlineDepth int `json:"inline_depth,omitempty"`
}

// Request is one specialization request (POST /specialize).
type Request struct {
	// Regions is the address-space snapshot: machine code and any data the
	// specialization reads (fixed parameter targets, constant pools).
	Regions []Region `json:"regions"`
	// Entry is the function's entry address within the snapshot.
	Entry uint64 `json:"entry"`
	// Sig is the function signature at Entry.
	Sig SigSpec `json:"sig"`
	// Backend selects the code generator: "llvm" (default; the paper's
	// lift → optimize → JIT pipeline) or "dbrew" (binary encoder only).
	Backend string `json:"backend,omitempty"`
	// NoFastMath disables the -ffast-math analog (default: enabled, as in
	// the paper's evaluation).
	NoFastMath bool `json:"no_fast_math,omitempty"`
	// ForceVectorWidth forces loop vectorization (Section VI-B; only 2).
	ForceVectorWidth int `json:"force_vector_width,omitempty"`
	// FixedParams are the known parameters (dbrew_setpar/_setpar_ptr).
	FixedParams []ParamFix `json:"fixed_params,omitempty"`
	// FixedRanges are extra fixed memory ranges (dbrew_setmem).
	FixedRanges []MemRange `json:"fixed_ranges,omitempty"`
	// Limits overrides the DBrew resource limits.
	Limits *Limits `json:"limits,omitempty"`
	// DeadlineMS bounds this request's total latency in milliseconds; the
	// server clamps it to its configured maximum. 0 selects the server
	// default.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
	// IncludeIR asks for the formatted IR of the returned code.
	IncludeIR bool `json:"include_ir,omitempty"`
}

// CompileStats is the wire form of the rewrite statistics.
type CompileStats struct {
	Decoded    int  `json:"decoded"`
	Emitted    int  `json:"emitted"`
	Eliminated int  `json:"eliminated"`
	Inlined    int  `json:"inlined"`
	CodeSize   int  `json:"code_size"`
	Failed     bool `json:"failed,omitempty"`
}

// Response is a successful specialization result.
type Response struct {
	// Addr is the address the generated code lives at inside the daemon's
	// engine (informational; the bytes are position-independent).
	Addr uint64 `json:"addr"`
	// Code is the optimized machine code (base64 in JSON).
	Code []byte `json:"code"`
	// CacheHit reports that the result was served from the specialization
	// cache — including joining another request's in-flight compilation —
	// rather than compiled for this request.
	CacheHit bool `json:"cache_hit"`
	// Source names the level that produced the code: "memory" (in-memory
	// cache or in-flight join), "disk" (persisted artifact), "peer" (owner's
	// artifact adopted), "forward" (request compiled by the owning peer), or
	// "compile" (this node ran the pipeline).
	Source string `json:"source,omitempty"`
	// Strategy names the compile strategy the server chose for this
	// request: "full" (specialize + O3 + JIT) or "fastpath" (specialize,
	// then the single-pass baseline backend — selected automatically when
	// the remaining deadline budget fell below the server's configured
	// threshold).
	Strategy string `json:"strategy,omitempty"`
	// Stats are the compile statistics (restored from cache on a hit).
	Stats CompileStats `json:"stats"`
	// IR is the formatted IR of the returned code, when IncludeIR was set
	// and the result lifted cleanly.
	IR string `json:"ir,omitempty"`
	// ElapsedUS is the server-side handling time in microseconds.
	ElapsedUS int64 `json:"elapsed_us"`
	// Trace is the per-request pipeline trace (admission, cache, rewrite,
	// decode, lift, optimize, jit spans), present when the request carried
	// ?trace=1.
	Trace json.RawMessage `json:"trace,omitempty"`
}

// ErrorBody is the JSON body of every non-2xx response.
type ErrorBody struct {
	Error string `json:"error"`
	// Stage identifies the failing pipeline stage ("rewrite", "lift",
	// "optimize", "jit") when the failure came from the compile pipeline.
	Stage string `json:"stage,omitempty"`
	// Missing accompanies 412: the chunk hashes a delta-form request
	// referenced that the server's chunk store does not hold. Retry the
	// request once with those payloads included.
	Missing []string `json:"missing,omitempty"`
}

// Metrics is the GET /metrics payload.
type Metrics struct {
	// Requests counts specialization requests accepted for processing.
	Requests int64 `json:"requests"`
	// OK counts 2xx specialization responses.
	OK int64 `json:"ok"`
	// BadRequests counts 4xx other than 429 (malformed, conflicting, or
	// unspecializable inputs).
	BadRequests int64 `json:"bad_requests"`
	// RejectedOverload counts 429 responses (admission queue full).
	RejectedOverload int64 `json:"rejected_overload"`
	// DeadlineExceeded counts 504 responses (deadline passed while queued,
	// coalesced, or waiting on the compile lock).
	DeadlineExceeded int64 `json:"deadline_exceeded"`
	// Errors counts 5xx responses other than 504.
	Errors int64 `json:"errors"`
	// CacheHits counts responses served from the specialization cache,
	// including coalesced joins of in-flight compiles.
	CacheHits int64 `json:"cache_hits"`
	// CoalesceHits counts requests that blocked on another request's
	// in-flight identical compilation (the engine cache's Waits counter).
	CoalesceHits int64 `json:"coalesce_hits"`
	// FastpathServed counts 200s answered under the fastpath strategy
	// (deadline budget below the server's threshold); FullServed the rest.
	FastpathServed int64 `json:"fastpath_served"`
	FullServed     int64 `json:"full_served"`
	// QueueDepth is the current number of requests queued for a compile
	// slot; ActiveCompiles the number of slots in use.
	QueueDepth     int64 `json:"queue_depth"`
	ActiveCompiles int64 `json:"active_compiles"`
	// PeerHits counts requests served by adopting the owning peer's
	// artifact; PeerForwards requests relayed to their owner for
	// compilation; PeerDegraded fleet paths that fell back to a local
	// compile; ForwardServed forwarded requests this node answered as owner.
	PeerHits      int64 `json:"peer_hits,omitempty"`
	PeerForwards  int64 `json:"peer_forwards,omitempty"`
	PeerDegraded  int64 `json:"peer_degraded,omitempty"`
	ForwardServed int64 `json:"forward_served,omitempty"`
	// Cluster is the peer-traffic counter snapshot; nil outside fleet mode.
	Cluster *cluster.Stats `json:"cluster,omitempty"`
	// DeltaRequests counts requests that arrived in delta (chunked) form;
	// DeltaMisses the 412 missing-chunk replies; DeltaBytesSaved the region
	// bytes reconstructed from the chunk store instead of shipped.
	DeltaRequests   int64 `json:"delta_requests,omitempty"`
	DeltaMisses     int64 `json:"delta_misses,omitempty"`
	DeltaBytesSaved int64 `json:"delta_bytes_saved,omitempty"`
	// LatencyUSLog2 is the request latency histogram: bucket i counts
	// requests in [2^(i-1), 2^i) microseconds.
	LatencyUSLog2 tier.HistogramSnapshot `json:"latency_us_log2"`
	// Engine embeds Engine.StatsJSON: the specialization-cache counters
	// (and tiering stats, when an embedding application enables them).
	Engine dbrewllvm.EngineStats `json:"engine"`
}

// SnapshotRegions copies every mapped region of mem into wire form — the
// way clients build the Regions field from an address space they already
// hold (the smoke mode and benchmarks snapshot a Workload this way).
func SnapshotRegions(mem *emu.Memory) []Region {
	regions := mem.Regions()
	out := make([]Region, 0, len(regions))
	for _, r := range regions {
		data := make([]byte, len(r.Data))
		copy(data, r.Data)
		out = append(out, Region{Addr: r.Start, Data: data})
	}
	return out
}

// SigFromABI converts an abi.Signature to wire form.
func SigFromABI(sig abi.Signature) SigSpec {
	s := SigSpec{Ret: className(sig.Ret)}
	for _, p := range sig.Params {
		s.Params = append(s.Params, className(p))
	}
	return s
}

func className(c abi.Class) string {
	switch c {
	case abi.ClassNone:
		return "none"
	case abi.ClassInt:
		return "int"
	case abi.ClassPtr:
		return "ptr"
	case abi.ClassF64:
		return "f64"
	}
	return fmt.Sprintf("class(%d)", int(c))
}

func classFromName(name string) (abi.Class, error) {
	switch name {
	case "none", "":
		return abi.ClassNone, nil
	case "int":
		return abi.ClassInt, nil
	case "ptr":
		return abi.ClassPtr, nil
	case "f64":
		return abi.ClassF64, nil
	}
	return 0, fmt.Errorf("unknown parameter class %q (want int, ptr, f64, or none)", name)
}

// ABISignature converts the wire signature back to an abi.Signature.
func (s SigSpec) ABISignature() (abi.Signature, error) {
	ret, err := classFromName(s.Ret)
	if err != nil {
		return abi.Signature{}, fmt.Errorf("sig.ret: %w", err)
	}
	sig := abi.Signature{Ret: ret}
	for i, p := range s.Params {
		c, err := classFromName(p)
		if err != nil {
			return abi.Signature{}, fmt.Errorf("sig.params[%d]: %w", i, err)
		}
		if c == abi.ClassNone {
			return abi.Signature{}, fmt.Errorf("sig.params[%d]: parameters cannot be \"none\"", i)
		}
		sig.Params = append(sig.Params, c)
	}
	return sig, nil
}
