package service

// Persistence and fleet end-to-end suite: warm restarts over a shared
// cache directory serve previous compilations without recompiling, two
// fleet nodes compile each specialization exactly once fleet-wide, a
// killed peer degrades to local compilation, and explicit evictions reach
// the owning peer. Run with -race: the warming gate, the peer fetch/forward
// paths, and the eviction broadcast are all concurrent surfaces.

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	dbrewllvm "repro"
	"repro/internal/bench"
	"repro/internal/codecache"
	"repro/internal/diskcache"
)

// requestKey derives the fleet-wide specialization key of req the same way
// the service does: a rewriter configured identically over an identical
// snapshot. The key hashes content (entry, signature, switches, fixed
// bytes), so any engine holding the same image derives the same key.
func requestKey(t *testing.T, regions []Region, req *Request) codecache.Key {
	t.Helper()
	eng := directEngine(t, regions)
	eng.EnableCache(8)
	sig, err := req.Sig.ABISignature()
	if err != nil {
		t.Fatal(err)
	}
	rw := dbrewllvm.NewRewriter(eng, req.Entry, sig)
	rw.Strict = true
	rw.FastMath = !req.NoFastMath
	rw.ForceVectorWidth = req.ForceVectorWidth
	if req.Backend == "dbrew" {
		rw.SetBackend(dbrewllvm.BackendDBrew)
	} else {
		rw.SetBackend(dbrewllvm.BackendLLVM)
	}
	for _, p := range req.FixedParams {
		if p.Ptr {
			rw.SetParPtr(p.Idx, p.Value, p.Size)
		} else {
			rw.SetPar(p.Idx, p.Value)
		}
	}
	for _, m := range req.FixedRanges {
		rw.SetMem(m.Start, m.End)
	}
	k, ok := rw.CacheKey()
	if !ok {
		t.Fatal("request key not derivable")
	}
	return k
}

// TestWarmingHealthz pins the warming contract: while the disk index loads,
// /healthz answers 503 {"status":"warming"} and a /specialize whose
// deadline passes while gated gets 504; once warming finishes the service
// is healthy and serves normally.
func TestWarmingHealthz(t *testing.T) {
	w, regions := newWorkloadSnapshot(t)
	in := w.SpecInput(bench.Line, bench.Flat, bench.DBrewLLVM)

	gate := make(chan struct{})
	svc := New(Config{CacheDir: t.TempDir(), warmHook: func() { <-gate }})
	ts := httptest.NewServer(svc)
	defer ts.Close()
	client := NewClient(ts.URL)

	res, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(res.Body)
	res.Body.Close()
	if res.StatusCode != http.StatusServiceUnavailable || !strings.Contains(string(body), "warming") {
		t.Fatalf("healthz while warming = %d %s, want 503 warming", res.StatusCode, body)
	}

	req := requestFor(in, regions, specCase{backend: "llvm", fix: true})
	req.DeadlineMS = 100
	if _, err := client.Specialize(context.Background(), req); !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("specialize while warming err = %v, want ErrDeadlineExceeded", err)
	}

	close(gate)
	<-svc.Ready()
	if err := svc.WarmError(); err != nil {
		t.Fatalf("WarmError = %v", err)
	}
	if err := client.Health(context.Background()); err != nil {
		t.Fatalf("healthz after warming: %v", err)
	}
	req.DeadlineMS = 0
	if resp, err := client.Specialize(context.Background(), req); err != nil || len(resp.Code) == 0 {
		t.Fatalf("specialize after warming: %v", err)
	}
}

// TestWarmFailureRunsWithoutPersistence: a cache directory that cannot be
// opened surfaces through WarmError, but the service still becomes ready
// and compiles — the disk level is an optimization, never a correctness
// dependency.
func TestWarmFailureRunsWithoutPersistence(t *testing.T) {
	w, regions := newWorkloadSnapshot(t)
	in := w.SpecInput(bench.Line, bench.Flat, bench.DBrewLLVM)

	// A regular file where the directory should be.
	notADir := filepath.Join(t.TempDir(), "cache")
	if err := os.WriteFile(notADir, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	svc, client := startServer(t, Config{CacheDir: notADir})
	<-svc.Ready()
	if svc.WarmError() == nil {
		t.Fatal("WarmError = nil, want the failed disk-cache open")
	}
	resp, err := client.Specialize(context.Background(), requestFor(in, regions, specCase{backend: "llvm", fix: true}))
	if err != nil {
		t.Fatalf("specialize without persistence: %v", err)
	}
	if resp.Source != "compile" {
		t.Fatalf("source = %q, want compile", resp.Source)
	}
}

// TestServiceWarmRestart asserts the acceptance criterion: a restarted
// daemon pointed at the same cache directory serves a previously compiled
// specialization byte-identically from disk, with zero pipeline executions.
func TestServiceWarmRestart(t *testing.T) {
	dir := t.TempDir()
	w, regions := newWorkloadSnapshot(t)
	in := w.SpecInput(bench.Line, bench.Flat, bench.DBrewLLVM)
	req := requestFor(in, regions, specCase{backend: "llvm", fix: true})

	svc1, client1 := startServer(t, Config{CacheDir: dir})
	cold, err := client1.Specialize(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Source != "compile" {
		t.Fatalf("cold source = %q, want compile", cold.Source)
	}
	if n := svc1.Engine().CompileCount(); n != 1 {
		t.Fatalf("cold CompileCount = %d, want 1", n)
	}
	if err := svc1.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}

	svc2, client2 := startServer(t, Config{CacheDir: dir})
	warm, err := client2.Specialize(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Source != "disk" {
		t.Fatalf("restart source = %q, want disk", warm.Source)
	}
	if !bytes.Equal(warm.Code, cold.Code) {
		t.Fatal("restart served different bytes than the original compile")
	}
	if n := svc2.Engine().CompileCount(); n != 0 {
		t.Fatalf("restart CompileCount = %d, want 0 — the pipeline ran", n)
	}

	// The disk hit repopulated the memory level.
	again, err := client2.Specialize(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if again.Source != "memory" || !again.CacheHit {
		t.Fatalf("repeat after disk hit: source %q cache_hit %v, want memory hit", again.Source, again.CacheHit)
	}
}

// TestArtifactEndpoints covers the fleet wire surface directly: GET serves
// the wire-encoded artifact for a compiled key, unknown keys 404, malformed
// keys 400, and DELETE drops every level so the next request recompiles.
func TestArtifactEndpoints(t *testing.T) {
	w, regions := newWorkloadSnapshot(t)
	in := w.SpecInput(bench.Line, bench.Flat, bench.DBrewLLVM)
	req := requestFor(in, regions, specCase{backend: "llvm", fix: true})

	svc := New(Config{CacheDir: t.TempDir()})
	ts := httptest.NewServer(svc)
	defer ts.Close()
	client := NewClient(ts.URL)
	resp, err := client.Specialize(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	key := requestKey(t, regions, req)

	base := ts.URL
	status, body := httpDo(t, http.MethodGet, base+"/artifact/"+key.String(), nil)
	if status != http.StatusOK {
		t.Fatalf("GET artifact = %d %s", status, body)
	}
	gotKey, art, err := diskcache.Decode(body)
	if err != nil {
		t.Fatal(err)
	}
	if gotKey != key || !bytes.Equal(art.Code, resp.Code) {
		t.Fatal("served artifact does not match the compiled response")
	}

	if status, _ := httpDo(t, http.MethodGet, base+"/artifact/"+codecache.Key{0xff}.String(), nil); status != http.StatusNotFound {
		t.Fatalf("GET unknown key = %d, want 404", status)
	}
	if status, _ := httpDo(t, http.MethodGet, base+"/artifact/not-a-key", nil); status != http.StatusBadRequest {
		t.Fatalf("GET malformed key = %d, want 400", status)
	}

	status, body = httpDo(t, http.MethodDelete, base+"/artifact/"+key.String(), nil)
	if status != http.StatusOK || !strings.Contains(string(body), "true") {
		t.Fatalf("DELETE = %d %s, want removed=true", status, body)
	}
	if status, _ := httpDo(t, http.MethodGet, base+"/artifact/"+key.String(), nil); status != http.StatusNotFound {
		t.Fatalf("GET after DELETE = %d, want 404", status)
	}
	re, err := client.Specialize(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if re.Source != "compile" {
		t.Fatalf("post-eviction source = %q, want compile", re.Source)
	}
}

// httpDo issues a bare HTTP request and returns (status, body).
func httpDo(t *testing.T, method, url string, body io.Reader) (int, []byte) {
	t.Helper()
	req, err := http.NewRequest(method, url, body)
	if err != nil {
		t.Fatal(err)
	}
	res, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	raw, _ := io.ReadAll(res.Body)
	return res.StatusCode, raw
}

// fleetPair starts two fleet nodes that list each other as peers, each
// serving on a real TCP port that matches its advertised Self address.
func fleetPair(t *testing.T, mut func(*Config)) (svcA, svcB *Service, clientA, clientB *Client) {
	t.Helper()
	la, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	lb, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addrA, addrB := la.Addr().String(), lb.Addr().String()
	cfgA := Config{Self: addrA, Peers: []string{addrB}}
	cfgB := Config{Self: addrB, Peers: []string{addrA}}
	if mut != nil {
		mut(&cfgA)
		mut(&cfgB)
	}
	svcA, svcB = New(cfgA), New(cfgB)
	tsA := &httptest.Server{Listener: la, Config: &http.Server{Handler: svcA}}
	tsB := &httptest.Server{Listener: lb, Config: &http.Server{Handler: svcB}}
	tsA.Start()
	tsB.Start()
	t.Cleanup(tsA.Close)
	t.Cleanup(tsB.Close)
	return svcA, svcB, NewClient(tsA.URL), NewClient(tsB.URL)
}

// TestTwoNodeFleetExactlyOnce asserts the fleet acceptance criterion: N
// concurrent identical requests spread across two nodes compile exactly
// once fleet-wide, every caller receiving identical bytes.
func TestTwoNodeFleetExactlyOnce(t *testing.T) {
	w, regions := newWorkloadSnapshot(t)
	in := w.SpecInput(bench.Line, bench.Flat, bench.DBrewLLVM)
	req := requestFor(in, regions, specCase{backend: "llvm", fix: true})

	svcA, svcB, clientA, clientB := fleetPair(t, nil)

	const concurrency = 32
	codes := make([][]byte, concurrency)
	errs := make([]error, concurrency)
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < concurrency; i++ {
		i := i
		client := clientA
		if i%2 == 1 {
			client = clientB
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			resp, err := client.Specialize(context.Background(), req)
			if err != nil {
				errs[i] = err
				return
			}
			codes[i] = resp.Code
		}()
	}
	close(start)
	wg.Wait()

	for i := 0; i < concurrency; i++ {
		if errs[i] != nil {
			t.Fatalf("request %d: %v", i, errs[i])
		}
		if !bytes.Equal(codes[i], codes[0]) {
			t.Fatalf("request %d returned different bytes", i)
		}
	}
	total := svcA.Engine().CompileCount() + svcB.Engine().CompileCount()
	if total != 1 {
		t.Fatalf("fleet CompileCount = %d, want exactly 1", total)
	}

	// The non-owner resolved its traffic through the fleet, never by
	// compiling locally.
	key := requestKey(t, regions, req)
	nonOwner := svcA
	if _, self := svcA.fleet.Owner(key); self {
		nonOwner = svcB
	}
	m := nonOwner.MetricsSnapshot()
	if n := nonOwner.Engine().CompileCount(); n != 0 {
		t.Fatalf("non-owner compiled %d times", n)
	}
	if m.PeerHits+m.PeerForwards == 0 {
		t.Fatalf("non-owner metrics %+v: no peer hit or forward recorded", m)
	}
	if m.PeerDegraded != 0 {
		t.Fatalf("non-owner degraded %d times with a healthy fleet", m.PeerDegraded)
	}
	if m.Cluster == nil {
		t.Fatal("fleet-mode metrics carry no cluster snapshot")
	}
}

// TestFleetEvictionBroadcast: evicting a key on the node that adopted it
// propagates to the owning peer, scrubbing the artifact fleet-wide; the
// owner's own re-broadcast self-suppresses rather than looping.
func TestFleetEvictionBroadcast(t *testing.T) {
	w, regions := newWorkloadSnapshot(t)
	in := w.SpecInput(bench.Line, bench.Flat, bench.DBrewLLVM)
	req := requestFor(in, regions, specCase{backend: "llvm", fix: true})
	key := requestKey(t, regions, req)

	svcA, svcB, clientA, clientB := fleetPair(t, nil)
	owner, nonOwner, nonOwnerClient := svcA, svcB, clientB
	if _, self := svcB.fleet.Owner(key); self {
		owner, nonOwner, nonOwnerClient = svcB, svcA, clientA
	}

	// Compiling through the non-owner lands the artifact on both nodes:
	// the owner compiles (forwarded), the non-owner adopts the result.
	resp, err := nonOwnerClient.Specialize(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Source != "forward" && resp.Source != "peer" {
		t.Fatalf("non-owner source = %q, want a fleet-resolved source", resp.Source)
	}
	ctx := context.Background()
	if _, err := owner.Engine().ArtifactFor(ctx, key, false); err != nil {
		t.Fatalf("owner holds no artifact after forwarded compile: %v", err)
	}
	if _, err := nonOwner.Engine().ArtifactFor(ctx, key, false); err != nil {
		t.Fatalf("non-owner did not adopt the forwarded artifact: %v", err)
	}

	// Evict on the non-owner; the notifier broadcasts DELETE to the owner
	// synchronously, so the fleet is clean when the call returns.
	if !nonOwner.Engine().RemoveSpecialization(key) {
		t.Fatal("non-owner removal reported nothing removed")
	}
	if _, err := nonOwner.Engine().ArtifactFor(ctx, key, false); !errors.Is(err, dbrewllvm.ErrArtifactNotFound) {
		t.Fatalf("non-owner still serves the evicted key: %v", err)
	}
	if _, err := owner.Engine().ArtifactFor(ctx, key, false); !errors.Is(err, dbrewllvm.ErrArtifactNotFound) {
		t.Fatalf("eviction broadcast never reached the owner: %v", err)
	}
}

// TestKilledPeerDegrades: with the key's owner dead, a request degrades to
// a local compile within the peer timeout, and the failed peer enters
// backoff so the next request skips it without a network round trip.
func TestKilledPeerDegrades(t *testing.T) {
	w, regions := newWorkloadSnapshot(t)
	in := w.SpecInput(bench.Line, bench.Flat, bench.DBrewLLVM)

	// A peer address that is dead from the start: reserve a port, close it.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	dead := l.Addr().String()
	l.Close()

	svc, client := startServer(t, Config{
		Self: "127.0.0.1:1", Peers: []string{dead},
		PeerTimeout: 500 * time.Millisecond, PeerBackoff: time.Minute,
	})

	// Find two requests whose keys the dead peer owns.
	var reqs []*Request
	for n := uint64(4); len(reqs) < 2; n++ {
		r := distinctRequest(in, regions, n)
		k := requestKey(t, regions, r)
		if owner, self := svc.fleet.Owner(k); !self && owner == dead {
			reqs = append(reqs, r)
		}
	}

	begin := time.Now()
	resp, err := client.Specialize(context.Background(), reqs[0])
	if err != nil {
		t.Fatalf("request with dead owner failed: %v", err)
	}
	if resp.Source != "compile" {
		t.Fatalf("source = %q, want the local compile fallback", resp.Source)
	}
	if elapsed := time.Since(begin); elapsed > 5*time.Second {
		t.Fatalf("degradation took %v — not bounded by the peer timeout", elapsed)
	}

	// The dead peer is now in backoff: the next miss skips it entirely.
	if _, err := client.Specialize(context.Background(), reqs[1]); err != nil {
		t.Fatal(err)
	}
	m := svc.MetricsSnapshot()
	if m.PeerDegraded != 2 {
		t.Fatalf("peer_degraded = %d, want 2", m.PeerDegraded)
	}
	if m.Cluster == nil || m.Cluster.SkippedBackoff == 0 {
		t.Fatalf("cluster stats %+v: second request did not use the backoff skip", m.Cluster)
	}
	if fmt.Sprint(m.Cluster) == "" {
		t.Fatal("cluster stats unprintable")
	}
}
