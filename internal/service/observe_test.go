package service

// Observability suite: the Prometheus /metrics endpoint (default
// representation, linted against the exposition format; JSON negotiated via
// Accept or ?format=json) and per-request pipeline traces (?trace=1).

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/bench"
	"repro/internal/trace"
)

func startServerURL(t *testing.T, cfg Config) (*Service, *Client, string) {
	t.Helper()
	svc := New(cfg)
	ts := httptest.NewServer(svc)
	t.Cleanup(ts.Close)
	return svc, NewClient(ts.URL), ts.URL
}

func TestMetricsPrometheusFormat(t *testing.T) {
	w, regions := newWorkloadSnapshot(t)
	in := w.SpecInput(bench.Line, bench.Flat, bench.DBrewLLVM)
	_, client, url := startServerURL(t, Config{})

	req := requestFor(in, regions, specCase{backend: "llvm", fix: true})
	if _, err := client.Specialize(context.Background(), req); err != nil {
		t.Fatalf("Specialize: %v", err)
	}

	// Default representation: Prometheus text format, valid per the linter.
	hres, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(hres.Body)
	hres.Body.Close()
	if got := hres.Header.Get("Content-Type"); got != trace.ContentType {
		t.Errorf("content type %q, want %q", got, trace.ContentType)
	}
	if err := trace.Lint(body); err != nil {
		t.Fatalf("/metrics body fails Prometheus lint: %v\n%s", err, body)
	}
	for _, want := range []string{
		"dbrew_service_requests_total 1",
		"dbrew_service_ok_total 1",
		"dbrew_codecache_misses_total 1",
		"dbrew_codecache_entries 1",
		`dbrew_service_latency_seconds_bucket{le="+Inf"} 1`,
		"dbrew_service_latency_seconds_count 1",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// JSON stays available through content negotiation, both ways.
	m, err := client.Metrics(context.Background())
	if err != nil {
		t.Fatalf("client.Metrics (Accept: application/json): %v", err)
	}
	if m.Requests != 1 || m.OK != 1 {
		t.Errorf("JSON snapshot requests=%d ok=%d, want 1/1", m.Requests, m.OK)
	}
	hres, err = http.Get(url + "/metrics?format=json")
	if err != nil {
		t.Fatal(err)
	}
	defer hres.Body.Close()
	var m2 Metrics
	if err := json.NewDecoder(hres.Body).Decode(&m2); err != nil {
		t.Fatalf("?format=json did not return JSON: %v", err)
	}
	if m2.Requests != 1 {
		t.Errorf("?format=json requests=%d, want 1", m2.Requests)
	}
}

func TestSpecializeTrace(t *testing.T) {
	w, regions := newWorkloadSnapshot(t)
	in := w.SpecInput(bench.Line, bench.Flat, bench.DBrewLLVM)
	_, client, _ := startServerURL(t, Config{})
	req := requestFor(in, regions, specCase{backend: "llvm", fix: true})

	resp, err := client.SpecializeTraced(context.Background(), req)
	if err != nil {
		t.Fatalf("SpecializeTraced: %v", err)
	}
	if len(resp.Trace) == 0 {
		t.Fatal("?trace=1 returned no trace")
	}
	var tr struct {
		Name    string `json:"name"`
		TotalNS int64  `json:"total_ns"`
		Spans   []struct {
			Name    string `json:"name"`
			DurNS   int64  `json:"dur_ns"`
			Outcome string `json:"outcome"`
		} `json:"spans"`
	}
	if err := json.Unmarshal(resp.Trace, &tr); err != nil {
		t.Fatalf("trace does not parse: %v\n%s", err, resp.Trace)
	}
	if tr.Name != "specialize" {
		t.Errorf("trace name %q, want specialize", tr.Name)
	}
	seen := map[string]string{}
	for _, sp := range tr.Spans {
		seen[sp.Name] = sp.Outcome
	}
	for _, want := range []string{"admission", "cache", "rewrite", "decode", "lift", "optimize", "jit"} {
		if _, ok := seen[want]; !ok {
			t.Errorf("cold trace missing span %q (got %v)", want, seen)
		}
	}
	if seen["cache"] != "miss" {
		t.Errorf("cold cache span outcome %q, want miss", seen["cache"])
	}

	// A repeat request is a cache hit: its trace has the hit-annotated cache
	// span and no compile-stage spans.
	resp2, err := client.SpecializeTraced(context.Background(), req)
	if err != nil {
		t.Fatalf("warm SpecializeTraced: %v", err)
	}
	if err := json.Unmarshal(resp2.Trace, &tr); err != nil {
		t.Fatalf("warm trace does not parse: %v", err)
	}
	seen = map[string]string{}
	for _, sp := range tr.Spans {
		seen[sp.Name] = sp.Outcome
	}
	if seen["cache"] != "hit" {
		t.Errorf("warm cache span outcome %q, want hit", seen["cache"])
	}
	if _, ok := seen["jit"]; ok {
		t.Error("warm trace contains a jit span; the hit should skip compilation")
	}

	// An untraced request carries no trace payload.
	resp3, err := client.Specialize(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp3.Trace) != 0 {
		t.Error("untraced request returned a trace")
	}
}
